#!/usr/bin/env bash
# verify.sh — the repo's verification tiers in one command.
#
#   ./scripts/verify.sh          tier-1 only (what CI gates on)
#   ./scripts/verify.sh --hot    tier-1 plus the hot-path battery:
#                                vet and the -race hammer over the
#                                packages with hand-written kernels and
#                                lock-free aggregation paths
#   ./scripts/verify.sh --obs    tier-1 plus the observability battery:
#                                the -race hammer over the telemetry
#                                subsystem and the TCP transport that
#                                journals through it, plus the analytic
#                                <1% telemetry-overhead budget test
#
# Tier-1 must pass on every commit. The hot-path battery is mandatory
# for changes touching internal/tensor (SIMD kernels, packed GEMM,
# scratch pools), internal/nn (fused lowering, panel caches),
# internal/algo (parallel deterministic reduction) or internal/flnet
# (TCP transport rounds). The observability battery is mandatory for
# changes touching internal/telemetry or any code that records into it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
go build ./...
echo "== tier-1: tests =="
go test ./...

if [[ "${1:-}" == "--hot" ]]; then
    echo "== hot path: vet =="
    go vet ./...
    echo "== hot path: race hammer =="
    go test -race ./internal/tensor ./internal/nn ./internal/algo ./internal/flnet
fi

if [[ "${1:-}" == "--obs" ]]; then
    echo "== observability: race hammer =="
    go test -race ./internal/telemetry ./internal/flnet
    echo "== observability: overhead budget =="
    go test -run TestTelemetryOverheadBudget -v ./internal/fl
fi

echo "verify: OK"
