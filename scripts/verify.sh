#!/usr/bin/env bash
# verify.sh — the repo's verification tiers in one command.
#
#   ./scripts/verify.sh          tier-1 only (what CI gates on)
#   ./scripts/verify.sh --hot    tier-1 plus the hot-path battery:
#                                vet and the -race hammer over the
#                                packages with hand-written kernels and
#                                lock-free aggregation paths
#   ./scripts/verify.sh --obs    tier-1 plus the observability battery:
#                                the -race hammer over the telemetry
#                                subsystem and the TCP transport that
#                                journals through it, plus the analytic
#                                <1% telemetry-overhead budget test
#   ./scripts/verify.sh --bench  tier-1 plus the performance regression
#                                gate: rerun the micro benchmarks and
#                                fail if any is slower than the latest
#                                committed BENCH_N.json beyond the
#                                tolerance (BENCH_TOLERANCE, default
#                                0.15 = 15%), or allocates more than
#                                the alloc tolerance allows above it
#                                (BENCH_ALLOC_TOLERANCE, default 0.25 =
#                                25% on allocs/op and B/op, gated only
#                                above the harness noise floors)
#   ./scripts/verify.sh --matrix tier-1 plus the scenario-matrix gate:
#                                run the committed 2x2x2 golden matrix
#                                (scripts/golden/matrix.json) end to end
#                                and diff every per-cell zero-time
#                                journal against scripts/golden/matrix/
#   ./scripts/verify.sh --hetero tier-1 plus the heterogeneous-federation
#                                battery: vet and -race over
#                                internal/hetero, the degenerate- and
#                                cross-transport-equivalence suites, and
#                                the golden 2-cluster 3-width cell
#                                (scripts/golden/hetero.json) diffed
#                                byte-for-byte against
#                                scripts/golden/hetero/
#
# Tier-1 must pass on every commit. The hot-path battery is mandatory
# for changes touching internal/tensor (SIMD kernels, packed GEMM,
# scratch pools), internal/nn (fused lowering, panel caches),
# internal/algo (parallel deterministic reduction, shard fold) or
# internal/flnet (TCP transport rounds, aggregation tree, async quorum).
# The observability battery is mandatory for changes touching
# internal/telemetry or any code that records into it. The matrix gate
# is mandatory for changes touching internal/scenario or the algorithm
# registry — a diff means the exact arithmetic of a seeded federation
# changed, which must be deliberate (regenerate the goldens with
#   go run ./cmd/spatl-bench -matrix scripts/golden/matrix.json -out tmp
# and copy the *.jsonl over). The hetero battery is mandatory for
# changes touching internal/hetero or the cluster/slice wire frames in
# internal/comm (goldens regenerate the same way from
# scripts/golden/hetero.json). The bench gate is
# advisory (benchmarks are noisy on shared machines) but should be run
# before committing a new BENCH_N.json.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
go build ./...
echo "== tier-1: tests =="
go test ./...

if [[ "${1:-}" == "--hot" ]]; then
    echo "== hot path: vet =="
    go vet ./...
    echo "== hot path: race hammer =="
    go test -race ./internal/tensor ./internal/nn ./internal/algo ./internal/flnet
    echo "== hot path: shard/quorum/sparse hammer =="
    go test -race -run 'Shard|Tree|Async|Quorum|Massive|SSFL|MaskAgree|MaskStatic|MaskPat' \
        ./internal/algo ./internal/flnet ./internal/fl ./internal/nn ./internal/tensor
    echo "== hot path: streaming-fold hammer =="
    go test -race -count=1 -run 'Stream|Staging|Permutation' \
        ./internal/algo ./internal/fl ./internal/flnet
fi

if [[ "${1:-}" == "--bench" ]]; then
    baseline=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1)
    if [[ -z "$baseline" ]]; then
        echo "verify: no BENCH_N.json baseline found" >&2
        exit 1
    fi
    echo "== bench gate: micro vs $baseline =="
    go run ./cmd/spatl-bench -micro -baseline "$baseline" -gate \
        -tolerance "${BENCH_TOLERANCE:-0.15}" \
        -alloc-tolerance "${BENCH_ALLOC_TOLERANCE:-0.25}"
fi

if [[ "${1:-}" == "--matrix" ]]; then
    echo "== matrix gate: golden 2x2x2 scenario matrix =="
    out=$(mktemp -d)
    trap 'rm -rf "$out"' EXIT
    go run ./cmd/spatl-bench -matrix scripts/golden/matrix.json -out "$out" >/dev/null
    for g in scripts/golden/matrix/*.jsonl; do
        if ! diff -u "$g" "$out/$(basename "$g")"; then
            echo "verify: journal drift vs golden $(basename "$g")" >&2
            exit 1
        fi
    done
    ngold=$(ls scripts/golden/matrix/*.jsonl | wc -l)
    nout=$(ls "$out"/*.jsonl | wc -l)
    if [[ "$ngold" != "$nout" ]]; then
        echo "verify: cell count drift: ran $nout cells, goldens have $ngold" >&2
        exit 1
    fi
    echo "== matrix gate: $ngold cells byte-identical =="
fi

if [[ "${1:-}" == "--hetero" ]]; then
    echo "== hetero: vet =="
    go vet ./internal/hetero
    echo "== hetero: race hammer =="
    go test -race -count=1 ./internal/hetero
    echo "== hetero: equivalence suites =="
    go test -count=1 -run 'Degenerate|DeterministicAcross|HeteroCell' \
        ./internal/hetero ./internal/scenario
    go test -count=1 -run 'TestCrossTransportEquivalence/hetero' ./internal/flnet
    echo "== hetero: golden 2-cluster 3-width cell =="
    out=$(mktemp -d)
    trap 'rm -rf "$out"' EXIT
    go run ./cmd/spatl-bench -matrix scripts/golden/hetero.json -out "$out" >/dev/null
    for g in scripts/golden/hetero/*.jsonl; do
        if ! diff -u "$g" "$out/$(basename "$g")"; then
            echo "verify: journal drift vs golden $(basename "$g")" >&2
            exit 1
        fi
    done
    echo "== hetero: $(ls scripts/golden/hetero/*.jsonl | wc -l) cells byte-identical =="
fi

if [[ "${1:-}" == "--obs" ]]; then
    echo "== observability: race hammer =="
    go test -race ./internal/telemetry ./internal/flnet
    echo "== observability: overhead budget =="
    go test -run TestTelemetryOverheadBudget -v ./internal/fl
fi

echo "verify: OK"
