// Command spatl-prune runs the standalone network-pruning task: train a
// model centrally, then prune it with the RL selection agent or one of
// the baseline methods, reporting FLOPs reduction and accuracy before
// and after fine-tuning.
//
//	spatl-prune -arch resnet20 -method agent -budget 0.5
//	spatl-prune -arch vgg11 -method fpgm -budget 0.6
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spatl/internal/core"
	"spatl/internal/data"
	"spatl/internal/experiments"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/prune"
	"spatl/internal/rl"
	"spatl/internal/tensor"
)

func main() {
	var (
		arch   = flag.String("arch", "resnet20", "model architecture")
		method = flag.String("method", "agent", "pruning method: agent | l1 | fpgm | sfp | dsa")
		budget = flag.Float64("budget", 0.6, "FLOPs budget (pruned/total ratio)")
		scale  = flag.String("scale", "small", "scale preset: tiny | small | paper")
		epochs = flag.Int("epochs", 4, "centralized pre-training epochs")
		ftEp   = flag.Int("finetune", 2, "fine-tuning epochs after pruning")
		seed   = flag.Int64("seed", 1, "seed")
	)
	flag.Parse()

	s, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatl-prune:", err)
		os.Exit(2)
	}

	spec := models.Spec{Arch: *arch, Classes: s.Classes, InC: 3, H: s.H, W: s.W, Width: s.Width}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: s.Classes, H: s.H, W: s.W, Noise: 0.3},
		80*s.Classes, *seed*3+101, *seed+501)
	train, val := ds.Split(0.85)

	m := models.Build(spec, *seed+41)
	fmt.Printf("pre-training %s centrally for %d epochs...\n", spec, *epochs)
	centralTrain(m, train, *epochs, s.LR, *seed)
	baseAcc := fl.EvalAccuracy(m, val, 64)
	params, flops := m.Describe()
	fmt.Printf("unpruned: acc %.4f, %d params, %d FLOPs/instance\n", baseAcc, params, flops)

	var masks []prune.Mask
	rng := rand.New(rand.NewSource(*seed + 7))
	switch *method {
	case "agent":
		fmt.Println("fine-tuning pre-trained GNN+PPO agent on this model...")
		agent := rl.NewAgent(rl.AgentConfig{Dim: s.AgentDim, HeadHidden: s.AgentHidden, Seed: *seed + 31})
		agent.Load(experiments.PretrainedAgent(s, *seed))
		core.FineTuneAgent(agent, m, val, *budget, s.FineTuneRounds, 2, *seed+47)
		env := prune.NewEnv(m, val, *budget)
		masks = prune.Select(m, rl.BestAction(agent, env)).Masks
		fmt.Printf("agent footprint: %.1f KB\n", float64(agent.SizeBytes())/1024)
	case "l1":
		masks = prune.L1Masks(m, prune.UniformRatiosForBudget(m, *budget))
	case "fpgm":
		masks = prune.FPGMMasks(m, prune.UniformRatiosForBudget(m, *budget))
	case "sfp":
		masks = prune.SFP(m, train, prune.UniformRatiosForBudget(m, *budget), 2, s.LR, rng)
	case "dsa":
		masks = prune.DSAMasks(m, val, *budget)
	default:
		fmt.Fprintf(os.Stderr, "spatl-prune: unknown method %q\n", *method)
		os.Exit(2)
	}

	sel := prune.SelectWithMasks(m, masks)
	pr, tot := prune.MaskedFLOPs(m, masks)
	var masked float64
	prune.WithMasked(m, sel, func() { masked = fl.EvalAccuracy(m, val, 64) })
	fmt.Printf("pruned (%s): FLOPs %.1f%% of original (%.1f%% reduction), masked acc %.4f\n",
		*method, 100*float64(pr)/float64(tot), 100*(1-float64(pr)/float64(tot)), masked)

	fmt.Printf("fine-tuning pruned model for %d epochs...\n", *ftEp)
	prune.FineTune(m, sel, train, *ftEp, s.LR/2, rng)
	after := fl.EvalAccuracy(m, val, 64)
	fmt.Printf("after fine-tune: acc %.4f (Δ %+0.4f vs unpruned)\n", after, after-baseAcc)
	for i, mk := range sel.Masks {
		fmt.Printf("  unit %2d: kept %d/%d channels (%.0f%%)\n", i, mk.Kept, len(mk.Keep), 100*mk.Frac())
	}
}

func centralTrain(m *models.SplitModel, train *data.Dataset, epochs int, lr float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	params := m.Params()
	opt := nn.NewSGD(params, lr, 0.9, 0)
	for e := 0; e < epochs; e++ {
		for _, idx := range train.Batches(rng, 32) {
			x, y := train.Batch(idx)
			nn.ZeroGrad(params)
			var out *tensor.Tensor
			out = m.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy(out, y)
			m.Backward(grad)
			opt.Step()
		}
	}
}
