package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"spatl/internal/scenario"
)

// loadMatrix resolves the -matrix argument: a bundled preset name or a
// JSON file holding either a full matrix ({"base": ..., "axes": ...})
// or a single cell spec (wrapped into a one-cell matrix).
func loadMatrix(arg string) (scenario.Matrix, error) {
	if p, ok := scenario.PresetByName(arg); ok {
		return p.Matrix, nil
	}
	b, err := os.ReadFile(arg)
	if err != nil {
		return scenario.Matrix{}, fmt.Errorf("-matrix %q is neither a preset (%s) nor a readable file: %w",
			arg, presetNames(), err)
	}
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(b, &probe); err != nil {
		return scenario.Matrix{}, fmt.Errorf("%s: %w", arg, err)
	}
	if _, isMatrix := probe["base"]; isMatrix {
		m, err := scenario.DecodeMatrix(b)
		if err != nil {
			return scenario.Matrix{}, fmt.Errorf("%s: %w", arg, err)
		}
		return m, nil
	}
	spec, err := scenario.DecodeSpec(b)
	if err != nil {
		return scenario.Matrix{}, fmt.Errorf("%s: %w", arg, err)
	}
	return scenario.Matrix{Name: spec.Label(), Base: spec}, nil
}

func presetNames() string {
	s := ""
	for i, p := range scenario.Presets() {
		if i > 0 {
			s += "|"
		}
		s += p.Name
	}
	return s
}

// listMatrices enumerates the bundled presets with their axes and
// expanded cell counts — `spatl-bench -matrix list` (or -matrix -list).
func listMatrices(w io.Writer) error {
	fmt.Fprintln(w, "bundled scenario matrices (run with -matrix <name>, or pass a JSON file):")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  name\tcells\tdescription")
	for _, p := range scenario.Presets() {
		fmt.Fprintf(tw, "  %s\t%d\t%s\n", p.Name, p.Matrix.CellCount(), p.Description)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nregistered algorithms: %v\n", scenario.AlgoNames())
	fmt.Fprintln(w, "axes: algos, archs, clients, participation, alphas, shards_per_client, transports, churn, clusters, width_dists, seeds")
	fmt.Fprintln(w, "use -matrix <name> -dry to preview a matrix's cells without running it")
	return nil
}

// runMatrixCmd is the -matrix entry point.
func runMatrixCmd(arg, outDir string, workers int, force, dry, cache bool) error {
	if arg == "list" || arg == "-list" || arg == "true" {
		// "-matrix -list" parses as the value "-list"; "-matrix list" is
		// the documented spelling. Both enumerate.
		return listMatrices(os.Stdout)
	}
	m, err := loadMatrix(arg)
	if err != nil {
		return err
	}
	// The dry-run expansion doubles as the cell-cap guard: an over-cap
	// matrix refuses to expand (and so to run) unless -force is given.
	cells, err := m.Expand(force)
	if err != nil {
		return err
	}
	if dry {
		fmt.Printf("matrix %s: %d cells\n", m.Name, len(cells))
		for _, c := range cells {
			fmt.Printf("  %s  (seed %d)\n", c.Key(), c.Seed)
		}
		return nil
	}
	fmt.Printf("matrix %s: running %d cells -> %s\n", m.Name, len(cells), outDir)
	results, err := scenario.RunMatrix(m, scenario.RunOptions{
		OutDir: outDir, Workers: workers, Force: force, Cache: cache, Log: os.Stdout,
	})
	if err != nil {
		return err
	}
	if cache {
		hits := 0
		for _, r := range results {
			if r.Cached {
				hits++
			}
		}
		fmt.Printf("cache: %d/%d cells reused\n", hits, len(results))
	}
	fmt.Println()
	if err := scenario.WriteReport(os.Stdout, m.Name, results); err != nil {
		return err
	}
	failed := 0
	for _, r := range results {
		if r.Err != nil {
			failed++
		}
	}
	fmt.Printf("\njournals and report.{txt,csv} in %s\n", outDir)
	if failed > 0 {
		return fmt.Errorf("%d/%d cells failed (see report)", failed, len(results))
	}
	return nil
}
