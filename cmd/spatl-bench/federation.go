package main

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"spatl/internal/algo"
	"spatl/internal/comm"
	"spatl/internal/flnet"
	"spatl/internal/models"
)

// The federation-scale benchmark measures what the aggregation tree is
// for: root ingest throughput, in client uploads per second, when the
// root talks to every client directly (flat) versus through edge
// aggregators that pool a whole shard's uploads into one frame (tree).
// The model is deliberately tiny — at massive scale the root's cost is
// per-connection bookkeeping (goroutines, deadlines, frame reads), not
// arithmetic, and SPATL's salient-parameter uploads are small anyway.
//
// The flat baseline runs fewer clients than the tree (real sockets; two
// file descriptors per loopback connection, and the fd budget caps out
// well before 10k conns) and the comparison is rate against rate, which
// if anything flatters flat: its hello phase amortizes over more rounds
// per connection.

// fedResult is one topology's measurement in the -fed report.
type fedResult struct {
	Clients       int     `json:"clients"`
	Conns         int     `json:"conns"` // root-facing connections
	Rounds        int     `json:"rounds"`
	PayloadBytes  int     `json:"payload_bytes"`
	Seconds       float64 `json:"seconds"`
	ClientsPerSec float64 `json:"clients_per_sec"`
	SpeedupVsFlat float64 `json:"speedup_vs_flat,omitempty"`
}

// fedSpec is the benchmark model: small enough that per-upload decode
// does not drown the per-connection costs under measurement.
var fedSpec = models.Spec{Arch: "mlp", Classes: 2, InC: 1, H: 4, W: 4, Width: 0.01}

func fedTrainSize(id uint32) int { return 50 + int(id)%101 }

// cannedTrainer uploads a fixed pre-encoded payload: zero local compute,
// so elapsed time is the transport and aggregation machinery.
type cannedTrainer struct{ up []byte }

func (c *cannedTrainer) LocalUpdate(round int, payload []byte) []byte { return c.up }
func (c *cannedTrainer) Finish(payload []byte)                        {}

// runFedFlat federates n canned clients against the flat server and
// returns the measurement.
func runFedFlat(n, rounds int, canned []byte) (*fedResult, error) {
	srv, err := flnet.NewServer(flnet.ServerConfig{
		Addr: "127.0.0.1:0", Clients: n, Rounds: rounds, Seed: 7,
	})
	if err != nil {
		return nil, err
	}
	agg := algo.NewFedAvgAggregator(models.Build(fedSpec, 1), algo.Config{NumClients: n, Seed: 7})

	start := time.Now()
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.Run(agg) }()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = flnet.RunClient(srv.Addr(), uint32(i), fedTrainSize(uint32(i)), &cannedTrainer{up: canned})
		}(i)
	}
	wg.Wait()
	if err := <-serverErr; err != nil {
		return nil, fmt.Errorf("flat root: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("flat client %d: %w", i, err)
		}
	}
	sec := time.Since(start).Seconds()
	return &fedResult{
		Clients: n, Conns: n, Rounds: rounds, PayloadBytes: len(canned),
		Seconds: sec, ClientsPerSec: float64(n*rounds) / sec,
	}, nil
}

// runFedEdge speaks the edge protocol for one shard: register the
// shard's clients, then answer every round broadcast with the pooled
// payload of their canned uploads — what a real Edge forwards after its
// clients report, minus the second tier of sockets the benchmark is not
// measuring.
func runFedEdge(rootAddr string, shard uint32, lo, hi int, canned []byte) error {
	conn, err := net.Dial("tcp", rootAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	hello := make([]byte, 4+8*(hi-lo))
	binary.LittleEndian.PutUint32(hello[:4], uint32(hi-lo))
	for i := lo; i < hi; i++ {
		off := 4 + 8*(i-lo)
		binary.LittleEndian.PutUint32(hello[off:off+4], uint32(i))
		binary.LittleEndian.PutUint32(hello[off+4:off+8], uint32(fedTrainSize(uint32(i))))
	}
	if err := flnet.WriteFrame(conn, flnet.Frame{Type: flnet.MsgEdgeHello, Client: shard, Payload: hello}); err != nil {
		return err
	}
	var sb algo.ShardBuffer
	for {
		f, err := flnet.ReadFrame(conn)
		if err != nil {
			return err
		}
		switch f.Type {
		case flnet.MsgRoundStart:
			parts, err := comm.SplitPayloads(f.Payload)
			if err != nil || len(parts) != 2 {
				f.Release()
				return fmt.Errorf("edge %d: bad round broadcast", shard)
			}
			sel := parts[0]
			sb.Reset()
			for off := 0; off+4 <= len(sel); off += 4 {
				id := binary.LittleEndian.Uint32(sel[off : off+4])
				sb.Add(id, fedTrainSize(id), canned)
			}
			out := flnet.Frame{Type: flnet.MsgShardUpdate, Client: shard, Round: f.Round, Payload: sb.Payload()}
			f.Release()
			if err := flnet.WriteFrame(conn, out); err != nil {
				return err
			}
		case flnet.MsgDone:
			f.Release()
			return nil
		default:
			f.Release()
			return fmt.Errorf("edge %d: unexpected frame type %d", shard, f.Type)
		}
	}
}

// runFedTree federates n clients behind `shards` pooling edges and
// returns the measurement.
func runFedTree(n, shards, rounds int, canned []byte) (*fedResult, error) {
	root, err := flnet.NewTreeServer(flnet.TreeServerConfig{
		Addr: "127.0.0.1:0", Shards: shards, Clients: n, Rounds: rounds, Seed: 7,
	})
	if err != nil {
		return nil, err
	}
	agg := algo.NewFedAvgAggregator(models.Build(fedSpec, 1), algo.Config{NumClients: n, Seed: 7})

	start := time.Now()
	rootErr := make(chan error, 1)
	go func() { rootErr <- root.Run(agg) }()
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for sh := 0; sh < shards; sh++ {
		lo, hi := algo.ShardRange(sh, n, shards)
		wg.Add(1)
		go func(sh, lo, hi int) {
			defer wg.Done()
			errs[sh] = runFedEdge(root.Addr(), uint32(sh), lo, hi, canned)
		}(sh, lo, hi)
	}
	wg.Wait()
	if err := <-rootErr; err != nil {
		return nil, fmt.Errorf("tree root: %w", err)
	}
	for sh, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("edge %d: %w", sh, err)
		}
	}
	sec := time.Since(start).Seconds()
	return &fedResult{
		Clients: n, Conns: shards, Rounds: rounds, PayloadBytes: len(canned),
		Seconds: sec, ClientsPerSec: float64(n*rounds) / sec,
	}, nil
}

// runFed measures flat vs tree root ingest and merges a "federation"
// section into the JSON report at jsonPath ("" = stdout only).
func runFed(jsonPath string) error {
	const (
		flatClients = 3000 // 2 fds per loopback conn; stay far under the fd cap
		treeClients = 10000
		shards      = 16
		rounds      = 6
	)
	canned := comm.EncodeDense(models.Build(fedSpec, 1).State(models.ScopeAll))

	fmt.Fprintf(os.Stderr, "fed: flat root, %d clients x %d rounds...\n", flatClients, rounds)
	flat, err := runFedFlat(flatClients, rounds, canned)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fed: tree root, %d clients behind %d edges x %d rounds...\n", treeClients, shards, rounds)
	tree, err := runFedTree(treeClients, shards, rounds, canned)
	if err != nil {
		return err
	}
	tree.SpeedupVsFlat = tree.ClientsPerSec / flat.ClientsPerSec
	fed := map[string]*fedResult{"FlatRootIngest": flat, "TreeRootIngest": tree}

	fmt.Printf("%-16s %8d clients %5d conns %9.0f clients/sec\n", "FlatRootIngest", flat.Clients, flat.Conns, flat.ClientsPerSec)
	fmt.Printf("%-16s %8d clients %5d conns %9.0f clients/sec   %.2fx vs flat\n",
		"TreeRootIngest", tree.Clients, tree.Conns, tree.ClientsPerSec, tree.SpeedupVsFlat)

	report := &microReport{
		Schema:     "spatl-micro-bench/v1",
		Results:    map[string]*microResult{},
		Federation: fed,
	}
	if jsonPath == "" {
		out, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		os.Stdout.Write(append(out, '\n'))
		return nil
	}
	// Merge into an existing -micro report rather than clobbering it.
	if raw, err := os.ReadFile(jsonPath); err == nil {
		if err := json.Unmarshal(raw, report); err != nil {
			return fmt.Errorf("parse %s: %w", jsonPath, err)
		}
		report.Federation = fed
	}
	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "fed: wrote %s\n", jsonPath)
	return nil
}
