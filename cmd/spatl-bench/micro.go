package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"spatl/internal/algo"
	"spatl/internal/comm"
	"spatl/internal/data"
	"spatl/internal/experiments"
	"spatl/internal/fl"
	"spatl/internal/flnet"
	"spatl/internal/hetero"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// The micro harness re-measures the substrate benchmarks from bench_test.go
// in a plain binary (via testing.Benchmark) and emits machine-readable
// JSON, so performance numbers can be captured, diffed against a prior run,
// and committed alongside the code they describe.

// microResult is one benchmark measurement; the Baseline* and Speedup
// fields are populated only when a -baseline file is supplied.
type microResult struct {
	Iterations      int     `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	BytesPerOp      int64   `json:"b_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	BaselineNsPerOp float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocs  int64   `json:"baseline_allocs_per_op,omitempty"`
	BaselineBytes   int64   `json:"baseline_b_per_op,omitempty"`
	Speedup         float64 `json:"speedup,omitempty"`
	AllocReduction  float64 `json:"alloc_reduction,omitempty"`
}

// microReport is the JSON document written by -micro; -fed adds the
// federation-scale section.
type microReport struct {
	Schema     string                  `json:"schema"`
	GoVersion  string                  `json:"go_version"`
	GOOS       string                  `json:"goos"`
	GOARCH     string                  `json:"goarch"`
	GOMAXPROCS int                     `json:"gomaxprocs"`
	Machine    machineInfo             `json:"machine"`
	Results    map[string]*microResult `json:"results"`
	Federation map[string]*fedResult   `json:"federation,omitempty"`
}

// machineInfo fingerprints the host a report was recorded on.
// Benchmark numbers are only comparable on the same machine, so the
// regression gate refuses to judge a report against a baseline whose
// fingerprint differs.
type machineInfo struct {
	Hostname   string `json:"hostname"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model"`
}

// fingerprint captures this machine's identity for the report stamp.
func fingerprint() machineInfo {
	host, _ := os.Hostname()
	return machineInfo{Hostname: host, GOMAXPROCS: runtime.GOMAXPROCS(0), CPUModel: cpuModel()}
}

// cpuModel reads the first "model name" from /proc/cpuinfo; empty on
// platforms without it — the fingerprint then rests on hostname and
// core count.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "model name") {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				return strings.TrimSpace(line[i+1:])
			}
		}
	}
	return ""
}

// microVec is the payload size for the wire-and-aggregate benchmarks
// (64k float32 ≈ a small encoder), mirroring bench_test.go.
const microVec = 1 << 16

func microValues(seed int64) []float32 {
	rng := nn.Rng(seed)
	v := make([]float32, microVec)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// microSparse builds a ~50%-dense sorted-run payload over microVec.
func microSparse(seed int64) *comm.Sparse {
	rng := nn.Rng(seed)
	s := &comm.Sparse{}
	for start := rng.Intn(8); start < microVec; start += 32 + rng.Intn(32) {
		l := 8 + rng.Intn(24)
		if start+l > microVec {
			l = microVec - start
		}
		s.Ranges = append(s.Ranges, comm.Range{Start: uint32(start), Len: uint32(l)})
		for k := 0; k < l; k++ {
			s.Values = append(s.Values, float32(rng.NormFloat64()))
		}
	}
	return s
}

// withProcs pins GOMAXPROCS for the duration of one benchmark body, so the
// round workloads can be measured both single-core (comparable across
// baselines and machines) and at full machine width.
func withProcs(procs int, fn func(b *testing.B)) func(b *testing.B) {
	return func(b *testing.B) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		fn(b)
	}
}

func flRoundBench(b *testing.B) {
	env := experiments.BuildCIFAREnv(experiments.Tiny, "resnet20", experiments.ClientSet{Clients: 4, Ratio: 1}, 1)
	algo := &fl.FedAvg{}
	algo.Setup(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.Round(env, i, env.SampleClients())
	}
}

// flRoundTelemetryBench is flRoundBench with full telemetry on —
// registry, tracer and a journal draining to io.Discard — so the
// telemetry-on/off delta is visible in the same report (the <1% round
// overhead contract; see also TestTelemetryOverheadBudget in fl).
func flRoundTelemetryBench(b *testing.B) {
	env := experiments.BuildCIFAREnv(experiments.Tiny, "resnet20", experiments.ClientSet{Clients: 4, Ratio: 1}, 1)
	env.EnableTelemetry(telemetry.New(io.Discard))
	algo := &fl.FedAvg{}
	algo.Setup(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.Round(env, i, env.SampleClients())
	}
}

func spatlRoundBench(b *testing.B) {
	env := experiments.BuildCIFAREnv(experiments.Tiny, "resnet20", experiments.ClientSet{Clients: 4, Ratio: 1}, 1)
	algo := experiments.NewAlgorithm("spatl", experiments.Tiny, 1)
	algo.Setup(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.Round(env, i, env.SampleClients())
	}
}

// ssflRoundBench measures one steady-state SSFL round — mask already
// agreed, index ranges already shipped, every wire frame values-only —
// with the mask-static sparse GEMM dispatch either on (the default) or
// off (the per-minibatch probing path it replaced). The on/off pair in
// the report is the direct cost of probing and branch-on-zero per
// minibatch under a mask that never changes.
func ssflRoundBench(maskStatic bool) func(b *testing.B) {
	return func(b *testing.B) {
		prev := nn.SetMaskStaticDispatch(maskStatic)
		defer nn.SetMaskStaticDispatch(prev)
		env := experiments.BuildCIFAREnv(experiments.Tiny, "resnet20", experiments.ClientSet{Clients: 4, Ratio: 1}, 1)
		algo := experiments.NewAlgorithm("ssfl", experiments.Tiny, 1)
		algo.Setup(env)
		algo.Round(env, 0, env.SampleClients()) // dense mask-agreement round
		algo.Round(env, 1, env.SampleClients()) // the one index-bearing round
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			algo.Round(env, i+2, env.SampleClients())
		}
	}
}

// heteroRoundBench measures one heterogeneous round — 2 cluster models
// over a half-width client population, so every upload is slice-packed
// and every fold per-index participation-weighted — on the same tiny
// environment as FLRound. The FLRound/HeteroRound pair in the report is
// the direct cost of clustered, width-sliced aggregation over dense
// FedAvg.
func heteroRoundBench(b *testing.B) {
	env := experiments.BuildCIFAREnv(experiments.Tiny, "resnet20", experiments.ClientSet{Clients: 4, Ratio: 1}, 1)
	alg := &hetero.FL{Opts: hetero.Options{Clusters: 2, Widths: []float64{0.5}, ReassignEvery: 4}}
	alg.Setup(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alg.Round(env, i, env.SampleClients())
	}
}

// microBenchmarks lists the tracked hot-path workloads, mirroring the
// definitions in bench_test.go.
var microBenchmarks = []struct {
	name string
	fn   func(b *testing.B)
}{
	{"MatMul", func(b *testing.B) {
		rng := nn.Rng(1)
		x := tensor.New(128, 256)
		y := tensor.New(256, 128)
		x.Randn(rng, 1)
		y.Randn(rng, 1)
		out := tensor.New(128, 128)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(out, x, y)
		}
	}},
	{"ConvForward", func(b *testing.B) {
		rng := nn.Rng(2)
		conv := nn.NewConv2D("conv", 16, 16, 3, 1, 1, false, rng)
		x := tensor.New(16, 16, 16, 16)
		x.Randn(rng, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conv.Forward(x, false)
		}
	}},
	{"ConvBackward", func(b *testing.B) {
		rng := nn.Rng(3)
		conv := nn.NewConv2D("conv", 16, 16, 3, 1, 1, false, rng)
		x := tensor.New(16, 16, 16, 16)
		x.Randn(rng, 1)
		out := conv.Forward(x, true)
		dout := tensor.New(out.Shape()...)
		dout.Randn(rng, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nn.ZeroGrad(conv.Params())
			conv.Backward(dout)
		}
	}},
	{"ConvForwardBatched", func(b *testing.B) {
		// Wide-OutC geometry: the batch-fused lowering runs the packed
		// panel-cache GEMM over multi-image im2col groups.
		rng := nn.Rng(4)
		conv := nn.NewConv2D("conv", 16, 32, 3, 1, 1, false, rng)
		x := tensor.New(32, 16, 16, 16)
		x.Randn(rng, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conv.Forward(x, false)
		}
	}},
	{"ConvForwardNarrow", func(b *testing.B) {
		// Narrow-OutC geometry (OutC < 16): the lowering swaps operand
		// roles so the wide patch buffer stays in the vectorized B slot.
		rng := nn.Rng(5)
		conv := nn.NewConv2D("conv", 16, 8, 3, 1, 1, false, rng)
		x := tensor.New(32, 16, 16, 16)
		x.Randn(rng, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conv.Forward(x, false)
		}
	}},
	{"ConvBackwardBatched", func(b *testing.B) {
		rng := nn.Rng(6)
		conv := nn.NewConv2D("conv", 16, 32, 3, 1, 1, false, rng)
		x := tensor.New(32, 16, 16, 16)
		x.Randn(rng, 1)
		out := conv.Forward(x, true)
		dout := tensor.New(out.Shape()...)
		dout.Randn(rng, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nn.ZeroGrad(conv.Params())
			conv.Backward(dout)
		}
	}},
	{"VecAdd", func(b *testing.B) {
		dst := microValues(40)
		src := microValues(41)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.VecAdd(dst, src)
		}
	}},
	{"RefVecAdd", func(b *testing.B) {
		dst := microValues(40)
		src := microValues(41)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.RefVecAdd(dst, src)
		}
	}},
	{"VecAxpy", func(b *testing.B) {
		y := microValues(42)
		x := microValues(43)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.VecAxpy(y, x, 0.001)
		}
	}},
	{"VecReLU", func(b *testing.B) {
		x := microValues(44)
		out := make([]float32, microVec)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.VecReLU(out, x)
		}
	}},
	{"VecSGDMomStep", func(b *testing.B) {
		w := microValues(45)
		v := make([]float32, microVec)
		g := microValues(46)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.VecSGDMomStep(w, v, g, 0.01, 1e-4, 0.9)
		}
	}},
	{"RefVecSGDMomStep", func(b *testing.B) {
		w := microValues(45)
		v := make([]float32, microVec)
		g := microValues(46)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.RefVecSGDMomStep(w, v, g, 0.01, 1e-4, 0.9)
		}
	}},
	{"EncodeDense", func(b *testing.B) {
		v := microValues(9)
		dst := make([]byte, comm.DenseLen(len(v)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = comm.EncodeDenseInto(dst, v)
		}
	}},
	{"RefEncodeDense", func(b *testing.B) {
		v := microValues(9)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comm.RefEncodeDense(v)
		}
	}},
	{"DecodeDense", func(b *testing.B) {
		buf := comm.EncodeDense(microValues(9))
		dst := make([]float32, microVec)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = comm.DecodeDenseInto(dst, buf)
			if err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"RefDecodeDense", func(b *testing.B) {
		buf := comm.EncodeDense(microValues(9))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := comm.RefDecodeDense(buf); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"EncodeSparse", func(b *testing.B) {
		s := microSparse(10)
		dst := make([]byte, s.EncodedLen())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = comm.EncodeSparseInto(dst, s)
		}
	}},
	{"DecodeSparse", func(b *testing.B) {
		s := microSparse(10)
		buf := comm.EncodeSparse(s)
		var out comm.Sparse
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := comm.DecodeSparseInto(&out, buf); err != nil {
				b.Fatal(err)
			}
		}
	}},
	{"ScatterAdd", func(b *testing.B) {
		s := microSparse(11)
		sum := make([]float32, microVec)
		count := make([]int32, microVec)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			comm.ScatterAdd(sum, count, s)
		}
	}},
	{"SPATLAggregate", func(b *testing.B) {
		uploads := make([]*comm.Sparse, 8)
		for i := range uploads {
			uploads[i] = microSparse(int64(20 + i))
		}
		sum := make([]float32, microVec)
		count := make([]int32, microVec)
		state := microValues(12)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tensor.Parallel(microVec, func(lo, hi int) {
				for j := lo; j < hi; j++ {
					sum[j] = 0
					count[j] = 0
				}
				for _, u := range uploads {
					comm.ScatterAddRange(sum, count, u, lo, hi)
				}
				for j := lo; j < hi; j++ {
					if count[j] > 0 {
						state[j] += sum[j] / float32(count[j])
					}
				}
			})
		}
	}},
	{"WeightedAverage", func(b *testing.B) {
		states := make([][]float32, 8)
		weights := make([]float64, 8)
		for i := range states {
			states[i] = microValues(int64(30 + i))
			weights[i] = float64(50 + i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if fl.WeightedAverage(states, weights) == nil {
				b.Fatal("nil average")
			}
		}
	}},
	{"TelemetryCounter", func(b *testing.B) {
		c := telemetry.NewRegistry().Counter("bench")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Add(1)
		}
	}},
	{"TelemetrySpan", func(b *testing.B) {
		tr := telemetry.NewTracer(telemetry.NewRegistry())
		tr.Start(1, "bench").End()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Start(1, "bench").End()
		}
	}},
	{"TelemetryJournal", func(b *testing.B) {
		j := telemetry.NewJournal(io.Discard)
		j.SetZeroTime(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			j.Emit(telemetry.ClientUpload(i, 3, 4096, 100))
		}
	}},
	{"FLRound", withProcs(1, flRoundBench)},
	{"FLRoundMP", withProcs(runtime.NumCPU(), flRoundBench)},
	{"FLRoundTelemetry", withProcs(1, flRoundTelemetryBench)},
	{"SPATLRound", withProcs(1, spatlRoundBench)},
	{"SPATLRoundMP", withProcs(runtime.NumCPU(), spatlRoundBench)},
	{"SSFLRound", withProcs(1, ssflRoundBench(true))},
	{"SSFLRoundMP", withProcs(runtime.NumCPU(), ssflRoundBench(true))},
	{"SSFLRoundProbe", withProcs(1, ssflRoundBench(false))},
	{"HeteroRound", withProcs(1, heteroRoundBench)},
	{"HeteroRoundMP", withProcs(runtime.NumCPU(), heteroRoundBench)},
	{"AggIngest", func(b *testing.B) {
		// 10k-client fold-on-arrival ingest in the worst arrival order
		// (exact reverse: every upload lands as far ahead of the cursor
		// as possible, so the staged set is under constant pressure).
		// One op = one full round: BeginRound, 10k Collects, FinishRound.
		// The post-run assertion is the O(inflight) memory contract —
		// peak staged never exceeds the staging limit, whatever the
		// selection size.
		const nClients = 10_000
		const limit = 256
		spec := models.Spec{Arch: "mlp", Classes: 2, InC: 1, H: 4, W: 4, Width: 0.25}
		global := models.Build(spec, 7)
		agg := algo.NewFedAvgAggregator(global, algo.Config{NumClients: nClients, Seed: 7})
		agg.SetStagingLimit(limit)
		payload := comm.EncodeDense(global.State(models.ScopeAll))
		ids := make([]uint32, nClients)
		for i := range ids {
			ids[i] = uint32(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agg.BeginRound(i, ids)
			for j := nClients - 1; j >= 0; j-- {
				agg.Collect(i, ids[j], 100, payload)
			}
			agg.FinishRound(i)
		}
		b.StopTimer()
		if peak := agg.StagingPeak(); peak > limit {
			b.Fatalf("staged peak %d exceeds staging limit %d", peak, limit)
		}
	}},
	{"FLRoundMem", func(b *testing.B) {
		// Massive-federation round memory: 5k synthetic clients, 1k
		// sampled per round, sharded collect with pooled bounded-batch
		// upload synthesis and a 10% straggler fraction. The B/op and
		// allocs/op columns are the point of this benchmark — with the
		// streaming fold, round memory is O(synthesis batch + staged +
		// stragglers), not O(selected).
		res, err := fl.RunMassive(fl.MassiveConfig{
			Clients: 5000, PerRound: 1000, Shards: 8, Rounds: b.N,
			OnTimeFrac: 0.9, Seed: 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Folded == 0 {
			b.Fatal("no uploads folded")
		}
	}},
	{"FlnetRound", func(b *testing.B) {
		// One full FedAvg round over loopback TCP — the same algo core as
		// FLRound plus framing, sockets and the fault-tolerant round loop.
		const clients = 4
		spec := models.Spec{Arch: "mlp", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.5}
		ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 4, H: 8, W: 8, Noise: 0.25}, clients*60, 1, 2)
		parts := data.DirichletPartition(ds.Y, 4, clients, 0.5, 10, nn.Rng(3))
		srv, err := flnet.NewServer(flnet.ServerConfig{
			Addr: "127.0.0.1:0", Clients: clients, Rounds: b.N, Seed: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := algo.Config{NumClients: clients, LocalEpochs: 1, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 5}
		agg := algo.NewFedAvgAggregator(models.Build(spec, 5), cfg)
		b.ResetTimer()
		serverErr := make(chan error, 1)
		go func() { serverErr <- srv.Run(agg) }()
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			tr, va := ds.Subset(parts[i]).Split(0.8)
			t := algo.NewFedAvgTrainer(&algo.Client{ID: i, Train: tr, Val: va, Model: models.Build(spec, 5)}, cfg)
			wg.Add(1)
			go func(i int, t *algo.FedAvgTrainer) {
				defer wg.Done()
				if err := flnet.RunClient(srv.Addr(), uint32(i), t.Client.Train.Len(), t); err != nil {
					b.Error(err)
				}
			}(i, t)
		}
		wg.Wait()
		if err := <-serverErr; err != nil {
			b.Fatal(err)
		}
	}},
}

// Memory gating floors: below these baseline magnitudes, allocs/op and
// B/op are dominated by testing.Benchmark noise (one-time pool warmup,
// goroutine stacks, map growth amortized over few iterations) and a
// ratio gate would flake. Benchmarks whose baseline sits under a floor
// are still recorded and diffed, just not gated on that axis.
const (
	allocGateFloor = 64   // allocs/op
	bytesGateFloor = 4096 // B/op
)

// runMicro measures every tracked workload, annotates against an optional
// baseline report, and writes JSON to jsonPath ("" = stdout only). With
// gate set, any benchmark slower than 1+tolerance times its baseline
// fails the run, and any benchmark allocating more than 1+allocTolerance
// times its baseline allocs/op or B/op (above the noise floors) fails
// too — the regression gate scripts/verify.sh --bench uses.
func runMicro(jsonPath, baselinePath string, gate bool, tolerance, allocTolerance float64) error {
	report := microReport{
		Schema:     "spatl-micro-bench/v1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Machine:    fingerprint(),
		Results:    map[string]*microResult{},
	}

	var baseline *microReport
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("read baseline: %w", err)
		}
		baseline = &microReport{}
		if err := json.Unmarshal(raw, baseline); err != nil {
			return fmt.Errorf("parse baseline: %w", err)
		}
	}

	for _, mb := range microBenchmarks {
		fmt.Fprintf(os.Stderr, "micro: %s...\n", mb.name)
		r := testing.Benchmark(mb.fn)
		res := &microResult{
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if baseline != nil {
			if base, ok := baseline.Results[mb.name]; ok && base.NsPerOp > 0 {
				res.BaselineNsPerOp = base.NsPerOp
				res.BaselineAllocs = base.AllocsPerOp
				res.BaselineBytes = base.BytesPerOp
				res.Speedup = base.NsPerOp / res.NsPerOp
				if res.AllocsPerOp > 0 {
					res.AllocReduction = float64(base.AllocsPerOp) / float64(res.AllocsPerOp)
				}
			}
		}
		report.Results[mb.name] = res
		fmt.Printf("%-14s %12.0f ns/op %10d B/op %6d allocs/op", mb.name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		if res.Speedup > 0 {
			fmt.Printf("   %.2fx vs baseline", res.Speedup)
		}
		fmt.Println()
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if jsonPath != "" {
		if err := os.WriteFile(jsonPath, out, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "micro: wrote %s\n", jsonPath)
	} else {
		os.Stdout.Write(out)
	}
	if gate {
		if baseline == nil {
			return fmt.Errorf("-gate needs a -baseline report to compare against")
		}
		// Numbers from a different machine are not a regression signal.
		// Baselines older than the fingerprint stamp (zero Machine) are
		// judged as before — there is nothing to compare against.
		if baseline.Machine != (machineInfo{}) && baseline.Machine != report.Machine {
			fmt.Fprintf(os.Stderr,
				"micro: baseline recorded on a different machine (%s, %d procs, %q; this is %s, %d procs, %q) — skipping regression gate\n",
				baseline.Machine.Hostname, baseline.Machine.GOMAXPROCS, baseline.Machine.CPUModel,
				report.Machine.Hostname, report.Machine.GOMAXPROCS, report.Machine.CPUModel)
			return nil
		}
		var regressed []string
		for name, res := range report.Results {
			if res.BaselineNsPerOp > 0 && res.NsPerOp > res.BaselineNsPerOp*(1+tolerance) {
				regressed = append(regressed,
					fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.0f%%)",
						name, res.NsPerOp, res.BaselineNsPerOp, 100*(res.NsPerOp/res.BaselineNsPerOp-1)))
			}
			if res.BaselineAllocs >= allocGateFloor &&
				float64(res.AllocsPerOp) > float64(res.BaselineAllocs)*(1+allocTolerance) {
				regressed = append(regressed,
					fmt.Sprintf("%s: %d allocs/op vs baseline %d (+%.0f%%)",
						name, res.AllocsPerOp, res.BaselineAllocs,
						100*(float64(res.AllocsPerOp)/float64(res.BaselineAllocs)-1)))
			}
			if res.BaselineBytes >= bytesGateFloor &&
				float64(res.BytesPerOp) > float64(res.BaselineBytes)*(1+allocTolerance) {
				regressed = append(regressed,
					fmt.Sprintf("%s: %d B/op vs baseline %d (+%.0f%%)",
						name, res.BytesPerOp, res.BaselineBytes,
						100*(float64(res.BytesPerOp)/float64(res.BaselineBytes)-1)))
			}
		}
		if len(regressed) > 0 {
			sort.Strings(regressed)
			return fmt.Errorf("regression gate (time tolerance %.0f%%, alloc tolerance %.0f%%) failed:\n  %s",
				100*tolerance, 100*allocTolerance, strings.Join(regressed, "\n  "))
		}
		fmt.Fprintf(os.Stderr, "micro: regression gate passed (time tolerance %.0f%%, alloc tolerance %.0f%%)\n",
			100*tolerance, 100*allocTolerance)
	}
	return nil
}
