// Command spatl-bench regenerates the SPATL paper's tables and figures.
// Every experiment in DESIGN.md's index is addressable by id:
//
//	spatl-bench -exp table1 -scale small
//	spatl-bench -exp all -scale tiny -csv out/
//	spatl-bench -list
//
// Scenario matrices sweep algorithm x participation x skew x transport
// cross-products from one declarative JSON spec (see EXPERIMENTS.md),
// emitting one zero-time journal per cell plus a comparison report:
//
//	spatl-bench -matrix quick -out out/quick
//	spatl-bench -matrix path/to/matrix.json -dry
//	spatl-bench -matrix list
//
// Scales: tiny (seconds, smoke), small (laptop reproduction, default),
// paper (the paper's client counts and model widths; many hours in pure
// Go).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spatl/internal/experiments"
	"spatl/internal/telemetry"
)

func main() {
	var (
		exp       = flag.String("exp", "", "experiment id (see -list) or 'all'")
		scale     = flag.String("scale", "small", "scale preset: tiny | small | paper")
		csvDir    = flag.String("csv", "", "directory for CSV series export (optional)")
		seed      = flag.Int64("seed", 1, "experiment seed")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		archs     = flag.String("archs", "", "comma-separated architecture override (e.g. resnet20,vgg11)")
		clients   = flag.String("clients", "", "comma-separated clients:ratio override (e.g. 10:1.0,30:0.4)")
		rounds    = flag.Int("rounds", 0, "override the scale's round caps (both convergence and curve rounds)")
		perClient = flag.Int("perclient", 0, "override the scale's examples per client")
		micro     = flag.Bool("micro", false, "run hot-path micro-benchmarks and emit JSON")
		fed       = flag.Bool("fed", false, "run the federation-scale root-ingest benchmark (flat vs aggregation tree)")
		microJSON = flag.String("json", "", "with -micro/-fed: write (or merge) the JSON report to this file (default stdout)")
		baseline  = flag.String("baseline", "", "with -micro: prior -micro JSON to compute speedups against")
		gate      = flag.Bool("gate", false, "with -micro and -baseline: exit nonzero if any benchmark regressed beyond -tolerance")
		tolerance = flag.Float64("tolerance", 0.15, "with -gate: allowed fractional slowdown before failing")
		allocTol  = flag.Float64("alloc-tolerance", 0.25, "with -gate: allowed fractional allocs/op and B/op growth before failing (gated only above noise floors)")
		journal   = flag.String("journal", "", "append the JSONL round journal of every experiment run to this file")

		matrixF   = flag.String("matrix", "", "run a scenario matrix: preset name, JSON file (matrix or single spec), or 'list'")
		matrixOut = flag.String("out", "matrix-out", "with -matrix: directory for per-cell journals and the comparison report")
		workers   = flag.Int("workers", 0, "with -matrix: concurrent cells (default min(4, GOMAXPROCS))")
		force     = flag.Bool("force", false, "with -matrix: run past the matrix cell cap")
		dry       = flag.Bool("dry", false, "with -matrix: print the expanded cells without running them")
		cache     = flag.Bool("cache", false, "with -matrix: reuse journals in -out for cells whose spec is unchanged (hash sidecar), re-running only changed cells")
	)
	flag.Parse()

	if *matrixF != "" {
		if *list {
			*matrixF = "list"
		}
		if err := runMatrixCmd(*matrixF, *matrixOut, *workers, *force, *dry, *cache); err != nil {
			fmt.Fprintln(os.Stderr, "spatl-bench:", err)
			os.Exit(1)
		}
		return
	}

	if *journal != "" {
		jf, err := os.OpenFile(*journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spatl-bench:", err)
			os.Exit(1)
		}
		defer jf.Close()
		tel := telemetry.New(jf)
		defer tel.Journal.Flush()
		experiments.SetTelemetry(tel)
	}

	if *micro {
		if err := runMicro(*microJSON, *baseline, *gate, *tolerance, *allocTol); err != nil {
			fmt.Fprintln(os.Stderr, "spatl-bench:", err)
			os.Exit(1)
		}
		if !*fed {
			return
		}
	}
	if *fed {
		if err := runFed(*microJSON); err != nil {
			fmt.Fprintln(os.Stderr, "spatl-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		fmt.Println("experiments:")
		for _, name := range experiments.Names() {
			fmt.Printf("  %s\n", name)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "spatl-bench: -exp is required (use -list to see ids)")
		os.Exit(2)
	}
	s, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatl-bench:", err)
		os.Exit(2)
	}
	if *archs != "" {
		s.Archs = strings.Split(*archs, ",")
	}
	if *clients != "" {
		var sets []experiments.ClientSet
		for _, part := range strings.Split(*clients, ",") {
			var cs experiments.ClientSet
			if _, err := fmt.Sscanf(part, "%d:%f", &cs.Clients, &cs.Ratio); err != nil {
				fmt.Fprintf(os.Stderr, "spatl-bench: bad -clients entry %q (want N:ratio)\n", part)
				os.Exit(2)
			}
			sets = append(sets, cs)
		}
		s.ClientSets = sets
	}
	if *rounds > 0 {
		s.Rounds = *rounds
		s.CurveRounds = *rounds
	}
	if *perClient > 0 {
		s.PerClient = *perClient
	}
	opts := experiments.Options{Scale: s, Out: os.Stdout, CSVDir: *csvDir, Seed: *seed}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.Names()
	}
	for _, id := range ids {
		run, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "spatl-bench: unknown experiment %q (known: %s)\n",
				id, strings.Join(experiments.Names(), ", "))
			os.Exit(2)
		}
		start := time.Now()
		fmt.Printf("\n######## experiment %s (scale %s) ########\n", id, s.Name)
		if err := run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "spatl-bench: %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s done in %s]\n", id, time.Since(start).Round(time.Millisecond))
	}
}
