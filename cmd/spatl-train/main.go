// Command spatl-train runs a single federated-learning experiment with
// explicit hyperparameters and live per-round logging — the tool for
// exploring one configuration rather than regenerating a paper artifact.
//
//	spatl-train -algo spatl -arch resnet20 -clients 10 -rounds 30
//	spatl-train -algo scaffold -arch vgg11 -clients 30 -ratio 0.4 -lr 0.01
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spatl/internal/comm"
	"spatl/internal/data"
	"spatl/internal/experiments"
	"spatl/internal/fl"
	"spatl/internal/models"
)

func main() {
	var (
		algo    = flag.String("algo", "spatl", "algorithm: fedavg | fedprox | fednova | scaffold | spatl")
		arch    = flag.String("arch", "resnet20", "model: resnet20 | resnet32 | resnet18 | resnet56 | vgg11 | cnn2 | mlp")
		clients = flag.Int("clients", 10, "number of clients")
		ratio   = flag.Float64("ratio", 1.0, "client sample ratio per round")
		rounds  = flag.Int("rounds", 30, "communication rounds")
		target  = flag.Float64("target", 0, "stop early at this average accuracy (0 = run all rounds)")
		scale   = flag.String("scale", "small", "scale preset for data/model size: tiny | small | paper")
		epochs  = flag.Int("epochs", 0, "local epochs (0 = scale default)")
		lr      = flag.Float64("lr", 0, "learning rate (0 = scale default)")
		seed    = flag.Int64("seed", 1, "seed")
		femnist = flag.Bool("femnist", false, "use the FEMNIST (LEAF) workload with the cnn2 model")
		cifar   = flag.String("cifar", "", "directory with real CIFAR-10 binary batches (cifar-10-batches-bin); replaces the synthetic data")
	)
	flag.Parse()

	s, err := experiments.ScaleByName(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spatl-train:", err)
		os.Exit(2)
	}
	if *epochs > 0 {
		s.LocalEpochs = *epochs
	}
	if *lr > 0 {
		s.LR = *lr
	}
	cs := experiments.ClientSet{Clients: *clients, Ratio: *ratio}

	var env *fl.Env
	switch {
	case *cifar != "":
		var err error
		env, err = buildRealCIFAREnv(*cifar, s, *arch, cs, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "spatl-train:", err)
			os.Exit(1)
		}
	case *femnist:
		env = experiments.BuildFEMNISTEnv(s, cs, *seed)
	default:
		env = experiments.BuildCIFAREnv(s, *arch, cs, *seed)
	}
	params, flops := env.Global.Describe()
	fmt.Printf("model %s: %d params, %d FLOPs/instance, state %d bytes\n",
		env.Spec, params, flops, 4*env.Global.StateLen(0))

	a := experiments.NewAlgorithm(*algo, s, *seed)
	res := fl.Run(env, a, fl.RunOpts{Rounds: *rounds, TargetAcc: *target, Log: os.Stdout})

	last := res.Records[len(res.Records)-1]
	fmt.Printf("\nfinal: acc %.4f (best %.4f) after %d rounds — uplink %.2f MB, downlink %.2f MB\n",
		res.FinalAcc(), res.BestAcc(), last.Round+1, comm.MB(last.CumUp), comm.MB(last.CumDown))
}

// buildRealCIFAREnv assembles a federation over real CIFAR-10 binaries:
// Dirichlet(0.5) label-skew partition, exactly as the synthetic path.
func buildRealCIFAREnv(dir string, s experiments.Scale, arch string, cs experiments.ClientSet, seed int64) (*fl.Env, error) {
	ds, err := data.LoadCIFAR10Dir(dir, false)
	if err != nil {
		return nil, err
	}
	spec := models.Spec{Arch: arch, Classes: 10, InC: 3, H: 32, W: 32, Width: s.Width}
	cfg := fl.Config{
		NumClients: cs.Clients, SampleRatio: cs.Ratio,
		LocalEpochs: s.LocalEpochs, BatchSize: s.BatchSize,
		LR: s.LR, Momentum: 0.9, Seed: seed,
	}
	parts := data.DirichletPartition(ds.Y, 10, cs.Clients, 0.5, 10, rand.New(rand.NewSource(seed+11)))
	cd := make([]fl.ClientData, len(parts))
	for i, p := range parts {
		tr, va := ds.Subset(p).Split(0.8)
		cd[i] = fl.ClientData{Train: tr, Val: va}
	}
	return fl.NewEnv(spec, cfg, cd), nil
}
