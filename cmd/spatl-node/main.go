// Command spatl-node runs federated learning over real TCP — one process
// per role — demonstrating that the algorithms deploy unchanged outside
// the in-process simulator: the server and client cores come from
// internal/algo, the same implementations the simulator drives.
//
// Start a server, then one process per client (here 4 clients):
//
//	spatl-node -role server -addr :7070 -clients 4 -rounds 10
//	spatl-node -role client -addr localhost:7070 -id 0 -of 4
//	spatl-node -role client -addr localhost:7070 -id 1 -of 4
//	...
//
// Every node derives the same synthetic non-IID data split from the
// shared seed, so client i of n always holds shard i. All seven
// algorithms are available via -algo; the server tolerates stragglers
// when -straggler-timeout is set, aggregating each round from the
// clients that reported in time, and -quorum switches it to async
// FedBuff-style rounds that close after that many uploads.
//
// A heterogeneous federation (-algo hetero) maintains -clusters cluster
// models and lets clients train width-sliced sub-networks; -clusters
// and -width must match on every node (the slice specs derive from them
// locally, with no negotiation):
//
//	spatl-node -role server -algo hetero -clusters 2 -width 0.25,0.5,1 -clients 6 -rounds 10
//	spatl-node -role client -algo hetero -clusters 2 -width 0.25,0.5,1 -id 0 -of 6
//	...
//
// At larger scale the federation runs as a two-level aggregation tree:
// a root fans out to edge aggregators, each edge owns a contiguous
// shard of the client-ID space and forwards one pooled payload per
// round (see DESIGN.md §11):
//
//	spatl-node -role root -addr :7071 -shards 2 -clients 4 -rounds 10
//	spatl-node -role edge -addr :7072 -root-addr localhost:7071 -shard 0 -shards 2 -of 4
//	spatl-node -role edge -addr :7073 -root-addr localhost:7071 -shard 1 -shards 2 -of 4
//	spatl-node -role client -addr localhost:7072 -id 0 -of 4
//	...clients 0..1 dial edge 0, clients 2..3 dial edge 1
//
// The tree is a collection topology, not an arithmetic change: a seeded
// run produces the bitwise-identical global model through either shape.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"spatl/internal/algo"
	"spatl/internal/data"
	"spatl/internal/eval"
	"spatl/internal/flnet"
	"spatl/internal/models"
	"spatl/internal/scenario"
	"spatl/internal/telemetry"
)

func main() {
	var (
		role    = flag.String("role", "", "server | client | root | edge")
		algoF   = flag.String("algo", "fedavg", "federation algorithm: fedavg | fedprox | scaffold | fednova | spatl | ssfl | hetero")
		addr    = flag.String("addr", "localhost:7070", "server address (server: listen, client: dial)")
		clients = flag.Int("clients", 4, "number of clients in the federation")
		id      = flag.Int("id", 0, "this client's id (client)")
		of      = flag.Int("of", 4, "total clients, for data sharding (client)")
		rounds  = flag.Int("rounds", 10, "federated rounds (server)")
		epochs  = flag.Int("epochs", 2, "local epochs per round (client)")
		lr      = flag.Float64("lr", 0.02, "local learning rate (client)")
		seed    = flag.Int64("seed", 1, "shared federation seed (must match across nodes)")
		save    = flag.String("save", "", "write the final model checkpoint here (client)")

		// Per-algorithm hyperparameters, routed through the shared
		// scenario registry — the same knobs spatl-bench matrix cells
		// configure. Must match across every node of a federation.
		mu          = flag.Float64("mu", 0, "fedprox: proximal coefficient override (0 = paper default)")
		keepRatio   = flag.Float64("keep-ratio", 0, "ssfl: kept-channel fraction (0 = default 0.5)")
		algoLR      = flag.Float64("algo-lr", 0, "per-algorithm learning-rate override (takes precedence over -lr)")
		flopsBudget = flag.Float64("flops-budget", 0, "spatl: sub-network FLOPs budget (0 = default 0.6)")

		clusters  = flag.Int("clusters", 0, "hetero: cluster-model count (0 = default 1)")
		widthDist = flag.String("width", "",
			"hetero: comma-separated client width cycle, e.g. 0.25,0.5,1 — client i trains width[i mod len] (empty = full width)")
		reassignEvery = flag.Int("reassign-every", 0, "hetero: cluster reassignment period in rounds (0 = default 5, negative disables)")

		helloTimeout     = flag.Duration("hello-timeout", 30*time.Second, "server: max wait for a client's registration frame")
		stragglerTimeout = flag.Duration("straggler-timeout", 0, "server: max wait for a round upload before dropping the client (0 = wait forever)")
		writeTimeout     = flag.Duration("write-timeout", 30*time.Second, "server: per-broadcast write deadline")
		dialTimeout      = flag.Duration("dial-timeout", 30*time.Second, "client: TCP connect deadline")

		telemetryAddr = flag.String("telemetry-addr", "", "serve /metrics (registry JSON), /healthz and /debug/pprof on this address (e.g. :9090)")
		journalPath   = flag.String("journal", "", "append the JSONL round journal to this file")

		quorum   = flag.Int("quorum", 0, "server: close each round once this many uploads arrived; stragglers fold into the next round (0 = synchronous)")
		shards   = flag.Int("shards", 2, "root: number of edge aggregators in the tree")
		shard    = flag.Int("shard", 0, "edge: this edge's shard id (owns clients ShardRange(shard, of, shards))")
		rootAddr = flag.String("root-addr", "localhost:7071", "edge: the tree root's address")
	)
	flag.Parse()

	// Telemetry is optional: with neither flag set, tel stays nil and the
	// whole stack runs with the hooks compiled to a nil-check.
	var tel *telemetry.Set
	if *telemetryAddr != "" || *journalPath != "" {
		var journal *os.File
		if *journalPath != "" {
			var err error
			journal, err = os.OpenFile(*journalPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fatal(err)
			}
			defer journal.Close()
		}
		if journal != nil {
			tel = telemetry.New(journal)
			defer tel.Journal.Flush()
		} else {
			tel = telemetry.New(nil)
		}
		if *telemetryAddr != "" {
			go func() {
				if err := http.ListenAndServe(*telemetryAddr, telemetry.NewMux(tel.Reg)); err != nil {
					fmt.Fprintln(os.Stderr, "spatl-node: telemetry server:", err)
				}
			}()
			fmt.Printf("telemetry on http://%s/metrics (pprof at /debug/pprof/)\n", *telemetryAddr)
		}
	}

	spec := models.Spec{Arch: "resnet20", Classes: 6, InC: 3, H: 16, W: 16, Width: 0.25}
	// Algorithm construction goes through the scenario registry — the
	// single construction path shared with the in-process simulator and
	// spatl-bench matrix cells.
	entry, err := scenario.Lookup(*algoF)
	if err != nil {
		fatal(fmt.Errorf("unknown -algo %q", *algoF))
	}
	widths, err := parseWidths(*widthDist)
	if err != nil {
		fatal(err)
	}
	params := scenario.Params{
		ProxMu: *mu, KeepRatio: *keepRatio, LR: *algoLR,
		FLOPsBudget: *flopsBudget, Seed: *seed,
		Clusters: *clusters, WidthDist: widths, ReassignEvery: *reassignEvery,
	}
	// The shared hyperparameters; Seed must match across every node so
	// the per-(round, client) training seeds line up. The registry merges
	// the per-algorithm overrides (-mu, -algo-lr, ...) on top.
	cfg := algo.Config{
		NumClients: *clients, LocalEpochs: *epochs, BatchSize: 16,
		LR: *lr, Momentum: 0.9, Seed: *seed,
	}
	if entry.Tune != nil {
		entry.Tune(params, &cfg)
	}

	buildAgg := func(global *models.SplitModel) flnet.Aggregator {
		return entry.NewAggregator(global, params, cfg)
	}

	switch *role {
	case "server":
		srv, err := flnet.NewServer(flnet.ServerConfig{
			Addr: *addr, Clients: *clients, Rounds: *rounds, Seed: *seed,
			HelloTimeout:     *helloTimeout,
			StragglerTimeout: *stragglerTimeout,
			WriteTimeout:     *writeTimeout,
			Quorum:           *quorum,
			Tel:              tel,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("spatl-node server listening on %s (%s), waiting for %d clients...\n", srv.Addr(), *algoF, *clients)
		if err := srv.Run(buildAgg(models.Build(spec, *seed))); err != nil {
			fatal(err)
		}
		fmt.Printf("federation finished: %d rounds, uplink %.2f MB, downlink %.2f MB\n",
			*rounds, float64(srv.UpBytes)/(1<<20), float64(srv.DownBytes)/(1<<20))
		if *quorum > 0 {
			fmt.Printf("async quorum %d: %d late uploads folded\n", *quorum, srv.LateUploads())
		}
		for _, st := range srv.ClientStats() {
			if st.Drops > 0 || st.Errors > 0 || !st.Alive {
				fmt.Printf("client %d: alive=%v drops=%d errors=%d\n", st.ID, st.Alive, st.Drops, st.Errors)
			}
		}

	case "root":
		root, err := flnet.NewTreeServer(flnet.TreeServerConfig{
			Addr: *addr, Shards: *shards, Clients: *clients, Rounds: *rounds, Seed: *seed,
			HelloTimeout:     *helloTimeout,
			StragglerTimeout: *stragglerTimeout,
			WriteTimeout:     *writeTimeout,
			Tel:              tel,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("spatl-node tree root listening on %s (%s), waiting for %d edges / %d clients...\n",
			root.Addr(), *algoF, *shards, *clients)
		if err := root.Run(buildAgg(models.Build(spec, *seed))); err != nil {
			fatal(err)
		}
		m := root.Meter()
		fmt.Printf("federation finished: %d rounds, client uplink %.2f MB, downlink %.2f MB (relay %.2f / %.2f MB), %d drops\n",
			*rounds, float64(m.Up())/(1<<20), float64(m.Down())/(1<<20),
			float64(m.RelayUp())/(1<<20), float64(m.RelayDown())/(1<<20), root.Drops())
		for sh := 0; sh < *shards; sh++ {
			if d := root.ShardDrops(sh); d > 0 {
				fmt.Printf("shard %d: %d drops\n", sh, d)
			}
		}

	case "edge":
		lo, hi := algo.ShardRange(*shard, *of, *shards)
		edge, err := flnet.NewEdge(flnet.EdgeConfig{
			Addr: *addr, Clients: hi - lo, RootAddr: *rootAddr, Shard: uint32(*shard),
			DialTimeout:      *dialTimeout,
			HelloTimeout:     *helloTimeout,
			StragglerTimeout: *stragglerTimeout,
			WriteTimeout:     *writeTimeout,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("spatl-node edge %d/%d listening on %s for clients %d..%d, root %s...\n",
			*shard, *shards, edge.Addr(), lo, hi-1, *rootAddr)
		if err := edge.Run(); err != nil {
			fatal(err)
		}
		fmt.Printf("edge %d done\n", *shard)

	case "client":
		train, val := shardFor(spec, *id, *of, *seed)
		// The model must start from the server's initialization so the
		// federation is reproducible across transports.
		c := &algo.Client{ID: *id, Train: train, Val: val, Model: models.Build(spec, *seed)}
		tr := entry.NewTrainer(c, params, cfg)
		fmt.Printf("spatl-node client %d/%d (%s): %d train / %d val samples, dialing %s...\n",
			*id, *of, *algoF, train.Len(), val.Len(), *addr)
		err := flnet.RunClientOpts(*addr, uint32(*id), train.Len(), tr,
			flnet.ClientOptions{DialTimeout: *dialTimeout, Tel: tel})
		if err != nil {
			fatal(err)
		}
		acc := eval.Accuracy(c.Model, val, 32)
		fmt.Printf("client %d done: local validation accuracy %.3f\n", *id, acc)
		if *save != "" {
			if err := c.Model.SaveFile(*save); err != nil {
				fatal(err)
			}
			fmt.Printf("saved final model to %s\n", *save)
		}

	default:
		fmt.Fprintln(os.Stderr, "spatl-node: -role must be server, client, root or edge")
		os.Exit(2)
	}
}

// parseWidths parses the -width cycle: comma-separated multipliers in
// (0, 1]. Every node of a federation must pass the identical cycle —
// the slice specs are derived locally from it, with no negotiation.
func parseWidths(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || w <= 0 || w > 1 {
			return nil, fmt.Errorf("bad -width entry %q (want multipliers in (0, 1])", f)
		}
		out = append(out, w)
	}
	return out, nil
}

// shardFor regenerates the shared dataset and returns client id's shard
// — every node computes the identical partition from the seed.
func shardFor(spec models.Spec, id, of int, seed int64) (train, val *data.Dataset) {
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: spec.Classes, H: spec.H, W: spec.W},
		of*150, seed*3+101, seed*7+303)
	parts := data.DirichletPartition(ds.Y, spec.Classes, of, 0.5, 10, rand.New(rand.NewSource(seed+11)))
	return ds.Subset(parts[id]).Split(0.8)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spatl-node:", err)
	os.Exit(1)
}
