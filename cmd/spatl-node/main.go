// Command spatl-node runs federated learning over real TCP — one process
// per role — demonstrating that the algorithms deploy unchanged outside
// the in-process simulator.
//
// Start a server, then one process per client (here 4 clients):
//
//	spatl-node -role server -addr :7070 -clients 4 -rounds 10
//	spatl-node -role client -addr localhost:7070 -id 0 -of 4
//	spatl-node -role client -addr localhost:7070 -id 1 -of 4
//	...
//
// Every node derives the same synthetic non-IID data split from the
// shared seed, so client i of n always holds shard i.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/flnet"
	"spatl/internal/models"
	"spatl/internal/rl"
)

func main() {
	var (
		role    = flag.String("role", "", "server | client")
		algo    = flag.String("algo", "fedavg", "federation algorithm: fedavg | spatl")
		addr    = flag.String("addr", "localhost:7070", "server address (server: listen, client: dial)")
		clients = flag.Int("clients", 4, "number of clients in the federation (server)")
		id      = flag.Int("id", 0, "this client's id (client)")
		of      = flag.Int("of", 4, "total clients, for data sharding (client)")
		rounds  = flag.Int("rounds", 10, "federated rounds (server)")
		epochs  = flag.Int("epochs", 2, "local epochs per round (client)")
		lr      = flag.Float64("lr", 0.02, "local learning rate (client)")
		seed    = flag.Int64("seed", 1, "shared federation seed (must match across nodes)")
		save    = flag.String("save", "", "write the final model checkpoint here (client)")
	)
	flag.Parse()

	spec := models.Spec{Arch: "resnet20", Classes: 6, InC: 3, H: 16, W: 16, Width: 0.25}

	switch *role {
	case "server":
		srv, err := flnet.NewServer(flnet.ServerConfig{
			Addr: *addr, Clients: *clients, Rounds: *rounds, Seed: *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("spatl-node server listening on %s (%s), waiting for %d clients...\n", srv.Addr(), *algo, *clients)
		var agg flnet.Aggregator
		switch *algo {
		case "fedavg":
			agg = &flnet.FedAvgAggregator{Global: models.Build(spec, *seed)}
		case "spatl":
			agg = flnet.NewSPATLAggregator(models.Build(spec, *seed), *clients)
		default:
			fatal(fmt.Errorf("unknown -algo %q", *algo))
		}
		if err := srv.Run(agg); err != nil {
			fatal(err)
		}
		fmt.Printf("federation finished: %d rounds, uplink %.2f MB, downlink %.2f MB\n",
			*rounds, float64(srv.UpBytes)/(1<<20), float64(srv.DownBytes)/(1<<20))

	case "client":
		train, val := shardFor(spec, *id, *of, *seed)
		opts := fl.LocalOpts{Epochs: *epochs, BatchSize: 16, LR: *lr, Momentum: 0.9}
		var tr flnet.Trainer
		var model *models.SplitModel
		switch *algo {
		case "fedavg":
			ft := flnet.NewFedAvgTrainer(spec, train, val, *id, opts, *seed+int64(*id))
			tr, model = ft, ft.Client.Model
		case "spatl":
			st := flnet.NewSPATLTrainer(spec, train, val, *id, opts,
				rl.AgentConfig{Dim: 16, HeadHidden: 32, Seed: *seed + 31}, *seed+int64(*id))
			tr, model = st, st.Client.Model
		default:
			fatal(fmt.Errorf("unknown -algo %q", *algo))
		}
		fmt.Printf("spatl-node client %d/%d (%s): %d train / %d val samples, dialing %s...\n",
			*id, *of, *algo, train.Len(), val.Len(), *addr)
		if err := flnet.RunClient(*addr, uint32(*id), train.Len(), tr); err != nil {
			fatal(err)
		}
		acc := fl.EvalAccuracy(model, val, 32)
		fmt.Printf("client %d done: local validation accuracy %.3f\n", *id, acc)
		if *save != "" {
			if err := model.SaveFile(*save); err != nil {
				fatal(err)
			}
			fmt.Printf("saved final model to %s\n", *save)
		}

	default:
		fmt.Fprintln(os.Stderr, "spatl-node: -role must be server or client")
		os.Exit(2)
	}
}

// shardFor regenerates the shared dataset and returns client id's shard
// — every node computes the identical partition from the seed.
func shardFor(spec models.Spec, id, of int, seed int64) (train, val *data.Dataset) {
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: spec.Classes, H: spec.H, W: spec.W},
		of*150, seed*3+101, seed*7+303)
	parts := data.DirichletPartition(ds.Y, spec.Classes, of, 0.5, 10, rand.New(rand.NewSource(seed+11)))
	return ds.Subset(parts[id]).Split(0.8)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spatl-node:", err)
	os.Exit(1)
}
