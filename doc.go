// Package spatl is a complete, stdlib-only Go reproduction of "SPATL:
// Salient Parameter Aggregation and Transfer Learning for Heterogeneous
// Federated Learning" (SC 2022), including every substrate the paper
// depends on: a from-scratch neural-network training stack, the paper's
// model zoo split into shared encoders and private predictors, synthetic
// non-IID datasets, a federated-learning engine with the FedAvg /
// FedProx / FedNova / SCAFFOLD baselines, the GNN+PPO salient-parameter
// selection agent, structured pruning with physical sub-network
// extraction, byte-exact communication accounting, a TCP deployment
// layer, and a benchmark harness regenerating every table and figure of
// the paper's evaluation.
//
// Start with README.md for usage, DESIGN.md for the system inventory and
// the per-experiment index, and EXPERIMENTS.md for measured-vs-paper
// results. The library lives under internal/; the runnable surfaces are
// cmd/spatl-train, cmd/spatl-bench, cmd/spatl-prune, cmd/spatl-node and
// the examples/ directory.
package spatl
