// Cold-start transfer: deploying on a client that never trained.
//
// In production FL most devices never get sampled. SPATL's answer
// (eq. 4, §IV-A) is that such a client only downloads the shared encoder
// and fits its small local predictor — no encoder gradients, no upload.
// This example trains a federation of 6 clients, then cold-starts two
// held-out clients with very different data mixes, comparing against
// simply deploying the global model untouched. Run with:
//
//	go run ./examples/transfer
package main

import (
	"fmt"
	"math/rand"

	"spatl/internal/core"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
)

func main() {
	const (
		trainClients = 6
		coldClients  = 2
		total        = trainClients + coldClients
	)
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 6, H: 16, W: 16, Noise: 0.5}, total*130, 21, 22)
	parts := data.DirichletPartition(ds.Y, 6, total, 0.3, 12, rand.New(rand.NewSource(23)))
	var cd []fl.ClientData
	for _, p := range parts {
		tr, va := ds.Subset(p).Split(0.8)
		cd = append(cd, fl.ClientData{Train: tr, Val: va})
	}
	spec := models.Spec{Arch: "resnet20", Classes: 6, InC: 3, H: 16, W: 16, Width: 0.25}
	// Only the first trainClients shards join the federation; the last
	// two never participate in any round.
	env := fl.NewEnv(spec, fl.Config{
		NumClients:  trainClients,
		SampleRatio: 1.0,
		LocalEpochs: 2, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 24,
	}, cd[:trainClients])

	algo := core.New(core.Options{FineTuneRounds: 2, FineTuneEpisodes: 2})
	fmt.Println("federated training (cold clients excluded)...")
	res := fl.Run(env, algo, fl.RunOpts{Rounds: 8})
	fmt.Printf("federation average accuracy: %.3f\n\n", res.FinalAcc())

	for i := 0; i < coldClients; i++ {
		// A brand-new device: fresh model, never trained, never sampled.
		m := models.Build(spec, int64(500+i))
		c := &fl.Client{ID: trainClients + i, Train: cd[trainClients+i].Train, Val: cd[trainClients+i].Val, Model: m}
		// Baseline: deploy global encoder + the untrained predictor.
		c.Model.SetState(models.ScopeEncoder, env.Global.State(models.ScopeEncoder))
		before := fl.EvalAccuracy(c.Model, c.Val, 64)
		// SPATL cold start: fit the local predictor only (eq. 4).
		algo.ColdStart(env, c, 4, rand.New(rand.NewSource(int64(100+i))))
		after := fl.EvalAccuracy(c.Model, c.Val, 64)
		fmt.Printf("cold client %d: accuracy %.3f → %.3f after predictor-only adaptation\n",
			c.ID, before, after)
	}
	fmt.Println("\nThe encoder was never modified on the cold clients — only the small local")
	fmt.Println("predictor trained, which is exactly what a storage/compute-limited edge device can afford.")
}
