// Distributed SPATL over real TCP sockets.
//
// The other examples use the in-process simulator; this one runs the
// full SPATL protocol — encoder-only sharing, gradient control, salient
// sparse uploads with index ranges — across loopback TCP connections:
// one aggregation server and three client goroutines that could equally
// be separate processes or machines (see cmd/spatl-node). The algorithm
// cores come from internal/algo, the same implementations the simulator
// drives — only the transport differs. Run with:
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"math/rand"
	"sync"

	"spatl/internal/algo"
	"spatl/internal/data"
	"spatl/internal/eval"
	"spatl/internal/flnet"
	"spatl/internal/models"
	"spatl/internal/rl"
)

func main() {
	const (
		clients = 3
		rounds  = 6
	)
	spec := models.Spec{Arch: "resnet20", Classes: 6, InC: 3, H: 16, W: 16, Width: 0.25}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 6, H: 16, W: 16}, clients*120, 1, 2)
	parts := data.DirichletPartition(ds.Y, 6, clients, 0.5, 10, rand.New(rand.NewSource(3)))

	srv, err := flnet.NewServer(flnet.ServerConfig{
		Addr: "127.0.0.1:0", Clients: clients, Rounds: rounds, Seed: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("server listening on %s\n", srv.Addr())
	global := models.Build(spec, 5)
	opts := algo.SPATLOptions{AgentCfg: rl.AgentConfig{Dim: 16, HeadHidden: 32, Seed: 6}}
	cfg := algo.Config{
		NumClients: clients, LocalEpochs: 2, BatchSize: 16,
		LR: 0.02, Momentum: 0.9, Seed: 20,
	}
	agg := algo.NewSPATLAggregator(global, opts, cfg)

	done := make(chan error, 1)
	go func() { done <- srv.Run(agg) }()

	var wg sync.WaitGroup
	trainers := make([]*algo.SPATLTrainer, clients)
	for i := 0; i < clients; i++ {
		tr, va := ds.Subset(parts[i]).Split(0.8)
		trainers[i] = algo.NewSPATLTrainer(&algo.Client{
			ID: i, Train: tr, Val: va, Model: models.Build(spec, int64(20+i)),
		}, opts, cfg)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := flnet.RunClient(srv.Addr(), uint32(i), trainers[i].Client.Train.Len(), trainers[i]); err != nil {
				fmt.Printf("client %d error: %v\n", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := <-done; err != nil {
		panic(err)
	}

	fmt.Printf("\nfederation of %d clients finished after %d rounds\n", clients, rounds)
	fmt.Printf("measured traffic: uplink %.2f MB, downlink %.2f MB\n",
		float64(srv.UpBytes)/(1<<20), float64(srv.DownBytes)/(1<<20))
	dense := float64(rounds*clients*2*4*global.StateLen(models.ScopeEncoder)) / (1 << 20)
	fmt.Printf("a dense state+control exchange (SCAFFOLD-style) would have uplinked %.2f MB — "+
		"salient selection saved %.0f%%\n", dense, 100*(1-float64(srv.UpBytes)/(1<<20)/dense))
	for i, tr := range trainers {
		acc := eval.Accuracy(tr.Client.Model, tr.Client.Val, 32)
		fmt.Printf("client %d personalized accuracy: %.3f\n", i, acc)
	}
}
