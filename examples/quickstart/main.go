// Quickstart: federated training with SPATL in ~40 lines.
//
// Five clients hold non-IID shards of a synthetic image-classification
// task; SPATL trains a shared ResNet-20 encoder across them while each
// client keeps its own predictor head. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"spatl/internal/core"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
)

func main() {
	const clients = 5

	// 1. A dataset and a non-IID split (Dirichlet label skew, α=0.5 —
	//    the Non-IID benchmark setting).
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 6, H: 16, W: 16}, clients*150, 1, 2)
	parts := data.DirichletPartition(ds.Y, 6, clients, 0.5, 10, rand.New(rand.NewSource(3)))
	var cd []fl.ClientData
	for _, p := range parts {
		tr, va := ds.Subset(p).Split(0.8)
		cd = append(cd, fl.ClientData{Train: tr, Val: va})
	}

	// 2. The federated environment: a width-reduced ResNet-20 split into
	//    shared encoder + per-client predictor.
	spec := models.Spec{Arch: "resnet20", Classes: 6, InC: 3, H: 16, W: 16, Width: 0.25}
	env := fl.NewEnv(spec, fl.Config{
		NumClients: clients, SampleRatio: 1.0,
		LocalEpochs: 3, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1,
	}, cd)

	// 3. Train with SPATL: salient-parameter uploads, heterogeneous
	//    predictors, encoder-only gradient control.
	algo := core.New(core.Options{FineTuneRounds: 2, FineTuneEpisodes: 2})
	res := fl.Run(env, algo, fl.RunOpts{Rounds: 10, Log: os.Stdout})

	last := res.Records[len(res.Records)-1]
	fmt.Printf("\nSPATL finished: avg client accuracy %.1f%%, total uplink %.2f MB\n",
		100*res.FinalAcc(), float64(last.CumUp)/(1<<20))
}
