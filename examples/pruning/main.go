// Pruning with the topology-aware RL agent.
//
// The SPATL selection agent is a tiny GNN+PPO policy that reads a
// network's computational graph and emits per-layer keep ratios. This
// example pre-trains it on ResNet-56 pruning, transfers it to ResNet-20
// (fine-tuning only the MLP head, as in the paper §V-F4), and compares
// the result against uniform L1 pruning at the same FLOPs budget. Run
// with:
//
//	go run ./examples/pruning
package main

import (
	"fmt"
	"math/rand"

	"spatl/internal/core"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/prune"
	"spatl/internal/rl"
)

func main() {
	const budget = 0.6 // pruned model may use at most 60% of original FLOPs
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 6, H: 16, W: 16}, 600, 11, 12)
	train, val := ds.Split(0.85)

	// A centrally trained ResNet-20 to prune.
	spec := models.Spec{Arch: "resnet20", Classes: 6, InC: 3, H: 16, W: 16, Width: 0.25}
	m := models.Build(spec, 13)
	trainCentrally(m, train, 3)
	baseAcc := fl.EvalAccuracy(m, val, 64)
	_, baseFLOPs := m.Describe()
	fmt.Printf("unpruned ResNet-20: acc %.3f, %d FLOPs/instance\n", baseAcc, baseFLOPs)

	// Pre-train the agent on ResNet-56 pruning, then transfer.
	fmt.Println("\npre-training agent on ResNet-56 pruning task...")
	m56 := models.Build(models.Spec{Arch: "resnet56", Classes: 6, InC: 3, H: 16, W: 16, Width: 0.25}, 14)
	agent, hist := core.PretrainAgent(rl.AgentConfig{Dim: 16, HeadHidden: 32, Seed: 15}, m56, val, budget, 6, 4, 16)
	fmt.Printf("pre-training reward: first %.3f → last %.3f (agent is %0.1f KB)\n",
		hist[0].AvgReward, hist[len(hist)-1].AvgReward, float64(agent.SizeBytes())/1024)

	fmt.Println("transferring to ResNet-20 (MLP head fine-tune only)...")
	core.FineTuneAgent(agent, m, val, budget, 4, 4, 17)
	env := prune.NewEnv(m, val, budget)
	agentSel := prune.Select(m, rl.BestAction(agent, env))

	// Uniform L1 at the same budget for comparison.
	l1Sel := prune.SelectWithMasks(m, prune.L1Masks(m, prune.UniformRatiosForBudget(m, budget)))

	for _, c := range []struct {
		name string
		sel  *prune.Selection
	}{{"RL agent", agentSel}, {"uniform L1", l1Sel}} {
		pr, tot := prune.MaskedFLOPs(m, c.sel.Masks)
		var acc float64
		prune.WithMasked(m, c.sel, func() { acc = fl.EvalAccuracy(m, val, 64) })
		// Recover accuracy with a short fine-tune of the pruned network.
		ft := m.Clone()
		ftSel := prune.SelectWithMasks(ft, c.sel.Masks)
		prune.FineTune(ft, ftSel, train, 2, 0.01, rand.New(rand.NewSource(31)))
		recovered := fl.EvalAccuracy(ft, val, 64)
		fmt.Printf("\n%s: FLOPs reduced %.1f%%, masked acc %.3f, fine-tuned acc %.3f (Δ %+0.3f)",
			c.name, 100*(1-float64(pr)/float64(tot)), acc, recovered, recovered-baseAcc)
		fmt.Printf("\n  per-layer keep ratios: ")
		for _, r := range c.sel.Ratios() {
			fmt.Printf("%.2f ", r)
		}
		fmt.Println()
	}
	fmt.Println("\nThe agent allocates non-uniform ratios from topology — deeper/wider layers")
	fmt.Println("tolerate more pruning — where L1-uniform treats every layer identically.")
}

func trainCentrally(m *models.SplitModel, train *data.Dataset, epochs int) {
	rng := rand.New(rand.NewSource(1))
	params := m.Params()
	opt := nn.NewSGD(params, 0.02, 0.9, 0)
	for e := 0; e < epochs; e++ {
		for _, idx := range train.Batches(rng, 32) {
			x, y := train.Batch(idx)
			nn.ZeroGrad(params)
			out := m.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy(out, y)
			m.Backward(grad)
			opt.Step()
		}
	}
}
