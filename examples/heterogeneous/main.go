// Heterogeneous clients: why personalization matters on non-IID data.
//
// This example recreates the paper's motivating scenario (§V-B, Fig.
// "local_acc"): ten clients with heavily skewed label distributions
// train the same ResNet-20 with SPATL and with SCAFFOLD. SPATL's
// per-client accuracy is higher *and* tighter, because each client's
// private predictor adapts the shared encoder to its own data, while a
// uniform model over-serves clients near the global distribution and
// under-serves the rest. Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"math/rand"

	"spatl/internal/core"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/stats"
)

func buildEnv(seed int64) *fl.Env {
	const clients = 10
	// Noise 0.6 makes the task genuinely hard, and α=0.15 gives each
	// client a starkly different label mix; with only half the clients
	// sampled per round, the uniform-model baseline drifts — the regime
	// where the paper's heterogeneity findings appear (§V-B).
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 6, H: 16, W: 16, Noise: 0.6}, clients*120, 7, 8)
	parts := data.DirichletPartition(ds.Y, 6, clients, 0.15, 12, rand.New(rand.NewSource(seed)))
	var cd []fl.ClientData
	for _, p := range parts {
		tr, va := ds.Subset(p).Split(0.8)
		cd = append(cd, fl.ClientData{Train: tr, Val: va})
	}
	spec := models.Spec{Arch: "resnet20", Classes: 6, InC: 3, H: 16, W: 16, Width: 0.25}
	return fl.NewEnv(spec, fl.Config{
		NumClients: clients, SampleRatio: 0.5,
		LocalEpochs: 2, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: seed,
	}, cd)
}

func main() {
	const rounds = 12
	for _, run := range []struct {
		name string
		algo fl.Algorithm
	}{
		{"SPATL (personalized)", core.New(core.Options{FineTuneRounds: 2, FineTuneEpisodes: 2})},
		{"SCAFFOLD (uniform model)", &fl.SCAFFOLD{}},
	} {
		env := buildEnv(9)
		res := fl.Run(env, run.algo, fl.RunOpts{Rounds: rounds})
		per := res.Records[len(res.Records)-1].PerClient
		fmt.Printf("\n%s after %d rounds:\n", run.name, rounds)
		fmt.Printf("  per-client accuracy: ")
		for _, v := range per {
			fmt.Printf("%.2f ", v)
		}
		fmt.Printf("\n  mean %.3f  std %.3f  worst client %.3f\n",
			stats.Mean(per), stats.Std(per), stats.Min(per))
	}
	fmt.Println("\nExpected: SPATL serves the *hardest* clients much better — a higher worst-client")
	fmt.Println("accuracy and a tighter spread — because each client's private predictor adapts")
	fmt.Println("the shared encoder to its own label mix. A uniform model over-serves clients")
	fmt.Println("near the global distribution and abandons the outliers (the paper's Fig. on")
	fmt.Println("per-client local accuracy, §V-B).")
}
