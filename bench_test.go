// Package spatl's root benchmark suite regenerates every table and
// figure of the paper at the Tiny scale (one Benchmark per artifact —
// see DESIGN.md §3 for the mapping), plus micro-benchmarks of the
// substrates that dominate runtime. Run the full harness with:
//
//	go test -bench=. -benchmem
//
// Paper-scale regeneration uses the spatl-bench CLI instead:
//
//	go run ./cmd/spatl-bench -exp all -scale small
package spatl_test

import (
	"io"
	"testing"

	"spatl/internal/comm"
	"spatl/internal/experiments"
	"spatl/internal/fl"
	"spatl/internal/nn"
	"spatl/internal/tensor"
)

// benchOpts runs drivers quietly at the Tiny scale.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: experiments.Tiny, Out: io.Discard, Seed: 1}
}

func runDriver(b *testing.B, driver experiments.Runner) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := driver(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLearningEfficiency regenerates the learning-curve figure
// (E1, §V-B): accuracy vs round for SPATL and all baselines.
func BenchmarkLearningEfficiency(b *testing.B) { runDriver(b, experiments.LearningEfficiency) }

// BenchmarkFEMNISTLearning regenerates the FEMNIST 2-layer-CNN curve
// (E1, §V-B) — the paper's known exception case.
func BenchmarkFEMNISTLearning(b *testing.B) { runDriver(b, experiments.FEMNISTLearning) }

// BenchmarkConvergeAccuracy regenerates Fig. 3 (E2): converged accuracy
// per method per setting.
func BenchmarkConvergeAccuracy(b *testing.B) { runDriver(b, experiments.ConvergeAccuracy) }

// BenchmarkLocalAccuracy regenerates the per-client accuracy figure
// (E3, §V-B).
func BenchmarkLocalAccuracy(b *testing.B) { runDriver(b, experiments.LocalAccuracy) }

// BenchmarkTable1Communication regenerates Table I (E4, §V-C):
// communication cost to target accuracy.
func BenchmarkTable1Communication(b *testing.B) { runDriver(b, experiments.Table1Communication) }

// BenchmarkRoundsToTarget regenerates the rounds-to-target figure
// (E5, §V-C).
func BenchmarkRoundsToTarget(b *testing.B) { runDriver(b, experiments.RoundsToTarget) }

// BenchmarkTable2Convergence regenerates Table II (E6, §V-C): cost and
// accuracy at convergence for the larger populations.
func BenchmarkTable2Convergence(b *testing.B) { runDriver(b, experiments.Table2Convergence) }

// BenchmarkTable3Transfer regenerates Table III (E7, §V-E):
// transferability of the federated-trained model.
func BenchmarkTable3Transfer(b *testing.B) { runDriver(b, experiments.Table3Transfer) }

// BenchmarkInferenceAcceleration regenerates the inference table
// (E8, §V-D): per-client FLOPs reduction after SPATL training.
func BenchmarkInferenceAcceleration(b *testing.B) { runDriver(b, experiments.InferenceAcceleration) }

// BenchmarkTable4Pruning regenerates Table IV (E9, §V-F1): the agent
// against SFP/FPGM/DSA/L1 at a matched FLOPs budget.
func BenchmarkTable4Pruning(b *testing.B) { runDriver(b, experiments.Table4Pruning) }

// BenchmarkAblationSelection regenerates Fig. 4 (E10): salient selection
// on/off.
func BenchmarkAblationSelection(b *testing.B) { runDriver(b, experiments.AblationSelection) }

// BenchmarkAblationTransfer regenerates Fig. 5a (E11): transfer learning
// on/off.
func BenchmarkAblationTransfer(b *testing.B) { runDriver(b, experiments.AblationTransfer) }

// BenchmarkAblationGradientControl regenerates Fig. 5b (E12): gradient
// control on/off.
func BenchmarkAblationGradientControl(b *testing.B) {
	runDriver(b, experiments.AblationGradientControl)
}

// BenchmarkRLAgentFineTune regenerates Fig. 6 (E13): agent pre-training
// on ResNet-56 and head-only fine-tuning on ResNet-18.
func BenchmarkRLAgentFineTune(b *testing.B) { runDriver(b, experiments.RLAgentFineTune) }

// BenchmarkCompression runs the beyond-paper compression ablation:
// salient selection composed with half-precision payloads.
func BenchmarkCompression(b *testing.B) { runDriver(b, experiments.Compression) }

// BenchmarkRobustness runs the beyond-paper failure-injection sweep:
// accuracy vs client drop rate for FedAvg and SPATL.
func BenchmarkRobustness(b *testing.B) { runDriver(b, experiments.Robustness) }

// BenchmarkWallTime runs the beyond-paper time-to-accuracy simulation
// over heterogeneous 4G links.
func BenchmarkWallTime(b *testing.B) { runDriver(b, experiments.WallTime) }

// ---- substrate micro-benchmarks ----

// BenchmarkMatMul measures the parallel blocked matrix multiply at a
// training-typical size.
func BenchmarkMatMul(b *testing.B) {
	rng := nn.Rng(1)
	x := tensor.New(128, 256)
	y := tensor.New(256, 128)
	x.Randn(rng, 1)
	y.Randn(rng, 1)
	out := tensor.New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, x, y)
	}
}

// BenchmarkMatMulTransB measures the dot-kernel C = A·Bᵀ path that linear
// forward and the convolution weight gradient ride on.
func BenchmarkMatMulTransB(b *testing.B) {
	rng := nn.Rng(4)
	x := tensor.New(128, 256)
	y := tensor.New(128, 256)
	x.Randn(rng, 1)
	y.Randn(rng, 1)
	out := tensor.New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulTransBInto(out, x, y)
	}
}

// BenchmarkMatMulTransA measures the C = Aᵀ·B path used by linear and
// convolution input gradients.
func BenchmarkMatMulTransA(b *testing.B) {
	rng := nn.Rng(5)
	x := tensor.New(256, 128)
	y := tensor.New(256, 128)
	x.Randn(rng, 1)
	y.Randn(rng, 1)
	out := tensor.New(128, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulTransAInto(out, x, y)
	}
}

// BenchmarkIm2Col measures the row-major convolution lowering at the
// ResNet-style geometry used by the conv benchmarks.
func BenchmarkIm2Col(b *testing.B) {
	rng := nn.Rng(6)
	d := tensor.NewConvDims(16, 16, 16, 16, 3, 1, 1)
	x := tensor.New(16, 16, 16)
	x.Randn(rng, 1)
	col := make([]float32, 16*3*3*d.OutH*d.OutW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Im2Col(col, x.Data, d)
	}
}

// BenchmarkIm2ColPatch measures the patch-major lowering the dense forward
// path feeds straight into the dot kernel.
func BenchmarkIm2ColPatch(b *testing.B) {
	rng := nn.Rng(7)
	d := tensor.NewConvDims(16, 16, 16, 16, 3, 1, 1)
	x := tensor.New(16, 16, 16)
	x.Randn(rng, 1)
	col := make([]float32, 16*3*3*d.OutH*d.OutW)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Im2ColPatch(col, x.Data, d)
	}
}

// BenchmarkCol2Im measures the backward scatter that folds column
// gradients back into image gradients.
func BenchmarkCol2Im(b *testing.B) {
	rng := nn.Rng(8)
	d := tensor.NewConvDims(16, 16, 16, 16, 3, 1, 1)
	col := tensor.New(16*3*3, d.OutH*d.OutW)
	col.Randn(rng, 1)
	dx := make([]float32, 16*16*16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dx {
			dx[j] = 0
		}
		tensor.Col2Im(dx, col.Data, d)
	}
}

// BenchmarkConvForward measures a ResNet-style 3×3 convolution forward
// pass (batch 16).
func BenchmarkConvForward(b *testing.B) {
	rng := nn.Rng(2)
	conv := nn.NewConv2D("conv", 16, 16, 3, 1, 1, false, rng)
	x := tensor.New(16, 16, 16, 16)
	x.Randn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(x, false)
	}
}

// BenchmarkConvBackward measures the matching backward pass.
func BenchmarkConvBackward(b *testing.B) {
	rng := nn.Rng(3)
	conv := nn.NewConv2D("conv", 16, 16, 3, 1, 1, false, rng)
	x := tensor.New(16, 16, 16, 16)
	x.Randn(rng, 1)
	out := conv.Forward(x, true)
	dout := tensor.New(out.Shape()...)
	dout.Randn(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrad(conv.Params())
		conv.Backward(dout)
	}
}

// BenchmarkFLRound measures one full FedAvg communication round at the
// Tiny scale (4 clients, parallel local updates, real serialization).
func BenchmarkFLRound(b *testing.B) {
	env := experiments.BuildCIFAREnv(experiments.Tiny, "resnet20", experiments.ClientSet{Clients: 4, Ratio: 1}, 1)
	algo := &fl.FedAvg{}
	algo.Setup(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.Round(env, i, env.SampleClients())
	}
}

// BenchmarkSPATLRound measures one full SPATL round (selection agent,
// sparse payloads, gradient control) at the Tiny scale.
func BenchmarkSPATLRound(b *testing.B) {
	env := experiments.BuildCIFAREnv(experiments.Tiny, "resnet20", experiments.ClientSet{Clients: 4, Ratio: 1}, 1)
	algo := experiments.NewAlgorithm("spatl", experiments.Tiny, 1)
	algo.Setup(env)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.Round(env, i, env.SampleClients())
	}
}

// ---- wire-and-aggregate micro-benchmarks ----

// benchVec is a model-sized payload for the codec benchmarks (64k
// float32 ≈ a small encoder).
const benchVec = 1 << 16

func benchValues(seed int64) []float32 {
	rng := nn.Rng(seed)
	v := make([]float32, benchVec)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// benchSparse builds a ~50%-dense sorted-run payload over benchVec.
func benchSparse(seed int64) *comm.Sparse {
	rng := nn.Rng(seed)
	s := &comm.Sparse{}
	for start := rng.Intn(8); start < benchVec; start += 32 + rng.Intn(32) {
		l := 8 + rng.Intn(24)
		if start+l > benchVec {
			l = benchVec - start
		}
		s.Ranges = append(s.Ranges, comm.Range{Start: uint32(start), Len: uint32(l)})
		for k := 0; k < l; k++ {
			s.Values = append(s.Values, float32(rng.NormFloat64()))
		}
	}
	return s
}

// BenchmarkEncodeDense measures the bulk dense serializer on the reused
// buffer path the round loops use.
func BenchmarkEncodeDense(b *testing.B) {
	v := benchValues(9)
	dst := make([]byte, comm.DenseLen(len(v)))
	b.SetBytes(4 * benchVec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = comm.EncodeDenseInto(dst, v)
	}
}

// BenchmarkRefEncodeDense measures the retained scalar reference encoder.
func BenchmarkRefEncodeDense(b *testing.B) {
	v := benchValues(9)
	b.SetBytes(4 * benchVec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comm.RefEncodeDense(v)
	}
}

// BenchmarkDecodeDense measures the bulk dense deserializer.
func BenchmarkDecodeDense(b *testing.B) {
	buf := comm.EncodeDense(benchValues(9))
	dst := make([]float32, benchVec)
	b.SetBytes(4 * benchVec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = comm.DecodeDenseInto(dst, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefDecodeDense measures the retained scalar reference decoder.
func BenchmarkRefDecodeDense(b *testing.B) {
	buf := comm.EncodeDense(benchValues(9))
	b.SetBytes(4 * benchVec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := comm.RefDecodeDense(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeSparse measures the sparse (salient-delta) serializer.
func BenchmarkEncodeSparse(b *testing.B) {
	s := benchSparse(10)
	dst := make([]byte, s.EncodedLen())
	b.SetBytes(int64(4 * len(s.Values)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = comm.EncodeSparseInto(dst, s)
	}
}

// BenchmarkDecodeSparse measures the sparse deserializer on the pooled
// reuse path the server uses.
func BenchmarkDecodeSparse(b *testing.B) {
	s := benchSparse(10)
	buf := comm.EncodeSparse(s)
	var out comm.Sparse
	b.SetBytes(int64(4 * len(s.Values)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := comm.DecodeSparseInto(&out, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScatterAdd measures the per-index aggregation primitive
// (eq. 12's inner loop) at ~50% density.
func BenchmarkScatterAdd(b *testing.B) {
	s := benchSparse(11)
	sum := make([]float32, benchVec)
	count := make([]int32, benchVec)
	b.SetBytes(int64(4 * len(s.Values)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comm.ScatterAdd(sum, count, s)
	}
}

// BenchmarkSPATLAggregate measures the full eq. 12 server reduction —
// 8 sparse client uploads, chunked over the parameter dimension with
// fixed client order per index.
func BenchmarkSPATLAggregate(b *testing.B) {
	uploads := make([]*comm.Sparse, 8)
	for i := range uploads {
		uploads[i] = benchSparse(int64(20 + i))
	}
	sum := make([]float32, benchVec)
	count := make([]int32, benchVec)
	state := benchValues(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Parallel(benchVec, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				sum[j] = 0
				count[j] = 0
			}
			for _, u := range uploads {
				comm.ScatterAddRange(sum, count, u, lo, hi)
			}
			for j := lo; j < hi; j++ {
				if count[j] > 0 {
					state[j] += sum[j] / float32(count[j])
				}
			}
		})
	}
}

// BenchmarkWeightedAverage measures the dense server reduction shared by
// the baseline algorithms: 8 clients, model-sized states.
func BenchmarkWeightedAverage(b *testing.B) {
	states := make([][]float32, 8)
	weights := make([]float64, 8)
	for i := range states {
		states[i] = benchValues(int64(30 + i))
		weights[i] = float64(50 + i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fl.WeightedAverage(states, weights) == nil {
			b.Fatal("nil average")
		}
	}
}
