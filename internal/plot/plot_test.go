package plot

import (
	"bytes"
	"strings"
	"testing"

	"spatl/internal/stats"
)

func sampleSeries() []stats.Series {
	return []stats.Series{
		{Name: "spatl", X: []float64{1, 2, 3}, Y: []float64{0.2, 0.5, 0.8}},
		{Name: "fedavg", X: []float64{1, 2, 3}, Y: []float64{0.2, 0.4, 0.6}},
	}
}

func TestLineProducesValidSVG(t *testing.T) {
	var buf bytes.Buffer
	err := Line(&buf, Config{Title: "learning", XLabel: "round", YLabel: "accuracy"}, sampleSeries()...)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("not an SVG document")
	}
	for _, want := range []string{"learning", "round", "accuracy", "spatl", "fedavg", "polyline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<polyline") != 2 {
		t.Fatalf("expected 2 polylines, got %d", strings.Count(out, "<polyline"))
	}
}

func TestLineEscapesText(t *testing.T) {
	var buf bytes.Buffer
	s := stats.Series{Name: `a<b&"c"`, X: []float64{0, 1}, Y: []float64{0, 1}}
	if err := Line(&buf, Config{Title: "x<y"}, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "a<b") || strings.Contains(out, "x<y") {
		t.Fatal("unescaped markup in SVG text")
	}
	if !strings.Contains(out, "a&lt;b&amp;") {
		t.Fatal("escape missing")
	}
}

func TestLineHandlesDegenerateInput(t *testing.T) {
	var buf bytes.Buffer
	// No series at all.
	if err := Line(&buf, Config{}); err != nil {
		t.Fatal(err)
	}
	// Constant series (zero range) must not divide by zero.
	buf.Reset()
	s := stats.Series{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}}
	if err := Line(&buf, Config{}, s); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Fatal("SVG contains non-finite coordinates")
	}
}

func TestLineMismatchedXYLengths(t *testing.T) {
	var buf bytes.Buffer
	s := stats.Series{Name: "short-y", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2}}
	if err := Line(&buf, Config{}, s); err != nil {
		t.Fatal(err)
	}
	// Only the first two points plot.
	if !strings.Contains(buf.String(), "polyline") {
		t.Fatal("polyline missing")
	}
}

func TestTrimNum(t *testing.T) {
	if trimNum(1234.5) != "1235" && trimNum(1234.5) != "1234" {
		t.Fatalf("big tick %q", trimNum(1234.5))
	}
	if trimNum(12.34) != "12.3" {
		t.Fatalf("mid tick %q", trimNum(12.34))
	}
	if trimNum(0.123) != "0.12" {
		t.Fatalf("small tick %q", trimNum(0.123))
	}
}
