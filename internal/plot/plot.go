// Package plot renders experiment series as standalone SVG line charts
// using only the standard library, so `spatl-bench -csv dir` regenerates
// the paper's figures as image files alongside the raw CSV data.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"

	"spatl/internal/stats"
)

// Config controls chart geometry and labeling.
type Config struct {
	Title  string
	XLabel string
	YLabel string
	W, H   int // canvas size in px (default 640×400)
}

func (c Config) withDefaults() Config {
	if c.W == 0 {
		c.W = 640
	}
	if c.H == 0 {
		c.H = 400
	}
	return c
}

// palette holds distinguishable series colors (colorblind-safe family).
var palette = []string{
	"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
}

// Line renders the series as an SVG line chart.
func Line(w io.Writer, cfg Config, series ...stats.Series) error {
	cfg = cfg.withDefaults()
	const (
		padL = 60.0
		padR = 130.0
		padT = 36.0
		padB = 44.0
	)
	plotW := float64(cfg.W) - padL - padR
	plotH := float64(cfg.H) - padT - padB

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
		}
		for _, y := range s.Y {
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little vertical headroom.
	yr := ymax - ymin
	ymin -= 0.05 * yr
	ymax += 0.05 * yr

	px := func(x float64) float64 { return padL + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return padT + (1-(y-ymin)/(ymax-ymin))*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		cfg.W, cfg.H, cfg.W, cfg.H)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Title and axis labels.
	if cfg.Title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
			cfg.W/2, escape(cfg.Title))
	}
	if cfg.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
			padL+plotW/2, cfg.H-8, escape(cfg.XLabel))
	}
	if cfg.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
			padT+plotH/2, padT+plotH/2, escape(cfg.YLabel))
	}
	// Grid and ticks: 5 divisions per axis.
	for i := 0; i <= 5; i++ {
		fx := xmin + float64(i)/5*(xmax-xmin)
		fy := ymin + float64(i)/5*(ymax-ymin)
		gx, gy := px(fx), py(fy)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", gx, padT, gx, padT+plotH)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", padL, gy, padL+plotW, gy)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="middle">%s</text>`+"\n",
			gx, padT+plotH+14, trimNum(fx))
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="10" text-anchor="end">%s</text>`+"\n",
			padL-4, gy+3, trimNum(fy))
	}
	// Axes.
	fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#444"/>`+"\n",
		padL, padT, plotW, plotH)
	// Series.
	for si, s := range series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) > 0 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		// Legend entry.
		ly := padT + 14 + 18*float64(si)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="3"/>`+"\n",
			padL+plotW+10, ly, padL+plotW+30, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11">%s</text>`+"\n",
			padL+plotW+34, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// escape sanitizes text for SVG.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// trimNum formats a tick value compactly.
func trimNum(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}
