package experiments

import (
	"fmt"

	"spatl/internal/fl"
	"spatl/internal/stats"
)

// LearningEfficiency reproduces the paper's learning-curve figure
// (§V-B, Fig. "vgg_cifar"): average client accuracy vs communication
// round for SPATL and the four baselines, across architectures and
// client populations.
func LearningEfficiency(o Options) error {
	w := o.out()
	for _, arch := range o.Scale.Archs {
		for _, cs := range o.Scale.ClientSets {
			fmt.Fprintf(w, "\n== learning efficiency: %s, %d clients, sample ratio %.1f ==\n",
				arch, cs.Clients, cs.Ratio)
			var series []stats.Series
			tw := table(o)
			fmt.Fprintf(tw, "algo\tfinal acc\tbest acc\tcurve\n")
			for _, algo := range AllAlgos {
				env := BuildCIFAREnv(o.Scale, arch, cs, o.Seed)
				res := fl.Run(env, NewAlgorithm(algo, o.Scale, o.Seed), fl.RunOpts{Rounds: o.Scale.CurveRounds})
				series = append(series, accSeries(algo, res))
				fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%s\n", algo, res.FinalAcc(), res.BestAcc(), stats.Sparkline(ys(res)))
			}
			tw.Flush()
			if err := writeCSV(o, fmt.Sprintf("learning_%s_c%d", arch, cs.Clients), "round", series...); err != nil {
				return err
			}
		}
	}
	return nil
}

// FEMNISTLearning reproduces the 2-layer-CNN-on-FEMNIST curve — the one
// setting where the paper reports SPATL slightly *behind* the baselines
// because the small model breaks the over-parameterization assumption.
func FEMNISTLearning(o Options) error {
	w := o.out()
	cs := o.Scale.ClientSets[0]
	fmt.Fprintf(w, "\n== FEMNIST (LEAF), 2-layer CNN, %d clients ==\n", cs.Clients)
	var series []stats.Series
	tw := table(o)
	fmt.Fprintf(tw, "algo\tfinal acc\tbest acc\tcurve\n")
	for _, algo := range AllAlgos {
		env := BuildFEMNISTEnv(o.Scale, cs, o.Seed)
		res := fl.Run(env, NewAlgorithm(algo, o.Scale, o.Seed), fl.RunOpts{Rounds: o.Scale.CurveRounds})
		series = append(series, accSeries(algo, res))
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%s\n", algo, res.FinalAcc(), res.BestAcc(), stats.Sparkline(ys(res)))
	}
	tw.Flush()
	return writeCSV(o, "learning_femnist", "round", series...)
}

// ConvergeAccuracy reproduces Fig. 3: converged accuracy per method per
// FL setting (the bar chart form of the learning curves).
func ConvergeAccuracy(o Options) error {
	w := o.out()
	for _, arch := range o.Scale.Archs {
		for _, cs := range o.Scale.ClientSets {
			fmt.Fprintf(w, "\n== converge accuracy: %s, %d clients (ratio %.1f) ==\n", arch, cs.Clients, cs.Ratio)
			tw := table(o)
			fmt.Fprintf(tw, "algo\tconverge acc\tΔ vs fedavg\n")
			var fedavgAcc float64
			for _, algo := range AllAlgos {
				env := BuildCIFAREnv(o.Scale, arch, cs, o.Seed)
				res := fl.Run(env, NewAlgorithm(algo, o.Scale, o.Seed), fl.RunOpts{Rounds: o.Scale.Rounds})
				acc := res.BestAcc()
				if algo == "fedavg" {
					fedavgAcc = acc
				}
				fmt.Fprintf(tw, "%s\t%.4f\t%+.4f\n", algo, acc, acc-fedavgAcc)
			}
			tw.Flush()
		}
	}
	return nil
}

// LocalAccuracy reproduces Fig. "local_acc": per-client accuracy after
// training completes (ResNet-20, first client set), comparing SPATL's
// personalized models with SCAFFOLD's uniform model. The paper's finding:
// SPATL's per-client accuracies are higher and tighter.
func LocalAccuracy(o Options) error {
	w := o.out()
	cs := o.Scale.ClientSets[0]
	fmt.Fprintf(w, "\n== per-client local accuracy: resnet20, %d clients ==\n", cs.Clients)
	type row struct {
		name string
		per  []float64
	}
	var rows []row
	for _, algo := range []string{"spatl", "scaffold", "fedavg"} {
		env := BuildCIFAREnv(o.Scale, "resnet20", cs, o.Seed)
		res := fl.Run(env, NewAlgorithm(algo, o.Scale, o.Seed), fl.RunOpts{Rounds: o.Scale.Rounds})
		last := res.Records[len(res.Records)-1]
		rows = append(rows, row{algo, last.PerClient})
	}
	tw := table(o)
	fmt.Fprintf(tw, "algo\tmean\tstd\tmin\tmax\tper-client\n")
	var series []stats.Series
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.4f\t%.4f\t", r.name,
			stats.Mean(r.per), stats.Std(r.per), stats.Min(r.per), stats.Max(r.per))
		for _, v := range r.per {
			fmt.Fprintf(tw, "%.2f ", v)
		}
		fmt.Fprintln(tw)
		s := stats.Series{Name: r.name}
		for i, v := range r.per {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, v)
		}
		series = append(series, s)
	}
	tw.Flush()
	return writeCSV(o, "local_accuracy", "client", series...)
}

// RoundsToTarget reproduces Fig. "train_rounds": communication rounds
// each method needs to reach the target accuracy, across FL settings.
func RoundsToTarget(o Options) error {
	w := o.out()
	target := o.Scale.TargetAcc
	for _, arch := range o.Scale.Archs {
		for _, cs := range o.Scale.ClientSets {
			fmt.Fprintf(w, "\n== rounds to %.0f%% accuracy: %s, %d clients ==\n", target*100, arch, cs.Clients)
			tw := table(o)
			fmt.Fprintf(tw, "algo\trounds\treached\n")
			for _, algo := range AllAlgos {
				env := BuildCIFAREnv(o.Scale, arch, cs, o.Seed)
				res := fl.Run(env, NewAlgorithm(algo, o.Scale, o.Seed),
					fl.RunOpts{Rounds: o.Scale.Rounds, TargetAcc: target})
				r := res.RoundsToAcc(target)
				if r < 0 {
					fmt.Fprintf(tw, "%s\t>%d\tno (best %.3f)\n", algo, o.Scale.Rounds, res.BestAcc())
				} else {
					fmt.Fprintf(tw, "%s\t%d\tyes\n", algo, r)
				}
			}
			tw.Flush()
		}
	}
	return nil
}
