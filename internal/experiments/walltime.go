package experiments

import (
	"fmt"

	"spatl/internal/fl"
	"spatl/internal/netsim"
	"spatl/internal/stats"
)

// WallTime is an extension experiment: it converts the measured per-round
// communication volume into simulated wall-clock time over a
// heterogeneous mobile link population (internal/netsim) and reports
// time-to-accuracy. Synchronous rounds wait for the slowest selected
// client, so per-round byte volume — SPATL's lever — translates directly
// into straggler time.
func WallTime(o Options) error {
	w := o.out()
	cs := o.Scale.ClientSets[len(o.Scale.ClientSets)-1]
	target := o.Scale.TargetAcc
	links := netsim.SampleLinks(cs.Clients, netsim.Mobile, o.Seed+71)
	fmt.Fprintf(w, "\n== wall-clock extension: resnet20, %d clients over simulated 4G links ==\n", cs.Clients)

	tw := table(o)
	fmt.Fprintf(tw, "algo\tbest acc\ttotal sim time\ttime to %.0f%%\n", target*100)
	var series []stats.Series
	for _, name := range AllAlgos {
		env := BuildCIFAREnv(o.Scale, "resnet20", cs, o.Seed)
		algo := NewAlgorithm(name, o.Scale, o.Seed)
		algo.Setup(env)
		var times, accs []float64
		var prevUp, prevDown int64
		for round := 0; round < o.Scale.CurveRounds; round++ {
			selected := env.SampleClients()
			algo.Round(env, round, selected)
			up, down := env.Meter.Up(), env.Meter.Down()
			perUp := (up - prevUp) / int64(len(selected))
			perDown := (down - prevDown) / int64(len(selected))
			prevUp, prevDown = up, down
			// Local compute is identical across algorithms at a given
			// scale; 2 s/round stands in for the on-device training time.
			times = append(times, netsim.RoundTime(links, selected, perDown, perUp, 2))
			var sum float64
			for _, c := range env.Clients {
				sum += fl.EvalAccuracy(algo.EvalModel(env, c), c.Val, 64)
			}
			accs = append(accs, sum/float64(len(env.Clients)))
		}
		var total float64
		best := 0.0
		for i, t := range times {
			total += t
			if accs[i] > best {
				best = accs[i]
			}
		}
		sec, round := netsim.TimeToTarget(times, accs, target)
		label := "never"
		if round > 0 {
			label = fmt.Sprintf("%.1fs (round %d)", sec, round)
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.1fs\t%s\n", name, best, total, label)
		s := stats.Series{Name: name}
		var cum float64
		for i := range times {
			cum += times[i]
			s.X = append(s.X, cum)
			s.Y = append(s.Y, accs[i])
		}
		series = append(series, s)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nexpected shape: per-round byte volume sets straggler time, so SPATL's")
	fmt.Fprintln(w, "accuracy-vs-seconds curve dominates the 2x-payload baselines.")
	return writeCSV(o, "walltime_accuracy", "seconds", series...)
}
