package experiments

import (
	"fmt"
	"math/rand"

	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/nn"
)

// Table3Transfer reproduces Table III (§V-E): transferability of the
// federated-trained model. Federated training runs on one data split;
// the resulting model is then transferred (standard fine-tuning) to a
// held-out split and its post-transfer accuracy compared across
// methods. The paper's claim: SPATL — despite sharing only the encoder —
// transfers as well as the uniform-model baselines.
func Table3Transfer(o Options) error {
	w := o.out()
	cs := o.Scale.ClientSets[0]
	fmt.Fprintf(w, "\n== Table III: transferability (resnet20, %d clients FL, then transfer) ==\n", cs.Clients)

	// Held-out split: same classes (class seed matches BuildCIFAREnv's
	// derivation), unseen instances — the paper's 10K held-out images.
	heldOut := data.SynthCIFAR(cifarConfig(o.Scale), 40*o.Scale.Classes, o.Seed*3+101, o.Seed*7+9999)
	transferTrain, transferVal := heldOut.Split(0.8)

	tw := table(o)
	fmt.Fprintf(tw, "method\tFL acc\ttransfer acc (before FT)\ttransfer acc (after FT)\n")
	for _, algo := range AllAlgos {
		env := BuildCIFAREnv(o.Scale, "resnet20", cs, o.Seed)
		a := NewAlgorithm(algo, o.Scale, o.Seed)
		res := fl.Run(env, a, fl.RunOpts{Rounds: o.Scale.Rounds})

		// Assemble the transferable model. Baselines transfer the global
		// model; SPATL transfers the global encoder with the average of
		// the clients' predictor heads (there is no global predictor by
		// design).
		m := env.Global.Clone()
		if algo == "spatl" {
			avg := averagePredictor(env)
			nn.UnflattenParams(m.PredictorParams(), avg)
		}
		before := fl.EvalAccuracy(m, transferVal, 64)
		fineTuneModel(m, transferTrain, 3, o.Scale.LR, o.Seed+77)
		after := fl.EvalAccuracy(m, transferVal, 64)
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.4f\n", algo, res.BestAcc(), before, after)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nexpected shape (paper): SPATL's transferred accuracy is comparable to the baselines'.")
	return nil
}

// averagePredictor returns the element-wise mean of all clients'
// predictor parameters.
func averagePredictor(env *fl.Env) []float32 {
	var acc []float64
	for _, c := range env.Clients {
		flat := nn.FlattenParams(c.Model.PredictorParams())
		if acc == nil {
			acc = make([]float64, len(flat))
		}
		for i, v := range flat {
			acc[i] += float64(v)
		}
	}
	out := make([]float32, len(acc))
	inv := 1.0 / float64(len(env.Clients))
	for i, v := range acc {
		out[i] = float32(v * inv)
	}
	return out
}

// fineTuneModel runs standard centralized fine-tuning of the whole model
// on a dataset — the paper's "transfer learning conducted in a regular
// manner".
func fineTuneModel(m *models.SplitModel, train *data.Dataset, epochs int, lr float64, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	params := m.Params()
	opt := nn.NewSGD(params, lr, 0.9, 0)
	for e := 0; e < epochs; e++ {
		for _, idx := range train.Batches(rng, 32) {
			x, y := train.Batch(idx)
			nn.ZeroGrad(params)
			out := m.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy(out, y)
			m.Backward(grad)
			opt.Step()
		}
	}
}
