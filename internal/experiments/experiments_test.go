package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyOpts returns Options that finish in seconds and capture output.
func tinyOpts(t *testing.T, buf *bytes.Buffer) Options {
	t.Helper()
	s := Tiny
	// Shrink further for unit tests: one client set, minimal rounds.
	s.ClientSets = []ClientSet{{3, 1.0}}
	s.Rounds = 3
	s.CurveRounds = 2
	s.PerClient = 60
	s.PretrainRounds = 1
	return Options{Scale: s, Out: buf, Seed: 1}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "paper"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Fatalf("ScaleByName(%q) = %v, %v", name, s.Name, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every experiment in DESIGN.md's index must be registered.
	want := []string{
		"learning", "femnist", "converge", "localacc", "table1", "rounds",
		"table2", "table3", "inference", "table4",
		"ablation-select", "ablation-transfer", "ablation-gradctl", "rlagent",
		"compression", "robustness", "walltime", "ssfl-comm",
	}
	for _, id := range want {
		if Registry[id] == nil {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(Names()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Names()), len(want))
	}
}

func TestBuildCIFAREnvShape(t *testing.T) {
	env := BuildCIFAREnv(Tiny, "resnet20", ClientSet{4, 0.5}, 1)
	if len(env.Clients) != 4 {
		t.Fatalf("clients = %d", len(env.Clients))
	}
	for _, c := range env.Clients {
		if c.Train.Len() == 0 || c.Val.Len() == 0 {
			t.Fatal("client datasets empty")
		}
	}
	if len(env.SampleClients()) != 2 {
		t.Fatal("sample ratio not applied")
	}
}

func TestBuildFEMNISTEnvShape(t *testing.T) {
	env := BuildFEMNISTEnv(Tiny, ClientSet{4, 1.0}, 1)
	if len(env.Clients) != 4 {
		t.Fatalf("clients = %d", len(env.Clients))
	}
	if env.Spec.Arch != "cnn2" || env.Spec.Classes != 62 {
		t.Fatalf("unexpected spec %v", env.Spec)
	}
}

func TestPretrainedAgentCached(t *testing.T) {
	s := Tiny
	s.PretrainRounds = 1
	a := PretrainedAgent(s, 7)
	b := PretrainedAgent(s, 7)
	if len(a) == 0 {
		t.Fatal("empty agent blob")
	}
	if &a[0] != &b[0] {
		t.Fatal("agent should be cached (same backing array)")
	}
}

func TestNewAlgorithmNames(t *testing.T) {
	s := Tiny
	s.PretrainRounds = 1
	for _, name := range AllAlgos {
		a := NewAlgorithm(name, s, 1)
		if a.Name() != name {
			t.Fatalf("NewAlgorithm(%q).Name() = %q", name, a.Name())
		}
	}
}

func TestLearningDriverSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOpts(t, &buf)
	o.CSVDir = t.TempDir()
	if err := FEMNISTLearning(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, algo := range AllAlgos {
		if !strings.Contains(out, algo) {
			t.Fatalf("output missing %q:\n%s", algo, out)
		}
	}
	// CSV exported.
	files, _ := os.ReadDir(o.CSVDir)
	if len(files) == 0 {
		t.Fatal("no CSV exported")
	}
	data, err := os.ReadFile(filepath.Join(o.CSVDir, files[0].Name()))
	if err != nil || !strings.HasPrefix(string(data), "round,") {
		t.Fatalf("CSV malformed: %v %q", err, string(data[:min(40, len(data))]))
	}
}

func TestTable1DriverSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOpts(t, &buf)
	if err := Table1Communication(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "speedup") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestAblationDriverSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOpts(t, &buf)
	if err := AblationGradientControl(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "with gradient-control") || !strings.Contains(out, "without gradient-control") {
		t.Fatalf("ablation output missing variants:\n%s", out)
	}
}

func TestRLAgentDriverSmoke(t *testing.T) {
	var buf bytes.Buffer
	o := tinyOpts(t, &buf)
	if err := RLAgentFineTune(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "resnet56") && !strings.Contains(out, "ResNet-56") {
		t.Fatalf("missing pretrain section:\n%s", out)
	}
	if !strings.Contains(out, "agent footprint") {
		t.Fatal("missing agent footprint line")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
