// Package experiments is the reproduction harness: one driver per table
// and figure of the SPATL paper (see DESIGN.md §3 for the experiment
// index). Each driver builds its workload, runs every algorithm through
// the fl engine, and prints the same rows/series the paper reports.
// Drivers run at a configurable Scale so the full suite works as quick
// `go test -bench` smoke runs (Tiny), laptop-scale reproductions
// (Small, the default for the spatl-bench CLI), or the paper's client
// counts (Paper).
package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"

	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/plot"
	"spatl/internal/rl"
	"spatl/internal/scenario"
	"spatl/internal/stats"
	"spatl/internal/telemetry"
)

// Scale bundles every knob that trades fidelity for runtime.
type Scale struct {
	Name        string
	Width       float64 // model width multiplier
	H, W        int     // CIFAR-analog image size
	Classes     int
	PerClient   int // examples per client
	Rounds      int // cap for convergence runs
	CurveRounds int // rounds for learning-curve figures
	LocalEpochs int
	BatchSize   int
	LR          float64
	TargetAcc   float64 // Table I target accuracy (paper: 80%)

	AgentDim       int
	AgentHidden    int
	PretrainRounds int
	FineTuneRounds int
	FLOPsBudget    float64

	// ClientSets mirrors the paper's (clients, sample-ratio) sweep.
	ClientSets []ClientSet
	// Archs is the CIFAR-model sweep used by the multi-architecture
	// drivers (Table I, learning curves, inference).
	Archs []string
}

// ClientSet is one federated population setting.
type ClientSet struct {
	Clients int
	Ratio   float64
}

// Tiny finishes each driver in seconds — used by bench_test.go. The
// 16×16 resolution is the minimum VGG-11's four max-pools accept.
var Tiny = Scale{
	Name: "tiny", Width: 0.25, H: 16, W: 16, Classes: 6, PerClient: 90,
	Rounds: 10, CurveRounds: 6, LocalEpochs: 2, BatchSize: 16, LR: 0.02,
	TargetAcc: 0.45, AgentDim: 8, AgentHidden: 8, PretrainRounds: 3,
	FineTuneRounds: 1, FLOPsBudget: 0.6,
	ClientSets: []ClientSet{{4, 1.0}, {8, 0.5}},
	Archs:      []string{"resnet20"},
}

// Small is the default reproduction scale for the spatl-bench CLI:
// minutes per experiment on a laptop, with the paper's relationships
// clearly visible.
var Small = Scale{
	Name: "small", Width: 0.25, H: 16, W: 16, Classes: 10, PerClient: 250,
	Rounds: 40, CurveRounds: 20, LocalEpochs: 5, BatchSize: 32, LR: 0.02,
	TargetAcc: 0.55, AgentDim: 16, AgentHidden: 32, PretrainRounds: 10,
	FineTuneRounds: 5, FLOPsBudget: 0.6,
	ClientSets: []ClientSet{{10, 1.0}, {30, 0.4}, {50, 0.7}},
	Archs:      []string{"resnet20", "resnet32", "vgg11"},
}

// Paper matches the paper's client populations and model widths. Pure-Go
// training at this scale takes many hours; provided for completeness.
var Paper = Scale{
	Name: "paper", Width: 1.0, H: 32, W: 32, Classes: 10, PerClient: 500,
	Rounds: 200, CurveRounds: 100, LocalEpochs: 10, BatchSize: 64, LR: 0.02,
	TargetAcc: 0.8, AgentDim: 32, AgentHidden: 64, PretrainRounds: 40,
	FineTuneRounds: 10, FLOPsBudget: 0.6,
	ClientSets: []ClientSet{{10, 1.0}, {30, 0.4}, {50, 0.7}, {100, 0.4}},
	Archs:      []string{"resnet20", "resnet32", "vgg11"},
}

// ScaleByName resolves a scale preset.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "paper":
		return Paper, nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (tiny|small|paper)", name)
}

// Options configures a driver invocation.
type Options struct {
	Scale  Scale
	Out    io.Writer
	CSVDir string // when set, drivers export plotted series as CSV here
	Seed   int64
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return os.Stdout
	}
	return o.Out
}

// Runner is one experiment driver.
type Runner func(o Options) error

// Registry maps experiment ids (the -exp flag of spatl-bench) to
// drivers. See DESIGN.md §3 for the paper mapping.
var Registry = map[string]Runner{
	"learning":          LearningEfficiency,
	"femnist":           FEMNISTLearning,
	"converge":          ConvergeAccuracy,
	"localacc":          LocalAccuracy,
	"table1":            Table1Communication,
	"rounds":            RoundsToTarget,
	"table2":            Table2Convergence,
	"table3":            Table3Transfer,
	"inference":         InferenceAcceleration,
	"table4":            Table4Pruning,
	"ablation-select":   AblationSelection,
	"ablation-transfer": AblationTransfer,
	"ablation-gradctl":  AblationGradientControl,
	"rlagent":           RLAgentFineTune,
	// Extensions beyond the paper (DESIGN.md §6).
	"compression": Compression,
	"robustness":  Robustness,
	"walltime":    WallTime,
	"ssfl-comm":   SSFLCommunication,
}

// Names returns the registered experiment ids, sorted.
func Names() []string {
	var out []string
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// specFor builds the model spec for an architecture at this scale.
func specFor(s Scale, arch string) models.Spec {
	switch arch {
	case "cnn2":
		return models.Spec{Arch: arch, Classes: 62, InC: 1, H: 28, W: 28, Width: s.Width}
	default:
		return models.Spec{Arch: arch, Classes: s.Classes, InC: 3, H: s.H, W: s.W, Width: s.Width}
	}
}

// cifarConfig is the synthetic CIFAR generator configuration at scale.
func cifarConfig(s Scale) data.SynthCIFARConfig {
	return data.SynthCIFARConfig{Classes: s.Classes, H: s.H, W: s.W, Noise: 0.3}
}

// envTel, when set via SetTelemetry, is installed on every environment
// the builders below construct. Experiments run sequentially in one
// driver process, so a package-level hook (set once before the first
// run) is race-free and avoids threading a parameter through every
// driver signature.
var envTel *telemetry.Set

// SetTelemetry installs a telemetry set on all subsequently built
// environments — spatl-bench's -journal passthrough. Pass nil to turn
// it back off.
func SetTelemetry(s *telemetry.Set) { envTel = s }

// SpecFromScale projects a scale preset onto a scenario spec — the
// bridge that makes every driver a thin preset over the scenario layer.
// The algorithm defaults to fedavg; NewAlgorithm swaps it per run.
func SpecFromScale(s Scale, arch string, cs ClientSet, seed int64) scenario.Spec {
	return scenario.Spec{
		Algo: "fedavg", Arch: arch,
		Classes: s.Classes, H: s.H, W: s.W, Width: s.Width,
		Clients: cs.Clients, Participation: cs.Ratio, PerClient: s.PerClient,
		Rounds: s.Rounds, LocalEpochs: s.LocalEpochs, BatchSize: s.BatchSize,
		LR: s.LR, Momentum: 0.9, TargetAcc: s.TargetAcc,
		Params: paramsFromScale(s, seed), Seed: seed,
	}
}

// paramsFromScale carries the scale's SPATL knobs into the registry's
// hyperparameter bag.
func paramsFromScale(s Scale, seed int64) scenario.Params {
	return scenario.Params{
		FLOPsBudget: s.FLOPsBudget, AgentDim: s.AgentDim, AgentHidden: s.AgentHidden,
		PretrainRounds: s.PretrainRounds, FineTuneRounds: s.FineTuneRounds,
		FineTuneEpisodes: 2, Seed: seed,
	}
}

// BuildCIFAREnv constructs the standard Non-IID-benchmark environment:
// SynthCIFAR partitioned across clients by Dirichlet(α=0.5) label skew.
// It delegates to the scenario layer; the seed derivations are the
// historical ones, so outputs match the pre-scenario harness.
func BuildCIFAREnv(s Scale, arch string, cs ClientSet, seed int64) *fl.Env {
	env, err := scenario.BuildEnv(SpecFromScale(s, arch, cs, seed), envTel)
	if err != nil {
		panic(fmt.Sprintf("experiments: BuildCIFAREnv: %v", err))
	}
	return env
}

// BuildFEMNISTEnv constructs the LEAF-style environment: SynthFEMNIST
// with whole writers assigned to clients.
func BuildFEMNISTEnv(s Scale, cs ClientSet, seed int64) *fl.Env {
	spec := SpecFromScale(s, "cnn2", cs, seed)
	spec.Dataset = scenario.DataFEMNIST
	env, err := scenario.BuildEnv(spec, envTel)
	if err != nil {
		panic(fmt.Sprintf("experiments: BuildFEMNISTEnv: %v", err))
	}
	return env
}

// PretrainedAgent returns (and caches) an agent pre-trained on the
// ResNet-56 pruning task at this scale — the paper's §V-A setup. The
// cache lives in the scenario layer, shared with matrix runs.
func PretrainedAgent(s Scale, seed int64) []float32 {
	return scenario.PretrainAgentBlob(SpecFromScale(s, "resnet20", ClientSet{Clients: 1, Ratio: 1}, seed))
}

func agentCfg(s Scale, seed int64) rl.AgentConfig {
	return rl.AgentConfig{Dim: s.AgentDim, HeadHidden: s.AgentHidden, Seed: seed + 31}
}

// NewAlgorithm instantiates a fresh algorithm by name through the
// shared scenario registry — the same construction path spatl-bench
// matrix cells and spatl-node use. SPATL instances receive the scale's
// pre-trained selection agent.
func NewAlgorithm(name string, s Scale, seed int64) fl.Algorithm {
	p := paramsFromScale(s, seed)
	if name == "spatl" {
		p.Pretrained = PretrainedAgent(s, seed)
	}
	alg, err := scenario.NewAlgorithm(name, p)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return alg
}

// Baselines is the comparison set used throughout the paper.
var Baselines = []string{"fedavg", "fedprox", "fednova", "scaffold"}

// AllAlgos is the baselines plus SPATL.
var AllAlgos = []string{"fedavg", "fedprox", "fednova", "scaffold", "spatl"}

// table returns a tabwriter over the options' output.
func table(o Options) *tabwriter.Writer {
	return tabwriter.NewWriter(o.out(), 2, 4, 2, ' ', 0)
}

// writeCSV exports plotted series when CSVDir is set — both as raw CSV
// and as a rendered SVG figure.
func writeCSV(o Options, name, xLabel string, series ...stats.Series) error {
	if o.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.CSVDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(o.CSVDir, name+".csv"))
	if err != nil {
		return err
	}
	if err := stats.WriteCSV(f, xLabel, series...); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	svg, err := os.Create(filepath.Join(o.CSVDir, name+".svg"))
	if err != nil {
		return err
	}
	defer svg.Close()
	return plot.Line(svg, plot.Config{Title: name, XLabel: xLabel, YLabel: "accuracy"}, series...)
}

// accSeries converts a run trajectory into a plot series.
func accSeries(name string, res *fl.Result) stats.Series {
	s := stats.Series{Name: name}
	for _, r := range res.Records {
		s.X = append(s.X, float64(r.Round+1))
		s.Y = append(s.Y, r.AvgAcc)
	}
	return s
}

// ys extracts the accuracy column.
func ys(res *fl.Result) []float64 {
	out := make([]float64, len(res.Records))
	for i, r := range res.Records {
		out[i] = r.AvgAcc
	}
	return out
}
