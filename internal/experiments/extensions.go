package experiments

import (
	"fmt"

	"spatl/internal/comm"
	"spatl/internal/fl"
	"spatl/internal/stats"
)

// Compression is an extension experiment beyond the paper: it composes
// SPATL's salient selection with half-precision payloads
// (fl.Config.HalfPrecision) and reports accuracy vs uplink for FedAvg
// and SPATL at both precisions. The expected shape: f16 halves every
// method's bytes at negligible accuracy cost, and the two mechanisms
// compose (SPATL-f16 is the cheapest configuration).
func Compression(o Options) error {
	w := o.out()
	cs := o.Scale.ClientSets[0]
	fmt.Fprintf(w, "\n== compression extension: resnet20, %d clients, %d rounds ==\n",
		cs.Clients, o.Scale.CurveRounds)
	tw := table(o)
	fmt.Fprintf(tw, "config\tbest acc\ttotal up MB\tvs fedavg-f32\n")
	var base int64
	for _, cfg := range []struct {
		name string
		algo string
		half bool
	}{
		{"fedavg-f32", "fedavg", false},
		{"fedavg-f16", "fedavg", true},
		{"spatl-f32", "spatl", false},
		{"spatl-f16", "spatl", true},
	} {
		env := BuildCIFAREnv(o.Scale, "resnet20", cs, o.Seed)
		env.Cfg.HalfPrecision = cfg.half
		res := fl.Run(env, NewAlgorithm(cfg.algo, o.Scale, o.Seed), fl.RunOpts{Rounds: o.Scale.CurveRounds})
		up := res.Records[len(res.Records)-1].CumUp
		if cfg.name == "fedavg-f32" {
			base = up
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.2f\t%.2fx\n",
			cfg.name, res.BestAcc(), comm.MB(up), float64(base)/float64(up))
	}
	tw.Flush()
	fmt.Fprintln(w, "\nexpected shape: f16 halves bytes at negligible accuracy cost; salient")
	fmt.Fprintln(w, "selection and quantization compose — spatl-f16 is the cheapest uplink.")
	return nil
}

// Robustness is an extension experiment beyond the paper: accuracy under
// client failure injection (straggler drops) at increasing drop rates,
// FedAvg vs SPATL. Federated averaging tolerates lost uploads gracefully;
// the question is whether SPATL's sparse aggregation does too.
func Robustness(o Options) error {
	w := o.out()
	cs := o.Scale.ClientSets[len(o.Scale.ClientSets)-1]
	fmt.Fprintf(w, "\n== robustness extension: resnet20, %d clients, drop-rate sweep ==\n", cs.Clients)
	rates := []float64{0, 0.2, 0.4, 0.6}
	tw := table(o)
	fmt.Fprintf(tw, "drop rate\tfedavg best acc\tspatl best acc\n")
	series := []stats.Series{{Name: "fedavg"}, {Name: "spatl"}}
	for _, rate := range rates {
		row := make([]float64, 2)
		for i, algo := range []string{"fedavg", "spatl"} {
			env := BuildCIFAREnv(o.Scale, "resnet20", cs, o.Seed)
			env.Cfg.DropRate = rate
			res := fl.Run(env, NewAlgorithm(algo, o.Scale, o.Seed), fl.RunOpts{Rounds: o.Scale.CurveRounds})
			row[i] = res.BestAcc()
			series[i].X = append(series[i].X, rate)
			series[i].Y = append(series[i].Y, res.BestAcc())
		}
		fmt.Fprintf(tw, "%.1f\t%.4f\t%.4f\n", rate, row[0], row[1])
	}
	tw.Flush()
	fmt.Fprintln(w, "\nexpected shape: both degrade gracefully with drop rate; SPATL's per-index")
	fmt.Fprintln(w, "aggregation needs no special handling for missing uploads.")
	return writeCSV(o, "robustness_droprate", "drop_rate", series...)
}
