package experiments

import (
	"fmt"

	"spatl/internal/comm"
	"spatl/internal/fl"
)

// Table1Communication reproduces Table I: communication cost to reach a
// target accuracy at the first client setting. For each method and
// model it reports the rounds used, the measured per-round per-client
// uplink, the total uplink, and the speedup relative to FedAvg —
// reproducing the paper's accounting (eq. 13, uplink volume).
func Table1Communication(o Options) error {
	w := o.out()
	cs := o.Scale.ClientSets[0]
	target := o.Scale.TargetAcc
	fmt.Fprintf(w, "\n== Table I: communication cost to %.0f%% accuracy (%d clients) ==\n", target*100, cs.Clients)
	for _, arch := range o.Scale.Archs {
		fmt.Fprintf(w, "\n-- %s --\n", arch)
		tw := table(o)
		fmt.Fprintf(tw, "method\trounds\tMB/round/client\ttotal MB\tspeedup\n")
		var fedavgTotal int64
		for _, algo := range AllAlgos {
			env := BuildCIFAREnv(o.Scale, arch, cs, o.Seed)
			res := fl.Run(env, NewAlgorithm(algo, o.Scale, o.Seed),
				fl.RunOpts{Rounds: o.Scale.Rounds, TargetAcc: target})
			rounds := res.RoundsToAcc(target)
			total := res.UpAt(target)
			roundsLabel := fmt.Sprintf("%d", rounds)
			usedRounds := rounds
			if rounds < 0 {
				roundsLabel = fmt.Sprintf(">%d", o.Scale.Rounds)
				usedRounds = len(res.Records)
			}
			perRoundClient := float64(total) / float64(usedRounds) / (float64(cs.Clients) * cs.Ratio)
			if algo == "fedavg" {
				fedavgTotal = total
			}
			speedup := float64(fedavgTotal) / float64(total)
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.2f\t%.2fx\n",
				algo, roundsLabel, perRoundClient/(1<<20), comm.MB(total), speedup)
		}
		tw.Flush()
	}
	fmt.Fprintln(w, "\nexpected shape (paper): FedNova/SCAFFOLD ≈2x FedAvg per round; SPATL per-round ≈ FedAvg")
	fmt.Fprintln(w, "with the lowest total cost; SCAFFOLD round-efficient at this small population.")
	return nil
}

// Table2Convergence reproduces Table II: training to convergence at the
// larger client populations — converge rounds, per-round and total
// communication, speedup, and converged accuracy with its delta against
// FedAvg. The paper's headline shape: gradient-control baselines pay 2×
// per round; SCAFFOLD destabilizes as the population grows; SPATL has
// the best accuracy at equal-or-lower total cost.
func Table2Convergence(o Options) error {
	w := o.out()
	sets := o.Scale.ClientSets
	if len(sets) > 1 {
		sets = sets[1:] // Table II is about the larger populations
	}
	for _, arch := range o.Scale.Archs {
		for _, cs := range sets {
			fmt.Fprintf(w, "\n== Table II: %s, %d clients, sample ratio %.1f ==\n", arch, cs.Clients, cs.Ratio)
			tw := table(o)
			fmt.Fprintf(tw, "method\tconverge round\tMB/round/client\ttotal MB\tspeedup\tavg converge acc\tΔacc\n")
			var fedavgTotal int64
			var fedavgAcc float64
			for _, algo := range AllAlgos {
				env := BuildCIFAREnv(o.Scale, arch, cs, o.Seed)
				res := fl.Run(env, NewAlgorithm(algo, o.Scale, o.Seed), fl.RunOpts{Rounds: o.Scale.Rounds})
				conv := res.ConvergedRound(o.Scale.Rounds/5, 0.005)
				total := res.Records[len(res.Records)-1].CumUp
				perRoundClient := float64(total) / float64(len(res.Records)) / (float64(cs.Clients) * cs.Ratio)
				acc := res.BestAcc()
				if algo == "fedavg" {
					fedavgTotal, fedavgAcc = total, acc
				}
				fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.2f\t%.2fx\t%.4f\t%+.4f\n",
					algo, conv, perRoundClient/(1<<20), comm.MB(total),
					float64(fedavgTotal)/float64(total), acc, acc-fedavgAcc)
			}
			tw.Flush()
		}
	}
	return nil
}
