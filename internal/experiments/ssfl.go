package experiments

import (
	"fmt"

	"spatl/internal/comm"
	"spatl/internal/fl"
	"spatl/internal/stats"
)

// SSFLCommunication compares the sparse-native SSFL protocol against
// SPATL on the same workload: accuracy trajectories side by side, and
// the per-round wire cost in both directions. SSFL pays a dense
// agreement round up front, ships its index ranges exactly once, and
// then every round is values-only in both directions — so its
// steady-state rows are the ones to compare against SPATL's per-round
// cost (which re-ships index ranges and control deltas every round).
func SSFLCommunication(o Options) error {
	w := o.out()
	cs := o.Scale.ClientSets[0]
	arch := o.Scale.Archs[0]
	rounds := o.Scale.CurveRounds
	fmt.Fprintf(w, "\n== SSFL vs SPATL: wire bytes and accuracy (%s, %d clients, %d rounds) ==\n",
		arch, cs.Clients, rounds)

	type run struct {
		name string
		res  *fl.Result
	}
	runs := []run{
		{"ssfl", nil},
		{"spatl", nil},
	}
	for i := range runs {
		env := BuildCIFAREnv(o.Scale, arch, cs, o.Seed)
		runs[i].res = fl.Run(env, NewAlgorithm(runs[i].name, o.Scale, o.Seed), fl.RunOpts{Rounds: rounds})
	}

	tw := table(o)
	fmt.Fprintf(tw, "method\tround\tup MB\tdown MB\tacc\n")
	var upSeries []stats.Series
	for _, r := range runs {
		var prevUp, prevDown int64
		s := stats.Series{Name: r.name + "-up-bytes"}
		for _, rec := range r.res.Records {
			up, down := rec.CumUp-prevUp, rec.CumDown-prevDown
			prevUp, prevDown = rec.CumUp, rec.CumDown
			fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.4f\t%.4f\n",
				r.name, rec.Round, comm.MB(up), comm.MB(down), rec.AvgAcc)
			s.X = append(s.X, float64(rec.Round+1))
			s.Y = append(s.Y, float64(up))
		}
		upSeries = append(upSeries, s)
	}
	tw.Flush()

	ssfl, spatl := runs[0].res, runs[1].res
	sUp := ssfl.Records[len(ssfl.Records)-1].CumUp
	pUp := spatl.Records[len(spatl.Records)-1].CumUp
	fmt.Fprintf(w, "\ntotal uplink: ssfl %.2f MB, spatl %.2f MB (ratio %.2fx)\n",
		comm.MB(sUp), comm.MB(pUp), float64(pUp)/float64(sUp))
	fmt.Fprintln(w, "expected shape: after round 1 the ssfl rows are values-only frames — strictly below")
	fmt.Fprintln(w, "spatl in both directions; the dense round-0 agreement is the one-time price.")

	if err := writeCSV(o, "ssfl-comm-acc", "round",
		accSeries("ssfl", ssfl), accSeries("spatl", spatl)); err != nil {
		return err
	}
	return writeCSV(o, "ssfl-comm-bytes", "round", upSeries...)
}
