package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"spatl/internal/core"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/prune"
	"spatl/internal/rl"
	"spatl/internal/stats"
)

// InferenceAcceleration reproduces the inference table (§V-D): after
// SPATL training completes, each client's salient selection doubles as a
// structured pruning of its deployed model; the table reports per-client
// FLOPs reduction and sparsity. The paper reports large average FLOPs
// reductions with low sparsity ratios.
func InferenceAcceleration(o Options) error {
	w := o.out()
	cs := o.Scale.ClientSets[0]
	for _, arch := range o.Scale.Archs {
		fmt.Fprintf(w, "\n== inference acceleration: %s, %d clients ==\n", arch, cs.Clients)
		env := BuildCIFAREnv(o.Scale, arch, cs, o.Seed)
		s := NewAlgorithm("spatl", o.Scale, o.Seed).(*core.SPATL)
		fl.Run(env, s, fl.RunOpts{Rounds: o.Scale.Rounds / 2})

		tw := table(o)
		fmt.Fprintf(tw, "client\tFLOPs reduction\tsparsity (kept params)\tdeployed params\tdeployed FLOPs\n")
		var reductions, sparsities []float64
		ids := make([]int, 0, len(s.LastSelections))
		for ci := range s.LastSelections {
			ids = append(ids, ci)
		}
		sort.Ints(ids)
		baseParams, baseFLOPs := env.Global.Describe()
		for _, ci := range ids {
			sel := s.LastSelections[ci]
			pr, tot := prune.MaskedFLOPs(env.Clients[ci].Model, sel.Masks)
			red := 1 - float64(pr)/float64(tot)
			reductions = append(reductions, red)
			sparsities = append(sparsities, sel.KeepFrac())
			// Physically extract the client's deployed sub-network: its
			// measured size confirms the analytic reduction.
			ext := prune.Extract(env.Clients[ci].Model, sel)
			p, f := ext.Describe()
			fmt.Fprintf(tw, "%d\t%.1f%%\t%.2f\t%d\t%d\n", ci, red*100, sel.KeepFrac(), p, f)
		}
		fmt.Fprintf(tw, "avg\t%.1f%%\t%.2f\t(full: %d)\t(full: %d)\n",
			stats.Mean(reductions)*100, stats.Mean(sparsities), baseParams, baseFLOPs)
		fmt.Fprintf(tw, "max\t%.1f%%\t\t\t\n", stats.Max(reductions)*100)
		tw.Flush()
	}
	return nil
}

// Table4Pruning reproduces Table IV (§V-F1): the selection agent against
// classic pruning baselines (L1-uniform, SFP, FPGM, DSA) on a network
// pruning task at a matched FLOPs budget, reporting FLOPs reduction and
// accuracy before/after fine-tuning.
func Table4Pruning(o Options) error {
	w := o.out()
	s := o.Scale
	budget := s.FLOPsBudget
	fmt.Fprintf(w, "\n== Table IV: pruning comparison (resnet20, FLOPs budget %.0f%%) ==\n", budget*100)

	// Centralized training first so pruning has signal to preserve.
	spec := specFor(s, "resnet20")
	ds := data.SynthCIFAR(cifarConfig(s), 60*s.Classes, o.Seed*3+101, o.Seed+501)
	train, val := ds.Split(0.85)
	base := models.Build(spec, o.Seed+41)
	fineTuneModel(base, train, 4, s.LR, o.Seed+43)
	baseAcc := fl.EvalAccuracy(base, val, 64)
	fmt.Fprintf(w, "unpruned accuracy: %.4f\n", baseAcc)

	uniformRatio := prune.UniformRatiosForBudget(base, budget)

	type method struct {
		name  string
		masks func(m *models.SplitModel) []prune.Mask
	}
	methods := []method{
		{"L1-uniform", func(m *models.SplitModel) []prune.Mask { return prune.L1Masks(m, uniformRatio) }},
		{"FPGM", func(m *models.SplitModel) []prune.Mask { return prune.FPGMMasks(m, uniformRatio) }},
		{"SFP", func(m *models.SplitModel) []prune.Mask {
			return prune.SFP(m, train, uniformRatio, 1, s.LR, rand.New(rand.NewSource(o.Seed+45)))
		}},
		{"DSA", func(m *models.SplitModel) []prune.Mask { return prune.DSAMasks(m, val, budget) }},
		{"SPATL agent", func(m *models.SplitModel) []prune.Mask {
			agent := rl.NewAgent(agentCfg(s, o.Seed))
			agent.Load(PretrainedAgent(s, o.Seed))
			core.FineTuneAgent(agent, m, val, budget, s.FineTuneRounds, 2, o.Seed+47)
			env := prune.NewEnv(m, val, budget)
			return prune.Select(m, rl.BestAction(agent, env)).Masks
		}},
	}

	tw := table(o)
	fmt.Fprintf(tw, "method\tFLOPs reduction\tacc (masked)\tacc (fine-tuned)\tΔacc vs unpruned\n")
	for _, meth := range methods {
		m := base.Clone()
		masks := meth.masks(m)
		sel := prune.SelectWithMasks(m, masks)
		pr, tot := prune.MaskedFLOPs(m, masks)
		red := 1 - float64(pr)/float64(tot)
		var masked float64
		prune.WithMasked(m, sel, func() { masked = fl.EvalAccuracy(m, val, 64) })
		prune.FineTune(m, sel, train, 2, s.LR/2, rand.New(rand.NewSource(o.Seed+49)))
		after := fl.EvalAccuracy(m, val, 64)
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.4f\t%.4f\t%+.4f\n", meth.name, red*100, masked, after, after-baseAcc)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nexpected shape (paper): the agent matches or beats the baselines' accuracy at")
	fmt.Fprintln(w, "comparable FLOPs reduction, with one-shot inference instead of per-model search.")
	return nil
}
