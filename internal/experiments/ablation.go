package experiments

import (
	"fmt"

	"spatl/internal/core"
	"spatl/internal/fl"
	"spatl/internal/stats"
)

// spatlVariant builds a SPATL instance with ablation switches applied.
func spatlVariant(o Options, mutate func(*core.Options)) fl.Algorithm {
	opts := core.Options{
		FLOPsBudget:      o.Scale.FLOPsBudget,
		AgentCfg:         agentCfg(o.Scale, o.Seed),
		Pretrained:       PretrainedAgent(o.Scale, o.Seed),
		FineTuneRounds:   o.Scale.FineTuneRounds,
		FineTuneEpisodes: 2,
	}
	if mutate != nil {
		mutate(&opts)
	}
	return core.New(opts)
}

// runAblationPair runs SPATL with and without one component and prints
// both trajectories.
func runAblationPair(o Options, arch string, cs ClientSet, label string, disable func(*core.Options)) error {
	w := o.out()
	fmt.Fprintf(w, "\n== ablation %s: %s, %d clients ==\n", label, arch, cs.Clients)
	tw := table(o)
	fmt.Fprintf(tw, "variant\tfinal acc\tbest acc\ttotal up MB\tcurve\n")
	var series []stats.Series
	for _, on := range []bool{true, false} {
		var algo fl.Algorithm
		name := "with " + label
		if on {
			algo = spatlVariant(o, nil)
		} else {
			algo = spatlVariant(o, disable)
			name = "without " + label
		}
		env := BuildCIFAREnv(o.Scale, arch, cs, o.Seed)
		res := fl.Run(env, algo, fl.RunOpts{Rounds: o.Scale.CurveRounds})
		up := float64(res.Records[len(res.Records)-1].CumUp) / (1 << 20)
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.2f\t%s\n", name, res.FinalAcc(), res.BestAcc(), up, stats.Sparkline(ys(res)))
		series = append(series, accSeries(name, res))
	}
	tw.Flush()
	return writeCSV(o, fmt.Sprintf("ablation_%s_%s_c%d", label, arch, cs.Clients), "round", series...)
}

// AblationSelection reproduces Fig. 4 (§V-F1): SPATL with vs without
// salient parameter selection across client settings (ResNet-20). The
// paper's finding: pruning unimportant weights does not harm training
// stability and can help.
func AblationSelection(o Options) error {
	for _, cs := range o.Scale.ClientSets {
		if err := runAblationPair(o, "resnet20", cs, "selection",
			func(c *core.Options) { c.DisableSelection = true }); err != nil {
			return err
		}
	}
	return nil
}

// AblationTransfer reproduces Fig. 5(a) (§V-F2): SPATL with vs without
// heterogeneous knowledge transfer (ResNet-20, first client set). The
// paper's finding: without local predictors, performance drops sharply
// on non-IID clients.
func AblationTransfer(o Options) error {
	return runAblationPair(o, "resnet20", o.Scale.ClientSets[0], "transfer",
		func(c *core.Options) { c.DisableTransfer = true })
}

// AblationGradientControl reproduces Fig. 5(b) (§V-F3): SPATL with vs
// without gradient control (VGG-11). The paper's finding: control
// variates stabilize training on heterogeneous data — so the ablation
// runs at the most heterogeneous client set (partial participation),
// where gradient drift is largest.
func AblationGradientControl(o Options) error {
	cs := o.Scale.ClientSets[len(o.Scale.ClientSets)-1]
	return runAblationPair(o, "vgg11", cs, "gradient-control",
		func(c *core.Options) { c.DisableGradControl = true })
}
