package experiments

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// microOpts shrinks everything to the minimum that still exercises the
// drivers end to end.
func microOpts(t *testing.T, buf *bytes.Buffer) Options {
	t.Helper()
	s := Tiny
	s.ClientSets = []ClientSet{{2, 1.0}}
	s.Rounds = 2
	s.CurveRounds = 2
	s.PerClient = 50
	s.PretrainRounds = 1
	s.FineTuneRounds = 1
	return Options{Scale: s, Out: buf, Seed: 2}
}

// TestEveryDriverRuns executes every registered experiment driver at
// micro scale — the full reproduction surface stays green end to end.
func TestEveryDriverRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, id := range Names() {
		id := id
		t.Run(id, func(t *testing.T) {
			var buf bytes.Buffer
			o := microOpts(t, &buf)
			if err := Registry[id](o); err != nil {
				t.Fatalf("driver %s: %v", id, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("driver %s produced no output", id)
			}
		})
	}
}

func TestConvergeDriverReportsDeltas(t *testing.T) {
	var buf bytes.Buffer
	o := microOpts(t, &buf)
	if err := ConvergeAccuracy(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Δ vs fedavg") {
		t.Fatal("missing delta column")
	}
}

func TestLocalAccuracyDriverReportsSpread(t *testing.T) {
	var buf bytes.Buffer
	o := microOpts(t, &buf)
	if err := LocalAccuracy(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, col := range []string{"mean", "std", "min", "max"} {
		if !strings.Contains(out, col) {
			t.Fatalf("missing column %q", col)
		}
	}
}

func TestInferenceDriverReportsDeployedSizes(t *testing.T) {
	var buf bytes.Buffer
	o := microOpts(t, &buf)
	if err := InferenceAcceleration(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "FLOPs reduction") || !strings.Contains(out, "deployed params") {
		t.Fatalf("inference output incomplete:\n%s", out)
	}
}

func TestTable4DriverComparesAllPruners(t *testing.T) {
	var buf bytes.Buffer
	o := microOpts(t, &buf)
	if err := Table4Pruning(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, method := range []string{"L1-uniform", "FPGM", "SFP", "DSA", "SPATL agent"} {
		if !strings.Contains(out, method) {
			t.Fatalf("Table IV missing %q", method)
		}
	}
}

func TestTable3DriverReportsTransfer(t *testing.T) {
	var buf bytes.Buffer
	o := microOpts(t, &buf)
	if err := Table3Transfer(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "transfer acc (after FT)") {
		t.Fatal("missing transfer column")
	}
}

func TestSSFLCommDriverComparesProtocols(t *testing.T) {
	var buf bytes.Buffer
	o := microOpts(t, &buf)
	if err := SSFLCommunication(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ssfl", "spatl", "total uplink", "up MB", "down MB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ssfl-comm output missing %q:\n%s", want, out)
		}
	}
}

func TestSVGFiguresWritten(t *testing.T) {
	var buf bytes.Buffer
	o := microOpts(t, &buf)
	o.CSVDir = t.TempDir()
	if err := FEMNISTLearning(o); err != nil {
		t.Fatal(err)
	}
	foundSVG := false
	entries, _ := osReadDir(o.CSVDir)
	for _, e := range entries {
		if strings.HasSuffix(e, ".svg") {
			foundSVG = true
		}
	}
	if !foundSVG {
		t.Fatal("no SVG figure written alongside CSV")
	}
}

// osReadDir lists entry names in dir (helper keeping imports tidy).
func osReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}
