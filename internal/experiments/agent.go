package experiments

import (
	"fmt"

	"spatl/internal/core"
	"spatl/internal/data"
	"spatl/internal/models"
	"spatl/internal/rl"
	"spatl/internal/stats"
)

// RLAgentFineTune reproduces Fig. 6 (§V-F4): the selection agent is
// pre-trained on the ResNet-56 pruning task, then transferred to
// ResNet-18 with only its MLP head fine-tuned; both average-reward
// curves are reported. The paper's finding: the transferred agent
// converges to comparable rewards within a few dozen updates, showing
// the topology embedding transfers across architectures.
func RLAgentFineTune(o Options) error {
	w := o.out()
	s := o.Scale
	val := data.SynthCIFAR(cifarConfig(s), 40*s.Classes, o.Seed*3+101, o.Seed+61)

	fmt.Fprintf(w, "\n== RL agent: pre-train on ResNet-56 pruning ==\n")
	m56 := models.Build(specFor(s, "resnet56"), o.Seed+21)
	agent, pre := core.PretrainAgent(agentCfg(s, o.Seed), m56, val, s.FLOPsBudget, s.PretrainRounds, 4, o.Seed+25)
	printRewards(o, "resnet56 pretrain", pre)

	fmt.Fprintf(w, "\n== RL agent: fine-tune MLP head on ResNet-18 ==\n")
	m18 := models.Build(specFor(s, "resnet18"), o.Seed+63)
	post := core.FineTuneAgent(agent, m18, val, s.FLOPsBudget, s.PretrainRounds, 4, o.Seed+65)
	printRewards(o, "resnet18 finetune", post)

	fmt.Fprintf(w, "\nagent footprint: %d bytes (%0.1f KB) — edge-deployable\n",
		agent.SizeBytes(), float64(agent.SizeBytes())/1024)

	toSeries := func(name string, rs []rl.TrainResult) stats.Series {
		sr := stats.Series{Name: name}
		for _, r := range rs {
			sr.X = append(sr.X, float64(r.Round+1))
			sr.Y = append(sr.Y, r.AvgReward)
		}
		return sr
	}
	return writeCSV(o, "rl_agent_rewards", "update",
		toSeries("pretrain_resnet56", pre), toSeries("finetune_resnet18", post))
}

func printRewards(o Options, label string, rs []rl.TrainResult) {
	tw := table(o)
	fmt.Fprintf(tw, "update\tavg reward\tloss\n")
	for _, r := range rs {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\n", r.Round+1, r.AvgReward, r.Loss)
	}
	tw.Flush()
	ys := make([]float64, len(rs))
	for i, r := range rs {
		ys[i] = r.AvgReward
	}
	fmt.Fprintf(o.out(), "%s reward curve: %s\n", label, stats.Sparkline(ys))
}
