package rl

import (
	"math"
	"math/rand"
	"testing"

	"spatl/internal/graph"
	"spatl/internal/models"
	"spatl/internal/nn"
)

func testGraph(t testing.TB) *graph.Graph {
	t.Helper()
	spec := models.Spec{Arch: "resnet20", Classes: 10, InC: 3, H: 8, W: 8, Width: 0.25}
	return graph.FromEncoder(models.Build(spec, 1))
}

func TestAgentForwardShapes(t *testing.T) {
	g := testGraph(t)
	a := NewAgent(AgentConfig{Seed: 1})
	mu, v := a.Forward(g)
	if len(mu) != g.NumPrunable {
		t.Fatalf("mu length %d, want %d", len(mu), g.NumPrunable)
	}
	for i, m := range mu {
		if m < a.Cfg.MinRatio-1e-9 || m > 1+1e-9 {
			t.Fatalf("mu[%d] = %v outside [%v,1]", i, m, a.Cfg.MinRatio)
		}
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("value %v not finite", v)
	}
}

func TestAgentDeterministicForward(t *testing.T) {
	g := testGraph(t)
	a := NewAgent(AgentConfig{Seed: 2})
	mu1, v1 := a.Forward(g)
	mu2, v2 := a.Forward(g)
	if v1 != v2 {
		t.Fatal("value must be deterministic")
	}
	for i := range mu1 {
		if mu1[i] != mu2[i] {
			t.Fatal("mu must be deterministic")
		}
	}
}

func TestSampleWithinBounds(t *testing.T) {
	g := testGraph(t)
	a := NewAgent(AgentConfig{Seed: 3})
	mu, _ := a.Forward(g)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		action, logp := a.Sample(mu, rng)
		for _, x := range action {
			if x < a.Cfg.MinRatio || x > 1 {
				t.Fatalf("action %v out of bounds", x)
			}
		}
		if math.IsNaN(logp) {
			t.Fatal("logp NaN")
		}
	}
}

func TestLogProbPeaksAtMean(t *testing.T) {
	a := NewAgent(AgentConfig{Seed: 5})
	mu := []float64{0.5, 0.7}
	atMean := a.LogProb(mu, []float64{0.5, 0.7})
	off := a.LogProb(mu, []float64{0.9, 0.3})
	if atMean <= off {
		t.Fatalf("logp at mean %v must exceed off-mean %v", atMean, off)
	}
}

// Numerically validate the agent's full backward pass: for loss
// L = Σ cᵢ·μᵢ + d·V, the analytic parameter gradients must match finite
// differences.
func TestAgentGradientsNumeric(t *testing.T) {
	g := testGraph(t)
	a := NewAgent(AgentConfig{Seed: 6, Dim: 8, HeadHidden: 8})
	k := g.NumPrunable
	coef := make([]float64, k)
	rng := rand.New(rand.NewSource(7))
	for i := range coef {
		coef[i] = rng.NormFloat64()
	}
	dcoef := rng.NormFloat64()

	lossOf := func() float64 {
		mu, v := a.Forward(g)
		l := dcoef * v
		for i, m := range mu {
			l += coef[i] * m
		}
		return l
	}

	params := a.Params()
	nn.ZeroGrad(params)
	mu, _ := a.Forward(g)
	_ = mu
	a.Backward(coef, dcoef)

	const eps = 1e-3
	checked := 0
	for _, p := range params {
		for trial := 0; trial < 2; trial++ {
			j := rng.Intn(p.W.Len())
			orig := p.W.Data[j]
			p.W.Data[j] = orig + eps
			p.Bump() // direct Data write: invalidate packed-weight caches
			lp := lossOf()
			p.W.Data[j] = orig - eps
			p.Bump()
			lm := lossOf()
			p.W.Data[j] = orig
			p.Bump()
			num := (lp - lm) / (2 * eps)
			ana := float64(p.G.Data[j])
			if math.Abs(num-ana) > 5e-2*(1+math.Abs(num)) {
				t.Fatalf("param %s grad[%d]: numeric %v analytic %v", p.Name, j, num, ana)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no gradients checked")
	}
}

// toyEnv rewards actions close to a fixed target vector — PPO must be
// able to shift the policy mean toward it.
type toyEnv struct {
	g      *graph.Graph
	target float64
}

func (e *toyEnv) State() *graph.Graph { return e.g }
func (e *toyEnv) Step(action []float64) float64 {
	var d float64
	for _, a := range action {
		d += math.Abs(a - e.target)
	}
	return 1 - d/float64(len(action))
}

func TestPPOImprovesToyReward(t *testing.T) {
	g := testGraph(t)
	env := &toyEnv{g: g, target: 0.9}
	a := NewAgent(AgentConfig{Seed: 8, LR: 5e-3, Sigma: 0.3})
	ppo := NewPPO(a, false)
	rng := rand.New(rand.NewSource(9))
	res := Train(ppo, env, 30, 8, rng)
	first := res[0].AvgReward
	var lastAvg float64
	for _, r := range res[len(res)-5:] {
		lastAvg += r.AvgReward
	}
	lastAvg /= 5
	if lastAvg <= first+0.02 {
		t.Fatalf("PPO did not improve: first %.4f, final %.4f", first, lastAvg)
	}
	// The greedy action should be pulled toward the target.
	best := BestAction(a, env)
	var mean float64
	for _, b := range best {
		mean += b
	}
	mean /= float64(len(best))
	if mean < 0.6 {
		t.Fatalf("policy mean %.3f not moved toward target 0.9", mean)
	}
}

func TestPPOHeadOnlyFreezesGNN(t *testing.T) {
	g := testGraph(t)
	env := &toyEnv{g: g, target: 0.8}
	a := NewAgent(AgentConfig{Seed: 10, LR: 5e-3})
	gnnBefore := nn.FlattenParams(a.gnn.Params())
	headBefore := nn.FlattenParams(a.HeadParams())
	ppo := NewPPO(a, true)
	Train(ppo, env, 3, 4, rand.New(rand.NewSource(11)))
	gnnAfter := nn.FlattenParams(a.gnn.Params())
	for i := range gnnBefore {
		if gnnBefore[i] != gnnAfter[i] {
			t.Fatal("head-only fine-tuning must not modify the GNN")
		}
	}
	headAfter := nn.FlattenParams(a.HeadParams())
	changed := false
	for i := range headBefore {
		if headBefore[i] != headAfter[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("head parameters must change during fine-tuning")
	}
}

func TestAgentSaveLoadRoundTrip(t *testing.T) {
	g := testGraph(t)
	a := NewAgent(AgentConfig{Seed: 12})
	mu1, v1 := a.Forward(g)
	blob := a.Save()
	b := NewAgent(AgentConfig{Seed: 99})
	b.Load(blob)
	mu2, v2 := b.Forward(g)
	if v1 != v2 {
		t.Fatal("loaded agent value differs")
	}
	for i := range mu1 {
		if mu1[i] != mu2[i] {
			t.Fatal("loaded agent policy differs")
		}
	}
}

func TestAgentTransfersAcrossArchitectures(t *testing.T) {
	// The same agent must run on graphs of different models — the
	// transferability property (§V-F4). ResNet-56 → ResNet-18.
	a := NewAgent(AgentConfig{Seed: 13})
	g56 := graph.FromEncoder(models.Build(models.Spec{Arch: "resnet56", Classes: 10, InC: 3, H: 8, W: 8, Width: 0.25}, 1))
	g18 := graph.FromEncoder(models.Build(models.Spec{Arch: "resnet18", Classes: 10, InC: 3, H: 8, W: 8, Width: 0.25}, 1))
	mu56, _ := a.Forward(g56)
	mu18, _ := a.Forward(g18)
	if len(mu56) != g56.NumPrunable || len(mu18) != g18.NumPrunable {
		t.Fatal("agent must adapt its action dimension to the graph")
	}
}

func TestSizeBytesSmall(t *testing.T) {
	a := NewAgent(AgentConfig{Seed: 14})
	// The paper reports a ~26KB agent; ours must also be edge-friendly
	// (well under 1MB).
	if a.SizeBytes() > 1<<20 {
		t.Fatalf("agent size %dB too large for edge deployment", a.SizeBytes())
	}
	if a.SizeBytes() <= 0 {
		t.Fatal("agent size must be positive")
	}
}

func TestUpdateEmptyBatch(t *testing.T) {
	a := NewAgent(AgentConfig{Seed: 15})
	ppo := NewPPO(a, false)
	if loss := ppo.Update(nil); loss != 0 {
		t.Fatalf("empty batch loss %v", loss)
	}
}

func TestBestActionDeterministic(t *testing.T) {
	g := testGraph(t)
	a := NewAgent(AgentConfig{Seed: 20})
	env := &toyEnv{g: g, target: 0.5}
	b1 := BestAction(a, env)
	b2 := BestAction(a, env)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("BestAction must be deterministic")
		}
	}
}

func TestAgentHandlesGraphWithoutPrunableEdges(t *testing.T) {
	// An MLP has no prunable convolutions; the agent must still produce
	// a (zero-length) action and a finite value.
	spec := models.Spec{Arch: "mlp", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.5}
	g := graph.FromEncoder(models.Build(spec, 1))
	if g.NumPrunable != 0 {
		t.Fatalf("mlp should have 0 prunable edges, got %d", g.NumPrunable)
	}
	a := NewAgent(AgentConfig{Seed: 21})
	mu, v := a.Forward(g)
	if len(mu) != 0 {
		t.Fatalf("expected empty action, got %d", len(mu))
	}
	if math.IsNaN(v) {
		t.Fatal("value NaN")
	}
}

// Property: the PPO objective's clipped branch bounds the update — after
// Update, replaying the same state gives a ratio within a loose band
// around [1−ε, 1+ε] for actions in the batch (policies cannot run away
// in one update).
func TestPPOClipLimitsPolicyShift(t *testing.T) {
	g := testGraph(t)
	a := NewAgent(AgentConfig{Seed: 22, LR: 5e-3, Sigma: 0.4})
	ppo := NewPPO(a, false)
	rng := rand.New(rand.NewSource(23))
	env := &toyEnv{g: g, target: 0.9}
	batch := RolloutBatch(a, env, 6, rng)
	ppo.Update(batch)
	for _, tr := range batch {
		mu, _ := a.Forward(tr.State)
		ratio := math.Exp(a.LogProb(mu, tr.Action) - tr.LogProb)
		// Update runs several epochs, so the total shift can exceed one
		// clip band, but clipping must keep it orders of magnitude away
		// from a runaway (e^{±10}-style) jump.
		if ratio > 5 || ratio < 0.2 {
			t.Fatalf("policy ratio %.3f after one update — clipping failed to bound the shift", ratio)
		}
	}
}

func TestTrainResultLengthsAndFiniteness(t *testing.T) {
	g := testGraph(t)
	a := NewAgent(AgentConfig{Seed: 24})
	ppo := NewPPO(a, false)
	res := Train(ppo, &toyEnv{g: g, target: 0.5}, 4, 3, rand.New(rand.NewSource(25)))
	if len(res) != 4 {
		t.Fatalf("rounds = %d", len(res))
	}
	for i, r := range res {
		if r.Round != i || math.IsNaN(r.AvgReward) || math.IsNaN(r.Loss) {
			t.Fatalf("bad result %+v", r)
		}
	}
}
