package rl

import (
	"math"
	"math/rand"

	"spatl/internal/graph"
	"spatl/internal/nn"
	"spatl/internal/tensor"
)

// AgentConfig sets the agent's hyperparameters. Defaults follow §V-A of
// the paper: PPO clip 0.2, action standard deviation 0.5, discount 0.99,
// Adam with lr 1e-4.
type AgentConfig struct {
	Dim        int     // GNN hidden dimension (default 16)
	Rounds     int     // message-passing rounds (default 2)
	HeadHidden int     // actor/critic MLP hidden width (default 32)
	MinRatio   float64 // smallest selectable keep-ratio (default 0.2)
	Sigma      float64 // Gaussian policy std (default 0.5)
	Clip       float64 // PPO clip ε (default 0.2)
	LR         float64 // Adam learning rate (default 1e-4)
	Seed       int64
}

// WithDefaults fills zero fields.
func (c AgentConfig) WithDefaults() AgentConfig {
	if c.Dim == 0 {
		c.Dim = 16
	}
	if c.Rounds == 0 {
		c.Rounds = 2
	}
	if c.HeadHidden == 0 {
		c.HeadHidden = 32
	}
	if c.MinRatio == 0 {
		c.MinRatio = 0.2
	}
	if c.Sigma == 0 {
		c.Sigma = 0.5
	}
	if c.Clip == 0 {
		c.Clip = 0.2
	}
	if c.LR == 0 {
		c.LR = 1e-4
	}
	return c
}

// Agent is the salient-parameter selection agent: GNN topology encoder
// plus actor (per-prunable-layer keep ratios) and critic (state value)
// heads.
type Agent struct {
	Cfg AgentConfig

	gnn    *GNN
	actor1 *nn.Linear
	actorR *nn.ReLU
	actor2 *nn.Linear
	crit1  *nn.Linear
	critR  *nn.ReLU
	crit2  *nn.Linear

	// forward caches
	fc *agentCache
}

type agentCache struct {
	g        *graph.Graph
	h        *tensor.Tensor
	actIn    *tensor.Tensor // (K, 2D+F)
	actRaw   *tensor.Tensor // (K, 1) pre-sigmoid
	mu       []float64
	pooled   *tensor.Tensor // (1, D)
	value    float64
	prunable []graph.Edge
}

// NewAgent constructs an agent.
func NewAgent(cfg AgentConfig) *Agent {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	a := &Agent{Cfg: cfg}
	a.gnn = NewGNN(cfg.Dim, cfg.Rounds, rng)
	in := 2*cfg.Dim + graph.FeatureDim
	a.actor1 = nn.NewLinear("actor.fc1", in, cfg.HeadHidden, rng)
	a.actorR = nn.NewReLU("actor.relu")
	a.actor2 = nn.NewLinear("actor.fc2", cfg.HeadHidden, 1, rng)
	a.crit1 = nn.NewLinear("critic.fc1", cfg.Dim, cfg.HeadHidden, rng)
	a.critR = nn.NewReLU("critic.relu")
	a.crit2 = nn.NewLinear("critic.fc2", cfg.HeadHidden, 1, rng)
	return a
}

// Params returns all trainable parameters (GNN + heads).
func (a *Agent) Params() []*nn.Param {
	ps := a.gnn.Params()
	ps = append(ps, a.HeadParams()...)
	return ps
}

// HeadParams returns only the MLP head parameters — the part fine-tuned
// on clients (§V-A: "We only update the MLP's parameter when
// fine-tuning").
func (a *Agent) HeadParams() []*nn.Param {
	ps := a.actor1.Params()
	ps = append(ps, a.actor2.Params()...)
	ps = append(ps, a.crit1.Params()...)
	ps = append(ps, a.crit2.Params()...)
	return ps
}

// SizeBytes reports the serialized agent size (float32 weights) — the
// footprint shipped to edge clients.
func (a *Agent) SizeBytes() int { return 4 * nn.ParamCount(a.Params()) }

// Forward evaluates the policy on a graph state, producing the per-layer
// keep-ratio means μ ∈ [MinRatio, 1] and the critic value estimate.
func (a *Agent) Forward(g *graph.Graph) (mu []float64, value float64) {
	h := a.gnn.Forward(g)
	c := &agentCache{g: g, h: h, prunable: g.PrunableEdges()}
	k := len(c.prunable)
	d := a.Cfg.Dim
	in := 2*d + graph.FeatureDim

	c.actIn = tensor.New(maxInt(k, 1), in)
	for i, e := range c.prunable {
		row := c.actIn.Data[i*in:]
		copy(row[:d], h.Data[e.Src*d:(e.Src+1)*d])
		copy(row[d:2*d], h.Data[e.Dst*d:(e.Dst+1)*d])
		copy(row[2*d:in], e.Features())
	}
	c.actRaw = a.actor2.Forward(a.actorR.Forward(a.actor1.Forward(c.actIn, true), true), true)
	c.mu = make([]float64, k)
	for i := 0; i < k; i++ {
		s := 1 / (1 + math.Exp(-float64(c.actRaw.Data[i])))
		c.mu[i] = a.Cfg.MinRatio + (1-a.Cfg.MinRatio)*s
	}

	// Critic over mean-pooled node states.
	n := g.NumNodes
	c.pooled = tensor.New(1, d)
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			c.pooled.Data[j] += h.Data[v*d+j]
		}
	}
	inv := float32(1 / float64(n))
	for j := range c.pooled.Data {
		c.pooled.Data[j] *= inv
	}
	vOut := a.crit2.Forward(a.critR.Forward(a.crit1.Forward(c.pooled, true), true), true)
	c.value = float64(vOut.Data[0])
	a.fc = c
	return c.mu, c.value
}

// Backward propagates loss gradients w.r.t. the actor means (dMu) and
// the critic value (dV) through heads and GNN, accumulating parameter
// gradients. Must follow Forward on the same state.
func (a *Agent) Backward(dMu []float64, dV float64) {
	c := a.fc
	if c == nil {
		panic("rl: Agent.Backward before Forward")
	}
	d := a.Cfg.Dim
	k := len(c.prunable)

	// Actor: dμ/draw = (1−MinRatio)·s·(1−s).
	dRaw := tensor.New(maxInt(k, 1), 1)
	for i := 0; i < k; i++ {
		s := 1 / (1 + math.Exp(-float64(c.actRaw.Data[i])))
		dRaw.Data[i] = float32(dMu[i] * (1 - a.Cfg.MinRatio) * s * (1 - s))
	}
	dActIn := a.actor1.Backward(a.actorR.Backward(a.actor2.Backward(dRaw)))

	// Critic.
	dVOut := tensor.New(1, 1)
	dVOut.Data[0] = float32(dV)
	dPooled := a.crit1.Backward(a.critR.Backward(a.crit2.Backward(dVOut)))

	// Assemble dH: pooled gradient spreads 1/N to every node; actor
	// input gradient scatters to src/dst node rows.
	n := c.g.NumNodes
	dH := tensor.New(n, d)
	inv := float32(1 / float64(n))
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			dH.Data[v*d+j] += dPooled.Data[j] * inv
		}
	}
	in := 2*d + graph.FeatureDim
	for i, e := range c.prunable {
		row := dActIn.Data[i*in:]
		for j := 0; j < d; j++ {
			dH.Data[e.Src*d+j] += row[j]
			dH.Data[e.Dst*d+j] += row[d+j]
		}
	}
	a.gnn.Backward(dH)
}

// Sample draws an action from the Gaussian policy around mu, clipped to
// [MinRatio, 1], and returns it with its log-probability.
func (a *Agent) Sample(mu []float64, rng *rand.Rand) (action []float64, logp float64) {
	action = make([]float64, len(mu))
	for i, m := range mu {
		x := m + a.Cfg.Sigma*rng.NormFloat64()
		if x < a.Cfg.MinRatio {
			x = a.Cfg.MinRatio
		}
		if x > 1 {
			x = 1
		}
		action[i] = x
	}
	return action, a.LogProb(mu, action)
}

// LogProb returns the Gaussian log-density of action under means mu
// (clipping treated as density at the boundary value, the common PPO
// simplification).
func (a *Agent) LogProb(mu, action []float64) float64 {
	s2 := a.Cfg.Sigma * a.Cfg.Sigma
	lp := 0.0
	for i := range mu {
		d := action[i] - mu[i]
		lp += -d*d/(2*s2) - math.Log(a.Cfg.Sigma*math.Sqrt(2*math.Pi))
	}
	return lp
}

// Save serializes all agent weights.
func (a *Agent) Save() []float32 { return nn.FlattenParams(a.Params()) }

// Load restores weights produced by Save.
func (a *Agent) Load(flat []float32) { nn.UnflattenParams(a.Params(), flat) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
