// Package rl implements SPATL's salient-parameter selection agent: a
// graph-neural-network encoder over the model's computational graph
// followed by MLP actor/critic heads, trained with proximal policy
// optimization (PPO, §IV-B). The GNN embeds network topology, which is
// what makes the agent transferable across architectures (pre-train on
// ResNet-56 pruning, fine-tune only the MLP head on each client).
//
// The message-passing forward/backward passes are written by hand on top
// of internal/nn layers — each Linear/ReLU instance is used exactly once
// per forward pass, so the standard layer-cache backprop applies.
package rl

import (
	"math/rand"

	"spatl/internal/graph"
	"spatl/internal/nn"
	"spatl/internal/tensor"
)

// GNN is a message-passing graph encoder: node states are initialized
// from incident-edge features, then refined for a fixed number of rounds
// by gathering neighbor messages along edges (both directions).
type GNN struct {
	Dim    int
	Rounds int

	init  *nn.Linear
	initR *nn.ReLU
	msg   []*nn.Linear
	msgR  []*nn.ReLU
	upd   []*nn.Linear
	updR  []*nn.ReLU

	// forward caches
	cache *gnnCache
}

type gnnCache struct {
	g       *graph.Graph
	feat    *tensor.Tensor // (E, F)
	msgFrom []int          // message source node per directed message
	msgTo   []int          // message target node per directed message
	msgEdge []int          // underlying edge per directed message
	degIn   []float32      // messages received per node
	incDeg  []float32      // incident edges per node (for init mean)
	hs      []*tensor.Tensor
	gathers []*tensor.Tensor // gathered [h_from ; f_e] per round
	aggs    []*tensor.Tensor // aggregated messages per round
	msgOut  []*tensor.Tensor // per-round message activations (E2, D)
}

// NewGNN constructs a GNN with hidden dimension dim and the given number
// of message-passing rounds.
func NewGNN(dim, rounds int, rng *rand.Rand) *GNN {
	g := &GNN{Dim: dim, Rounds: rounds}
	g.init = nn.NewLinear("gnn.init", graph.FeatureDim, dim, rng)
	g.initR = nn.NewReLU("gnn.init.relu")
	for t := 0; t < rounds; t++ {
		g.msg = append(g.msg, nn.NewLinear("gnn.msg", dim+graph.FeatureDim, dim, rng))
		g.msgR = append(g.msgR, nn.NewReLU("gnn.msg.relu"))
		g.upd = append(g.upd, nn.NewLinear("gnn.upd", 2*dim, dim, rng))
		g.updR = append(g.updR, nn.NewReLU("gnn.upd.relu"))
	}
	return g
}

// Params returns all trainable GNN parameters.
func (g *GNN) Params() []*nn.Param {
	ps := g.init.Params()
	for t := 0; t < g.Rounds; t++ {
		ps = append(ps, g.msg[t].Params()...)
		ps = append(ps, g.upd[t].Params()...)
	}
	return ps
}

// Forward embeds the graph, returning node states H of shape (N, Dim).
func (g *GNN) Forward(gr *graph.Graph) *tensor.Tensor {
	c := &gnnCache{g: gr}
	e := len(gr.Edges)
	c.feat = tensor.New(max(e, 1), graph.FeatureDim)
	for i, ed := range gr.Edges {
		copy(c.feat.Data[i*graph.FeatureDim:], ed.Features())
	}
	// Directed message list: both directions of every edge.
	for i, ed := range gr.Edges {
		c.msgFrom = append(c.msgFrom, ed.Src, ed.Dst)
		c.msgTo = append(c.msgTo, ed.Dst, ed.Src)
		c.msgEdge = append(c.msgEdge, i, i)
	}
	n := gr.NumNodes
	c.degIn = make([]float32, n)
	for _, t := range c.msgTo {
		c.degIn[t]++
	}
	c.incDeg = make([]float32, n)
	for _, ed := range gr.Edges {
		c.incDeg[ed.Src]++
		c.incDeg[ed.Dst]++
	}

	// Node init: mean of incident edge features through a linear+ReLU.
	x := tensor.New(n, graph.FeatureDim)
	for i, ed := range gr.Edges {
		f := c.feat.Data[i*graph.FeatureDim : (i+1)*graph.FeatureDim]
		for _, v := range []int{ed.Src, ed.Dst} {
			row := x.Data[v*graph.FeatureDim : (v+1)*graph.FeatureDim]
			for j, fv := range f {
				row[j] += fv
			}
		}
	}
	for v := 0; v < n; v++ {
		if c.incDeg[v] > 0 {
			inv := 1 / c.incDeg[v]
			row := x.Data[v*graph.FeatureDim : (v+1)*graph.FeatureDim]
			for j := range row {
				row[j] *= inv
			}
		}
	}
	h := g.initR.Forward(g.init.Forward(x, true), true)
	c.hs = append(c.hs, h)

	e2 := len(c.msgFrom)
	for t := 0; t < g.Rounds; t++ {
		// Gather [h_from ; f_e] for every directed message.
		gat := tensor.New(max(e2, 1), g.Dim+graph.FeatureDim)
		for m := 0; m < e2; m++ {
			row := gat.Data[m*(g.Dim+graph.FeatureDim):]
			copy(row[:g.Dim], h.Data[c.msgFrom[m]*g.Dim:(c.msgFrom[m]+1)*g.Dim])
			ei := c.msgEdge[m]
			copy(row[g.Dim:g.Dim+graph.FeatureDim], c.feat.Data[ei*graph.FeatureDim:(ei+1)*graph.FeatureDim])
		}
		c.gathers = append(c.gathers, gat)
		mout := g.msgR[t].Forward(g.msg[t].Forward(gat, true), true)
		c.msgOut = append(c.msgOut, mout)

		// Mean-aggregate messages at target nodes.
		agg := tensor.New(n, g.Dim)
		for m := 0; m < e2; m++ {
			to := c.msgTo[m]
			src := mout.Data[m*g.Dim : (m+1)*g.Dim]
			dst := agg.Data[to*g.Dim : (to+1)*g.Dim]
			for j, v := range src {
				dst[j] += v
			}
		}
		for v := 0; v < n; v++ {
			if c.degIn[v] > 0 {
				inv := 1 / c.degIn[v]
				row := agg.Data[v*g.Dim : (v+1)*g.Dim]
				for j := range row {
					row[j] *= inv
				}
			}
		}
		c.aggs = append(c.aggs, agg)

		// Update: h ← ReLU(W·[h ; agg]).
		cat := tensor.New(n, 2*g.Dim)
		for v := 0; v < n; v++ {
			copy(cat.Data[v*2*g.Dim:], h.Data[v*g.Dim:(v+1)*g.Dim])
			copy(cat.Data[v*2*g.Dim+g.Dim:], agg.Data[v*g.Dim:(v+1)*g.Dim])
		}
		h = g.updR[t].Forward(g.upd[t].Forward(cat, true), true)
		c.hs = append(c.hs, h)
	}
	g.cache = c
	return h
}

// Backward propagates dH (gradient w.r.t. the final node states) through
// the message-passing stack, accumulating parameter gradients.
func (g *GNN) Backward(dH *tensor.Tensor) {
	c := g.cache
	if c == nil {
		panic("rl: GNN.Backward before Forward")
	}
	n := c.g.NumNodes
	e2 := len(c.msgFrom)
	for t := g.Rounds - 1; t >= 0; t-- {
		dcat := g.upd[t].Backward(g.updR[t].Backward(dH))
		// Split concat gradient into dh (previous state) and dagg.
		dh := tensor.New(n, g.Dim)
		dagg := tensor.New(n, g.Dim)
		for v := 0; v < n; v++ {
			copy(dh.Data[v*g.Dim:(v+1)*g.Dim], dcat.Data[v*2*g.Dim:v*2*g.Dim+g.Dim])
			copy(dagg.Data[v*g.Dim:(v+1)*g.Dim], dcat.Data[v*2*g.Dim+g.Dim:(v+1)*2*g.Dim])
		}
		// Backward through mean aggregation: each message receives
		// dagg[to]/deg[to].
		dmout := tensor.New(max(e2, 1), g.Dim)
		for m := 0; m < e2; m++ {
			to := c.msgTo[m]
			inv := float32(0)
			if c.degIn[to] > 0 {
				inv = 1 / c.degIn[to]
			}
			src := dagg.Data[to*g.Dim : (to+1)*g.Dim]
			dst := dmout.Data[m*g.Dim : (m+1)*g.Dim]
			for j, v := range src {
				dst[j] = v * inv
			}
		}
		dgat := g.msg[t].Backward(g.msgR[t].Backward(dmout))
		// Scatter the h_from part of the gather gradient back to nodes.
		for m := 0; m < e2; m++ {
			from := c.msgFrom[m]
			row := dgat.Data[m*(g.Dim+graph.FeatureDim):]
			dst := dh.Data[from*g.Dim : (from+1)*g.Dim]
			for j := 0; j < g.Dim; j++ {
				dst[j] += row[j]
			}
		}
		dH = dh
	}
	g.init.Backward(g.initR.Backward(dH))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
