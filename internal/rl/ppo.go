package rl

import (
	"math"
	"math/rand"

	"spatl/internal/graph"
	"spatl/internal/nn"
)

// Transition is one agent-environment interaction: the pruning task is a
// contextual bandit (one decision per episode — the full sparsity
// vector), so no bootstrapping across steps is needed and the advantage
// is reward − value.
type Transition struct {
	State   *graph.Graph
	Action  []float64
	Reward  float64
	LogProb float64 // log π_old(a|s)
	Value   float64 // V_old(s)
}

// PPO trains an Agent with the clipped surrogate objective (eq. 8 of the
// paper). When HeadOnly is set, only the MLP heads are updated — the
// client-side fine-tuning mode.
type PPO struct {
	Agent    *Agent
	Epochs   int // optimization epochs per batch (default 4)
	HeadOnly bool

	opt    *nn.Adam
	allP   []*nn.Param
	trainP []*nn.Param
}

// NewPPO constructs a PPO trainer over the agent.
func NewPPO(agent *Agent, headOnly bool) *PPO {
	p := &PPO{Agent: agent, Epochs: 4, HeadOnly: headOnly}
	p.allP = agent.Params()
	if headOnly {
		p.trainP = agent.HeadParams()
	} else {
		p.trainP = p.allP
	}
	p.opt = nn.NewAdam(p.trainP, agent.Cfg.LR)
	return p
}

// Update runs PPO optimization epochs over a batch of transitions and
// returns the mean clipped-surrogate+value loss of the final epoch.
func (p *PPO) Update(batch []Transition) float64 {
	if len(batch) == 0 {
		return 0
	}
	// Advantages (reward − old value), normalized across the batch.
	advs := make([]float64, len(batch))
	var mean float64
	for i, t := range batch {
		advs[i] = t.Reward - t.Value
		mean += advs[i]
	}
	mean /= float64(len(advs))
	var variance float64
	for _, a := range advs {
		variance += (a - mean) * (a - mean)
	}
	std := math.Sqrt(variance/float64(len(advs))) + 1e-8
	for i := range advs {
		advs[i] = (advs[i] - mean) / std
	}

	clip := p.Agent.Cfg.Clip
	s2 := p.Agent.Cfg.Sigma * p.Agent.Cfg.Sigma
	var lastLoss float64
	for epoch := 0; epoch < p.Epochs; epoch++ {
		var total float64
		for i, t := range batch {
			nn.ZeroGrad(p.allP)
			mu, v := p.Agent.Forward(t.State)
			logp := p.Agent.LogProb(mu, t.Action)
			ratio := math.Exp(logp - t.LogProb)
			adv := advs[i]

			unclipped := ratio * adv
			rclip := ratio
			if rclip < 1-clip {
				rclip = 1 - clip
			} else if rclip > 1+clip {
				rclip = 1 + clip
			}
			clipped := rclip * adv

			// Surrogate objective takes the min; its gradient flows only
			// through the unclipped branch, and only when that branch is
			// the active minimum.
			// When the clipped branch is strictly smaller it is the active
			// min and is constant in the policy (rclip ≠ ratio there), so
			// the gradient is zero; otherwise the gradient flows through
			// the unclipped branch.
			var dObjDLogp float64
			obj := unclipped
			if clipped < unclipped {
				obj = clipped
			} else {
				dObjDLogp = ratio * adv
			}

			vErr := v - t.Reward
			loss := -obj + 0.5*vErr*vErr
			total += loss

			// dL/dμᵢ = −dObj/dlogp · ∂logp/∂μᵢ ; ∂logp/∂μᵢ = (aᵢ−μᵢ)/σ².
			dMu := make([]float64, len(mu))
			for j := range mu {
				dMu[j] = -dObjDLogp * (t.Action[j] - mu[j]) / s2
			}
			p.Agent.Backward(dMu, vErr)
			p.opt.Step()
		}
		lastLoss = total / float64(len(batch))
	}
	return lastLoss
}

// Environment is a one-step decision task for the agent: observe the
// model's computational graph, emit per-layer keep ratios, receive the
// resulting reward (validation accuracy of the selected sub-network,
// eq. 7).
type Environment interface {
	// State returns the current graph observation.
	State() *graph.Graph
	// Step applies the action and returns its reward.
	Step(action []float64) float64
}

// RolloutBatch collects n transitions from env under the current policy.
func RolloutBatch(agent *Agent, env Environment, n int, rng *rand.Rand) []Transition {
	batch := make([]Transition, 0, n)
	for i := 0; i < n; i++ {
		st := env.State()
		mu, v := agent.Forward(st)
		action, logp := agent.Sample(mu, rng)
		r := env.Step(action)
		batch = append(batch, Transition{State: st, Action: action, Reward: r, LogProb: logp, Value: v})
	}
	return batch
}

// TrainResult records one PPO update round.
type TrainResult struct {
	Round     int
	AvgReward float64
	Loss      float64
}

// Train alternates rollout and PPO update for the given number of
// rounds, returning the per-round average rewards — the curves of
// Fig. 6 in the paper.
func Train(ppo *PPO, env Environment, rounds, batchSize int, rng *rand.Rand) []TrainResult {
	out := make([]TrainResult, 0, rounds)
	for r := 0; r < rounds; r++ {
		batch := RolloutBatch(ppo.Agent, env, batchSize, rng)
		var avg float64
		for _, t := range batch {
			avg += t.Reward
		}
		avg /= float64(len(batch))
		loss := ppo.Update(batch)
		out = append(out, TrainResult{Round: r, AvgReward: avg, Loss: loss})
	}
	return out
}

// BestAction returns the policy mean (the greedy action) for the current
// environment state — used at deployment time for one-shot selection.
func BestAction(agent *Agent, env Environment) []float64 {
	mu, _ := agent.Forward(env.State())
	return mu
}
