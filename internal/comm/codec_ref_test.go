package comm

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// codecLens covers the bulk loops' corner cases: empty, below/at/above
// the 8-wide unroll, and odd lengths that exercise every tail size.
var codecLens = []int{0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 33, 63, 64, 100, 255, 1000, 4097}

func randVals(rng *rand.Rand, n int) []float32 {
	v := make([]float32, n)
	for i := range v {
		switch rng.Intn(16) {
		case 0:
			v[i] = 0
		case 1:
			v[i] = float32(math.Inf(1))
		case 2:
			v[i] = float32(1e-42) // f32 subnormal territory after f16 round-trip
		default:
			v[i] = float32(rng.NormFloat64())
		}
	}
	return v
}

// randSparse builds a valid sorted-run sparse payload with n values split
// into runs of odd lengths.
func randSparse(rng *rand.Rand, n int) *Sparse {
	s := &Sparse{Values: randVals(rng, n)}
	start := uint32(rng.Intn(3))
	left := n
	for left > 0 {
		l := 1 + rng.Intn(7)
		if l > left {
			l = left
		}
		s.Ranges = append(s.Ranges, Range{Start: start, Len: uint32(l)})
		start += uint32(l) + uint32(rng.Intn(4))
		left -= l
	}
	return s
}

// TestDenseBulkMatchesRef demands bitwise identity between the bulk and
// reference dense codecs in both directions at every tail length.
func TestDenseBulkMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range codecLens {
		v := randVals(rng, n)
		ref := RefEncodeDense(v)
		if got := EncodeDense(v); !bytes.Equal(got, ref) {
			t.Fatalf("n=%d: bulk EncodeDense differs from reference", n)
		}
		want, err := RefDecodeDense(ref)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeDense(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bitwiseEqual(got, want) {
			t.Fatalf("n=%d: bulk DecodeDense differs from reference", n)
		}
	}
}

// TestDenseF16BulkMatchesRef does the same for the half-precision codecs.
func TestDenseF16BulkMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range codecLens {
		v := randVals(rng, n)
		ref := RefEncodeDenseF16(v)
		if got := EncodeDenseF16(v); !bytes.Equal(got, ref) {
			t.Fatalf("n=%d: bulk EncodeDenseF16 differs from reference", n)
		}
		want, err := RefDecodeDenseF16(ref)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeDenseAny(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bitwiseEqual(got, want) {
			t.Fatalf("n=%d: bulk f16 decode differs from reference", n)
		}
	}
}

// TestSparseBulkMatchesRef covers the sparse codecs at both precisions.
func TestSparseBulkMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range codecLens {
		s := randSparse(rng, n)
		ref := RefEncodeSparse(s)
		if got := EncodeSparse(s); !bytes.Equal(got, ref) {
			t.Fatalf("n=%d: bulk EncodeSparse differs from reference", n)
		}
		want, err := RefDecodeSparse(ref)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeSparse(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !sparseEqual(got, want) {
			t.Fatalf("n=%d: bulk DecodeSparse differs from reference", n)
		}

		ref16 := RefEncodeSparseF16(s)
		if got := EncodeSparseF16(s); !bytes.Equal(got, ref16) {
			t.Fatalf("n=%d: bulk EncodeSparseF16 differs from reference", n)
		}
		want16, err := RefDecodeSparseF16(ref16)
		if err != nil {
			t.Fatal(err)
		}
		got16, err := DecodeSparseAny(ref16)
		if err != nil {
			t.Fatal(err)
		}
		if !sparseEqual(got16, want16) {
			t.Fatalf("n=%d: bulk f16 sparse decode differs from reference", n)
		}
	}
}

// TestIntoVariantsReuseBuffers verifies the *Into codecs produce the same
// bytes/values while reusing caller capacity, and still work when the
// supplied buffer is too small.
func TestIntoVariantsReuseBuffers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := randVals(rng, 100)
	ref := RefEncodeDense(v)

	big := GetBuf(DenseLen(len(v)))
	enc := EncodeDenseInto(big, v)
	if &enc[0] != &big[0] {
		t.Fatal("EncodeDenseInto did not reuse a sufficient buffer")
	}
	if !bytes.Equal(enc, ref) {
		t.Fatal("EncodeDenseInto bytes differ from reference")
	}
	if got := EncodeDenseInto(make([]byte, 3), v); !bytes.Equal(got, ref) {
		t.Fatal("EncodeDenseInto with tiny dst differs from reference")
	}
	PutBuf(enc)

	dst := GetF32(len(v))
	dec, err := DecodeDenseInto(dst, ref)
	if err != nil {
		t.Fatal(err)
	}
	if &dec[0] != &dst[0] {
		t.Fatal("DecodeDenseInto did not reuse a sufficient buffer")
	}
	if !bitwiseEqual(dec, v) {
		t.Fatal("DecodeDenseInto values differ")
	}
	PutF32(dec)

	s := randSparse(rng, 77)
	sref := RefEncodeSparse(s)
	var out Sparse
	out.Values = GetF32(8) // deliberately too small: must grow
	if err := DecodeSparseInto(&out, sref); err != nil {
		t.Fatal(err)
	}
	if !sparseEqual(&out, s) {
		t.Fatal("DecodeSparseInto differs from input")
	}
	// Second decode into the now-sized buffers must not reallocate.
	vals0, ranges0 := &out.Values[0], &out.Ranges[0]
	if err := DecodeSparseInto(&out, sref); err != nil {
		t.Fatal(err)
	}
	if &out.Values[0] != vals0 || &out.Ranges[0] != ranges0 {
		t.Fatal("DecodeSparseInto reallocated sufficient buffers")
	}
}

func bitwiseEqual(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return false
		}
	}
	return true
}

func sparseEqual(a, b *Sparse) bool {
	if len(a.Ranges) != len(b.Ranges) {
		return false
	}
	for i := range a.Ranges {
		if a.Ranges[i] != b.Ranges[i] {
			return false
		}
	}
	return bitwiseEqual(a.Values, b.Values)
}
