package comm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Half-precision payloads: IEEE 754 binary16 encodings of the dense and
// sparse payloads, halving wire volume at ~3 decimal digits of
// precision. Federated averaging is robust to this quantization; the
// fl.Config.HalfPrecision switch enables it end to end. This is an
// extension beyond the paper (which ships float32), composable with
// salient selection.
//
// As with the float32 codecs, the scalar reference implementations live
// in ref.go; the bulk implementations here convert eight values per loop
// pass, packing four halves into each 64-bit little-endian word.

const (
	magicDenseF16  = 0x68 // 'h'
	magicSparseF16 = 0x73 // 's'
)

// DenseF16Len returns the encoded size of an n-element dense f16 payload.
func DenseF16Len(n int) int { return 1 + 4 + 2*n }

// EncodedLenF16 returns the size of the payload EncodeSparseF16 produces.
func (s *Sparse) EncodedLenF16() int {
	return 1 + 4 + 8*len(s.Ranges) + 4 + 2*len(s.Values)
}

// Float32ToF16 converts to IEEE 754 binary16 (round-to-nearest-even),
// with overflow clamping to ±Inf and subnormal flushing.
func Float32ToF16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127 + 15
	mant := bits & 0x7FFFFF

	switch {
	case int32(bits>>23&0xFF) == 0xFF: // Inf/NaN
		if mant != 0 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // Inf
	case exp >= 0x1F: // overflow → Inf
		return sign | 0x7C00
	case exp <= 0:
		// Subnormal or underflow.
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		// Round to nearest.
		if mant>>(shift-1)&1 != 0 {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		// Round to nearest even on the dropped bits.
		if mant&0x1FFF > 0x1000 || (mant&0x1FFF == 0x1000 && half&1 == 1) {
			half++
		}
		return half
	}
}

// F16ToFloat32 converts an IEEE 754 binary16 value to float32.
func F16ToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)
	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case exp == 0x1F:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7FC00000)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// putF16Bulk converts vals to binary16 and stores them little-endian into
// dst (len(dst) ≥ 2*len(vals)), eight values per pass, four packed per
// 64-bit store.
func putF16Bulk(dst []byte, vals []float32) {
	for len(vals) >= 8 {
		d := dst[:16]
		binary.LittleEndian.PutUint64(d[0:8],
			uint64(Float32ToF16(vals[0]))|uint64(Float32ToF16(vals[1]))<<16|
				uint64(Float32ToF16(vals[2]))<<32|uint64(Float32ToF16(vals[3]))<<48)
		binary.LittleEndian.PutUint64(d[8:16],
			uint64(Float32ToF16(vals[4]))|uint64(Float32ToF16(vals[5]))<<16|
				uint64(Float32ToF16(vals[6]))<<32|uint64(Float32ToF16(vals[7]))<<48)
		dst = dst[16:]
		vals = vals[8:]
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint16(dst[2*i:], Float32ToF16(v))
	}
}

// getF16Bulk loads len(out) little-endian binary16 values from src and
// widens them to float32, eight per pass, four unpacked per 64-bit load.
func getF16Bulk(out []float32, src []byte) {
	for len(out) >= 8 {
		s := src[:16]
		u0 := binary.LittleEndian.Uint64(s[0:8])
		u1 := binary.LittleEndian.Uint64(s[8:16])
		out[0] = F16ToFloat32(uint16(u0))
		out[1] = F16ToFloat32(uint16(u0 >> 16))
		out[2] = F16ToFloat32(uint16(u0 >> 32))
		out[3] = F16ToFloat32(uint16(u0 >> 48))
		out[4] = F16ToFloat32(uint16(u1))
		out[5] = F16ToFloat32(uint16(u1 >> 16))
		out[6] = F16ToFloat32(uint16(u1 >> 32))
		out[7] = F16ToFloat32(uint16(u1 >> 48))
		out = out[8:]
		src = src[16:]
	}
	for i := range out {
		out[i] = F16ToFloat32(binary.LittleEndian.Uint16(src[2*i:]))
	}
}

// EncodeDenseF16 serializes a flat vector at half precision.
func EncodeDenseF16(values []float32) []byte {
	return EncodeDenseF16Into(nil, values)
}

// EncodeDenseF16Into is EncodeDenseF16 writing into dst (reused when its
// capacity suffices, reallocated otherwise). Returns the encoded slice.
func EncodeDenseF16Into(dst []byte, values []float32) []byte {
	buf := sizeBytes(dst, DenseF16Len(len(values)))
	buf[0] = magicDenseF16
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(values)))
	putF16Bulk(buf[5:], values)
	return buf
}

// decodeDenseF16Into parses an EncodeDenseF16 payload into dst.
func decodeDenseF16Into(dst []float32, buf []byte) ([]float32, error) {
	if len(buf) < 5 || buf[0] != magicDenseF16 {
		return nil, fmt.Errorf("comm: not a dense-f16 payload")
	}
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	if len(buf) != 5+2*n {
		return nil, fmt.Errorf("comm: dense-f16 payload length %d, want %d", len(buf), 5+2*n)
	}
	out := sizeF32(dst, n)
	getF16Bulk(out, buf[5:])
	return out, nil
}

// EncodeSparseF16 serializes a sparse payload with half-precision values
// (index ranges stay 32-bit).
func EncodeSparseF16(s *Sparse) []byte {
	return EncodeSparseF16Into(nil, s)
}

// EncodeSparseF16Into is EncodeSparseF16 writing into dst (reused when
// its capacity suffices, reallocated otherwise).
func EncodeSparseF16Into(dst []byte, s *Sparse) []byte {
	buf := sizeBytes(dst, s.EncodedLenF16())
	buf[0] = magicSparseF16
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(s.Ranges)))
	off := 5
	for _, r := range s.Ranges {
		binary.LittleEndian.PutUint64(buf[off:off+8], uint64(r.Start)|uint64(r.Len)<<32)
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(s.Values)))
	off += 4
	putF16Bulk(buf[off:], s.Values)
	return buf
}

// decodeSparseF16Into parses an EncodeSparseF16 payload into s, reusing
// its buffers as DecodeSparseInto does.
func decodeSparseF16Into(s *Sparse, buf []byte) error {
	if len(buf) < 5 || buf[0] != magicSparseF16 {
		return fmt.Errorf("comm: not a sparse-f16 payload")
	}
	nr := int(binary.LittleEndian.Uint32(buf[1:5]))
	off := 5
	if len(buf) < off+8*nr+4 {
		return fmt.Errorf("comm: sparse-f16 payload truncated in ranges")
	}
	ranges := s.Ranges[:0]
	if cap(ranges) < nr {
		ranges = make([]Range, 0, nr)
	}
	for i := 0; i < nr; i++ {
		u := binary.LittleEndian.Uint64(buf[off : off+8])
		ranges = append(ranges, Range{Start: uint32(u), Len: uint32(u >> 32)})
		off += 8
	}
	nv := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) != off+2*nv {
		return fmt.Errorf("comm: sparse-f16 payload length %d, want %d", len(buf), off+2*nv)
	}
	out := Sparse{Ranges: ranges, Values: sizeF32(s.Values, nv)}
	getF16Bulk(out.Values, buf[off:])
	if err := out.Validate(); err != nil {
		return err
	}
	*s = out
	return nil
}

// DecodeDenseAny parses a dense payload at either precision.
func DecodeDenseAny(buf []byte) ([]float32, error) {
	return DecodeDenseAnyInto(nil, buf)
}

// DecodeDenseAnyInto parses a dense payload at either precision into dst
// (reused when its capacity suffices, reallocated otherwise).
func DecodeDenseAnyInto(dst []float32, buf []byte) ([]float32, error) {
	if len(buf) > 0 && buf[0] == magicDenseF16 {
		return decodeDenseF16Into(dst, buf)
	}
	return DecodeDenseInto(dst, buf)
}

// DecodeSparseAny parses a sparse payload at either precision.
func DecodeSparseAny(buf []byte) (*Sparse, error) {
	s := &Sparse{}
	if err := DecodeSparseAnyInto(s, buf); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeSparseAnyInto parses a sparse payload at either precision into s,
// reusing its buffers as DecodeSparseInto does.
func DecodeSparseAnyInto(s *Sparse, buf []byte) error {
	if len(buf) > 0 && buf[0] == magicSparseF16 {
		return decodeSparseF16Into(s, buf)
	}
	return DecodeSparseInto(s, buf)
}
