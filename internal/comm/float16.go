package comm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Half-precision payloads: IEEE 754 binary16 encodings of the dense and
// sparse payloads, halving wire volume at ~3 decimal digits of
// precision. Federated averaging is robust to this quantization; the
// fl.Config.HalfPrecision switch enables it end to end. This is an
// extension beyond the paper (which ships float32), composable with
// salient selection.

const (
	magicDenseF16  = 0x68 // 'h'
	magicSparseF16 = 0x73 // 's'
)

// Float32ToF16 converts to IEEE 754 binary16 (round-to-nearest-even),
// with overflow clamping to ±Inf and subnormal flushing.
func Float32ToF16(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xFF) - 127 + 15
	mant := bits & 0x7FFFFF

	switch {
	case int32(bits>>23&0xFF) == 0xFF: // Inf/NaN
		if mant != 0 {
			return sign | 0x7E00 // NaN
		}
		return sign | 0x7C00 // Inf
	case exp >= 0x1F: // overflow → Inf
		return sign | 0x7C00
	case exp <= 0:
		// Subnormal or underflow.
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		// Round to nearest.
		if mant>>(shift-1)&1 != 0 {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		// Round to nearest even on the dropped bits.
		if mant&0x1FFF > 0x1000 || (mant&0x1FFF == 0x1000 && half&1 == 1) {
			half++
		}
		return half
	}
}

// F16ToFloat32 converts an IEEE 754 binary16 value to float32.
func F16ToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1F)
	mant := uint32(h & 0x3FF)
	switch {
	case exp == 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3FF
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case exp == 0x1F:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7FC00000)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}

// EncodeDenseF16 serializes a flat vector at half precision.
func EncodeDenseF16(values []float32) []byte {
	buf := make([]byte, 1+4+2*len(values))
	buf[0] = magicDenseF16
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(values)))
	for i, v := range values {
		binary.LittleEndian.PutUint16(buf[5+2*i:], Float32ToF16(v))
	}
	return buf
}

// decodeDenseF16 parses an EncodeDenseF16 payload.
func decodeDenseF16(buf []byte) ([]float32, error) {
	if len(buf) < 5 || buf[0] != magicDenseF16 {
		return nil, fmt.Errorf("comm: not a dense-f16 payload")
	}
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	if len(buf) != 5+2*n {
		return nil, fmt.Errorf("comm: dense-f16 payload length %d, want %d", len(buf), 5+2*n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = F16ToFloat32(binary.LittleEndian.Uint16(buf[5+2*i:]))
	}
	return out, nil
}

// EncodeSparseF16 serializes a sparse payload with half-precision values
// (index ranges stay 32-bit).
func EncodeSparseF16(s *Sparse) []byte {
	buf := make([]byte, 1+4+8*len(s.Ranges)+4+2*len(s.Values))
	buf[0] = magicSparseF16
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(s.Ranges)))
	off := 5
	for _, r := range s.Ranges {
		binary.LittleEndian.PutUint32(buf[off:], r.Start)
		binary.LittleEndian.PutUint32(buf[off+4:], r.Len)
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(s.Values)))
	off += 4
	for _, v := range s.Values {
		binary.LittleEndian.PutUint16(buf[off:], Float32ToF16(v))
		off += 2
	}
	return buf
}

// decodeSparseF16 parses an EncodeSparseF16 payload.
func decodeSparseF16(buf []byte) (*Sparse, error) {
	if len(buf) < 5 || buf[0] != magicSparseF16 {
		return nil, fmt.Errorf("comm: not a sparse-f16 payload")
	}
	nr := int(binary.LittleEndian.Uint32(buf[1:5]))
	off := 5
	if len(buf) < off+8*nr+4 {
		return nil, fmt.Errorf("comm: sparse-f16 payload truncated in ranges")
	}
	s := &Sparse{Ranges: make([]Range, nr)}
	for i := range s.Ranges {
		s.Ranges[i] = Range{
			Start: binary.LittleEndian.Uint32(buf[off:]),
			Len:   binary.LittleEndian.Uint32(buf[off+4:]),
		}
		off += 8
	}
	nv := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) != off+2*nv {
		return nil, fmt.Errorf("comm: sparse-f16 payload length %d, want %d", len(buf), off+2*nv)
	}
	s.Values = make([]float32, nv)
	for i := range s.Values {
		s.Values[i] = F16ToFloat32(binary.LittleEndian.Uint16(buf[off+2*i:]))
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeDenseAny parses a dense payload at either precision.
func DecodeDenseAny(buf []byte) ([]float32, error) {
	if len(buf) > 0 && buf[0] == magicDenseF16 {
		return decodeDenseF16(buf)
	}
	return DecodeDense(buf)
}

// DecodeSparseAny parses a sparse payload at either precision.
func DecodeSparseAny(buf []byte) (*Sparse, error) {
	if len(buf) > 0 && buf[0] == magicSparseF16 {
		return decodeSparseF16(buf)
	}
	return DecodeSparse(buf)
}
