package comm

import (
	"math/bits"
	"sync"
)

// Payload buffer pools. A federated round serializes and deserializes one
// model-sized payload per client per direction; without recycling that is
// O(clients × model) garbage per round. GetBuf/PutBuf (bytes, for encoded
// payloads) and GetF32/PutF32 (float32, for decoded state vectors) recycle
// those buffers through power-of-two size classes backed by sync.Pool —
// the same design as tensor's scratch pool, duplicated here so comm stays
// dependency-free.
//
// Ownership rules match tensor's scratch pool: a buffer obtained from
// GetBuf/GetF32 is exclusively owned by the caller until the matching Put;
// it must not be retained or aliased afterwards. Contents are unspecified
// at Get; callers that accumulate must zero first. Putting a buffer the
// caller allocated itself is also fine — the pool only looks at capacity.

// poolMinBits is the smallest pooled size class (64 elements); tinier
// buffers are too cheap to track.
const poolMinBits = 6

var (
	bytePools [32]sync.Pool
	f32Pools  [32]sync.Pool

	byteHeaderPool = sync.Pool{New: func() any { return new([]byte) }}
	f32HeaderPool  = sync.Pool{New: func() any { return new([]float32) }}
)

// sizeClass returns ceil(log2(n)) clamped to the pooled range, or -1 when
// n is too large to pool.
func sizeClass(n int) int {
	c := bits.Len(uint(n - 1))
	if c < poolMinBits {
		c = poolMinBits
	}
	if c >= len(bytePools) {
		return -1
	}
	return c
}

// GetBuf returns a byte buffer of length n with unspecified contents,
// drawn from the payload pool when possible. Pair with PutBuf.
func GetBuf(n int) []byte {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if c < 0 {
		return make([]byte, n)
	}
	if h, _ := bytePools[c].Get().(*[]byte); h != nil {
		b := (*h)[:n]
		*h = nil
		byteHeaderPool.Put(h)
		return b
	}
	return make([]byte, n, 1<<c)
}

// PutBuf returns a buffer obtained from GetBuf (or any byte slice the
// caller owns outright) to the pool. The caller must not touch the slice
// afterwards.
func PutBuf(b []byte) {
	cp := cap(b)
	if cp < 1<<poolMinBits {
		return
	}
	c := bits.Len(uint(cp)) - 1 // floor(log2(cap))
	if c >= len(bytePools) {
		return
	}
	h := byteHeaderPool.Get().(*[]byte)
	*h = b[:cp]
	bytePools[c].Put(h)
}

// GetF32 returns a float32 buffer of length n with unspecified contents,
// drawn from the payload pool when possible. Pair with PutF32.
func GetF32(n int) []float32 {
	if n <= 0 {
		return nil
	}
	c := sizeClass(n)
	if c < 0 {
		return make([]float32, n)
	}
	if h, _ := f32Pools[c].Get().(*[]float32); h != nil {
		s := (*h)[:n]
		*h = nil
		f32HeaderPool.Put(h)
		return s
	}
	return make([]float32, n, 1<<c)
}

// PutF32 returns a buffer obtained from GetF32 (or any float32 slice the
// caller owns outright) to the pool. The caller must not touch the slice
// afterwards.
func PutF32(s []float32) {
	cp := cap(s)
	if cp < 1<<poolMinBits {
		return
	}
	c := bits.Len(uint(cp)) - 1
	if c >= len(f32Pools) {
		return
	}
	h := f32HeaderPool.Get().(*[]float32)
	*h = s[:cp]
	f32Pools[c].Put(h)
}

// PutSparse releases a Sparse whose Values buffer came from GetF32 (as
// DecodeSparseInto produces). Ranges usually alias the decoded payload's
// backing array and are not pooled.
func PutSparse(s *Sparse) {
	if s == nil {
		return
	}
	PutF32(s.Values)
	s.Values = nil
}
