package comm

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSparseValsBulkMatchesRef demands bitwise identity between the bulk
// and reference values-only codecs at both precisions and every tail
// length.
func TestSparseValsBulkMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range codecLens {
		v := randVals(rng, n)
		ref := RefEncodeSparseVals(v)
		if got := EncodeSparseVals(v); !bytes.Equal(got, ref) {
			t.Fatalf("n=%d: bulk EncodeSparseVals differs from reference", n)
		}
		want, err := RefDecodeSparseVals(ref)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeSparseVals(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bitwiseEqual(got, want) {
			t.Fatalf("n=%d: bulk DecodeSparseVals differs from reference", n)
		}

		ref16 := RefEncodeSparseValsF16(v)
		if got := EncodeSparseValsF16(v); !bytes.Equal(got, ref16) {
			t.Fatalf("n=%d: bulk EncodeSparseValsF16 differs from reference", n)
		}
		want16, err := RefDecodeSparseValsF16(ref16)
		if err != nil {
			t.Fatal(err)
		}
		got16, err := DecodeSparseValsAny(ref16)
		if err != nil {
			t.Fatal(err)
		}
		if !bitwiseEqual(got16, want16) {
			t.Fatalf("n=%d: bulk f16 values-only decode differs from reference", n)
		}
	}
}

// TestSparseValsRejectsOtherFrames: a values-only decoder must reject
// every other frame kind (and vice versa) — the magic byte is the only
// thing distinguishing a values-only frame from a dense one.
func TestSparseValsRejectsOtherFrames(t *testing.T) {
	v := []float32{1, 2, 3}
	if _, err := DecodeSparseValsAny(EncodeDense(v)); err == nil {
		t.Fatal("values-only decoder accepted a dense frame")
	}
	if _, err := DecodeDenseAny(EncodeSparseVals(v)); err == nil {
		t.Fatal("dense decoder accepted a values-only frame")
	}
	s := &Sparse{Ranges: []Range{{0, 3}}, Values: v}
	if _, err := DecodeSparseValsAny(EncodeSparse(s)); err == nil {
		t.Fatal("values-only decoder accepted a full sparse frame")
	}
	if _, err := DecodeSparseValsAny(nil); err == nil {
		t.Fatal("values-only decoder accepted an empty frame")
	}
	if _, err := DecodeSparseValsAny([]byte{magicSparseVals, 9, 0, 0, 0, 1}); err == nil {
		t.Fatal("values-only decoder accepted a truncated frame")
	}
}

// TestScatterCopyGatherRoundTrip: gather then scatter-copy must restore
// exactly the covered runs and nothing else.
func TestScatterCopyGatherRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	state := randVals(rng, 64)
	ranges := []Range{{2, 5}, {10, 1}, {30, 20}}
	var s Sparse
	GatherSparseInto(&s, state, ranges)

	dst := make([]float32, 64)
	for i := range dst {
		dst[i] = -99
	}
	if !ScatterCopy(dst, s.Values, ranges) {
		t.Fatal("ScatterCopy rejected a matching payload")
	}
	covered := make([]bool, 64)
	for _, r := range ranges {
		for i := r.Start; i < r.Start+r.Len; i++ {
			covered[i] = true
		}
	}
	for i := range dst {
		if covered[i] && dst[i] != state[i] {
			t.Fatalf("index %d: scatter-copied %v, want %v", i, dst[i], state[i])
		}
		if !covered[i] && dst[i] != -99 {
			t.Fatalf("index %d: ScatterCopy touched an uncovered index", i)
		}
	}
	if ScatterCopy(dst, s.Values[:len(s.Values)-1], ranges) {
		t.Fatal("ScatterCopy accepted a short value vector")
	}
}

// TestComplementRanges checks the complement partition: complement runs
// plus selection runs must tile [0, n) exactly.
func TestComplementRanges(t *testing.T) {
	cases := []struct {
		ranges []Range
		n      int
		want   []Range
	}{
		{nil, 10, []Range{{0, 10}}},
		{[]Range{{0, 10}}, 10, nil},
		{[]Range{{0, 3}, {7, 3}}, 10, []Range{{3, 4}}},
		{[]Range{{2, 5}}, 10, []Range{{0, 2}, {7, 3}}},
		{[]Range{{0, 1}, {2, 1}, {4, 1}}, 5, []Range{{1, 1}, {3, 1}}},
	}
	for ci, c := range cases {
		got := ComplementRanges(c.ranges, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: got %v, want %v", ci, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("case %d: got %v, want %v", ci, got, c.want)
			}
		}
	}
	// Randomized tiling property.
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(200)
		s := randSparse(rng, rng.Intn(n))
		last := 0
		if len(s.Ranges) > 0 {
			r := s.Ranges[len(s.Ranges)-1]
			last = int(r.Start + r.Len)
		}
		if last > n {
			n = last
		}
		comp := ComplementRanges(s.Ranges, n)
		covered := make([]int, n)
		for _, r := range s.Ranges {
			for i := r.Start; i < r.Start+r.Len; i++ {
				covered[i]++
			}
		}
		for _, r := range comp {
			for i := r.Start; i < r.Start+r.Len; i++ {
				covered[i]++
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("iter %d: index %d covered %d times", iter, i, c)
			}
		}
	}
}

// TestZeroRanges zeroes exactly the covered runs.
func TestZeroRanges(t *testing.T) {
	dst := []float32{1, 2, 3, 4, 5, 6}
	ZeroRanges(dst, []Range{{1, 2}, {5, 1}})
	want := []float32{1, 0, 0, 4, 5, 0}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("got %v, want %v", dst, want)
		}
	}
}
