package comm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Reference codecs: the original one-word-at-a-time serializers retained
// as the ground truth the bulk codecs in comm.go / float16.go are
// verified against (see codec_ref_test.go). The wire format is defined
// by these functions; the bulk codecs must produce bitwise-identical
// bytes and decode to bitwise-identical values.

// RefEncodeDense serializes a flat float32 vector one word at a time.
func RefEncodeDense(values []float32) []byte {
	buf := make([]byte, 1+4+4*len(values))
	buf[0] = magicDense
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(values)))
	for i, v := range values {
		binary.LittleEndian.PutUint32(buf[5+4*i:], math.Float32bits(v))
	}
	return buf
}

// RefDecodeDense parses a dense payload one word at a time.
func RefDecodeDense(buf []byte) ([]float32, error) {
	if len(buf) < 5 || buf[0] != magicDense {
		return nil, fmt.Errorf("comm: not a dense payload")
	}
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	if len(buf) != 5+4*n {
		return nil, fmt.Errorf("comm: dense payload length %d, want %d", len(buf), 5+4*n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[5+4*i:]))
	}
	return out, nil
}

// RefEncodeSparse serializes a sparse payload one word at a time.
func RefEncodeSparse(s *Sparse) []byte {
	buf := make([]byte, 1+4+8*len(s.Ranges)+4+4*len(s.Values))
	buf[0] = magicSparse
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(s.Ranges)))
	off := 5
	for _, r := range s.Ranges {
		binary.LittleEndian.PutUint32(buf[off:], r.Start)
		binary.LittleEndian.PutUint32(buf[off+4:], r.Len)
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(s.Values)))
	off += 4
	for _, v := range s.Values {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	return buf
}

// RefDecodeSparse parses a sparse payload one word at a time.
func RefDecodeSparse(buf []byte) (*Sparse, error) {
	if len(buf) < 5 || buf[0] != magicSparse {
		return nil, fmt.Errorf("comm: not a sparse payload")
	}
	nr := int(binary.LittleEndian.Uint32(buf[1:5]))
	off := 5
	if len(buf) < off+8*nr+4 {
		return nil, fmt.Errorf("comm: sparse payload truncated in ranges")
	}
	s := &Sparse{Ranges: make([]Range, nr)}
	for i := range s.Ranges {
		s.Ranges[i] = Range{
			Start: binary.LittleEndian.Uint32(buf[off:]),
			Len:   binary.LittleEndian.Uint32(buf[off+4:]),
		}
		off += 8
	}
	nv := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) != off+4*nv {
		return nil, fmt.Errorf("comm: sparse payload length %d, want %d", len(buf), off+4*nv)
	}
	s.Values = make([]float32, nv)
	for i := range s.Values {
		s.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4*i:]))
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// RefEncodeSparseVals serializes a values-only sparse frame one word at
// a time.
func RefEncodeSparseVals(values []float32) []byte {
	buf := make([]byte, 1+4+4*len(values))
	buf[0] = magicSparseVals
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(values)))
	for i, v := range values {
		binary.LittleEndian.PutUint32(buf[5+4*i:], math.Float32bits(v))
	}
	return buf
}

// RefDecodeSparseVals parses a values-only frame one word at a time.
func RefDecodeSparseVals(buf []byte) ([]float32, error) {
	if len(buf) < 5 || buf[0] != magicSparseVals {
		return nil, fmt.Errorf("comm: not a sparse-values payload")
	}
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	if len(buf) != 5+4*n {
		return nil, fmt.Errorf("comm: sparse-values payload length %d, want %d", len(buf), 5+4*n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[5+4*i:]))
	}
	return out, nil
}

// RefEncodeSparseValsF16 serializes a half-precision values-only frame
// one value at a time.
func RefEncodeSparseValsF16(values []float32) []byte {
	buf := make([]byte, 1+4+2*len(values))
	buf[0] = magicSparseValsF16
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(values)))
	for i, v := range values {
		binary.LittleEndian.PutUint16(buf[5+2*i:], Float32ToF16(v))
	}
	return buf
}

// RefDecodeSparseValsF16 parses a half-precision values-only frame one
// value at a time.
func RefDecodeSparseValsF16(buf []byte) ([]float32, error) {
	if len(buf) < 5 || buf[0] != magicSparseValsF16 {
		return nil, fmt.Errorf("comm: not a sparse-values-f16 payload")
	}
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	if len(buf) != 5+2*n {
		return nil, fmt.Errorf("comm: sparse-values-f16 payload length %d, want %d", len(buf), 5+2*n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = F16ToFloat32(binary.LittleEndian.Uint16(buf[5+2*i:]))
	}
	return out, nil
}

// RefEncodeDenseF16 serializes a flat vector at half precision one value
// at a time.
func RefEncodeDenseF16(values []float32) []byte {
	buf := make([]byte, 1+4+2*len(values))
	buf[0] = magicDenseF16
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(values)))
	for i, v := range values {
		binary.LittleEndian.PutUint16(buf[5+2*i:], Float32ToF16(v))
	}
	return buf
}

// RefDecodeDenseF16 parses a dense-f16 payload one value at a time.
func RefDecodeDenseF16(buf []byte) ([]float32, error) {
	if len(buf) < 5 || buf[0] != magicDenseF16 {
		return nil, fmt.Errorf("comm: not a dense-f16 payload")
	}
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	if len(buf) != 5+2*n {
		return nil, fmt.Errorf("comm: dense-f16 payload length %d, want %d", len(buf), 5+2*n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = F16ToFloat32(binary.LittleEndian.Uint16(buf[5+2*i:]))
	}
	return out, nil
}

// RefEncodeSparseF16 serializes a sparse payload at half precision one
// value at a time.
func RefEncodeSparseF16(s *Sparse) []byte {
	buf := make([]byte, 1+4+8*len(s.Ranges)+4+2*len(s.Values))
	buf[0] = magicSparseF16
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(s.Ranges)))
	off := 5
	for _, r := range s.Ranges {
		binary.LittleEndian.PutUint32(buf[off:], r.Start)
		binary.LittleEndian.PutUint32(buf[off+4:], r.Len)
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(s.Values)))
	off += 4
	for _, v := range s.Values {
		binary.LittleEndian.PutUint16(buf[off:], Float32ToF16(v))
		off += 2
	}
	return buf
}

// RefDecodeSparseF16 parses a sparse-f16 payload one value at a time.
func RefDecodeSparseF16(buf []byte) (*Sparse, error) {
	if len(buf) < 5 || buf[0] != magicSparseF16 {
		return nil, fmt.Errorf("comm: not a sparse-f16 payload")
	}
	nr := int(binary.LittleEndian.Uint32(buf[1:5]))
	off := 5
	if len(buf) < off+8*nr+4 {
		return nil, fmt.Errorf("comm: sparse-f16 payload truncated in ranges")
	}
	s := &Sparse{Ranges: make([]Range, nr)}
	for i := range s.Ranges {
		s.Ranges[i] = Range{
			Start: binary.LittleEndian.Uint32(buf[off:]),
			Len:   binary.LittleEndian.Uint32(buf[off+4:]),
		}
		off += 8
	}
	nv := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) != off+2*nv {
		return nil, fmt.Errorf("comm: sparse-f16 payload length %d, want %d", len(buf), off+2*nv)
	}
	s.Values = make([]float32, nv)
	for i := range s.Values {
		s.Values[i] = F16ToFloat32(binary.LittleEndian.Uint16(buf[off+2*i:]))
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
