// Package comm implements the wire format and cost accounting for
// federated-learning communication. Every payload that would cross the
// network in a real deployment is actually serialized here, so the byte
// counts reported by the experiment harness are exact, not modeled:
// dense payloads carry float32 weights; sparse payloads carry the
// salient-parameter values plus their index ranges (SPATL §IV-C1,
// "negligible burdens").
//
// Following the paper's accounting (§V-C, eq. 13), the headline
// communication cost is the per-round uplink (client → server) volume;
// the Meter tracks both directions so downlink can be reported too.
package comm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// magic bytes distinguish payload kinds on the wire.
const (
	magicDense  = 0x44 // 'D'
	magicSparse = 0x53 // 'S'
)

// EncodeDense serializes a flat float32 vector: 1-byte tag, uint32
// length, then little-endian float32 values.
func EncodeDense(values []float32) []byte {
	buf := make([]byte, 1+4+4*len(values))
	buf[0] = magicDense
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(values)))
	for i, v := range values {
		binary.LittleEndian.PutUint32(buf[5+4*i:], math.Float32bits(v))
	}
	return buf
}

// DecodeDense parses a payload produced by EncodeDense.
func DecodeDense(buf []byte) ([]float32, error) {
	if len(buf) < 5 || buf[0] != magicDense {
		return nil, fmt.Errorf("comm: not a dense payload")
	}
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	if len(buf) != 5+4*n {
		return nil, fmt.Errorf("comm: dense payload length %d, want %d", len(buf), 5+4*n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[5+4*i:]))
	}
	return out, nil
}

// Range is a contiguous index run [Start, Start+Len) into a flat state
// vector. Salient-parameter selection operates at filter granularity, so
// selected indices naturally form a small number of runs; shipping runs
// instead of individual indices keeps the index overhead negligible.
type Range struct {
	Start, Len uint32
}

// Sparse is a sparse state-delta payload: values laid out run by run.
type Sparse struct {
	Ranges []Range
	Values []float32
}

// Count returns the total number of indexed elements.
func (s *Sparse) Count() int {
	n := 0
	for _, r := range s.Ranges {
		n += int(r.Len)
	}
	return n
}

// Validate checks internal consistency: values length matches ranges, no
// zero-length or overlapping runs (runs must be sorted by Start).
func (s *Sparse) Validate() error {
	if s.Count() != len(s.Values) {
		return fmt.Errorf("comm: sparse payload has %d values for %d indexed elements", len(s.Values), s.Count())
	}
	prevEnd := uint32(0)
	for i, r := range s.Ranges {
		if r.Len == 0 {
			return fmt.Errorf("comm: zero-length range at %d", i)
		}
		if i > 0 && r.Start < prevEnd {
			return fmt.Errorf("comm: ranges overlap or are unsorted at %d", i)
		}
		prevEnd = r.Start + r.Len
	}
	return nil
}

// EncodeSparse serializes a sparse payload: tag, uint32 range count,
// (start,len) pairs, uint32 value count, float32 values.
func EncodeSparse(s *Sparse) []byte {
	buf := make([]byte, 1+4+8*len(s.Ranges)+4+4*len(s.Values))
	buf[0] = magicSparse
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(s.Ranges)))
	off := 5
	for _, r := range s.Ranges {
		binary.LittleEndian.PutUint32(buf[off:], r.Start)
		binary.LittleEndian.PutUint32(buf[off+4:], r.Len)
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(s.Values)))
	off += 4
	for _, v := range s.Values {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(v))
		off += 4
	}
	return buf
}

// DecodeSparse parses a payload produced by EncodeSparse.
func DecodeSparse(buf []byte) (*Sparse, error) {
	if len(buf) < 5 || buf[0] != magicSparse {
		return nil, fmt.Errorf("comm: not a sparse payload")
	}
	nr := int(binary.LittleEndian.Uint32(buf[1:5]))
	off := 5
	if len(buf) < off+8*nr+4 {
		return nil, fmt.Errorf("comm: sparse payload truncated in ranges")
	}
	s := &Sparse{Ranges: make([]Range, nr)}
	for i := range s.Ranges {
		s.Ranges[i] = Range{
			Start: binary.LittleEndian.Uint32(buf[off:]),
			Len:   binary.LittleEndian.Uint32(buf[off+4:]),
		}
		off += 8
	}
	nv := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) != off+4*nv {
		return nil, fmt.Errorf("comm: sparse payload length %d, want %d", len(buf), off+4*nv)
	}
	s.Values = make([]float32, nv)
	for i := range s.Values {
		s.Values[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4*i:]))
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// GatherSparse extracts the elements of state covered by ranges into a
// sparse payload.
func GatherSparse(state []float32, ranges []Range) *Sparse {
	s := &Sparse{Ranges: ranges}
	n := 0
	for _, r := range ranges {
		n += int(r.Len)
	}
	s.Values = make([]float32, 0, n)
	for _, r := range ranges {
		s.Values = append(s.Values, state[r.Start:r.Start+r.Len]...)
	}
	return s
}

// ScatterAdd adds each sparse value into dst at its index, and increments
// count at every touched index. The server uses this to implement
// per-index averaged salient aggregation (SPATL eq. 12).
func ScatterAdd(dst []float32, count []int32, s *Sparse) {
	off := 0
	for _, r := range s.Ranges {
		for i := uint32(0); i < r.Len; i++ {
			dst[r.Start+i] += s.Values[off]
			if count != nil {
				count[r.Start+i]++
			}
			off++
		}
	}
}

// Meter accumulates communication volume. It is safe for concurrent use
// by parallel client updates.
type Meter struct {
	mu   sync.Mutex
	up   int64
	down int64
}

// AddUp records client→server bytes.
func (m *Meter) AddUp(n int) {
	m.mu.Lock()
	m.up += int64(n)
	m.mu.Unlock()
}

// AddDown records server→client bytes.
func (m *Meter) AddDown(n int) {
	m.mu.Lock()
	m.down += int64(n)
	m.mu.Unlock()
}

// Up returns total client→server bytes.
func (m *Meter) Up() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.up
}

// Down returns total server→client bytes.
func (m *Meter) Down() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

// Reset zeroes both counters.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.up, m.down = 0, 0
	m.mu.Unlock()
}

// MB formats a byte count as mebibytes.
func MB(n int64) float64 { return float64(n) / (1024 * 1024) }

// GB formats a byte count as gibibytes.
func GB(n int64) float64 { return float64(n) / (1024 * 1024 * 1024) }
