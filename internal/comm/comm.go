// Package comm implements the wire format and cost accounting for
// federated-learning communication. Every payload that would cross the
// network in a real deployment is actually serialized here, so the byte
// counts reported by the experiment harness are exact, not modeled:
// dense payloads carry float32 weights; sparse payloads carry the
// salient-parameter values plus their index ranges (SPATL §IV-C1,
// "negligible burdens").
//
// Following the paper's accounting (§V-C, eq. 13), the headline
// communication cost is the per-round uplink (client → server) volume;
// the Meter tracks both directions so downlink can be reported too.
//
// The codecs come in two speeds: the scalar reference implementations in
// ref.go define the format, and the bulk implementations here process
// eight float32s per loop pass, packing value pairs into single 64-bit
// little-endian words. Bulk and reference codecs are bitwise-equivalence
// tested against each other. Every codec has an *Into variant that
// reuses a caller-supplied buffer (typically from the payload pool in
// bufpool.go), so steady-state rounds serialize with no allocation.
package comm

import (
	"encoding/binary"
	"fmt"
	"math"

	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// magic bytes distinguish payload kinds on the wire.
const (
	magicDense  = 0x44 // 'D'
	magicSparse = 0x53 // 'S'
)

// DenseLen returns the encoded size of an n-element dense float32
// payload — useful for pre-sizing pooled buffers.
func DenseLen(n int) int { return 1 + 4 + 4*n }

// putF32Bulk stores vals little-endian into dst (len(dst) ≥ 4*len(vals)),
// eight values per pass, two packed per 64-bit store.
func putF32Bulk(dst []byte, vals []float32) {
	for len(vals) >= 8 {
		d := dst[:32]
		binary.LittleEndian.PutUint64(d[0:8], uint64(math.Float32bits(vals[0]))|uint64(math.Float32bits(vals[1]))<<32)
		binary.LittleEndian.PutUint64(d[8:16], uint64(math.Float32bits(vals[2]))|uint64(math.Float32bits(vals[3]))<<32)
		binary.LittleEndian.PutUint64(d[16:24], uint64(math.Float32bits(vals[4]))|uint64(math.Float32bits(vals[5]))<<32)
		binary.LittleEndian.PutUint64(d[24:32], uint64(math.Float32bits(vals[6]))|uint64(math.Float32bits(vals[7]))<<32)
		dst = dst[32:]
		vals = vals[8:]
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(v))
	}
}

// getF32Bulk loads len(out) little-endian float32s from src, eight per
// pass, two unpacked per 64-bit load.
func getF32Bulk(out []float32, src []byte) {
	for len(out) >= 8 {
		s := src[:32]
		u0 := binary.LittleEndian.Uint64(s[0:8])
		u1 := binary.LittleEndian.Uint64(s[8:16])
		u2 := binary.LittleEndian.Uint64(s[16:24])
		u3 := binary.LittleEndian.Uint64(s[24:32])
		out[0] = math.Float32frombits(uint32(u0))
		out[1] = math.Float32frombits(uint32(u0 >> 32))
		out[2] = math.Float32frombits(uint32(u1))
		out[3] = math.Float32frombits(uint32(u1 >> 32))
		out[4] = math.Float32frombits(uint32(u2))
		out[5] = math.Float32frombits(uint32(u2 >> 32))
		out[6] = math.Float32frombits(uint32(u3))
		out[7] = math.Float32frombits(uint32(u3 >> 32))
		out = out[8:]
		src = src[32:]
	}
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// sizeBytes returns dst resized to length n, reusing its backing array
// when the capacity suffices.
func sizeBytes(dst []byte, n int) []byte {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]byte, n)
}

// sizeF32 returns dst resized to length n, reusing its backing array
// when the capacity suffices.
func sizeF32(dst []float32, n int) []float32 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]float32, n)
}

// EncodeDense serializes a flat float32 vector: 1-byte tag, uint32
// length, then little-endian float32 values.
func EncodeDense(values []float32) []byte {
	return EncodeDenseInto(nil, values)
}

// EncodeDenseInto is EncodeDense writing into dst (reused when its
// capacity suffices, reallocated otherwise). Returns the encoded slice.
func EncodeDenseInto(dst []byte, values []float32) []byte {
	buf := sizeBytes(dst, DenseLen(len(values)))
	buf[0] = magicDense
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(values)))
	putF32Bulk(buf[5:], values)
	return buf
}

// DecodeDense parses a payload produced by EncodeDense.
func DecodeDense(buf []byte) ([]float32, error) {
	return DecodeDenseInto(nil, buf)
}

// DecodeDenseInto is DecodeDense writing into dst (reused when its
// capacity suffices, reallocated otherwise). Returns the decoded slice.
func DecodeDenseInto(dst []float32, buf []byte) ([]float32, error) {
	if len(buf) < 5 || buf[0] != magicDense {
		return nil, fmt.Errorf("comm: not a dense payload")
	}
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	if len(buf) != 5+4*n {
		return nil, fmt.Errorf("comm: dense payload length %d, want %d", len(buf), 5+4*n)
	}
	out := sizeF32(dst, n)
	getF32Bulk(out, buf[5:])
	return out, nil
}

// PatchDensePayload overwrites element i of an encoded float32 dense
// payload in place — the cheap way to derive many distinct valid
// payloads from one template (massive-scale simulation). It is a no-op
// on payloads that are not plain dense or do not contain index i.
func PatchDensePayload(buf []byte, i int, v float32) {
	if len(buf) < 5 || buf[0] != magicDense || i < 0 {
		return
	}
	off := 5 + 4*i
	if off+4 > len(buf) {
		return
	}
	binary.LittleEndian.PutUint32(buf[off:off+4], math.Float32bits(v))
}

// Range is a contiguous index run [Start, Start+Len) into a flat state
// vector. Salient-parameter selection operates at filter granularity, so
// selected indices naturally form a small number of runs; shipping runs
// instead of individual indices keeps the index overhead negligible.
type Range struct {
	Start, Len uint32
}

// Sparse is a sparse state-delta payload: values laid out run by run.
type Sparse struct {
	Ranges []Range
	Values []float32
}

// Count returns the total number of indexed elements.
func (s *Sparse) Count() int {
	n := 0
	for _, r := range s.Ranges {
		n += int(r.Len)
	}
	return n
}

// EncodedLen returns the size of the payload EncodeSparse produces.
func (s *Sparse) EncodedLen() int {
	return 1 + 4 + 8*len(s.Ranges) + 4 + 4*len(s.Values)
}

// Validate checks internal consistency: values length matches ranges, no
// zero-length or overlapping runs (runs must be sorted by Start).
func (s *Sparse) Validate() error {
	if s.Count() != len(s.Values) {
		return fmt.Errorf("comm: sparse payload has %d values for %d indexed elements", len(s.Values), s.Count())
	}
	prevEnd := uint32(0)
	for i, r := range s.Ranges {
		if r.Len == 0 {
			return fmt.Errorf("comm: zero-length range at %d", i)
		}
		if i > 0 && r.Start < prevEnd {
			return fmt.Errorf("comm: ranges overlap or are unsorted at %d", i)
		}
		prevEnd = r.Start + r.Len
	}
	return nil
}

// EncodeSparse serializes a sparse payload: tag, uint32 range count,
// (start,len) pairs, uint32 value count, float32 values.
func EncodeSparse(s *Sparse) []byte {
	return EncodeSparseInto(nil, s)
}

// EncodeSparseInto is EncodeSparse writing into dst (reused when its
// capacity suffices, reallocated otherwise). Returns the encoded slice.
func EncodeSparseInto(dst []byte, s *Sparse) []byte {
	buf := sizeBytes(dst, s.EncodedLen())
	buf[0] = magicSparse
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(s.Ranges)))
	off := 5
	for _, r := range s.Ranges {
		binary.LittleEndian.PutUint64(buf[off:off+8], uint64(r.Start)|uint64(r.Len)<<32)
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(s.Values)))
	off += 4
	putF32Bulk(buf[off:], s.Values)
	return buf
}

// DecodeSparse parses a payload produced by EncodeSparse.
func DecodeSparse(buf []byte) (*Sparse, error) {
	s := &Sparse{}
	if err := DecodeSparseInto(s, buf); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeSparseInto is DecodeSparse decoding into s, reusing s.Ranges and
// s.Values when their capacities suffice. On error the fields of s keep
// their prior lengths (though backing contents may have been scribbled),
// so the buffers remain reusable.
func DecodeSparseInto(s *Sparse, buf []byte) error {
	if len(buf) < 5 || buf[0] != magicSparse {
		return fmt.Errorf("comm: not a sparse payload")
	}
	nr := int(binary.LittleEndian.Uint32(buf[1:5]))
	off := 5
	if len(buf) < off+8*nr+4 {
		return fmt.Errorf("comm: sparse payload truncated in ranges")
	}
	ranges := s.Ranges[:0]
	if cap(ranges) < nr {
		ranges = make([]Range, 0, nr)
	}
	for i := 0; i < nr; i++ {
		u := binary.LittleEndian.Uint64(buf[off : off+8])
		ranges = append(ranges, Range{Start: uint32(u), Len: uint32(u >> 32)})
		off += 8
	}
	nv := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) != off+4*nv {
		return fmt.Errorf("comm: sparse payload length %d, want %d", len(buf), off+4*nv)
	}
	out := Sparse{Ranges: ranges, Values: sizeF32(s.Values, nv)}
	getF32Bulk(out.Values, buf[off:])
	if err := out.Validate(); err != nil {
		return err
	}
	*s = out
	return nil
}

// GatherSparse extracts the elements of state covered by ranges into a
// sparse payload.
func GatherSparse(state []float32, ranges []Range) *Sparse {
	s := &Sparse{Ranges: ranges}
	s.Values = gatherValues(nil, state, ranges)
	return s
}

// GatherSparseInto is GatherSparse reusing s.Values when its capacity
// suffices. s.Ranges aliases ranges.
func GatherSparseInto(s *Sparse, state []float32, ranges []Range) {
	s.Ranges = ranges
	s.Values = gatherValues(s.Values, state, ranges)
}

// gatherValues copies the covered runs of state into dst, run by run.
func gatherValues(dst, state []float32, ranges []Range) []float32 {
	n := 0
	for _, r := range ranges {
		n += int(r.Len)
	}
	dst = sizeF32(dst, n)
	off := 0
	for _, r := range ranges {
		off += copy(dst[off:], state[r.Start:r.Start+r.Len])
	}
	return dst
}

// ScatterAdd adds each sparse value into dst at its index, and — when
// count is non-nil — increments count at every touched index. The server
// uses this to implement per-index averaged salient aggregation (SPATL
// eq. 12).
func ScatterAdd(dst []float32, count []int32, s *Sparse) {
	off := 0
	if count == nil {
		for _, r := range s.Ranges {
			n := int(r.Len)
			scatterSpan(dst[r.Start:int(r.Start)+n], s.Values[off:off+n])
			off += n
		}
		return
	}
	for _, r := range s.Ranges {
		n := int(r.Len)
		d := dst[r.Start : int(r.Start)+n]
		c := count[r.Start : int(r.Start)+n]
		v := s.Values[off : off+n]
		// One fused pass: salient runs are typically a few dozen indices,
		// where a second sweep for the counts costs more than it saves.
		for i := range d {
			d[i] += v[i]
			c[i]++
		}
		off += n
	}
}

// scatterSpanMin is the run length below which a sparse span is added with
// a plain loop: the vector kernel's call overhead outweighs its throughput
// on the short runs salient-parameter payloads are made of. Elementwise
// adds have no accumulation order, so the cutoff never changes a result.
const scatterSpanMin = 64

func scatterSpan(d, v []float32) {
	if len(d) >= scatterSpanMin {
		tensor.VecAdd(d, v)
		return
	}
	for i, x := range v {
		d[i] += x
	}
}

// ScatterAddRange is ScatterAdd restricted to destination indices in
// [lo, hi). Ranges must be sorted by Start (as Validate enforces). The
// parallel server reduction shards the parameter dimension into disjoint
// [lo, hi) chunks and replays every client's payload per chunk, so each
// index still accumulates clients in a fixed order.
func ScatterAddRange(dst []float32, count []int32, s *Sparse, lo, hi int) {
	off := 0
	for _, r := range s.Ranges {
		rs, re := int(r.Start), int(r.Start)+int(r.Len)
		if rs >= hi {
			return
		}
		if re > lo {
			cs, ce := rs, re
			if cs < lo {
				cs = lo
			}
			if ce > hi {
				ce = hi
			}
			if count == nil {
				scatterSpan(dst[cs:ce], s.Values[off+(cs-rs):off+(ce-rs)])
			} else {
				d := dst[cs:ce]
				c := count[cs:ce]
				v := s.Values[off+(cs-rs) : off+(ce-rs)]
				for i := range d {
					d[i] += v[i]
					c[i]++
				}
			}
		}
		off += int(r.Len)
	}
}

// ScatterAddScaledRange adds scale·value into dst at each sparse index
// within [lo, hi) — the sharded form of the server's control-variate
// update (eq. 11), which scales every client delta by 1/N.
func ScatterAddScaledRange(dst []float32, s *Sparse, scale float32, lo, hi int) {
	off := 0
	for _, r := range s.Ranges {
		rs, re := int(r.Start), int(r.Start)+int(r.Len)
		if rs >= hi {
			return
		}
		if re > lo {
			cs, ce := rs, re
			if cs < lo {
				cs = lo
			}
			if ce > hi {
				ce = hi
			}
			d := dst[cs:ce]
			v := s.Values[off+(cs-rs) : off+(ce-rs)]
			if len(d) >= scatterSpanMin {
				tensor.VecAxpy(d, v, scale)
			} else {
				// Same separate multiply-then-add chain as VecAxpy.
				for i, x := range v {
					d[i] += scale * x
				}
			}
		}
		off += int(r.Len)
	}
}

// Meter accumulates communication volume on lock-free atomic counters —
// it is hammered concurrently by every client inside a parallel round.
// The counters are telemetry.Counters, so Bind can expose them through
// a registry; the accessors below are thin wrappers over those same
// counters, keeping exactly one source of truth for traffic totals.
type Meter struct {
	up   telemetry.Counter
	down telemetry.Counter

	// Relay counters attribute the extra hop of a two-level aggregation
	// tree: pooled shard payloads moving edge→root (relay up) and
	// broadcasts moving root→edge (relay down). Client-facing traffic
	// stays in up/down — identical whichever topology carried it — so
	// cross-transport byte accounting keeps matching; the relay pair is
	// the tree's own overhead, reported separately.
	relayUp   telemetry.Counter
	relayDown telemetry.Counter
}

// Bind registers the meter's counters in reg as "<prefix>.up_bytes",
// "<prefix>.down_bytes", "<prefix>.relay_up_bytes" and
// "<prefix>.relay_down_bytes". The registry reads the very counters the
// meter increments — no copies, no second accounting path.
func (m *Meter) Bind(reg *telemetry.Registry, prefix string) {
	reg.Attach(prefix+".up_bytes", &m.up)
	reg.Attach(prefix+".down_bytes", &m.down)
	reg.Attach(prefix+".relay_up_bytes", &m.relayUp)
	reg.Attach(prefix+".relay_down_bytes", &m.relayDown)
}

// AddUp records client→server bytes.
func (m *Meter) AddUp(n int) { m.up.Add(int64(n)) }

// AddDown records server→client bytes.
func (m *Meter) AddDown(n int) { m.down.Add(int64(n)) }

// AddRelayUp records edge→root pooled shard bytes.
func (m *Meter) AddRelayUp(n int) { m.relayUp.Add(int64(n)) }

// AddRelayDown records root→edge broadcast bytes.
func (m *Meter) AddRelayDown(n int) { m.relayDown.Add(int64(n)) }

// Up returns total client→server bytes.
func (m *Meter) Up() int64 { return m.up.Value() }

// Down returns total server→client bytes.
func (m *Meter) Down() int64 { return m.down.Value() }

// RelayUp returns total edge→root pooled shard bytes.
func (m *Meter) RelayUp() int64 { return m.relayUp.Value() }

// RelayDown returns total root→edge broadcast bytes.
func (m *Meter) RelayDown() int64 { return m.relayDown.Value() }

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.up.Reset()
	m.down.Reset()
	m.relayUp.Reset()
	m.relayDown.Reset()
}

// MB formats a byte count as mebibytes.
func MB(n int64) float64 { return float64(n) / (1024 * 1024) }

// GB formats a byte count as gibibytes.
func GB(n int64) float64 { return float64(n) / (1024 * 1024 * 1024) }
