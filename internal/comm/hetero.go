package comm

import (
	"encoding/binary"
	"fmt"
)

// Heterogeneous-federation frames (internal/hetero): a federation whose
// clients do not share a model shape needs two payloads the homogeneous
// codecs cannot express. The broadcast must carry one model per cluster
// plus the full assignment table (every client learns its own cluster
// and — at reassignment — its next one, from the same frame). The
// upload must carry the shape metadata the server validates against its
// own bookkeeping: which cluster the client trained under and which
// width slice its values cover. The slice's index ranges travel in the
// upload itself, EncodeSparse-style, so a decoded frame is
// self-describing and the fuzz harness can exercise slice-spec
// truncation without any out-of-band state.
//
// Both frames reuse the bulk float32 packers and the *Into buffer-reuse
// discipline of the other codecs; steady-state rounds serialize with no
// allocation.

const (
	magicHeteroBcast  = 0x47 // 'G'
	magicHeteroUpdate = 0x48 // 'H'
)

// HeteroBcast is the server→client frame of a clustered federation:
// the per-client cluster assignment table and one full-width model per
// cluster, cluster-major.
type HeteroBcast struct {
	Clusters int       // number of cluster models, 1..255
	Assign   []uint8   // per-client cluster, indexed by client ID
	StateLen int       // flat state length of one model
	Models   []float32 // Clusters×StateLen, cluster-major
}

// Model returns cluster k's flat state, aliasing the frame's backing
// array.
func (h *HeteroBcast) Model(k int) []float32 {
	return h.Models[k*h.StateLen : (k+1)*h.StateLen]
}

// Validate checks internal consistency: cluster count in range, models
// buffer exactly cluster-major, every assignment in range.
func (h *HeteroBcast) Validate() error {
	if h.Clusters < 1 || h.Clusters > 255 {
		return fmt.Errorf("comm: hetero broadcast has %d clusters, want 1..255", h.Clusters)
	}
	if len(h.Models) != h.Clusters*h.StateLen {
		return fmt.Errorf("comm: hetero broadcast has %d model values for %d clusters × state %d", len(h.Models), h.Clusters, h.StateLen)
	}
	for i, c := range h.Assign {
		if int(c) >= h.Clusters {
			return fmt.Errorf("comm: client %d assigned to cluster %d of %d", i, c, h.Clusters)
		}
	}
	return nil
}

// HeteroBcastLen returns the encoded size of a k-cluster, n-client
// broadcast over stateLen-element models — useful for pre-sizing pooled
// buffers.
func HeteroBcastLen(k, n, stateLen int) int {
	return 1 + 1 + 4 + n + 4 + 4*k*stateLen
}

// EncodedLen returns the size of the payload EncodeHeteroBcast produces.
func (h *HeteroBcast) EncodedLen() int {
	return HeteroBcastLen(h.Clusters, len(h.Assign), h.StateLen)
}

// EncodeHeteroBcast serializes a cluster broadcast: tag, uint8 cluster
// count, uint32 client count, assignment bytes, uint32 state length,
// cluster-major float32 models.
func EncodeHeteroBcast(h *HeteroBcast) []byte {
	return EncodeHeteroBcastInto(nil, h)
}

// EncodeHeteroBcastInto is EncodeHeteroBcast writing into dst (reused
// when its capacity suffices, reallocated otherwise).
func EncodeHeteroBcastInto(dst []byte, h *HeteroBcast) []byte {
	buf := sizeBytes(dst, h.EncodedLen())
	buf[0] = magicHeteroBcast
	buf[1] = uint8(h.Clusters)
	binary.LittleEndian.PutUint32(buf[2:6], uint32(len(h.Assign)))
	off := 6 + copy(buf[6:], h.Assign)
	binary.LittleEndian.PutUint32(buf[off:], uint32(h.StateLen))
	off += 4
	putF32Bulk(buf[off:], h.Models)
	return buf
}

// DecodeHeteroBcast parses a payload produced by EncodeHeteroBcast.
func DecodeHeteroBcast(buf []byte) (*HeteroBcast, error) {
	h := &HeteroBcast{}
	if err := DecodeHeteroBcastInto(h, buf); err != nil {
		return nil, err
	}
	return h, nil
}

// DecodeHeteroBcastInto is DecodeHeteroBcast decoding into h, reusing
// h.Assign and h.Models when their capacities suffice. On error the
// fields of h keep their prior lengths (though backing contents may have
// been scribbled), so the buffers remain reusable.
func DecodeHeteroBcastInto(h *HeteroBcast, buf []byte) error {
	if len(buf) < 6 || buf[0] != magicHeteroBcast {
		return fmt.Errorf("comm: not a hetero broadcast payload")
	}
	k := int(buf[1])
	n := int(binary.LittleEndian.Uint32(buf[2:6]))
	off := 6
	if len(buf) < off+n+4 {
		return fmt.Errorf("comm: hetero broadcast truncated in assignment")
	}
	assign := sizeBytes(h.Assign, n)
	copy(assign, buf[off:off+n])
	off += n
	stateLen := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	nv := k * stateLen
	if len(buf) != off+4*nv {
		return fmt.Errorf("comm: hetero broadcast length %d, want %d", len(buf), off+4*nv)
	}
	out := HeteroBcast{Clusters: k, Assign: assign, StateLen: stateLen, Models: sizeF32(h.Models, nv)}
	getF32Bulk(out.Models, buf[off:])
	if err := out.Validate(); err != nil {
		return err
	}
	*h = out
	return nil
}

// HeteroUpdate is the client→server frame of a clustered federation: a
// sparse slice upload stamped with the cluster the client trained under
// and the width multiplier (in thousandths) its slice was derived from.
// The server validates both against its own assignment and width tables
// before folding; a mismatch means the client trained against a stale
// or corrupted broadcast and the upload is dropped.
type HeteroUpdate struct {
	Cluster    uint8
	WidthMilli uint16 // width multiplier ×1000 (250, 500, 1000, ...)
	Sparse            // the slice's index ranges + packed values
}

// HeteroUpdateLen returns the encoded size of an upload carrying
// nRanges index runs and nVals values — useful for pre-sizing pooled
// buffers.
func HeteroUpdateLen(nRanges, nVals int) int {
	return 1 + 1 + 2 + 4 + 8*nRanges + 4 + 4*nVals
}

// EncodedLen returns the size of the payload EncodeHeteroUpdate produces.
func (u *HeteroUpdate) EncodedLen() int {
	return HeteroUpdateLen(len(u.Ranges), len(u.Values))
}

// EncodeHeteroUpdate serializes a slice upload: tag, uint8 cluster,
// uint16 width-milli, then the EncodeSparse range/value layout (uint32
// range count, packed (start,len) pairs, uint32 value count, float32
// values).
func EncodeHeteroUpdate(u *HeteroUpdate) []byte {
	return EncodeHeteroUpdateInto(nil, u)
}

// EncodeHeteroUpdateInto is EncodeHeteroUpdate writing into dst (reused
// when its capacity suffices, reallocated otherwise).
func EncodeHeteroUpdateInto(dst []byte, u *HeteroUpdate) []byte {
	buf := sizeBytes(dst, u.EncodedLen())
	buf[0] = magicHeteroUpdate
	buf[1] = u.Cluster
	binary.LittleEndian.PutUint16(buf[2:4], u.WidthMilli)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(u.Ranges)))
	off := 8
	for _, r := range u.Ranges {
		binary.LittleEndian.PutUint64(buf[off:off+8], uint64(r.Start)|uint64(r.Len)<<32)
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(len(u.Values)))
	off += 4
	putF32Bulk(buf[off:], u.Values)
	return buf
}

// DecodeHeteroUpdate parses a payload produced by EncodeHeteroUpdate.
func DecodeHeteroUpdate(buf []byte) (*HeteroUpdate, error) {
	u := &HeteroUpdate{}
	if err := DecodeHeteroUpdateInto(u, buf); err != nil {
		return nil, err
	}
	return u, nil
}

// DecodeHeteroUpdateInto is DecodeHeteroUpdate decoding into u, reusing
// u.Ranges and u.Values when their capacities suffice. On error the
// fields of u keep their prior lengths (though backing contents may have
// been scribbled), so the buffers remain reusable.
func DecodeHeteroUpdateInto(u *HeteroUpdate, buf []byte) error {
	if len(buf) < 8 || buf[0] != magicHeteroUpdate {
		return fmt.Errorf("comm: not a hetero update payload")
	}
	cluster := buf[1]
	widthMilli := binary.LittleEndian.Uint16(buf[2:4])
	nr := int(binary.LittleEndian.Uint32(buf[4:8]))
	off := 8
	if len(buf) < off+8*nr+4 {
		return fmt.Errorf("comm: hetero update truncated in ranges")
	}
	ranges := u.Ranges[:0]
	if cap(ranges) < nr {
		ranges = make([]Range, 0, nr)
	}
	for i := 0; i < nr; i++ {
		w := binary.LittleEndian.Uint64(buf[off : off+8])
		ranges = append(ranges, Range{Start: uint32(w), Len: uint32(w >> 32)})
		off += 8
	}
	nv := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	if len(buf) != off+4*nv {
		return fmt.Errorf("comm: hetero update length %d, want %d", len(buf), off+4*nv)
	}
	out := HeteroUpdate{Cluster: cluster, WidthMilli: widthMilli, Sparse: Sparse{Ranges: ranges, Values: sizeF32(u.Values, nv)}}
	getF32Bulk(out.Values, buf[off:])
	if err := out.Validate(); err != nil {
		return err
	}
	*u = out
	return nil
}
