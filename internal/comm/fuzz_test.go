package comm

import (
	"bytes"
	"testing"
)

// FuzzDecodeDense ensures arbitrary byte input never panics and that
// valid encodings round-trip.
func FuzzDecodeDense(f *testing.F) {
	f.Add(EncodeDense([]float32{1, 2, 3}))
	f.Add([]byte{})
	f.Add([]byte{magicDense, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeDense(data)
		if err != nil {
			return
		}
		re := EncodeDense(vals)
		if !bytes.Equal(re, data) {
			t.Fatalf("valid dense payload did not round-trip")
		}
	})
}

// FuzzDecodeSparse ensures arbitrary byte input never panics and that
// accepted payloads validate. The corpus seeds the malformed shapes the
// mask-static wire path must survive: a frame truncated mid-index-block
// (range count promises more runs than the buffer holds) and a
// values-only frame arriving where a full sparse frame is expected.
func FuzzDecodeSparse(f *testing.F) {
	f.Add(EncodeSparse(&Sparse{Ranges: []Range{{0, 2}}, Values: []float32{1, 2}}))
	f.Add([]byte{magicSparse, 0, 0, 0, 0})
	// Truncated index block: claims 4 ranges, carries half of one.
	f.Add([]byte{magicSparse, 4, 0, 0, 0, 7, 0, 0, 0})
	f.Add(EncodeSparseVals([]float32{1, 2, 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSparse(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("decoded sparse payload fails validation: %v", err)
		}
	})
}

// FuzzDecodeHeteroBcast ensures arbitrary byte input never panics the
// cluster-broadcast decoder and that valid encodings round-trip. The
// corpus seeds the malformed shapes a hetero client must survive: a
// frame truncated inside the assignment table, a zero-cluster header,
// and an assignment pointing past the cluster count.
func FuzzDecodeHeteroBcast(f *testing.F) {
	f.Add(EncodeHeteroBcast(&HeteroBcast{
		Clusters: 2, Assign: []uint8{0, 1, 0}, StateLen: 2,
		Models: []float32{1, 2, 3, 4},
	}))
	f.Add([]byte{})
	// Truncated assignment: claims 8 clients, carries one byte.
	f.Add([]byte{magicHeteroBcast, 2, 8, 0, 0, 0, 1})
	// Zero clusters with a plausible tail.
	f.Add([]byte{magicHeteroBcast, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0})
	// Assignment out of range for the declared cluster count.
	f.Add([]byte{magicHeteroBcast, 1, 1, 0, 0, 0, 5, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeHeteroBcast(data)
		if err != nil {
			return
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("decoded hetero broadcast fails validation: %v", err)
		}
		if re := EncodeHeteroBcast(h); !bytes.Equal(re, data) {
			t.Fatalf("valid hetero broadcast did not round-trip")
		}
	})
}

// FuzzDecodeHeteroUpdate ensures arbitrary byte input never panics the
// slice-upload decoder and that accepted payloads validate. The corpus
// seeds the malformed shapes the hetero reduce path counts in
// Dropped(): a truncated slice spec (range count promises more runs
// than the buffer holds) and an unknown-width header over an otherwise
// well-formed frame — the decoder passes the latter through (width
// validation is the aggregator's job, against its own width table), so
// the seed documents that the frame layer alone cannot reject it.
func FuzzDecodeHeteroUpdate(f *testing.F) {
	f.Add(EncodeHeteroUpdate(&HeteroUpdate{
		Cluster: 1, WidthMilli: 500,
		Sparse: Sparse{Ranges: []Range{{0, 2}}, Values: []float32{1, 2}},
	}))
	f.Add([]byte{})
	// Truncated slice spec: claims 4 ranges, carries half of one.
	f.Add([]byte{magicHeteroUpdate, 0, 250, 0, 4, 0, 0, 0, 7, 0, 0, 0})
	// Unknown width (3000‰) on a structurally valid frame.
	f.Add(EncodeHeteroUpdate(&HeteroUpdate{
		Cluster: 0, WidthMilli: 3000,
		Sparse: Sparse{Ranges: []Range{{0, 1}}, Values: []float32{9}},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeHeteroUpdate(data)
		if err != nil {
			return
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("decoded hetero update fails validation: %v", err)
		}
		if re := EncodeHeteroUpdate(u); !bytes.Equal(re, data) {
			t.Fatalf("valid hetero update did not round-trip")
		}
	})
}

// FuzzDecodeSparseVals ensures arbitrary byte input never panics the
// values-only decoder and that valid f32 encodings round-trip.
func FuzzDecodeSparseVals(f *testing.F) {
	f.Add(EncodeSparseVals([]float32{1, 2, 3}))
	f.Add(EncodeSparseValsF16([]float32{1, 2, 3}))
	f.Add([]byte{magicSparseVals, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{magicSparseValsF16, 2, 0, 0, 0, 1})
	// A full sparse frame and a truncated index block must both be
	// rejected, never scribbled through.
	f.Add(EncodeSparse(&Sparse{Ranges: []Range{{0, 2}}, Values: []float32{1, 2}}))
	f.Add([]byte{magicSparse, 4, 0, 0, 0, 7, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeSparseValsAny(data)
		if err != nil {
			return
		}
		if len(data) > 0 && data[0] == magicSparseVals {
			if re := EncodeSparseVals(vals); !bytes.Equal(re, data) {
				t.Fatalf("valid values-only payload did not round-trip")
			}
		}
	})
}
