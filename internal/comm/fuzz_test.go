package comm

import (
	"bytes"
	"testing"
)

// FuzzDecodeDense ensures arbitrary byte input never panics and that
// valid encodings round-trip.
func FuzzDecodeDense(f *testing.F) {
	f.Add(EncodeDense([]float32{1, 2, 3}))
	f.Add([]byte{})
	f.Add([]byte{magicDense, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeDense(data)
		if err != nil {
			return
		}
		re := EncodeDense(vals)
		if !bytes.Equal(re, data) {
			t.Fatalf("valid dense payload did not round-trip")
		}
	})
}

// FuzzDecodeSparse ensures arbitrary byte input never panics and that
// accepted payloads validate. The corpus seeds the malformed shapes the
// mask-static wire path must survive: a frame truncated mid-index-block
// (range count promises more runs than the buffer holds) and a
// values-only frame arriving where a full sparse frame is expected.
func FuzzDecodeSparse(f *testing.F) {
	f.Add(EncodeSparse(&Sparse{Ranges: []Range{{0, 2}}, Values: []float32{1, 2}}))
	f.Add([]byte{magicSparse, 0, 0, 0, 0})
	// Truncated index block: claims 4 ranges, carries half of one.
	f.Add([]byte{magicSparse, 4, 0, 0, 0, 7, 0, 0, 0})
	f.Add(EncodeSparseVals([]float32{1, 2, 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSparse(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("decoded sparse payload fails validation: %v", err)
		}
	})
}

// FuzzDecodeSparseVals ensures arbitrary byte input never panics the
// values-only decoder and that valid f32 encodings round-trip.
func FuzzDecodeSparseVals(f *testing.F) {
	f.Add(EncodeSparseVals([]float32{1, 2, 3}))
	f.Add(EncodeSparseValsF16([]float32{1, 2, 3}))
	f.Add([]byte{magicSparseVals, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{magicSparseValsF16, 2, 0, 0, 0, 1})
	// A full sparse frame and a truncated index block must both be
	// rejected, never scribbled through.
	f.Add(EncodeSparse(&Sparse{Ranges: []Range{{0, 2}}, Values: []float32{1, 2}}))
	f.Add([]byte{magicSparse, 4, 0, 0, 0, 7, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeSparseValsAny(data)
		if err != nil {
			return
		}
		if len(data) > 0 && data[0] == magicSparseVals {
			if re := EncodeSparseVals(vals); !bytes.Equal(re, data) {
				t.Fatalf("valid values-only payload did not round-trip")
			}
		}
	})
}
