package comm

import (
	"bytes"
	"testing"
)

// FuzzDecodeDense ensures arbitrary byte input never panics and that
// valid encodings round-trip.
func FuzzDecodeDense(f *testing.F) {
	f.Add(EncodeDense([]float32{1, 2, 3}))
	f.Add([]byte{})
	f.Add([]byte{magicDense, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		vals, err := DecodeDense(data)
		if err != nil {
			return
		}
		re := EncodeDense(vals)
		if !bytes.Equal(re, data) {
			t.Fatalf("valid dense payload did not round-trip")
		}
	})
}

// FuzzDecodeSparse ensures arbitrary byte input never panics and that
// accepted payloads validate.
func FuzzDecodeSparse(f *testing.F) {
	f.Add(EncodeSparse(&Sparse{Ranges: []Range{{0, 2}}, Values: []float32{1, 2}}))
	f.Add([]byte{magicSparse, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSparse(data)
		if err != nil {
			return
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("decoded sparse payload fails validation: %v", err)
		}
	})
}
