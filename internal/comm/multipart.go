package comm

import (
	"encoding/binary"
	"fmt"
)

// Multi-part framing: algorithms often ship several payloads per message
// (model delta + control delta + step count). JoinPayloads concatenates
// them with uint32 length prefixes into one opaque blob; SplitPayloads
// reverses it. The framing lives here, next to the payload codecs,
// because it is part of the wire format — transports only move the
// joined bytes.

// JoinPayloads concatenates multiple byte payloads into one blob with
// uint32 length prefixes, so an algorithm can ship several comm payloads
// (e.g. model delta + control delta) per message.
func JoinPayloads(parts ...[]byte) []byte {
	return JoinPayloadsInto(nil, parts...)
}

// JoinPayloadsInto is JoinPayloads appending into dst[:0]'s backing
// array (grown when the capacity is insufficient), so aggregators and
// trainers can frame rounds into a reusable buffer.
func JoinPayloadsInto(dst []byte, parts ...[]byte) []byte {
	n := 0
	for _, p := range parts {
		n += 4 + len(p)
	}
	out := dst[:0]
	if cap(out) < n {
		out = make([]byte, 0, n)
	}
	var lenBuf [4]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(p)))
		out = append(out, lenBuf[:]...)
		out = append(out, p...)
	}
	return out
}

// SplitPayloads reverses JoinPayloads. The returned parts alias buf.
func SplitPayloads(buf []byte) ([][]byte, error) {
	var out [][]byte
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, fmt.Errorf("comm: truncated payload header")
		}
		n := binary.LittleEndian.Uint32(buf[:4])
		buf = buf[4:]
		if int(n) > len(buf) {
			return nil, fmt.Errorf("comm: payload part length %d exceeds remaining %d", n, len(buf))
		}
		out = append(out, buf[:n])
		buf = buf[n:]
	}
	return out, nil
}
