package comm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestF16KnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF}, // max finite half
		{float32(math.Inf(1)), 0x7C00},
		{float32(math.Inf(-1)), 0xFC00},
	}
	for _, c := range cases {
		if got := Float32ToF16(c.f); got != c.h {
			t.Fatalf("Float32ToF16(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		if back := F16ToFloat32(c.h); back != c.f {
			t.Fatalf("F16ToFloat32(%#04x) = %v, want %v", c.h, back, c.f)
		}
	}
}

func TestF16Overflow(t *testing.T) {
	if got := F16ToFloat32(Float32ToF16(1e10)); !math.IsInf(float64(got), 1) {
		t.Fatalf("1e10 should clamp to +Inf, got %v", got)
	}
	if got := F16ToFloat32(Float32ToF16(-1e10)); !math.IsInf(float64(got), -1) {
		t.Fatalf("-1e10 should clamp to -Inf, got %v", got)
	}
}

func TestF16NaN(t *testing.T) {
	nan := float32(math.NaN())
	got := F16ToFloat32(Float32ToF16(nan))
	if got == got { // NaN != NaN
		t.Fatalf("NaN did not survive: %v", got)
	}
}

// Property: f16 round trip error is within half-precision ULP for values
// in the training-relevant range.
func TestF16RoundTripPrecisionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			v := float32(rng.NormFloat64() * math.Pow(10, rng.Float64()*4-2))
			back := F16ToFloat32(Float32ToF16(v))
			// Relative error ≤ 2^-10 (one part in 1024) + tiny absolute
			// slack for subnormals.
			if math.Abs(float64(back-v)) > math.Abs(float64(v))/1024+1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: f16 round trip is idempotent — re-encoding a decoded value
// is exact.
func TestF16IdempotentProperty(t *testing.T) {
	f := func(h uint16) bool {
		v := F16ToFloat32(h)
		if v != v { // skip NaNs (payload equality undefined)
			return true
		}
		return F16ToFloat32(Float32ToF16(v)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDenseF16RoundTripAndSize(t *testing.T) {
	vals := []float32{0.5, -1.25, 3.0, 0}
	buf := EncodeDenseF16(vals)
	if len(buf) != 1+4+2*len(vals) {
		t.Fatalf("f16 payload size %d", len(buf))
	}
	full := EncodeDense(vals)
	if len(buf) >= len(full) {
		t.Fatal("f16 payload must be smaller than f32")
	}
	out, err := DecodeDenseAny(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if out[i] != vals[i] { // these values are exactly representable
			t.Fatalf("round trip mismatch at %d: %v vs %v", i, out[i], vals[i])
		}
	}
	// DecodeDenseAny must also still accept f32 payloads.
	out2, err := DecodeDenseAny(full)
	if err != nil || out2[1] != vals[1] {
		t.Fatal("DecodeDenseAny must accept f32 payloads")
	}
}

func TestSparseF16RoundTrip(t *testing.T) {
	s := &Sparse{Ranges: []Range{{Start: 1, Len: 2}}, Values: []float32{0.25, -2}}
	buf := EncodeSparseF16(s)
	out, err := DecodeSparseAny(buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ranges[0] != s.Ranges[0] {
		t.Fatal("ranges mismatch")
	}
	for i := range s.Values {
		if out.Values[i] != s.Values[i] {
			t.Fatal("values mismatch")
		}
	}
	if len(buf) >= len(EncodeSparse(s)) {
		t.Fatal("f16 sparse payload must be smaller")
	}
	// And f32 sparse still decodes through Any.
	if _, err := DecodeSparseAny(EncodeSparse(s)); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeF16RejectsGarbage(t *testing.T) {
	if _, err := decodeDenseF16Into(nil, []byte{magicDenseF16, 9, 0, 0, 0, 1}); err == nil {
		t.Fatal("expected error for truncated f16 dense")
	}
	if err := decodeSparseF16Into(&Sparse{}, []byte{magicSparseF16, 9, 0, 0, 0}); err == nil {
		t.Fatal("expected error for truncated f16 sparse")
	}
}
