package comm

import (
	"bytes"
	"testing"
)

func sampleBcast() *HeteroBcast {
	return &HeteroBcast{
		Clusters: 2,
		Assign:   []uint8{0, 1, 1, 0, 1},
		StateLen: 3,
		Models:   []float32{1, 2, 3, -4, 5.5, 0},
	}
}

func sampleUpdate() *HeteroUpdate {
	return &HeteroUpdate{
		Cluster:    1,
		WidthMilli: 500,
		Sparse: Sparse{
			Ranges: []Range{{0, 2}, {5, 3}},
			Values: []float32{1, -2, 3, 4.25, -5},
		},
	}
}

func TestHeteroBcastRoundTrip(t *testing.T) {
	h := sampleBcast()
	buf := EncodeHeteroBcast(h)
	if len(buf) != h.EncodedLen() {
		t.Fatalf("encoded length %d, want %d", len(buf), h.EncodedLen())
	}
	got, err := DecodeHeteroBcast(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Clusters != h.Clusters || got.StateLen != h.StateLen {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Assign, h.Assign) {
		t.Fatalf("assign mismatch: %v", got.Assign)
	}
	for i := range h.Models {
		if got.Models[i] != h.Models[i] {
			t.Fatalf("model value %d: %v != %v", i, got.Models[i], h.Models[i])
		}
	}
	if m := got.Model(1); m[0] != -4 || m[2] != 0 {
		t.Fatalf("Model(1) = %v", m)
	}
	// Into variant reuses capacity: decode a second frame into the same
	// struct and ensure no reallocation of the value buffer.
	prev := &got.Models[0]
	if err := DecodeHeteroBcastInto(got, buf); err != nil {
		t.Fatalf("re-decode: %v", err)
	}
	if &got.Models[0] != prev {
		t.Fatalf("DecodeHeteroBcastInto reallocated a sufficient buffer")
	}
}

func TestHeteroBcastRejects(t *testing.T) {
	h := sampleBcast()
	good := EncodeHeteroBcast(h)
	cases := map[string][]byte{
		"empty":            {},
		"wrong magic":      append([]byte{magicDense}, good[1:]...),
		"zero clusters":    func() []byte { b := append([]byte(nil), good...); b[1] = 0; return b }(),
		"assign oob":       func() []byte { b := append([]byte(nil), good...); b[6] = 9; return b }(),
		"truncated assign": good[:7],
		"truncated models": good[:len(good)-1],
	}
	for name, buf := range cases {
		if _, err := DecodeHeteroBcast(buf); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		}
	}
}

func TestHeteroUpdateRoundTrip(t *testing.T) {
	u := sampleUpdate()
	buf := EncodeHeteroUpdate(u)
	if len(buf) != u.EncodedLen() {
		t.Fatalf("encoded length %d, want %d", len(buf), u.EncodedLen())
	}
	got, err := DecodeHeteroUpdate(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Cluster != u.Cluster || got.WidthMilli != u.WidthMilli {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Ranges) != len(u.Ranges) || got.Ranges[1] != u.Ranges[1] {
		t.Fatalf("ranges mismatch: %v", got.Ranges)
	}
	for i := range u.Values {
		if got.Values[i] != u.Values[i] {
			t.Fatalf("value %d: %v != %v", i, got.Values[i], u.Values[i])
		}
	}
	if re := EncodeHeteroUpdate(got); !bytes.Equal(re, buf) {
		t.Fatalf("round-trip re-encode differs")
	}
}

func TestHeteroUpdateRejects(t *testing.T) {
	u := sampleUpdate()
	good := EncodeHeteroUpdate(u)
	overlap := &HeteroUpdate{Cluster: 0, WidthMilli: 1000, Sparse: Sparse{
		Ranges: []Range{{0, 4}, {2, 2}}, Values: []float32{1, 2, 3, 4, 5, 6},
	}}
	cases := map[string][]byte{
		"empty":            {},
		"wrong magic":      append([]byte{magicSparse}, good[1:]...),
		"truncated header": good[:6],
		"truncated ranges": good[:12],
		"truncated values": good[:len(good)-2],
		"overlapping runs": EncodeHeteroUpdate(overlap),
	}
	for name, buf := range cases {
		if _, err := DecodeHeteroUpdate(buf); err == nil {
			t.Errorf("%s: decode accepted malformed payload", name)
		}
	}
}

func TestHeteroKindOf(t *testing.T) {
	if k := KindOf(EncodeHeteroBcast(sampleBcast())); k != FrameHeteroBcast {
		t.Fatalf("broadcast kind = %v", k)
	}
	if k := KindOf(EncodeHeteroUpdate(sampleUpdate())); k != FrameHeteroUpdate {
		t.Fatalf("update kind = %v", k)
	}
	// Cross-kind rejection: each decoder refuses the other family.
	if err := DecodeHeteroBcastInto(&HeteroBcast{}, EncodeHeteroUpdate(sampleUpdate())); err == nil {
		t.Fatalf("broadcast decoder accepted an update frame")
	}
	if err := DecodeHeteroUpdateInto(&HeteroUpdate{}, EncodeHeteroBcast(sampleBcast())); err == nil {
		t.Fatalf("update decoder accepted a broadcast frame")
	}
}
