package comm_test

import (
	"fmt"

	"spatl/internal/comm"
)

// ExampleGatherSparse shows the salient-parameter round trip: gather the
// selected index ranges of a state vector, ship them, and scatter-add
// into the server's accumulator with per-index participation counts
// (SPATL eq. 12).
func ExampleGatherSparse() {
	state := []float32{10, 11, 12, 13, 14, 15}
	ranges := []comm.Range{{Start: 1, Len: 2}, {Start: 4, Len: 1}}

	payload := comm.EncodeSparse(comm.GatherSparse(state, ranges))
	fmt.Println("wire bytes:", len(payload), "vs dense:", len(comm.EncodeDense(state)))

	sparse, _ := comm.DecodeSparse(payload)
	sum := make([]float32, len(state))
	count := make([]int32, len(state))
	comm.ScatterAdd(sum, count, sparse)
	fmt.Println("sum:", sum)
	fmt.Println("count:", count)
	// Output:
	// wire bytes: 37 vs dense: 29
	// sum: [0 11 12 0 14 0]
	// count: [0 1 1 0 1 0]
}

// ExampleEncodeDenseF16 shows the half-precision wire format: half the
// bytes, values quantized to binary16.
func ExampleEncodeDenseF16() {
	vals := []float32{0.5, -1.25, 3}
	full := comm.EncodeDense(vals)
	half := comm.EncodeDenseF16(vals)
	fmt.Println("f32 bytes:", len(full), "f16 bytes:", len(half))
	back, _ := comm.DecodeDenseAny(half)
	fmt.Println("round trip:", back)
	// Output:
	// f32 bytes: 17 f16 bytes: 11
	// round trip: [0.5 -1.25 3]
}
