package comm

import (
	"math/rand"
	"sync"
	"testing"
)

// TestPoolSizes verifies Get returns the requested length with capacity
// preserved through a Put/Get cycle.
func TestPoolSizes(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 1000, 1 << 16} {
		b := GetBuf(n)
		if len(b) != n {
			t.Fatalf("GetBuf(%d) len %d", n, len(b))
		}
		PutBuf(b)
		f := GetF32(n)
		if len(f) != n {
			t.Fatalf("GetF32(%d) len %d", n, len(f))
		}
		PutF32(f)
	}
	if GetBuf(0) != nil || GetF32(-1) != nil {
		t.Fatal("non-positive sizes must return nil")
	}
}

// TestPoolHammer drives the payload pools from many goroutines under
// -race: each worker checks exclusive ownership by stamping its buffer
// and verifying the stamp survives until Put.
func TestPoolHammer(t *testing.T) {
	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				n := 1 + rng.Intn(4096)
				b := GetBuf(n)
				f := GetF32(n)
				stamp := byte(w + 1)
				b[0], b[n-1] = stamp, stamp
				f[0], f[n-1] = float32(w), float32(w)
				enc := EncodeDenseInto(GetBuf(DenseLen(n)), f)
				dec, err := DecodeDenseInto(GetF32(n), enc)
				if err != nil {
					t.Error(err)
					return
				}
				if b[0] != stamp || b[n-1] != stamp || f[0] != float32(w) || dec[n-1] != float32(w) {
					t.Errorf("worker %d: buffer ownership violated", w)
					return
				}
				PutBuf(enc)
				PutF32(dec)
				PutBuf(b)
				PutF32(f)
			}
		}(w)
	}
	wg.Wait()
}
