package comm

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestDenseRoundTrip(t *testing.T) {
	in := []float32{1.5, -2.25, 0, 3e-9, -1e9}
	buf := EncodeDense(in)
	if len(buf) != 1+4+4*len(in) {
		t.Fatalf("encoded length %d", len(buf))
	}
	out, err := DecodeDense(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestDenseRoundTripProperty(t *testing.T) {
	f := func(vals []float32) bool {
		out, err := DecodeDense(EncodeDense(vals))
		if err != nil || len(out) != len(vals) {
			return false
		}
		for i := range vals {
			// NaN compares unequal to itself; compare bit patterns via
			// re-encode instead.
			if vals[i] != out[i] && !(vals[i] != vals[i] && out[i] != out[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDenseRejectsGarbage(t *testing.T) {
	if _, err := DecodeDense([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected error for short buffer")
	}
	buf := EncodeDense([]float32{1, 2})
	buf[0] = 0xFF
	if _, err := DecodeDense(buf); err == nil {
		t.Fatal("expected error for wrong tag")
	}
	buf = EncodeDense([]float32{1, 2})
	if _, err := DecodeDense(buf[:len(buf)-1]); err == nil {
		t.Fatal("expected error for truncated buffer")
	}
}

func TestSparseRoundTrip(t *testing.T) {
	s := &Sparse{
		Ranges: []Range{{Start: 2, Len: 3}, {Start: 10, Len: 1}},
		Values: []float32{1, 2, 3, 4},
	}
	buf := EncodeSparse(s)
	out, err := DecodeSparse(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ranges) != 2 || out.Ranges[0] != s.Ranges[0] || out.Ranges[1] != s.Ranges[1] {
		t.Fatalf("ranges mismatch: %v", out.Ranges)
	}
	for i := range s.Values {
		if out.Values[i] != s.Values[i] {
			t.Fatalf("values mismatch at %d", i)
		}
	}
}

func TestSparseValidate(t *testing.T) {
	bad := &Sparse{Ranges: []Range{{0, 2}}, Values: []float32{1}}
	if bad.Validate() == nil {
		t.Fatal("expected count mismatch error")
	}
	bad = &Sparse{Ranges: []Range{{0, 0}}, Values: nil}
	if bad.Validate() == nil {
		t.Fatal("expected zero-length range error")
	}
	bad = &Sparse{Ranges: []Range{{5, 3}, {6, 2}}, Values: make([]float32, 5)}
	if bad.Validate() == nil {
		t.Fatal("expected overlap error")
	}
}

func TestGatherScatterInverse(t *testing.T) {
	state := make([]float32, 20)
	for i := range state {
		state[i] = float32(i)
	}
	ranges := []Range{{Start: 3, Len: 4}, {Start: 12, Len: 2}}
	s := GatherSparse(state, ranges)
	if s.Count() != 6 {
		t.Fatalf("count = %d", s.Count())
	}
	dst := make([]float32, 20)
	count := make([]int32, 20)
	ScatterAdd(dst, count, s)
	for _, r := range ranges {
		for i := r.Start; i < r.Start+r.Len; i++ {
			if dst[i] != state[i] {
				t.Fatalf("scatter mismatch at %d: %v vs %v", i, dst[i], state[i])
			}
			if count[i] != 1 {
				t.Fatalf("count at %d = %d", i, count[i])
			}
		}
	}
	// Untouched indices stay zero.
	if dst[0] != 0 || count[0] != 0 || dst[19] != 0 {
		t.Fatal("scatter touched indices outside ranges")
	}
}

func TestScatterAddAccumulates(t *testing.T) {
	dst := make([]float32, 5)
	count := make([]int32, 5)
	s := &Sparse{Ranges: []Range{{1, 2}}, Values: []float32{10, 20}}
	ScatterAdd(dst, count, s)
	ScatterAdd(dst, count, s)
	if dst[1] != 20 || dst[2] != 40 || count[1] != 2 {
		t.Fatalf("accumulation wrong: %v %v", dst, count)
	}
}

// Property: gather-then-scatter over random sorted non-overlapping
// ranges reproduces exactly the gathered elements.
func TestGatherScatterProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		state := make([]float32, n)
		for i := range state {
			state[i] = float32(rng.NormFloat64())
		}
		var ranges []Range
		pos := 0
		for pos < n-2 {
			pos += rng.Intn(5)
			l := 1 + rng.Intn(4)
			if pos+l > n {
				break
			}
			ranges = append(ranges, Range{Start: uint32(pos), Len: uint32(l)})
			pos += l
		}
		if len(ranges) == 0 {
			return true
		}
		s := GatherSparse(state, ranges)
		if s.Validate() != nil {
			return false
		}
		dec, err := DecodeSparse(EncodeSparse(s))
		if err != nil {
			return false
		}
		dst := make([]float32, n)
		ScatterAdd(dst, nil, dec)
		for _, r := range ranges {
			for i := r.Start; i < r.Start+r.Len; i++ {
				if dst[i] != state[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseSmallerThanDenseWhenSparse(t *testing.T) {
	n := 10000
	state := make([]float32, n)
	dense := EncodeDense(state)
	// 30% of elements in a handful of runs.
	s := GatherSparse(state, []Range{{0, 1000}, {4000, 1000}, {8000, 1000}})
	sparse := EncodeSparse(s)
	if len(sparse) >= len(dense)/2 {
		t.Fatalf("sparse %dB should be well under half of dense %dB", len(sparse), len(dense))
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.AddUp(10)
			m.AddDown(3)
		}()
	}
	wg.Wait()
	if m.Up() != 500 || m.Down() != 150 {
		t.Fatalf("meter got up=%d down=%d", m.Up(), m.Down())
	}
	m.Reset()
	if m.Up() != 0 || m.Down() != 0 {
		t.Fatal("reset failed")
	}
}

func TestByteFormatters(t *testing.T) {
	if MB(1024*1024) != 1 {
		t.Fatal("MB wrong")
	}
	if GB(1024*1024*1024) != 1 {
		t.Fatal("GB wrong")
	}
}
