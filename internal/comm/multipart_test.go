package comm

import (
	"bytes"
	"testing"
)

func TestJoinSplitPayloads(t *testing.T) {
	parts := [][]byte{[]byte("abc"), {}, []byte("xy")}
	joined := JoinPayloads(parts...)
	got, err := SplitPayloads(joined)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parts = %d", len(got))
	}
	for i := range parts {
		if !bytes.Equal(got[i], parts[i]) {
			t.Fatalf("part %d mismatch", i)
		}
	}
}

func TestJoinPayloadsIntoReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	out := JoinPayloadsInto(buf, []byte("hello"), []byte("world"))
	if &out[0] != &buf[:1][0] {
		t.Fatal("sufficient capacity must be reused")
	}
	parts, err := SplitPayloads(out)
	if err != nil || len(parts) != 2 {
		t.Fatalf("split: %v, %d parts", err, len(parts))
	}
}

// TestSplitPayloadsMalformedSweep drives the splitter through the
// hostile-input cases a network peer could produce.
func TestSplitPayloadsMalformedSweep(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
		ok   bool
		n    int // expected part count when ok
	}{
		{"empty buffer", nil, true, 0},
		{"single empty part", []byte{0, 0, 0, 0}, true, 1},
		{"two empty parts", []byte{0, 0, 0, 0, 0, 0, 0, 0}, true, 2},
		{"truncated header 1B", []byte{5}, false, 0},
		{"truncated header 3B", []byte{1, 2, 3}, false, 0},
		{"oversized part length", []byte{0xFF, 0, 0, 0, 1}, false, 0},
		{"huge length prefix", []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2}, false, 0},
		{"length one past end", []byte{3, 0, 0, 0, 1, 2}, false, 0},
		{"valid then truncated header", []byte{1, 0, 0, 0, 9, 7}, false, 0},
		{"valid then oversized", []byte{1, 0, 0, 0, 9, 4, 0, 0, 0, 1}, false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parts, err := SplitPayloads(tc.buf)
			if tc.ok {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if len(parts) != tc.n {
					t.Fatalf("parts = %d, want %d", len(parts), tc.n)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error, got %d parts", len(parts))
			}
		})
	}
}

func TestSplitPayloadsZeroLengthPartsRoundTrip(t *testing.T) {
	joined := JoinPayloads([]byte{}, []byte("mid"), []byte{})
	parts, err := SplitPayloads(joined)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 || len(parts[0]) != 0 || len(parts[2]) != 0 {
		t.Fatalf("zero-length parts must survive the round trip: %v", parts)
	}
	if string(parts[1]) != "mid" {
		t.Fatalf("middle part corrupted: %q", parts[1])
	}
}
