package comm

import (
	"encoding/binary"
	"fmt"
)

// Values-only sparse frames: once both ends of a mask-static federation
// (algo.SSFL) have agreed on the index ranges, re-shipping them every
// round is pure overhead — the ranges are decided once at mask agreement
// and never change until the federation ends. These frames carry only
// the packed masked values; the receiver supplies the ranges it already
// holds. A full EncodeSparse frame travels exactly once per direction
// (the round after agreement); every later round is values-only.
//
// As with the other codecs, the scalar reference implementations in
// ref.go define the format; the bulk implementations here are
// bitwise-equivalence tested against them.

const (
	magicSparseVals    = 0x56 // 'V'
	magicSparseValsF16 = 0x76 // 'v'
)

// FrameKind classifies a payload's frame family (either precision).
type FrameKind int

// Frame families, one per magic-byte pair (the hetero frames are
// single-precision only, so those two families are one magic each).
const (
	FrameUnknown FrameKind = iota
	FrameDense
	FrameSparse
	FrameSparseVals
	FrameHeteroBcast
	FrameHeteroUpdate
)

// KindOf sniffs a payload's frame family from its magic byte, so a
// protocol whose phases use different frame kinds (algo.SSFL) can
// dispatch without attempting decodes.
func KindOf(buf []byte) FrameKind {
	if len(buf) == 0 {
		return FrameUnknown
	}
	switch buf[0] {
	case magicDense, magicDenseF16:
		return FrameDense
	case magicSparse, magicSparseF16:
		return FrameSparse
	case magicSparseVals, magicSparseValsF16:
		return FrameSparseVals
	case magicHeteroBcast:
		return FrameHeteroBcast
	case magicHeteroUpdate:
		return FrameHeteroUpdate
	}
	return FrameUnknown
}

// SparseValsLen returns the encoded size of an n-value values-only frame
// — useful for pre-sizing pooled buffers.
func SparseValsLen(n int) int { return 1 + 4 + 4*n }

// SparseValsF16Len returns the encoded size of an n-value half-precision
// values-only frame.
func SparseValsF16Len(n int) int { return 1 + 4 + 2*n }

// EncodeSparseVals serializes a packed value vector: tag, uint32 count,
// little-endian float32 values. The index ranges are deliberately
// absent — the receiver must already hold them.
func EncodeSparseVals(values []float32) []byte {
	return EncodeSparseValsInto(nil, values)
}

// EncodeSparseValsInto is EncodeSparseVals writing into dst (reused when
// its capacity suffices, reallocated otherwise).
func EncodeSparseValsInto(dst []byte, values []float32) []byte {
	buf := sizeBytes(dst, SparseValsLen(len(values)))
	buf[0] = magicSparseVals
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(values)))
	putF32Bulk(buf[5:], values)
	return buf
}

// DecodeSparseVals parses a payload produced by EncodeSparseVals.
func DecodeSparseVals(buf []byte) ([]float32, error) {
	return DecodeSparseValsInto(nil, buf)
}

// DecodeSparseValsInto is DecodeSparseVals writing into dst (reused when
// its capacity suffices, reallocated otherwise).
func DecodeSparseValsInto(dst []float32, buf []byte) ([]float32, error) {
	if len(buf) < 5 || buf[0] != magicSparseVals {
		return nil, fmt.Errorf("comm: not a sparse-values payload")
	}
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	if len(buf) != 5+4*n {
		return nil, fmt.Errorf("comm: sparse-values payload length %d, want %d", len(buf), 5+4*n)
	}
	out := sizeF32(dst, n)
	getF32Bulk(out, buf[5:])
	return out, nil
}

// EncodeSparseValsF16 serializes a packed value vector at half precision.
func EncodeSparseValsF16(values []float32) []byte {
	return EncodeSparseValsF16Into(nil, values)
}

// EncodeSparseValsF16Into is EncodeSparseValsF16 writing into dst (reused
// when its capacity suffices, reallocated otherwise).
func EncodeSparseValsF16Into(dst []byte, values []float32) []byte {
	buf := sizeBytes(dst, SparseValsF16Len(len(values)))
	buf[0] = magicSparseValsF16
	binary.LittleEndian.PutUint32(buf[1:5], uint32(len(values)))
	putF16Bulk(buf[5:], values)
	return buf
}

// decodeSparseValsF16Into parses an EncodeSparseValsF16 payload into dst.
func decodeSparseValsF16Into(dst []float32, buf []byte) ([]float32, error) {
	if len(buf) < 5 || buf[0] != magicSparseValsF16 {
		return nil, fmt.Errorf("comm: not a sparse-values-f16 payload")
	}
	n := int(binary.LittleEndian.Uint32(buf[1:5]))
	if len(buf) != 5+2*n {
		return nil, fmt.Errorf("comm: sparse-values-f16 payload length %d, want %d", len(buf), 5+2*n)
	}
	out := sizeF32(dst, n)
	getF16Bulk(out, buf[5:])
	return out, nil
}

// DecodeSparseValsAny parses a values-only frame at either precision.
func DecodeSparseValsAny(buf []byte) ([]float32, error) {
	return DecodeSparseValsAnyInto(nil, buf)
}

// DecodeSparseValsAnyInto parses a values-only frame at either precision
// into dst (reused when its capacity suffices, reallocated otherwise).
func DecodeSparseValsAnyInto(dst []float32, buf []byte) ([]float32, error) {
	if len(buf) > 0 && buf[0] == magicSparseValsF16 {
		return decodeSparseValsF16Into(dst, buf)
	}
	return DecodeSparseValsInto(dst, buf)
}

// ScatterCopy overwrites the covered runs of dst with the packed values,
// run by run — the inverse of gatherValues. values must hold exactly as
// many elements as ranges index; a mismatch leaves dst untouched.
func ScatterCopy(dst []float32, values []float32, ranges []Range) bool {
	n := 0
	for _, r := range ranges {
		n += int(r.Len)
	}
	if n != len(values) {
		return false
	}
	off := 0
	for _, r := range ranges {
		off += copy(dst[r.Start:r.Start+r.Len], values[off:])
	}
	return true
}

// ComplementRanges returns the maximal runs of [0, n) NOT covered by
// ranges (which must be sorted, non-overlapping and within bounds, as
// Validate enforces). A mask-static client zeroes its local state over
// the complement so the model is exactly the agreed sub-network.
func ComplementRanges(ranges []Range, n int) []Range {
	out := make([]Range, 0, len(ranges)+1)
	next := uint32(0)
	for _, r := range ranges {
		if r.Start > next {
			out = append(out, Range{Start: next, Len: r.Start - next})
		}
		next = r.Start + r.Len
	}
	if int(next) < n {
		out = append(out, Range{Start: next, Len: uint32(n) - next})
	}
	return out
}

// ZeroRanges zeroes the covered runs of dst.
func ZeroRanges(dst []float32, ranges []Range) {
	for _, r := range ranges {
		run := dst[r.Start : r.Start+r.Len]
		for i := range run {
			run[i] = 0
		}
	}
}
