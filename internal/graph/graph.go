// Package graph converts a neural network into the simplified
// computational graph the SPATL salient-parameter agent consumes
// (§IV-B): nodes are hidden feature maps, edges are machine-learning
// operations (conv, batch-norm, ReLU, pooling, linear, residual add)
// rather than primitive arithmetic. Edge feature vectors summarize each
// operation's geometry, cost and current weight statistics; the GNN-based
// RL agent embeds the topology from them.
package graph

import (
	"math"

	"spatl/internal/models"
	"spatl/internal/nn"
)

// OpType enumerates the machine-learning operations that appear as graph
// edges.
type OpType int

// Edge operation kinds.
const (
	OpConv OpType = iota
	OpBatchNorm
	OpReLU
	OpMaxPool
	OpGlobalPool
	OpLinear
	OpAdd
	OpFlatten
	numOpTypes
)

var opNames = [...]string{"conv", "bn", "relu", "maxpool", "gap", "linear", "add", "flatten"}

// String returns the operation name.
func (o OpType) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// FeatureDim is the length of every edge feature vector.
const FeatureDim = int(numOpTypes) + 8

// Edge is one operation connecting two feature-map nodes.
type Edge struct {
	Src, Dst int
	Op       OpType
	// PrunableIdx is the index into the model's prunable-conv list when
	// this edge is a prunable convolution, else -1.
	PrunableIdx int

	// Geometry and statistics used to build the feature vector.
	InC, OutC  int
	Kernel     int
	Stride     int
	ParamCount int
	FLOPs      int64
	WeightL1   float64 // mean |w| of the operation's weights (0 if none)
}

// Graph is the simplified computational graph of one encoder.
type Graph struct {
	NumNodes    int
	Edges       []Edge
	NumPrunable int
}

// Features renders the edge's fixed-size feature vector: a one-hot
// operation type followed by normalized geometry and cost descriptors.
// All entries are kept roughly in [0, 1] so the GNN trains stably.
func (e *Edge) Features() []float32 {
	f := make([]float32, FeatureDim)
	f[int(e.Op)] = 1
	i := int(numOpTypes)
	f[i+0] = float32(math.Log1p(float64(e.ParamCount)) / 20)
	f[i+1] = float32(math.Log1p(float64(e.FLOPs)) / 30)
	f[i+2] = float32(float64(e.InC) / 512)
	f[i+3] = float32(float64(e.OutC) / 512)
	f[i+4] = float32(float64(e.Kernel) / 7)
	f[i+5] = float32(float64(e.Stride) / 2)
	if e.PrunableIdx >= 0 {
		f[i+6] = 1
	}
	f[i+7] = float32(math.Tanh(e.WeightL1 * 5))
	return f
}

// builder tracks node allocation while walking the model.
type builder struct {
	g        *Graph
	prunable map[*nn.Conv2D]int
}

func (b *builder) node() int {
	id := b.g.NumNodes
	b.g.NumNodes++
	return id
}

// FromEncoder extracts the computational graph of the model's encoder.
// Call after the model has run at least one forward pass so convolution
// geometry (and thus FLOPs) is populated; Describe() does this.
func FromEncoder(m *models.SplitModel) *Graph {
	m.Describe()
	b := &builder{g: &Graph{}, prunable: map[*nn.Conv2D]int{}}
	for i, c := range m.PrunableConvs() {
		b.prunable[c] = i
	}
	b.g.NumPrunable = len(b.prunable)
	in := b.node()
	b.walkSeq(m.Encoder, in)
	return b.g
}

// walkSeq threads the node chain through a sequential container and
// returns the output node.
func (b *builder) walkSeq(s *nn.Sequential, in int) int {
	cur := in
	for _, l := range s.Layers {
		cur = b.walkLayer(l, cur)
	}
	return cur
}

func (b *builder) walkLayer(l nn.Layer, in int) int {
	switch v := l.(type) {
	case *nn.Sequential:
		return b.walkSeq(v, in)
	case *nn.BasicBlock:
		return b.walkBlock(v, in)
	case *nn.Conv2D:
		out := b.node()
		b.g.Edges = append(b.g.Edges, b.convEdge(v, in, out))
		return out
	case *nn.BatchNorm2D:
		out := b.node()
		var l1 float64
		params := v.Params()
		n := 0
		for _, p := range params {
			l1 += p.W.AbsSum()
			n += p.W.Len()
		}
		if n > 0 {
			l1 /= float64(n)
		}
		b.g.Edges = append(b.g.Edges, Edge{
			Src: in, Dst: out, Op: OpBatchNorm, PrunableIdx: -1,
			InC: v.C, OutC: v.C, ParamCount: 2 * v.C, FLOPs: v.FLOPs(), WeightL1: l1,
		})
		return out
	case *nn.ReLU:
		out := b.node()
		b.g.Edges = append(b.g.Edges, Edge{Src: in, Dst: out, Op: OpReLU, PrunableIdx: -1, FLOPs: v.FLOPs()})
		return out
	case *nn.MaxPool2D:
		out := b.node()
		b.g.Edges = append(b.g.Edges, Edge{Src: in, Dst: out, Op: OpMaxPool, PrunableIdx: -1, Kernel: v.K, FLOPs: v.FLOPs()})
		return out
	case *nn.GlobalAvgPool:
		out := b.node()
		b.g.Edges = append(b.g.Edges, Edge{Src: in, Dst: out, Op: OpGlobalPool, PrunableIdx: -1, FLOPs: v.FLOPs()})
		return out
	case *nn.Flatten:
		out := b.node()
		b.g.Edges = append(b.g.Edges, Edge{Src: in, Dst: out, Op: OpFlatten, PrunableIdx: -1})
		return out
	case *nn.Linear:
		out := b.node()
		w := v.Weight()
		b.g.Edges = append(b.g.Edges, Edge{
			Src: in, Dst: out, Op: OpLinear, PrunableIdx: -1,
			InC: v.In, OutC: v.Out, ParamCount: nn.ParamCount(v.Params()),
			FLOPs: v.FLOPs(), WeightL1: w.W.AbsSum() / float64(w.W.Len()),
		})
		return out
	default:
		// Unknown layers pass through without an edge.
		return in
	}
}

// walkBlock expands a residual basic block: main path conv→bn→relu→
// conv→bn, shortcut (identity or conv→bn), and an explicit Add edge
// merging both into the output node.
func (b *builder) walkBlock(blk *nn.BasicBlock, in int) int {
	conv1, conv2, sc := blk.Convs()
	subs := blk.SubLayers()
	// Main path: conv1, bn1, relu1, conv2, bn2 (first five sublayers).
	cur := in
	for _, l := range subs[:5] {
		cur = b.walkLayer(l, cur)
	}
	// Shortcut path.
	short := in
	if sc != nil {
		for _, l := range subs[5:] {
			short = b.walkLayer(l, short)
		}
	}
	out := b.node()
	b.g.Edges = append(b.g.Edges,
		Edge{Src: cur, Dst: out, Op: OpAdd, PrunableIdx: -1, InC: conv2.OutC, OutC: conv2.OutC},
		Edge{Src: short, Dst: out, Op: OpAdd, PrunableIdx: -1, InC: conv1.InC, OutC: conv2.OutC},
	)
	return out
}

func (b *builder) convEdge(c *nn.Conv2D, in, out int) Edge {
	pi := -1
	if idx, ok := b.prunable[c]; ok {
		pi = idx
	}
	w := c.Weight()
	return Edge{
		Src: in, Dst: out, Op: OpConv, PrunableIdx: pi,
		InC: c.InC, OutC: c.OutC, Kernel: c.K, Stride: c.Stride,
		ParamCount: nn.ParamCount(c.Params()), FLOPs: c.FLOPs(),
		WeightL1: w.W.AbsSum() / float64(w.W.Len()),
	}
}

// PrunableEdges returns the edges that carry a prunable convolution, in
// prunable-index order.
func (g *Graph) PrunableEdges() []Edge {
	out := make([]Edge, g.NumPrunable)
	for _, e := range g.Edges {
		if e.PrunableIdx >= 0 {
			out[e.PrunableIdx] = e
		}
	}
	return out
}
