package graph

import (
	"testing"

	"spatl/internal/models"
)

func buildGraph(t *testing.T, arch string) (*models.SplitModel, *Graph) {
	t.Helper()
	spec := models.Spec{Arch: arch, Classes: 10, InC: 3, H: 16, W: 16, Width: 0.25}
	m := models.Build(spec, 1)
	return m, FromEncoder(m)
}

func TestResNet20GraphShape(t *testing.T) {
	m, g := buildGraph(t, "resnet20")
	if g.NumPrunable != len(m.PrunableConvs()) {
		t.Fatalf("prunable count %d, want %d", g.NumPrunable, len(m.PrunableConvs()))
	}
	if g.NumPrunable != 9 {
		t.Fatalf("resnet20 prunable = %d, want 9", g.NumPrunable)
	}
	// Every basic block contributes two Add edges.
	adds := 0
	for _, e := range g.Edges {
		if e.Op == OpAdd {
			adds++
		}
	}
	if adds != 18 {
		t.Fatalf("add edges = %d, want 18", adds)
	}
}

func TestVGGGraphIsChain(t *testing.T) {
	_, g := buildGraph(t, "vgg11")
	// A pure chain has NumNodes = len(Edges)+1 and no Add edges.
	for _, e := range g.Edges {
		if e.Op == OpAdd {
			t.Fatal("VGG graph must not contain residual adds")
		}
	}
	if g.NumNodes != len(g.Edges)+1 {
		t.Fatalf("vgg chain: %d nodes for %d edges", g.NumNodes, len(g.Edges))
	}
	if g.NumPrunable != 7 {
		t.Fatalf("vgg prunable = %d, want 7", g.NumPrunable)
	}
}

func TestEdgeEndpointsValid(t *testing.T) {
	for _, arch := range []string{"resnet20", "resnet18", "vgg11", "cnn2"} {
		_, g := buildGraph(t, arch)
		for _, e := range g.Edges {
			if e.Src < 0 || e.Src >= g.NumNodes || e.Dst < 0 || e.Dst >= g.NumNodes {
				t.Fatalf("%s: edge endpoints (%d,%d) outside [0,%d)", arch, e.Src, e.Dst, g.NumNodes)
			}
			if e.Src == e.Dst {
				t.Fatalf("%s: self-loop", arch)
			}
		}
	}
}

func TestConvEdgesCarryCost(t *testing.T) {
	_, g := buildGraph(t, "resnet20")
	for _, e := range g.Edges {
		if e.Op == OpConv {
			if e.FLOPs <= 0 || e.ParamCount <= 0 {
				t.Fatalf("conv edge missing cost: flops=%d params=%d", e.FLOPs, e.ParamCount)
			}
			if e.WeightL1 <= 0 {
				t.Fatal("conv edge missing weight statistics")
			}
		}
	}
}

func TestFeatureVectorShapeAndRange(t *testing.T) {
	_, g := buildGraph(t, "resnet20")
	for _, e := range g.Edges {
		f := e.Features()
		if len(f) != FeatureDim {
			t.Fatalf("feature dim %d, want %d", len(f), FeatureDim)
		}
		// Exactly one op-type slot set.
		ones := 0
		for i := 0; i < int(numOpTypes); i++ {
			if f[i] == 1 {
				ones++
			} else if f[i] != 0 {
				t.Fatal("one-hot slot must be 0 or 1")
			}
		}
		if ones != 1 {
			t.Fatalf("one-hot has %d active slots", ones)
		}
		for i, v := range f {
			if v < -1.01 || v > 1.5 {
				t.Fatalf("feature[%d] = %v outside sane range", i, v)
			}
		}
	}
}

func TestPrunableEdgesOrdered(t *testing.T) {
	_, g := buildGraph(t, "resnet20")
	pe := g.PrunableEdges()
	if len(pe) != g.NumPrunable {
		t.Fatalf("PrunableEdges length %d", len(pe))
	}
	for i, e := range pe {
		if e.PrunableIdx != i {
			t.Fatalf("prunable edge %d has index %d", i, e.PrunableIdx)
		}
		if e.Op != OpConv {
			t.Fatal("prunable edge must be a conv")
		}
	}
}

func TestGraphDiffersAcrossArchitectures(t *testing.T) {
	_, g20 := buildGraph(t, "resnet20")
	_, g32 := buildGraph(t, "resnet32")
	if g32.NumNodes <= g20.NumNodes || len(g32.Edges) <= len(g20.Edges) {
		t.Fatal("resnet32 graph must be larger than resnet20's")
	}
}

func TestOpTypeString(t *testing.T) {
	if OpConv.String() != "conv" || OpAdd.String() != "add" {
		t.Fatal("OpType names wrong")
	}
	if OpType(99).String() != "unknown" {
		t.Fatal("unknown OpType should say so")
	}
}

func TestEdgeFeaturesReflectWeights(t *testing.T) {
	// The graph is a *state*: edge features must change when the model's
	// weights change (the agent observes training progress).
	spec := models.Spec{Arch: "resnet20", Classes: 10, InC: 3, H: 16, W: 16, Width: 0.25}
	m := models.Build(spec, 1)
	g1 := FromEncoder(m)
	for _, p := range m.EncoderParams() {
		p.W.Scale(3)
	}
	g2 := FromEncoder(m)
	changed := false
	for i := range g1.Edges {
		if g1.Edges[i].Op == OpConv && g2.Edges[i].WeightL1 > g1.Edges[i].WeightL1*1.5 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("edge weight statistics did not respond to weight changes")
	}
}

func TestCNN2GraphShape(t *testing.T) {
	spec := models.Spec{Arch: "cnn2", Classes: 62, InC: 1, H: 28, W: 28, Width: 0.25}
	m := models.Build(spec, 1)
	g := FromEncoder(m)
	if g.NumPrunable != 1 {
		t.Fatalf("cnn2 prunable = %d, want 1", g.NumPrunable)
	}
	// The encoder's fc1 appears as a Linear edge with cost.
	hasLinear := false
	for _, e := range g.Edges {
		if e.Op == OpLinear {
			hasLinear = true
			if e.FLOPs <= 0 || e.ParamCount <= 0 {
				t.Fatal("linear edge missing cost")
			}
		}
	}
	if !hasLinear {
		t.Fatal("cnn2 graph missing linear edge")
	}
}
