// Package eval holds the transport- and algorithm-independent model
// evaluation helpers shared by the simulation framework (internal/fl)
// and the pruning environment (internal/prune). It sits below both so
// neither drags the other in.
package eval

import (
	"spatl/internal/data"
	"spatl/internal/models"
	"spatl/internal/nn"
)

// Accuracy computes top-1 accuracy of m on ds in evaluation mode,
// batching for throughput.
func Accuracy(m *models.SplitModel, ds *data.Dataset, batchSize int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	correct := 0
	for lo := 0; lo < ds.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, y := ds.Batch(idx)
		out := m.Forward(x, false)
		for i := 0; i < len(y); i++ {
			row := out.Data[i*out.Dim(1) : (i+1)*out.Dim(1)]
			best, bi := row[0], 0
			for j, v := range row[1:] {
				if v > best {
					best, bi = v, j+1
				}
			}
			if bi == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}

// Loss computes mean cross-entropy of m on ds in evaluation mode.
func Loss(m *models.SplitModel, ds *data.Dataset, batchSize int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	var total float64
	for lo := 0; lo < ds.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, y := ds.Batch(idx)
		out := m.Forward(x, false)
		loss, _ := nn.SoftmaxCrossEntropy(out, y)
		total += loss * float64(len(y))
	}
	return total / float64(ds.Len())
}
