package fl

import (
	"math"
	"math/rand"
	"testing"

	"spatl/internal/data"
	"spatl/internal/models"
	"spatl/internal/nn"
)

// testEnv builds a small but real FL environment: an MLP over the
// synthetic CIFAR task at 8×8, Dirichlet-partitioned across clients.
func testEnv(t testing.TB, numClients int, cfg Config) *Env {
	t.Helper()
	cfg.NumClients = numClients
	cfg = cfg.WithDefaults()
	spec := models.Spec{Arch: "mlp", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.5}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 4, H: 8, W: 8, Noise: 0.25}, numClients*80, 11, 12)
	parts := data.DirichletPartition(ds.Y, 4, numClients, 0.5, 10, rand.New(rand.NewSource(cfg.Seed+5)))
	var cd []ClientData
	for _, p := range parts {
		sub := ds.Subset(p)
		tr, va := sub.Split(0.8)
		cd = append(cd, ClientData{Train: tr, Val: va})
	}
	return NewEnv(spec, cfg, cd)
}

func quickCfg(seed int64) Config {
	return Config{
		SampleRatio: 1, LocalEpochs: 2, BatchSize: 16,
		LR: 0.05, Momentum: 0.9, Seed: seed,
	}
}

func TestSampleClientsSizeAndDeterminism(t *testing.T) {
	env := testEnv(t, 10, quickCfg(1))
	env.Cfg.SampleRatio = 0.4
	s1 := env.SampleClients()
	if len(s1) != 4 {
		t.Fatalf("sampled %d clients, want 4", len(s1))
	}
	for i := 1; i < len(s1); i++ {
		if s1[i] <= s1[i-1] {
			t.Fatal("selection must be sorted and unique")
		}
	}
	env2 := testEnv(t, 10, quickCfg(1))
	env2.Cfg.SampleRatio = 0.4
	s2 := env2.SampleClients()
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same seed must give same selection")
		}
	}
}

func TestSampleClientsAtLeastOne(t *testing.T) {
	env := testEnv(t, 3, quickCfg(2))
	env.Cfg.SampleRatio = 0.01
	if len(env.SampleClients()) != 1 {
		t.Fatal("must sample at least one client")
	}
}

func TestWeightedAverage(t *testing.T) {
	got := weightedAverage([][]float32{{1, 2}, {3, 6}}, []float64{1, 3})
	if math.Abs(float64(got[0])-2.5) > 1e-6 || math.Abs(float64(got[1])-5) > 1e-6 {
		t.Fatalf("weightedAverage = %v", got)
	}
}

func TestNewEnvClientsStartFromGlobal(t *testing.T) {
	env := testEnv(t, 3, quickCfg(3))
	g := env.Global.State(models.ScopeAll)
	for _, c := range env.Clients {
		s := c.Model.State(models.ScopeAll)
		for i := range g {
			if s[i] != g[i] {
				t.Fatal("client models must start at the global weights")
			}
		}
	}
}

func TestFedAvgLearnsAboveChance(t *testing.T) {
	env := testEnv(t, 4, quickCfg(4))
	res := Run(env, &FedAvg{}, RunOpts{Rounds: 6})
	if res.FinalAcc() < 0.45 {
		t.Fatalf("FedAvg accuracy %.3f after 6 rounds; want > 0.45 (chance 0.25)", res.FinalAcc())
	}
}

func TestFedProxLearnsAboveChance(t *testing.T) {
	env := testEnv(t, 4, quickCfg(5))
	res := Run(env, &FedProx{}, RunOpts{Rounds: 6})
	if res.FinalAcc() < 0.45 {
		t.Fatalf("FedProx accuracy %.3f", res.FinalAcc())
	}
}

func TestSCAFFOLDLearnsAboveChance(t *testing.T) {
	env := testEnv(t, 4, quickCfg(6))
	res := Run(env, &SCAFFOLD{}, RunOpts{Rounds: 8})
	// SCAFFOLD is the most fragile baseline (the paper reports it
	// diverging outright at larger scales); require clearly above chance
	// (0.25) rather than parity with FedAvg at this tiny scale.
	if res.BestAcc() < 0.32 {
		t.Fatalf("SCAFFOLD best accuracy %.3f, want > 0.32", res.BestAcc())
	}
}

func TestFedNovaLearnsAboveChance(t *testing.T) {
	env := testEnv(t, 4, quickCfg(7))
	res := Run(env, &FedNova{}, RunOpts{Rounds: 6})
	if res.FinalAcc() < 0.40 {
		t.Fatalf("FedNova accuracy %.3f", res.FinalAcc())
	}
}

func TestCommunicationCostRatios(t *testing.T) {
	// SCAFFOLD and FedNova must cost ≈2× FedAvg uplink per round — the
	// relationship the paper's Table I is built on.
	upOf := func(algo Algorithm, seed int64) int64 {
		env := testEnv(t, 4, quickCfg(seed))
		env.Cfg.LocalEpochs = 1
		res := Run(env, algo, RunOpts{Rounds: 2})
		return res.Records[len(res.Records)-1].CumUp
	}
	fa := upOf(&FedAvg{}, 8)
	sc := upOf(&SCAFFOLD{}, 8)
	fn := upOf(&FedNova{}, 8)
	fp := upOf(&FedProx{}, 8)
	if ratio := float64(sc) / float64(fa); ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("SCAFFOLD/FedAvg uplink ratio %.2f, want ≈2", ratio)
	}
	if ratio := float64(fn) / float64(fa); ratio < 1.6 || ratio > 2.2 {
		t.Fatalf("FedNova/FedAvg uplink ratio %.2f, want ≈2", ratio)
	}
	if fp != fa {
		t.Fatalf("FedProx uplink %d must equal FedAvg %d", fp, fa)
	}
}

func TestRunDeterministic(t *testing.T) {
	r1 := Run(testEnv(t, 3, quickCfg(9)), &FedAvg{}, RunOpts{Rounds: 2})
	r2 := Run(testEnv(t, 3, quickCfg(9)), &FedAvg{}, RunOpts{Rounds: 2})
	if len(r1.Records) != len(r2.Records) {
		t.Fatal("record counts differ")
	}
	for i := range r1.Records {
		if r1.Records[i].CumUp != r2.Records[i].CumUp {
			t.Fatal("byte accounting must be deterministic")
		}
	}
	// Accuracy should also be reproducible: parallel order does not
	// affect per-client training (per-client seeded RNGs, fixed-order
	// aggregation).
	for i := range r1.Records {
		if math.Abs(r1.Records[i].AvgAcc-r2.Records[i].AvgAcc) > 1e-9 {
			t.Fatalf("accuracy differs at record %d: %v vs %v", i, r1.Records[i].AvgAcc, r2.Records[i].AvgAcc)
		}
	}
}

func TestRunEarlyStopsAtTarget(t *testing.T) {
	env := testEnv(t, 4, quickCfg(10))
	res := Run(env, &FedAvg{}, RunOpts{Rounds: 50, TargetAcc: 0.30})
	if len(res.Records) >= 50 {
		t.Fatal("run should stop early at an easy target")
	}
	if res.FinalAcc() < 0.30 {
		t.Fatal("final accuracy below target despite early stop")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Records: []RoundRecord{
		{Round: 0, AvgAcc: 0.2, CumUp: 100},
		{Round: 1, AvgAcc: 0.5, CumUp: 200},
		{Round: 2, AvgAcc: 0.4, CumUp: 300},
	}}
	if r.FinalAcc() != 0.4 {
		t.Fatal("FinalAcc")
	}
	if r.BestAcc() != 0.5 {
		t.Fatal("BestAcc")
	}
	if r.RoundsToAcc(0.45) != 2 {
		t.Fatalf("RoundsToAcc = %d", r.RoundsToAcc(0.45))
	}
	if r.RoundsToAcc(0.9) != -1 {
		t.Fatal("RoundsToAcc for unreachable target")
	}
	if r.UpAt(0.45) != 200 {
		t.Fatalf("UpAt = %d", r.UpAt(0.45))
	}
	if r.UpAt(0.99) != 300 {
		t.Fatal("UpAt falls back to final")
	}
}

func TestLocalSGDStepCount(t *testing.T) {
	env := testEnv(t, 2, quickCfg(11))
	c := env.Clients[0]
	steps, _ := LocalSGD(c, LocalOpts{
		Params: c.Model.Params(), Epochs: 2, BatchSize: 16,
		LR: 0.01, Momentum: 0.9,
	}, rand.New(rand.NewSource(1)))
	wantPerEpoch := (c.Train.Len() + 15) / 16
	if steps != 2*wantPerEpoch {
		t.Fatalf("steps = %d, want %d", steps, 2*wantPerEpoch)
	}
}

func TestEvalAccuracyBounds(t *testing.T) {
	env := testEnv(t, 2, quickCfg(12))
	acc := EvalAccuracy(env.Global, env.Clients[0].Val, 16)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %v out of [0,1]", acc)
	}
}

func TestHookRunsOncePerStep(t *testing.T) {
	env := testEnv(t, 2, quickCfg(13))
	c := env.Clients[0]
	calls := 0
	steps, _ := LocalSGD(c, LocalOpts{
		Params: c.Model.Params(), Epochs: 1, BatchSize: 32,
		LR:   0.01,
		Hook: func(params []*nn.Param) { calls++ },
	}, rand.New(rand.NewSource(1)))
	if calls != steps {
		t.Fatalf("hook ran %d times for %d steps", calls, steps)
	}
}
