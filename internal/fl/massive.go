package fl

import (
	"fmt"
	"math/rand"
	"sort"

	"spatl/internal/algo"
	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// MassiveSim federates hundreds of thousands to a million simulated
// clients in one process. Real clients (models, datasets, SGD) cost
// megabytes each; at 100k+ that is not a simulation, it is an OOM. A
// massive client is three integers — ID, train size, seed — and its
// round upload is synthesized as a patched copy of the round broadcast:
// a valid dense payload, unique per (round, client), produced by memcpy
// instead of training. What remains real is everything this repo's
// server side is: the aggregator core, the shard-pooling wire format,
// the quorum/late-fold semantics and the telemetry. That is the point —
// MassiveSim exists to exercise and benchmark federation mechanics at
// a scale where per-upload overhead dominates.
//
// Rounds run through the sharded collection tree (algo.ShardBuffer →
// FoldShards order) exactly as ShardedSim does. With OnTimeFrac < 1 the
// round closes at quorum: the deterministic late fraction of sampled
// uploads misses the round and folds into the next one (FedBuff-style),
// journaled as late_upload events and counted in "fl.late_uploads".
type MassiveConfig struct {
	Clients  int // total simulated clients
	PerRound int // sampled per round (0 = all)
	Shards   int // aggregation-tree width (0 = 1)
	Rounds   int

	// OnTimeFrac is the fraction of sampled uploads that arrive before
	// the quorum closes the round; the rest arrive during the next
	// round and fold late. 0 or 1 keeps every upload synchronous.
	OnTimeFrac float64

	// Spec is the synthetic model; the zero value builds a small MLP.
	Spec models.Spec
	Seed int64

	// FlatCollect bypasses the shard layer: uploads are collected one
	// by one in selection order, the flat server's code path. The
	// baseline for the sharded-vs-flat federation benchmarks.
	FlatCollect bool

	// PerClientEvents journals client_upload per accepted upload. At
	// 100k sampled clients that is 100k journal lines per round, so it
	// is opt-in; shard/round lifecycle events are always emitted.
	PerClientEvents bool

	Tel *telemetry.Set
}

// MassiveResult summarizes a massive federation run.
type MassiveResult struct {
	Rounds      int
	Folded      int64 // uploads folded across all rounds (on-time + late)
	Late        int64 // uploads folded one round after they were computed
	FinalState  []float32
	UpBytes     int64
	RelayBytes  int64
	ShardPushes int64
}

// massiveSynthBatch bounds how many synthetic uploads are alive at once
// inside a shard's collect pass: uploads are synthesized into pooled
// buffers this many at a time and each buffer recycles as soon as it is
// folded. Large enough to keep the synthesis memcpy parallel, small
// enough that round memory is governed by the batch, not the selection.
const massiveSynthBatch = 1024

// lateUpload is a straggler's payload carried into the next round.
type lateUpload struct {
	client    uint32
	trainSize int
	payload   []byte
}

// massiveOnTime deterministically decides whether a sampled client's
// upload beats the quorum deadline this round.
func massiveOnTime(seed int64, round, client int, frac float64) bool {
	if frac <= 0 || frac >= 1 {
		return true
	}
	rng := rand.New(rand.NewSource(algo.ClientSeed(seed, round, client) ^ 0x1a7e))
	return rng.Float64() < frac
}

// RunMassive executes a massive synthetic federation and returns its
// summary. The run is deterministic in the config: same config, same
// final state bitwise, whatever the shard count (the sharded fold is
// order-identical to flat collect).
func RunMassive(cfg MassiveConfig) (*MassiveResult, error) {
	if cfg.Clients <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("fl: massive sim needs positive Clients and Rounds")
	}
	if cfg.PerRound <= 0 || cfg.PerRound > cfg.Clients {
		cfg.PerRound = cfg.Clients
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	spec := cfg.Spec
	if spec.Arch == "" {
		spec = models.Spec{Arch: "mlp", Classes: 10, InC: 3, H: 8, W: 8, Width: 0.5}
	}
	global := models.Build(spec, cfg.Seed)
	agg := algo.NewFedAvgAggregator(global, algo.Config{NumClients: cfg.Clients, Seed: cfg.Seed})
	tel := cfg.Tel
	algo.Wire(tel, agg)
	var lateCtr telemetry.Counter
	if tel != nil && tel.Reg != nil {
		tel.Reg.Attach("fl.late_uploads", &lateCtr)
	}
	nState := global.StateLen(models.ScopeAll)
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &MassiveResult{Rounds: cfg.Rounds}

	var pendingLate []lateUpload
	var sb algo.ShardBuffer
	var entries []algo.Upload
	trainSize := func(ci int) int { return 50 + ci%101 }
	batch := make([][]byte, 0, massiveSynthBatch)
	for round := 0; round < cfg.Rounds; round++ {
		bcast := agg.Broadcast(round)
		selected := rng.Perm(cfg.Clients)[:cfg.PerRound]
		sort.Ints(selected)
		sa := beginStreamRound(agg, round, selected)
		tel.Emit(telemetry.RoundStart(round, len(selected), int64(len(bcast))))

		// Stragglers from the previous round land first: fold them into
		// this round before its own collect, FedBuff-style. CollectLate
		// bypasses the streaming cursor, so a late upload never consumes
		// the slot of a client also selected this round. Each payload is
		// a pooled buffer held since its synthesis; the fold is its last
		// use, so it recycles immediately.
		for _, lu := range pendingLate {
			lateCtr.Inc()
			res.Late++
			res.Folded++
			res.UpBytes += int64(len(lu.payload))
			tel.Emit(telemetry.LateUpload(round, int(lu.client), int64(len(lu.payload))))
			if sa != nil {
				sa.CollectLate(round, lu.client, lu.trainSize, lu.payload)
			} else {
				agg.Collect(round, lu.client, lu.trainSize, lu.payload)
			}
			comm.PutBuf(lu.payload)
		}
		pendingLate = pendingLate[:0]

		// Shard-major collection, identical order to ShardedSim. Uploads
		// are synthesized in bounded pooled batches — a copy of the
		// broadcast with one client-and-round-specific float patched, a
		// valid dense payload without any training — and every buffer
		// returns to the pool the moment its bytes are folded (the
		// aggregator decodes into its own buffers and ShardBuffer.Add
		// copies). Only stragglers' buffers outlive the batch: they are
		// carried into the next round and recycled after the late fold.
		// Peak upload memory per round is O(batch + stragglers), not
		// O(selected).
		onTime := 0
		collected := 0
		pos := 0
		for sh := 0; sh < cfg.Shards; sh++ {
			_, shardHi := algo.ShardRange(sh, cfg.Clients, cfg.Shards)
			lo := pos
			for pos < len(selected) && selected[pos] < shardHi {
				pos++
			}
			if pos == lo {
				continue
			}
			sb.Reset()
			for chunkLo := lo; chunkLo < pos; chunkLo += massiveSynthBatch {
				chunkHi := chunkLo + massiveSynthBatch
				if chunkHi > pos {
					chunkHi = pos
				}
				batch = batch[:chunkHi-chunkLo]
				tensor.Parallel(len(batch), func(blo, bhi int) {
					for b := blo; b < bhi; b++ {
						ci := selected[chunkLo+b]
						up := comm.GetBuf(len(bcast))
						copy(up, bcast)
						delta := float32(round+1) * (1 + float32(ci%997)/997)
						comm.PatchDensePayload(up, ci%nState, delta)
						batch[b] = up
					}
				})
				for b, up := range batch {
					ci := selected[chunkLo+b]
					if !massiveOnTime(cfg.Seed, round, ci, cfg.OnTimeFrac) {
						// Missed the quorum close: folds next round, so this
						// round's cursor must not wait for it.
						if sa != nil {
							sa.MarkAbsent(round, uint32(ci))
						}
						pendingLate = append(pendingLate, lateUpload{client: uint32(ci), trainSize: trainSize(ci), payload: up})
						continue
					}
					onTime++
					res.UpBytes += int64(len(up))
					if cfg.PerClientEvents {
						tel.Emit(telemetry.ClientUpload(round, ci, int64(len(up)), 0))
					}
					if cfg.FlatCollect {
						agg.Collect(round, uint32(ci), trainSize(ci), up)
						collected++
					} else {
						sb.Add(uint32(ci), trainSize(ci), up)
					}
					comm.PutBuf(up)
				}
			}
			if cfg.FlatCollect {
				continue
			}
			res.RelayBytes += int64(len(sb.Payload()))
			res.ShardPushes++
			tel.Emit(telemetry.ShardPush(round, sh, sb.Len(), int64(len(sb.Payload()))))
			entries, _ = algo.ShardEntries(entries[:0], sb.Payload())
			algo.CollectAll(agg, round, entries)
			collected += len(entries)
		}
		res.Folded += int64(collected)
		if cfg.OnTimeFrac > 0 && cfg.OnTimeFrac < 1 {
			tel.Emit(telemetry.Quorum(round, onTime))
		}
		agg.FinishRound(round)
		tel.Emit(telemetry.Aggregate(round, collected, 0))
		tel.Emit(telemetry.RoundEnd(round, res.UpBytes, 0))
	}
	res.FinalState = global.State(models.ScopeAll)
	return res, nil
}
