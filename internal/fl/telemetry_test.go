package fl

import (
	"io"
	"testing"
	"time"

	"spatl/internal/telemetry"
)

// TestTelemetryOverheadBudget enforces the <1% telemetry overhead
// acceptance bound analytically instead of by A/B wall-clock diffing
// (which is hopelessly flaky at test scale): run an instrumented
// federation, count every telemetry operation it performed, price each
// at the cost of the most expensive telemetry primitive (a journal
// emit, which JSON-encodes a line), and require the total to stay
// under 1% of the measured round-loop wall time.
func TestTelemetryOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven budget test")
	}
	const rounds = 3
	env := testEnv(t, 8, quickCfg(5))
	env.EnableTelemetry(telemetry.New(io.Discard))
	alg := &FedAvg{}
	alg.Setup(env)
	sel := make([]int, env.Cfg.NumClients)
	for i := range sel {
		sel[i] = i
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		alg.Round(env, r, sel)
	}
	wall := time.Since(start)

	// Every span End and size observation lands in exactly one
	// histogram record; every lifecycle transition is one journal emit;
	// counter adds (byte meter, drop counters) are bounded above by two
	// per journal event. Sum = total telemetry ops performed.
	snap := env.Tel.Reg.Snapshot()
	var ops int64
	for _, h := range snap.Histograms {
		ops += h.Count
	}
	events := env.Tel.Journal.Events()
	if events == 0 {
		t.Fatal("instrumented rounds emitted no journal events")
	}
	ops += events + 2*events

	// Per-op price: the journal emit, the costliest primitive (counter
	// adds and span ends are atomic ops, orders of magnitude cheaper).
	bench := telemetry.New(io.Discard)
	ev := telemetry.ClientUpload(1, 2, 4096, int64(time.Millisecond))
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bench.Emit(ev)
		}
	})
	perOp := res.NsPerOp()

	cost := time.Duration(ops * perOp)
	budget := wall / 100
	t.Logf("wall=%v ops=%d perOp=%dns cost=%v budget(1%%)=%v", wall, ops, perOp, cost, budget)
	if cost > budget {
		t.Fatalf("telemetry cost %v exceeds 1%% budget %v (wall %v, %d ops at %dns)",
			cost, budget, wall, ops, perOp)
	}
}
