package fl

import (
	"bytes"
	"strings"
	"testing"

	"spatl/internal/algo"
	"spatl/internal/models"
	"spatl/internal/telemetry"
)

// runQuorumFederation drives a FedAvg federation through QuorumSim with
// a zero-time journal and returns (final state, journal bytes, sim).
func runQuorumFederation(t *testing.T, onTime float64, rounds int) ([]float32, []byte, *QuorumSim) {
	t.Helper()
	cfg := quickCfg(29)
	cfg.LocalEpochs = 1
	env := testEnv(t, 6, cfg)
	var journal bytes.Buffer
	tel := telemetry.New(&journal)
	tel.Journal.SetZeroTime(true)
	env.EnableTelemetry(tel)
	acfg := env.AlgoConfig()
	trainers := make([]algo.Trainer, len(env.Clients))
	for i, c := range env.Clients {
		trainers[i] = algo.NewFedAvgTrainer(c, acfg)
	}
	sim := NewQuorumSim(env, algo.NewFedAvgAggregator(env.Global, acfg), trainers, onTime)
	sel := make([]int, env.Cfg.NumClients)
	for i := range sel {
		sel[i] = i
	}
	for r := 0; r < rounds; r++ {
		sim.Round(r, sel)
	}
	tel.Journal.Flush()
	return env.Global.State(models.ScopeAll), journal.Bytes(), sim
}

// TestQuorumSimDeterministic: the async-quorum driver is bitwise
// reproducible — same seed, same final state, byte-identical zero-time
// journal — because the on-time decision is hashed, not raced.
func TestQuorumSimDeterministic(t *testing.T) {
	s1, j1, _ := runQuorumFederation(t, 0.6, 3)
	s2, j2, _ := runQuorumFederation(t, 0.6, 3)
	if len(s1) == 0 || len(s1) != len(s2) {
		t.Fatalf("state lengths %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("state[%d] differs: %v vs %v", i, s1[i], s2[i])
		}
	}
	if !bytes.Equal(j1, j2) {
		t.Fatal("zero-time journals differ across identical quorum runs")
	}
}

// TestQuorumSimFoldsLateUploads: with OnTimeFrac < 1 some uploads defer
// and fold into the next round, journaled as quorum_reached and
// late_upload events; with OnTimeFrac 1 the round is synchronous.
func TestQuorumSimFoldsLateUploads(t *testing.T) {
	_, journal, sim := runQuorumFederation(t, 0.5, 3)
	j := string(journal)
	if !strings.Contains(j, telemetry.EvQuorum) {
		t.Fatal("no quorum_reached events in journal")
	}
	if !strings.Contains(j, telemetry.EvLateUpload) {
		t.Fatal("no late_upload events in journal (OnTimeFrac 0.5 over 6 clients x 3 rounds)")
	}
	// Late uploads from the final round stay pending, never folded.
	if sim.Pending() < 0 {
		t.Fatal("impossible pending count")
	}

	_, journal, _ = runQuorumFederation(t, 1.0, 2)
	j = string(journal)
	if strings.Contains(j, telemetry.EvQuorum) || strings.Contains(j, telemetry.EvLateUpload) {
		t.Fatal("synchronous quorum (OnTimeFrac 1) must not emit quorum/late events")
	}
}

// TestNewDriverTopologySwitch: NewDriver wires the driver the Topology
// asks for, defaulting to the flat Sim.
func TestNewDriverTopologySwitch(t *testing.T) {
	for _, tc := range []struct {
		topo Topology
		want string
	}{
		{Topology{}, "*fl.Sim"},
		{Topology{Kind: TopoFlat}, "*fl.Sim"},
		{Topology{Kind: TopoSharded, Shards: 2}, "*fl.ShardedSim"},
		{Topology{Kind: TopoQuorum, OnTimeFrac: 0.5}, "*fl.QuorumSim"},
	} {
		env := testEnv(t, 2, quickCfg(3))
		env.Topo = tc.topo
		acfg := env.AlgoConfig()
		trainers := make([]algo.Trainer, len(env.Clients))
		for i, c := range env.Clients {
			trainers[i] = algo.NewFedAvgTrainer(c, acfg)
		}
		drv := NewDriver(env, algo.NewFedAvgAggregator(env.Global, acfg), trainers)
		if got := typeName(drv); got != tc.want {
			t.Fatalf("topology %+v wired %s, want %s", tc.topo, got, tc.want)
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *Sim:
		return "*fl.Sim"
	case *ShardedSim:
		return "*fl.ShardedSim"
	case *QuorumSim:
		return "*fl.QuorumSim"
	}
	return "?"
}
