// Package fl is the federated-learning simulation framework: clients
// with private non-IID data, a central aggregation server, a round loop
// with client sampling and parallel local updates, and the four baseline
// algorithms SPATL is compared against — FedAvg, FedProx, FedNova and
// SCAFFOLD — implemented to match the Non-IID benchmark the paper uses.
//
// Communication is routed through internal/comm so every reported byte
// was actually serialized. The headline "communication cost" follows the
// paper's accounting: uplink (client → server) volume per round.
package fl

import (
	"fmt"
	"math/rand"

	"spatl/internal/algo"
	"spatl/internal/comm"
	"spatl/internal/data"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// Config holds the federated-learning hyperparameters shared by all
// algorithms. The defaults follow §V-A of the paper where applicable
// (10 local update epochs, momentum SGD).
type Config struct {
	NumClients  int
	SampleRatio float64 // fraction of clients participating per round
	LocalEpochs int     // local update epochs per round (paper: 10)
	BatchSize   int
	LR          float64
	// LRSchedule, when set, overrides LR per communication round
	// (nn.ConstantLR, StepLR, CosineLR, WarmupLR...).
	LRSchedule  nn.Schedule
	Momentum    float64
	WeightDecay float64
	ProxMu      float64 // FedProx proximal coefficient
	GradClip    float64 // global-norm gradient clip; 0 disables
	// DropRate is the probability that a selected client crashes after
	// downloading and never uploads its round result — straggler/failure
	// injection for robustness testing. 0 disables.
	DropRate float64
	// HalfPrecision ships all payloads as IEEE 754 binary16, halving
	// wire volume (an extension beyond the paper; composes with salient
	// selection).
	HalfPrecision bool
	Seed          int64
}

// WithDefaults fills zero fields with the standard settings.
func (c Config) WithDefaults() Config {
	if c.NumClients == 0 {
		c.NumClients = 10
	}
	if c.SampleRatio == 0 {
		c.SampleRatio = 1
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	return c
}

// Client is one edge device; it aliases the transport-agnostic
// algo.Client so simulation code and algorithm cores share the type.
type Client = algo.Client

// In-process topology kinds (Topology.Kind).
const (
	TopoFlat    = "flat"    // Sim: flat collection, one hop
	TopoSharded = "sharded" // ShardedSim: two-level collection tree
	TopoQuorum  = "quorum"  // QuorumSim: deterministic async quorum rounds
)

// Topology selects the in-process round driver an algorithm's Setup
// wires (see NewDriver): the flat Sim, the sharded collection tree, or
// the deterministic async-quorum loop. The zero value is the flat Sim —
// every pre-existing caller keeps its behavior.
type Topology struct {
	Kind string // "" or TopoFlat | TopoSharded | TopoQuorum

	// Shards is the collection-tree width (TopoSharded; default 2).
	Shards int
	// OnTimeFrac is the fraction of a round's uploads that beat the
	// quorum close (TopoQuorum); the rest fold into the next round as
	// late uploads. 0 or >=1 makes every upload on time.
	OnTimeFrac float64
}

// Env is the shared simulation environment: the server's global model,
// all clients, the communication meter and the experiment RNG.
type Env struct {
	Cfg     Config
	Spec    models.Spec
	Clients []*Client
	Global  *models.SplitModel
	Meter   *comm.Meter
	Rng     *rand.Rand

	// Topo selects the in-process round driver (NewDriver). The zero
	// value is the flat Sim.
	Topo Topology

	// Tel, when set via EnableTelemetry, receives spans, metrics and
	// journal events from the round loop and every wired algorithm core.
	// Nil keeps the whole stack telemetry-free.
	Tel *telemetry.Set
}

// EnableTelemetry installs a telemetry set on the environment: the
// communication meter's counters are exposed through the registry under
// "comm.*", the tensor worker-pool gauges under "tensor.pool.*", and
// every Sim built afterwards wires its algorithm cores into the set.
func (e *Env) EnableTelemetry(s *telemetry.Set) {
	e.Tel = s
	if s == nil || s.Reg == nil {
		return
	}
	e.Meter.Bind(s.Reg, "comm")
	tensor.BindPoolMetrics(s.Reg)
}

// ClientData is the per-client dataset pair handed to NewEnv.
type ClientData struct {
	Train, Val *data.Dataset
}

// NewEnv builds a simulation environment: the global model from
// cfg.Seed, and one client model per dataset pair (initialized to the
// same weights as the global model).
func NewEnv(spec models.Spec, cfg Config, cd []ClientData) *Env {
	cfg = cfg.WithDefaults()
	if len(cd) != cfg.NumClients {
		panic(fmt.Sprintf("fl: %d client datasets for %d clients", len(cd), cfg.NumClients))
	}
	env := &Env{
		Cfg:    cfg,
		Spec:   spec,
		Global: models.Build(spec, cfg.Seed),
		Meter:  &comm.Meter{},
		Rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	init := env.Global.State(models.ScopeAll)
	for i, d := range cd {
		m := models.Build(spec, cfg.Seed+int64(1000+i))
		m.SetState(models.ScopeAll, init)
		env.Clients = append(env.Clients, &Client{ID: i, Train: d.Train, Val: d.Val, Model: m})
	}
	return env
}

// SampleClients draws the participating client set for a round: a
// uniform sample without replacement of ceil(ratio·N) clients, at least
// one.
func (e *Env) SampleClients() []int {
	n := int(float64(e.Cfg.NumClients)*e.Cfg.SampleRatio + 0.5)
	if n < 1 {
		n = 1
	}
	if n > e.Cfg.NumClients {
		n = e.Cfg.NumClients
	}
	perm := e.Rng.Perm(e.Cfg.NumClients)
	sel := append([]int(nil), perm[:n]...)
	// Sort for deterministic iteration order downstream.
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && sel[j] < sel[j-1]; j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
	return sel
}

// EncodeDense serializes a flat vector at the configured wire precision.
func (e *Env) EncodeDense(v []float32) []byte {
	return e.EncodeDenseInto(nil, v)
}

// EncodeDenseInto is EncodeDense writing into dst (reused when its
// capacity suffices), so round loops can serialize into pooled buffers.
func (e *Env) EncodeDenseInto(dst []byte, v []float32) []byte {
	if e.Cfg.HalfPrecision {
		return comm.EncodeDenseF16Into(dst, v)
	}
	return comm.EncodeDenseInto(dst, v)
}

// DensePayloadLen returns the encoded size of an n-element dense payload
// at the configured wire precision — for pre-sizing pooled buffers.
func (e *Env) DensePayloadLen(n int) int {
	if e.Cfg.HalfPrecision {
		return comm.DenseF16Len(n)
	}
	return comm.DenseLen(n)
}

// EncodeSparse serializes a sparse payload at the configured precision.
func (e *Env) EncodeSparse(s *comm.Sparse) []byte {
	return e.EncodeSparseInto(nil, s)
}

// EncodeSparseInto is EncodeSparse writing into dst (reused when its
// capacity suffices).
func (e *Env) EncodeSparseInto(dst []byte, s *comm.Sparse) []byte {
	if e.Cfg.HalfPrecision {
		return comm.EncodeSparseF16Into(dst, s)
	}
	return comm.EncodeSparseInto(dst, s)
}

// SparsePayloadLen returns the encoded size of s at the configured wire
// precision — for pre-sizing pooled buffers.
func (e *Env) SparsePayloadLen(s *comm.Sparse) int {
	if e.Cfg.HalfPrecision {
		return s.EncodedLenF16()
	}
	return s.EncodedLen()
}

// LRAt returns the learning rate for a communication round, honouring
// the schedule when one is configured.
func (e *Env) LRAt(round int) float64 {
	if e.Cfg.LRSchedule != nil {
		return e.Cfg.LRSchedule.LRAt(round)
	}
	return e.Cfg.LR
}

// ClientSeed derives a deterministic per-(round, client) seed for local
// training so runs are reproducible regardless of scheduling order. It
// delegates to algo.ClientSeed — the same derivation every transport
// uses.
func (e *Env) ClientSeed(round, clientID int) int64 {
	return algo.ClientSeed(e.Cfg.Seed, round, clientID)
}

// AlgoConfig projects the simulation config onto the hyperparameters an
// algorithm core needs (algo.Config drops the transport-owned knobs:
// sampling ratio and drop injection).
func (e *Env) AlgoConfig() algo.Config {
	return algo.Config{
		NumClients:    e.Cfg.NumClients,
		LocalEpochs:   e.Cfg.LocalEpochs,
		BatchSize:     e.Cfg.BatchSize,
		LR:            e.Cfg.LR,
		LRSchedule:    e.Cfg.LRSchedule,
		Momentum:      e.Cfg.Momentum,
		WeightDecay:   e.Cfg.WeightDecay,
		ProxMu:        e.Cfg.ProxMu,
		GradClip:      e.Cfg.GradClip,
		HalfPrecision: e.Cfg.HalfPrecision,
		Seed:          e.Cfg.Seed,
	}
}

// ClientFailed reports whether failure injection drops this client's
// upload this round. Deterministic in (seed, round, client) so runs are
// reproducible.
func (e *Env) ClientFailed(round, clientID int) bool {
	if e.Cfg.DropRate <= 0 {
		return false
	}
	rng := rand.New(rand.NewSource(e.ClientSeed(round, clientID) ^ 0x5ca1ab1e))
	return rng.Float64() < e.Cfg.DropRate
}

// TrainSizes returns each selected client's training-set size and the
// total, used for data-weighted aggregation.
func (e *Env) TrainSizes(selected []int) ([]float64, float64) {
	ws := make([]float64, len(selected))
	var total float64
	for i, ci := range selected {
		ws[i] = float64(e.Clients[ci].Train.Len())
		total += ws[i]
	}
	return ws, total
}

// Algorithm is one federated-learning method. Round executes a full
// communication round over the selected clients, mutating the
// environment (global model, client state, communication meter).
type Algorithm interface {
	Name() string
	// Setup is called once before the first round.
	Setup(env *Env)
	// Round runs one communication round.
	Round(env *Env, round int, selected []int)
	// EvalModel returns the model that client c would deploy — the
	// global model for the uniform-model baselines, the personalized
	// encoder+predictor composition for SPATL.
	EvalModel(env *Env, c *Client) *models.SplitModel
}
