package fl

import (
	"spatl/internal/algo"
	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/prune"
)

// The four baseline algorithms are implemented once, transport-free, in
// internal/algo; this file adapts them to the simulation's Algorithm
// interface by wiring an aggregator around the global model and one
// trainer per client, then delegating rounds to the Sim transport.

// EffectiveLR re-exports algo.EffectiveLR for the simulation's callers.
func EffectiveLR(lr, momentum float64) float64 { return algo.EffectiveLR(lr, momentum) }

// weightedAverageSerial is the serial reference reduction (see
// algo.WeightedAverageSerial); retained for the determinism tests.
func weightedAverageSerial(states [][]float32, weights []float64) []float32 {
	return algo.WeightedAverageSerial(states, weights)
}

// weightedAverage is the deterministic parallel reduction (see
// algo.WeightedAverage).
func weightedAverage(states [][]float32, weights []float64) []float32 {
	return algo.WeightedAverage(states, weights)
}

// WeightedAverage exposes the deterministic parallel reduction for the
// benchmark harness: bitwise identical to the serial reference at any
// GOMAXPROCS.
func WeightedAverage(states [][]float32, weights []float64) []float32 {
	return algo.WeightedAverage(states, weights)
}

// FedAvg is the McMahan et al. baseline: clients train the full model
// locally; the server averages uploaded models weighted by local data
// size.
type FedAvg struct {
	drv Driver
}

// Name implements Algorithm.
func (*FedAvg) Name() string { return "fedavg" }

// Setup implements Algorithm.
func (f *FedAvg) Setup(env *Env) {
	cfg := env.AlgoConfig()
	trainers := make([]algo.Trainer, len(env.Clients))
	for i, c := range env.Clients {
		trainers[i] = algo.NewFedAvgTrainer(c, cfg)
	}
	f.drv = NewDriver(env, algo.NewFedAvgAggregator(env.Global, cfg), trainers)
}

// Round implements Algorithm.
func (f *FedAvg) Round(env *Env, round int, selected []int) { f.drv.Round(round, selected) }

// EvalModel implements Algorithm.
func (*FedAvg) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// FedProx (Li et al.) augments FedAvg's local objective with a proximal
// term restraining drift from the global model; per-round payload equals
// FedAvg's.
type FedProx struct {
	drv Driver
}

// Name implements Algorithm.
func (*FedProx) Name() string { return "fedprox" }

// Setup implements Algorithm.
func (f *FedProx) Setup(env *Env) {
	cfg := env.AlgoConfig()
	trainers := make([]algo.Trainer, len(env.Clients))
	for i, c := range env.Clients {
		trainers[i] = algo.NewFedProxTrainer(c, cfg)
	}
	f.drv = NewDriver(env, algo.NewFedAvgAggregator(env.Global, cfg), trainers)
}

// Round implements Algorithm.
func (f *FedProx) Round(env *Env, round int, selected []int) { f.drv.Round(round, selected) }

// EvalModel implements Algorithm.
func (*FedProx) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// SCAFFOLD (Karimireddy et al.) corrects client drift with control
// variates: the server holds c, each client cᵢ; local gradients receive
// c − cᵢ; clients upload both the model delta and the control delta, so
// the per-round payload is ≈2× FedAvg's — the trade-off the SPATL paper
// highlights.
type SCAFFOLD struct {
	drv Driver
	agg *algo.SCAFFOLDAggregator
}

// Name implements Algorithm.
func (*SCAFFOLD) Name() string { return "scaffold" }

// Setup implements Algorithm.
func (s *SCAFFOLD) Setup(env *Env) {
	cfg := env.AlgoConfig()
	s.agg = algo.NewSCAFFOLDAggregator(env.Global, cfg)
	trainers := make([]algo.Trainer, len(env.Clients))
	for i, c := range env.Clients {
		trainers[i] = algo.NewSCAFFOLDTrainer(c, cfg)
	}
	s.drv = NewDriver(env, s.agg, trainers)
}

// Round implements Algorithm.
func (s *SCAFFOLD) Round(env *Env, round int, selected []int) { s.drv.Round(round, selected) }

// EvalModel implements Algorithm.
func (*SCAFFOLD) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// ControlVariate exposes the server control variate (read-only use).
func (s *SCAFFOLD) ControlVariate() []float32 { return s.agg.ControlVariate() }

// FedNova (Wang et al.) normalizes each client's cumulative update by
// its local step count before aggregation, removing objective
// inconsistency under heterogeneous local work. The implementation
// includes the momentum variant: clients also ship their momentum
// buffers, which the server averages and redistributes — giving the ≈2×
// per-round uplink the SPATL paper reports for FedNova.
type FedNova struct {
	drv Driver
	agg *algo.FedNovaAggregator
}

// Name implements Algorithm.
func (*FedNova) Name() string { return "fednova" }

// Setup implements Algorithm.
func (f *FedNova) Setup(env *Env) {
	cfg := env.AlgoConfig()
	f.agg = algo.NewFedNovaAggregator(env.Global, cfg)
	trainers := make([]algo.Trainer, len(env.Clients))
	for i, c := range env.Clients {
		trainers[i] = algo.NewFedNovaTrainer(c, cfg)
	}
	f.drv = NewDriver(env, f.agg, trainers)
}

// Round implements Algorithm.
func (f *FedNova) Round(env *Env, round int, selected []int) { f.drv.Round(round, selected) }

// EvalModel implements Algorithm.
func (*FedNova) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// SSFL agrees on one global sparse sub-network during the first round
// (clients upload saliency scores, the server reduces them into a single
// channel mask) and then trains mask-static: every later round moves
// only the packed masked values — values-only frames in both directions,
// with the index ranges travelling exactly once after agreement. Like
// SPATL it shares only the encoder; predictors stay private.
type SSFL struct {
	Opts algo.SSFLOptions

	drv Driver
	agg *algo.SSFLAggregator
}

// Name implements Algorithm.
func (*SSFL) Name() string { return "ssfl" }

// Setup implements Algorithm.
func (s *SSFL) Setup(env *Env) {
	cfg := env.AlgoConfig()
	s.agg = algo.NewSSFLAggregator(env.Global, s.Opts, cfg)
	trainers := make([]algo.Trainer, len(env.Clients))
	for i, c := range env.Clients {
		trainers[i] = algo.NewSSFLTrainer(c, s.Opts, cfg)
	}
	s.drv = NewDriver(env, s.agg, trainers)
}

// Round implements Algorithm.
func (s *SSFL) Round(env *Env, round int, selected []int) { s.drv.Round(round, selected) }

// EvalModel implements Algorithm: the global encoder composed with the
// client's private predictor, as for SPATL.
func (s *SSFL) EvalModel(env *Env, c *Client) *models.SplitModel {
	n := env.Global.StateLen(models.ScopeEncoder)
	st := env.Global.StateInto(models.ScopeEncoder, comm.GetF32(n))
	c.Model.SetState(models.ScopeEncoder, st)
	comm.PutF32(st)
	return c.Model
}

// Selection exposes the agreed global selection (nil before agreement).
func (s *SSFL) Selection() *prune.Selection { return s.agg.Selection() }
