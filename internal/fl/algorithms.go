package fl

import (
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/tensor"
)

// EffectiveLR is the asymptotic per-gradient step size of momentum SGD:
// η/(1−µ). Control-variate updates (SCAFFOLD, SPATL) divide cumulative
// weight movement by it to recover average gradients.
func EffectiveLR(lr, momentum float64) float64 {
	if momentum > 0 && momentum < 1 {
		return lr / (1 - momentum)
	}
	return lr
}

// decodeDense decodes a broadcast payload, panicking on corruption (the
// simulation transports bytes in-process, so corruption is a bug).
func decodeDense(buf []byte) []float32 {
	return decodeDenseInto(nil, buf)
}

// decodeDenseInto is decodeDense into a caller buffer — typically from
// comm.GetF32, so the per-client decode paths recycle their vectors.
func decodeDenseInto(dst []float32, buf []byte) []float32 {
	v, err := comm.DecodeDenseAnyInto(dst, buf)
	if err != nil {
		panic(err)
	}
	return v
}

// weightedAverageSerial is the retained reference reduction: Σ wᵢ·stateᵢ
// / Σ wᵢ in float64, clients outer, parameters inner. weightedAverage
// must match it bitwise; determinism tests compare the two.
func weightedAverageSerial(states [][]float32, weights []float64) []float32 {
	total := 0.0
	var first []float32
	for si, st := range states {
		if st == nil {
			continue
		}
		if first == nil {
			first = st
		}
		total += weights[si]
	}
	if first == nil || total == 0 {
		return nil
	}
	acc := make([]float64, len(first))
	for si, st := range states {
		if st == nil {
			continue
		}
		w := weights[si] / total
		for i, v := range st {
			acc[i] += w * float64(v)
		}
	}
	out := make([]float32, len(acc))
	for i, v := range acc {
		out[i] = float32(v)
	}
	return out
}

// weightedAverage returns Σ wᵢ·stateᵢ / Σ wᵢ computed in float64,
// skipping nil states (clients whose upload was lost to failure
// injection). Returns nil when no state survives.
//
// The reduction is parallelized by chunking the parameter dimension;
// within a chunk every index still sums clients in ascending order, so
// the result is bitwise identical to weightedAverageSerial at any
// GOMAXPROCS.
func weightedAverage(states [][]float32, weights []float64) []float32 {
	total := 0.0
	var first []float32
	for si, st := range states {
		if st == nil {
			continue
		}
		if first == nil {
			first = st
		}
		total += weights[si]
	}
	if first == nil || total == 0 {
		return nil
	}
	out := make([]float32, len(first))
	tensor.Parallel(len(first), func(lo, hi int) {
		acc := make([]float64, hi-lo)
		for si, st := range states {
			if st == nil {
				continue
			}
			w := weights[si] / total
			for i, v := range st[lo:hi] {
				acc[i] += w * float64(v)
			}
		}
		for i, v := range acc {
			out[lo+i] = float32(v)
		}
	})
	return out
}

// WeightedAverage exposes the deterministic parallel reduction for the
// benchmark harness: bitwise identical to the serial reference at any
// GOMAXPROCS.
func WeightedAverage(states [][]float32, weights []float64) []float32 {
	return weightedAverage(states, weights)
}

// releaseUploads returns pooled per-client vectors to the payload pool
// after the server reduction consumed them.
func releaseUploads(uploads [][]float32) {
	for _, u := range uploads {
		comm.PutF32(u)
	}
}

// addProx returns a LocalOpts hook adding FedProx's proximal gradient
// term μ(w − w_global) against the flattened global trainable weights.
func addProx(mu float64, globalFlat []float32) func(params []*nn.Param) {
	return func(params []*nn.Param) {
		off := 0
		m := float32(mu)
		for _, p := range params {
			for j := range p.G.Data {
				p.G.Data[j] += m * (p.W.Data[j] - globalFlat[off+j])
			}
			off += p.W.Len()
		}
	}
}

// addControl returns a hook applying SCAFFOLD-style gradient correction
// g += c − cᵢ over the flattened trainable parameters.
func addControl(c, ci []float32) func(params []*nn.Param) {
	return func(params []*nn.Param) {
		off := 0
		for _, p := range params {
			for j := range p.G.Data {
				p.G.Data[j] += c[off+j] - ci[off+j]
			}
			off += p.W.Len()
		}
	}
}

// FedAvg is the McMahan et al. baseline: clients train the full model
// locally; the server averages uploaded models weighted by local data
// size.
type FedAvg struct{}

// Name implements Algorithm.
func (FedAvg) Name() string { return "fedavg" }

// Setup implements Algorithm.
func (FedAvg) Setup(env *Env) {}

// EvalModel implements Algorithm.
func (FedAvg) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// Round implements Algorithm.
func (FedAvg) Round(env *Env, round int, selected []int) {
	n := env.Global.StateLen(models.ScopeAll)
	state := env.Global.StateInto(models.ScopeAll, comm.GetF32(n))
	payload := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(n)), state)
	uploads := make([][]float32, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		c := env.Clients[ci]
		env.Meter.AddDown(len(payload))
		if env.ClientFailed(round, ci) {
			return // crashed after download: upload lost
		}
		dl := decodeDenseInto(comm.GetF32(n), payload)
		c.Model.SetState(models.ScopeAll, dl)
		comm.PutF32(dl)
		rng := rand.New(rand.NewSource(env.ClientSeed(round, ci)))
		LocalSGD(c, LocalOpts{
			Params: c.Model.Params(), Epochs: env.Cfg.LocalEpochs, BatchSize: env.Cfg.BatchSize,
			LR: env.LRAt(round), Momentum: env.Cfg.Momentum, WeightDecay: env.Cfg.WeightDecay,
			GradClip: env.Cfg.GradClip,
		}, rng)
		local := c.Model.StateInto(models.ScopeAll, comm.GetF32(n))
		up := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(n)), local)
		comm.PutF32(local)
		env.Meter.AddUp(len(up))
		uploads[pos] = decodeDenseInto(comm.GetF32(n), up)
		comm.PutBuf(up)
	})
	ws, _ := env.TrainSizes(selected)
	if avg := weightedAverage(uploads, ws); avg != nil {
		env.Global.SetState(models.ScopeAll, avg)
	}
	releaseUploads(uploads)
	comm.PutBuf(payload)
	comm.PutF32(state)
}

// FedProx (Li et al.) augments FedAvg's local objective with a proximal
// term restraining drift from the global model; per-round payload equals
// FedAvg's.
type FedProx struct{}

// Name implements Algorithm.
func (FedProx) Name() string { return "fedprox" }

// Setup implements Algorithm.
func (FedProx) Setup(env *Env) {}

// EvalModel implements Algorithm.
func (FedProx) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// Round implements Algorithm.
func (FedProx) Round(env *Env, round int, selected []int) {
	mu := env.Cfg.ProxMu
	if mu == 0 {
		mu = 0.01
	}
	globalFlat := nn.FlattenParams(env.Global.Params())
	n := env.Global.StateLen(models.ScopeAll)
	state := env.Global.StateInto(models.ScopeAll, comm.GetF32(n))
	payload := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(n)), state)
	uploads := make([][]float32, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		c := env.Clients[ci]
		env.Meter.AddDown(len(payload))
		if env.ClientFailed(round, ci) {
			return
		}
		dl := decodeDenseInto(comm.GetF32(n), payload)
		c.Model.SetState(models.ScopeAll, dl)
		comm.PutF32(dl)
		rng := rand.New(rand.NewSource(env.ClientSeed(round, ci)))
		LocalSGD(c, LocalOpts{
			Params: c.Model.Params(), Epochs: env.Cfg.LocalEpochs, BatchSize: env.Cfg.BatchSize,
			LR: env.LRAt(round), Momentum: env.Cfg.Momentum, WeightDecay: env.Cfg.WeightDecay,
			GradClip: env.Cfg.GradClip,
			Hook:     addProx(mu, globalFlat),
		}, rng)
		local := c.Model.StateInto(models.ScopeAll, comm.GetF32(n))
		up := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(n)), local)
		comm.PutF32(local)
		env.Meter.AddUp(len(up))
		uploads[pos] = decodeDenseInto(comm.GetF32(n), up)
		comm.PutBuf(up)
	})
	ws, _ := env.TrainSizes(selected)
	if avg := weightedAverage(uploads, ws); avg != nil {
		env.Global.SetState(models.ScopeAll, avg)
	}
	releaseUploads(uploads)
	comm.PutBuf(payload)
	comm.PutF32(state)
}

// SCAFFOLD (Karimireddy et al.) corrects client drift with control
// variates: the server holds c, each client cᵢ; local gradients receive
// c − cᵢ; clients upload both the model delta and the control delta, so
// the per-round payload is ≈2× FedAvg's — the trade-off the SPATL paper
// highlights.
type SCAFFOLD struct {
	c []float32 // server control variate over trainable params
}

// Name implements Algorithm.
func (*SCAFFOLD) Name() string { return "scaffold" }

// Setup implements Algorithm.
func (s *SCAFFOLD) Setup(env *Env) {
	n := nn.ParamCount(env.Global.Params())
	s.c = make([]float32, n)
	for _, c := range env.Clients {
		c.Control = make([]float32, n)
	}
}

// EvalModel implements Algorithm.
func (*SCAFFOLD) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// Round implements Algorithm.
func (s *SCAFFOLD) Round(env *Env, round int, selected []int) {
	nState := env.Global.StateLen(models.ScopeAll)
	globalState := env.Global.StateInto(models.ScopeAll, comm.GetF32(nState))
	globalFlat := nn.FlattenParams(env.Global.Params())
	statePayload := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(nState)), globalState)
	ctrlPayload := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(len(s.c))), s.c)

	deltaW := make([][]float32, len(selected))
	deltaC := make([][]float32, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		c := env.Clients[ci]
		env.Meter.AddDown(len(statePayload) + len(ctrlPayload))
		if env.ClientFailed(round, ci) {
			return
		}
		dl := decodeDenseInto(comm.GetF32(nState), statePayload)
		c.Model.SetState(models.ScopeAll, dl)
		comm.PutF32(dl)
		serverC := decodeDenseInto(comm.GetF32(len(s.c)), ctrlPayload)
		rng := rand.New(rand.NewSource(env.ClientSeed(round, ci)))
		steps, _ := LocalSGD(c, LocalOpts{
			Params: c.Model.Params(), Epochs: env.Cfg.LocalEpochs, BatchSize: env.Cfg.BatchSize,
			LR: env.LRAt(round), Momentum: env.Cfg.Momentum, WeightDecay: env.Cfg.WeightDecay,
			GradClip: env.Cfg.GradClip,
			Hook:     addControl(serverC, c.Control),
		}, rng)

		localFlat := nn.FlattenParams(c.Model.Params())
		localState := c.Model.StateInto(models.ScopeAll, comm.GetF32(nState))
		// Option-II control update: cᵢ⁺ = cᵢ − c + (x_g − x_i)/(K·η_eff).
		// With classical momentum each unit of gradient moves the weights
		// by ≈ η/(1−µ) over time, so the effective step size is scaled
		// accordingly; without the correction the control variates
		// overestimate gradients by 1/(1−µ) and training explodes.
		inv := 1.0 / (float64(steps) * EffectiveLR(env.LRAt(round), env.Cfg.Momentum))
		newCi := make([]float32, len(localFlat))
		dC := comm.GetF32(len(localFlat))
		for j := range localFlat {
			newCi[j] = c.Control[j] - serverC[j] + float32(float64(globalFlat[j]-localFlat[j])*inv)
			dC[j] = newCi[j] - c.Control[j]
		}
		c.Control = newCi
		comm.PutF32(serverC)

		dW := comm.GetF32(len(localState))
		for j := range localState {
			dW[j] = localState[j] - globalState[j]
		}
		comm.PutF32(localState)
		upW := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(len(dW))), dW)
		upC := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(len(dC))), dC)
		env.Meter.AddUp(len(upW) + len(upC))
		deltaW[pos] = decodeDenseInto(dW, upW) // reuse: decode over the source vector
		deltaC[pos] = decodeDenseInto(dC, upC)
		comm.PutBuf(upW)
		comm.PutBuf(upC)
	})

	// Server: x += (1/|S|)·ΣΔw ; c += (1/N)·ΣΔc, where S is the set of
	// clients whose uploads actually arrived. Both reductions chunk the
	// parameter dimension and sum clients in fixed order per index, so
	// they stay bitwise identical to the serial loops at any GOMAXPROCS.
	survivors := 0
	for _, dw := range deltaW {
		if dw != nil {
			survivors++
		}
	}
	if survivors == 0 {
		comm.PutBuf(statePayload)
		comm.PutBuf(ctrlPayload)
		comm.PutF32(globalState)
		return
	}
	invS := 1.0 / float64(survivors)
	newState := comm.GetF32(nState)
	tensor.Parallel(nState, func(lo, hi int) {
		copy(newState[lo:hi], globalState[lo:hi])
		for _, dw := range deltaW {
			if dw == nil {
				continue
			}
			for j := lo; j < hi; j++ {
				newState[j] += float32(invS * float64(dw[j]))
			}
		}
	})
	env.Global.SetState(models.ScopeAll, newState)
	comm.PutF32(newState)
	invN := 1.0 / float64(env.Cfg.NumClients)
	tensor.Parallel(len(s.c), func(lo, hi int) {
		for _, dc := range deltaC {
			if dc == nil {
				continue
			}
			for j := lo; j < hi; j++ {
				s.c[j] += float32(invN * float64(dc[j]))
			}
		}
	})
	releaseUploads(deltaW)
	releaseUploads(deltaC)
	comm.PutBuf(statePayload)
	comm.PutBuf(ctrlPayload)
	comm.PutF32(globalState)
}

// FedNova (Wang et al.) normalizes each client's cumulative update by
// its local step count before aggregation, removing objective
// inconsistency under heterogeneous local work. This implementation
// includes the momentum variant: clients also ship their momentum
// buffers, which the server averages and redistributes — giving the ≈2×
// per-round uplink the SPATL paper reports for FedNova.
type FedNova struct {
	velocity []float32 // server-averaged momentum over trainable params
}

// Name implements Algorithm.
func (*FedNova) Name() string { return "fednova" }

// Setup implements Algorithm.
func (f *FedNova) Setup(env *Env) {
	f.velocity = make([]float32, nn.ParamCount(env.Global.Params()))
}

// EvalModel implements Algorithm.
func (*FedNova) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// Round implements Algorithm.
func (f *FedNova) Round(env *Env, round int, selected []int) {
	nState := env.Global.StateLen(models.ScopeAll)
	globalState := env.Global.StateInto(models.ScopeAll, comm.GetF32(nState))
	statePayload := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(nState)), globalState)
	velPayload := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(len(f.velocity))), f.velocity)

	ds := make([][]float32, len(selected)) // normalized update d_i over full state
	vs := make([][]float32, len(selected)) // final momentum buffers
	taus := make([]float64, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		c := env.Clients[ci]
		env.Meter.AddDown(len(statePayload) + len(velPayload))
		if env.ClientFailed(round, ci) {
			return
		}
		dl := decodeDenseInto(comm.GetF32(nState), statePayload)
		c.Model.SetState(models.ScopeAll, dl)
		comm.PutF32(dl)
		rng := rand.New(rand.NewSource(env.ClientSeed(round, ci)))
		steps, vel := LocalSGD(c, LocalOpts{
			Params: c.Model.Params(), Epochs: env.Cfg.LocalEpochs, BatchSize: env.Cfg.BatchSize,
			LR: env.LRAt(round), Momentum: env.Cfg.Momentum, WeightDecay: env.Cfg.WeightDecay,
			GradClip:     env.Cfg.GradClip,
			InitVelocity: decodeDense(velPayload),
		}, rng)
		taus[pos] = float64(steps)
		localState := c.Model.StateInto(models.ScopeAll, comm.GetF32(nState))
		d := comm.GetF32(nState)
		inv := 1.0 / float64(steps)
		for j := range d {
			d[j] = float32(float64(globalState[j]-localState[j]) * inv)
		}
		comm.PutF32(localState)
		upD := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(len(d))), d)
		if vel == nil {
			vel = make([]float32, nn.ParamCount(c.Model.Params()))
		}
		upV := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(len(vel))), vel)
		env.Meter.AddUp(len(upD) + len(upV))
		ds[pos] = decodeDenseInto(d, upD)
		vs[pos] = decodeDenseInto(comm.GetF32(len(vel)), upV)
		comm.PutBuf(upD)
		comm.PutBuf(upV)
	})

	// Restrict the weighting to clients whose uploads arrived.
	ws, _ := env.TrainSizes(selected)
	total := 0.0
	for i := range ds {
		if ds[i] != nil {
			total += ws[i]
		}
	}
	if total == 0 {
		comm.PutBuf(statePayload)
		comm.PutBuf(velPayload)
		comm.PutF32(globalState)
		return
	}
	// τ_eff = Σ pᵢ·τᵢ ; x_g ← x_g − τ_eff · Σ pᵢ·dᵢ. The reductions chunk
	// the parameter dimension, clients in fixed order per index, bitwise
	// identical to the serial loops at any GOMAXPROCS.
	var tauEff float64
	for i := range ds {
		if ds[i] != nil {
			tauEff += (ws[i] / total) * taus[i]
		}
	}
	newState := comm.GetF32(nState)
	tensor.Parallel(nState, func(lo, hi int) {
		copy(newState[lo:hi], globalState[lo:hi])
		for i, d := range ds {
			if d == nil {
				continue
			}
			p := ws[i] / total
			for j := lo; j < hi; j++ {
				newState[j] -= float32(tauEff * p * float64(d[j]))
			}
		}
	})
	env.Global.SetState(models.ScopeAll, newState)
	comm.PutF32(newState)
	// Server momentum = Σ pᵢ·vᵢ.
	tensor.Parallel(len(f.velocity), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			f.velocity[j] = 0
		}
		for i, v := range vs {
			if v == nil {
				continue
			}
			p := ws[i] / total
			for j := lo; j < hi; j++ {
				f.velocity[j] += float32(p * float64(v[j]))
			}
		}
	})
	releaseUploads(ds)
	releaseUploads(vs)
	comm.PutBuf(statePayload)
	comm.PutBuf(velPayload)
	comm.PutF32(globalState)
}
