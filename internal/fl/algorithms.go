package fl

import (
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
)

// EffectiveLR is the asymptotic per-gradient step size of momentum SGD:
// η/(1−µ). Control-variate updates (SCAFFOLD, SPATL) divide cumulative
// weight movement by it to recover average gradients.
func EffectiveLR(lr, momentum float64) float64 {
	if momentum > 0 && momentum < 1 {
		return lr / (1 - momentum)
	}
	return lr
}

// decodeDense decodes a broadcast payload, panicking on corruption (the
// simulation transports bytes in-process, so corruption is a bug).
func decodeDense(buf []byte) []float32 {
	v, err := comm.DecodeDenseAny(buf)
	if err != nil {
		panic(err)
	}
	return v
}

// weightedAverage returns Σ wᵢ·stateᵢ / Σ wᵢ computed in float64,
// skipping nil states (clients whose upload was lost to failure
// injection). Returns nil when no state survives.
func weightedAverage(states [][]float32, weights []float64) []float32 {
	total := 0.0
	var first []float32
	for si, st := range states {
		if st == nil {
			continue
		}
		if first == nil {
			first = st
		}
		total += weights[si]
	}
	if first == nil || total == 0 {
		return nil
	}
	acc := make([]float64, len(first))
	for si, st := range states {
		if st == nil {
			continue
		}
		w := weights[si] / total
		for i, v := range st {
			acc[i] += w * float64(v)
		}
	}
	out := make([]float32, len(acc))
	for i, v := range acc {
		out[i] = float32(v)
	}
	return out
}

// addProx returns a LocalOpts hook adding FedProx's proximal gradient
// term μ(w − w_global) against the flattened global trainable weights.
func addProx(mu float64, globalFlat []float32) func(params []*nn.Param) {
	return func(params []*nn.Param) {
		off := 0
		m := float32(mu)
		for _, p := range params {
			for j := range p.G.Data {
				p.G.Data[j] += m * (p.W.Data[j] - globalFlat[off+j])
			}
			off += p.W.Len()
		}
	}
}

// addControl returns a hook applying SCAFFOLD-style gradient correction
// g += c − cᵢ over the flattened trainable parameters.
func addControl(c, ci []float32) func(params []*nn.Param) {
	return func(params []*nn.Param) {
		off := 0
		for _, p := range params {
			for j := range p.G.Data {
				p.G.Data[j] += c[off+j] - ci[off+j]
			}
			off += p.W.Len()
		}
	}
}

// FedAvg is the McMahan et al. baseline: clients train the full model
// locally; the server averages uploaded models weighted by local data
// size.
type FedAvg struct{}

// Name implements Algorithm.
func (FedAvg) Name() string { return "fedavg" }

// Setup implements Algorithm.
func (FedAvg) Setup(env *Env) {}

// EvalModel implements Algorithm.
func (FedAvg) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// Round implements Algorithm.
func (FedAvg) Round(env *Env, round int, selected []int) {
	payload := env.EncodeDense(env.Global.State(models.ScopeAll))
	uploads := make([][]float32, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		c := env.Clients[ci]
		env.Meter.AddDown(len(payload))
		if env.ClientFailed(round, ci) {
			return // crashed after download: upload lost
		}
		c.Model.SetState(models.ScopeAll, decodeDense(payload))
		rng := rand.New(rand.NewSource(env.ClientSeed(round, ci)))
		LocalSGD(c, LocalOpts{
			Params: c.Model.Params(), Epochs: env.Cfg.LocalEpochs, BatchSize: env.Cfg.BatchSize,
			LR: env.LRAt(round), Momentum: env.Cfg.Momentum, WeightDecay: env.Cfg.WeightDecay,
			GradClip: env.Cfg.GradClip,
		}, rng)
		up := env.EncodeDense(c.Model.State(models.ScopeAll))
		env.Meter.AddUp(len(up))
		uploads[pos] = decodeDense(up)
	})
	ws, _ := env.TrainSizes(selected)
	if avg := weightedAverage(uploads, ws); avg != nil {
		env.Global.SetState(models.ScopeAll, avg)
	}
}

// FedProx (Li et al.) augments FedAvg's local objective with a proximal
// term restraining drift from the global model; per-round payload equals
// FedAvg's.
type FedProx struct{}

// Name implements Algorithm.
func (FedProx) Name() string { return "fedprox" }

// Setup implements Algorithm.
func (FedProx) Setup(env *Env) {}

// EvalModel implements Algorithm.
func (FedProx) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// Round implements Algorithm.
func (FedProx) Round(env *Env, round int, selected []int) {
	mu := env.Cfg.ProxMu
	if mu == 0 {
		mu = 0.01
	}
	globalFlat := nn.FlattenParams(env.Global.Params())
	payload := env.EncodeDense(env.Global.State(models.ScopeAll))
	uploads := make([][]float32, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		c := env.Clients[ci]
		env.Meter.AddDown(len(payload))
		if env.ClientFailed(round, ci) {
			return
		}
		c.Model.SetState(models.ScopeAll, decodeDense(payload))
		rng := rand.New(rand.NewSource(env.ClientSeed(round, ci)))
		LocalSGD(c, LocalOpts{
			Params: c.Model.Params(), Epochs: env.Cfg.LocalEpochs, BatchSize: env.Cfg.BatchSize,
			LR: env.LRAt(round), Momentum: env.Cfg.Momentum, WeightDecay: env.Cfg.WeightDecay,
			GradClip: env.Cfg.GradClip,
			Hook:     addProx(mu, globalFlat),
		}, rng)
		up := env.EncodeDense(c.Model.State(models.ScopeAll))
		env.Meter.AddUp(len(up))
		uploads[pos] = decodeDense(up)
	})
	ws, _ := env.TrainSizes(selected)
	if avg := weightedAverage(uploads, ws); avg != nil {
		env.Global.SetState(models.ScopeAll, avg)
	}
}

// SCAFFOLD (Karimireddy et al.) corrects client drift with control
// variates: the server holds c, each client cᵢ; local gradients receive
// c − cᵢ; clients upload both the model delta and the control delta, so
// the per-round payload is ≈2× FedAvg's — the trade-off the SPATL paper
// highlights.
type SCAFFOLD struct {
	c []float32 // server control variate over trainable params
}

// Name implements Algorithm.
func (*SCAFFOLD) Name() string { return "scaffold" }

// Setup implements Algorithm.
func (s *SCAFFOLD) Setup(env *Env) {
	n := nn.ParamCount(env.Global.Params())
	s.c = make([]float32, n)
	for _, c := range env.Clients {
		c.Control = make([]float32, n)
	}
}

// EvalModel implements Algorithm.
func (*SCAFFOLD) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// Round implements Algorithm.
func (s *SCAFFOLD) Round(env *Env, round int, selected []int) {
	globalState := env.Global.State(models.ScopeAll)
	globalFlat := nn.FlattenParams(env.Global.Params())
	statePayload := env.EncodeDense(globalState)
	ctrlPayload := env.EncodeDense(s.c)

	deltaW := make([][]float32, len(selected))
	deltaC := make([][]float32, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		c := env.Clients[ci]
		env.Meter.AddDown(len(statePayload) + len(ctrlPayload))
		if env.ClientFailed(round, ci) {
			return
		}
		c.Model.SetState(models.ScopeAll, decodeDense(statePayload))
		serverC := decodeDense(ctrlPayload)
		rng := rand.New(rand.NewSource(env.ClientSeed(round, ci)))
		steps, _ := LocalSGD(c, LocalOpts{
			Params: c.Model.Params(), Epochs: env.Cfg.LocalEpochs, BatchSize: env.Cfg.BatchSize,
			LR: env.LRAt(round), Momentum: env.Cfg.Momentum, WeightDecay: env.Cfg.WeightDecay,
			GradClip: env.Cfg.GradClip,
			Hook:     addControl(serverC, c.Control),
		}, rng)

		localFlat := nn.FlattenParams(c.Model.Params())
		localState := c.Model.State(models.ScopeAll)
		// Option-II control update: cᵢ⁺ = cᵢ − c + (x_g − x_i)/(K·η_eff).
		// With classical momentum each unit of gradient moves the weights
		// by ≈ η/(1−µ) over time, so the effective step size is scaled
		// accordingly; without the correction the control variates
		// overestimate gradients by 1/(1−µ) and training explodes.
		inv := 1.0 / (float64(steps) * EffectiveLR(env.LRAt(round), env.Cfg.Momentum))
		newCi := make([]float32, len(localFlat))
		dC := make([]float32, len(localFlat))
		for j := range localFlat {
			newCi[j] = c.Control[j] - serverC[j] + float32(float64(globalFlat[j]-localFlat[j])*inv)
			dC[j] = newCi[j] - c.Control[j]
		}
		c.Control = newCi

		dW := make([]float32, len(localState))
		for j := range localState {
			dW[j] = localState[j] - globalState[j]
		}
		upW := env.EncodeDense(dW)
		upC := env.EncodeDense(dC)
		env.Meter.AddUp(len(upW) + len(upC))
		deltaW[pos] = decodeDense(upW)
		deltaC[pos] = decodeDense(upC)
	})

	// Server: x += (1/|S|)·ΣΔw ; c += (1/N)·ΣΔc, where S is the set of
	// clients whose uploads actually arrived.
	survivors := 0
	for _, dw := range deltaW {
		if dw != nil {
			survivors++
		}
	}
	if survivors == 0 {
		return
	}
	invS := 1.0 / float64(survivors)
	newState := append([]float32(nil), globalState...)
	for _, dw := range deltaW {
		if dw == nil {
			continue
		}
		for j, v := range dw {
			newState[j] += float32(invS * float64(v))
		}
	}
	env.Global.SetState(models.ScopeAll, newState)
	invN := 1.0 / float64(env.Cfg.NumClients)
	for _, dc := range deltaC {
		if dc == nil {
			continue
		}
		for j, v := range dc {
			s.c[j] += float32(invN * float64(v))
		}
	}
}

// FedNova (Wang et al.) normalizes each client's cumulative update by
// its local step count before aggregation, removing objective
// inconsistency under heterogeneous local work. This implementation
// includes the momentum variant: clients also ship their momentum
// buffers, which the server averages and redistributes — giving the ≈2×
// per-round uplink the SPATL paper reports for FedNova.
type FedNova struct {
	velocity []float32 // server-averaged momentum over trainable params
}

// Name implements Algorithm.
func (*FedNova) Name() string { return "fednova" }

// Setup implements Algorithm.
func (f *FedNova) Setup(env *Env) {
	f.velocity = make([]float32, nn.ParamCount(env.Global.Params()))
}

// EvalModel implements Algorithm.
func (*FedNova) EvalModel(env *Env, c *Client) *models.SplitModel { return env.Global }

// Round implements Algorithm.
func (f *FedNova) Round(env *Env, round int, selected []int) {
	globalState := env.Global.State(models.ScopeAll)
	statePayload := env.EncodeDense(globalState)
	velPayload := env.EncodeDense(f.velocity)

	ds := make([][]float32, len(selected)) // normalized update d_i over full state
	vs := make([][]float32, len(selected)) // final momentum buffers
	taus := make([]float64, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		c := env.Clients[ci]
		env.Meter.AddDown(len(statePayload) + len(velPayload))
		if env.ClientFailed(round, ci) {
			return
		}
		c.Model.SetState(models.ScopeAll, decodeDense(statePayload))
		rng := rand.New(rand.NewSource(env.ClientSeed(round, ci)))
		steps, vel := LocalSGD(c, LocalOpts{
			Params: c.Model.Params(), Epochs: env.Cfg.LocalEpochs, BatchSize: env.Cfg.BatchSize,
			LR: env.LRAt(round), Momentum: env.Cfg.Momentum, WeightDecay: env.Cfg.WeightDecay,
			GradClip:     env.Cfg.GradClip,
			InitVelocity: decodeDense(velPayload),
		}, rng)
		taus[pos] = float64(steps)
		localState := c.Model.State(models.ScopeAll)
		d := make([]float32, len(localState))
		inv := 1.0 / float64(steps)
		for j := range d {
			d[j] = float32(float64(globalState[j]-localState[j]) * inv)
		}
		upD := env.EncodeDense(d)
		if vel == nil {
			vel = make([]float32, nn.ParamCount(c.Model.Params()))
		}
		upV := env.EncodeDense(vel)
		env.Meter.AddUp(len(upD) + len(upV))
		ds[pos] = decodeDense(upD)
		vs[pos] = decodeDense(upV)
	})

	// Restrict the weighting to clients whose uploads arrived.
	ws, _ := env.TrainSizes(selected)
	total := 0.0
	for i := range ds {
		if ds[i] != nil {
			total += ws[i]
		}
	}
	if total == 0 {
		return
	}
	// τ_eff = Σ pᵢ·τᵢ ; x_g ← x_g − τ_eff · Σ pᵢ·dᵢ.
	var tauEff float64
	for i := range ds {
		if ds[i] != nil {
			tauEff += (ws[i] / total) * taus[i]
		}
	}
	newState := append([]float32(nil), globalState...)
	for i, d := range ds {
		if d == nil {
			continue
		}
		p := ws[i] / total
		for j, v := range d {
			newState[j] -= float32(tauEff * p * float64(v))
		}
	}
	env.Global.SetState(models.ScopeAll, newState)
	// Server momentum = Σ pᵢ·vᵢ.
	for j := range f.velocity {
		f.velocity[j] = 0
	}
	for i, v := range vs {
		if v == nil {
			continue
		}
		p := ws[i] / total
		for j, vv := range v {
			f.velocity[j] += float32(p * float64(vv))
		}
	}
}
