package fl

import (
	"time"

	"spatl/internal/algo"
	"spatl/internal/telemetry"
)

// QuorumSim is the in-process analog of the async FedBuff-style quorum
// server (flnet.ServerConfig.Quorum): each round closes before every
// upload has arrived, and the stragglers' uploads fold into the next
// round instead of being lost. Which uploads miss the close is decided
// deterministically per (seed, round, client) — the same device that
// MassiveSim's OnTimeFrac uses — so unlike the TCP server's
// wall-clock-raced quorum, a seeded QuorumSim run is bitwise
// reproducible and its zero-time journal is byte-identical across
// repetitions.
//
// Journal order per round: round_start; late_upload per straggler payload
// carried over from the previous round (in the order they were deferred);
// then per selected client, in selection order, client_upload or drop;
// quorum_reached; aggregate; round_end. All emission happens from
// sequential code.
type QuorumSim struct {
	Env      *Env
	Agg      algo.Aggregator
	Trainers []algo.Trainer // indexed by client ID

	// OnTimeFrac is the fraction of uploads beating each round's close;
	// 0 or >=1 degrades to the synchronous Sim round.
	OnTimeFrac float64

	pending []lateUpload // stragglers' payloads awaiting the next round
}

// NewQuorumSim wires a quorum simulator, installing telemetry on every
// core as NewSim does.
func NewQuorumSim(env *Env, agg algo.Aggregator, trainers []algo.Trainer, onTimeFrac float64) *QuorumSim {
	if env.Tel != nil {
		cores := make([]any, 0, len(trainers)+1)
		cores = append(cores, agg)
		for _, t := range trainers {
			cores = append(cores, t)
		}
		algo.Wire(env.Tel, cores...)
	}
	return &QuorumSim{Env: env, Agg: agg, Trainers: trainers, OnTimeFrac: onTimeFrac}
}

// Pending reports how many straggler uploads are waiting to fold into
// the next round (uploads deferred at the end of the federation are
// never folded, matching the TCP server's behavior at shutdown).
func (s *QuorumSim) Pending() int { return len(s.pending) }

// Round runs one communication round over the selected clients.
func (s *QuorumSim) Round(round int, selected []int) {
	env := s.Env
	tel := env.Tel
	payload := s.Agg.Broadcast(round)
	sa := beginStreamRound(s.Agg, round, selected)
	tel.Emit(telemetry.RoundStart(round, len(selected), int64(len(payload))))

	// Stragglers from the previous round land first: fold them into
	// this round before its own collect, FedBuff-style. CollectLate
	// bypasses the streaming cursor — a late upload never consumes the
	// slot of a client also selected this round.
	collected := 0
	for _, lu := range s.pending {
		env.Meter.AddUp(len(lu.payload))
		tel.Emit(telemetry.LateUpload(round, int(lu.client), int64(len(lu.payload))))
		if sa != nil {
			sa.CollectLate(round, lu.client, lu.trainSize, lu.payload)
		} else {
			s.Agg.Collect(round, lu.client, lu.trainSize, lu.payload)
		}
		collected++
	}
	s.pending = s.pending[:0]

	ups := make([][]byte, len(selected))
	durs := make([]int64, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		env.Meter.AddDown(len(payload))
		if env.ClientFailed(round, ci) {
			return // crashed after download: upload lost
		}
		t0 := time.Now()
		ups[pos] = s.Trainers[ci].LocalUpdate(round, payload)
		durs[pos] = time.Since(t0).Nanoseconds()
	})

	onTime := 0
	for pos, ci := range selected {
		if ups[pos] == nil {
			if sa != nil {
				sa.MarkAbsent(round, uint32(ci))
			}
			tel.Emit(telemetry.Drop(round, ci))
			continue
		}
		if !massiveOnTime(env.Cfg.Seed, round, ci, s.OnTimeFrac) {
			// The deferred upload folds into the NEXT round's stream, so
			// this round's cursor must not wait for it.
			if sa != nil {
				sa.MarkAbsent(round, uint32(ci))
			}
			// Missed the quorum close: the payload slice is owned by the
			// trainer and reused next round, so defer a copy.
			s.pending = append(s.pending, lateUpload{
				client:    uint32(ci),
				trainSize: env.Clients[ci].Train.Len(),
				payload:   append([]byte(nil), ups[pos]...),
			})
			continue
		}
		onTime++
		env.Meter.AddUp(len(ups[pos]))
		tel.Emit(telemetry.ClientUpload(round, ci, int64(len(ups[pos])), durs[pos]))
		s.Agg.Collect(round, uint32(ci), env.Clients[ci].Train.Len(), ups[pos])
		collected++
	}
	if s.OnTimeFrac > 0 && s.OnTimeFrac < 1 {
		tel.Emit(telemetry.Quorum(round, onTime))
	}
	t0 := time.Now()
	s.Agg.FinishRound(round)
	tel.Emit(telemetry.Aggregate(round, collected, time.Since(t0).Nanoseconds()))
	tel.Emit(telemetry.RoundEnd(round, env.Meter.Up(), env.Meter.Down()))
}
