package fl_test

import (
	"fmt"
	"math/rand"

	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
)

// Example demonstrates the minimal federated-learning loop: build a
// non-IID client population, pick an algorithm, run rounds.
func Example() {
	const clients = 3
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 4, H: 8, W: 8}, clients*60, 1, 2)
	parts := data.DirichletPartition(ds.Y, 4, clients, 0.5, 10, rand.New(rand.NewSource(3)))
	var cd []fl.ClientData
	for _, p := range parts {
		tr, va := ds.Subset(p).Split(0.8)
		cd = append(cd, fl.ClientData{Train: tr, Val: va})
	}
	spec := models.Spec{Arch: "mlp", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.5}
	env := fl.NewEnv(spec, fl.Config{
		NumClients: clients, LocalEpochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9, Seed: 1,
	}, cd)

	res := fl.Run(env, &fl.FedAvg{}, fl.RunOpts{Rounds: 4})
	fmt.Println("learned above chance:", res.BestAcc() > 0.3)
	fmt.Println("uplink measured:", res.Records[len(res.Records)-1].CumUp > 0)
	// Output:
	// learned above chance: true
	// uplink measured: true
}
