package fl

import (
	"math"
	"testing"

	"spatl/internal/nn"
)

func TestLRAtUsesSchedule(t *testing.T) {
	env := testEnv(t, 2, quickCfg(30))
	if got := env.LRAt(0); got != env.Cfg.LR {
		t.Fatalf("without schedule LRAt = %v, want cfg LR %v", got, env.Cfg.LR)
	}
	env.Cfg.LRSchedule = nn.StepLR{Base: 0.1, Gamma: 0.5, Every: 2}
	if got := env.LRAt(0); got != 0.1 {
		t.Fatalf("LRAt(0) = %v", got)
	}
	if got := env.LRAt(2); math.Abs(got-0.05) > 1e-12 {
		t.Fatalf("LRAt(2) = %v", got)
	}
}

func TestScheduledRunStillLearns(t *testing.T) {
	env := testEnv(t, 3, quickCfg(31))
	env.Cfg.LRSchedule = nn.WarmupLR{Steps: 2, Then: nn.CosineLR{Base: 0.05, Min: 0.005, Horizon: 8}}
	res := Run(env, &FedAvg{}, RunOpts{Rounds: 6})
	if res.BestAcc() < 0.40 {
		t.Fatalf("scheduled FedAvg best acc %.3f", res.BestAcc())
	}
}

func TestScheduleAffectsTrajectory(t *testing.T) {
	base := Run(testEnv(t, 2, quickCfg(32)), &FedAvg{}, RunOpts{Rounds: 3})
	env := testEnv(t, 2, quickCfg(32))
	env.Cfg.LRSchedule = nn.ConstantLR(0.001) // much smaller than default
	slow := Run(env, &FedAvg{}, RunOpts{Rounds: 3})
	same := true
	for i := range base.Records {
		if math.Abs(base.Records[i].AvgAcc-slow.Records[i].AvgAcc) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Fatal("changing the LR schedule must change the trajectory")
	}
}
