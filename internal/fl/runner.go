package fl

import (
	"fmt"
	"io"
	"math"

	"spatl/internal/telemetry"
)

// RoundRecord captures the state of the simulation after one round.
type RoundRecord struct {
	Round     int
	AvgAcc    float64   // mean top-1 accuracy across all clients' val sets
	PerClient []float64 // per-client accuracy (index = client ID)
	CumUp     int64     // cumulative client→server bytes
	CumDown   int64     // cumulative server→client bytes
}

// Result is the full trajectory of a federated run.
type Result struct {
	Algo    string
	Records []RoundRecord
}

// FinalAcc returns the last recorded average accuracy.
func (r *Result) FinalAcc() float64 {
	if len(r.Records) == 0 {
		return 0
	}
	return r.Records[len(r.Records)-1].AvgAcc
}

// BestAcc returns the best average accuracy seen.
func (r *Result) BestAcc() float64 {
	best := 0.0
	for _, rec := range r.Records {
		if rec.AvgAcc > best {
			best = rec.AvgAcc
		}
	}
	return best
}

// RoundsToAcc returns the first round (1-based count of completed
// rounds) at which the average accuracy reached target, or -1 if never.
func (r *Result) RoundsToAcc(target float64) int {
	for _, rec := range r.Records {
		if rec.AvgAcc >= target {
			return rec.Round + 1
		}
	}
	return -1
}

// UpAt returns cumulative uplink bytes at the first round reaching the
// target accuracy, or at the end of the run if never reached.
func (r *Result) UpAt(target float64) int64 {
	for _, rec := range r.Records {
		if rec.AvgAcc >= target {
			return rec.CumUp
		}
	}
	if len(r.Records) == 0 {
		return 0
	}
	return r.Records[len(r.Records)-1].CumUp
}

// ConvergedRound applies a plateau heuristic: the first round after
// which the best accuracy improves by less than eps over a trailing
// window. Returns the last round if no plateau is found.
func (r *Result) ConvergedRound(window int, eps float64) int {
	if len(r.Records) == 0 {
		return 0
	}
	best := 0.0
	bestRound := 0
	for _, rec := range r.Records {
		if rec.AvgAcc > best+eps {
			best = rec.AvgAcc
			bestRound = rec.Round
		}
	}
	converged := bestRound + window
	last := r.Records[len(r.Records)-1].Round
	if converged > last {
		converged = last
	}
	return converged + 1
}

// RunOpts configures a federated run.
type RunOpts struct {
	Rounds    int
	TargetAcc float64 // stop early once reached (0 disables)
	EvalEvery int     // evaluate every k rounds (default 1)
	Log       io.Writer
}

// Run executes a full federated-learning experiment: round loop with
// client sampling, algorithm execution, periodic evaluation, early stop
// at the target accuracy, and divergence-tolerant accounting (a diverged
// model simply keeps reporting chance-level accuracy, as in the paper's
// SCAFFOLD rows).
func Run(env *Env, algo Algorithm, opts RunOpts) *Result {
	if opts.EvalEvery <= 0 {
		opts.EvalEvery = 1
	}
	algo.Setup(env)
	res := &Result{Algo: algo.Name()}
	for round := 0; round < opts.Rounds; round++ {
		selected := env.SampleClients()
		algo.Round(env, round, selected)
		if (round+1)%opts.EvalEvery != 0 && round != opts.Rounds-1 {
			continue
		}
		rec := RoundRecord{
			Round:     round,
			PerClient: make([]float64, len(env.Clients)),
			CumUp:     env.Meter.Up(),
			CumDown:   env.Meter.Down(),
		}
		var sum float64
		for i, c := range env.Clients {
			acc := EvalAccuracy(algo.EvalModel(env, c), c.Val, 64)
			if math.IsNaN(acc) {
				acc = 0
			}
			rec.PerClient[i] = acc
			sum += acc
		}
		rec.AvgAcc = sum / float64(len(env.Clients))
		env.Tel.Emit(telemetry.Eval(round, rec.AvgAcc))
		res.Records = append(res.Records, rec)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "[%s] round %3d  acc %.4f  up %.2fMB  down %.2fMB\n",
				algo.Name(), round+1, rec.AvgAcc, float64(rec.CumUp)/(1<<20), float64(rec.CumDown)/(1<<20))
		}
		if opts.TargetAcc > 0 && rec.AvgAcc >= opts.TargetAcc {
			break
		}
	}
	return res
}
