package fl

import (
	"math"
	"testing"
)

func TestClientFailedDeterministicAndRateful(t *testing.T) {
	env := testEnv(t, 4, quickCfg(50))
	env.Cfg.DropRate = 0.5
	// Deterministic.
	for round := 0; round < 3; round++ {
		for ci := 0; ci < 4; ci++ {
			if env.ClientFailed(round, ci) != env.ClientFailed(round, ci) {
				t.Fatal("failure decision must be deterministic")
			}
		}
	}
	// Empirical rate over many (round, client) pairs ≈ DropRate.
	fails := 0
	const trials = 4000
	for round := 0; round < trials/4; round++ {
		for ci := 0; ci < 4; ci++ {
			if env.ClientFailed(round, ci) {
				fails++
			}
		}
	}
	rate := float64(fails) / trials
	if math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("empirical drop rate %.3f, want ≈0.5", rate)
	}
	// Disabled by default.
	env.Cfg.DropRate = 0
	if env.ClientFailed(0, 0) {
		t.Fatal("DropRate 0 must never fail")
	}
}

func TestAlgorithmsSurvivePartialFailures(t *testing.T) {
	for _, algo := range []Algorithm{&FedAvg{}, &FedProx{}, &SCAFFOLD{}, &FedNova{}} {
		t.Run(algo.Name(), func(t *testing.T) {
			env := testEnv(t, 4, quickCfg(51))
			env.Cfg.DropRate = 0.4
			res := Run(env, algo, RunOpts{Rounds: 4})
			if len(res.Records) != 4 {
				t.Fatal("run did not complete under failures")
			}
			for _, rec := range res.Records {
				if math.IsNaN(rec.AvgAcc) {
					t.Fatal("failure injection produced NaN accuracy")
				}
			}
			// Should still learn despite losing 40% of uploads.
			if res.BestAcc() < 0.30 {
				t.Fatalf("%s best acc %.3f under 40%% drops", algo.Name(), res.BestAcc())
			}
		})
	}
}

func TestTotalFailureRoundKeepsGlobalModel(t *testing.T) {
	env := testEnv(t, 3, quickCfg(52))
	env.Cfg.DropRate = 1.0 // everything is lost
	before := env.Global.State(0)
	res := Run(env, &FedAvg{}, RunOpts{Rounds: 2})
	after := env.Global.State(0)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("with all uploads lost, the global model must not change")
		}
	}
	if len(res.Records) != 2 {
		t.Fatal("run must complete even when every upload is lost")
	}
}

func TestFailuresReduceUplinkOnly(t *testing.T) {
	// Failed clients still download (they crash afterwards), so failures
	// shrink uplink but not downlink.
	clean := testEnv(t, 4, quickCfg(53))
	resClean := Run(clean, &FedAvg{}, RunOpts{Rounds: 2})
	lossy := testEnv(t, 4, quickCfg(53))
	lossy.Cfg.DropRate = 0.6
	resLossy := Run(lossy, &FedAvg{}, RunOpts{Rounds: 2})
	cl, lo := resClean.Records[1], resLossy.Records[1]
	if lo.CumUp >= cl.CumUp {
		t.Fatalf("lossy uplink %d should be below clean %d", lo.CumUp, cl.CumUp)
	}
	if lo.CumDown != cl.CumDown {
		t.Fatalf("downlink should be unchanged: %d vs %d", lo.CumDown, cl.CumDown)
	}
}

func TestHalfPrecisionHalvesTrafficAndLearns(t *testing.T) {
	full := testEnv(t, 3, quickCfg(60))
	resFull := Run(full, &FedAvg{}, RunOpts{Rounds: 3})
	half := testEnv(t, 3, quickCfg(60))
	half.Cfg.HalfPrecision = true
	resHalf := Run(half, &FedAvg{}, RunOpts{Rounds: 3})

	ratio := float64(resHalf.Records[2].CumUp) / float64(resFull.Records[2].CumUp)
	if ratio > 0.55 || ratio < 0.45 {
		t.Fatalf("half-precision uplink ratio %.3f, want ≈0.5", ratio)
	}
	if resHalf.BestAcc() < 0.40 {
		t.Fatalf("half-precision FedAvg best acc %.3f", resHalf.BestAcc())
	}
}

func TestHalfPrecisionSCAFFOLD(t *testing.T) {
	env := testEnv(t, 3, quickCfg(61))
	env.Cfg.HalfPrecision = true
	res := Run(env, &SCAFFOLD{}, RunOpts{Rounds: 3})
	if res.BestAcc() < 0.30 {
		t.Fatalf("half-precision SCAFFOLD best acc %.3f", res.BestAcc())
	}
}
