package fl

import (
	"bytes"
	"math"
	"testing"

	"spatl/internal/algo"
	"spatl/internal/models"
	"spatl/internal/telemetry"
)

// runFederation drives a fresh FedAvg federation for the given shard
// count (0 = flat Sim) and returns the final global state.
func runFederation(t *testing.T, shards, rounds int) []float32 {
	t.Helper()
	cfg := quickCfg(19)
	cfg.LocalEpochs = 1
	cfg.DropRate = 0.25 // exercise the drop path in both transports
	env := testEnv(t, 6, cfg)
	acfg := env.AlgoConfig()
	trainers := make([]algo.Trainer, len(env.Clients))
	for i, c := range env.Clients {
		trainers[i] = algo.NewFedAvgTrainer(c, acfg)
	}
	agg := algo.NewFedAvgAggregator(env.Global, acfg)
	sel := make([]int, env.Cfg.NumClients)
	for i := range sel {
		sel[i] = i
	}
	if shards == 0 {
		sim := NewSim(env, agg, trainers)
		for r := 0; r < rounds; r++ {
			sim.Round(r, sel)
		}
	} else {
		sim := NewShardedSim(env, agg, trainers, shards)
		for r := 0; r < rounds; r++ {
			sim.Round(r, sel)
		}
	}
	return env.Global.State(models.ScopeAll)
}

// TestShardedSimMatchesFlat: the shard-pooling round is bitwise
// identical to the flat Sim round at every shard count — the tree is a
// collection topology, not an arithmetic change.
func TestShardedSimMatchesFlat(t *testing.T) {
	const rounds = 2
	want := runFederation(t, 0, rounds)
	for _, shards := range []int{1, 3, 4} {
		got := runFederation(t, shards, rounds)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: state length %d vs %d", shards, len(got), len(want))
		}
		for j := range want {
			if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
				t.Fatalf("shards=%d: state[%d] differs bitwise: %x vs %x",
					shards, j, math.Float32bits(got[j]), math.Float32bits(want[j]))
			}
		}
	}
}

// TestMassiveShardedMatchesFlat: the synthetic massive federation folds
// to the identical global state whether uploads flow through the shard
// wire format or the flat collect path, and reruns are deterministic.
func TestMassiveShardedMatchesFlat(t *testing.T) {
	base := MassiveConfig{Clients: 2000, PerRound: 300, Rounds: 2, Seed: 9}
	flat := base
	flat.FlatCollect = true
	fr, err := RunMassive(flat)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 7, 32} {
		cfg := base
		cfg.Shards = shards
		sr, err := RunMassive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Folded != fr.Folded {
			t.Fatalf("shards=%d: folded %d vs flat %d", shards, sr.Folded, fr.Folded)
		}
		if len(sr.FinalState) != len(fr.FinalState) {
			t.Fatalf("shards=%d: state length mismatch", shards)
		}
		for j := range fr.FinalState {
			if math.Float32bits(sr.FinalState[j]) != math.Float32bits(fr.FinalState[j]) {
				t.Fatalf("shards=%d: state[%d] differs bitwise", shards, j)
			}
		}
		again, err := RunMassive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for j := range sr.FinalState {
			if math.Float32bits(again.FinalState[j]) != math.Float32bits(sr.FinalState[j]) {
				t.Fatalf("shards=%d: rerun not deterministic at state[%d]", shards, j)
			}
		}
	}
}

// TestMassiveHundredThousandClients: a 100k-client federation completes
// a full sampled round in-process through the sharded tree.
func TestMassiveHundredThousandClients(t *testing.T) {
	if testing.Short() {
		t.Skip("large allocation")
	}
	res, err := RunMassive(MassiveConfig{
		Clients: 100_000, PerRound: 5_000, Shards: 64, Rounds: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Folded != 5_000 {
		t.Fatalf("folded %d uploads, want 5000", res.Folded)
	}
	if res.ShardPushes == 0 || len(res.FinalState) == 0 {
		t.Fatalf("round did not complete: pushes=%d stateLen=%d", res.ShardPushes, len(res.FinalState))
	}
}

// TestMassiveQuorumLateFold: with OnTimeFrac < 1 rounds close at quorum
// and stragglers fold into the next round — visible in the result, the
// journal (quorum_reached, late_upload) and the telemetry registry.
func TestMassiveQuorumLateFold(t *testing.T) {
	var journal bytes.Buffer
	tel := telemetry.New(&journal)
	tel.Journal.SetZeroTime(true)
	res, err := RunMassive(MassiveConfig{
		Clients: 500, PerRound: 120, Shards: 8, Rounds: 3,
		OnTimeFrac: 0.7, Seed: 21, Tel: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Late == 0 {
		t.Fatal("no late uploads at OnTimeFrac=0.7")
	}
	if err := tel.Journal.Flush(); err != nil {
		t.Fatal(err)
	}
	j := journal.Bytes()
	if !bytes.Contains(j, []byte(`"ev":"quorum_reached"`)) {
		t.Fatalf("journal records no quorum_reached events:\n%s", j)
	}
	if !bytes.Contains(j, []byte(`"ev":"late_upload"`)) {
		t.Fatalf("journal records no late_upload events:\n%s", j)
	}
	snap := tel.Reg.Snapshot()
	if snap.Counters["fl.late_uploads"] != res.Late {
		t.Fatalf("registry sees %d late uploads, result %d",
			snap.Counters["fl.late_uploads"], res.Late)
	}
	// Late folds count toward Folded too: with final-round stragglers
	// never landing, total folds stay below total samples.
	if res.Folded >= int64(3*120) {
		t.Fatalf("folded %d of %d sampled — final-round stragglers should be unfolded", res.Folded, 3*120)
	}
}
