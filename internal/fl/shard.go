package fl

import (
	"time"

	"spatl/internal/algo"
	"spatl/internal/telemetry"
)

// ShardedSim is the in-process analog of the two-level aggregation tree
// (internal/flnet TreeServer + Edge): clients are partitioned into
// NumShards contiguous shards of the client-index order, each shard
// pools its round uploads into an algo.ShardBuffer — the same wire
// format an edge aggregator forwards — and the pooled payloads fold
// into the aggregator in fixed shard-ID order. Because selections are
// sorted ascending and shards are contiguous, shard-major fold order
// equals flat selection order, so a ShardedSim round is bitwise
// identical to Sim.Round at any shard count.
//
// Journal events follow the tree root's canonical order: round_start;
// then per shard, per selected client client_upload or drop followed by
// one shard_push; then aggregate and round_end. All emission happens
// from this sequential code, so a seeded zero-time run's journal is
// byte-identical to the TCP tree's (see the cross-transport test).
// Client-facing traffic meters into comm up/down exactly as Sim meters
// it; the pooled shard payloads and the per-edge broadcasts go to the
// meter's relay counters.
type ShardedSim struct {
	Env       *Env
	Agg       algo.Aggregator
	Trainers  []algo.Trainer // indexed by client ID
	NumShards int
}

// NewShardedSim wires a sharded simulator; numShards is clamped to at
// least 1 and telemetry is installed on every core as in NewSim.
func NewShardedSim(env *Env, agg algo.Aggregator, trainers []algo.Trainer, numShards int) *ShardedSim {
	if numShards < 1 {
		numShards = 1
	}
	if env.Tel != nil {
		cores := make([]any, 0, len(trainers)+1)
		cores = append(cores, agg)
		for _, t := range trainers {
			cores = append(cores, t)
		}
		algo.Wire(env.Tel, cores...)
	}
	return &ShardedSim{Env: env, Agg: agg, Trainers: trainers, NumShards: numShards}
}

// Round runs one communication round over the selected clients
// (sorted ascending) through the shard-pooling path.
func (s *ShardedSim) Round(round int, selected []int) {
	env := s.Env
	tel := env.Tel
	total := env.Cfg.NumClients
	payload := s.Agg.Broadcast(round)
	sa := beginStreamRound(s.Agg, round, selected)
	tel.Emit(telemetry.RoundStart(round, len(selected), int64(len(payload))))
	ups := make([][]byte, len(selected))
	durs := make([]int64, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		env.Meter.AddDown(len(payload))
		if env.ClientFailed(round, ci) {
			return // crashed after download: upload lost
		}
		t0 := time.Now()
		ups[pos] = s.Trainers[ci].LocalUpdate(round, payload)
		durs[pos] = time.Since(t0).Nanoseconds()
	})

	collected := 0
	var sb algo.ShardBuffer
	var entries []algo.Upload
	pos := 0
	for sh := 0; sh < s.NumShards; sh++ {
		_, shardHi := algo.ShardRange(sh, total, s.NumShards)
		lo := pos
		for pos < len(selected) && selected[pos] < shardHi {
			pos++
		}
		if pos == lo {
			continue // no clients sampled from this shard
		}
		env.Meter.AddRelayDown(len(payload)) // one broadcast per participating edge
		sb.Reset()
		for p := lo; p < pos; p++ {
			ci := selected[p]
			if ups[p] == nil {
				if sa != nil {
					sa.MarkAbsent(round, uint32(ci))
				}
				tel.Emit(telemetry.Drop(round, ci))
				continue
			}
			env.Meter.AddUp(len(ups[p]))
			tel.Emit(telemetry.ClientUpload(round, ci, int64(len(ups[p])), durs[p]))
			sb.Add(uint32(ci), env.Clients[ci].Train.Len(), ups[p])
		}
		env.Meter.AddRelayUp(len(sb.Payload()))
		tel.Emit(telemetry.ShardPush(round, sh, sb.Len(), int64(len(sb.Payload()))))
		// Fold through the pooled wire format — the root's code path.
		entries, _ = algo.ShardEntries(entries[:0], sb.Payload())
		algo.CollectAll(s.Agg, round, entries)
		collected += len(entries)
	}
	t0 := time.Now()
	s.Agg.FinishRound(round)
	tel.Emit(telemetry.Aggregate(round, collected, time.Since(t0).Nanoseconds()))
	tel.Emit(telemetry.RoundEnd(round, env.Meter.Up(), env.Meter.Down()))
}
