package fl

import (
	"fmt"
	"time"

	"spatl/internal/algo"
	"spatl/internal/telemetry"
)

// Driver is one in-process round transport: it moves the payloads of a
// single communication round between an aggregator and the selected
// clients' trainers. Sim (flat), ShardedSim (collection tree) and
// QuorumSim (deterministic async quorum) all implement it; NewDriver
// picks the one the environment's Topology asks for, so algorithms wire
// their cores once and run over any in-process topology.
type Driver interface {
	Round(round int, selected []int)
}

// NewDriver wires the topology-selected round driver for the
// environment. The zero Topology yields the flat Sim — the historical
// behavior of every algorithm's Setup.
func NewDriver(env *Env, agg algo.Aggregator, trainers []algo.Trainer) Driver {
	switch env.Topo.Kind {
	case "", TopoFlat:
		return NewSim(env, agg, trainers)
	case TopoSharded:
		return NewShardedSim(env, agg, trainers, env.Topo.Shards)
	case TopoQuorum:
		return NewQuorumSim(env, agg, trainers, env.Topo.OnTimeFrac)
	}
	panic(fmt.Sprintf("fl: unknown topology kind %q", env.Topo.Kind))
}

// beginStreamRound announces the round's selection to a streaming
// aggregator so uploads fold on arrival with zero staging (every
// in-process driver collects in ascending client order). Returns nil
// for aggregators outside this package's streaming family.
func beginStreamRound(agg algo.Aggregator, round int, selected []int) algo.StreamingAggregator {
	sa, ok := agg.(algo.StreamingAggregator)
	if !ok {
		return nil
	}
	ids := make([]uint32, len(selected))
	for i, ci := range selected {
		ids[i] = uint32(ci)
	}
	sa.BeginRound(round, ids)
	return sa
}

// Sim is the in-process transport: it drives a transport-agnostic
// algorithm core (algo.Aggregator + one algo.Trainer per client) through
// one communication round, adding what a simulated network contributes —
// comm.Meter byte accounting, deterministic failure injection
// (Config.DropRate) and parallel client execution.
//
// Uploads are collected sequentially in selection order after the
// parallel training phase, so aggregation stays deterministic regardless
// of scheduling. Journal events follow the same rule: the parallel phase
// only measures durations into a slice; every Emit happens from this
// sequential code, in selection order, which is what makes a seeded
// run's journal reproducible and comparable with flnet's (see the
// cross-transport journal test).
type Sim struct {
	Env      *Env
	Agg      algo.Aggregator
	Trainers []algo.Trainer // indexed by client ID
}

// Round runs one communication round over the selected clients.
func (s *Sim) Round(round int, selected []int) {
	env := s.Env
	tel := env.Tel
	payload := s.Agg.Broadcast(round)
	sa := beginStreamRound(s.Agg, round, selected)
	tel.Emit(telemetry.RoundStart(round, len(selected), int64(len(payload))))
	ups := make([][]byte, len(selected))
	durs := make([]int64, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		env.Meter.AddDown(len(payload))
		if env.ClientFailed(round, ci) {
			return // crashed after download: upload lost
		}
		t0 := time.Now()
		ups[pos] = s.Trainers[ci].LocalUpdate(round, payload)
		durs[pos] = time.Since(t0).Nanoseconds()
	})
	collected := 0
	for pos, ci := range selected {
		if ups[pos] == nil {
			if sa != nil {
				sa.MarkAbsent(round, uint32(ci))
			}
			tel.Emit(telemetry.Drop(round, ci))
			continue
		}
		env.Meter.AddUp(len(ups[pos]))
		tel.Emit(telemetry.ClientUpload(round, ci, int64(len(ups[pos])), durs[pos]))
		s.Agg.Collect(round, uint32(ci), env.Clients[ci].Train.Len(), ups[pos])
		collected++
	}
	t0 := time.Now()
	s.Agg.FinishRound(round)
	tel.Emit(telemetry.Aggregate(round, collected, time.Since(t0).Nanoseconds()))
	tel.Emit(telemetry.RoundEnd(round, env.Meter.Up(), env.Meter.Down()))
}

// NewSim wires an aggregator and per-client trainers into a Sim,
// installing the environment's telemetry set (if any) on every core.
func NewSim(env *Env, agg algo.Aggregator, trainers []algo.Trainer) *Sim {
	if env.Tel != nil {
		cores := make([]any, 0, len(trainers)+1)
		cores = append(cores, agg)
		for _, t := range trainers {
			cores = append(cores, t)
		}
		algo.Wire(env.Tel, cores...)
	}
	return &Sim{Env: env, Agg: agg, Trainers: trainers}
}
