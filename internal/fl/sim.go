package fl

import (
	"spatl/internal/algo"
)

// Sim is the in-process transport: it drives a transport-agnostic
// algorithm core (algo.Aggregator + one algo.Trainer per client) through
// one communication round, adding what a simulated network contributes —
// comm.Meter byte accounting, deterministic failure injection
// (Config.DropRate) and parallel client execution.
//
// Uploads are collected sequentially in selection order after the
// parallel training phase, so aggregation stays deterministic regardless
// of scheduling.
type Sim struct {
	Env      *Env
	Agg      algo.Aggregator
	Trainers []algo.Trainer // indexed by client ID
}

// Round runs one communication round over the selected clients.
func (s *Sim) Round(round int, selected []int) {
	env := s.Env
	payload := s.Agg.Broadcast(round)
	ups := make([][]byte, len(selected))
	ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		env.Meter.AddDown(len(payload))
		if env.ClientFailed(round, ci) {
			return // crashed after download: upload lost
		}
		ups[pos] = s.Trainers[ci].LocalUpdate(round, payload)
	})
	for pos, ci := range selected {
		if ups[pos] == nil {
			continue
		}
		env.Meter.AddUp(len(ups[pos]))
		s.Agg.Collect(round, uint32(ci), env.Clients[ci].Train.Len(), ups[pos])
	}
	s.Agg.FinishRound(round)
}

// NewSim wires an aggregator and per-client trainers into a Sim.
func NewSim(env *Env, agg algo.Aggregator, trainers []algo.Trainer) *Sim {
	return &Sim{Env: env, Agg: agg, Trainers: trainers}
}
