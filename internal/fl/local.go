package fl

import (
	"math/rand"

	"spatl/internal/algo"
	"spatl/internal/data"
	"spatl/internal/eval"
	"spatl/internal/models"
	"spatl/internal/tensor"
)

// LocalOpts configures one client's local update phase; it aliases the
// transport-agnostic algo.LocalOpts.
type LocalOpts = algo.LocalOpts

// LocalSGD runs minibatch SGD on the client's model and returns the
// number of optimizer steps taken and the final momentum buffers. It
// delegates to algo.LocalSGD — the same local update every transport
// runs.
func LocalSGD(c *Client, opts LocalOpts, rng *rand.Rand) (steps int, velocity []float32) {
	return algo.LocalSGD(c, opts, rng)
}

// EvalAccuracy computes top-1 accuracy of m on ds in evaluation mode,
// batching for throughput.
func EvalAccuracy(m *models.SplitModel, ds *data.Dataset, batchSize int) float64 {
	return eval.Accuracy(m, ds, batchSize)
}

// EvalLoss computes mean cross-entropy of m on ds in evaluation mode.
func EvalLoss(m *models.SplitModel, ds *data.Dataset, batchSize int) float64 {
	return eval.Loss(m, ds, batchSize)
}

// ParallelClients runs fn for each selected client index concurrently on
// a bounded worker pool. fn receives positions into selected, so callers
// can fill result slices without locking.
func ParallelClients(selected []int, fn func(pos int)) {
	tensor.Parallel(len(selected), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
