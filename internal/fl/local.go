package fl

import (
	"math/rand"

	"spatl/internal/data"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/tensor"
)

// LocalOpts configures one client's local update phase.
type LocalOpts struct {
	// Params is the parameter set to train (whole model for baselines,
	// encoder+predictor or predictor-only for SPATL variants).
	Params      []*nn.Param
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	GradClip    float64
	// Hook, when non-nil, runs after each backward pass and before the
	// optimizer step; FedProx adds its proximal term here and
	// SCAFFOLD/SPATL apply control-variate gradient correction.
	Hook func(params []*nn.Param)
	// InitVelocity warm-starts the momentum buffers (FedNova).
	InitVelocity []float32
	// FreezeEncoder runs the encoder in evaluation mode and trains only
	// the predictor — SPATL's cold-start transfer path (eq. 4). The
	// encoder's weights and BatchNorm statistics are untouched.
	FreezeEncoder bool
}

// LocalSGD runs minibatch SGD on the client's model and returns the
// number of optimizer steps taken and the final momentum buffers.
func LocalSGD(c *Client, opts LocalOpts, rng *rand.Rand) (steps int, velocity []float32) {
	opt := nn.NewSGD(opts.Params, opts.LR, opts.Momentum, opts.WeightDecay)
	if opts.InitVelocity != nil && opts.Momentum != 0 {
		opt.SetVelocity(opts.InitVelocity)
	}
	allParams := c.Model.Params()
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for _, idx := range c.Train.Batches(rng, opts.BatchSize) {
			x, y := c.Train.Batch(idx)
			nn.ZeroGrad(allParams)
			var out *tensor.Tensor
			if opts.FreezeEncoder {
				h := c.Model.Encoder.Forward(x, false)
				out = c.Model.Predictor.Forward(h, true)
			} else {
				out = c.Model.Forward(x, true)
			}
			_, grad := nn.SoftmaxCrossEntropy(out, y)
			if opts.FreezeEncoder {
				c.Model.Predictor.Backward(grad)
			} else {
				c.Model.Backward(grad)
			}
			if opts.Hook != nil {
				opts.Hook(opts.Params)
			}
			if opts.GradClip > 0 {
				nn.ClipGradNorm(opts.Params, opts.GradClip)
			}
			opt.Step()
			steps++
		}
	}
	return steps, opt.Velocity()
}

// EvalAccuracy computes top-1 accuracy of m on ds in evaluation mode,
// batching for throughput.
func EvalAccuracy(m *models.SplitModel, ds *data.Dataset, batchSize int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	correct := 0
	for lo := 0; lo < ds.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, y := ds.Batch(idx)
		out := m.Forward(x, false)
		for i := 0; i < len(y); i++ {
			row := out.Data[i*out.Dim(1) : (i+1)*out.Dim(1)]
			best, bi := row[0], 0
			for j, v := range row[1:] {
				if v > best {
					best, bi = v, j+1
				}
			}
			if bi == y[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(ds.Len())
}

// EvalLoss computes mean cross-entropy of m on ds in evaluation mode.
func EvalLoss(m *models.SplitModel, ds *data.Dataset, batchSize int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	var total float64
	for lo := 0; lo < ds.Len(); lo += batchSize {
		hi := lo + batchSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		x, y := ds.Batch(idx)
		out := m.Forward(x, false)
		loss, _ := nn.SoftmaxCrossEntropy(out, y)
		total += loss * float64(len(y))
	}
	return total / float64(ds.Len())
}

// ParallelClients runs fn for each selected client index concurrently on
// a bounded worker pool. fn receives positions into selected, so callers
// can fill result slices without locking.
func ParallelClients(selected []int, fn func(pos int)) {
	tensor.Parallel(len(selected), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
