package fl

import (
	"math"
	"math/rand"
	"testing"
)

// TestWeightedAverageMatchesSerial demands the parallel reduction be
// bitwise identical to the retained serial reference across sizes that
// exercise chunk boundaries, including nil states from failure
// injection.
func TestWeightedAverageMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 7, 63, 64, 65, 1000, 4097} {
		for _, clients := range []int{1, 3, 10} {
			states := make([][]float32, clients)
			weights := make([]float64, clients)
			for c := range states {
				if c%4 == 3 {
					continue // dropped upload
				}
				st := make([]float32, n)
				for i := range st {
					st[i] = float32(rng.NormFloat64())
				}
				states[c] = st
				weights[c] = float64(1 + rng.Intn(100))
			}
			got := weightedAverage(states, weights)
			want := weightedAverageSerial(states, weights)
			if (got == nil) != (want == nil) {
				t.Fatalf("n=%d clients=%d: nil mismatch", n, clients)
			}
			for i := range want {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("n=%d clients=%d: index %d differs bitwise: %x vs %x",
						n, clients, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

// TestWeightedAverageAllNil covers the every-client-dropped round.
func TestWeightedAverageAllNil(t *testing.T) {
	if got := weightedAverage(make([][]float32, 4), make([]float64, 4)); got != nil {
		t.Fatalf("expected nil, got %v", got)
	}
}
