package fl

import (
	"math"
	"math/rand"
	"testing"

	"spatl/internal/data"
	"spatl/internal/models"
	"spatl/internal/nn"
)

func TestEffectiveLR(t *testing.T) {
	if EffectiveLR(0.1, 0) != 0.1 {
		t.Fatal("no momentum: effective = lr")
	}
	if math.Abs(EffectiveLR(0.1, 0.9)-1.0) > 1e-12 {
		t.Fatalf("momentum 0.9: effective = %v, want 1.0", EffectiveLR(0.1, 0.9))
	}
	if EffectiveLR(0.1, 1.5) != 0.1 {
		t.Fatal("out-of-range momentum must fall back to lr")
	}
}

func TestFedNovaHandlesUnevenDataSizes(t *testing.T) {
	// Clients with very different shard sizes take different numbers of
	// local steps; FedNova's τ-normalized aggregation must stay stable.
	cfg := quickCfg(40)
	cfg.NumClients = 3
	cfg = cfg.WithDefaults()
	spec := models.Spec{Arch: "mlp", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.5}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 4, H: 8, W: 8, Noise: 0.25}, 300, 11, 12)
	sizes := []int{150, 60, 20}
	var cd []ClientData
	off := 0
	for _, n := range sizes {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = off + i
		}
		off += n
		tr, va := ds.Subset(idx).Split(0.8)
		cd = append(cd, ClientData{Train: tr, Val: va})
	}
	env := NewEnv(spec, cfg, cd)
	res := Run(env, &FedNova{}, RunOpts{Rounds: 5})
	if res.BestAcc() < 0.35 {
		t.Fatalf("FedNova with uneven shards best acc %.3f", res.BestAcc())
	}
	for _, rec := range res.Records {
		if math.IsNaN(rec.AvgAcc) {
			t.Fatal("FedNova produced NaN accuracy")
		}
	}
}

func TestTinyClientDoesNotPanic(t *testing.T) {
	// A client with fewer samples than the batch size must still train.
	cfg := quickCfg(41)
	cfg.NumClients = 2
	cfg.BatchSize = 64
	cfg = cfg.WithDefaults()
	spec := models.Spec{Arch: "mlp", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.5}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 4, H: 8, W: 8}, 40, 13, 14)
	cd := []ClientData{
		{Train: ds.Subset([]int{0, 1, 2}), Val: ds.Subset([]int{3, 4})},
		{Train: ds.Subset(rangeInts(5, 35)), Val: ds.Subset(rangeInts(35, 40))},
	}
	env := NewEnv(spec, cfg, cd)
	res := Run(env, &FedAvg{}, RunOpts{Rounds: 2})
	if len(res.Records) != 2 {
		t.Fatal("run did not complete")
	}
}

func rangeInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

func TestSCAFFOLDControlVariatesSumProperty(t *testing.T) {
	// After a full-participation round, the server control variate must
	// equal the mean of the client control variates (eq. 11 with S = N).
	env := testEnv(t, 3, quickCfg(42))
	s := &SCAFFOLD{}
	s.Setup(env)
	s.Round(env, 0, []int{0, 1, 2})
	sc := s.ControlVariate()
	n := len(sc)
	for j := 0; j < n; j += n/7 + 1 {
		var mean float64
		for _, c := range env.Clients {
			mean += float64(c.Control[j])
		}
		mean /= 3
		if math.Abs(mean-float64(sc[j])) > 1e-4*(1+math.Abs(mean)) {
			t.Fatalf("server c[%d] = %v, client mean = %v", j, sc[j], mean)
		}
	}
}

func TestAggregationWeightedBySize(t *testing.T) {
	// weightedAverage must weight by the provided sizes: verify with a
	// contrived two-client state.
	got := weightedAverage([][]float32{{0}, {10}}, []float64{9, 1})
	if math.Abs(float64(got[0])-1.0) > 1e-6 {
		t.Fatalf("weighted average %v, want 1.0", got[0])
	}
}

func TestFreezeEncoderKeepsBNStats(t *testing.T) {
	env := testEnv(t, 2, quickCfg(43))
	// Use a conv model so BN exists.
	spec := models.Spec{Arch: "resnet20", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.25}
	m := models.Build(spec, 3)
	c := env.Clients[0]
	c.Model = m
	before := m.State(models.ScopeEncoder)
	LocalSGD(c, LocalOpts{
		Params: m.PredictorParams(), Epochs: 1, BatchSize: 8, LR: 0.05,
		FreezeEncoder: true,
	}, rand.New(rand.NewSource(1)))
	after := m.State(models.ScopeEncoder)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("frozen encoder must not change (including BN statistics)")
		}
	}
	// Predictor must have moved.
	_ = nn.ParamCount(m.PredictorParams())
}
