package hetero

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"spatl/internal/comm"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/nn"
)

// testEnv builds a small but real FL environment over the synthetic
// CIFAR task, Dirichlet-partitioned across clients.
func testEnv(t testing.TB, arch string, width float64, numClients int, seed int64) *fl.Env {
	t.Helper()
	cfg := fl.Config{
		NumClients: numClients, SampleRatio: 1, LocalEpochs: 1, BatchSize: 16,
		LR: 0.05, Momentum: 0.9, Seed: seed,
	}
	spec := models.Spec{Arch: arch, Classes: 4, InC: 3, H: 8, W: 8, Width: width}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 4, H: 8, W: 8, Noise: 0.25}, numClients*60, 11, 12)
	parts := data.DirichletPartition(ds.Y, 4, numClients, 0.5, 10, rand.New(rand.NewSource(seed+5)))
	var cd []fl.ClientData
	for _, p := range parts {
		sub := ds.Subset(p)
		tr, va := sub.Split(0.8)
		cd = append(cd, fl.ClientData{Train: tr, Val: va})
	}
	return fl.NewEnv(spec, cfg, cd)
}

// runRounds drives an algorithm for the given number of rounds with
// full participation, mirroring fl.Run minus evaluation.
func runRounds(env *fl.Env, alg fl.Algorithm, rounds int) {
	alg.Setup(env)
	for r := 0; r < rounds; r++ {
		alg.Round(env, r, env.SampleClients())
	}
}

func f32Bytes(v []float32) []byte {
	buf := make([]byte, 0, 4*len(v))
	for _, x := range v {
		b := comm.EncodeDense([]float32{x})
		buf = append(buf, b[5:9]...)
	}
	return buf
}

func TestSliceSpecInvariants(t *testing.T) {
	m := models.Build(models.Spec{Arch: "resnet20", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.25}, 7)
	total := m.StateLen(models.ScopeAll)
	trainable := nn.ParamCount(m.Params())
	widths := []float64{0.25, 0.5, 1.0}
	cover := map[float64][]bool{}
	for _, w := range widths {
		s := NewSliceSpec(m, w)
		if s.StateLen != total {
			t.Fatalf("w=%g: StateLen %d, want %d", w, s.StateLen, total)
		}
		// Every SliceSpec is a valid sparse layout.
		sp := comm.Sparse{Ranges: s.Ranges, Values: make([]float32, s.Count())}
		if err := sp.Validate(); err != nil {
			t.Fatalf("w=%g: %v", w, err)
		}
		bits := make([]bool, total)
		for _, r := range s.Ranges {
			for i := r.Start; i < r.Start+r.Len; i++ {
				bits[i] = true
			}
		}
		// BN running statistics and everything past the trainable
		// parameters always ship.
		for i := trainable; i < total; i++ {
			if !bits[i] {
				t.Fatalf("w=%g: BN statistic index %d not covered", w, i)
			}
		}
		cover[w] = bits
	}
	if s := NewSliceSpec(m, 1.0); !s.Full() {
		t.Fatal("width 1.0 must cover the full state")
	}
	if c := NewSliceSpec(m, 0.25).Count(); c >= NewSliceSpec(m, 0.5).Count() {
		t.Fatalf("narrower slice not smaller: %d", c)
	}
	// Nesting: a narrower width's coverage is a subset of a wider one's.
	for i := 0; i < total; i++ {
		if cover[0.25][i] && !cover[0.5][i] {
			t.Fatalf("index %d covered at 0.25 but not 0.5", i)
		}
		if cover[0.5][i] && !cover[1.0][i] {
			t.Fatalf("index %d covered at 0.5 but not 1.0", i)
		}
	}
	// Deterministic: the spec is a pure function of (arch, width).
	a, b := NewSliceSpec(m, 0.5), NewSliceSpec(m, 0.5)
	if !a.RangesEqual(b.Ranges) {
		t.Fatal("same (arch, width) produced different slices")
	}
	// No prunable units (mlp): always full coverage.
	mlp := models.Build(models.Spec{Arch: "mlp", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.5}, 7)
	if s := NewSliceSpec(mlp, 0.25); !s.Full() {
		t.Fatal("mlp slice must be full at any width")
	}
}

// TestDegenerateEquivalenceFedAvg pins the tentpole's collapse
// property: one cluster at full width IS FedAvg, bitwise, at any
// GOMAXPROCS.
func TestDegenerateEquivalenceFedAvg(t *testing.T) {
	const clients, rounds, seed = 4, 3, 21
	run := func(alg fl.Algorithm, procs int) []float32 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		env := testEnv(t, "mlp", 0.5, clients, seed)
		runRounds(env, alg, rounds)
		return env.Global.State(models.ScopeAll)
	}
	ref := run(&fl.FedAvg{}, runtime.NumCPU())
	for _, procs := range []int{1, runtime.NumCPU()} {
		got := run(&FL{Opts: Options{Clusters: 1, Widths: []float64{1}}}, procs)
		if !bytes.Equal(f32Bytes(got), f32Bytes(ref)) {
			t.Fatalf("degenerate hetero differs from FedAvg at GOMAXPROCS=%d", procs)
		}
	}
}

// TestHeteroDeterministicAcrossProcs pins the non-degenerate case: a
// 2-cluster, 3-width federation reproduces bitwise at any GOMAXPROCS.
func TestHeteroDeterministicAcrossProcs(t *testing.T) {
	const clients, rounds, seed = 6, 3, 33
	opts := Options{Clusters: 2, Widths: []float64{0.25, 0.5, 1.0}, ReassignEvery: 2}
	run := func(procs int) ([]float32, []uint8) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		env := testEnv(t, "resnet20", 0.25, clients, seed)
		alg := &FL{Opts: opts}
		runRounds(env, alg, rounds)
		var state []float32
		for k := 0; k < opts.Clusters; k++ {
			state = append(state, alg.Aggregator().Model(k)...)
		}
		return state, append([]uint8(nil), alg.Aggregator().Assignments()...)
	}
	s1, a1 := run(1)
	sN, aN := run(runtime.NumCPU())
	if !bytes.Equal(f32Bytes(s1), f32Bytes(sN)) {
		t.Fatal("cluster models differ across GOMAXPROCS")
	}
	if !bytes.Equal(a1, aN) {
		t.Fatalf("assignments differ across GOMAXPROCS: %v vs %v", a1, aN)
	}
}

// TestAssignmentDeterministicAcrossShuffles replays the identical round
// into fresh aggregators under 6 seeded arrival permutations; the
// committed cluster assignment must not depend on arrival order.
func TestAssignmentDeterministicAcrossShuffles(t *testing.T) {
	const clients, seed = 6, 9
	opts := Options{Clusters: 2, Widths: []float64{0.25, 0.5, 1.0}, ReassignEvery: 1}
	env := testEnv(t, "resnet20", 0.25, clients, seed)
	cfg := env.AlgoConfig()

	// Produce one genuine upload per client from the round-0 broadcast.
	ref := NewAggregator(env.Global, opts, cfg)
	bcast := append([]byte(nil), ref.Broadcast(0)...)
	payloads := make([][]byte, clients)
	sizes := make([]int, clients)
	for i, c := range env.Clients {
		up := NewTrainer(c, opts, cfg).LocalUpdate(0, bcast)
		if up == nil {
			t.Fatalf("client %d produced no upload", i)
		}
		payloads[i] = append([]byte(nil), up...)
		sizes[i] = c.Train.Len()
	}

	selected := make([]uint32, clients)
	for i := range selected {
		selected[i] = uint32(i)
	}
	var want []uint8
	for shuffle := 0; shuffle < 6; shuffle++ {
		// Fresh environment so client/global models match the reference
		// construction exactly.
		e := testEnv(t, "resnet20", 0.25, clients, seed)
		a := NewAggregator(e.Global, opts, e.AlgoConfig())
		a.Broadcast(0)
		order := rand.New(rand.NewSource(int64(100 + shuffle))).Perm(clients)
		a.BeginRound(0, selected)
		for _, i := range order {
			a.Collect(0, uint32(i), sizes[i], payloads[i])
		}
		a.FinishRound(0) // ReassignEvery=1 → reassignment commits here
		got := append([]uint8(nil), a.Assignments()...)
		if shuffle == 0 {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("shuffle %d: assignment %v, want %v", shuffle, got, want)
		}
	}
	if a := ref.Assignments(); len(a) != clients {
		t.Fatalf("reference assignment table has %d entries", len(a))
	}
}

// TestDroppedCountsMalformedUploads pins the validation path: garbage,
// truncated-slice-spec, unknown-width, wrong-cluster and mismatched
// -ranges uploads are all counted in Dropped() and never fold.
func TestDroppedCountsMalformedUploads(t *testing.T) {
	const clients, seed = 3, 5
	opts := Options{Clusters: 1, Widths: []float64{0.5}}
	env := testEnv(t, "resnet20", 0.25, clients, seed)
	cfg := env.AlgoConfig()
	a := NewAggregator(env.Global, opts, cfg)
	a.Broadcast(0)
	before := append([]float32(nil), a.Model(0)...)

	sl := a.Slice(500)
	goodVals := make([]float32, sl.Count())
	mk := func(mut func(*comm.HeteroUpdate)) []byte {
		u := &comm.HeteroUpdate{Cluster: 0, WidthMilli: 500,
			Sparse: comm.Sparse{Ranges: sl.Ranges, Values: goodVals}}
		mut(u)
		return comm.EncodeHeteroUpdate(u)
	}
	cases := [][]byte{
		[]byte("not a frame"),
		mk(func(u *comm.HeteroUpdate) { u.WidthMilli = 3000 }), // unknown width
		mk(func(u *comm.HeteroUpdate) { u.Cluster = 7 }),       // wrong cluster
		mk(func(u *comm.HeteroUpdate) { // slice spec not the server's
			u.Ranges = []comm.Range{{Start: 0, Len: uint32(len(goodVals))}}
		}),
		mk(func(*comm.HeteroUpdate) {})[:9], // truncated slice spec
	}
	for i, payload := range cases {
		a.Collect(0, uint32(i%clients), 10, payload)
	}
	a.FinishRound(0)
	if got := a.Dropped(); got != int64(len(cases)) {
		t.Fatalf("Dropped() = %d, want %d", got, len(cases))
	}
	if !bytes.Equal(f32Bytes(a.Model(0)), f32Bytes(before)) {
		t.Fatal("dropped uploads mutated the cluster model")
	}
}

// TestWidthSlicedRoundMovesOnlySlice pins the width pillar end to end:
// a half-width client's upload carries exactly the slice, and after a
// round the cluster model changed only where some slice covered it.
func TestWidthSlicedRoundMovesOnlySlice(t *testing.T) {
	const clients, seed = 3, 13
	opts := Options{Clusters: 1, Widths: []float64{0.5}}
	env := testEnv(t, "resnet20", 0.25, clients, seed)
	cfg := env.AlgoConfig()
	a := NewAggregator(env.Global, opts, cfg)
	before := append([]float32(nil), a.Model(0)...)
	bcast := a.Broadcast(0)
	tr := NewTrainer(env.Clients[0], opts, cfg)
	up := tr.LocalUpdate(0, bcast)
	dec, err := comm.DecodeHeteroUpdate(up)
	if err != nil {
		t.Fatalf("upload does not decode: %v", err)
	}
	if !tr.Slice().RangesEqual(dec.Ranges) || dec.WidthMilli != 500 {
		t.Fatal("upload slice spec does not match the trainer's")
	}
	a.Collect(0, 0, env.Clients[0].Train.Len(), up)
	a.FinishRound(0)
	sl := a.Slice(500)
	covered := make([]bool, sl.StateLen)
	for _, r := range sl.Ranges {
		for i := r.Start; i < r.Start+r.Len; i++ {
			covered[i] = true
		}
	}
	after := a.Model(0)
	changed := false
	for i := range after {
		if !covered[i] && after[i] != before[i] {
			t.Fatalf("uncovered index %d changed", i)
		}
		if covered[i] && after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("round changed nothing inside the slice")
	}
}
