package hetero

import (
	"math/rand"

	"spatl/internal/algo"
	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
)

// Trainer is the client side of a heterogeneous federation: install the
// broadcast cluster model, train the width slice (weights outside the
// slice take no gradient step — the mask-static mechanism shared with
// SSFL, here holding the broadcast values instead of zeros), and upload
// only the slice's values stamped with the cluster and width the server
// will validate.
//
// With weight decay enabled the frozen entries still decay inside the
// optimizer step (decay is part of the step, not the gradient); they
// are never uploaded, so the server-side models are unaffected — see
// DESIGN.md §15.
type Trainer struct {
	algo.Telemetered
	Client *algo.Client

	// FinalModel is populated by Finish (the client's cluster model).
	FinalModel []float32

	opts   Options
	cfg    algo.Config
	slice  *SliceSpec
	frozen []comm.Range      // slice complement clipped to trainable params
	bcast  comm.HeteroBcast  // reusable decode target
	up     comm.HeteroUpdate // reusable upload frame
	upBuf  []byte            // reusable upload body
}

// NewTrainer wires a trainer around a client. The width slice is
// derived locally from (architecture, opts) — byte-for-byte the spec
// the server derives, with no negotiation.
func NewTrainer(c *algo.Client, opts Options, cfg algo.Config) *Trainer {
	opts = opts.WithDefaults()
	t := &Trainer{Client: c, opts: opts, cfg: cfg.WithDefaults()}
	t.slice = NewSliceSpec(c.Model, opts.WidthFor(c.ID))
	if !t.slice.Full() {
		t.frozen = algo.ClipRanges(t.slice.Complement(), nn.ParamCount(c.Model.Params()))
	}
	return t
}

// Slice exposes the client's width slice (read-only use).
func (t *Trainer) Slice() *SliceSpec { return t.slice }

// LocalUpdate implements algo.Trainer.
func (t *Trainer) LocalUpdate(round int, payload []byte) []byte {
	sp := t.RoundSpan(round, "client.update")
	defer sp.End()
	m := t.Client.Model
	n := m.StateLen(models.ScopeAll)
	if err := comm.DecodeHeteroBcastInto(&t.bcast, payload); err != nil ||
		t.bcast.StateLen != n || t.Client.ID >= len(t.bcast.Assign) {
		return nil
	}
	k := int(t.bcast.Assign[t.Client.ID])
	m.SetState(models.ScopeAll, t.bcast.Model(k))
	opts := algo.LocalOpts{
		Params: m.Params(), Epochs: t.cfg.LocalEpochs, BatchSize: t.cfg.BatchSize,
		LR: t.cfg.LRAt(round), Momentum: t.cfg.Momentum,
		WeightDecay: t.cfg.WeightDecay, GradClip: t.cfg.GradClip,
	}
	if len(t.frozen) > 0 {
		opts.Hook = algo.ZeroGradRangesHook(t.frozen, m.Params())
	}
	rng := rand.New(rand.NewSource(algo.ClientSeed(t.cfg.Seed, round, t.Client.ID)))
	train := sp.Child("client.train")
	algo.LocalSGD(t.Client, opts, rng)
	train.End()
	state := m.StateInto(models.ScopeAll, comm.GetF32(n))
	comm.GatherSparseInto(&t.up.Sparse, state, t.slice.Ranges)
	comm.PutF32(state)
	t.up.Cluster = uint8(k)
	t.up.WidthMilli = t.slice.Milli
	t.upBuf = comm.EncodeHeteroUpdateInto(t.upBuf, &t.up)
	return t.upBuf
}

// Finish implements algo.Trainer: install this client's cluster model
// from the final broadcast.
func (t *Trainer) Finish(payload []byte) {
	m := t.Client.Model
	if err := comm.DecodeHeteroBcastInto(&t.bcast, payload); err != nil ||
		t.bcast.StateLen != m.StateLen(models.ScopeAll) ||
		t.Client.ID >= len(t.bcast.Assign) {
		return
	}
	st := t.bcast.Model(int(t.bcast.Assign[t.Client.ID]))
	m.SetState(models.ScopeAll, st)
	t.FinalModel = append(t.FinalModel[:0], st...)
}
