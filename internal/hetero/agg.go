package hetero

import (
	"fmt"

	"spatl/internal/algo"
	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// heteroUpload is one client's decoded round contribution: the packed
// slice values (the ranges are validated against the server's own
// SliceSpec and then discarded — folding uses the canonical copy).
type heteroUpload struct {
	client  uint32
	cluster uint8
	vals    []float32
	w       float64
}

// Aggregator is the server side of a heterogeneous federation: K
// full-width cluster models, per-cluster float64 accumulators with
// per-index participation weights, fed by the streaming fold engine.
// Every upload folds into exactly its cluster's accumulator over
// exactly its width slice; FinishRound finalizes each touched cluster
// index-wise (÷ the weight of the clients that covered that index) and
// runs the periodic cluster reassignment.
//
// Per-index participation weighting preserves determinism because it
// adds no new reduction order: the weight sum at index j accumulates in
// the same canonical fold order as the value sum at index j, and the
// finalize is one division per index. With one cluster and full-width
// slices both sums collapse to FedAvg's Σwx and Σw — the degenerate
// federation is bitwise FedAvg.
type Aggregator struct {
	algo.Telemetered
	algo.Stream[heteroUpload]
	Global *models.SplitModel

	opts     Options
	cfg      algo.Config
	stateLen int
	cl       *Clusterer
	slices   map[uint16]*SliceSpec
	milli    []uint16 // per-client width milli

	modelsFlat []float32   // K×stateLen cluster models, cluster-major
	acc        [][]float64 // per-cluster Σ wᵢ·xᵢ over covered indices
	wsum       [][]float64 // per-cluster Σ wᵢ per covered index
	folded     []int       // uploads folded per cluster this round
	curRound   int
	bcast      []byte            // reusable broadcast body
	upd        comm.HeteroUpdate // decode scratch (values handed off per upload)

	dropped telemetry.Counter
	upBytes map[uint16]*telemetry.Counter // per-width uplink payload bytes
	sizes   []telemetry.Gauge             // per-cluster member counts
}

// NewAggregator wires the aggregator around the global model.
// cfg.NumClients is the federation size (required — the assignment
// table is broadcast by client ID).
func NewAggregator(global *models.SplitModel, opts Options, cfg algo.Config) *Aggregator {
	opts = opts.WithDefaults()
	cfg = cfg.WithDefaults()
	n := cfg.NumClients
	if n <= 0 {
		panic("hetero: NumClients must be set")
	}
	if opts.Clusters < 1 || opts.Clusters > 255 {
		panic(fmt.Sprintf("hetero: %d clusters, want 1..255", opts.Clusters))
	}
	a := &Aggregator{
		Global:   global,
		opts:     opts,
		cfg:      cfg,
		stateLen: global.StateLen(models.ScopeAll),
		cl:       NewClusterer(global, opts, n, cfg.Seed),
		slices:   make(map[uint16]*SliceSpec),
		milli:    make([]uint16, n),
		upBytes:  make(map[uint16]*telemetry.Counter),
		sizes:    make([]telemetry.Gauge, opts.Clusters),
	}
	for _, w := range opts.Widths {
		m := WidthMilli(w)
		if _, ok := a.slices[m]; !ok {
			a.slices[m] = NewSliceSpec(global, w)
			a.upBytes[m] = &telemetry.Counter{}
		}
	}
	for i := 0; i < n; i++ {
		a.milli[i] = WidthMilli(opts.WidthFor(i))
	}
	// Every cluster model starts as the shared initialization.
	init := global.State(models.ScopeAll)
	a.modelsFlat = make([]float32, opts.Clusters*a.stateLen)
	a.acc = make([][]float64, opts.Clusters)
	a.wsum = make([][]float64, opts.Clusters)
	a.folded = make([]int, opts.Clusters)
	for k := 0; k < opts.Clusters; k++ {
		copy(a.Model(k), init)
		a.acc[k] = make([]float64, a.stateLen)
		a.wsum[k] = make([]float64, a.stateLen)
	}
	a.Init(a.fold, func(u heteroUpload) { comm.PutF32(u.vals) })
	return a
}

// Model returns cluster k's full-width flat state (live view).
func (a *Aggregator) Model(k int) []float32 {
	return a.modelsFlat[k*a.stateLen : (k+1)*a.stateLen]
}

// ClientModel returns the cluster model client id currently trains
// against.
func (a *Aggregator) ClientModel(id int) []float32 {
	return a.Model(int(a.cl.Assign[id]))
}

// InstallClientModel writes client id's cluster model into m — the eval
// path: a client deploys its cluster's model, not a single global one.
func (a *Aggregator) InstallClientModel(id int, m *models.SplitModel) {
	m.SetState(models.ScopeAll, a.ClientModel(id))
}

// Assignments returns the live per-client cluster assignment.
func (a *Aggregator) Assignments() []uint8 { return a.cl.Assign }

// Slice returns the server's SliceSpec for a width (by milli key).
func (a *Aggregator) Slice(milli uint16) *SliceSpec { return a.slices[milli] }

// Dropped reports how many uploads failed validation (malformed frame,
// unknown width, wrong cluster, or a slice spec that does not match the
// server's) and were discarded.
func (a *Aggregator) Dropped() int64 { return a.dropped.Value() }

// UpBytes reports the accepted uplink payload bytes for one width pool
// entry (by milli key).
func (a *Aggregator) UpBytes(milli uint16) int64 {
	if c, ok := a.upBytes[milli]; ok {
		return c.Value()
	}
	return 0
}

// SetTelemetry implements algo.Wirer, exposing the drop counter, the
// streaming gauges, the per-width uplink byte counters
// ("hetero.up_bytes.w<milli>") and the per-cluster size gauges
// ("hetero.cluster_size.<k>").
func (a *Aggregator) SetTelemetry(s *telemetry.Set) {
	a.Telemetered.SetTelemetry(s)
	if s == nil || s.Reg == nil {
		return
	}
	s.Reg.Attach("algo.uploads_dropped", &a.dropped)
	a.WireStream(s.Reg)
	for m, c := range a.upBytes {
		s.Reg.Attach(fmt.Sprintf("hetero.up_bytes.w%d", m), c)
	}
	for k, n := range a.cl.Sizes() {
		s.Reg.AttachGauge(fmt.Sprintf("hetero.cluster_size.%d", k), &a.sizes[k])
		a.sizes[k].Set(int64(n))
	}
}

// Broadcast implements algo.Aggregator: the assignment table plus every
// cluster model in one frame.
func (a *Aggregator) Broadcast(round int) []byte {
	defer a.RoundSpan(round, "agg.broadcast").End()
	h := comm.HeteroBcast{
		Clusters: a.opts.Clusters, Assign: a.cl.Assign,
		StateLen: a.stateLen, Models: a.modelsFlat,
	}
	a.bcast = comm.EncodeHeteroBcastInto(a.bcast, &h)
	a.ObserveSize("payload.down", len(a.bcast))
	return a.bcast
}

// decodeUpload decodes and validates one upload; the shared front half
// of Collect and CollectLate. The frame's values move into a pooled
// buffer owned by the returned upload; its ranges are checked against
// the server's own SliceSpec and discarded.
func (a *Aggregator) decodeUpload(client uint32, trainSize int, payload []byte) (heteroUpload, bool) {
	a.ObserveSize("payload.up", len(payload))
	if int(client) >= len(a.milli) {
		a.dropped.Add(1)
		return heteroUpload{}, false
	}
	milli := a.milli[client]
	sl := a.slices[milli]
	a.upd.Values = comm.GetF32(sl.Count())
	if err := comm.DecodeHeteroUpdateInto(&a.upd, payload); err != nil ||
		a.upd.WidthMilli != milli ||
		a.upd.Cluster != a.cl.Assign[client] ||
		!sl.RangesEqual(a.upd.Ranges) {
		a.dropped.Add(1)
		comm.PutF32(a.upd.Values)
		a.upd.Values = nil
		return heteroUpload{}, false
	}
	u := heteroUpload{client: client, cluster: a.upd.Cluster, vals: a.upd.Values, w: float64(trainSize)}
	a.upd.Values = nil
	if c, ok := a.upBytes[milli]; ok {
		c.Add(int64(len(payload)))
	}
	return u, true
}

// fold merges one upload into its cluster's accumulators and feeds the
// assigner's signature sketch. Folds run only on the collect goroutine
// in canonical order; per index the accumulation chain is fixed, so the
// fold is bitwise reproducible at any GOMAXPROCS.
func (a *Aggregator) fold(u heteroUpload) {
	defer a.RoundSpan(a.curRound, "agg.fold").End()
	k := int(u.cluster)
	if a.folded[k] == 0 {
		for j := range a.acc[k] {
			a.acc[k][j] = 0
			a.wsum[k][j] = 0
		}
	}
	a.folded[k]++
	sl := a.slices[a.milli[u.client]]
	a.cl.Observe(u.client, u.vals, sl.Ranges, a.Model(k))
	foldRanges(a.acc[k], a.wsum[k], u.vals, sl.Ranges, u.w)
}

// Collect implements algo.Aggregator: decode, validate, and hand the
// upload to the streaming engine.
func (a *Aggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	defer a.RoundSpan(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(client, trainSize, payload); ok {
		a.Ingest(client, u)
	}
}

// CollectLate implements algo.StreamingAggregator: a carried-over
// straggler upload folds at its delivery position, outside the cursor.
func (a *Aggregator) CollectLate(round int, client uint32, trainSize int, payload []byte) {
	defer a.RoundSpan(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(client, trainSize, payload); ok {
		a.FoldNow(u)
	}
}

// FinishRound implements algo.Aggregator: drain the stream, finalize
// every touched cluster index-wise (indices nobody covered keep the
// cluster model's previous value), mirror cluster 0 into the Global
// model, and run the periodic reassignment.
func (a *Aggregator) FinishRound(round int) {
	defer a.RoundSpan(round, "agg.reduce").End()
	a.curRound = round
	a.FinishStream()
	for k := 0; k < a.opts.Clusters; k++ {
		if a.folded[k] == 0 {
			continue
		}
		mk := a.Model(k)
		acc, ws := a.acc[k], a.wsum[k]
		tensor.Parallel(a.stateLen, func(lo, hi int) {
			for j := lo; j < hi; j++ {
				if ws[j] != 0 {
					mk[j] = float32(acc[j] / ws[j])
				}
			}
		})
		a.folded[k] = 0
	}
	// Global mirrors cluster 0 so scope-agnostic tooling (checkpoints,
	// eval fallbacks) sees a coherent model; in the degenerate single
	// cluster case this is exactly FedAvg's SetState.
	a.Global.SetState(models.ScopeAll, a.Model(0))
	if a.opts.ReassignEvery > 0 && (round+1)%a.opts.ReassignEvery == 0 {
		sizes := a.cl.Reassign()
		tel := a.Telemetry()
		for k, n := range sizes {
			a.sizes[k].Set(int64(n))
			if tel != nil {
				tel.Emit(telemetry.ClusterAssign(round, k, n))
			}
		}
	}
}

// Final implements algo.Aggregator: the end-of-federation broadcast,
// same frame as a round broadcast (each client installs its cluster's
// model).
func (a *Aggregator) Final() []byte {
	h := comm.HeteroBcast{
		Clusters: a.opts.Clusters, Assign: a.cl.Assign,
		StateLen: a.stateLen, Models: a.modelsFlat,
	}
	return comm.EncodeHeteroBcast(&h)
}
