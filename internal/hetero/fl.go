package hetero

import (
	"spatl/internal/algo"
	"spatl/internal/fl"
	"spatl/internal/models"
)

// FL adapts the heterogeneous aggregator/trainer pair to the
// simulation's Algorithm interface, mirroring the baselines in
// internal/fl: wire the aggregator around the global model and one
// trainer per client, delegate rounds to the transport driver.
type FL struct {
	Opts Options

	drv fl.Driver
	agg *Aggregator
}

// Name implements fl.Algorithm.
func (*FL) Name() string { return "hetero" }

// Setup implements fl.Algorithm.
func (f *FL) Setup(env *fl.Env) {
	cfg := env.AlgoConfig()
	f.agg = NewAggregator(env.Global, f.Opts, cfg)
	trainers := make([]algo.Trainer, len(env.Clients))
	for i, c := range env.Clients {
		trainers[i] = NewTrainer(c, f.Opts, cfg)
	}
	f.drv = fl.NewDriver(env, f.agg, trainers)
}

// Round implements fl.Algorithm.
func (f *FL) Round(env *fl.Env, round int, selected []int) { f.drv.Round(round, selected) }

// EvalModel implements fl.Algorithm: a client deploys its cluster's
// full-width model, not a single global one.
func (f *FL) EvalModel(env *fl.Env, c *fl.Client) *models.SplitModel {
	f.agg.InstallClientModel(c.ID, c.Model)
	return c.Model
}

// Aggregator exposes the live aggregator (assignments, cluster models,
// per-width byte counters) for harness-side reporting.
func (f *FL) Aggregator() *Aggregator { return f.agg }
