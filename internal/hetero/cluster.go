package hetero

import (
	"math"
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/graph"
	"spatl/internal/models"
	"spatl/internal/rl"
)

// embedDim is the hidden dimension of the GNN topology encoder used to
// embed client architectures into cluster signatures.
const embedDim = 8

// Clusterer is the deterministic cluster assigner. Between
// reassignments it accumulates a per-client signature: a SigDim sketch
// of the client's update direction (upload minus the cluster model it
// trained from, folded index-wise into SigDim buckets) plus, when the
// federation mixes widths, a GNN embedding of the client's scaled
// architecture (the internal/rl topology encoder over the width-scaled
// model graph). Reassignment is k-means with a fixed iteration count
// under cosine similarity, visiting clients in ascending ID order with
// ties resolved to the lowest cluster index — every choice is a
// deterministic function of the accumulated signatures, which are
// themselves per-client sums, so the assignment is identical whatever
// order uploads arrived in.
type Clusterer struct {
	K      int
	SigDim int
	// Assign is the current per-client cluster assignment. The initial
	// assignment is the balanced round-robin client i → i·K/N.
	Assign []uint8

	sigs   [][]float64          // per-client sketch, Σ (upload − cluster model)
	counts []int                // uploads folded per client since last reassign
	embeds map[uint16][]float64 // per-width-milli architecture embedding
	milli  []uint16             // per-client width milli (embedding key)
}

// NewClusterer builds the assigner for an n-client federation. When the
// width pool mixes at least two distinct widths, each width's scaled
// architecture is embedded once, here, with the GNN topology encoder
// seeded from seed — the embedding is a constant of (arch, width, seed)
// and never retrained.
func NewClusterer(m *models.SplitModel, opts Options, n int, seed int64) *Clusterer {
	c := &Clusterer{
		K:      opts.Clusters,
		SigDim: opts.SigDim,
		Assign: make([]uint8, n),
		sigs:   make([][]float64, n),
		counts: make([]int, n),
		milli:  make([]uint16, n),
	}
	for i := 0; i < n; i++ {
		c.Assign[i] = uint8(i * opts.Clusters / n)
		c.sigs[i] = make([]float64, opts.SigDim)
		c.milli[i] = WidthMilli(opts.WidthFor(i))
	}
	c.embeds = archEmbeds(m, opts, seed)
	return c
}

// archEmbeds embeds each distinct width's scaled architecture with a
// shared seeded GNN: build the width-scaled model, encode its layer
// graph, mean-pool the node states, normalize. Returns nil when fewer
// than two distinct widths are in play — a homogeneous-width federation
// gains nothing from an architecture term (and the degenerate
// federation must not pay for model builds).
func archEmbeds(m *models.SplitModel, opts Options, seed int64) map[uint16][]float64 {
	distinct := map[uint16]float64{}
	for _, w := range opts.Widths {
		distinct[WidthMilli(w)] = w
	}
	if len(distinct) < 2 {
		return nil
	}
	gnn := rl.NewGNN(embedDim, 2, rand.New(rand.NewSource(seed)))
	base := m.Spec
	if base.Width <= 0 {
		base.Width = 1
	}
	out := make(map[uint16][]float64, len(distinct))
	for milli, w := range distinct {
		spec := base
		spec.Width = base.Width * w
		scaled := models.Build(spec, seed)
		h := gnn.Forward(graph.FromEncoder(scaled))
		rows, dim := h.Dim(0), h.Dim(1)
		e := make([]float64, dim)
		for r := 0; r < rows; r++ {
			for j := 0; j < dim; j++ {
				e[j] += float64(h.Data[r*dim+j])
			}
		}
		for j := range e {
			e[j] /= float64(rows)
		}
		normalize(e)
		out[milli] = e
	}
	return out
}

// Observe folds one upload's update direction into its client's
// signature sketch: for every covered index, the difference between the
// uploaded value and the cluster model the client trained from, bucketed
// by index modulo SigDim. Called from the aggregator's fold path —
// sequential, and per-client independent, so arrival order cannot leak
// into the sketch.
func (c *Clusterer) Observe(client uint32, vals []float32, ranges []comm.Range, model []float32) {
	sig := c.sigs[client]
	d := c.SigDim
	off := 0
	for _, r := range ranges {
		for i := 0; i < int(r.Len); i++ {
			idx := int(r.Start) + i
			sig[idx%d] += float64(vals[off+i]) - float64(model[idx])
		}
		off += int(r.Len)
	}
	c.counts[client]++
}

// Sizes returns the member count of each cluster under the current
// assignment.
func (c *Clusterer) Sizes() []int {
	sizes := make([]int, c.K)
	for _, k := range c.Assign {
		sizes[k]++
	}
	return sizes
}

// Reassign re-clusters the clients on their accumulated signatures and
// resets the accumulation window. Clients that contributed nothing
// since the last reassignment (or whose sketch is exactly zero) keep
// their current cluster. Returns the new per-cluster sizes.
func (c *Clusterer) Reassign() []int {
	n := len(c.Assign)
	if c.K <= 1 {
		c.resetWindow()
		return c.Sizes()
	}
	full := make([][]float64, n)
	active := make([]bool, n)
	for i := 0; i < n; i++ {
		if c.counts[i] == 0 || norm(c.sigs[i]) == 0 {
			continue
		}
		s := append([]float64(nil), c.sigs[i]...)
		normalize(s)
		if e, ok := c.embeds[c.milli[i]]; ok {
			s = append(s, e...)
		} else if c.embeds != nil {
			s = append(s, make([]float64, embedDim)...)
		}
		normalize(s)
		full[i] = s
		active[i] = true
	}

	dim := c.SigDim
	if c.embeds != nil {
		dim += embedDim
	}
	// Centroids seed from the current assignment's member means; an
	// empty (or all-inactive) cluster keeps its previous centroid so it
	// can re-attract members on a later iteration.
	centroids := make([][]float64, c.K)
	for k := range centroids {
		centroids[k] = make([]float64, dim)
	}
	next := make([]uint8, n)
	copy(next, c.Assign)
	const iterations = 4
	for it := 0; it < iterations; it++ {
		// Centroid step over the working assignment.
		members := make([]int, c.K)
		sums := make([][]float64, c.K)
		for k := range sums {
			sums[k] = make([]float64, dim)
		}
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			k := next[i]
			members[k]++
			for j, v := range full[i] {
				sums[k][j] += v
			}
		}
		for k := range centroids {
			if members[k] == 0 {
				continue
			}
			for j := range sums[k] {
				sums[k][j] /= float64(members[k])
			}
			normalize(sums[k])
			centroids[k] = sums[k]
		}
		// Assignment step: ascending client ID, best cosine similarity,
		// ties to the lowest cluster index.
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			best, bestSim := next[i], math.Inf(-1)
			for k := 0; k < c.K; k++ {
				if sim := cosine(full[i], centroids[k]); sim > bestSim {
					best, bestSim = uint8(k), sim
				}
			}
			next[i] = best
		}
	}
	copy(c.Assign, next)
	c.resetWindow()
	return c.Sizes()
}

// resetWindow clears the accumulated signatures for the next window.
func (c *Clusterer) resetWindow() {
	for i := range c.sigs {
		for j := range c.sigs[i] {
			c.sigs[i][j] = 0
		}
		c.counts[i] = 0
	}
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// cosine returns the cosine similarity of a and b; zero when either is
// the zero vector (so never-updated centroids attract nobody over a
// genuine match).
func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
