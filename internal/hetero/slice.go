package hetero

import (
	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/prune"
	"spatl/internal/tensor"
)

// SliceSpec is the deterministic width slice of a full-width model: the
// index ranges of the ScopeAll flat state a width-w client trains and
// uploads. The slice is a function of (architecture, width) alone — no
// weights, no randomness — so the server and every client derive the
// identical spec independently, and the server can validate an upload's
// declared ranges against its own copy before folding.
//
// Invariants (pinned by the slice tests):
//
//   - Channel-prefix selection: within each prunable unit the first
//     ceil(w·C) output channels survive — prune.MaskFromScores over the
//     descending index ramp, so ties and rounding resolve exactly as in
//     every other selection in the repo. A narrower width's channel set
//     is a subset of a wider width's (HeteroFL's nesting property).
//   - Only filter weights are gated: dropping channel ch removes row ch
//     of the unit's conv weight and input-column-group ch of the
//     consumer conv. Per-channel scalars (conv bias, BN affine) and BN
//     running statistics always ship — they are a negligible fraction
//     of the payload and keeping them synchronized keeps every cluster
//     model's non-covered channels correctly normalized.
//   - Ranges are sorted, non-overlapping, maximal — comm.Sparse's
//     Validate accepts every SliceSpec.
//   - Width ≥ 1, or an architecture with no prunable units (mlp),
//     yields full coverage: a single range over the whole state.
type SliceSpec struct {
	Width float64
	Milli uint16
	// StateLen is the full ScopeAll state length the ranges index into.
	StateLen int
	// Ranges covers the trained indices, sorted maximal runs.
	Ranges []comm.Range
}

// NewSliceSpec derives the width-w slice of m's full-width state.
func NewSliceSpec(m *models.SplitModel, width float64) *SliceSpec {
	total := m.StateLen(models.ScopeAll)
	s := &SliceSpec{Width: width, Milli: WidthMilli(width), StateLen: total}
	units := m.PrunableUnits()
	if width >= 1 || len(units) == 0 {
		s.Ranges = []comm.Range{{Start: 0, Len: uint32(total)}}
		return s
	}

	covered := make([]bool, total)
	for i := range covered {
		covered[i] = true
	}
	paramSeg := allParamSegs(m)
	markFalse := func(off, n int) {
		for i := off; i < off+n; i++ {
			covered[i] = false
		}
	}
	for _, u := range units {
		w := u.Conv.Weight()
		mask := prefixMask(w.W.Dim(0), width)
		wSeg := paramSeg[w]
		rowLen := w.W.Dim(1)
		var nextOff, nextRow, kk, outC int
		if u.Next != nil {
			nw := u.Next.Weight()
			nextOff = paramSeg[nw]
			nextRow = nw.W.Dim(1)
			kk = u.Next.K * u.Next.K
			outC = u.Next.OutC
		}
		for ch, keep := range mask.Keep {
			if keep {
				continue
			}
			markFalse(wSeg+ch*rowLen, rowLen)
			if u.Next != nil {
				// Input-channel column group ch of every output row.
				for r := 0; r < outC; r++ {
					markFalse(nextOff+r*nextRow+ch*kk, kk)
				}
			}
		}
	}

	// Compress the coverage bitmap into maximal ranges.
	i := 0
	for i < total {
		if !covered[i] {
			i++
			continue
		}
		j := i
		for j < total && covered[j] {
			j++
		}
		s.Ranges = append(s.Ranges, comm.Range{Start: uint32(i), Len: uint32(j - i)})
		i = j
	}
	return s
}

// prefixMask keeps the first ceil(w·C) of C channels, routed through
// prune.MaskFromScores over a descending index ramp so the keep-count
// rounding (and the at-least-one floor) is exactly the selection
// machinery's.
func prefixMask(c int, width float64) prune.Mask {
	scores := make([]float64, c)
	for i := range scores {
		scores[i] = float64(c - i)
	}
	return prune.MaskFromScores(scores, width)
}

// allParamSegs maps each trainable parameter to its offset inside the
// ScopeAll flat state vector (the ScopeAll analogue of
// models.EncoderOffsets; BN running statistics follow the parameters
// and are never gated, so only parameter offsets are needed).
func allParamSegs(m *models.SplitModel) map[*nn.Param]int {
	segs := make(map[*nn.Param]int)
	off := 0
	for _, p := range m.Params() {
		segs[p] = off
		off += p.W.Len()
	}
	return segs
}

// Count returns the number of state elements the slice covers.
func (s *SliceSpec) Count() int {
	n := 0
	for _, r := range s.Ranges {
		n += int(r.Len)
	}
	return n
}

// Full reports whether the slice covers the entire state.
func (s *SliceSpec) Full() bool {
	return len(s.Ranges) == 1 && s.Ranges[0].Start == 0 && int(s.Ranges[0].Len) == s.StateLen
}

// Complement returns the maximal runs of the state NOT covered by the
// slice — what a client freezes during local training.
func (s *SliceSpec) Complement() []comm.Range {
	return comm.ComplementRanges(s.Ranges, s.StateLen)
}

// RangesEqual reports whether the uploaded ranges match the spec's —
// the server-side validation before a mismatched upload would corrupt
// the participation weights.
func (s *SliceSpec) RangesEqual(ranges []comm.Range) bool {
	if len(ranges) != len(s.Ranges) {
		return false
	}
	for i, r := range ranges {
		if r != s.Ranges[i] {
			return false
		}
	}
	return true
}

// foldRanges adds w·vals into acc and w into wsum over the covered
// runs — one upload's contribution to a cluster's per-index
// participation-weighted accumulators. Chunks are index-disjoint, so
// the result is bitwise identical at any GOMAXPROCS; with a single
// full-coverage range the VecAccumScaled call is exactly the FedAvg
// fold.
func foldRanges(acc, wsum []float64, vals []float32, ranges []comm.Range, w float64) {
	off := 0
	for _, r := range ranges {
		n := int(r.Len)
		seg := acc[r.Start : int(r.Start)+n]
		ws := wsum[r.Start : int(r.Start)+n]
		v := vals[off : off+n]
		tensor.Parallel(n, func(lo, hi int) {
			tensor.VecAccumScaled(seg[lo:hi], v[lo:hi], w)
			for j := lo; j < hi; j++ {
				ws[j] += w
			}
		})
		off += n
	}
}
