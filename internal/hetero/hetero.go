// Package hetero federates clients that do not share a model shape —
// the heterogeneous-model regime the related work motivates (graph
// hypernetworks across architectures; HeteroFL's width-sliced clients)
// layered over this repo's transport-agnostic algorithm cores.
//
// Two pillars, composable and independently degenerate:
//
//   - Clustered aggregation: the server keeps K full-width models. Each
//     client trains against its cluster's model; per-cluster
//     accumulators fold uploads through the same streaming engine the
//     homogeneous aggregators use. A deterministic assigner (seeded
//     k-means over cosine similarity of sketched update directions,
//     fixed iteration count, client-ID tie-breaks) re-clusters every
//     ReassignEvery rounds, journaled as cluster_assign events.
//
//   - Width-heterogeneous clients: each client declares a width
//     multiplier (0.25/0.5/1.0, ...); a SliceSpec maps that multiplier
//     to the deterministic channel-prefix slice of the full-width state
//     the client trains and uploads. The server folds mismatched
//     uploads into the full model with per-index participation-weighted
//     averaging (HeteroFL-style): every index is divided by the weight
//     of exactly the clients whose slice covered it.
//
// With Clusters=1 and Widths={1.0} the whole machinery reduces —
// bitwise, not just statistically — to algo.FedAvg: one cluster
// accumulator fed full-coverage slices is FedAvg's fold chain, and the
// per-index weight sum is then constant. The degenerate-equivalence
// tests pin this.
//
// Determinism is inherited, not re-derived: uploads fold in canonical
// ascending-client-ID order whatever the arrival permutation (the
// algo.Stream cursor), per-index accumulation is chunked float64 work
// that is associative within an index, and cluster signatures are
// per-client sums — so the federation is bitwise reproducible at any
// GOMAXPROCS and over either transport.
package hetero

import "math"

// Options configures a heterogeneous federation. The zero value (after
// WithDefaults) is the degenerate homogeneous case: one cluster, every
// client at full width.
type Options struct {
	// Clusters is K, the number of cluster models the server maintains.
	Clusters int
	// Widths is the width-multiplier pool; client i trains the
	// Widths[i % len(Widths)] slice. Each width must be in (0, 1].
	Widths []float64
	// ReassignEvery re-runs the cluster assigner after every this many
	// rounds. 0 means the default; negative disables reassignment (the
	// initial round-robin assignment is kept for the whole federation).
	ReassignEvery int
	// SigDim is the sketch dimension of the per-client update-direction
	// signature the assigner clusters on.
	SigDim int
}

// WithDefaults fills zero fields with the standard settings.
func (o Options) WithDefaults() Options {
	if o.Clusters == 0 {
		o.Clusters = 1
	}
	if len(o.Widths) == 0 {
		o.Widths = []float64{1}
	}
	if o.ReassignEvery == 0 {
		o.ReassignEvery = 5
	}
	if o.SigDim == 0 {
		o.SigDim = 32
	}
	return o
}

// WidthFor returns the width multiplier client clientID trains at: the
// deterministic round-robin assignment over the pool, so both ends of
// the wire (and every transport) agree without negotiation.
func (o Options) WidthFor(clientID int) float64 {
	return o.Widths[clientID%len(o.Widths)]
}

// WidthMilli quantizes a width multiplier to thousandths — the wire
// representation (comm.HeteroUpdate.WidthMilli) and the key of every
// per-width table. Quantizing once, here, keeps float widths like 0.1
// from hashing differently on the two ends of the wire.
func WidthMilli(w float64) uint16 {
	return uint16(math.Round(w * 1000))
}
