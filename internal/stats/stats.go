// Package stats provides the small statistical and reporting helpers the
// experiment harness uses: summary statistics, moving averages, and CSV
// series export for external plotting.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MovingAvg smooths xs with a trailing window of the given size.
func MovingAvg(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// Series is a named sequence of (x, y) points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// WriteCSV emits one or more series sharing an x-axis as CSV: the header
// is "x,<name1>,<name2>,..."; rows align by index (shorter series leave
// blanks).
func WriteCSV(w io.Writer, xLabel string, series ...Series) error {
	names := make([]string, len(series))
	maxLen := 0
	for i, s := range series {
		names[i] = s.Name
		if len(s.X) > maxLen {
			maxLen = len(s.X)
		}
	}
	if _, err := fmt.Fprintf(w, "%s,%s\n", xLabel, strings.Join(names, ",")); err != nil {
		return err
	}
	for row := 0; row < maxLen; row++ {
		var x float64
		hasX := false
		cells := make([]string, len(series))
		for i, s := range series {
			if row < len(s.Y) {
				cells[i] = fmt.Sprintf("%g", s.Y[row])
				if !hasX && row < len(s.X) {
					x = s.X[row]
					hasX = true
				}
			}
		}
		if _, err := fmt.Fprintf(w, "%g,%s\n", x, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Sparkline renders ys as a compact unicode sparkline, handy for
// eyeballing learning curves in terminal output.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	ticks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := Min(ys), Max(ys)
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(ticks)-1))
		}
		b.WriteRune(ticks[idx])
	}
	return b.String()
}
