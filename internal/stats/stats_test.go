package stats

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Std(xs) != 2 {
		t.Fatalf("Std = %v", Std(xs))
	}
	if Mean(nil) != 0 || Std(nil) != 0 {
		t.Fatal("empty input must give 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty input must give 0")
	}
}

func TestMovingAvg(t *testing.T) {
	got := MovingAvg([]float64{1, 2, 3, 4}, 2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MovingAvg[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Window 0 clamps to 1 (identity).
	got = MovingAvg([]float64{5, 6}, 0)
	if got[0] != 5 || got[1] != 6 {
		t.Fatal("window<1 must behave as identity")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, "round",
		Series{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.6}},
		Series{Name: "b", X: []float64{1, 2}, Y: []float64{0.3, 0.4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "round,a,b" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "1,0.5,0.3" || lines[2] != "2,0.6,0.4" {
		t.Fatalf("rows %q %q", lines[1], lines[2])
	}
}

func TestWriteCSVUnevenSeries(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, "x",
		Series{Name: "long", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}},
		Series{Name: "short", X: []float64{1}, Y: []float64{9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d", len(lines))
	}
	if lines[3] != "3,3," {
		t.Fatalf("short series must leave blank cell: %q", lines[3])
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1})
	if len([]rune(s)) != 2 {
		t.Fatalf("length %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[1] != '█' {
		t.Fatalf("got %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input gives empty sparkline")
	}
	// Constant series must not divide by zero.
	if got := Sparkline([]float64{5, 5, 5}); len([]rune(got)) != 3 {
		t.Fatal("constant series sparkline wrong length")
	}
}
