package models

import (
	"math"
	"testing"

	"spatl/internal/nn"
	"spatl/internal/tensor"
)

func specFor(arch string) Spec {
	switch arch {
	case "cnn2":
		return Spec{Arch: arch, Classes: 62, InC: 1, H: 28, W: 28, Width: 0.125}
	case "mlp":
		return Spec{Arch: arch, Classes: 10, InC: 3, H: 8, W: 8, Width: 0.5}
	default:
		return Spec{Arch: arch, Classes: 10, InC: 3, H: 16, W: 16, Width: 0.25}
	}
}

var allArchs = []string{"resnet20", "resnet32", "resnet56", "resnet18", "vgg11", "cnn2", "mlp"}

func TestBuildForwardShapes(t *testing.T) {
	for _, arch := range allArchs {
		t.Run(arch, func(t *testing.T) {
			spec := specFor(arch)
			m := Build(spec, 1)
			x := tensor.New(2, spec.InC, spec.H, spec.W)
			x.Randn(nn.Rng(2), 1)
			out := m.Forward(x, false)
			if out.Rank() != 2 || out.Dim(0) != 2 || out.Dim(1) != spec.Classes {
				t.Fatalf("%s output shape %v, want (2,%d)", arch, out.Shape(), spec.Classes)
			}
			for _, v := range out.Data {
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					t.Fatalf("%s produced non-finite logits", arch)
				}
			}
		})
	}
}

func TestBuildDeterministicFromSeed(t *testing.T) {
	a := Build(specFor("resnet20"), 42)
	b := Build(specFor("resnet20"), 42)
	sa, sb := a.State(ScopeAll), b.State(ScopeAll)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed must give identical weights")
		}
	}
	c := Build(specFor("resnet20"), 43)
	sc := c.State(ScopeAll)
	same := true
	for i := range sa {
		if sa[i] != sc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must give different weights")
	}
}

func TestResNetDepths(t *testing.T) {
	count := func(arch string) int {
		m := Build(specFor(arch), 1)
		blocks := 0
		nn.Walk(m.Encoder, func(l nn.Layer) {
			if _, ok := l.(*nn.BasicBlock); ok {
				blocks++
			}
		})
		return blocks
	}
	if got := count("resnet20"); got != 9 {
		t.Fatalf("resnet20 blocks = %d, want 9", got)
	}
	if got := count("resnet32"); got != 15 {
		t.Fatalf("resnet32 blocks = %d, want 15", got)
	}
	if got := count("resnet56"); got != 27 {
		t.Fatalf("resnet56 blocks = %d, want 27", got)
	}
	if got := count("resnet18"); got != 8 {
		t.Fatalf("resnet18 blocks = %d, want 8", got)
	}
}

func TestStateRoundTrip(t *testing.T) {
	for _, arch := range []string{"resnet20", "vgg11", "cnn2", "mlp"} {
		t.Run(arch, func(t *testing.T) {
			spec := specFor(arch)
			m := Build(spec, 7)
			// Run a training forward so BN stats move off their defaults.
			x := tensor.New(4, spec.InC, spec.H, spec.W)
			x.Randn(nn.Rng(8), 1)
			m.Forward(x, true)

			st := m.State(ScopeAll)
			if len(st) != m.StateLen(ScopeAll) {
				t.Fatalf("state len %d, want %d", len(st), m.StateLen(ScopeAll))
			}
			m2 := Build(spec, 99)
			m2.SetState(ScopeAll, st)
			st2 := m2.State(ScopeAll)
			for i := range st {
				if st[i] != st2[i] {
					t.Fatalf("state round trip mismatch at %d", i)
				}
			}
			// Outputs must now agree exactly in eval mode.
			o1 := m.Forward(x, false)
			o2 := m2.Forward(x, false)
			for i := range o1.Data {
				if o1.Data[i] != o2.Data[i] {
					t.Fatal("cloned state must give identical eval outputs")
				}
			}
		})
	}
}

func TestEncoderScopeSmallerThanAll(t *testing.T) {
	m := Build(specFor("resnet20"), 1)
	if m.StateLen(ScopeEncoder) >= m.StateLen(ScopeAll) {
		t.Fatal("encoder state must be strictly smaller than full state")
	}
}

func TestSetStateRejectsWrongLength(t *testing.T) {
	m := Build(specFor("mlp"), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.SetState(ScopeAll, make([]float32, 3))
}

func TestStateSpecCoversVectorExactly(t *testing.T) {
	m := Build(specFor("resnet20"), 1)
	spec := m.StateSpec(ScopeEncoder)
	if spec.Total != m.StateLen(ScopeEncoder) {
		t.Fatalf("spec total %d, want %d", spec.Total, m.StateLen(ScopeEncoder))
	}
	// Segments must tile [0, Total) without gaps or overlaps.
	off := 0
	for _, seg := range spec.Segments {
		if seg.Off != off {
			t.Fatalf("segment %q starts at %d, want %d", seg.Name, seg.Off, off)
		}
		off += seg.Len
	}
	if off != spec.Total {
		t.Fatalf("segments cover %d, want %d", off, spec.Total)
	}
}

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	spec := specFor("resnet20")
	m := Build(spec, 3)
	x := tensor.New(2, spec.InC, spec.H, spec.W)
	x.Randn(nn.Rng(4), 1)
	m.Forward(x, true) // move BN stats
	c := m.Clone()
	o1, o2 := m.Forward(x, false), c.Forward(x, false)
	for i := range o1.Data {
		if o1.Data[i] != o2.Data[i] {
			t.Fatal("clone must match original output")
		}
	}
	// Mutating the clone must not affect the original.
	c.Params()[0].W.Data[0] += 1
	o3 := m.Forward(x, false)
	for i := range o1.Data {
		if o1.Data[i] != o3.Data[i] {
			t.Fatal("clone must not alias original tensors")
		}
	}
}

func TestPrunableConvs(t *testing.T) {
	if got := len(Build(specFor("resnet20"), 1).PrunableConvs()); got != 9 {
		t.Fatalf("resnet20 prunable convs = %d, want 9 (one per block)", got)
	}
	if got := len(Build(specFor("vgg11"), 1).PrunableConvs()); got != 7 {
		t.Fatalf("vgg11 prunable convs = %d, want 7 (all but last)", got)
	}
	if got := len(Build(specFor("cnn2"), 1).PrunableConvs()); got != 1 {
		t.Fatalf("cnn2 prunable convs = %d, want 1", got)
	}
}

func TestDescribeReportsFLOPs(t *testing.T) {
	m := Build(specFor("resnet20"), 1)
	params, flops := m.Describe()
	if params <= 0 || flops <= 0 {
		t.Fatalf("Describe gave params=%d flops=%d", params, flops)
	}
	// ResNet-32 must have more of both than ResNet-20 at equal width.
	m32 := Build(specFor("resnet32"), 1)
	p32, f32 := m32.Describe()
	if p32 <= params || f32 <= flops {
		t.Fatalf("resnet32 (%d,%d) should exceed resnet20 (%d,%d)", p32, f32, params, flops)
	}
}

func TestWidthMultiplierScalesParams(t *testing.T) {
	small := Build(Spec{Arch: "resnet20", Classes: 10, InC: 3, H: 16, W: 16, Width: 0.25}, 1)
	big := Build(Spec{Arch: "resnet20", Classes: 10, InC: 3, H: 16, W: 16, Width: 0.5}, 1)
	ps, _ := small.Describe()
	pb, _ := big.Describe()
	if pb <= 2*ps {
		t.Fatalf("doubling width should much more than double params: %d vs %d", ps, pb)
	}
}

func TestUnknownArchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(Spec{Arch: "alexnet", Classes: 10, InC: 3, H: 16, W: 16}, 1)
}

func TestTrainingStepChangesOnlyTargetScope(t *testing.T) {
	// Freezing the encoder and training the predictor (SPATL's cold-start
	// path, eq. 4) must leave encoder weights untouched.
	spec := specFor("mlp")
	m := Build(spec, 5)
	x := tensor.New(8, spec.InC, spec.H, spec.W)
	x.Randn(nn.Rng(6), 1)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = i % spec.Classes
	}
	encBefore := m.State(ScopeEncoder)
	opt := nn.NewSGD(m.PredictorParams(), 0.1, 0.9, 0)
	for it := 0; it < 3; it++ {
		nn.ZeroGrad(m.Params())
		out := m.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy(out, labels)
		m.Backward(grad)
		opt.Step()
	}
	encAfter := m.State(ScopeEncoder)
	for i := range encBefore {
		if encBefore[i] != encAfter[i] {
			t.Fatal("predictor-only training must not modify encoder")
		}
	}
}

func TestVGGDropoutInHead(t *testing.T) {
	spec := specFor("vgg11")
	spec.Dropout = 0.5
	m := Build(spec, 1)
	found := false
	nn.Walk(m.Predictor, func(l nn.Layer) {
		if _, ok := l.(*nn.Dropout); ok {
			found = true
		}
	})
	if !found {
		t.Fatal("Spec.Dropout must insert a dropout layer in the VGG head")
	}
	// Without the flag there is none.
	m2 := Build(specFor("vgg11"), 1)
	nn.Walk(m2.Predictor, func(l nn.Layer) {
		if _, ok := l.(*nn.Dropout); ok {
			t.Fatal("dropout must be off by default")
		}
	})
	// Eval-mode forward must be deterministic despite dropout.
	x := tensor.New(2, spec.InC, spec.H, spec.W)
	x.Randn(nn.Rng(2), 1)
	a, b := m.Forward(x, false), m.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("eval forward must be deterministic with dropout")
		}
	}
}
