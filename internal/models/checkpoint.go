package models

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
)

// checkpointMagic identifies SPATL model checkpoints; the trailing byte
// is the format version.
var checkpointMagic = []byte("SPATLCKPT\x01")

// Save serializes the model — spec and full state (weights + BatchNorm
// running statistics) — into a self-describing binary checkpoint.
func (m *SplitModel) Save() []byte {
	var buf bytes.Buffer
	buf.Write(checkpointMagic)
	writeString(&buf, m.Spec.Arch)
	writeInts(&buf, m.Spec.Classes, m.Spec.InC, m.Spec.H, m.Spec.W)
	binary.Write(&buf, binary.LittleEndian, m.Spec.Width)
	state := m.State(ScopeAll)
	binary.Write(&buf, binary.LittleEndian, uint32(len(state)))
	for _, v := range state {
		binary.Write(&buf, binary.LittleEndian, math.Float32bits(v))
	}
	return buf.Bytes()
}

// Load reconstructs a model from a checkpoint produced by Save.
func Load(blob []byte) (*SplitModel, error) {
	r := bytes.NewReader(blob)
	magic := make([]byte, len(checkpointMagic))
	if _, err := r.Read(magic); err != nil || !bytes.Equal(magic, checkpointMagic) {
		return nil, fmt.Errorf("models: not a SPATL checkpoint")
	}
	var spec Spec
	var err error
	if spec.Arch, err = readString(r); err != nil {
		return nil, fmt.Errorf("models: corrupt checkpoint: %w", err)
	}
	ints := make([]int32, 4)
	if err := binary.Read(r, binary.LittleEndian, ints); err != nil {
		return nil, fmt.Errorf("models: corrupt checkpoint: %w", err)
	}
	spec.Classes, spec.InC, spec.H, spec.W = int(ints[0]), int(ints[1]), int(ints[2]), int(ints[3])
	if err := binary.Read(r, binary.LittleEndian, &spec.Width); err != nil {
		return nil, fmt.Errorf("models: corrupt checkpoint: %w", err)
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("models: corrupt checkpoint: %w", err)
	}
	state := make([]float32, n)
	for i := range state {
		var bits uint32
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return nil, fmt.Errorf("models: checkpoint truncated at weight %d: %w", i, err)
		}
		state[i] = math.Float32frombits(bits)
	}
	m := Build(spec, 0)
	if m.StateLen(ScopeAll) != len(state) {
		return nil, fmt.Errorf("models: checkpoint state length %d does not match %s (%d)",
			len(state), spec, m.StateLen(ScopeAll))
	}
	m.SetState(ScopeAll, state)
	return m, nil
}

// SaveFile writes a checkpoint to disk.
func (m *SplitModel) SaveFile(path string) error {
	return os.WriteFile(path, m.Save(), 0o644)
}

// LoadFile reads a checkpoint from disk.
func LoadFile(path string) (*SplitModel, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Load(blob)
}

func writeInts(buf *bytes.Buffer, vals ...int) {
	for _, v := range vals {
		binary.Write(buf, binary.LittleEndian, int32(v))
	}
}

func writeString(buf *bytes.Buffer, s string) {
	binary.Write(buf, binary.LittleEndian, uint32(len(s)))
	buf.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("string length %d implausible", n)
	}
	b := make([]byte, n)
	if _, err := r.Read(b); err != nil {
		return "", err
	}
	return string(b), nil
}
