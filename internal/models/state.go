package models

import (
	"fmt"

	"spatl/internal/nn"
	"spatl/internal/tensor"
)

// Scope selects which part of a SplitModel a state vector covers.
type Scope int

const (
	// ScopeAll covers encoder and predictor — what the dense baseline
	// algorithms (FedAvg, FedProx, FedNova, SCAFFOLD) communicate.
	ScopeAll Scope = iota
	// ScopeEncoder covers only the shared encoder — what SPATL
	// communicates (§IV-A).
	ScopeEncoder
)

// Segment locates one named component inside a flat state vector.
type Segment struct {
	Name     string
	Off, Len int
}

// StateSpec describes the layout of a model's flat state vector: all
// trainable parameters in Params order, followed by BatchNorm running
// means and variances in layer order. BN statistics are part of the
// state (they must travel with the model for eval-mode inference) but
// are not touched by optimizers.
type StateSpec struct {
	Segments []Segment
	Total    int
}

// Segment returns the segment with the given name.
func (s StateSpec) Segment(name string) (Segment, bool) {
	for _, seg := range s.Segments {
		if seg.Name == name {
			return seg, true
		}
	}
	return Segment{}, false
}

// scopeParams returns the trainable parameters covered by scope.
func (m *SplitModel) scopeParams(scope Scope) []*nn.Param {
	switch scope {
	case ScopeAll:
		return m.Params()
	case ScopeEncoder:
		return m.EncoderParams()
	}
	panic(fmt.Sprintf("models: unknown scope %d", scope))
}

// scopeBNs returns the BatchNorm layers covered by scope in stable order.
func (m *SplitModel) scopeBNs(scope Scope) []*nn.BatchNorm2D {
	var bns []*nn.BatchNorm2D
	collect := func(root nn.Layer) {
		nn.Walk(root, func(l nn.Layer) {
			if bn, ok := l.(*nn.BatchNorm2D); ok {
				bns = append(bns, bn)
			}
		})
	}
	collect(m.Encoder)
	if scope == ScopeAll {
		collect(m.Predictor)
	}
	return bns
}

// StateSpec computes the layout of the scope's flat state vector.
func (m *SplitModel) StateSpec(scope Scope) StateSpec {
	var spec StateSpec
	off := 0
	for _, p := range m.scopeParams(scope) {
		spec.Segments = append(spec.Segments, Segment{Name: p.Name, Off: off, Len: p.W.Len()})
		off += p.W.Len()
	}
	for i, bn := range m.scopeBNs(scope) {
		spec.Segments = append(spec.Segments, Segment{Name: fmt.Sprintf("bn%d.rmean", i), Off: off, Len: bn.C})
		off += bn.C
		spec.Segments = append(spec.Segments, Segment{Name: fmt.Sprintf("bn%d.rvar", i), Off: off, Len: bn.C})
		off += bn.C
	}
	spec.Total = off
	return spec
}

// StateLen returns the length of the scope's flat state vector.
func (m *SplitModel) StateLen(scope Scope) int {
	n := nn.ParamCount(m.scopeParams(scope))
	for _, bn := range m.scopeBNs(scope) {
		n += 2 * bn.C
	}
	return n
}

// State serializes the scope into a fresh flat vector.
func (m *SplitModel) State(scope Scope) []float32 {
	return m.StateInto(scope, nil)
}

// StateInto serializes the scope into dst, reusing its backing array when
// the capacity suffices (so round loops can snapshot state into pooled
// buffers). Returns the filled slice.
func (m *SplitModel) StateInto(scope Scope, dst []float32) []float32 {
	n := m.StateLen(scope)
	if cap(dst) >= n {
		dst = dst[:n]
	} else {
		dst = make([]float32, n)
	}
	off := 0
	for _, p := range m.scopeParams(scope) {
		off += copy(dst[off:], p.W.Data)
	}
	for _, bn := range m.scopeBNs(scope) {
		off += copy(dst[off:], bn.RunMean)
		off += copy(dst[off:], bn.RunVar)
	}
	return dst
}

// SetState writes a flat vector produced by State back into the model.
func (m *SplitModel) SetState(scope Scope, flat []float32) {
	want := m.StateLen(scope)
	if len(flat) != want {
		panic(fmt.Sprintf("models: SetState length %d, want %d", len(flat), want))
	}
	off := 0
	for _, p := range m.scopeParams(scope) {
		n := p.W.Len()
		copy(p.W.Data, flat[off:off+n])
		p.W.MarkMutated()
		off += n
	}
	for _, bn := range m.scopeBNs(scope) {
		copy(bn.RunMean, flat[off:off+bn.C])
		off += bn.C
		copy(bn.RunVar, flat[off:off+bn.C])
		off += bn.C
	}
}

// PrunableUnit groups a prunable convolution with the structures its
// output channels flow through: the BatchNorm normalizing them (nil when
// absent) and the consumer convolution whose input channels align (nil
// when the output feeds something that cannot be sliced). Pruning — and
// SPATL's salient-parameter selection — operates on these units: dropping
// output channel k of Conv removes row k of Conv's weight, entry k of the
// BN affine/statistics, and the k-th input-channel column group of Next.
type PrunableUnit struct {
	Conv *nn.Conv2D
	BN   *nn.BatchNorm2D
	Next *nn.Conv2D
}

// PrunableUnits enumerates the encoder's prunable units: every
// basic-block's internal conv1 for ResNets (residual-safe), all VGG convs
// except the final one (whose width the shared predictor input depends
// on), and CNN2's first conv.
func (m *SplitModel) PrunableUnits() []PrunableUnit {
	var units []PrunableUnit
	switch m.Spec.Arch {
	case "resnet20", "resnet32", "resnet56", "resnet18":
		nn.Walk(m.Encoder, func(l nn.Layer) {
			if b, ok := l.(*nn.BasicBlock); ok {
				c1, c2, _ := b.Convs()
				var bn1 *nn.BatchNorm2D
				// bn1 is the second sublayer of the block's main path.
				if bn, ok := b.SubLayers()[1].(*nn.BatchNorm2D); ok {
					bn1 = bn
				}
				units = append(units, PrunableUnit{Conv: c1, BN: bn1, Next: c2})
			}
		})
	case "vgg11", "cnn2":
		// Chain architectures: pair each conv with its following BN (if
		// any) and the next conv in the chain.
		var convs []*nn.Conv2D
		bnAfter := map[*nn.Conv2D]*nn.BatchNorm2D{}
		var lastConv *nn.Conv2D
		nn.Walk(m.Encoder, func(l nn.Layer) {
			switch v := l.(type) {
			case *nn.Conv2D:
				convs = append(convs, v)
				lastConv = v
			case *nn.BatchNorm2D:
				if lastConv != nil {
					bnAfter[lastConv] = v
					lastConv = nil
				}
			}
		})
		for i := 0; i+1 < len(convs); i++ {
			units = append(units, PrunableUnit{Conv: convs[i], BN: bnAfter[convs[i]], Next: convs[i+1]})
		}
	}
	return units
}

// PrunableConvs returns just the convolutions of PrunableUnits, in order.
func (m *SplitModel) PrunableConvs() []*nn.Conv2D {
	units := m.PrunableUnits()
	convs := make([]*nn.Conv2D, len(units))
	for i, u := range units {
		convs[i] = u.Conv
	}
	return convs
}

// EncoderOffsets maps each encoder component to its Segment inside the
// ScopeEncoder state vector: trainable parameters are keyed by their
// weight tensor; BatchNorm running statistics are returned separately in
// layer order (mean segment, variance segment per BN).
func (m *SplitModel) EncoderOffsets() (params map[*tensor.Tensor]Segment, bnStats map[*nn.BatchNorm2D][2]Segment) {
	params = map[*tensor.Tensor]Segment{}
	bnStats = map[*nn.BatchNorm2D][2]Segment{}
	off := 0
	for _, p := range m.EncoderParams() {
		params[p.W] = Segment{Name: p.Name, Off: off, Len: p.W.Len()}
		off += p.W.Len()
	}
	for _, bn := range m.scopeBNs(ScopeEncoder) {
		mean := Segment{Name: "rmean", Off: off, Len: bn.C}
		off += bn.C
		vari := Segment{Name: "rvar", Off: off, Len: bn.C}
		off += bn.C
		bnStats[bn] = [2]Segment{mean, vari}
	}
	return params, bnStats
}
