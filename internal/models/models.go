// Package models provides the architectures evaluated in the SPATL paper
// — VGG-11, ResNet-20/32 (and ResNet-18/56 for the RL-agent transfer
// study), and the LEAF 2-layer CNN — each built as a SplitModel: a shared
// encoder plus a locally customized predictor head, the decomposition at
// the heart of SPATL's heterogeneous knowledge transfer (§IV-A).
//
// Every architecture takes a width multiplier so the full experiment
// suite runs at laptop scale while preserving topology and
// over-parameterization (see DESIGN.md).
package models

import (
	"fmt"
	"math"
	"math/rand"

	"spatl/internal/nn"
	"spatl/internal/tensor"
)

// Spec describes a model to build. The zero Width means 1.0.
type Spec struct {
	Arch    string // "resnet20", "resnet32", "resnet18", "resnet56", "vgg11", "cnn2", "mlp"
	Classes int
	InC     int     // input channels
	H, W    int     // input spatial size
	Width   float64 // width multiplier applied to all hidden widths
	// Dropout, when positive, inserts dropout with this probability in
	// the VGG classifier head (the canonical VGG regularizer).
	Dropout float64
}

// String renders a compact identifier such as "resnet20(w=0.25,16x16)".
func (s Spec) String() string {
	return fmt.Sprintf("%s(w=%g,%dx%d,c=%d)", s.Arch, s.width(), s.H, s.W, s.Classes)
}

func (s Spec) width() float64 {
	if s.Width <= 0 {
		return 1
	}
	return s.Width
}

// ch scales a base channel count by the width multiplier with a floor of
// 4 channels so tiny configurations stay trainable.
func (s Spec) ch(base int) int {
	c := int(math.Round(float64(base) * s.width()))
	if c < 4 {
		c = 4
	}
	return c
}

// SplitModel is an encoder/predictor pair. In SPATL only the encoder is
// shared with the aggregation server; each client keeps its own
// predictor. Baseline algorithms treat the concatenation as one model.
type SplitModel struct {
	Spec      Spec
	Encoder   *nn.Sequential
	Predictor *nn.Sequential
}

// Build constructs the architecture named by spec, seeding all weight
// initialization from seed.
func Build(spec Spec, seed int64) *SplitModel {
	rng := nn.Rng(seed)
	m := &SplitModel{Spec: spec}
	switch spec.Arch {
	case "resnet20":
		m.Encoder, m.Predictor = buildResNet(spec, 3, []int{16, 32, 64}, rng)
	case "resnet32":
		m.Encoder, m.Predictor = buildResNet(spec, 5, []int{16, 32, 64}, rng)
	case "resnet56":
		m.Encoder, m.Predictor = buildResNet(spec, 9, []int{16, 32, 64}, rng)
	case "resnet18":
		m.Encoder, m.Predictor = buildResNet18(spec, rng)
	case "vgg11":
		m.Encoder, m.Predictor = buildVGG11(spec, rng)
	case "cnn2":
		m.Encoder, m.Predictor = buildCNN2(spec, rng)
	case "mlp":
		m.Encoder, m.Predictor = buildMLP(spec, rng)
	default:
		panic(fmt.Sprintf("models: unknown architecture %q", spec.Arch))
	}
	return m
}

// buildResNet builds a CIFAR-style ResNet-(6n+2): stem conv, three stages
// of n basic blocks at the given widths (strides 1,2,2), global average
// pool. The predictor is the final linear classifier.
func buildResNet(spec Spec, n int, widths []int, r *rand.Rand) (*nn.Sequential, *nn.Sequential) {
	w0 := spec.ch(widths[0])
	enc := nn.NewSequential("encoder",
		nn.NewConv2D("stem.conv", spec.InC, w0, 3, 1, 1, false, r),
		nn.NewBatchNorm2D("stem.bn", w0),
		nn.NewReLU("stem.relu"),
	)
	in := w0
	for s, base := range widths {
		out := spec.ch(base)
		for b := 0; b < n; b++ {
			stride := 1
			if s > 0 && b == 0 {
				stride = 2
			}
			enc.Append(nn.NewBasicBlock(fmt.Sprintf("stage%d.block%d", s, b), in, out, stride, r))
			in = out
		}
	}
	enc.Append(nn.NewGlobalAvgPool("gap"))
	pred := nn.NewSequential("predictor", nn.NewLinear("fc", in, spec.Classes, r))
	return enc, pred
}

// buildResNet18 builds a CIFAR-adapted ResNet-18: stem conv, four stages
// of two basic blocks at widths {64,128,256,512}, strides 1,2,2,2.
func buildResNet18(spec Spec, rng *rand.Rand) (*nn.Sequential, *nn.Sequential) {
	w0 := spec.ch(64)
	enc := nn.NewSequential("encoder",
		nn.NewConv2D("stem.conv", spec.InC, w0, 3, 1, 1, false, rng),
		nn.NewBatchNorm2D("stem.bn", w0),
		nn.NewReLU("stem.relu"),
	)
	in := w0
	for s, base := range []int{64, 128, 256, 512} {
		out := spec.ch(base)
		for b := 0; b < 2; b++ {
			stride := 1
			if s > 0 && b == 0 {
				stride = 2
			}
			enc.Append(nn.NewBasicBlock(fmt.Sprintf("stage%d.block%d", s, b), in, out, stride, rng))
			in = out
		}
	}
	enc.Append(nn.NewGlobalAvgPool("gap"))
	pred := nn.NewSequential("predictor", nn.NewLinear("fc", in, spec.Classes, rng))
	return enc, pred
}

// buildVGG11 builds VGG-11 with BatchNorm. The canonical five max-pools
// are kept for the first four; the fifth is replaced by global average
// pooling so the architecture accepts both 32×32 and 16×16 inputs. The
// predictor is a two-layer MLP head, matching the heavier VGG classifier.
func buildVGG11(spec Spec, rng *rand.Rand) (*nn.Sequential, *nn.Sequential) {
	cfg := []int{64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512}
	enc := nn.NewSequential("encoder")
	in := spec.InC
	ci, pi := 0, 0
	for _, v := range cfg {
		if v == -1 {
			enc.Append(nn.NewMaxPool2D(fmt.Sprintf("pool%d", pi), 2))
			pi++
			continue
		}
		out := spec.ch(v)
		enc.Append(
			nn.NewConv2D(fmt.Sprintf("conv%d", ci), in, out, 3, 1, 1, false, rng),
			nn.NewBatchNorm2D(fmt.Sprintf("bn%d", ci), out),
			nn.NewReLU(fmt.Sprintf("relu%d", ci)),
		)
		in = out
		ci++
	}
	enc.Append(nn.NewGlobalAvgPool("gap"))
	hidden := spec.ch(256)
	pred := nn.NewSequential("predictor",
		nn.NewLinear("fc1", in, hidden, rng),
		nn.NewReLU("relu"),
	)
	if spec.Dropout > 0 {
		pred.Append(nn.NewDropout("drop", spec.Dropout, rng.Int63()))
	}
	pred.Append(nn.NewLinear("fc2", hidden, spec.Classes, rng))
	return enc, pred
}

// buildCNN2 builds the LEAF FEMNIST 2-layer CNN: two 5×5 convolutions
// with 2×2 max pools, then a hidden linear layer. The predictor is the
// final classifier.
func buildCNN2(spec Spec, rng *rand.Rand) (*nn.Sequential, *nn.Sequential) {
	c1, c2 := spec.ch(32), spec.ch(64)
	h, w := spec.H/4, spec.W/4
	hidden := spec.ch(512)
	enc := nn.NewSequential("encoder",
		nn.NewConv2D("conv1", spec.InC, c1, 5, 1, 2, true, rng),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool1", 2),
		nn.NewConv2D("conv2", c1, c2, 5, 1, 2, true, rng),
		nn.NewReLU("relu2"),
		nn.NewMaxPool2D("pool2", 2),
		nn.NewFlatten("flat"),
		nn.NewLinear("fc1", c2*h*w, hidden, rng),
		nn.NewReLU("relu3"),
	)
	pred := nn.NewSequential("predictor", nn.NewLinear("fc2", hidden, spec.Classes, rng))
	return enc, pred
}

// buildMLP builds a small fully connected network for tests and examples.
func buildMLP(spec Spec, rng *rand.Rand) (*nn.Sequential, *nn.Sequential) {
	in := spec.InC * spec.H * spec.W
	hidden := spec.ch(64)
	enc := nn.NewSequential("encoder",
		nn.NewFlatten("flat"),
		nn.NewLinear("fc1", in, hidden, rng),
		nn.NewReLU("relu1"),
		nn.NewLinear("fc2", hidden, hidden, rng),
		nn.NewReLU("relu2"),
	)
	pred := nn.NewSequential("predictor", nn.NewLinear("fc3", hidden, spec.Classes, rng))
	return enc, pred
}

// Forward runs encoder then predictor.
func (m *SplitModel) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.Predictor.Forward(m.Encoder.Forward(x, train), train)
}

// Backward propagates the logit gradient through predictor and encoder.
func (m *SplitModel) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return m.Encoder.Backward(m.Predictor.Backward(dout))
}

// Params returns all trainable parameters (encoder then predictor).
func (m *SplitModel) Params() []*nn.Param {
	return append(m.Encoder.Params(), m.Predictor.Params()...)
}

// EncoderParams returns the shared (generic) trainable parameters.
func (m *SplitModel) EncoderParams() []*nn.Param { return m.Encoder.Params() }

// PredictorParams returns the locally kept trainable parameters.
func (m *SplitModel) PredictorParams() []*nn.Param { return m.Predictor.Params() }

// Clone builds a fresh model with the same spec and copies all state
// (weights and BatchNorm running statistics).
func (m *SplitModel) Clone() *SplitModel {
	c := Build(m.Spec, 0)
	c.SetState(ScopeAll, m.State(ScopeAll))
	return c
}

// FLOPs reports per-instance forward FLOPs after a forward pass (use
// Describe to populate geometry).
func (m *SplitModel) FLOPs() int64 { return m.Encoder.FLOPs() + m.Predictor.FLOPs() }

// Describe runs a single dummy instance through the model in eval mode so
// every layer caches its geometry, and returns (paramCount, flops).
func (m *SplitModel) Describe() (params int, flops int64) {
	x := tensor.New(1, m.Spec.InC, m.Spec.H, m.Spec.W)
	if m.Spec.Arch == "mlp" {
		x = tensor.New(1, m.Spec.InC, m.Spec.H, m.Spec.W)
	}
	m.Forward(x, false)
	return nn.ParamCount(m.Params()), m.FLOPs()
}
