package models

import (
	"path/filepath"
	"testing"

	"spatl/internal/nn"
	"spatl/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	for _, arch := range []string{"resnet20", "vgg11", "mlp"} {
		t.Run(arch, func(t *testing.T) {
			spec := specFor(arch)
			m := Build(spec, 7)
			x := tensor.New(3, spec.InC, spec.H, spec.W)
			x.Randn(nn.Rng(8), 1)
			m.Forward(x, true) // move BN stats

			blob := m.Save()
			m2, err := Load(blob)
			if err != nil {
				t.Fatal(err)
			}
			if m2.Spec != spec {
				t.Fatalf("spec round trip: %v vs %v", m2.Spec, spec)
			}
			o1, o2 := m.Forward(x, false), m2.Forward(x, false)
			for i := range o1.Data {
				if o1.Data[i] != o2.Data[i] {
					t.Fatal("loaded model output differs")
				}
			}
		})
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	spec := specFor("mlp")
	m := Build(spec, 9)
	path := filepath.Join(t.TempDir(), "model.ckpt")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := m.State(ScopeAll), m2.State(ScopeAll)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("file round trip mismatch")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load([]byte("not a checkpoint")); err == nil {
		t.Fatal("expected error for garbage")
	}
	blob := Build(specFor("mlp"), 1).Save()
	if _, err := Load(blob[:len(blob)-4]); err == nil {
		t.Fatal("expected error for truncated checkpoint")
	}
	blob[0] ^= 0xFF
	if _, err := Load(blob); err == nil {
		t.Fatal("expected error for corrupted magic")
	}
}
