package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func TestMuxMetricsAndHealth(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rounds").Add(7)
	reg.Gauge("clients").Set(3)
	reg.Histogram("lat.ns", []int64{10, 100}).Observe(42)
	mux := NewMux(reg)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics content type %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics is not a Snapshot document: %v\n%s", err, rec.Body.Bytes())
	}
	if snap.Counters["rounds"] != 7 || snap.Gauges["clients"] != 3 {
		t.Fatalf("snapshot over HTTP lost values: %+v", snap)
	}
	if h := snap.Histograms["lat.ns"]; h.Count != 1 || h.Sum != 42 {
		t.Fatalf("histogram over HTTP lost records: %+v", h)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Fatalf("/healthz: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/pprof/ status %d", rec.Code)
	}
}
