package telemetry

import (
	"sync"
	"time"
)

// Tracer hands out lightweight spans. A span is a named monotonic
// timing scope: End records the elapsed nanoseconds into the registry
// histogram "span.<name>.ns" (DurationBounds buckets). Spans nest —
// Child opens a sub-span sharing the parent's trace ID — and are
// pooled, so steady-state tracing allocates nothing and costs a couple
// of clock reads plus a few atomic adds per span: cheap enough to
// leave on inside benchmarked round loops.
//
// A nil *Tracer (and the nil *Span it returns) disables tracing with a
// single branch per call site.
type Tracer struct {
	reg    *Registry
	hists  sync.Map // span name -> *Histogram, avoids per-start concat
	active Gauge
	pool   sync.Pool
}

// NewTracer builds a tracer recording into reg and exposes the live
// span count as the gauge "trace.active_spans".
func NewTracer(reg *Registry) *Tracer {
	t := &Tracer{reg: reg}
	t.pool.New = func() any { return new(Span) }
	reg.AttachGauge("trace.active_spans", &t.active)
	return t
}

// histFor resolves (and caches) the duration histogram for one span
// name, so Start never builds a "span."+name string on the hot path.
func (t *Tracer) histFor(name string) *Histogram {
	if h, ok := t.hists.Load(name); ok {
		return h.(*Histogram)
	}
	h := t.reg.Histogram("span."+name+".ns", DurationBounds)
	t.hists.Store(name, h)
	return h
}

// Start opens a root span under the given trace ID. By convention FL
// code uses round+1 as the trace ID so round 0 is distinguishable from
// "no trace". Nil-safe.
func (t *Tracer) Start(trace uint64, name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(trace, name, nil)
}

func (t *Tracer) start(trace uint64, name string, parent *Span) *Span {
	sp := t.pool.Get().(*Span)
	sp.tracer = t
	sp.name = name
	sp.trace = trace
	sp.parent = parent
	sp.hist = t.histFor(name)
	t.active.Add(1)
	sp.start = time.Now() // last: exclude setup from the measured window
	return sp
}

// Span is one open timing scope. Spans are owned by a single
// goroutine; End at most once.
type Span struct {
	tracer *Tracer
	hist   *Histogram
	parent *Span
	name   string
	trace  uint64
	start  time.Time
}

// Child opens a nested span under the same trace ID. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tracer.start(s.trace, name, s)
}

// TraceID returns the span's trace ID (0 for a nil span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.trace
}

// Name returns the span's name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Parent returns the enclosing span (nil for roots).
func (s *Span) Parent() *Span {
	if s == nil {
		return nil
	}
	return s.parent
}

// End closes the span, records its duration and returns the elapsed
// nanoseconds (0 for a nil or already-ended span). The span is
// recycled; the pointer must not be used afterwards.
func (s *Span) End() int64 {
	if s == nil || s.tracer == nil {
		return 0
	}
	d := time.Since(s.start).Nanoseconds()
	s.hist.Observe(d)
	t := s.tracer
	t.active.Add(-1)
	*s = Span{}
	t.pool.Put(s)
	return d
}
