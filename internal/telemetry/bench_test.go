package telemetry

import (
	"io"
	"testing"
)

// The telemetry-overhead benchmarks: these per-op costs, multiplied by
// the handful of telemetry operations a round performs, are what the
// fl overhead-budget test holds against 1% of a round's wall time.

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBounds)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkRegistryCounterLookup(b *testing.B) {
	r := NewRegistry()
	r.Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("bench").Inc()
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	tr := NewTracer(NewRegistry())
	tr.Start(1, "bench").End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start(1, "bench").End()
	}
}

func BenchmarkSpanStartEndDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start(1, "bench").End()
	}
}

func BenchmarkJournalEmit(b *testing.B) {
	j := NewJournal(io.Discard)
	j.SetZeroTime(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j.Emit(ClientUpload(i, 3, 4096, 100))
	}
}
