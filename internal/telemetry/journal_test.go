package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// allEvents is one of every journal event, the shape each constructor
// pins down.
func allEvents() []Event {
	return []Event{
		RoundStart(0, 3, 128),
		ClientUpload(0, 0, 64, 1500),
		ClientTrain(0, 1, 2500),
		Straggler(0, 1),
		Drop(0, 2),
		Aggregate(0, 1, 900),
		Eval(0, 0.8125),
		ClientApply(0, 0, 64),
		ShardPush(0, 1, 2, 256),
		ShardDrop(0, 1, 2),
		Quorum(0, 2),
		LateUpload(0, 2, 64),
		MaskAgreement(0, 48, 197),
		RoundEnd(0, 64, 384),
	}
}

// TestJournalGoldenRoundTrip emits one of every event with zeroed
// timestamps, checks the bytes against the committed golden file, and
// decodes every emitted line back into an identical Event — the wire
// schema contract.
func TestJournalGoldenRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.SetZeroTime(true)
	events := allEvents()
	for _, e := range events {
		j.Emit(e)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "events.golden.jsonl")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("journal bytes diverged from golden:\ngot:\n%swant:\n%s", buf.Bytes(), want)
	}

	// Round-trip: every line must decode to the event that produced it.
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	i := 0
	for sc.Scan() {
		var got Event
		if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
			t.Fatalf("line %d does not decode: %v", i, err)
		}
		if i >= len(events) {
			t.Fatalf("more lines than events emitted")
		}
		want := events[i]
		want.TS, want.Dur = 0, 0 // zero-time mode normalizes both on emit
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("line %d round-trip mismatch:\ngot  %+v\nwant %+v", i, got, want)
		}
		i++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(events) {
		t.Fatalf("decoded %d lines, emitted %d", i, len(events))
	}
	if j.Events() != int64(len(events)) {
		t.Fatalf("event counter %d, want %d", j.Events(), len(events))
	}
}

// TestJournalZeroTime: zero-time mode must clear timestamps AND
// durations, and two emissions of the same sequence must be
// byte-identical.
func TestJournalZeroTime(t *testing.T) {
	run := func() []byte {
		var buf bytes.Buffer
		j := NewJournal(&buf)
		j.SetZeroTime(true)
		j.Emit(ClientUpload(2, 1, 64, 123456))
		j.Emit(RoundEnd(2, 64, 64))
		if err := j.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("zero-time journals differ:\n%s\nvs\n%s", a, b)
	}
	var e Event
	if err := json.Unmarshal(bytes.Split(a, []byte("\n"))[0], &e); err != nil {
		t.Fatal(err)
	}
	if e.TS != 0 || e.Dur != 0 {
		t.Fatalf("zero-time left ts=%d dur=%d", e.TS, e.Dur)
	}
}

// TestJournalTimestamps: outside zero-time mode, emitted events carry
// a wall-clock timestamp.
func TestJournalTimestamps(t *testing.T) {
	var buf bytes.Buffer
	j := NewJournal(&buf)
	j.Emit(RoundStart(0, 1, 8))
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal(buf.Bytes()[:len(buf.Bytes())-1], &e); err != nil {
		t.Fatal(err)
	}
	if e.TS == 0 {
		t.Fatal("expected a nonzero timestamp")
	}
}

// errWriter fails after n bytes, to exercise sticky errors.
type errWriter struct{ left int }

func (w *errWriter) Write(p []byte) (int, error) {
	if len(p) > w.left {
		n := w.left
		w.left = 0
		return n, os.ErrClosed
	}
	w.left -= len(p)
	return len(p), nil
}

func TestJournalStickyError(t *testing.T) {
	j := NewJournal(&errWriter{left: 10})
	for i := 0; i < 2000; i++ {
		j.Emit(RoundEnd(i, 0, 0)) // round_end forces a flush
	}
	if j.Err() == nil {
		t.Fatal("expected a sticky write error")
	}
}
