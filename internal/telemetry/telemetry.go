// Package telemetry is the repo's zero-dependency observability
// substrate: a concurrency-safe metrics registry (atomic counters,
// gauges and fixed-bucket histograms with lock-free recording),
// lightweight span tracing cheap enough to leave on in benchmarks, and
// a JSONL round journal that emits one structured event per federated
// lifecycle transition.
//
// The three surfaces are bundled in a Set, which every instrumented
// layer accepts; a nil *Set (or nil field) disables that surface with
// nothing but a nil check on the hot path, so un-telemetered runs pay
// essentially nothing.
//
// Determinism rule: telemetry observes, it never participates.
// Recording a metric, opening a span or emitting an event must not
// change any numeric result or reorder any lifecycle transition, and
// every journal emission happens from sequential transport code so the
// event sequence of a seeded run is reproducible byte-for-byte once
// timestamps are zeroed (see Journal.SetZeroTime).
package telemetry

import "io"

// DurationBounds are the default histogram bucket upper bounds for
// span durations, in nanoseconds: 1µs to 100s in decades.
var DurationBounds = []int64{
	1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
}

// SizeBounds are the default histogram bucket upper bounds for payload
// sizes, in bytes: 64B to 64MiB in multiples of four.
var SizeBounds = []int64{
	64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// Set bundles the three telemetry surfaces handed to instrumented
// layers. All methods are safe on a nil receiver and on nil fields, so
// callers thread a Set unconditionally and pay one branch when
// telemetry is off.
type Set struct {
	Reg     *Registry
	Trace   *Tracer
	Journal *Journal
}

// New builds a Set with a fresh registry and tracer. When journal is
// non-nil a round journal writing JSONL to it is attached and its
// event counter bound into the registry.
func New(journal io.Writer) *Set {
	reg := NewRegistry()
	s := &Set{Reg: reg, Trace: NewTracer(reg)}
	if journal != nil {
		s.Journal = NewJournal(journal)
		s.Journal.Bind(reg)
	}
	return s
}

// Span starts a span under the given trace ID (conventionally
// round+1, so round 0 is distinguishable from "no trace"). Nil-safe.
func (s *Set) Span(trace uint64, name string) *Span {
	if s == nil {
		return nil
	}
	return s.Trace.Start(trace, name)
}

// Emit writes one event to the round journal, if one is attached.
func (s *Set) Emit(e Event) {
	if s == nil {
		return
	}
	s.Journal.Emit(e)
}

// Counter returns the named registry counter (nil when the set or its
// registry is nil — the returned nil counter is itself safe to use).
func (s *Set) Counter(name string) *Counter {
	if s == nil {
		return nil
	}
	return s.Reg.Counter(name)
}

// Size records a payload size into the named histogram (SizeBounds
// buckets). Nil-safe.
func (s *Set) Size(name string, n int64) {
	if s == nil || s.Reg == nil {
		return
	}
	s.Reg.Histogram(name, SizeBounds).Observe(n)
}
