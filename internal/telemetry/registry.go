package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use, so counters can be embedded in other structs (see
// comm.Meter) and attached to a registry afterwards. All methods are
// safe on a nil receiver.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Reset zeroes the counter.
func (c *Counter) Reset() {
	if c != nil {
		c.v.Store(0)
	}
}

// Gauge is an atomic instantaneous value. Zero value ready; nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (use for up/down occupancy gauges).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 observations
// (durations in nanoseconds, sizes in bytes). Bucket i counts
// observations v ≤ bounds[i]; one extra overflow bucket counts the
// rest. Recording is lock-free: a linear scan over the (small, fixed)
// bounds plus three atomic adds.
type Histogram struct {
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1, last = overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// NewHistogram builds a histogram with the given ascending bucket
// upper bounds. The bounds slice is copied.
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("telemetry: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// reset zeroes all buckets and totals.
func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// snapshot copies the histogram state. Under concurrent recording the
// per-bucket counts, count and sum are each atomically read but may be
// mutually inconsistent by the few records in flight — snapshots are a
// monitoring view, not a barrier.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is the exported state of one histogram. Counts has one
// more entry than Bounds (the overflow bucket).
type HistSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Snapshot is a point-in-time view of a registry. encoding/json
// marshals map keys sorted, so serialized snapshots are deterministic
// for deterministic metric values.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Registry is a named-metric table. Registration and name lookup take
// a read-write mutex (rare, and read-mostly); recording on the handles
// a lookup returns is lock-free. Hot paths should resolve handles once
// and hold them.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() int64{},
	}
}

// Counter returns the named counter, creating it on first use.
// Nil-safe: a nil registry returns a nil (still usable) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Attach adopts an externally owned counter under name, so metrics
// that live inside other structs (comm.Meter, flnet.Server) are read
// through the registry like any other — one way to read every counter.
// A previous metric under the same name is replaced.
func (r *Registry) Attach(name string, c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] = c
	r.mu.Unlock()
}

// AttachGauge adopts an externally owned gauge under name.
func (r *Registry) AttachGauge(name string, g *Gauge) {
	if r == nil || g == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = g
	r.mu.Unlock()
}

// Func registers a callback gauge: fn is evaluated at snapshot time
// and reported alongside the gauges, at zero hot-path cost to the
// instrumented code.
func (r *Registry) Func(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot captures every metric. Callback gauges are evaluated here.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.funcs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Reset zeroes every counter, gauge and histogram (callback gauges,
// which own no state here, are untouched). Attached metrics are zeroed
// too — they are the same objects their owners read.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.Reset()
	}
	for _, g := range r.gauges {
		g.Set(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// WriteJSON writes an indented JSON snapshot — the expvar-style
// document served at /metrics. Deterministic: map keys sort.
func (r *Registry) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}
