package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves an indented JSON snapshot of reg — the expvar-style
// document: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
}

// NewMux builds the diagnostics mux served behind -telemetry-addr:
//
//	/metrics       JSON registry snapshot
//	/healthz       liveness probe
//	/debug/pprof/  the standard Go profiler endpoints
//
// The pprof handlers are mounted explicitly so nothing leaks onto
// http.DefaultServeMux.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
