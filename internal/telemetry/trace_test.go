package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestSpanRecordsIntoRegistry(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	sp := tr.Start(7, "train")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < int64(time.Millisecond) {
		t.Fatalf("span duration %dns, want ≥ 1ms", d)
	}
	h := reg.Histogram("span.train.ns", DurationBounds)
	if h.Count() != 1 || h.Sum() != d {
		t.Fatalf("histogram count=%d sum=%d, want 1/%d", h.Count(), h.Sum(), d)
	}
}

func TestSpanNesting(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	root := tr.Start(3, "round")
	child := root.Child("train")
	grand := child.Child("encode")
	if grand.TraceID() != 3 || child.TraceID() != 3 {
		t.Fatalf("children must inherit the trace ID, got %d/%d", child.TraceID(), grand.TraceID())
	}
	if grand.Parent() != child || child.Parent() != root || root.Parent() != nil {
		t.Fatal("parent chain broken")
	}
	if reg.Gauge("trace.active_spans") == nil {
		t.Fatal("active span gauge not registered")
	}
	if got := reg.Snapshot().Gauges["trace.active_spans"]; got != 3 {
		t.Fatalf("active spans %d, want 3", got)
	}
	grand.End()
	child.End()
	root.End()
	if got := reg.Snapshot().Gauges["trace.active_spans"]; got != 0 {
		t.Fatalf("active spans after End %d, want 0", got)
	}
	for _, name := range []string{"span.round.ns", "span.train.ns", "span.encode.ns"} {
		if reg.Histogram(name, DurationBounds).Count() != 1 {
			t.Fatalf("%s not recorded", name)
		}
	}
}

// TestSpanConcurrent exercises the span pool from many goroutines
// (run under -race).
func TestSpanConcurrent(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tr.Start(uint64(i), "hot")
				sp.Child("inner").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := reg.Histogram("span.hot.ns", DurationBounds).Count(); got != workers*per {
		t.Fatalf("span count %d, want %d", got, workers*per)
	}
}

// TestSpanSteadyStateAllocs: pooled spans must not allocate once warm,
// which is what makes leaving tracing on in benchmarks viable.
func TestSpanSteadyStateAllocs(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg)
	tr.Start(1, "warm").End() // warm the name cache and pool
	allocs := testing.AllocsPerRun(200, func() {
		tr.Start(1, "warm").End()
	})
	if allocs > 0 {
		t.Fatalf("steady-state span costs %.1f allocs/op, want 0", allocs)
	}
}
