package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestHistogramBucketEdges pins the bucket boundary convention: bucket
// i counts v ≤ bounds[i], the last bucket overflows.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0}, {9, 0}, {10, 0}, // at the bound → lower bucket
		{11, 1}, {100, 1},
		{101, 2}, {1000, 2},
		{1001, 3}, {1 << 40, 3}, // overflow
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.snapshot()
	want := []int64{4, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != int64(len(cases)) {
		t.Errorf("count %d want %d", s.Count, len(cases))
	}
	var sum int64
	for _, c := range cases {
		sum += c.v
	}
	if s.Sum != sum {
		t.Errorf("sum %d want %d", s.Sum, sum)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewHistogram([]int64{10, 10})
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x")
	c1.Add(3)
	if c2 := r.Counter("x"); c2 != c1 || c2.Value() != 3 {
		t.Fatal("Counter did not return the same handle")
	}
	g := r.Gauge("g")
	g.Set(7)
	if r.Gauge("g").Value() != 7 {
		t.Fatal("Gauge did not return the same handle")
	}
	h := r.Histogram("h", []int64{1, 2})
	h.Observe(1)
	if r.Histogram("h", []int64{9}).Count() != 1 {
		t.Fatal("Histogram did not return the same handle")
	}
}

// TestRegistryAttach verifies the one-way-to-read-counters contract:
// an attached counter and the registry view are the same object.
func TestRegistryAttach(t *testing.T) {
	r := NewRegistry()
	var owned Counter
	r.Attach("ext.count", &owned)
	owned.Add(5)
	if got := r.Snapshot().Counters["ext.count"]; got != 5 {
		t.Fatalf("snapshot sees %d, want 5", got)
	}
	r.Counter("ext.count").Add(2)
	if owned.Value() != 7 {
		t.Fatalf("owner sees %d, want 7", owned.Value())
	}
	r.Reset()
	if owned.Value() != 0 {
		t.Fatalf("reset did not zero attached counter: %d", owned.Value())
	}
}

func TestRegistryFuncGauge(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.Func("fn", func() int64 { return v })
	v++
	if got := r.Snapshot().Gauges["fn"]; got != 42 {
		t.Fatalf("func gauge %d, want 42", got)
	}
}

// TestSnapshotDeterministicJSON asserts two identical registries
// serialize byte-identically (map keys sort under encoding/json).
func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		for _, n := range []string{"z.last", "a.first", "m.mid"} {
			r.Counter(n).Add(int64(len(n)))
			r.Gauge("g." + n).Set(9)
			r.Histogram("h."+n, []int64{1, 10}).Observe(5)
		}
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	var s Snapshot
	if err := json.Unmarshal(b1.Bytes(), &s); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

// TestRegistryRaceHammer hammers every metric kind from many
// goroutines while snapshots and resets run concurrently; run under
// -race this is the lock-freedom proof, and after the joins the totals
// must be exact.
func TestRegistryRaceHammer(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		perW    = 2000
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	var hw sync.WaitGroup
	for w := 0; w < workers; w++ {
		hw.Add(1)
		go func(w int) {
			defer hw.Done()
			for i := 0; i < perW; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", DurationBounds).Observe(int64(i))
			}
		}(w)
	}
	hw.Wait()
	close(stop)
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perW {
		t.Fatalf("counter %d, want %d", got, workers*perW)
	}
	if got := r.Gauge("g").Value(); got != workers*perW {
		t.Fatalf("gauge %d, want %d", got, workers*perW)
	}
	if got := r.Histogram("h", DurationBounds).Count(); got != workers*perW {
		t.Fatalf("histogram count %d, want %d", got, workers*perW)
	}
}

// TestNilSafety: every surface must be inert, not panic, when off.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", DurationBounds).Observe(1)
	r.Func("x", func() int64 { return 0 })
	r.Reset()
	_ = r.Snapshot()

	var s *Set
	s.Span(1, "x").Child("y").End()
	s.Emit(RoundStart(0, 1, 2))
	s.Counter("x").Inc()
	s.Size("x", 9)

	var tr *Tracer
	tr.Start(1, "x").End()

	var j *Journal
	j.Emit(RoundEnd(0, 1, 2))
	j.SetZeroTime(true)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
}
