package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// The round journal is the repo's flight recorder: one JSON object per
// federated lifecycle transition, newline-delimited, in the order the
// transitions were committed by the transport. Both transports
// (internal/fl in-process, internal/flnet TCP) emit the identical
// event sequence for an identical seeded run — events are emitted only
// from sequential transport code, never from inside parallel client
// regions — so with timestamps zeroed a journal is reproducible
// byte-for-byte and diffable across transports and runs.

// Event names, one per lifecycle transition.
const (
	EvRoundStart    = "round_start"       // server: broadcast built, round opened
	EvRoundEnd      = "round_end"         // server: round closed, cumulative traffic
	EvClientTrain   = "client_train"      // client: local update finished
	EvClientUpload  = "client_upload"     // server: one client's upload applied (client: upload sent)
	EvClientApply   = "client_apply"      // client: final model installed
	EvStraggler     = "straggler_timeout" // server: upload missed the straggler deadline
	EvDrop          = "drop"              // server: contribution lost (crash, I/O or protocol error)
	EvAggregate     = "aggregate"         // server: uploads folded into the global model
	EvEval          = "eval"              // harness: periodic accuracy evaluation
	EvShardPush     = "shard_push"        // edge: pooled shard payload forwarded upstream
	EvShardDrop     = "shard_drop"        // root: an entire shard's contribution was lost
	EvQuorum        = "quorum_reached"    // server: round closed at quorum K before the deadline
	EvLateUpload    = "late_upload"       // server: straggler upload folded into a later round
	EvMaskAgree     = "mask_agreement"    // server: SSFL global mask agreed, sparse epoch begins
	EvClusterAssign = "cluster_assign"    // server: hetero cluster (re-)assignment committed
)

// NoClient marks events that are not scoped to one client.
const NoClient = -1

// Event is one journal line. Every field is always serialized, in
// struct order, so lines decode into a fixed schema and two journals
// of the same run are comparable byte-for-byte.
type Event struct {
	TS     int64   `json:"ts"`     // unix nanoseconds; 0 in zero-time mode
	Ev     string  `json:"ev"`     // one of the Ev* names
	Round  int     `json:"round"`  // communication round, 0-based
	Client int     `json:"client"` // client ID, or NoClient
	Bytes  int64   `json:"bytes"`  // payload bytes moved by this event
	Up     int64   `json:"up"`     // cumulative uplink payload bytes (round_end)
	Down   int64   `json:"down"`   // cumulative downlink payload bytes (round_end)
	Dur    int64   `json:"dur_ns"` // phase duration; 0 in zero-time mode
	N      int     `json:"n"`      // generic count (selected clients, folded uploads)
	Acc    float64 `json:"acc"`    // accuracy (eval)
}

// RoundStart: the server opened round with n selected clients and a
// broadcast payload of the given size.
func RoundStart(round, n int, bytes int64) Event {
	return Event{Ev: EvRoundStart, Round: round, Client: NoClient, N: n, Bytes: bytes}
}

// RoundEnd: the round closed with the given cumulative uplink and
// downlink payload bytes.
func RoundEnd(round int, up, down int64) Event {
	return Event{Ev: EvRoundEnd, Round: round, Client: NoClient, Up: up, Down: down}
}

// ClientTrain: a client finished its local update (client-side event).
func ClientTrain(round, client int, durNS int64) Event {
	return Event{Ev: EvClientTrain, Round: round, Client: client, Dur: durNS}
}

// ClientUpload: one client's upload of the given size was accepted, in
// apply order (server side); durNS is broadcast-to-apply latency where
// the transport knows it.
func ClientUpload(round, client int, bytes, durNS int64) Event {
	return Event{Ev: EvClientUpload, Round: round, Client: client, Bytes: bytes, Dur: durNS}
}

// ClientApply: a client installed the final model (client-side event).
func ClientApply(round, client int, bytes int64) Event {
	return Event{Ev: EvClientApply, Round: round, Client: client, Bytes: bytes}
}

// Straggler: a selected client missed the straggler deadline.
func Straggler(round, client int) Event {
	return Event{Ev: EvStraggler, Round: round, Client: client}
}

// Drop: a selected client's contribution was lost this round.
func Drop(round, client int) Event {
	return Event{Ev: EvDrop, Round: round, Client: client}
}

// Aggregate: n uploads were folded into the global model.
func Aggregate(round, n int, durNS int64) Event {
	return Event{Ev: EvAggregate, Round: round, Client: NoClient, N: n, Dur: durNS}
}

// Eval: the harness measured mean accuracy after round.
func Eval(round int, acc float64) Event {
	return Event{Ev: EvEval, Round: round, Client: NoClient, Acc: acc}
}

// ShardPush: shard forwarded its pooled payload of n uploads upstream.
// The shard ID rides in the Client field (shards, like clients, are
// small dense integers — the fixed schema stays fixed).
func ShardPush(round, shard, n int, bytes int64) Event {
	return Event{Ev: EvShardPush, Round: round, Client: shard, N: n, Bytes: bytes}
}

// ShardDrop: an entire shard (its edge aggregator died or timed out)
// contributed nothing this round; n is the number of selected clients
// lost with it. Shard ID in the Client field, as in ShardPush.
func ShardDrop(round, shard, n int) Event {
	return Event{Ev: EvShardDrop, Round: round, Client: shard, N: n}
}

// Quorum: the round closed at quorum with n uploads folded, before the
// straggler deadline.
func Quorum(round, n int) Event {
	return Event{Ev: EvQuorum, Round: round, Client: NoClient, N: n}
}

// LateUpload: a straggler's upload from an earlier round was folded into
// round (FedBuff-style buffered aggregation); bytes is the payload size.
func LateUpload(round, client int, bytes int64) Event {
	return Event{Ev: EvLateUpload, Round: round, Client: client, Bytes: bytes}
}

// MaskAgreement: the server reduced client saliency scores into the
// global mask at the end of round; n is the number of salient state
// elements and bytes the values-only frame size each subsequent round
// will carry per payload. Emitted once per federation, from sequential
// aggregation code — it appears at the same journal position on every
// transport.
func MaskAgreement(round, n int, bytes int64) Event {
	return Event{Ev: EvMaskAgree, Round: round, Client: NoClient, N: n, Bytes: bytes}
}

// ClusterAssign: the hetero aggregator committed a cluster
// (re-)assignment at the end of round; one event per cluster, emitted
// in ascending cluster order from sequential aggregation code, so the
// block sits at the same journal position on every transport. The
// cluster ID rides in the Client field (clusters, like shards, are
// small dense integers — the fixed schema stays fixed); n is the
// cluster's member count.
func ClusterAssign(round, cluster, size int) Event {
	return Event{Ev: EvClusterAssign, Round: round, Client: cluster, N: size}
}

// Journal serializes events as JSONL. Emission takes a mutex — journal
// events are per-lifecycle-transition, tens per round, never
// per-parameter — and buffers writes, flushing at every round_end and
// on Flush/Close. A nil *Journal discards everything.
type Journal struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	zero   bool
	events Counter
	err    error
}

// NewJournal builds a journal writing to w. The caller owns closing
// any underlying file after Flush (or via Close).
func NewJournal(w io.Writer) *Journal {
	bw := bufio.NewWriterSize(w, 32<<10)
	return &Journal{bw: bw, enc: json.NewEncoder(bw)}
}

// SetZeroTime toggles zero-time mode: timestamps and durations are
// forced to zero on emit, making a seeded run's journal byte-identical
// across repetitions (the determinism tests' mode).
func (j *Journal) SetZeroTime(on bool) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.zero = on
	j.mu.Unlock()
}

// Bind exposes the journal's emitted-event count through reg as the
// counter "journal.events".
func (j *Journal) Bind(reg *Registry) {
	if j == nil {
		return
	}
	reg.Attach("journal.events", &j.events)
}

// Emit appends one event. Write errors are sticky (see Err); emission
// never panics or blocks the round loop on a broken sink.
func (j *Journal) Emit(e Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if j.zero {
		e.TS, e.Dur = 0, 0
	} else if e.TS == 0 {
		e.TS = time.Now().UnixNano()
	}
	if err := j.enc.Encode(&e); err != nil {
		j.err = err
		return
	}
	j.events.Inc()
	if e.Ev == EvRoundEnd {
		j.err = j.bw.Flush()
	}
}

// Events returns how many events have been emitted.
func (j *Journal) Events() int64 {
	if j == nil {
		return 0
	}
	return j.events.Value()
}

// Flush forces buffered events to the sink.
func (j *Journal) Flush() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.bw.Flush()
	return j.err
}

// Err returns the first write error, if any.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
