// Package netsim converts measured communication volume into simulated
// wall-clock time over heterogeneous edge links. The paper argues from
// bytes; deployments care about seconds — synchronous federated rounds
// wait for the slowest selected client (the straggler), so per-round
// time is the max over participants of download + compute + upload.
//
// Link populations are sampled log-normally around profile medians,
// reflecting the long-tailed uplink distributions of real mobile fleets.
package netsim

import (
	"math"
	"math/rand"
)

// Link is one client's connectivity.
type Link struct {
	UpMbps    float64
	DownMbps  float64
	LatencyMs float64
}

// UploadSec returns the time to push n bytes over the uplink, including
// one latency round trip.
func (l Link) UploadSec(n int64) float64 {
	return float64(n)*8/(l.UpMbps*1e6) + l.LatencyMs/1000
}

// DownloadSec returns the time to pull n bytes over the downlink,
// including one latency round trip.
func (l Link) DownloadSec(n int64) float64 {
	return float64(n)*8/(l.DownMbps*1e6) + l.LatencyMs/1000
}

// Profile parameterizes a link population: medians plus a log-normal
// spread (sigma of ln-rate; 0 = homogeneous fleet).
type Profile struct {
	MedianUpMbps   float64
	MedianDownMbps float64
	Spread         float64
	LatencyMs      float64
}

// Mobile approximates a 4G edge fleet: asymmetric, long-tailed.
var Mobile = Profile{MedianUpMbps: 8, MedianDownMbps: 40, Spread: 0.6, LatencyMs: 50}

// Broadband approximates fixed-line clients.
var Broadband = Profile{MedianUpMbps: 40, MedianDownMbps: 200, Spread: 0.4, LatencyMs: 15}

// ProfileByName resolves the named link populations ("mobile",
// "broadband"); ok is false for unknown names.
func ProfileByName(name string) (Profile, bool) {
	switch name {
	case "mobile":
		return Mobile, true
	case "broadband":
		return Broadband, true
	}
	return Profile{}, false
}

// ComputeProfile parameterizes per-client local-training time:
// log-normal around a median, the same long-tailed shape the link
// populations use — the compute-heterogeneity axis (a phone SoC vs a
// desktop GPU differ by orders of magnitude on the same local epoch).
type ComputeProfile struct {
	MedianSec float64
	Spread    float64 // sigma of ln-time; 0 = homogeneous fleet
}

// SampleCompute draws n per-client local-update durations from the
// profile.
func SampleCompute(n int, p ComputeProfile, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = p.MedianSec * math.Exp(rng.NormFloat64()*p.Spread)
	}
	return out
}

// SampleLinks draws n client links from the profile.
func SampleLinks(n int, p Profile, seed int64) []Link {
	rng := rand.New(rand.NewSource(seed))
	links := make([]Link, n)
	for i := range links {
		links[i] = Link{
			UpMbps:    p.MedianUpMbps * math.Exp(rng.NormFloat64()*p.Spread),
			DownMbps:  p.MedianDownMbps * math.Exp(rng.NormFloat64()*p.Spread),
			LatencyMs: p.LatencyMs * (0.5 + rng.Float64()),
		}
	}
	return links
}

// Churn models infrastructure failure across rounds: each round, a
// unit (an edge aggregator, a relay, a client) vanishes independently
// with probability P. Decisions are deterministic in (Seed, round,
// unit) so churn scenarios replay identically — the same property the
// rest of the stack's failure injection has (fl.Config.DropRate).
type Churn struct {
	P    float64
	Seed int64
}

// Fails reports whether the unit vanishes in the given round.
func (c Churn) Fails(round, unit int) bool {
	if c.P <= 0 {
		return false
	}
	if c.P >= 1 {
		return true
	}
	rng := rand.New(rand.NewSource(c.Seed ^ int64(round)*1_000_003 ^ int64(unit)*8_191))
	return rng.Float64() < c.P
}

// RoundTime returns the synchronous-round wall time for the selected
// clients: every participant downloads downBytes, computes for
// computeSec, uploads upBytes; the server waits for the slowest.
func RoundTime(links []Link, selected []int, downBytes, upBytes int64, computeSec float64) float64 {
	var worst float64
	for _, ci := range selected {
		l := links[ci]
		t := l.DownloadSec(downBytes) + computeSec + l.UploadSec(upBytes)
		if t > worst {
			worst = t
		}
	}
	return worst
}

// RoundTimeVar is RoundTime with per-client upload volume and compute
// time: participant i (= selected[i]) downloads downBytes, computes for
// computeSec[selected[i]] and uploads upBytes[i]; the server waits for
// the slowest. upBytes entries may be 0 for participants whose upload
// was lost (they still cost download + compute straggler time).
// computeSec may be nil (no compute term).
func RoundTimeVar(links []Link, selected []int, downBytes int64, upBytes []int64, computeSec []float64) float64 {
	var worst float64
	for i, ci := range selected {
		l := links[ci]
		t := l.DownloadSec(downBytes)
		if computeSec != nil {
			t += computeSec[ci]
		}
		if i < len(upBytes) && upBytes[i] > 0 {
			t += l.UploadSec(upBytes[i])
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// TimeToTarget integrates per-round times until accuracies (aligned with
// times) reach target, returning the cumulative seconds and the 1-based
// round index, or (-1, -1) if never reached.
func TimeToTarget(roundTimes, accs []float64, target float64) (seconds float64, round int) {
	var cum float64
	for i, t := range roundTimes {
		cum += t
		if i < len(accs) && accs[i] >= target {
			return cum, i + 1
		}
	}
	return -1, -1
}
