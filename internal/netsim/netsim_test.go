package netsim

import (
	"math"
	"testing"
)

func TestLinkTransferTimes(t *testing.T) {
	l := Link{UpMbps: 8, DownMbps: 80, LatencyMs: 100}
	// 1 MB up at 8 Mbps = 1 second + 0.1 latency.
	if got := l.UploadSec(1e6); math.Abs(got-1.1) > 1e-9 {
		t.Fatalf("UploadSec = %v, want 1.1", got)
	}
	// 1 MB down at 80 Mbps = 0.1 + 0.1.
	if got := l.DownloadSec(1e6); math.Abs(got-0.2) > 1e-9 {
		t.Fatalf("DownloadSec = %v, want 0.2", got)
	}
}

func TestSampleLinksDistribution(t *testing.T) {
	links := SampleLinks(2000, Mobile, 1)
	if len(links) != 2000 {
		t.Fatalf("len = %d", len(links))
	}
	// Median of samples should be near the profile median (log-normal is
	// median-preserving).
	ups := make([]float64, len(links))
	for i, l := range links {
		if l.UpMbps <= 0 || l.DownMbps <= 0 || l.LatencyMs <= 0 {
			t.Fatal("non-positive link parameter")
		}
		ups[i] = l.UpMbps
	}
	// Crude median via counting below the profile median.
	below := 0
	for _, u := range ups {
		if u < Mobile.MedianUpMbps {
			below++
		}
	}
	frac := float64(below) / float64(len(ups))
	if frac < 0.42 || frac > 0.58 {
		t.Fatalf("fraction below median = %.3f, want ≈0.5", frac)
	}
	// Deterministic by seed.
	again := SampleLinks(2000, Mobile, 1)
	if again[7] != links[7] {
		t.Fatal("same seed must give same links")
	}
}

func TestRoundTimeIsStragglerBound(t *testing.T) {
	links := []Link{
		{UpMbps: 100, DownMbps: 100, LatencyMs: 0},
		{UpMbps: 1, DownMbps: 1, LatencyMs: 0}, // straggler
	}
	fast := RoundTime(links, []int{0}, 1e6, 1e6, 0)
	both := RoundTime(links, []int{0, 1}, 1e6, 1e6, 0)
	if both <= fast {
		t.Fatal("round time must be bound by the slowest participant")
	}
	slow := RoundTime(links, []int{1}, 1e6, 1e6, 0)
	if math.Abs(both-slow) > 1e-9 {
		t.Fatal("with the straggler selected, it dominates")
	}
	// Compute time adds to everyone.
	withCompute := RoundTime(links, []int{1}, 1e6, 1e6, 5)
	if math.Abs(withCompute-(slow+5)) > 1e-9 {
		t.Fatalf("compute time not added: %v vs %v", withCompute, slow+5)
	}
}

func TestTimeToTarget(t *testing.T) {
	times := []float64{10, 10, 10}
	accs := []float64{0.3, 0.6, 0.9}
	sec, round := TimeToTarget(times, accs, 0.5)
	if sec != 20 || round != 2 {
		t.Fatalf("TimeToTarget = (%v, %d), want (20, 2)", sec, round)
	}
	if sec, round = TimeToTarget(times, accs, 0.99); sec != -1 || round != -1 {
		t.Fatal("unreachable target must return -1")
	}
}

func TestProfileByName(t *testing.T) {
	if p, ok := ProfileByName("mobile"); !ok || p != Mobile {
		t.Fatal("mobile profile not resolved")
	}
	if p, ok := ProfileByName("broadband"); !ok || p != Broadband {
		t.Fatal("broadband profile not resolved")
	}
	if _, ok := ProfileByName("carrier-pigeon"); ok {
		t.Fatal("unknown profile resolved")
	}
}

func TestSampleComputeDeterministicAndSpread(t *testing.T) {
	a := SampleCompute(50, ComputeProfile{MedianSec: 2, Spread: 0.8}, 9)
	b := SampleCompute(50, ComputeProfile{MedianSec: 2, Spread: 0.8}, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("SampleCompute not deterministic in seed")
		}
		if a[i] <= 0 {
			t.Fatal("non-positive compute time")
		}
	}
	homo := SampleCompute(5, ComputeProfile{MedianSec: 2}, 9)
	for _, v := range homo {
		if v != 2 {
			t.Fatalf("spread 0 must be homogeneous, got %v", v)
		}
	}
}

func TestRoundTimeVarWaitsForSlowest(t *testing.T) {
	links := []Link{
		{UpMbps: 8, DownMbps: 8, LatencyMs: 0},
		{UpMbps: 1, DownMbps: 8, LatencyMs: 0}, // slow uplink
	}
	up := []int64{1e6, 1e6}
	compute := []float64{1, 1}
	got := RoundTimeVar(links, []int{0, 1}, 1e6, up, compute)
	// Client 1 dominates: 1MB down at 8Mbps (1s) + 1s compute + 1MB up
	// at 1Mbps (8s) = 10s.
	if got < 9.9 || got > 10.1 {
		t.Fatalf("round time %v, want ~10s", got)
	}
	// A lost upload still costs download + compute.
	lost := RoundTimeVar(links, []int{1}, 1e6, []int64{0}, compute)
	if lost < 1.9 || lost > 2.1 {
		t.Fatalf("lost-upload time %v, want ~2s", lost)
	}
}
