package nn

import "spatl/internal/tensor"

// ReLU applies max(0,x) elementwise.
type ReLU struct {
	name    string
	x       *tensor.Tensor // input cached in train mode for Backward
	n       int64
	out, dx *tensor.Tensor // reused activation/gradient buffers
}

// NewReLU constructs a ReLU activation.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Forward implements Layer. Instead of materializing a bool mask, the
// input tensor is retained and Backward re-derives the gate from it with
// the SIMD kernel; the input buffer is stable until the producing layer's
// next Forward, which is after our Backward.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.Reuse(r.out, x.Shape()...)
	r.out = out
	tensor.VecReLU(out.Data, x.Data)
	if train {
		r.x = x
	}
	r.n = int64(x.Len() / x.Dim(0))
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if r.x == nil {
		panic("nn: ReLU.Backward before training-mode Forward")
	}
	dx := tensor.Reuse(r.dx, dout.Shape()...)
	r.dx = dx
	tensor.VecReLUBwd(dx.Data, dout.Data, r.x.Data)
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// FLOPs implements Layer: one comparison per element.
func (r *ReLU) FLOPs() int64 { return r.n }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Flatten reshapes (N, C, H, W) to (N, C·H·W); it is a no-op for 2-D
// inputs.
type Flatten struct {
	name  string
	shape []int
}

// NewFlatten constructs a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.shape = append(f.shape[:0], x.Shape()...)
	return x.Reshape(x.Dim(0), x.Len()/x.Dim(0))
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return dout.Reshape(f.shape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// FLOPs implements Layer.
func (f *Flatten) FLOPs() int64 { return 0 }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }
