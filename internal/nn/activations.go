package nn

import "spatl/internal/tensor"

// ReLU applies max(0,x) elementwise.
type ReLU struct {
	name    string
	mask    []bool
	n       int64
	out, dx *tensor.Tensor // reused activation/gradient buffers
}

// NewReLU constructs a ReLU activation.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.Reuse(r.out, x.Shape()...)
	r.out = out
	if train {
		if cap(r.mask) < x.Len() {
			r.mask = make([]bool, x.Len())
		}
		r.mask = r.mask[:x.Len()]
	}
	for i, v := range x.Data {
		pos := v > 0
		if pos {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
		if train {
			r.mask[i] = pos
		}
	}
	r.n = int64(x.Len() / x.Dim(0))
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := tensor.Reuse(r.dx, dout.Shape()...)
	r.dx = dx
	for i, v := range dout.Data {
		if r.mask[i] {
			dx.Data[i] = v
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// FLOPs implements Layer: one comparison per element.
func (r *ReLU) FLOPs() int64 { return r.n }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Flatten reshapes (N, C, H, W) to (N, C·H·W); it is a no-op for 2-D
// inputs.
type Flatten struct {
	name  string
	shape []int
}

// NewFlatten constructs a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.shape = append(f.shape[:0], x.Shape()...)
	return x.Reshape(x.Dim(0), x.Len()/x.Dim(0))
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) *tensor.Tensor {
	return dout.Reshape(f.shape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// FLOPs implements Layer.
func (f *Flatten) FLOPs() int64 { return 0 }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }
