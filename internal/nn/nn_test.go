package nn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"spatl/internal/tensor"
)

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over K classes: loss = ln K, grad = (1/K - onehot)/N.
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{1, 3})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	want := float32(0.25 / 2)
	if math.Abs(float64(grad.At(0, 0)-want)) > 1e-6 {
		t.Fatalf("grad(0,0) = %v, want %v", grad.At(0, 0), want)
	}
	if math.Abs(float64(grad.At(0, 1)-(want-0.5))) > 1e-6 {
		t.Fatalf("grad at label = %v, want %v", grad.At(0, 1), want-0.5)
	}
}

func TestSoftmaxCrossEntropyGradSumsToZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	logits := tensor.New(5, 7)
	logits.Randn(rng, 3)
	_, grad := SoftmaxCrossEntropy(logits, []int{0, 1, 2, 3, 4})
	for i := 0; i < 5; i++ {
		var s float64
		for j := 0; j < 7; j++ {
			s += float64(grad.At(i, j))
		}
		if math.Abs(s) > 1e-5 {
			t.Fatalf("row %d gradient sums to %v, want 0", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyNumericalStability(t *testing.T) {
	logits := tensor.FromSlice([]float32{1000, -1000, 0, 500}, 1, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss not finite: %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(float64(g)) {
			t.Fatal("grad contains NaN")
		}
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 5, 2, // pred 1
		9, 0, 0, // pred 0
		0, 0, 3, // pred 2
	}, 3, 3)
	if acc := Accuracy(logits, []int{1, 0, 0}); math.Abs(acc-2.0/3.0) > 1e-9 {
		t.Fatalf("Accuracy = %v, want 2/3", acc)
	}
}

func TestSGDPlainStep(t *testing.T) {
	p := newParam("w", 2)
	p.W.Data[0], p.W.Data[1] = 1, 2
	p.G.Data[0], p.G.Data[1] = 0.5, -0.5
	opt := NewSGD([]*Param{p}, 0.1, 0, 0)
	opt.Step()
	if math.Abs(float64(p.W.Data[0])-0.95) > 1e-6 || math.Abs(float64(p.W.Data[1])-2.05) > 1e-6 {
		t.Fatalf("SGD step gave %v", p.W.Data)
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := newParam("w", 1)
	p.W.Data[0] = 0
	opt := NewSGD([]*Param{p}, 1, 0.9, 0)
	p.G.Data[0] = 1
	opt.Step() // v=1, w=-1
	p.G.Data[0] = 1
	opt.Step() // v=1.9, w=-2.9
	if math.Abs(float64(p.W.Data[0])+2.9) > 1e-6 {
		t.Fatalf("momentum step gave %v, want -2.9", p.W.Data[0])
	}
	opt.ResetState()
	p.G.Data[0] = 0
	opt.Step()
	if math.Abs(float64(p.W.Data[0])+2.9) > 1e-6 {
		t.Fatal("ResetState must clear velocity")
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := newParam("w", 1)
	p.W.Data[0] = 10
	opt := NewSGD([]*Param{p}, 0.1, 0, 0.5)
	opt.Step() // g = 0 + 0.5*10 = 5; w = 10 - 0.5 = 9.5
	if math.Abs(float64(p.W.Data[0])-9.5) > 1e-5 {
		t.Fatalf("weight decay step gave %v, want 9.5", p.W.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := newParam("w", 1)
	p.W.Data[0] = 5
	opt := NewAdam([]*Param{p}, 0.2)
	for i := 0; i < 400; i++ {
		p.G.Data[0] = 2 * (p.W.Data[0] - 3) // d/dw (w-3)^2
		opt.Step()
	}
	if math.Abs(float64(p.W.Data[0])-3) > 0.05 {
		t.Fatalf("Adam converged to %v, want 3", p.W.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := newParam("w", 2)
	p.G.Data[0], p.G.Data[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(norm-5) > 1e-6 {
		t.Fatalf("pre-clip norm %v, want 5", norm)
	}
	var sq float64
	for _, g := range p.G.Data {
		sq += float64(g) * float64(g)
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-4 {
		t.Fatalf("post-clip norm %v, want 1", math.Sqrt(sq))
	}
	// No-op below threshold.
	ClipGradNorm([]*Param{p}, 10)
	sq = 0
	for _, g := range p.G.Data {
		sq += float64(g) * float64(g)
	}
	if math.Abs(math.Sqrt(sq)-1) > 1e-4 {
		t.Fatal("clip must not rescale below threshold")
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewLinear("fc", 4, 3, rng)
	params := l.Params()
	flat := FlattenParams(params)
	if len(flat) != ParamCount(params) {
		t.Fatalf("flat length %d, want %d", len(flat), ParamCount(params))
	}
	l2 := NewLinear("fc", 4, 3, Rng(99))
	UnflattenParams(l2.Params(), flat)
	f2 := FlattenParams(l2.Params())
	for i := range flat {
		if flat[i] != f2[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestUnflattenRejectsWrongLength(t *testing.T) {
	l := NewLinear("fc", 4, 3, Rng(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UnflattenParams(l.Params(), make([]float32, 3))
}

func TestSequentialParamNamesUniqueAndPrefixed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seq := NewSequential("enc",
		NewConv2D("conv", 1, 2, 3, 1, 1, false, rng),
		NewBatchNorm2D("bn", 2),
		NewLinear("fc", 2, 2, rng))
	seen := map[string]bool{}
	for _, p := range seq.Params() {
		if !strings.HasPrefix(p.Name, "enc.") {
			t.Fatalf("param name %q missing prefix", p.Name)
		}
		if seen[p.Name] {
			t.Fatalf("duplicate param name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if len(seen) != 5 {
		t.Fatalf("expected 5 params, got %d", len(seen))
	}
}

func TestCopyParamsIndependence(t *testing.T) {
	a := NewLinear("fc", 3, 2, Rng(5))
	b := NewLinear("fc", 3, 2, Rng(6))
	CopyParams(b.Params(), a.Params())
	if a.weight.W.Data[0] != b.weight.W.Data[0] {
		t.Fatal("CopyParams did not copy")
	}
	b.weight.W.Data[0] += 1
	if a.weight.W.Data[0] == b.weight.W.Data[0] {
		t.Fatal("CopyParams must not alias")
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm2D("bn", 2)
	x := tensor.New(8, 2, 3, 3)
	x.Randn(rng, 1)
	// A few training passes move the running stats.
	for i := 0; i < 20; i++ {
		bn.Forward(x, true)
	}
	y := bn.Forward(x, false)
	// With converged running stats, eval output should be ~normalized.
	var mean float64
	for i := 0; i < 8; i++ {
		mean += float64(y.At(i, 0, 1, 1))
	}
	_ = mean // smoke: mainly assert no panic and finite values
	for _, v := range y.Data {
		if math.IsNaN(float64(v)) {
			t.Fatal("eval forward produced NaN")
		}
	}
}

func TestBatchNormTrainNormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	bn := NewBatchNorm2D("bn", 1)
	x := tensor.New(16, 1, 4, 4)
	x.Randn(rng, 5)
	for i := range x.Data {
		x.Data[i] += 10 // large offset must be removed
	}
	y := bn.Forward(x, true)
	var sum, sq float64
	for _, v := range y.Data {
		sum += float64(v)
	}
	mean := sum / float64(y.Len())
	for _, v := range y.Data {
		sq += (float64(v) - mean) * (float64(v) - mean)
	}
	std := math.Sqrt(sq / float64(y.Len()))
	if math.Abs(mean) > 1e-3 || math.Abs(std-1) > 1e-2 {
		t.Fatalf("train-mode output mean %v std %v, want 0/1", mean, std)
	}
}

func TestMaxPoolForwardValues(t *testing.T) {
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 1,
	}, 1, 1, 4, 4)
	p := NewMaxPool2D("pool", 2)
	y := p.Forward(x, true)
	want := []float32{4, 8, 9, 4}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("pool[%d] = %v, want %v", i, y.Data[i], w)
		}
	}
}

func TestGlobalAvgPoolForwardValues(t *testing.T) {
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	g := NewGlobalAvgPool("gap")
	y := g.Forward(x, true)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 25 {
		t.Fatalf("gap gave %v", y.Data)
	}
}

func TestConvFLOPsFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewConv2D("conv", 3, 16, 3, 1, 1, false, rng)
	x := tensor.New(1, 3, 8, 8)
	c.Forward(x, false)
	want := int64(2 * 3 * 3 * 3 * 16 * 8 * 8)
	if c.FLOPs() != want {
		t.Fatalf("FLOPs = %d, want %d", c.FLOPs(), want)
	}
}

func TestTrainingReducesLossOnToyProblem(t *testing.T) {
	// A small MLP must fit a linearly separable 2-class problem.
	rng := rand.New(rand.NewSource(10))
	net := NewSequential("net",
		NewLinear("fc1", 2, 16, rng),
		NewReLU("relu"),
		NewLinear("fc2", 16, 2, rng))
	n := 64
	x := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*2-1, rng.Float64()*2-1
		x.Set(float32(a), i, 0)
		x.Set(float32(b), i, 1)
		if a+b > 0 {
			labels[i] = 1
		}
	}
	opt := NewSGD(net.Params(), 0.5, 0.9, 0)
	var first, last float64
	for epoch := 0; epoch < 60; epoch++ {
		ZeroGrad(net.Params())
		out := net.Forward(x, true)
		loss, grad := SoftmaxCrossEntropy(out, labels)
		net.Backward(grad)
		opt.Step()
		if epoch == 0 {
			first = loss
		}
		last = loss
	}
	if last > first*0.3 {
		t.Fatalf("loss did not drop: first %v last %v", first, last)
	}
	out := net.Forward(x, false)
	if acc := Accuracy(out, labels); acc < 0.95 {
		t.Fatalf("final accuracy %v < 0.95", acc)
	}
}

func TestConv2DRecachesGeometryOnNewInputSize(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	c := NewConv2D("conv", 1, 2, 3, 1, 1, false, rng)
	a := c.Forward(tensor.New(1, 1, 8, 8), false)
	if a.Dim(2) != 8 {
		t.Fatalf("first geometry wrong: %v", a.Shape())
	}
	b := c.Forward(tensor.New(1, 1, 4, 4), false)
	if b.Dim(2) != 4 {
		t.Fatalf("conv did not re-cache geometry: %v", b.Shape())
	}
}

func TestConv2DRejectsWrongChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := NewConv2D("conv", 3, 2, 3, 1, 1, false, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong channel count")
		}
	}()
	c.Forward(tensor.New(1, 2, 8, 8), false)
}

func TestSequentialFLOPsIsSumOfLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	conv := NewConv2D("conv", 1, 2, 3, 1, 1, false, rng)
	fc := NewLinear("fc", 2, 3, rng)
	seq := NewSequential("net", conv, NewGlobalAvgPool("gap"), fc)
	seq.Forward(tensor.New(1, 1, 6, 6), false)
	want := conv.FLOPs() + fc.FLOPs()
	got := seq.FLOPs()
	if got < want || got > want+1000 {
		t.Fatalf("Sequential FLOPs %d vs component sum %d", got, want)
	}
}

func TestWalkVisitsAllLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	block := NewBasicBlock("block", 2, 4, 2, rng)
	seq := NewSequential("net", block, NewReLU("relu"))
	count := 0
	Walk(seq, func(l Layer) { count++ })
	// seq + block + 7 block sublayers (projection shortcut) + relu = 10.
	if count != 10 {
		t.Fatalf("Walk visited %d layers, want 10", count)
	}
}

func TestSoftmaxCrossEntropyRejectsBadLabels(t *testing.T) {
	logits := tensor.New(1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	SoftmaxCrossEntropy(logits, []int{7})
}

func TestAdamLRAccessors(t *testing.T) {
	a := NewAdam(NewLinear("fc", 2, 2, Rng(1)).Params(), 0.01)
	if a.LR() != 0.01 {
		t.Fatal("LR getter")
	}
	a.SetLR(0.5)
	if a.LR() != 0.5 {
		t.Fatal("LR setter")
	}
	var s Optimizer = a
	_ = s
}
