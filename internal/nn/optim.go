package nn

import (
	"math"

	"spatl/internal/tensor"
)

// Optimizer updates a fixed parameter list from accumulated gradients.
type Optimizer interface {
	// Step applies one update from the parameters' current gradients.
	Step()
	// LR returns the current learning rate.
	LR() float64
	// SetLR changes the learning rate.
	SetLR(lr float64)
}

// SGD implements stochastic gradient descent with classical momentum and
// decoupled-from-loss L2 weight decay (decay is added to the gradient, as
// in the reference implementations of the FL baselines).
type SGD struct {
	params      []*Param
	lr          float64
	Momentum    float64
	WeightDecay float64
	velocity    []*tensor.Tensor
}

// NewSGD constructs an SGD optimizer over params.
func NewSGD(params []*Param, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{params: params, lr: lr, Momentum: momentum, WeightDecay: weightDecay}
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.W.Shape()...)
		}
	}
	return s
}

// Step implements Optimizer. The update runs through the SIMD step
// kernels (same per-element operation chains as the scalar loops they
// replaced) and bumps each weight tensor's mutation counter so packed
// panel caches refill from the new weights.
func (s *SGD) Step() {
	lr := float32(s.lr)
	wd := float32(s.WeightDecay)
	mu := float32(s.Momentum)
	for i, p := range s.params {
		if s.velocity == nil {
			tensor.VecSGDStep(p.W.Data, p.G.Data, lr, wd)
		} else {
			tensor.VecSGDMomStep(p.W.Data, s.velocity[i].Data, p.G.Data, lr, wd, mu)
		}
		p.W.MarkMutated()
	}
}

// LR implements Optimizer.
func (s *SGD) LR() float64 { return s.lr }

// SetLR implements Optimizer.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// ResetState zeroes the momentum buffers; federated algorithms call this
// when a fresh global model is installed at the start of a round.
func (s *SGD) ResetState() {
	for _, v := range s.velocity {
		v.Zero()
	}
}

// Velocity returns the flattened momentum buffers (nil when momentum is
// disabled). FedNova ships these so the server can aggregate and
// redistribute momentum state.
func (s *SGD) Velocity() []float32 {
	if s.velocity == nil {
		return nil
	}
	n := 0
	for _, v := range s.velocity {
		n += v.Len()
	}
	out := make([]float32, 0, n)
	for _, v := range s.velocity {
		out = append(out, v.Data...)
	}
	return out
}

// SetVelocity installs flattened momentum buffers previously produced by
// Velocity.
func (s *SGD) SetVelocity(flat []float32) {
	off := 0
	for _, v := range s.velocity {
		copy(v.Data, flat[off:off+v.Len()])
		off += v.Len()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba); the paper uses it to
// update the PPO agent (lr 1e-4, default betas).
type Adam struct {
	params []*Param
	lr     float64
	Beta1  float64
	Beta2  float64
	Eps    float64
	t      int
	m, v   []*tensor.Tensor
}

// NewAdam constructs an Adam optimizer with standard defaults
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.W.Shape()...)
		a.v[i] = tensor.New(p.W.Shape()...)
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.G.Data {
			gf := float64(g)
			mj := a.Beta1*float64(m.Data[j]) + (1-a.Beta1)*gf
			vj := a.Beta2*float64(v.Data[j]) + (1-a.Beta2)*gf*gf
			m.Data[j] = float32(mj)
			v.Data[j] = float32(vj)
			mhat := mj / bc1
			vhat := vj / bc2
			p.W.Data[j] -= float32(a.lr * mhat / (math.Sqrt(vhat) + a.Eps))
		}
		p.W.MarkMutated()
	}
}

// LR implements Optimizer.
func (a *Adam) LR() float64 { return a.lr }

// SetLR implements Optimizer.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// ClipGradNorm scales all gradients so their global L2 norm does not
// exceed maxNorm; returns the pre-clip norm. A no-op when maxNorm <= 0.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.G.Data {
			sq += float64(g) * float64(g)
		}
	}
	norm := math.Sqrt(sq)
	if maxNorm > 0 && norm > maxNorm {
		scale := float32(maxNorm / (norm + 1e-12))
		for _, p := range params {
			p.G.Scale(scale)
		}
	}
	return norm
}
