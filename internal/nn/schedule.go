package nn

import "math"

// Schedule maps a step (or round) index to a learning rate. Federated
// experiments pass communication rounds; centralized training passes
// epochs.
type Schedule interface {
	// LRAt returns the learning rate for step t (0-based).
	LRAt(t int) float64
}

// ConstantLR always returns the same rate.
type ConstantLR float64

// LRAt implements Schedule.
func (c ConstantLR) LRAt(int) float64 { return float64(c) }

// StepLR multiplies the base rate by Gamma every Every steps — the
// classic staircase decay used when training VGG/ResNet.
type StepLR struct {
	Base  float64
	Gamma float64
	Every int
}

// LRAt implements Schedule.
func (s StepLR) LRAt(t int) float64 {
	if s.Every <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(t/s.Every))
}

// CosineLR anneals from Base to Min over Horizon steps and stays at Min
// afterwards.
type CosineLR struct {
	Base    float64
	Min     float64
	Horizon int
}

// LRAt implements Schedule.
func (c CosineLR) LRAt(t int) float64 {
	if c.Horizon <= 0 || t >= c.Horizon {
		return c.Min
	}
	frac := float64(t) / float64(c.Horizon)
	return c.Min + 0.5*(c.Base-c.Min)*(1+math.Cos(math.Pi*frac))
}

// WarmupLR ramps linearly from 0 to the wrapped schedule's rate over
// Steps, then delegates. Stabilizes the first federated rounds when
// control variates are still cold.
type WarmupLR struct {
	Steps int
	Then  Schedule
}

// LRAt implements Schedule.
func (w WarmupLR) LRAt(t int) float64 {
	base := w.Then.LRAt(t)
	if w.Steps <= 0 || t >= w.Steps {
		return base
	}
	return base * float64(t+1) / float64(w.Steps)
}
