// Package nn is a from-scratch neural-network substrate: layers with
// explicit forward/backward passes, SGD/Adam optimizers, cross-entropy
// loss, parameter handling, and per-layer FLOPs accounting. It exists
// because Go has no mature DNN training library; SPATL and all baseline
// federated-learning algorithms in this repository train real networks
// through this package.
//
// Tensors flow through layers in NCHW layout: conv inputs are
// (batch, channels, height, width); linear inputs are (batch, features).
// Backward passes mirror forward passes layer by layer; gradients
// accumulate into each Param's G tensor, so callers must ZeroGrad between
// steps.
package nn

import (
	"fmt"
	"math/rand"

	"spatl/internal/tensor"
)

// Param is a named trainable parameter with its gradient accumulator.
type Param struct {
	Name string
	W    *tensor.Tensor
	G    *tensor.Tensor
}

// newParam allocates a parameter and matching zero gradient.
func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: tensor.New(shape...), G: tensor.New(shape...)}
}

// Layer is a differentiable network module.
//
// Buffer ownership: layers reuse their output and input-gradient buffers
// across calls, so a tensor returned by Forward (Backward) is only valid
// until the same layer's next Forward (Backward). Callers that need a
// result to survive a later pass must Clone it.
type Layer interface {
	// Forward runs the layer on a batch. train selects training-mode
	// behaviour (batch statistics, dropout); layers cache whatever they
	// need for Backward.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes the gradient w.r.t. the layer output and returns
	// the gradient w.r.t. the layer input, accumulating parameter
	// gradients as a side effect. Must follow a training-mode Forward.
	Backward(dout *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (empty for
	// stateless layers).
	Params() []*Param
	// FLOPs reports the forward floating-point operation count for a
	// single input instance, based on the geometry seen at the most
	// recent Forward. Returns 0 before any Forward.
	FLOPs() int64
	// Name returns a short human-readable layer identifier.
	Name() string
}

// Sequential chains layers; it is itself a Layer.
type Sequential struct {
	name   string
	Layers []Layer
}

// NewSequential builds a named layer chain.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, Layers: layers}
}

// Append adds layers to the end of the chain.
func (s *Sequential) Append(layers ...Layer) {
	s.Layers = append(s.Layers, layers...)
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(dout *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dout = s.Layers[i].Backward(dout)
	}
	return dout
}

// Params implements Layer; parameter names are prefixed with the
// sequential's name and the layer position so they are unique and stable.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for i, l := range s.Layers {
		for _, p := range l.Params() {
			q := *p
			q.Name = fmt.Sprintf("%s.%d.%s", s.name, i, p.Name)
			// Share the underlying tensors: copy of the struct keeps the
			// same W/G pointers, only the reported name changes.
			ps = append(ps, &Param{Name: q.Name, W: p.W, G: p.G})
		}
	}
	return ps
}

// FLOPs implements Layer.
func (s *Sequential) FLOPs() int64 {
	var total int64
	for _, l := range s.Layers {
		total += l.FLOPs()
	}
	return total
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// ZeroGrad zeroes every gradient in the parameter list.
func ZeroGrad(params []*Param) {
	for _, p := range params {
		p.G.Zero()
	}
}

// ParamCount returns the total number of scalar weights.
func ParamCount(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.W.Len()
	}
	return n
}

// CopyParams copies weights from src into dst (matched by position;
// shapes must agree).
func CopyParams(dst, src []*Param) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("nn: CopyParams length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i].W.CopyFrom(src[i].W)
	}
}

// FlattenParams concatenates all weights into one vector (a fresh slice).
func FlattenParams(params []*Param) []float32 {
	out := make([]float32, 0, ParamCount(params))
	for _, p := range params {
		out = append(out, p.W.Data...)
	}
	return out
}

// UnflattenParams writes a flat vector back into the parameter tensors.
func UnflattenParams(params []*Param, flat []float32) {
	off := 0
	for _, p := range params {
		n := p.W.Len()
		if off+n > len(flat) {
			panic("nn: UnflattenParams vector too short")
		}
		copy(p.W.Data, flat[off:off+n])
		p.W.MarkMutated()
		off += n
	}
	if off != len(flat) {
		panic(fmt.Sprintf("nn: UnflattenParams vector length %d, consumed %d", len(flat), off))
	}
}

// FlattenGrads concatenates all gradients into one vector.
func FlattenGrads(params []*Param) []float32 {
	out := make([]float32, 0, ParamCount(params))
	for _, p := range params {
		out = append(out, p.G.Data...)
	}
	return out
}

// Rng is a convenience constructor for a seeded random source.
func Rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Walk visits l and all of its descendants depth-first in forward order.
// It understands the composite layers defined in this package
// (Sequential and BasicBlock).
func Walk(l Layer, fn func(Layer)) {
	fn(l)
	switch v := l.(type) {
	case *Sequential:
		for _, c := range v.Layers {
			Walk(c, fn)
		}
	case *BasicBlock:
		for _, c := range v.SubLayers() {
			Walk(c, fn)
		}
	}
}
