package nn

import (
	"fmt"

	"spatl/internal/tensor"
)

// MaxPool2D is a max pooling layer with square window and stride equal to
// the window size (non-overlapping), the form used by VGG.
type MaxPool2D struct {
	name    string
	K       int
	argmax  []int32
	inShape []int
	n       int64
	out, dx *tensor.Tensor // reused activation/gradient buffers
}

// NewMaxPool2D constructs a KxK non-overlapping max pool.
func NewMaxPool2D(name string, k int) *MaxPool2D {
	return &MaxPool2D{name: name, K: k}
}

// Forward implements Layer. Input (N,C,H,W) with H and W divisible by K.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h%m.K != 0 || w%m.K != 0 {
		panic(fmt.Sprintf("nn: %s input %dx%d not divisible by window %d", m.name, h, w, m.K))
	}
	oh, ow := h/m.K, w/m.K
	out := tensor.Reuse(m.out, n, c, oh, ow)
	m.out = out
	if cap(m.argmax) < out.Len() {
		m.argmax = make([]int32, out.Len())
	}
	m.argmax = m.argmax[:out.Len()]
	m.inShape = append(m.inShape[:0], x.Shape()...)
	tensor.Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for ch := 0; ch < c; ch++ {
				inBase := (i*c + ch) * h * w
				outBase := (i*c + ch) * oh * ow
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						best := float32(0)
						bi := int32(0)
						first := true
						for ky := 0; ky < m.K; ky++ {
							for kx := 0; kx < m.K; kx++ {
								idx := inBase + (oy*m.K+ky)*w + ox*m.K + kx
								v := x.Data[idx]
								if first || v > best {
									best, bi, first = v, int32(idx), false
								}
							}
						}
						o := outBase + oy*ow + ox
						out.Data[o] = best
						m.argmax[o] = bi
					}
				}
			}
		}
	})
	m.n = int64(out.Len()/n) * int64(m.K*m.K)
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	// The argmax scatter accumulates, so a reused buffer must be zeroed.
	dx := tensor.Reuse(m.dx, m.inShape...)
	m.dx = dx
	dx.Zero()
	for o, idx := range m.argmax {
		dx.Data[idx] += dout.Data[o]
	}
	return dx
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Param { return nil }

// FLOPs implements Layer: one comparison per window element.
func (m *MaxPool2D) FLOPs() int64 { return m.n }

// Name implements Layer.
func (m *MaxPool2D) Name() string { return m.name }

// GlobalAvgPool averages each channel's spatial plane, mapping (N,C,H,W)
// to (N,C). ResNets use it before the classifier head.
type GlobalAvgPool struct {
	name    string
	inShape []int
	n       int64
	out, dx *tensor.Tensor // reused activation/gradient buffers
}

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	plane := h * w
	out := tensor.Reuse(g.out, n, c)
	g.out = out
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * plane
			var s float64
			for j := 0; j < plane; j++ {
				s += float64(x.Data[base+j])
			}
			out.Data[i*c+ch] = float32(s / float64(plane))
		}
	}
	g.inShape = append(g.inShape[:0], x.Shape()...)
	g.n = int64(c * plane)
	return out
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(dout *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	plane := h * w
	dx := tensor.Reuse(g.dx, g.inShape...)
	g.dx = dx
	inv := float32(1.0 / float64(plane))
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			gv := dout.Data[i*c+ch] * inv
			base := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				dx.Data[base+j] = gv
			}
		}
	}
	return dx
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// FLOPs implements Layer.
func (g *GlobalAvgPool) FLOPs() int64 { return g.n }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.name }
