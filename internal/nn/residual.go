package nn

import (
	"math/rand"

	"spatl/internal/tensor"
)

// BasicBlock is the ResNet v1 basic residual block:
//
//	out = ReLU( BN(Conv(ReLU(BN(Conv(x))))) + shortcut(x) )
//
// The shortcut is the identity when shape is preserved, or a strided 1×1
// convolution + BatchNorm when the block changes width or resolution.
type BasicBlock struct {
	name string

	conv1 *Conv2D
	bn1   *BatchNorm2D
	relu1 *ReLU
	conv2 *Conv2D
	bn2   *BatchNorm2D

	scConv *Conv2D      // nil for identity shortcut
	scBN   *BatchNorm2D // nil for identity shortcut

	// Backward caches.
	sum    *tensor.Tensor // pre-activation sum for final ReLU backward
	inSame bool

	out, dsum *tensor.Tensor // reused activation/gradient buffers
}

// NewBasicBlock constructs a basic residual block mapping inC channels to
// outC with the given stride on the first conv.
func NewBasicBlock(name string, inC, outC, stride int, rng *rand.Rand) *BasicBlock {
	return NewBasicBlockInternal(name, inC, outC, outC, stride, rng)
}

// NewBasicBlockInternal constructs a basic block whose internal width
// (conv1's output / conv2's input) differs from the block output width —
// the shape produced by channel-pruning a block's first convolution.
func NewBasicBlockInternal(name string, inC, midC, outC, stride int, rng *rand.Rand) *BasicBlock {
	b := &BasicBlock{name: name}
	b.conv1 = NewConv2D(name+".conv1", inC, midC, 3, stride, 1, false, rng)
	b.bn1 = NewBatchNorm2D(name+".bn1", midC)
	b.relu1 = NewReLU(name + ".relu1")
	b.conv2 = NewConv2D(name+".conv2", midC, outC, 3, 1, 1, false, rng)
	b.bn2 = NewBatchNorm2D(name+".bn2", outC)
	if stride != 1 || inC != outC {
		b.scConv = NewConv2D(name+".sc.conv", inC, outC, 1, stride, 0, false, rng)
		b.scBN = NewBatchNorm2D(name+".sc.bn", outC)
	}
	return b
}

// Forward implements Layer.
func (b *BasicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := b.conv1.Forward(x, train)
	main = b.bn1.Forward(main, train)
	main = b.relu1.Forward(main, train)
	main = b.conv2.Forward(main, train)
	main = b.bn2.Forward(main, train)

	var short *tensor.Tensor
	if b.scConv != nil {
		short = b.scConv.Forward(x, train)
		short = b.scBN.Forward(short, train)
	} else {
		short = x
	}
	main.AddInPlace(short)
	if train {
		b.sum = main
	}
	out := tensor.Reuse(b.out, main.Shape()...)
	b.out = out
	tensor.VecReLU(out.Data, main.Data)
	return out
}

// Backward implements Layer.
func (b *BasicBlock) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if b.sum == nil {
		panic("nn: BasicBlock.Backward before training-mode Forward")
	}
	// Final ReLU.
	dsum := tensor.Reuse(b.dsum, dout.Shape()...)
	b.dsum = dsum
	tensor.VecReLUBwd(dsum.Data, dout.Data, b.sum.Data)
	// Main path.
	d := b.bn2.Backward(dsum)
	d = b.conv2.Backward(d)
	d = b.relu1.Backward(d)
	d = b.bn1.Backward(d)
	dx := b.conv1.Backward(d)
	// Shortcut path.
	if b.scConv != nil {
		ds := b.scBN.Backward(dsum)
		ds = b.scConv.Backward(ds)
		dx.AddInPlace(ds)
	} else {
		dx.AddInPlace(dsum)
	}
	return dx
}

// Params implements Layer.
func (b *BasicBlock) Params() []*Param {
	var ps []*Param
	for _, l := range b.sublayers() {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// SubLayers returns the block's constituent layers in forward order
// (main path first, then the projection shortcut when present).
func (b *BasicBlock) SubLayers() []Layer { return b.sublayers() }

func (b *BasicBlock) sublayers() []Layer {
	ls := []Layer{b.conv1, b.bn1, b.relu1, b.conv2, b.bn2}
	if b.scConv != nil {
		ls = append(ls, b.scConv, b.scBN)
	}
	return ls
}

// FLOPs implements Layer.
func (b *BasicBlock) FLOPs() int64 {
	var f int64
	for _, l := range b.sublayers() {
		f += l.FLOPs()
	}
	return f
}

// Name implements Layer.
func (b *BasicBlock) Name() string { return b.name }

// Convs returns the block's prunable convolutions in forward order
// (conv1, conv2, and the shortcut conv when present). The pruning
// subsystem uses this to honour residual channel-compatibility.
func (b *BasicBlock) Convs() (conv1, conv2, shortcut *Conv2D) {
	return b.conv1, b.conv2, b.scConv
}
