package nn

import (
	"fmt"
	"math/rand"
	"runtime"

	"spatl/internal/tensor"
)

// Conv2D is a 2D convolution with square kernels, shared stride/padding on
// both axes and optional bias. Forward lowers each image to a column
// matrix (im2col) and multiplies by the filter matrix; backward recomputes
// the columns rather than caching them, trading FLOPs for memory.
type Conv2D struct {
	name                      string
	InC, OutC, K, Stride, Pad int
	weight, bias              *Param
	useBias                   bool
	dims                      tensor.ConvDims
	haveDims                  bool
	x                         *tensor.Tensor // cached input for backward
	out, dx                   *tensor.Tensor // reused activation/gradient buffers

	// Weight panel caches, keyed on the weight tensor's mutation counter:
	// wpack holds the PackTransB image of W for the batch-fused forward
	// GEMM, wtrans holds Wᵀ for the batch-fused backward dx GEMM. Both
	// survive across batches until an optimizer step (or any other weight
	// write) bumps the counter.
	wpack, wtrans packCache
	// sparsity caches the sparse-dispatch decision and the exact nonzero
	// pattern under the same version key, so mask-static sparse weights
	// (algo.SSFL) skip both the per-minibatch probe and the per-element
	// zero branches of the GEMM.
	sparsity sparseCache
}

// NewConv2D constructs a convolution layer with He-normal initialized
// filters. Bias is included when useBias is true (models that follow the
// conv with BatchNorm typically disable it).
func NewConv2D(name string, inC, outC, k, stride, pad int, useBias bool, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		name: name, InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		useBias: useBias,
	}
	c.weight = newParam("weight", outC, inC*k*k)
	c.weight.W.KaimingNormal(rng, inC*k*k)
	if useBias {
		c.bias = newParam("bias", outC)
	}
	return c
}

// Forward implements Layer. Input shape (N, InC, H, W).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s expects (N,%d,H,W), got %v", c.name, c.InC, x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	if !c.haveDims || c.dims.H != h || c.dims.W != w {
		c.dims = tensor.NewConvDims(c.InC, h, w, c.OutC, c.K, c.Stride, c.Pad)
		c.haveDims = true
	}
	d := c.dims
	out := tensor.Reuse(c.out, n, c.OutC, d.OutH, d.OutW)
	c.out = out
	inStride := c.InC * h * w
	outStride := c.OutC * d.OutH * d.OutW
	colRows := c.InC * c.K * c.K
	cols := d.OutH * d.OutW
	// Pruned/masked weights use the row-major lowering with the
	// zero-skipping kernel, which elides whole B-row passes per zero
	// weight. The lowering is batch-fused like the dense path: images sit
	// side by side in one wide (colRows, G·cols) matrix (Im2ColLD), so
	// each surviving weight's axpy runs over the whole group instead of
	// one image's columns — the vector kernel amortizes far better on the
	// deep layers whose per-image column count is tiny. The sparsity
	// decision (and, mask-static, the exact nonzero pattern) is cached on
	// the weight version, so frozen or mask-static weights skip the probe
	// entirely and the GEMM walks precomputed index lists instead of
	// branching on every element — bitwise identical either way.
	if sparse, pat := c.sparsity.probe(c.weight.W, c.OutC, colRows); sparse {
		tensor.Parallel(n, func(lo, hi int) {
			for glo := lo; glo < hi; glo += fusedGroup(hi-glo, colRows*cols) {
				gn := fusedGroup(hi-glo, colRows*cols)
				wide := gn * cols
				colB := tensor.GetScratch(colRows * wide)
				for i := glo; i < glo+gn; i++ {
					tensor.Im2ColLD(colB[(i-glo)*cols:], x.Data[i*inStride:(i+1)*inStride], d, wide)
				}
				cB := tensor.GetScratch(c.OutC * wide)
				if pat != nil {
					tensor.MatMulMaskPatSlice(cB, c.weight.W.Data, colB, pat, wide)
				} else {
					tensor.MatMulSparseSlice(cB, c.weight.W.Data, colB, c.OutC, colRows, wide)
				}
				for i := glo; i < glo+gn; i++ {
					oi := out.Data[i*outStride : (i+1)*outStride]
					for oc := 0; oc < c.OutC; oc++ {
						copy(oi[oc*cols:(oc+1)*cols], cB[oc*wide+(i-glo)*cols:][:cols])
					}
					c.addBias(oi, cols)
				}
				tensor.PutScratch(cB)
				tensor.PutScratch(colB)
			}
		})
		c.x = x
		return out
	}
	// Dense weights take the batch-fused lowering: images are lowered
	// patch-major into one wide (G·cols, colRows) buffer and one GEMM per
	// group produces the whole group's activations. Either operand of the
	// product may play Bᵀ — every output element is dot(patch, filter) in
	// ascending-k order under both role assignments, so the choice is
	// bitwise-invisible — and we pick whichever keeps the vector panel
	// kernel engaged:
	//
	//   wide filter banks (OutC ≥ panel width): t = cols·Wᵀ with W as the
	//   packed operand, so the O(OutC·colRows) pack survives the whole
	//   batch (and across batches, via the version-keyed cache) instead of
	//   being repaid per image.
	//
	//   narrow filter banks (small OutC, e.g. early blocks of
	//   width-scaled ResNets): W has too few rows to fill a B panel and
	//   the swapped product would fall to the scalar kernel; instead run
	//   cB = W·colBᵀ with the wide patch buffer as B, which always has
	//   enough rows for the tile. The result is channel-major, so each
	//   image's rows copy straight out with no transpose.
	if tensor.PackedTransBWants(c.OutC, colRows) {
		wp := c.wpack.get(c.weight.W, c.OutC*colRows, func(dst []float32) {
			tensor.PackTransB(dst, c.weight.W.Data, c.OutC, colRows)
		})
		tensor.Parallel(n, func(lo, hi int) {
			for glo := lo; glo < hi; glo += fusedGroup(hi-glo, colRows*cols) {
				gn := fusedGroup(hi-glo, colRows*cols)
				colB := tensor.GetScratch(gn * cols * colRows)
				for i := glo; i < glo+gn; i++ {
					tensor.Im2ColPatch(colB[(i-glo)*cols*colRows:], x.Data[i*inStride:(i+1)*inStride], d)
				}
				t := tensor.GetScratch(gn * cols * c.OutC)
				tensor.MatMulTransBPackedSlice(t, colB, wp, gn*cols, colRows, c.OutC, false)
				// t is patch-major (G·cols, OutC); transpose each image's block
				// back to the (OutC, cols) activation layout, then add bias.
				for i := glo; i < glo+gn; i++ {
					oi := out.Data[i*outStride : (i+1)*outStride]
					tensor.TransposeSlice(oi, t[(i-glo)*cols*c.OutC:][:cols*c.OutC], cols, c.OutC)
					c.addBias(oi, cols)
				}
				tensor.PutScratch(t)
				tensor.PutScratch(colB)
			}
		})
		c.x = x
		return out
	}
	tensor.Parallel(n, func(lo, hi int) {
		for glo := lo; glo < hi; glo += fusedGroup(hi-glo, colRows*cols) {
			gn := fusedGroup(hi-glo, colRows*cols)
			wide := gn * cols
			colB := tensor.GetScratch(wide * colRows)
			for i := glo; i < glo+gn; i++ {
				tensor.Im2ColPatch(colB[(i-glo)*cols*colRows:], x.Data[i*inStride:(i+1)*inStride], d)
			}
			cB := tensor.GetScratch(c.OutC * wide)
			tensor.MatMulTransBSlice(cB, c.weight.W.Data, colB, c.OutC, colRows, wide)
			// cB is channel-major (OutC, G·cols): image i's channel oc row is
			// the contiguous slice at cB[oc·wide + (i-glo)·cols].
			for i := glo; i < glo+gn; i++ {
				oi := out.Data[i*outStride : (i+1)*outStride]
				for oc := 0; oc < c.OutC; oc++ {
					copy(oi[oc*cols:(oc+1)*cols], cB[oc*wide+(i-glo)*cols:][:cols])
				}
				c.addBias(oi, cols)
			}
			tensor.PutScratch(cB)
			tensor.PutScratch(colB)
		}
	})
	c.x = x
	return out
}

// addBias adds the per-channel bias to one image's (OutC, cols) activation
// block; a no-op for bias-free layers.
func (c *Conv2D) addBias(oi []float32, cols int) {
	if !c.useBias {
		return
	}
	for oc := 0; oc < c.OutC; oc++ {
		tensor.VecBiasAdd(oi[oc*cols:(oc+1)*cols], c.bias.W.Data[oc])
	}
}

// fusedFloatsCap bounds the widest scratch buffer a fused image group may
// allocate (in float32 elements, ~16 MiB), so huge batches of large
// feature maps are processed in a few chunked GEMMs instead of one
// enormous allocation. Grouping only changes where GEMM call boundaries
// fall, never any per-element accumulation chain.
const fusedFloatsCap = 4 << 20

// fusedGroup returns how many of the remaining n images to fuse into one
// lowered GEMM, given the per-image lowered size in floats.
func fusedGroup(n, perImage int) int {
	g := fusedFloatsCap / perImage
	if g < 1 {
		g = 1
	}
	if g > n {
		g = n
	}
	return g
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	x := c.x
	if x == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	d := c.dims
	cols := d.OutH * d.OutW
	colRows := c.InC * c.K * c.K
	inStride := c.InC * h * w
	outStride := c.OutC * cols

	dx := tensor.Reuse(c.dx, n, c.InC, h, w)
	c.dx = dx

	// dx = col2im(Wᵀ · g) is batch-fused like the forward pass: per image
	// group, the output gradients are transposed patch-major into one wide
	// (G·cols, OutC) matrix, a single GEMM forms the lowered input
	// gradient dcolB = Wᵀ · gᵀ for the whole group, and Col2ImLD scatters
	// each image's slice straight out of the wide buffer. The cached Wᵀ
	// replaces the per-image transpose MatMulTransASlice used to build.
	// dW stays per-image (dot-then-add per image, shards merged in fixed
	// order) so its accumulation grouping — and hence rounding — is
	// untouched. Sparse (pruned) weights skip the transpose cache and run
	// the zero-skipping Wᵀ·g over the same wide group buffer instead.
	sparseW, pat := c.sparsity.probe(c.weight.W, c.OutC, colRows)
	var wt []float32
	if !sparseW {
		wt = c.wtrans.get(c.weight.W, colRows*c.OutC, func(dst []float32) {
			tensor.TransposeSlice(dst, c.weight.W.Data, c.OutC, colRows)
		})
	}

	// Shard the batch; each shard accumulates its own dW (and db) in
	// scratch buffers, then shards are summed in fixed order so results
	// are deterministic for a fixed shard count.
	type shard struct {
		dw []float32
		db []float64
	}
	nw := parallelShards(n)
	shards := make([]shard, nw)
	chunk := (n + nw - 1) / nw
	tensor.Parallel(nw, func(slo, shi int) {
		for s := slo; s < shi; s++ {
			lo, hi := s*chunk, (s+1)*chunk
			if hi > n {
				hi = n
			}
			sh := shard{dw: tensor.GetScratch(c.OutC * colRows)}
			for i := range sh.dw {
				sh.dw[i] = 0
			}
			if c.useBias {
				sh.db = make([]float64, c.OutC)
			}
			col := tensor.GetScratch(colRows * cols)
			for glo := lo; glo < hi; glo += fusedGroup(hi-glo, colRows*cols) {
				gn := fusedGroup(hi-glo, colRows*cols)
				wide := gn * cols
				dcolB := tensor.GetScratch(colRows * wide)
				if sparseW {
					// Sparse weights: lay the group's output gradients side
					// by side channel-major (no transpose needed) and run
					// the zero-skipping Wᵀ·g once over the whole group, so
					// each surviving weight's axpy spans G·cols columns.
					giB := tensor.GetScratch(c.OutC * wide)
					for i := glo; i < glo+gn; i++ {
						gi := dout.Data[i*outStride : (i+1)*outStride]
						for oc := 0; oc < c.OutC; oc++ {
							copy(giB[oc*wide+(i-glo)*cols:][:cols], gi[oc*cols:(oc+1)*cols])
						}
					}
					if pat != nil {
						tensor.MatMulTransAMaskPatSlice(dcolB, c.weight.W.Data, giB, pat, wide)
					} else {
						tensor.MatMulTransASparseSlice(dcolB, c.weight.W.Data, giB, colRows, c.OutC, wide)
					}
					tensor.PutScratch(giB)
				} else {
					giT := tensor.GetScratch(wide * c.OutC)
					for i := glo; i < glo+gn; i++ {
						tensor.TransposeSlice(giT[(i-glo)*cols*c.OutC:][:cols*c.OutC],
							dout.Data[i*outStride:(i+1)*outStride], c.OutC, cols)
					}
					// dcolB[r][i·cols+j] = dot(Wᵀ row r, gᵀ patch row) — the
					// same ascending-OutC chain as the per-image Wᵀ·g.
					tensor.MatMulTransBSlice(dcolB, wt, giT, colRows, c.OutC, wide)
					tensor.PutScratch(giT)
				}
				for i := glo; i < glo+gn; i++ {
					tensor.Im2Col(col, x.Data[i*inStride:(i+1)*inStride], d)
					gi := dout.Data[i*outStride : (i+1)*outStride]
					// dW += gi · colᵀ, accumulated straight into the shard
					// buffer (each dot product is still formed in ascending-k
					// order before the single add, matching the old
					// materialize-then-add rounding).
					tensor.MatMulTransBAccSlice(sh.dw, gi, col, c.OutC, cols, colRows)
					// Col2ImLD accumulates, so the reused image slice is
					// zeroed first.
					dxi := dx.Data[i*inStride : (i+1)*inStride]
					for j := range dxi {
						dxi[j] = 0
					}
					tensor.Col2ImLD(dxi, dcolB[(i-glo)*cols:], d, wide)
					if c.useBias {
						for oc := 0; oc < c.OutC; oc++ {
							var s float64
							row := gi[oc*cols : (oc+1)*cols]
							for _, v := range row {
								s += float64(v)
							}
							sh.db[oc] += s
						}
					}
				}
				tensor.PutScratch(dcolB)
			}
			tensor.PutScratch(col)
			shards[s] = sh
		}
	})
	for _, sh := range shards {
		if sh.dw == nil {
			continue
		}
		g := c.weight.G.Data
		for i, v := range sh.dw {
			g[i] += v
		}
		tensor.PutScratch(sh.dw)
		if c.useBias {
			for oc, v := range sh.db {
				c.bias.G.Data[oc] += float32(v)
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.useBias {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}

// FLOPs implements Layer: 2·K²·InC·OutC·OutH·OutW per instance (multiply
// and add), plus bias adds.
func (c *Conv2D) FLOPs() int64 {
	if !c.haveDims {
		return 0
	}
	d := c.dims
	f := int64(2) * int64(c.K*c.K*c.InC) * int64(c.OutC) * int64(d.OutH*d.OutW)
	if c.useBias {
		f += int64(c.OutC) * int64(d.OutH*d.OutW)
	}
	return f
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Weight exposes the filter parameter (shape OutC × InC·K·K); used by the
// pruning subsystem to rank filters.
func (c *Conv2D) Weight() *Param { return c.weight }

// OutDims returns the cached convolution geometry (valid after Forward).
func (c *Conv2D) OutDims() (tensor.ConvDims, bool) { return c.dims, c.haveDims }

// parallelShards picks a shard count for deterministic batched gradient
// accumulation: one shard per available core, but never more shards than
// images so small batches are not over-sharded. Results are deterministic
// for a fixed GOMAXPROCS (shard boundaries fix the summation grouping).
func parallelShards(n int) int {
	p := runtime.GOMAXPROCS(0)
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}
