package nn

import (
	"fmt"
	"math/rand"
	"runtime"

	"spatl/internal/tensor"
)

// Conv2D is a 2D convolution with square kernels, shared stride/padding on
// both axes and optional bias. Forward lowers each image to a column
// matrix (im2col) and multiplies by the filter matrix; backward recomputes
// the columns rather than caching them, trading FLOPs for memory.
type Conv2D struct {
	name                      string
	InC, OutC, K, Stride, Pad int
	weight, bias              *Param
	useBias                   bool
	dims                      tensor.ConvDims
	haveDims                  bool
	x                         *tensor.Tensor // cached input for backward
	out, dx                   *tensor.Tensor // reused activation/gradient buffers
}

// NewConv2D constructs a convolution layer with He-normal initialized
// filters. Bias is included when useBias is true (models that follow the
// conv with BatchNorm typically disable it).
func NewConv2D(name string, inC, outC, k, stride, pad int, useBias bool, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		name: name, InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		useBias: useBias,
	}
	c.weight = newParam("weight", outC, inC*k*k)
	c.weight.W.KaimingNormal(rng, inC*k*k)
	if useBias {
		c.bias = newParam("bias", outC)
	}
	return c
}

// Forward implements Layer. Input shape (N, InC, H, W).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: %s expects (N,%d,H,W), got %v", c.name, c.InC, x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	if !c.haveDims || c.dims.H != h || c.dims.W != w {
		c.dims = tensor.NewConvDims(c.InC, h, w, c.OutC, c.K, c.Stride, c.Pad)
		c.haveDims = true
	}
	d := c.dims
	out := tensor.Reuse(c.out, n, c.OutC, d.OutH, d.OutW)
	c.out = out
	inStride := c.InC * h * w
	outStride := c.OutC * d.OutH * d.OutW
	colRows := c.InC * c.K * c.K
	cols := d.OutH * d.OutW
	// Dense weights feed the register-tiled dot kernel via the patch-major
	// lowering (both operands row-contiguous, no packing). Pruned/masked
	// weights instead use the row-major lowering with the zero-skipping
	// kernel, which elides whole B-row passes per zero weight.
	sparse := tensor.IsSparse(c.weight.W.Data)
	tensor.Parallel(n, func(lo, hi int) {
		col := tensor.GetScratch(colRows * cols)
		for i := lo; i < hi; i++ {
			oi := out.Data[i*outStride : (i+1)*outStride]
			if sparse {
				tensor.Im2Col(col, x.Data[i*inStride:(i+1)*inStride], d)
				tensor.MatMulSlice(oi, c.weight.W.Data, col, c.OutC, colRows, cols)
			} else {
				tensor.Im2ColPatch(col, x.Data[i*inStride:(i+1)*inStride], d)
				tensor.MatMulTransBSlice(oi, c.weight.W.Data, col, c.OutC, colRows, cols)
			}
			if c.useBias {
				for oc := 0; oc < c.OutC; oc++ {
					b := c.bias.W.Data[oc]
					row := oi[oc*cols : (oc+1)*cols]
					for j := range row {
						row[j] += b
					}
				}
			}
		}
		tensor.PutScratch(col)
	})
	c.x = x
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	x := c.x
	if x == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	d := c.dims
	cols := d.OutH * d.OutW
	colRows := c.InC * c.K * c.K
	inStride := c.InC * h * w
	outStride := c.OutC * cols

	dx := tensor.Reuse(c.dx, n, c.InC, h, w)
	c.dx = dx

	// Shard the batch; each shard accumulates its own dW (and db) in
	// scratch buffers, then shards are summed in fixed order so results
	// are deterministic for a fixed shard count.
	type shard struct {
		dw []float32
		db []float64
	}
	nw := parallelShards(n)
	shards := make([]shard, nw)
	chunk := (n + nw - 1) / nw
	tensor.Parallel(nw, func(slo, shi int) {
		for s := slo; s < shi; s++ {
			lo, hi := s*chunk, (s+1)*chunk
			if hi > n {
				hi = n
			}
			sh := shard{dw: tensor.GetScratch(c.OutC * colRows)}
			for i := range sh.dw {
				sh.dw[i] = 0
			}
			if c.useBias {
				sh.db = make([]float64, c.OutC)
			}
			col := tensor.GetScratch(colRows * cols)
			dcol := tensor.GetScratch(colRows * cols)
			for i := lo; i < hi; i++ {
				tensor.Im2Col(col, x.Data[i*inStride:(i+1)*inStride], d)
				gi := dout.Data[i*outStride : (i+1)*outStride]
				// dW += gi · colᵀ, accumulated straight into the shard
				// buffer (each dot product is still formed in ascending-k
				// order before the single add, matching the old
				// materialize-then-add rounding).
				tensor.MatMulTransBAccSlice(sh.dw, gi, col, c.OutC, cols, colRows)
				// dcol = Wᵀ · gi ; dx_i = col2im(dcol). Col2Im accumulates,
				// so the reused image slice is zeroed first.
				tensor.MatMulTransASlice(dcol, c.weight.W.Data, gi, colRows, c.OutC, cols)
				dxi := dx.Data[i*inStride : (i+1)*inStride]
				for j := range dxi {
					dxi[j] = 0
				}
				tensor.Col2Im(dxi, dcol, d)
				if c.useBias {
					for oc := 0; oc < c.OutC; oc++ {
						var s float64
						row := gi[oc*cols : (oc+1)*cols]
						for _, v := range row {
							s += float64(v)
						}
						sh.db[oc] += s
					}
				}
			}
			tensor.PutScratch(dcol)
			tensor.PutScratch(col)
			shards[s] = sh
		}
	})
	for _, sh := range shards {
		if sh.dw == nil {
			continue
		}
		g := c.weight.G.Data
		for i, v := range sh.dw {
			g[i] += v
		}
		tensor.PutScratch(sh.dw)
		if c.useBias {
			for oc, v := range sh.db {
				c.bias.G.Data[oc] += float32(v)
			}
		}
	}
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.useBias {
		return []*Param{c.weight, c.bias}
	}
	return []*Param{c.weight}
}

// FLOPs implements Layer: 2·K²·InC·OutC·OutH·OutW per instance (multiply
// and add), plus bias adds.
func (c *Conv2D) FLOPs() int64 {
	if !c.haveDims {
		return 0
	}
	d := c.dims
	f := int64(2) * int64(c.K*c.K*c.InC) * int64(c.OutC) * int64(d.OutH*d.OutW)
	if c.useBias {
		f += int64(c.OutC) * int64(d.OutH*d.OutW)
	}
	return f
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Weight exposes the filter parameter (shape OutC × InC·K·K); used by the
// pruning subsystem to rank filters.
func (c *Conv2D) Weight() *Param { return c.weight }

// OutDims returns the cached convolution geometry (valid after Forward).
func (c *Conv2D) OutDims() (tensor.ConvDims, bool) { return c.dims, c.haveDims }

// parallelShards picks a shard count for deterministic batched gradient
// accumulation: one shard per available core, but never more shards than
// images so small batches are not over-sharded. Results are deterministic
// for a fixed GOMAXPROCS (shard boundaries fix the summation grouping).
func parallelShards(n int) int {
	p := runtime.GOMAXPROCS(0)
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}
