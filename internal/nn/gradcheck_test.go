package nn

import (
	"math"
	"math/rand"
	"testing"

	"spatl/internal/tensor"
)

// lossOf runs a training-mode forward through layer and returns the mean
// cross-entropy against fixed labels — a scalar function of both the
// layer input and its parameters, used for numerical gradient checks.
func lossOf(l Layer, x *tensor.Tensor, labels []int) float64 {
	out := l.Forward(x.Clone(), true)
	if out.Rank() > 2 {
		out = out.Reshape(out.Dim(0), out.Len()/out.Dim(0))
	}
	loss, _ := SoftmaxCrossEntropy(out, labels)
	return loss
}

// checkLayerGradients compares analytic input and parameter gradients of
// a layer against central finite differences.
func checkLayerGradients(t *testing.T, l Layer, x *tensor.Tensor, labels []int, tol float64) {
	t.Helper()
	ZeroGrad(l.Params())
	out := l.Forward(x.Clone(), true)
	flatOut := out
	if out.Rank() > 2 {
		flatOut = out.Reshape(out.Dim(0), out.Len()/out.Dim(0))
	}
	_, dlogits := SoftmaxCrossEntropy(flatOut, labels)
	if out.Rank() > 2 {
		dlogits = dlogits.Reshape(out.Shape()...)
	}
	dx := l.Backward(dlogits)

	const eps = 1e-2
	// Input gradient at a sample of positions.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		i := rng.Intn(x.Len())
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := lossOf(l, x, labels)
		x.Data[i] = orig - eps
		lm := lossOf(l, x, labels)
		x.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		ana := float64(dx.Data[i])
		if math.Abs(num-ana) > tol*(1+math.Abs(num)) {
			t.Fatalf("%s input grad[%d]: numeric %v analytic %v", l.Name(), i, num, ana)
		}
	}
	// Parameter gradients at a sample of positions.
	for _, p := range l.Params() {
		for trial := 0; trial < 8; trial++ {
			i := rng.Intn(p.W.Len())
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			p.Bump() // direct Data write: invalidate packed-weight caches
			lp := lossOf(l, x, labels)
			p.W.Data[i] = orig - eps
			p.Bump()
			lm := lossOf(l, x, labels)
			p.W.Data[i] = orig
			p.Bump()
			num := (lp - lm) / (2 * eps)
			ana := float64(p.G.Data[i])
			if math.Abs(num-ana) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s param %s grad[%d]: numeric %v analytic %v", l.Name(), p.Name, i, num, ana)
			}
		}
	}
}

func TestLinearGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("fc", 6, 4, rng)
	x := tensor.New(5, 6)
	x.Randn(rng, 1)
	checkLayerGradients(t, l, x, []int{0, 1, 2, 3, 0}, 2e-2)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D("conv", 2, 3, 3, 1, 1, true, rng)
	seq := NewSequential("net", conv, NewFlatten("flat"), NewLinear("fc", 3*4*4, 3, rng))
	x := tensor.New(3, 2, 4, 4)
	x.Randn(rng, 1)
	checkLayerGradients(t, seq, x, []int{0, 1, 2}, 3e-2)
}

func TestConv2DStrideGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D("conv", 2, 2, 3, 2, 1, false, rng)
	seq := NewSequential("net", conv, NewFlatten("flat"), NewLinear("fc", 2*3*3, 3, rng))
	x := tensor.New(2, 2, 6, 6)
	x.Randn(rng, 1)
	checkLayerGradients(t, seq, x, []int{2, 0}, 3e-2)
}

// TestConv2DOddShapeBatchGradients exercises the batch-fused lowering at
// batch > 1 with non-square odd spatial dims and an output-channel count
// that is not a multiple of the GEMM tile (remainder rows, remainder
// panel columns, and multiple images per fused group all at once).
func TestConv2DOddShapeBatchGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	conv := NewConv2D("conv", 3, 5, 3, 1, 1, true, rng)
	seq := NewSequential("net", conv, NewFlatten("flat"), NewLinear("fc", 5*7*5, 4, rng))
	x := tensor.New(3, 3, 7, 5)
	x.Randn(rng, 1)
	checkLayerGradients(t, seq, x, []int{0, 3, 2}, 3e-2)
}

// TestConv2DOddStrideBatchGradients does the same for a strided geometry
// where OutH/OutW round down unevenly.
func TestConv2DOddStrideBatchGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	conv := NewConv2D("conv", 2, 7, 3, 2, 0, false, rng)
	seq := NewSequential("net", conv, NewFlatten("flat"), NewLinear("fc", 7*3*2, 3, rng))
	x := tensor.New(4, 2, 7, 6)
	x.Randn(rng, 1)
	checkLayerGradients(t, seq, x, []int{1, 2, 0, 1}, 3e-2)
}

func TestBatchNormGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bn := NewBatchNorm2D("bn", 3)
	// Perturb gamma/beta away from defaults so gradients are generic.
	bn.gamma.W.Uniform(rng, 0.5, 1.5)
	bn.beta.W.Randn(rng, 0.3)
	seq := NewSequential("net", bn, NewFlatten("flat"), NewLinear("fc", 3*2*2, 3, rng))
	x := tensor.New(4, 3, 2, 2)
	x.Randn(rng, 2)
	checkLayerGradients(t, seq, x, []int{0, 1, 2, 1}, 5e-2)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seq := NewSequential("net", NewLinear("fc1", 5, 8, rng), NewReLU("relu"), NewLinear("fc2", 8, 3, rng))
	x := tensor.New(4, 5)
	x.Randn(rng, 1)
	checkLayerGradients(t, seq, x, []int{0, 2, 1, 0}, 2e-2)
}

func TestMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	seq := NewSequential("net",
		NewConv2D("conv", 1, 2, 3, 1, 1, false, rng),
		NewMaxPool2D("pool", 2),
		NewFlatten("flat"),
		NewLinear("fc", 2*2*2, 3, rng))
	x := tensor.New(2, 1, 4, 4)
	x.Randn(rng, 1)
	checkLayerGradients(t, seq, x, []int{1, 2}, 3e-2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seq := NewSequential("net",
		NewConv2D("conv", 1, 3, 3, 1, 1, false, rng),
		NewGlobalAvgPool("gap"),
		NewLinear("fc", 3, 3, rng))
	x := tensor.New(2, 1, 5, 5)
	x.Randn(rng, 1)
	checkLayerGradients(t, seq, x, []int{0, 2}, 3e-2)
}

func TestBasicBlockIdentityGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	seq := NewSequential("net",
		NewBasicBlock("block", 2, 2, 1, rng),
		NewGlobalAvgPool("gap"),
		NewLinear("fc", 2, 3, rng))
	x := tensor.New(3, 2, 4, 4)
	x.Randn(rng, 1)
	checkLayerGradients(t, seq, x, []int{0, 1, 2}, 6e-2)
}

func TestBasicBlockProjectionGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := NewSequential("net",
		NewBasicBlock("block", 2, 4, 2, rng),
		NewGlobalAvgPool("gap"),
		NewLinear("fc", 4, 3, rng))
	x := tensor.New(2, 2, 4, 4)
	x.Randn(rng, 1)
	checkLayerGradients(t, seq, x, []int{1, 0}, 6e-2)
}
