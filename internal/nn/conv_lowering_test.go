package nn

import (
	"math/rand"
	"testing"

	"spatl/internal/tensor"
)

// refConvForward computes a batched 2D convolution with the naive im2col +
// reference-matmul lowering, the ground truth both forward paths (dense
// patch-major and sparse row-major) must match.
func refConvForward(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	d := tensor.NewConvDims(c.InC, h, w, c.OutC, c.K, c.Stride, c.Pad)
	colRows := c.InC * c.K * c.K
	cols := d.OutH * d.OutW
	out := tensor.New(n, c.OutC, d.OutH, d.OutW)
	col := tensor.New(colRows, cols)
	inStride := c.InC * h * w
	outStride := c.OutC * cols
	for i := 0; i < n; i++ {
		tensor.Im2Col(col.Data, x.Data[i*inStride:(i+1)*inStride], d)
		prod := tensor.RefMatMul(c.weight.W.Reshape(c.OutC, colRows), col)
		oi := out.Data[i*outStride : (i+1)*outStride]
		copy(oi, prod.Data)
		if c.useBias {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.bias.W.Data[oc]
				row := oi[oc*cols : (oc+1)*cols]
				for j := range row {
					row[j] += b
				}
			}
		}
	}
	return out
}

// TestConv2DForwardLoweringPaths exercises both forward lowerings against
// the naive reference: dense weights take the patch-major + dot-kernel
// path, and mostly-zero weights (SPATL pruned filters) take the row-major
// zero-skipping path.
func TestConv2DForwardLoweringPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range []struct {
		name              string
		k, stride, pad    int
		useBias, sparsify bool
	}{
		{"dense3x3", 3, 1, 1, true, false},
		{"dense3x3stride2", 3, 2, 1, false, false},
		{"dense5x5", 5, 1, 2, false, false},
		{"sparse3x3", 3, 1, 1, true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConv2D("c", 3, 6, tc.k, tc.stride, tc.pad, tc.useBias, rng)
			if tc.sparsify {
				for i := range c.weight.W.Data {
					if i%5 != 0 { // 80% zeros: well past the sparse probe
						c.weight.W.Data[i] = 0
					}
				}
				if !tensor.IsSparse(c.weight.W.Data) {
					t.Fatal("sparsified weights not classified sparse")
				}
			}
			x := tensor.New(2, 3, 9, 7)
			for i := range x.Data {
				x.Data[i] = rng.Float32()*2 - 1
			}
			want := refConvForward(c, x)
			got := c.Forward(x, false)
			if len(got.Data) != len(want.Data) {
				t.Fatalf("output length %d, want %d", len(got.Data), len(want.Data))
			}
			for i := range want.Data {
				diff := got.Data[i] - want.Data[i]
				if diff < 0 {
					diff = -diff
				}
				if diff > 1e-6 {
					t.Fatalf("output[%d] = %v, ref %v (diff %v)", i, got.Data[i], want.Data[i], diff)
				}
			}
		})
	}
}
