package nn

import (
	"math"
	"math/rand"
	"testing"

	"spatl/internal/tensor"
)

func TestDropoutEvalIsIdentity(t *testing.T) {
	d := NewDropout("drop", 0.5, 1)
	x := tensor.New(4, 10)
	x.Randn(rand.New(rand.NewSource(2)), 1)
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
}

func TestDropoutTrainDropsAndRescales(t *testing.T) {
	d := NewDropout("drop", 0.5, 3)
	x := tensor.New(1, 10000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros, scaled := 0, 0
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			scaled++
		default:
			t.Fatalf("unexpected value %v (want 0 or 2)", v)
		}
	}
	frac := float64(zeros) / float64(x.Len())
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("dropped fraction %.3f, want ≈0.5", frac)
	}
	// Expectation preserved: mean of y ≈ 1.
	var mean float64
	for _, v := range y.Data {
		mean += float64(v)
	}
	mean /= float64(y.Len())
	if math.Abs(mean-1) > 0.06 {
		t.Fatalf("mean %.3f, want ≈1 (inverted dropout)", mean)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	d := NewDropout("drop", 0.3, 4)
	x := tensor.New(2, 50)
	x.Fill(1)
	y := d.Forward(x, true)
	dout := tensor.New(2, 50)
	dout.Fill(1)
	dx := d.Backward(dout)
	scale := float32(1 / 0.7)
	for i := range y.Data {
		want := float32(0)
		if y.Data[i] != 0 {
			want = scale
		}
		if dx.Data[i] != want {
			t.Fatalf("grad[%d] = %v, want %v", i, dx.Data[i], want)
		}
	}
}

func TestDropoutZeroProbPassthrough(t *testing.T) {
	d := NewDropout("drop", 0, 5)
	x := tensor.New(2, 4)
	x.Randn(rand.New(rand.NewSource(6)), 1)
	if y := d.Forward(x, true); y != x {
		t.Fatal("p=0 should pass the input through unchanged")
	}
}

func TestDropoutRejectsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout("drop", 1.0, 1)
}

func TestConstantLR(t *testing.T) {
	s := ConstantLR(0.1)
	if s.LRAt(0) != 0.1 || s.LRAt(1000) != 0.1 {
		t.Fatal("constant LR must not change")
	}
}

func TestStepLR(t *testing.T) {
	s := StepLR{Base: 1, Gamma: 0.1, Every: 10}
	if s.LRAt(0) != 1 || s.LRAt(9) != 1 {
		t.Fatal("no decay before the first boundary")
	}
	if math.Abs(s.LRAt(10)-0.1) > 1e-12 || math.Abs(s.LRAt(25)-0.01) > 1e-12 {
		t.Fatalf("staircase wrong: %v %v", s.LRAt(10), s.LRAt(25))
	}
	if (StepLR{Base: 2, Gamma: 0.5, Every: 0}).LRAt(100) != 2 {
		t.Fatal("Every=0 must disable decay")
	}
}

func TestCosineLR(t *testing.T) {
	s := CosineLR{Base: 1, Min: 0.01, Horizon: 100}
	if s.LRAt(0) != 1 {
		t.Fatalf("start %v, want Base", s.LRAt(0))
	}
	mid := s.LRAt(50)
	if math.Abs(mid-(0.01+0.495)) > 1e-9 {
		t.Fatalf("midpoint %v", mid)
	}
	if s.LRAt(100) != 0.01 || s.LRAt(500) != 0.01 {
		t.Fatal("past horizon must clamp at Min")
	}
	// Monotone non-increasing over the horizon.
	prev := math.Inf(1)
	for i := 0; i <= 100; i += 5 {
		v := s.LRAt(i)
		if v > prev+1e-12 {
			t.Fatalf("cosine not monotone at %d", i)
		}
		prev = v
	}
}

func TestWarmupLR(t *testing.T) {
	s := WarmupLR{Steps: 4, Then: ConstantLR(1)}
	want := []float64{0.25, 0.5, 0.75, 1, 1, 1}
	for i, w := range want {
		if math.Abs(s.LRAt(i)-w) > 1e-12 {
			t.Fatalf("warmup LRAt(%d) = %v, want %v", i, s.LRAt(i), w)
		}
	}
}

func TestDropoutInNetworkGradcheck(t *testing.T) {
	// With a fixed mask (single forward), dropout is a linear map, so
	// the network gradient check applies: use the shared helper but make
	// dropout deterministic by setting p=0.5 and re-seeding before each
	// forward via a wrapper is impractical — instead check that
	// train-forward + backward are mutually consistent on a frozen mask.
	rng := rand.New(rand.NewSource(7))
	fc1 := NewLinear("fc1", 6, 12, rng)
	drop := NewDropout("drop", 0.4, 8)
	fc2 := NewLinear("fc2", 12, 3, rng)
	x := tensor.New(5, 6)
	x.Randn(rng, 1)
	labels := []int{0, 1, 2, 0, 1}

	ZeroGrad(append(fc1.Params(), fc2.Params()...))
	h := fc1.Forward(x, true)
	hd := drop.Forward(h, true)
	out := fc2.Forward(hd, true)
	_, grad := SoftmaxCrossEntropy(out, labels)
	d2 := fc2.Backward(grad)
	dd := drop.Backward(d2)
	fc1.Backward(dd)

	// Consistency: gradient w.r.t. dropped units must be zero.
	for i := range hd.Data {
		if hd.Data[i] == 0 && h.Data[i] != 0 {
			if dd.Data[i] != 0 {
				t.Fatal("gradient leaked through a dropped unit")
			}
		}
	}
}
