package nn

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"spatl/internal/tensor"
)

// maskConvWeights zeroes a fraction of the conv's filter rows (the shape
// a channel mask produces) and bumps the weight version, as pruning does.
func maskConvWeights(c *Conv2D, frac float64, rng *rand.Rand) {
	w := c.weight.W
	rows, cols := w.Dim(0), w.Dim(1)
	for r := 0; r < rows; r++ {
		if rng.Float64() < frac {
			row := w.Data[r*cols : (r+1)*cols]
			for j := range row {
				row[j] = 0
			}
		}
	}
	// At least one zero row and one surviving row, so both kernels always
	// have work and skips.
	for j := 0; j < cols; j++ {
		w.Data[j] = 0
	}
	if rows > 1 && w.Data[cols] == 0 {
		w.Data[cols] = 0.5
	}
	c.weight.Bump()
}

// runMaskedConv runs one forward+backward through a masked conv and
// returns (out, dx, dW) snapshots.
func runMaskedConv(t *testing.T, dispatch bool, procs int) (out, dx, dw []float32) {
	t.Helper()
	prev := maskStaticDispatch
	maskStaticDispatch = dispatch
	defer func() { maskStaticDispatch = prev }()
	prevProcs := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prevProcs)

	rng := rand.New(rand.NewSource(21))
	c := NewConv2D("conv", 3, 8, 3, 1, 1, true, rng)
	maskConvWeights(c, 0.7, rng)
	x := tensor.New(5, 3, 9, 9)
	x.Randn(rng, 1)
	y := c.Forward(x, true)
	dout := tensor.New(y.Dim(0), y.Dim(1), y.Dim(2), y.Dim(3))
	dout.Randn(rng, 1)
	ZeroGrad(c.Params())
	dxT := c.Backward(dout)

	// Run twice: the second pass must hit the cached pattern (no
	// version bump in between) and reproduce the first bit for bit.
	y2 := c.Forward(x, true)
	for i := range y.Data {
		if math.Float32bits(y.Data[i]) != math.Float32bits(y2.Data[i]) {
			t.Fatalf("cached-pattern forward differs from first pass at %d", i)
		}
	}

	out = append([]float32(nil), y.Data...)
	dx = append([]float32(nil), dxT.Data...)
	dw = append([]float32(nil), c.weight.G.Data...)
	return out, dx, dw
}

// TestConvMaskStaticMatchesProbe: with masked weights, the mask-static
// pattern dispatch must be bitwise identical to the per-minibatch
// probing dispatch it replaces, at GOMAXPROCS 1 and N.
func TestConvMaskStaticMatchesProbe(t *testing.T) {
	for _, procs := range []int{1, runtime.NumCPU()} {
		wantOut, wantDx, wantDw := runMaskedConv(t, false, procs)
		gotOut, gotDx, gotDw := runMaskedConv(t, true, procs)
		for name, pair := range map[string][2][]float32{
			"out": {gotOut, wantOut}, "dx": {gotDx, wantDx}, "dw": {gotDw, wantDw},
		} {
			got, want := pair[0], pair[1]
			if len(got) != len(want) {
				t.Fatalf("procs=%d %s: length mismatch", procs, name)
			}
			for i := range got {
				if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
					t.Fatalf("procs=%d %s: index %d differs: %v vs %v", procs, name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestConvPatternInvalidatesOnBump: mutating the weights must re-derive
// the pattern — a stale pattern would silently miscompute after an
// optimizer step un-zeroes or re-zeroes entries.
func TestConvPatternInvalidatesOnBump(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := NewConv2D("conv", 2, 6, 3, 1, 1, false, rng)
	maskConvWeights(c, 0.8, rng)
	x := tensor.New(2, 2, 6, 6)
	x.Randn(rng, 1)
	y1 := append([]float32(nil), c.Forward(x, false).Data...)

	// Flip one masked row back on; without invalidation the pattern
	// would still skip it.
	cols := c.weight.W.Dim(1)
	zeroRow := -1
	for r := 0; r < c.OutC; r++ {
		allZero := true
		for j := 0; j < cols; j++ {
			if c.weight.W.Data[r*cols+j] != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			zeroRow = r
			break
		}
	}
	if zeroRow < 0 {
		t.Fatal("no fully masked row to flip")
	}
	for j := 0; j < cols; j++ {
		c.weight.W.Data[zeroRow*cols+j] = 1
	}
	c.weight.Bump()
	y2 := c.Forward(x, false)
	changed := false
	outStride := y2.Dim(2) * y2.Dim(3)
	row := y2.Data[zeroRow*outStride : (zeroRow+1)*outStride]
	for _, v := range row {
		if v != 0 {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("un-masking a row produced no output: stale mask pattern survived Bump")
	}
	_ = y1
}

// TestLinearMaskStaticMatchesRef: a masked linear layer must produce the
// tensor-level gather-dot reference results through both forward and
// backward, at GOMAXPROCS 1 and N.
func TestLinearMaskStaticMatchesRef(t *testing.T) {
	for _, procs := range []int{1, runtime.NumCPU()} {
		prevProcs := runtime.GOMAXPROCS(procs)
		rng := rand.New(rand.NewSource(23))
		l := NewLinear("fc", 24, 10, rng)
		// Mask 60% of weight entries.
		for i := range l.weight.W.Data {
			if rng.Float64() < 0.6 {
				l.weight.W.Data[i] = 0
			}
		}
		l.weight.Bump()
		x := tensor.New(7, 24)
		x.Randn(rng, 1)
		y := l.Forward(x, true)

		pat := tensor.BuildMaskPat(l.weight.W.Data, 10, 24)
		want := make([]float32, 7*10)
		tensor.MatMulTransBMaskPatSlice(want, x.Data, l.weight.W.Data, pat, 7)
		for i := 0; i < 7; i++ {
			tensor.VecAdd(want[i*10:(i+1)*10], l.bias.W.Data)
		}
		for i := range want {
			if math.Float32bits(y.Data[i]) != math.Float32bits(want[i]) {
				t.Fatalf("procs=%d: forward index %d differs", procs, i)
			}
		}

		dout := tensor.New(7, 10)
		dout.Randn(rng, 1)
		ZeroGrad(l.Params())
		dx := l.Backward(dout)
		wantDx := make([]float32, 7*24)
		tensor.MatMulMaskPatRightSlice(wantDx, dout.Data, l.weight.W.Data, pat, 7)
		for i := range wantDx {
			if math.Float32bits(dx.Data[i]) != math.Float32bits(wantDx[i]) {
				t.Fatalf("procs=%d: dx index %d differs", procs, i)
			}
		}
		runtime.GOMAXPROCS(prevProcs)
	}
}
