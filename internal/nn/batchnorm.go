package nn

import (
	"fmt"
	"math"

	"spatl/internal/tensor"
)

// BatchNorm2D normalizes each channel of an (N,C,H,W) batch to zero mean
// and unit variance using batch statistics during training and running
// statistics during evaluation, followed by a learned affine transform.
type BatchNorm2D struct {
	name     string
	C        int
	Momentum float64
	Eps      float64
	gamma    *Param
	beta     *Param

	// Running statistics, shipped with the model but not trained by SGD.
	RunMean []float32
	RunVar  []float32

	// Backward caches (training mode only).
	x      *tensor.Tensor
	xhat   []float32
	mean   []float64
	invStd []float64

	out, dx *tensor.Tensor // reused activation/gradient buffers

	lastPlane int // H*W at the most recent Forward, for FLOPs accounting
}

// NewBatchNorm2D constructs a batch-norm layer for C channels with
// gamma=1, beta=0, running stats at (0,1).
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	bn := &BatchNorm2D{name: name, C: c, Momentum: 0.1, Eps: 1e-5}
	bn.gamma = newParam("gamma", c)
	bn.gamma.W.Fill(1)
	bn.beta = newParam("beta", c)
	bn.RunMean = make([]float32, c)
	bn.RunVar = make([]float32, c)
	for i := range bn.RunVar {
		bn.RunVar[i] = 1
	}
	return bn
}

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != bn.C {
		panic(fmt.Sprintf("nn: %s expects (N,%d,H,W), got %v", bn.name, bn.C, x.Shape()))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	plane := h * w
	bn.lastPlane = plane
	cnt := n * plane
	out := tensor.Reuse(bn.out, n, bn.C, h, w)
	bn.out = out

	if train {
		bn.x = x
		// Backward caches are reused across steps (steady-state training
		// allocates nothing here); they are owned by the layer, not the
		// scratch pool, because they must survive until Backward.
		if cap(bn.mean) < bn.C {
			bn.mean = make([]float64, bn.C)
			bn.invStd = make([]float64, bn.C)
		}
		bn.mean = bn.mean[:bn.C]
		bn.invStd = bn.invStd[:bn.C]
		if cap(bn.xhat) < x.Len() {
			bn.xhat = make([]float32, x.Len())
		}
		bn.xhat = bn.xhat[:x.Len()]
		tensor.Parallel(bn.C, func(clo, chi int) {
			for c := clo; c < chi; c++ {
				var sum float64
				for i := 0; i < n; i++ {
					base := (i*bn.C + c) * plane
					for j := 0; j < plane; j++ {
						sum += float64(x.Data[base+j])
					}
				}
				mean := sum / float64(cnt)
				var vs float64
				for i := 0; i < n; i++ {
					base := (i*bn.C + c) * plane
					for j := 0; j < plane; j++ {
						d := float64(x.Data[base+j]) - mean
						vs += d * d
					}
				}
				variance := vs / float64(cnt)
				inv := 1.0 / math.Sqrt(variance+bn.Eps)
				bn.mean[c] = mean
				bn.invStd[c] = inv
				g, b := float64(bn.gamma.W.Data[c]), float64(bn.beta.W.Data[c])
				// Normalize+affine per channel plane through the SIMD
				// kernel (float64 math per element, same operation order
				// as the scalar loop it replaced). The mean/variance
				// reductions above stay scalar: they are single
				// accumulation chains that must not be reassociated.
				for i := 0; i < n; i++ {
					base := (i*bn.C + c) * plane
					tensor.VecBNTrain(out.Data[base:base+plane], bn.xhat[base:base+plane],
						x.Data[base:base+plane], mean, inv, g, b)
				}
				bn.RunMean[c] = float32((1-bn.Momentum)*float64(bn.RunMean[c]) + bn.Momentum*mean)
				bn.RunVar[c] = float32((1-bn.Momentum)*float64(bn.RunVar[c]) + bn.Momentum*variance)
			}
		})
		return out
	}

	tensor.Parallel(bn.C, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			inv := 1.0 / math.Sqrt(float64(bn.RunVar[c])+bn.Eps)
			mean := float64(bn.RunMean[c])
			g, b := float64(bn.gamma.W.Data[c]), float64(bn.beta.W.Data[c])
			for i := 0; i < n; i++ {
				base := (i*bn.C + c) * plane
				tensor.VecBNEval(out.Data[base:base+plane], x.Data[base:base+plane], mean, inv, g, b)
			}
		}
	})
	return out
}

// Backward implements Layer (training-mode statistics).
func (bn *BatchNorm2D) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if bn.x == nil {
		panic("nn: BatchNorm2D.Backward before training-mode Forward")
	}
	n, h, w := bn.x.Dim(0), bn.x.Dim(2), bn.x.Dim(3)
	plane := h * w
	cnt := float64(n * plane)
	dx := tensor.Reuse(bn.dx, n, bn.C, h, w)
	bn.dx = dx

	tensor.Parallel(bn.C, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			var dgamma, dbeta float64
			for i := 0; i < n; i++ {
				base := (i*bn.C + c) * plane
				for j := 0; j < plane; j++ {
					g := float64(dout.Data[base+j])
					dgamma += g * float64(bn.xhat[base+j])
					dbeta += g
				}
			}
			bn.gamma.G.Data[c] += float32(dgamma)
			bn.beta.G.Data[c] += float32(dbeta)

			// dx = (gamma*invStd/cnt) * (cnt*dout - dbeta - xhat*dgamma)
			scale := float64(bn.gamma.W.Data[c]) * bn.invStd[c] / cnt
			for i := 0; i < n; i++ {
				base := (i*bn.C + c) * plane
				tensor.VecBNBwd(dx.Data[base:base+plane], dout.Data[base:base+plane],
					bn.xhat[base:base+plane], scale, cnt, dbeta, dgamma)
			}
		}
	})
	return dx
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.gamma, bn.beta} }

// FLOPs implements Layer: ~4 ops per element (normalize + affine).
func (bn *BatchNorm2D) FLOPs() int64 {
	return 4 * int64(bn.C) * int64(bn.lastPlane)
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.name }
