package nn

import "spatl/internal/tensor"

// maskStaticDispatch gates the mask-static sparse GEMM path. When on
// (the default), layers probe a weight tensor's sparsity once per
// mutation (Param.Bump) and, for sparse weights, precompute the exact
// nonzero pattern so every subsequent minibatch dispatches straight to
// the pattern kernels — no per-call probe, no per-element zero branch.
// The equivalence tests flip it off to prove the pattern path is
// bitwise identical to the probing path it replaces.
var maskStaticDispatch = true

// sparseCache caches a weight tensor's sparsity decision and, when the
// weights are sparse, the exact nonzero pattern the mask-static GEMM
// kernels walk. Like packCache, validity is keyed on the tensor's
// mutation counter: an optimizer step or any other weight write bumps
// the counter and lazily re-probes. Under a mask-static federation
// (algo.SSFL) the pattern itself is stable for the whole mask epoch —
// only the decision probe re-runs after each weight update, and it is a
// strided O(1) sample, not a full scan; the pattern rebuild (one full
// scan) happens only when the weights are actually sparse.
//
// probe is called from the serial prologue of a layer pass, never from
// inside a Parallel region; workers only read the returned pattern.
type sparseCache struct {
	ver   uint64
	valid bool
	// sparse records the probe decision; pat is non-nil only when sparse.
	sparse bool
	pat    *tensor.MaskPat
}

// probe returns whether w's weights are sparse and, if so, their exact
// (m,k) nonzero pattern, re-evaluating only when the tensor has mutated
// since the last call. With mask-static dispatch disabled it degrades
// to the original per-call strided probe and returns no pattern.
func (sc *sparseCache) probe(w *tensor.Tensor, m, k int) (bool, *tensor.MaskPat) {
	if !maskStaticDispatch {
		return tensor.IsSparse(w.Data), nil
	}
	v := w.Version()
	if sc.valid && sc.ver == v {
		if !sc.sparse {
			return false, nil
		}
		return true, sc.pat
	}
	sc.sparse = tensor.IsSparse(w.Data)
	if sc.sparse {
		sc.pat = tensor.BuildMaskPatInto(sc.pat, w.Data, m, k)
	}
	sc.ver, sc.valid = v, true
	if !sc.sparse {
		return false, nil
	}
	return true, sc.pat
}

// SetMaskStaticDispatch toggles the mask-static sparse GEMM path and
// returns the previous setting. The benchmark harness flips it off to
// measure the per-minibatch probing path the pattern cache replaced;
// the equivalence tests do the same to prove bitwise identity. Not
// safe to call concurrently with a running layer pass.
func SetMaskStaticDispatch(on bool) (prev bool) {
	prev = maskStaticDispatch
	maskStaticDispatch = on
	return prev
}
