package nn

import (
	"math/rand"

	"spatl/internal/tensor"
)

// Dropout randomly zeroes activations during training with probability P
// and rescales the survivors by 1/(1−P) (inverted dropout), so
// evaluation-mode forward passes are the identity.
type Dropout struct {
	name string
	P    float64
	rng  *rand.Rand
	mask []bool
	n    int64

	out, dx *tensor.Tensor // reused activation/gradient buffers
}

// NewDropout constructs a dropout layer with its own seeded source; each
// training forward pass draws a fresh mask.
func NewDropout(name string, p float64, seed int64) *Dropout {
	if p < 0 || p >= 1 {
		panic("nn: dropout probability must be in [0,1)")
	}
	return &Dropout{name: name, P: p, rng: rand.New(rand.NewSource(seed))}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	d.n = int64(x.Len() / x.Dim(0))
	if !train || d.P == 0 {
		return x
	}
	out := tensor.Reuse(d.out, x.Shape()...)
	d.out = out
	if cap(d.mask) < x.Len() {
		d.mask = make([]bool, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	scale := float32(1 / (1 - d.P))
	for i, v := range x.Data {
		keep := d.rng.Float64() >= d.P
		d.mask[i] = keep
		if keep {
			out.Data[i] = v * scale
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if d.P == 0 {
		return dout
	}
	dx := tensor.Reuse(d.dx, dout.Shape()...)
	d.dx = dx
	scale := float32(1 / (1 - d.P))
	for i, v := range dout.Data {
		if d.mask[i] {
			dx.Data[i] = v * scale
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Params implements Layer.
func (d *Dropout) Params() []*Param { return nil }

// FLOPs implements Layer.
func (d *Dropout) FLOPs() int64 { return d.n }

// Name implements Layer.
func (d *Dropout) Name() string { return d.name }
