package nn

import (
	"math"
	"math/rand"
	"testing"

	"spatl/internal/tensor"
)

// perImageConvForward is the pre-fusion dense forward formulation: one
// patch-major lowering and one W·colᵀ product per image. The batch-fused
// path must reproduce it bit for bit (the fused GEMM computes the same
// ascending-k dot chains with multiply operands swapped).
func perImageConvForward(c *Conv2D, x *tensor.Tensor) *tensor.Tensor {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	d := tensor.NewConvDims(c.InC, h, w, c.OutC, c.K, c.Stride, c.Pad)
	colRows := c.InC * c.K * c.K
	cols := d.OutH * d.OutW
	out := tensor.New(n, c.OutC, d.OutH, d.OutW)
	col := make([]float32, cols*colRows)
	inStride := c.InC * h * w
	outStride := c.OutC * cols
	for i := 0; i < n; i++ {
		tensor.Im2ColPatch(col, x.Data[i*inStride:(i+1)*inStride], d)
		oi := out.Data[i*outStride : (i+1)*outStride]
		tensor.MatMulTransBSlice(oi, c.weight.W.Data, col, c.OutC, colRows, cols)
		if c.useBias {
			for oc := 0; oc < c.OutC; oc++ {
				b := c.bias.W.Data[oc]
				row := oi[oc*cols : (oc+1)*cols]
				for j := range row {
					row[j] += b
				}
			}
		}
	}
	return out
}

// perImageConvBackward is the pre-fusion dense backward formulation:
// per-image dW/db accumulation into per-shard buffers merged in fixed
// order, and per-image Wᵀ·g + col2im for dx. Shard boundaries replicate
// Conv2D.Backward's, so the comparison is bitwise.
func perImageConvBackward(c *Conv2D, x, dout *tensor.Tensor) (dx *tensor.Tensor, dw []float32, db []float32) {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	d := tensor.NewConvDims(c.InC, h, w, c.OutC, c.K, c.Stride, c.Pad)
	colRows := c.InC * c.K * c.K
	cols := d.OutH * d.OutW
	inStride := c.InC * h * w
	outStride := c.OutC * cols
	dx = tensor.New(n, c.InC, h, w)
	dw = make([]float32, c.OutC*colRows)
	db = make([]float32, c.OutC)
	nw := parallelShards(n)
	chunk := (n + nw - 1) / nw
	col := make([]float32, colRows*cols)
	dcol := make([]float32, colRows*cols)
	for s := 0; s < nw; s++ {
		lo, hi := s*chunk, (s+1)*chunk
		if hi > n {
			hi = n
		}
		sdw := make([]float32, c.OutC*colRows)
		sdb := make([]float64, c.OutC)
		for i := lo; i < hi; i++ {
			tensor.Im2Col(col, x.Data[i*inStride:(i+1)*inStride], d)
			gi := dout.Data[i*outStride : (i+1)*outStride]
			tensor.MatMulTransBAccSlice(sdw, gi, col, c.OutC, cols, colRows)
			tensor.MatMulTransASlice(dcol, c.weight.W.Data, gi, colRows, c.OutC, cols)
			tensor.Col2Im(dx.Data[i*inStride:(i+1)*inStride], dcol, d)
			if c.useBias {
				for oc := 0; oc < c.OutC; oc++ {
					var sum float64
					for _, v := range gi[oc*cols : (oc+1)*cols] {
						sum += float64(v)
					}
					sdb[oc] += sum
				}
			}
		}
		for i, v := range sdw {
			dw[i] += v
		}
		for oc, v := range sdb {
			db[oc] += float32(v)
		}
	}
	return dx, dw, db
}

// TestConv2DBatchFusedBitwise runs the batch-fused Forward/Backward over
// geometries with remainder GEMM rows and columns and checks every
// output, input gradient and parameter gradient bit against the
// per-image formulation it replaced.
func TestConv2DBatchFusedBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, tc := range []struct {
		name                          string
		n, inC, outC, h, w, k, st, pd int
		bias                          bool
	}{
		{"3x3pad1", 5, 3, 8, 9, 7, 3, 1, 1, true},
		{"stride2oddOutC", 4, 2, 17, 8, 8, 3, 2, 1, false},
		{"5x5", 3, 1, 16, 11, 5, 5, 1, 2, true},
		{"singleImage", 1, 4, 6, 6, 6, 3, 1, 1, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConv2D("c", tc.inC, tc.outC, tc.k, tc.st, tc.pd, tc.bias, rng)
			x := tensor.New(tc.n, tc.inC, tc.h, tc.w)
			x.Randn(rng, 1)
			wantOut := perImageConvForward(c, x)
			gotOut := c.Forward(x, true)
			compareBits(t, "forward", gotOut.Data, wantOut.Data)

			dout := tensor.New(gotOut.Shape()...)
			dout.Randn(rng, 1)
			wantDx, wantDw, wantDb := perImageConvBackward(c, x, dout)
			ZeroGrad(c.Params())
			gotDx := c.Backward(dout)
			compareBits(t, "dx", gotDx.Data, wantDx.Data)
			compareBits(t, "dW", c.weight.G.Data, wantDw)
			if tc.bias {
				compareBits(t, "db", c.bias.G.Data, wantDb)
			}

			// Mutating the weights must invalidate the packed panels: a
			// second Forward has to match a fresh reference of the new
			// weights, not replay the cached ones.
			c.weight.W.Set(c.weight.W.At(0, 0)+1, 0, 0)
			compareBits(t, "forward after weight mutation",
				c.Forward(x, true).Data, perImageConvForward(c, x).Data)
		})
	}
}

func compareBits(t *testing.T, what string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s[%d]: fused %08x (%v), per-image %08x (%v)",
				what, i, math.Float32bits(got[i]), got[i], math.Float32bits(want[i]), want[i])
		}
	}
}
