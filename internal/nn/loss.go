package nn

import (
	"fmt"
	"math"

	"spatl/internal/tensor"
)

// SoftmaxCrossEntropy computes mean softmax cross-entropy loss over a
// batch of logits (N,K) against integer labels, returning the loss and
// the gradient w.r.t. the logits (already divided by N).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: %d labels for batch of %d", len(labels), n))
	}
	grad := tensor.New(n, k)
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		// Stable log-softmax.
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		y := labels[i]
		if y < 0 || y >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, k))
		}
		loss += -(float64(row[y]-maxv) - logSum)
		g := grad.Data[i*k : (i+1)*k]
		for j, v := range row {
			p := math.Exp(float64(v-maxv)) / sum
			g[j] = float32(p / float64(n))
		}
		g[y] -= float32(1.0 / float64(n))
	}
	return loss / float64(n), grad
}

// Accuracy returns the fraction of rows whose arg-max logit matches the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Dim(0), logits.Dim(1)
	correct := 0
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		if bi == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
