package nn

import "spatl/internal/tensor"

// packCache caches one derived form of a weight tensor — a packed A·Bᵀ
// panel image or a transpose — so it is built once and reused across
// every image of every minibatch until the weights change. Validity is
// keyed on the weight tensor's mutation counter (tensor.Tensor.Version):
// optimizer steps and every other weight-writing path bump the counter
// (directly or via Param.Bump), which lazily invalidates all caches
// derived from that tensor.
//
// The buffer is owned by the layer, not the scratch pool, because it
// must survive across Forward/Backward calls. get is called from the
// serial prologue of a layer pass, never from inside a Parallel region,
// so no synchronization is needed; workers only read the returned slice.
type packCache struct {
	ver   uint64
	n     int
	valid bool
	buf   []float32
}

// get returns the cached derived form of w, refilling it with fill when
// the weight tensor has mutated (or the requested size changed) since
// the last call.
func (pc *packCache) get(w *tensor.Tensor, n int, fill func(dst []float32)) []float32 {
	v := w.Version()
	if pc.valid && pc.ver == v && pc.n == n {
		return pc.buf
	}
	if cap(pc.buf) < n {
		pc.buf = make([]float32, n)
	}
	pc.buf = pc.buf[:n]
	fill(pc.buf)
	pc.ver, pc.n, pc.valid = v, n, true
	return pc.buf
}

// Bump records an in-place mutation of the parameter's weights made by
// writing W.Data directly, so packed-panel caches derived from them
// refill on next use. Param structs returned by Params() share the
// underlying tensors, so bumping any alias invalidates everywhere.
func (p *Param) Bump() { p.W.MarkMutated() }
