package nn

import (
	"fmt"
	"math/rand"

	"spatl/internal/tensor"
)

// Linear is a fully connected layer computing y = x·Wᵀ + b for input
// (N, In) and weight (Out, In).
type Linear struct {
	name    string
	In, Out int
	weight  *Param
	bias    *Param
	x       *tensor.Tensor
	out, dx *tensor.Tensor // reused activation/gradient buffers
}

// NewLinear constructs a fully connected layer with He-normal weights and
// zero bias.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{name: name, In: in, Out: out}
	l.weight = newParam("weight", out, in)
	l.weight.W.KaimingNormal(rng, in)
	l.bias = newParam("bias", out)
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s expects (N,%d), got %v", l.name, l.In, x.Shape()))
	}
	out := tensor.Reuse(l.out, x.Dim(0), l.Out)
	l.out = out
	tensor.MatMulTransBInto(out, x, l.weight.W)
	n := x.Dim(0)
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.bias.W.Data[j]
		}
	}
	l.x = x
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	// dW += doutᵀ·x ; db += column sums of dout ; dx = dout·W
	dw := tensor.GetScratch(l.Out * l.In)
	tensor.MatMulTransAInto(tensor.FromSlice(dw, l.Out, l.In), dout, l.x)
	g := l.weight.G.Data
	for i, v := range dw {
		g[i] += v
	}
	tensor.PutScratch(dw)
	n := dout.Dim(0)
	for i := 0; i < n; i++ {
		row := dout.Data[i*l.Out : (i+1)*l.Out]
		for j, v := range row {
			l.bias.G.Data[j] += v
		}
	}
	dx := tensor.Reuse(l.dx, dout.Dim(0), l.In)
	l.dx = dx
	tensor.MatMulInto(dx, dout, l.weight.W)
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }

// FLOPs implements Layer: 2·In·Out multiply-adds plus Out bias adds.
func (l *Linear) FLOPs() int64 { return 2*int64(l.In)*int64(l.Out) + int64(l.Out) }

// Name implements Layer.
func (l *Linear) Name() string { return l.name }

// Weight exposes the weight parameter for pruning and inspection.
func (l *Linear) Weight() *Param { return l.weight }
