package nn

import (
	"fmt"
	"math/rand"

	"spatl/internal/tensor"
)

// Linear is a fully connected layer computing y = x·Wᵀ + b for input
// (N, In) and weight (Out, In).
type Linear struct {
	name    string
	In, Out int
	weight  *Param
	bias    *Param
	x       *tensor.Tensor
	out, dx *tensor.Tensor // reused activation/gradient buffers

	// Version-keyed packed panels of W (forward x·Wᵀ) and Wᵀ (backward
	// dx = dout·W), rebuilt only when the weights change.
	wpack, wtpack packCache
	// sparsity caches the mask-static sparse decision and nonzero pattern
	// under the same version key: masked weights (algo.SSFL) route both
	// GEMMs through gather-dot kernels that sum only the surviving terms.
	sparsity sparseCache
}

// NewLinear constructs a fully connected layer with He-normal weights and
// zero bias.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	l := &Linear{name: name, In: in, Out: out}
	l.weight = newParam("weight", out, in)
	l.weight.W.KaimingNormal(rng, in)
	l.bias = newParam("bias", out)
	return l
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: %s expects (N,%d), got %v", l.name, l.In, x.Shape()))
	}
	out := tensor.Reuse(l.out, x.Dim(0), l.Out)
	l.out = out
	n := x.Dim(0)
	if sparse, pat := l.sparsity.probe(l.weight.W, l.Out, l.In); sparse && pat != nil {
		// Mask-static sparse weights: gather-dot over each output row's
		// precomputed nonzero positions — no packing, no zero terms.
		tensor.Parallel(n, func(lo, hi int) {
			tensor.MatMulTransBMaskPatSlice(out.Data[lo*l.Out:], x.Data[lo*l.In:], l.weight.W.Data, pat, hi-lo)
		})
		for i := 0; i < n; i++ {
			tensor.VecAdd(out.Data[i*l.Out:(i+1)*l.Out], l.bias.W.Data)
		}
		l.x = x
		return out
	}
	wp := l.wpack.get(l.weight.W, l.Out*l.In, func(dst []float32) {
		tensor.PackTransB(dst, l.weight.W.Data, l.Out, l.In)
	})
	tensor.MatMulTransBPackedParallel(out.Data, x.Data, wp, n, l.In, l.Out)
	for i := 0; i < n; i++ {
		tensor.VecAdd(out.Data[i*l.Out:(i+1)*l.Out], l.bias.W.Data)
	}
	l.x = x
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(dout *tensor.Tensor) *tensor.Tensor {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	// dW += doutᵀ·x ; db += column sums of dout ; dx = dout·W
	dw := tensor.GetScratch(l.Out * l.In)
	tensor.MatMulTransAInto(tensor.FromSlice(dw, l.Out, l.In), dout, l.x)
	tensor.VecAdd(l.weight.G.Data, dw)
	tensor.PutScratch(dw)
	n := dout.Dim(0)
	for i := 0; i < n; i++ {
		tensor.VecAdd(l.bias.G.Data, dout.Data[i*l.Out:(i+1)*l.Out])
	}
	dx := tensor.Reuse(l.dx, dout.Dim(0), l.In)
	l.dx = dx
	if sparse, pat := l.sparsity.probe(l.weight.W, l.Out, l.In); sparse && pat != nil {
		// Mask-static sparse weights: dx = dout·W as gather-dots over each
		// input column's precomputed nonzero rows.
		tensor.Parallel(n, func(lo, hi int) {
			tensor.MatMulMaskPatRightSlice(dx.Data[lo*l.In:], dout.Data[lo*l.Out:], l.weight.W.Data, pat, hi-lo)
		})
		return dx
	}
	if tensor.IsSparse(dout.Data) {
		// Mirror MatMulInto's sparse-aware dispatch for mostly-zero
		// gradients; the zero-skipping kernel reads raw W rows.
		tensor.MatMulInto(dx, dout, l.weight.W)
		return dx
	}
	wt := l.wtpack.get(l.weight.W, l.In*l.Out, func(dst []float32) {
		tmp := tensor.GetScratch(l.In * l.Out)
		tensor.TransposeSlice(tmp, l.weight.W.Data, l.Out, l.In)
		tensor.PackTransB(dst, tmp, l.In, l.Out)
		tensor.PutScratch(tmp)
	})
	tensor.MatMulTransBPackedParallel(dx.Data, dout.Data, wt, n, l.Out, l.In)
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.weight, l.bias} }

// FLOPs implements Layer: 2·In·Out multiply-adds plus Out bias adds.
func (l *Linear) FLOPs() int64 { return 2*int64(l.In)*int64(l.Out) + int64(l.Out) }

// Name implements Layer.
func (l *Linear) Name() string { return l.name }

// Weight exposes the weight parameter for pruning and inspection.
func (l *Linear) Weight() *Param { return l.weight }
