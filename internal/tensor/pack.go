package tensor

// Packed-operand support for the A·Bᵀ kernel. The AVX2 tile consumes B
// in element-interleaved 16-row panels (bp[p*16+j] = B[j][p]); packing is
// O(n·k) work the plain entry points repeat on every call. PackTransB
// materializes that layout once so callers with a stable B — layer
// weights reused across a whole minibatch and across batches until the
// optimizer steps — can amortize the packing through a cache (see
// internal/nn's panel cache keyed on the Param generation counter).
//
// The packed buffer is exactly n·k floats: full 16-row groups in
// interleaved panel order, then any remainder rows in their original
// row-major layout (so absolute row indexing still works for the scalar
// remainder kernel). On CPUs without AVX2 — or shapes the vector kernel
// rejects — the "packed" layout is defined as a plain row-major copy and
// the packed multiply runs the scalar panel kernel over it, keeping the
// format an internal detail of this file.

// packedTransBWants reports whether the interleaved panel layout is in
// effect for a B of n rows × k columns. Must agree with the dispatch in
// MatMulTransBPackedRows.
func packedTransBWants(n, k int) bool {
	return useAVX2 && n >= 16 && k >= 4
}

// PackedTransBWants reports whether packing B (n rows × k cols) engages
// the vector panel kernel. Callers that can choose which operand plays B
// (e.g. the convolution lowering, where out = patches·Wᵀ and
// outᵀ = W·patchesᵀ are bitwise-interchangeable) use this to avoid
// electing a B too narrow for the 16-row tile, which would demote the
// whole product to the scalar kernel.
func PackedTransBWants(n, k int) bool { return packedTransBWants(n, k) }

// PackTransB writes the packed form of B (n rows × k cols, row-major)
// into dst, which must hold at least n*k floats.
func PackTransB(dst, b []float32, n, k int) {
	if !packedTransBWants(n, k) {
		copy(dst[:n*k], b[:n*k])
		return
	}
	jj := 0
	for ; jj+16 <= n; jj += 16 {
		seg := dst[jj*k : jj*k+16*k]
		for j := 0; j < 16; j++ {
			row := b[(jj+j)*k : (jj+j)*k+k]
			for p, v := range row {
				seg[p*16+j] = v
			}
		}
	}
	if jj < n {
		copy(dst[jj*k:n*k], b[jj*k:n*k])
	}
}

// MatMulTransBPackedSlice computes C = A·Bᵀ (C += A·Bᵀ when acc) where bp
// is the PackTransB image of B (n rows × k cols). A is (m,k) row-major,
// C is (m,n). Bitwise identical to MatMulTransBSlice on the unpacked B:
// every output element is one ascending-k dot-product chain with separate
// multiply and add.
func MatMulTransBPackedSlice(c, a, bp []float32, m, k, n int, acc bool) {
	matmulTransBPackedRows(c, a, bp, 0, m, k, n, acc)
}

// MatMulTransBPackedParallel computes C = A·Bᵀ from the packed image of
// B, sharding output rows across the worker pool like MatMulTransBInto.
// Row sharding never splits a dot-product chain, so the shard count does
// not affect results.
func MatMulTransBPackedParallel(c, a, bp []float32, m, k, n int) {
	if m*n >= parallelThreshold && m > 1 {
		Parallel(m, func(lo, hi int) {
			matmulTransBPackedRows(c, a, bp, lo, hi, k, n, false)
		})
		return
	}
	matmulTransBPackedRows(c, a, bp, 0, m, k, n, false)
}

// matmulTransBPackedRows is the row-window core behind the packed entry
// point, usable inside Parallel row shards.
func matmulTransBPackedRows(c, a, bp []float32, lo, hi, k, n int, acc bool) {
	if !packedTransBWants(n, k) {
		matmulTransBRowsScalar(c, a, bp, lo, hi, k, n, acc)
		return
	}
	var out [64]float32
	jj := 0
	for ; jj+16 <= n; jj += 16 {
		seg := bp[jj*k : jj*k+16*k]
		i := lo
		for ; i+4 <= hi; i += 4 {
			avx2DotPanel4x16(&a[i*k], k, &seg[0], k, &out[0])
			for r := 0; r < 4; r++ {
				crow := c[(i+r)*n+jj : (i+r)*n+jj+16]
				or := out[r*16 : r*16+16]
				if acc {
					for j2, v := range or {
						crow[j2] += v
					}
				} else {
					copy(crow, or)
				}
			}
		}
		if i < hi {
			packedPanelScalar(c, a, seg, i, hi, jj, k, n, acc)
		}
	}
	if jj < n {
		// Remainder rows sit row-major at their original offsets, so the
		// plain scalar panel kernel applies unchanged.
		matmulTransBRowsPanel(c, a, bp, lo, hi, jj, n, k, n, acc)
	}
}

// packedPanelScalar handles remainder A rows against one interleaved
// 16-row panel: the dot product reads bp with stride 16 but still runs in
// ascending-k order, so it matches the vector tile bit for bit.
func packedPanelScalar(c, a, seg []float32, lo, hi, jj, k, n int, acc bool) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n+jj : i*n+jj+16]
		for j := 0; j < 16; j++ {
			var s float32
			for p, av := range ai {
				s += av * seg[p*16+j]
			}
			if acc {
				ci[j] += s
			} else {
				ci[j] = s
			}
		}
	}
}
