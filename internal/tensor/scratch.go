package tensor

import (
	"math/bits"
	"sync"
)

// Scratch buffers serve the transient slices the training hot path needs
// thousands of times per round (im2col columns, gradient panels, partial
// weight gradients). Buffers are recycled through power-of-two size
// classes backed by sync.Pool, so steady-state training does near-zero
// transient allocation while idle memory remains reclaimable by the GC.
//
// Ownership rules: a buffer obtained from GetScratch is exclusively owned
// by the caller until PutScratch; it must not be retained, aliased, or
// returned to user code afterwards. Buffers may be held across function
// calls within one logical operation (e.g. for the duration of a
// convolution backward pass) but never across Forward/Backward boundaries
// — anything cached between passes belongs to the layer, not the pool.
// GetScratch contents are unspecified; callers that accumulate must zero
// first.

// scratchMinBits is the smallest pooled size class (64 floats); tinier
// requests are allocated directly, they are too cheap to track.
const scratchMinBits = 6

// scratchPools[c] holds released buffers with floor(log2(cap)) == c, so
// every buffer in class c has cap ≥ 2^c. GetScratch(n) draws from class
// ceil(log2(n)), guaranteeing cap ≥ n for any hit.
var scratchPools [32]sync.Pool

// headerPool recycles the slice headers threaded through scratchPools so
// that a steady-state Get/Put cycle allocates nothing at all.
var headerPool = sync.Pool{New: func() any { return new([]float32) }}

// GetScratch returns a float32 buffer of length n with unspecified
// contents, drawn from the scratch pool when possible. Pair every call
// with PutScratch.
func GetScratch(n int) []float32 {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n))
	if c < scratchMinBits {
		c = scratchMinBits
	}
	if c >= len(scratchPools) {
		return make([]float32, n)
	}
	if h, _ := scratchPools[c].Get().(*[]float32); h != nil {
		s := (*h)[:n]
		*h = nil
		headerPool.Put(h)
		return s
	}
	return make([]float32, n, 1<<c)
}

// PutScratch returns a buffer obtained from GetScratch (or any float32
// slice the caller owns outright) to the pool. The caller must not touch
// the slice afterwards.
func PutScratch(s []float32) {
	cp := cap(s)
	if cp < 1<<scratchMinBits {
		return
	}
	c := bits.Len(uint(cp)) - 1 // floor(log2(cap))
	if c >= len(scratchPools) {
		return
	}
	h := headerPool.Get().(*[]float32)
	*h = s[:cp]
	scratchPools[c].Put(h)
}

// Float64 scratch: the same size-classed pools for the double-precision
// accumulators of the server reductions (WeightedAverage). Contents are
// unspecified — reductions that start from zero must clear the buffer,
// which also keeps them bitwise identical to a freshly allocated one
// (no stale -0 or NaN can leak into an accumulation chain).

var scratchPoolsF64 [32]sync.Pool

var headerPoolF64 = sync.Pool{New: func() any { return new([]float64) }}

// GetScratchF64 returns a float64 buffer of length n with unspecified
// contents. Pair every call with PutScratchF64.
func GetScratchF64(n int) []float64 {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1))
	if c < scratchMinBits {
		c = scratchMinBits
	}
	if c >= len(scratchPoolsF64) {
		return make([]float64, n)
	}
	if h, _ := scratchPoolsF64[c].Get().(*[]float64); h != nil {
		s := (*h)[:n]
		*h = nil
		headerPoolF64.Put(h)
		return s
	}
	return make([]float64, n, 1<<c)
}

// PutScratchF64 returns a buffer obtained from GetScratchF64 to the pool.
func PutScratchF64(s []float64) {
	cp := cap(s)
	if cp < 1<<scratchMinBits {
		return
	}
	c := bits.Len(uint(cp)) - 1
	if c >= len(scratchPoolsF64) {
		return
	}
	h := headerPoolF64.Get().(*[]float64)
	*h = s[:cp]
	scratchPoolsF64[c].Put(h)
}
