package tensor

// Assembly bodies for the vec kernels (vec_amd64.s). Each processes a
// prefix whose length is a multiple of the vector width (8 for float32
// kernels, 4 for float64-compute kernels); callers in vec.go handle the
// scalar tail. All bodies use separate multiply and add instructions —
// never FMA — and per-element operation order identical to the scalar
// loops, so outputs are bitwise equal to the Ref* kernels.

//go:noescape
func vecAxpyAsm(y, x *float32, n int, a float32)

//go:noescape
func vecScaleAsm(x *float32, n int, a float32)

//go:noescape
func vecAddAsm(dst, src *float32, n int)

//go:noescape
func vecSubAsm(dst, src *float32, n int)

//go:noescape
func vecBiasAddAsm(dst *float32, n int, b float32)

//go:noescape
func vecCopyBiasAsm(dst, src *float32, n int, b float32)

//go:noescape
func vecReLUAsm(out, x *float32, n int)

//go:noescape
func vecReLUBwdAsm(dx, dout, x *float32, n int)

//go:noescape
func vecSGDAsm(w, gv *float32, n int, lr, wd float32)

//go:noescape
func vecSGDMomAsm(w, v, gv *float32, n int, lr, wd, mu float32)

//go:noescape
func vecAddDiffAsm(dst, a, b *float32, n int)

//go:noescape
func vecAxpyDiffAsm(dst, a, b *float32, n int, m float32)

//go:noescape
func vecAccumScaledAsm(acc *float64, v *float32, n int, w float64)

//go:noescape
func vecF64ToF32Asm(dst *float32, src *float64, n int)

//go:noescape
func vecBNTrainAsm(out, xhat, x *float32, n int, mean, inv, gv, b float64)

//go:noescape
func vecBNEvalAsm(out, x *float32, n int, mean, inv, gv, b float64)

//go:noescape
func vecBNBwdAsm(dx, dout, xhat *float32, n int, scale, cnt, dbeta, dgamma float64)
