package tensor

// AVX2 acceleration for the dense A·Bᵀ panel kernel. The vector path
// computes every output element as the same single ascending-k dot-product
// chain as the scalar kernel (multiply then add, no FMA contraction), so
// the two paths are bitwise interchangeable; which one runs is purely a
// performance decision made at startup from CPUID.

func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

//go:noescape
func avx2DotPanel4x16(a *float32, lda int, bp *float32, k int, out *float32)

// useAVX2 reports whether the CPU and OS support AVX2 with YMM state
// saving (CPUID leaf 7 AVX2, plus OSXSAVE and XCR0 XMM|YMM bits).
var useAVX2 = func() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	if xcr0&6 != 6 {
		return false
	}
	_, b, _, _ := cpuidAsm(7, 0)
	return b&(1<<5) != 0
}()

// matmulTransBRowsAVX2 computes rows [lo,hi) of C = A·Bᵀ (C += A·Bᵀ when
// acc) using the AVX2 tile kernel. B columns are consumed in groups of 16:
// the group is packed element-interleaved (bp[p*16+j] = B[j][p]) so the
// kernel streams two contiguous 8-float loads per k step, then 4-row tiles
// of A are reduced against the packed panel. Row and column remainders fall
// back to the scalar panel kernel, which produces bitwise-identical values.
func matmulTransBRowsAVX2(c, a, b []float32, lo, hi, k, n int, acc bool) {
	bp := GetScratch(16 * k)
	var out [64]float32
	jj := 0
	for ; jj+16 <= n; jj += 16 {
		for j := 0; j < 16; j++ {
			row := b[(jj+j)*k : (jj+j)*k+k]
			for p, v := range row {
				bp[p*16+j] = v
			}
		}
		i := lo
		for ; i+4 <= hi; i += 4 {
			avx2DotPanel4x16(&a[i*k], k, &bp[0], k, &out[0])
			for r := 0; r < 4; r++ {
				crow := c[(i+r)*n+jj : (i+r)*n+jj+16]
				or := out[r*16 : r*16+16]
				if acc {
					for j2, v := range or {
						crow[j2] += v
					}
				} else {
					copy(crow, or)
				}
			}
		}
		if i < hi {
			matmulTransBRowsPanel(c, a, b, i, hi, jj, jj+16, k, n, acc)
		}
	}
	if jj < n {
		matmulTransBRowsPanel(c, a, b, lo, hi, jj, n, k, n, acc)
	}
	PutScratch(bp)
}
