//go:build !amd64

package tensor

// Non-amd64 builds run the scalar loops in vec.go unconditionally:
// useAVX2 is the constant false, so these stubs are unreachable and
// exist only to satisfy the type checker.

func vecAxpyAsm(y, x *float32, n int, a float32)         { panic("tensor: no vector kernel") }
func vecScaleAsm(x *float32, n int, a float32)           { panic("tensor: no vector kernel") }
func vecAddAsm(dst, src *float32, n int)                 { panic("tensor: no vector kernel") }
func vecSubAsm(dst, src *float32, n int)                 { panic("tensor: no vector kernel") }
func vecBiasAddAsm(dst *float32, n int, b float32)       { panic("tensor: no vector kernel") }
func vecCopyBiasAsm(dst, src *float32, n int, b float32) { panic("tensor: no vector kernel") }
func vecReLUAsm(out, x *float32, n int)                  { panic("tensor: no vector kernel") }
func vecReLUBwdAsm(dx, dout, x *float32, n int)          { panic("tensor: no vector kernel") }
func vecSGDAsm(w, gv *float32, n int, lr, wd float32)    { panic("tensor: no vector kernel") }
func vecSGDMomAsm(w, v, gv *float32, n int, lr, wd, mu float32) {
	panic("tensor: no vector kernel")
}
func vecAddDiffAsm(dst, a, b *float32, n int)             { panic("tensor: no vector kernel") }
func vecAxpyDiffAsm(dst, a, b *float32, n int, m float32) { panic("tensor: no vector kernel") }
func vecAccumScaledAsm(acc *float64, v *float32, n int, w float64) {
	panic("tensor: no vector kernel")
}
func vecF64ToF32Asm(dst *float32, src *float64, n int) { panic("tensor: no vector kernel") }
func vecBNTrainAsm(out, xhat, x *float32, n int, mean, inv, gv, b float64) {
	panic("tensor: no vector kernel")
}
func vecBNEvalAsm(out, x *float32, n int, mean, inv, gv, b float64) {
	panic("tensor: no vector kernel")
}
func vecBNBwdAsm(dx, dout, xhat *float32, n int, scale, cnt, dbeta, dgamma float64) {
	panic("tensor: no vector kernel")
}
