package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestPackedTransBMatchesScalar verifies PackTransB + MatMulTransBPackedSlice
// against the scalar A·Bᵀ kernel on the raw operand, bitwise, over shapes
// with remainder rows (m not a multiple of 4) and remainder columns (n not
// a multiple of 16), in both overwrite and accumulate modes.
func TestPackedTransBMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 13, 64, 100} {
		for _, k := range []int{1, 3, 4, 9, 27, 144} {
			for _, n := range []int{1, 2, 8, 15, 16, 17, 32, 33, 64} {
				a := make([]float32, m*k)
				b := make([]float32, n*k)
				for i := range a {
					a[i] = float32(rng.NormFloat64())
				}
				for i := range b {
					b[i] = float32(rng.NormFloat64())
				}
				bp := make([]float32, n*k)
				PackTransB(bp, b, n, k)
				for _, acc := range []bool{false, true} {
					want := make([]float32, m*n)
					got := make([]float32, m*n)
					if acc {
						for i := range want {
							v := float32(rng.NormFloat64())
							want[i], got[i] = v, v
						}
					}
					matmulTransBRowsScalar(want, a, b, 0, m, k, n, acc)
					MatMulTransBPackedSlice(got, a, bp, m, k, n, acc)
					for i := range want {
						if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
							t.Fatalf("m=%d k=%d n=%d acc=%v: C[%d] packed %x scalar %x",
								m, k, n, acc, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
						}
					}
				}
			}
		}
	}
}

// TestCol2ImLDMatchesCol2Im embeds a (colRows, cols) gradient matrix in a
// wider (colRows, ld) buffer and checks the strided scatter reproduces the
// contiguous one bit for bit, for stride-1 and strided/padded geometries.
func TestCol2ImLDMatchesCol2Im(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	geoms := []ConvDims{
		NewConvDims(3, 9, 7, 4, 3, 1, 1),
		NewConvDims(2, 8, 8, 3, 3, 2, 1),
		NewConvDims(1, 11, 5, 2, 5, 1, 2),
	}
	for _, d := range geoms {
		colRows := d.InC * d.K * d.K
		cols := d.OutH * d.OutW
		ld := cols*3 + 5
		wide := make([]float32, colRows*ld)
		for i := range wide {
			wide[i] = float32(rng.NormFloat64())
		}
		narrow := make([]float32, colRows*cols)
		off := cols + 2 // image slice starts mid-buffer
		for r := 0; r < colRows; r++ {
			copy(narrow[r*cols:(r+1)*cols], wide[r*ld+off:r*ld+off+cols])
		}
		want := make([]float32, d.InC*d.H*d.W)
		got := make([]float32, d.InC*d.H*d.W)
		Col2Im(want, narrow, d)
		Col2ImLD(got, wide[off:], d, ld)
		for i := range want {
			if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
				t.Fatalf("geom %+v: dx[%d] ld %x contiguous %x", d, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
}
