package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// randMasked builds an (m,k) matrix with roughly the given zero fraction,
// including negative zeros (which compare equal to zero, so both the
// probing kernels and the pattern build must treat them as zeros).
func randMasked(rng *rand.Rand, m, k int, zeroFrac float64) []float32 {
	a := make([]float32, m*k)
	for i := range a {
		switch {
		case rng.Float64() < zeroFrac:
			if rng.Intn(8) == 0 {
				a[i] = float32(math.Copysign(0, -1))
			}
		default:
			a[i] = float32(rng.NormFloat64())
		}
	}
	return a
}

func bitsEqualF32(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: index %d differs: %v (%#x) vs %v (%#x)",
				name, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
		}
	}
}

// maskShapes covers tiny, tall, wide and VecAxpy-tail shapes.
var maskShapes = []struct{ m, k, n int }{
	{1, 1, 1}, {3, 5, 7}, {8, 16, 33}, {16, 144, 64}, {5, 7, 100}, {32, 27, 256},
}

// TestMaskPatMatchesProbeKernels: the pattern kernels must be bitwise
// identical to the probing sparse kernels they replace, at every zero
// fraction including fully dense and fully zero.
func TestMaskPatMatchesProbeKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range maskShapes {
		for _, zf := range []float64{0, 0.3, 0.6, 0.95, 1} {
			w := randMasked(rng, sh.m, sh.k, zf)
			pat := BuildMaskPat(w, sh.m, sh.k)

			b := randMasked(rng, sh.k, sh.n, 0.1)
			want := make([]float32, sh.m*sh.n)
			MatMulSparseSlice(want, w, b, sh.m, sh.k, sh.n)
			got := make([]float32, sh.m*sh.n)
			MatMulMaskPatSlice(got, w, b, pat, sh.n)
			bitsEqualF32(t, "MatMulMaskPatSlice", got, want)

			bt := randMasked(rng, sh.m, sh.n, 0.1)
			wantT := make([]float32, sh.k*sh.n)
			MatMulTransASparseSlice(wantT, w, bt, sh.k, sh.m, sh.n)
			gotT := make([]float32, sh.k*sh.n)
			MatMulTransAMaskPatSlice(gotT, w, bt, pat, sh.n)
			bitsEqualF32(t, "MatMulTransAMaskPatSlice", gotT, wantT)
		}
	}
}

// refTransBSkipZero is the retained scalar reference for the gather-dot
// A·Wᵀ kernel: an ascending-p dot product summing exactly the terms
// where W's element is nonzero.
func refTransBSkipZero(c, a, w []float32, m, outs, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < outs; j++ {
			var s float32
			for p := 0; p < k; p++ {
				if w[j*k+p] != 0 {
					s += a[i*k+p] * w[j*k+p]
				}
			}
			c[i*outs+j] = s
		}
	}
}

// refRightSkipZero is the retained scalar reference for the gather-dot
// A·W kernel: ascending-row dot products over W's nonzero column
// entries.
func refRightSkipZero(c, a, w []float32, m, ins, k int) {
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			var s float32
			for p := 0; p < ins; p++ {
				if w[p*k+j] != 0 {
					s += a[i*ins+p] * w[p*k+j]
				}
			}
			c[i*k+j] = s
		}
	}
}

// TestMaskPatGatherDotMatchesRef covers the linear-layer kernels against
// their scalar skip-zero references.
func TestMaskPatGatherDotMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sh := range maskShapes {
		for _, zf := range []float64{0, 0.5, 0.9, 1} {
			w := randMasked(rng, sh.m, sh.k, zf)
			pat := BuildMaskPat(w, sh.m, sh.k)
			batch := sh.n

			a := randMasked(rng, batch, sh.k, 0)
			want := make([]float32, batch*sh.m)
			refTransBSkipZero(want, a, w, batch, sh.m, sh.k)
			got := make([]float32, batch*sh.m)
			MatMulTransBMaskPatSlice(got, a, w, pat, batch)
			bitsEqualF32(t, "MatMulTransBMaskPatSlice", got, want)

			ar := randMasked(rng, batch, sh.m, 0)
			wantR := make([]float32, batch*sh.k)
			refRightSkipZero(wantR, ar, w, batch, sh.m, sh.k)
			gotR := make([]float32, batch*sh.k)
			MatMulMaskPatRightSlice(gotR, ar, w, pat, batch)
			bitsEqualF32(t, "MatMulMaskPatRightSlice", gotR, wantR)
		}
	}
}

// TestBuildMaskPatInto verifies pattern reuse: a second build into the
// same pattern must not reallocate when the shape and density shrink.
func TestBuildMaskPatInto(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	w := randMasked(rng, 16, 32, 0.5)
	pat := BuildMaskPat(w, 16, 32)
	if pat.NNZ() == 0 || !pat.Matches(16, 32) {
		t.Fatalf("unexpected pattern: nnz=%d", pat.NNZ())
	}
	rowIdx0 := &pat.rowIdx[0]
	w2 := randMasked(rng, 16, 32, 0.8)
	pat2 := BuildMaskPatInto(pat, w2, 16, 32)
	if pat2 != pat {
		t.Fatal("BuildMaskPatInto did not return the reused pattern")
	}
	if pat.NNZ() > 0 && &pat.rowIdx[0] != rowIdx0 {
		t.Fatal("BuildMaskPatInto reallocated a sufficient index buffer")
	}
	// Pattern correctness after reuse: every recorded row index is a
	// nonzero, and counts agree with a direct scan.
	nnz := 0
	for i, v := range w2 {
		if v != 0 {
			nnz++
		}
		_ = i
	}
	if pat.NNZ() != nnz {
		t.Fatalf("reused pattern records %d nonzeros, scan found %d", pat.NNZ(), nnz)
	}
	for i := 0; i < 16; i++ {
		for _, p := range pat.rowIdx[pat.rowOff[i]:pat.rowOff[i+1]] {
			if w2[i*32+int(p)] == 0 {
				t.Fatalf("pattern row %d records zero element %d", i, p)
			}
		}
	}
}
