package tensor

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// vecTestLens covers short slices (pure scalar), exact multiples of the
// vector widths, and awkward tails around them.
var vecTestLens = []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 63, 64, 65, 100, 255, 256, 257, 1000, 1023}

// fillSpecial fills s with random normals and sprinkles in the IEEE
// corner cases the kernels must handle bit-exactly: NaN, ±0, ±Inf,
// denormals, and values large enough to overflow under multiplication.
func fillSpecial(rng *rand.Rand, s []float32) {
	specials := []float32{
		float32(math.NaN()),
		float32(math.Copysign(0, -1)),
		0,
		float32(math.Inf(1)),
		float32(math.Inf(-1)),
		math.Float32frombits(1),          // smallest denormal
		math.Float32frombits(0x007fffff), // largest denormal
		math.MaxFloat32,
		-math.MaxFloat32,
		math.SmallestNonzeroFloat32,
	}
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	for i := 0; i < len(s); i += 5 {
		s[i] = specials[rng.Intn(len(specials))]
	}
}

func fillSpecial64(rng *rand.Rand, s []float64) {
	specials := []float64{math.NaN(), math.Copysign(0, -1), 0, math.Inf(1), math.Inf(-1), 5e-324, math.MaxFloat64, 1e300, -1e-310}
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	for i := 0; i < len(s); i += 5 {
		s[i] = specials[rng.Intn(len(specials))]
	}
}

func cloneF32(s []float32) []float32 { return append([]float32(nil), s...) }
func cloneF64(s []float64) []float64 { return append([]float64(nil), s...) }

// eqBitsF32 demands exact bit equality, except that any NaN matches any
// NaN: when both operands of a commutative add are NaN, x86 propagates
// the payload of whichever source the compiler scheduled first, so NaN
// payloads are not specified even between two scalar Go builds. NaN-ness
// itself is IEEE-determined and is still asserted.
func eqBitsF32(t *testing.T, kernel string, n int, got, want []float32) {
	t.Helper()
	for i := range want {
		g, w := got[i], want[i]
		if math.Float32bits(g) != math.Float32bits(w) && !(g != g && w != w) {
			t.Fatalf("%s n=%d: [%d] vec %x ref %x", kernel, n, i, math.Float32bits(g), math.Float32bits(w))
		}
	}
}

func eqBitsF64(t *testing.T, kernel string, n int, got, want []float64) {
	t.Helper()
	for i := range want {
		g, w := got[i], want[i]
		if math.Float64bits(g) != math.Float64bits(w) && !(g != g && w != w) {
			t.Fatalf("%s n=%d: [%d] vec %x ref %x", kernel, n, i, math.Float64bits(g), math.Float64bits(w))
		}
	}
}

// TestVecKernelsMatchRef drives every vec kernel against its Ref* scalar
// ground truth over awkward lengths and IEEE corner-case inputs, and
// demands bitwise-identical results. On machines without AVX2 the vec
// path is the scalar loop and the test degenerates to a self-check.
func TestVecKernelsMatchRef(t *testing.T) {
	if !useAVX2 {
		t.Log("AVX2 unavailable; vec kernels alias scalar loops")
	}
	rng := rand.New(rand.NewSource(21))
	for _, n := range vecTestLens {
		x := make([]float32, n)
		y := make([]float32, n)
		z := make([]float32, n)
		fillSpecial(rng, x)
		fillSpecial(rng, y)
		fillSpecial(rng, z)
		a := float32(rng.NormFloat64())

		{ // VecAxpy
			got, want := cloneF32(y), cloneF32(y)
			VecAxpy(got, x, a)
			RefVecAxpy(want, x, a)
			eqBitsF32(t, "VecAxpy", n, got, want)
		}
		{ // VecScale
			got, want := cloneF32(x), cloneF32(x)
			VecScale(got, a)
			RefVecScale(want, a)
			eqBitsF32(t, "VecScale", n, got, want)
		}
		{ // VecAdd
			got, want := cloneF32(y), cloneF32(y)
			VecAdd(got, x)
			RefVecAdd(want, x)
			eqBitsF32(t, "VecAdd", n, got, want)
		}
		{ // VecSub
			got, want := cloneF32(y), cloneF32(y)
			VecSub(got, x)
			RefVecSub(want, x)
			eqBitsF32(t, "VecSub", n, got, want)
		}
		{ // VecBiasAdd
			got, want := cloneF32(y), cloneF32(y)
			VecBiasAdd(got, a)
			RefVecBiasAdd(want, a)
			eqBitsF32(t, "VecBiasAdd", n, got, want)
		}
		{ // VecCopyBias
			got, want := make([]float32, n), make([]float32, n)
			VecCopyBias(got, x, a)
			RefVecCopyBias(want, x, a)
			eqBitsF32(t, "VecCopyBias", n, got, want)
		}
		{ // VecReLU
			got, want := make([]float32, n), make([]float32, n)
			VecReLU(got, x)
			RefVecReLU(want, x)
			eqBitsF32(t, "VecReLU", n, got, want)
		}
		{ // VecReLUBwd
			got, want := make([]float32, n), make([]float32, n)
			VecReLUBwd(got, y, x)
			RefVecReLUBwd(want, y, x)
			eqBitsF32(t, "VecReLUBwd", n, got, want)
		}
		{ // VecSGDStep
			gotW, wantW := cloneF32(y), cloneF32(y)
			VecSGDStep(gotW, x, 0.1, 5e-4)
			RefVecSGDStep(wantW, x, 0.1, 5e-4)
			eqBitsF32(t, "VecSGDStep", n, gotW, wantW)
		}
		{ // VecSGDMomStep
			gotW, wantW := cloneF32(y), cloneF32(y)
			gotV, wantV := cloneF32(z), cloneF32(z)
			VecSGDMomStep(gotW, gotV, x, 0.1, 5e-4, 0.9)
			RefVecSGDMomStep(wantW, wantV, x, 0.1, 5e-4, 0.9)
			eqBitsF32(t, "VecSGDMomStep.w", n, gotW, wantW)
			eqBitsF32(t, "VecSGDMomStep.v", n, gotV, wantV)
		}
		{ // VecAddDiff
			got, want := cloneF32(z), cloneF32(z)
			VecAddDiff(got, x, y)
			RefVecAddDiff(want, x, y)
			eqBitsF32(t, "VecAddDiff", n, got, want)
		}
		{ // VecAxpyDiff
			got, want := cloneF32(z), cloneF32(z)
			VecAxpyDiff(got, x, y, a)
			RefVecAxpyDiff(want, x, y, a)
			eqBitsF32(t, "VecAxpyDiff", n, got, want)
		}
		{ // VecAccumScaled
			acc := make([]float64, n)
			fillSpecial64(rng, acc)
			got, want := cloneF64(acc), cloneF64(acc)
			w := rng.NormFloat64()
			VecAccumScaled(got, x, w)
			RefVecAccumScaled(want, x, w)
			eqBitsF64(t, "VecAccumScaled", n, got, want)
		}
		{ // VecF64ToF32
			src := make([]float64, n)
			fillSpecial64(rng, src)
			got, want := make([]float32, n), make([]float32, n)
			VecF64ToF32(got, src)
			RefVecF64ToF32(want, src)
			eqBitsF32(t, "VecF64ToF32", n, got, want)
		}
		{ // VecBNTrain
			mean, inv := rng.NormFloat64(), math.Abs(rng.NormFloat64())+0.1
			g, b := rng.NormFloat64(), rng.NormFloat64()
			gotO, wantO := make([]float32, n), make([]float32, n)
			gotH, wantH := make([]float32, n), make([]float32, n)
			VecBNTrain(gotO, gotH, x, mean, inv, g, b)
			RefVecBNTrain(wantO, wantH, x, mean, inv, g, b)
			eqBitsF32(t, "VecBNTrain.out", n, gotO, wantO)
			eqBitsF32(t, "VecBNTrain.xhat", n, gotH, wantH)
		}
		{ // VecBNEval
			mean, inv := rng.NormFloat64(), math.Abs(rng.NormFloat64())+0.1
			g, b := rng.NormFloat64(), rng.NormFloat64()
			got, want := make([]float32, n), make([]float32, n)
			VecBNEval(got, x, mean, inv, g, b)
			RefVecBNEval(want, x, mean, inv, g, b)
			eqBitsF32(t, "VecBNEval", n, got, want)
		}
		{ // VecBNBwd
			scale, cnt := rng.NormFloat64(), float64(n)
			dbeta, dgamma := rng.NormFloat64(), rng.NormFloat64()
			got, want := make([]float32, n), make([]float32, n)
			VecBNBwd(got, y, x, scale, cnt, dbeta, dgamma)
			RefVecBNBwd(want, y, x, scale, cnt, dbeta, dgamma)
			eqBitsF32(t, "VecBNBwd", n, got, want)
		}
	}
}

// TestVecKernelsRaceHammer runs the vec kernels concurrently over
// disjoint windows of shared backing arrays, the way layer code and the
// worker pool use them. Run with -race; correctness of the partitioned
// results is also checked against a serial pass.
func TestVecKernelsRaceHammer(t *testing.T) {
	const total, parts = 4096, 8
	rng := rand.New(rand.NewSource(22))
	x := make([]float32, total)
	base := make([]float32, total)
	fillSpecial(rng, x)
	fillSpecial(rng, base)

	want := cloneF32(base)
	RefVecAxpy(want, x, 0.5)
	RefVecReLU(want, want)
	RefVecSGDStep(want, x, 0.01, 1e-4)

	for iter := 0; iter < 50; iter++ {
		got := cloneF32(base)
		var wg sync.WaitGroup
		for p := 0; p < parts; p++ {
			lo, hi := p*total/parts, (p+1)*total/parts
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				VecAxpy(got[lo:hi], x[lo:hi], 0.5)
				VecReLU(got[lo:hi], got[lo:hi])
				VecSGDStep(got[lo:hi], x[lo:hi], 0.01, 1e-4)
			}(lo, hi)
		}
		wg.Wait()
		eqBitsF32(t, "RaceHammer", total, got, want)
	}
}
