package tensor

import "spatl/internal/telemetry"

// BindPoolMetrics exposes worker-pool utilization through reg as func
// gauges. The callbacks read the pool's own atomics at snapshot time,
// so binding costs the dispatch path nothing.
func BindPoolMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.Func("tensor.pool.workers", poolWorkers.Load)
	reg.Func("tensor.pool.jobs", poolJobCount.Load)
	reg.Func("tensor.pool.inline", poolInline.Load)
	reg.Func("tensor.pool.chunks", poolChunks.Load)
	reg.Func("tensor.pool.busy", poolBusy.Load)
}
