//go:build !amd64

package tensor

// Non-amd64 builds have no vector kernel; the scalar panel path runs
// everywhere.
const useAVX2 = false

func matmulTransBRowsAVX2(c, a, b []float32, lo, hi, k, n int, acc bool) {
	matmulTransBRowsScalar(c, a, b, lo, hi, k, n, acc)
}
