// AVX2 bodies for the elementwise vec kernels. Vectorization is across
// independent elements only — each lane applies the exact IEEE operation
// sequence of the scalar loop (separate VMULPS/VADDPS, no FMA, source
// operation order), so outputs are bitwise identical to the Ref* scalar
// kernels. Float32 kernels step 8 lanes (YMM), float64-compute kernels
// step 4 lanes (floats widened with VCVTPS2PD, narrowed back with
// VCVTPD2PS = Go's float32(x) round-to-nearest-even). ReLU uses a quiet
// ordered greater-than compare (predicate 0x1E) and a bitwise AND rather
// than VMAXPS, matching the scalar branch on NaN and signed zero.
//
// Every body requires n > 0 and n a multiple of the lane count; the Go
// wrappers guarantee both.

#include "textflag.h"

// func vecAxpyAsm(y, x *float32, n int, a float32)
// y[i] += a*x[i]
TEXT ·vecAxpyAsm(SB), NOSPLIT, $0-28
	MOVQ	y+0(FP), DI
	MOVQ	x+8(FP), SI
	MOVQ	n+16(FP), CX
	VBROADCASTSS	a+24(FP), Y0

axpyloop:
	VMOVUPS	(SI), Y1
	VMULPS	Y1, Y0, Y2          // a*x
	VMOVUPS	(DI), Y3
	VADDPS	Y2, Y3, Y3          // y + a*x
	VMOVUPS	Y3, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	axpyloop
	VZEROUPPER
	RET

// func vecScaleAsm(x *float32, n int, a float32)
// x[i] *= a
TEXT ·vecScaleAsm(SB), NOSPLIT, $0-20
	MOVQ	x+0(FP), DI
	MOVQ	n+8(FP), CX
	VBROADCASTSS	a+16(FP), Y0

scaleloop:
	VMOVUPS	(DI), Y1
	VMULPS	Y0, Y1, Y1          // x*a
	VMOVUPS	Y1, (DI)
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	scaleloop
	VZEROUPPER
	RET

// func vecAddAsm(dst, src *float32, n int)
// dst[i] += src[i]
TEXT ·vecAddAsm(SB), NOSPLIT, $0-24
	MOVQ	dst+0(FP), DI
	MOVQ	src+8(FP), SI
	MOVQ	n+16(FP), CX

addloop:
	VMOVUPS	(SI), Y1
	VMOVUPS	(DI), Y2
	VADDPS	Y1, Y2, Y2          // dst + src
	VMOVUPS	Y2, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	addloop
	VZEROUPPER
	RET

// func vecSubAsm(dst, src *float32, n int)
// dst[i] -= src[i]
TEXT ·vecSubAsm(SB), NOSPLIT, $0-24
	MOVQ	dst+0(FP), DI
	MOVQ	src+8(FP), SI
	MOVQ	n+16(FP), CX

subloop:
	VMOVUPS	(SI), Y1
	VMOVUPS	(DI), Y2
	VSUBPS	Y1, Y2, Y2          // dst - src
	VMOVUPS	Y2, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	subloop
	VZEROUPPER
	RET

// func vecBiasAddAsm(dst *float32, n int, b float32)
// dst[i] += b
TEXT ·vecBiasAddAsm(SB), NOSPLIT, $0-20
	MOVQ	dst+0(FP), DI
	MOVQ	n+8(FP), CX
	VBROADCASTSS	b+16(FP), Y0

biasloop:
	VMOVUPS	(DI), Y1
	VADDPS	Y0, Y1, Y1          // dst + b
	VMOVUPS	Y1, (DI)
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	biasloop
	VZEROUPPER
	RET

// func vecCopyBiasAsm(dst, src *float32, n int, b float32)
// dst[i] = src[i] + b
TEXT ·vecCopyBiasAsm(SB), NOSPLIT, $0-28
	MOVQ	dst+0(FP), DI
	MOVQ	src+8(FP), SI
	MOVQ	n+16(FP), CX
	VBROADCASTSS	b+24(FP), Y0

cbiasloop:
	VMOVUPS	(SI), Y1
	VADDPS	Y0, Y1, Y1          // src + b
	VMOVUPS	Y1, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	cbiasloop
	VZEROUPPER
	RET

// func vecReLUAsm(out, x *float32, n int)
// out[i] = x[i] if x[i] > 0 else 0
TEXT ·vecReLUAsm(SB), NOSPLIT, $0-24
	MOVQ	out+0(FP), DI
	MOVQ	x+8(FP), SI
	MOVQ	n+16(FP), CX
	VXORPS	Y0, Y0, Y0          // zero

reluloop:
	VMOVUPS	(SI), Y1
	VCMPPS	$0x1E, Y0, Y1, Y2   // mask = x > 0 (GT_OQ)
	VANDPS	Y1, Y2, Y3          // keep positive lanes' bits
	VMOVUPS	Y3, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	reluloop
	VZEROUPPER
	RET

// func vecReLUBwdAsm(dx, dout, x *float32, n int)
// dx[i] = dout[i] if x[i] > 0 else 0
TEXT ·vecReLUBwdAsm(SB), NOSPLIT, $0-32
	MOVQ	dx+0(FP), DI
	MOVQ	dout+8(FP), SI
	MOVQ	x+16(FP), BX
	MOVQ	n+24(FP), CX
	VXORPS	Y0, Y0, Y0          // zero

relubloop:
	VMOVUPS	(BX), Y1
	VCMPPS	$0x1E, Y0, Y1, Y2   // mask = x > 0 (GT_OQ)
	VMOVUPS	(SI), Y3
	VANDPS	Y3, Y2, Y4          // gate dout by mask
	VMOVUPS	Y4, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	ADDQ	$32, BX
	SUBQ	$8, CX
	JNZ	relubloop
	VZEROUPPER
	RET

// func vecSGDAsm(w, gv *float32, n int, lr, wd float32)
// w[i] -= lr*(g[i] + wd*w[i])
TEXT ·vecSGDAsm(SB), NOSPLIT, $0-32
	MOVQ	w+0(FP), DI
	MOVQ	gv+8(FP), SI
	MOVQ	n+16(FP), CX
	VBROADCASTSS	lr+24(FP), Y0
	VBROADCASTSS	wd+28(FP), Y1

sgdloop:
	VMOVUPS	(DI), Y2            // w
	VMULPS	Y2, Y1, Y3          // wd*w
	VMOVUPS	(SI), Y4            // g
	VADDPS	Y3, Y4, Y5          // g + wd*w
	VMULPS	Y5, Y0, Y6          // lr*(g + wd*w)
	VSUBPS	Y6, Y2, Y2          // w - lr*(...)
	VMOVUPS	Y2, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	sgdloop
	VZEROUPPER
	RET

// func vecSGDMomAsm(w, v, gv *float32, n int, lr, wd, mu float32)
// gj = g[i] + wd*w[i]; v[i] = mu*v[i] + gj; w[i] -= lr*v[i]
TEXT ·vecSGDMomAsm(SB), NOSPLIT, $0-44
	MOVQ	w+0(FP), DI
	MOVQ	v+8(FP), SI
	MOVQ	gv+16(FP), BX
	MOVQ	n+24(FP), CX
	VBROADCASTSS	lr+32(FP), Y0
	VBROADCASTSS	wd+36(FP), Y1
	VBROADCASTSS	mu+40(FP), Y2

sgdmloop:
	VMOVUPS	(DI), Y3            // w
	VMULPS	Y3, Y1, Y4          // wd*w
	VMOVUPS	(BX), Y5            // g
	VADDPS	Y4, Y5, Y5          // gj = g + wd*w
	VMOVUPS	(SI), Y6            // v
	VMULPS	Y6, Y2, Y6          // mu*v
	VADDPS	Y5, Y6, Y6          // v' = mu*v + gj
	VMOVUPS	Y6, (SI)
	VMULPS	Y6, Y0, Y7          // lr*v'
	VSUBPS	Y7, Y3, Y3          // w - lr*v'
	VMOVUPS	Y3, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	ADDQ	$32, BX
	SUBQ	$8, CX
	JNZ	sgdmloop
	VZEROUPPER
	RET

// func vecAddDiffAsm(dst, a, b *float32, n int)
// dst[i] += a[i] - b[i]
TEXT ·vecAddDiffAsm(SB), NOSPLIT, $0-32
	MOVQ	dst+0(FP), DI
	MOVQ	a+8(FP), SI
	MOVQ	b+16(FP), BX
	MOVQ	n+24(FP), CX

adiffloop:
	VMOVUPS	(SI), Y1            // a
	VMOVUPS	(BX), Y2            // b
	VSUBPS	Y2, Y1, Y3          // a - b
	VMOVUPS	(DI), Y4
	VADDPS	Y3, Y4, Y4          // dst + (a-b)
	VMOVUPS	Y4, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	ADDQ	$32, BX
	SUBQ	$8, CX
	JNZ	adiffloop
	VZEROUPPER
	RET

// func vecAxpyDiffAsm(dst, a, b *float32, n int, m float32)
// dst[i] += m*(a[i] - b[i])
TEXT ·vecAxpyDiffAsm(SB), NOSPLIT, $0-36
	MOVQ	dst+0(FP), DI
	MOVQ	a+8(FP), SI
	MOVQ	b+16(FP), BX
	MOVQ	n+24(FP), CX
	VBROADCASTSS	m+32(FP), Y0

axdiffloop:
	VMOVUPS	(SI), Y1            // a
	VMOVUPS	(BX), Y2            // b
	VSUBPS	Y2, Y1, Y3          // a - b
	VMULPS	Y3, Y0, Y3          // m*(a-b)
	VMOVUPS	(DI), Y4
	VADDPS	Y3, Y4, Y4          // dst + m*(a-b)
	VMOVUPS	Y4, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	ADDQ	$32, BX
	SUBQ	$8, CX
	JNZ	axdiffloop
	VZEROUPPER
	RET

// func vecAccumScaledAsm(acc *float64, v *float32, n int, w float64)
// acc[i] += w*float64(v[i])
TEXT ·vecAccumScaledAsm(SB), NOSPLIT, $0-32
	MOVQ	acc+0(FP), DI
	MOVQ	v+8(FP), SI
	MOVQ	n+16(FP), CX
	VBROADCASTSD	w+24(FP), Y0

accloop:
	VCVTPS2PD	(SI), Y1        // widen 4 floats (exact)
	VMULPD	Y1, Y0, Y2          // w*v
	VMOVUPD	(DI), Y3
	VADDPD	Y2, Y3, Y3          // acc + w*v
	VMOVUPD	Y3, (DI)
	ADDQ	$16, SI
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	accloop
	VZEROUPPER
	RET

// func vecF64ToF32Asm(dst *float32, src *float64, n int)
// dst[i] = float32(src[i])
TEXT ·vecF64ToF32Asm(SB), NOSPLIT, $0-24
	MOVQ	dst+0(FP), DI
	MOVQ	src+8(FP), SI
	MOVQ	n+16(FP), CX

cvtloop:
	VMOVUPD	(SI), Y1
	VCVTPD2PSY	Y1, X1          // round-to-nearest-even
	VMOVUPS	X1, (DI)
	ADDQ	$32, SI
	ADDQ	$16, DI
	SUBQ	$4, CX
	JNZ	cvtloop
	VZEROUPPER
	RET

// func vecBNTrainAsm(out, xhat, x *float32, n int, mean, inv, gv, b float64)
// xh = (float64(x)-mean)*inv; xhat = float32(xh); out = float32(g*xh + b)
TEXT ·vecBNTrainAsm(SB), NOSPLIT, $0-64
	MOVQ	out+0(FP), DI
	MOVQ	xhat+8(FP), R8
	MOVQ	x+16(FP), SI
	MOVQ	n+24(FP), CX
	VBROADCASTSD	mean+32(FP), Y0
	VBROADCASTSD	inv+40(FP), Y1
	VBROADCASTSD	gv+48(FP), Y2
	VBROADCASTSD	b+56(FP), Y3

bntloop:
	VCVTPS2PD	(SI), Y4        // x
	VSUBPD	Y0, Y4, Y4          // x - mean
	VMULPD	Y1, Y4, Y4          // xh = (x-mean)*inv
	VCVTPD2PSY	Y4, X5
	VMOVUPS	X5, (R8)            // xhat = float32(xh)
	VMULPD	Y4, Y2, Y6          // g*xh
	VADDPD	Y3, Y6, Y6          // g*xh + b
	VCVTPD2PSY	Y6, X7
	VMOVUPS	X7, (DI)
	ADDQ	$16, SI
	ADDQ	$16, DI
	ADDQ	$16, R8
	SUBQ	$4, CX
	JNZ	bntloop
	VZEROUPPER
	RET

// func vecBNEvalAsm(out, x *float32, n int, mean, inv, gv, b float64)
// out = float32(g*(float64(x)-mean)*inv + b), multiplies left-to-right
TEXT ·vecBNEvalAsm(SB), NOSPLIT, $0-56
	MOVQ	out+0(FP), DI
	MOVQ	x+8(FP), SI
	MOVQ	n+16(FP), CX
	VBROADCASTSD	mean+24(FP), Y0
	VBROADCASTSD	inv+32(FP), Y1
	VBROADCASTSD	gv+40(FP), Y2
	VBROADCASTSD	b+48(FP), Y3

bneloop:
	VCVTPS2PD	(SI), Y4        // x
	VSUBPD	Y0, Y4, Y4          // x - mean
	VMULPD	Y4, Y2, Y5          // g*(x-mean)
	VMULPD	Y1, Y5, Y5          // *inv
	VADDPD	Y3, Y5, Y5          // + b
	VCVTPD2PSY	Y5, X6
	VMOVUPS	X6, (DI)
	ADDQ	$16, SI
	ADDQ	$16, DI
	SUBQ	$4, CX
	JNZ	bneloop
	VZEROUPPER
	RET

// func vecBNBwdAsm(dx, dout, xhat *float32, n int, scale, cnt, dbeta, dgamma float64)
// dx = float32(scale * (cnt*float64(dout) - dbeta - float64(xhat)*dgamma))
TEXT ·vecBNBwdAsm(SB), NOSPLIT, $0-64
	MOVQ	dx+0(FP), DI
	MOVQ	dout+8(FP), SI
	MOVQ	xhat+16(FP), BX
	MOVQ	n+24(FP), CX
	VBROADCASTSD	scale+32(FP), Y0
	VBROADCASTSD	cnt+40(FP), Y1
	VBROADCASTSD	dbeta+48(FP), Y2
	VBROADCASTSD	dgamma+56(FP), Y3

bnbloop:
	VCVTPS2PD	(SI), Y4        // g = dout
	VMULPD	Y4, Y1, Y5          // cnt*g
	VSUBPD	Y2, Y5, Y5          // cnt*g - dbeta
	VCVTPS2PD	(BX), Y6        // xh = xhat
	VMULPD	Y3, Y6, Y6          // xh*dgamma
	VSUBPD	Y6, Y5, Y5          // (cnt*g - dbeta) - xh*dgamma
	VMULPD	Y5, Y0, Y5          // scale*(...)
	VCVTPD2PSY	Y5, X7
	VMOVUPS	X7, (DI)
	ADDQ	$16, SI
	ADDQ	$16, DI
	ADDQ	$16, BX
	SUBQ	$4, CX
	JNZ	bnbloop
	VZEROUPPER
	RET
