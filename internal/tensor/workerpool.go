package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The worker pool runs the thousands of small Parallel regions a training
// round issues without paying goroutine spawn/join cost per region. It is
// started lazily on the first parallel call, sized to GOMAXPROCS at that
// moment, and lives for the life of the process.
//
// Determinism contract: Parallel(n, fn) splits [0,n) into fixed chunks
// whose boundaries depend only on n and GOMAXPROCS at call time. Every
// chunk is executed exactly once, by whichever worker (or the caller)
// claims it from an atomic counter. Because fn must only write state owned
// by its [lo,hi) range, results are bitwise independent of which goroutine
// runs a chunk, and therefore reproducible for a fixed GOMAXPROCS.
//
// Deadlock freedom: the caller always participates in its own job, so a
// job completes even when every pool worker is busy (including the nested
// case where fn itself calls Parallel).

// poolJob is one Parallel invocation: a chunked index range claimed via an
// atomic cursor by the caller and any workers that pick the job up.
type poolJob struct {
	fn    func(lo, hi int)
	n     int
	chunk int
	next  atomic.Int64
	wg    sync.WaitGroup
}

// run claims and executes chunks until none remain. Safe to call from any
// number of goroutines; each chunk is executed exactly once.
func (j *poolJob) run() {
	for {
		c := int(j.next.Add(1)) - 1
		lo := c * j.chunk
		if lo >= j.n {
			return
		}
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
		j.wg.Done()
	}
}

var (
	poolOnce sync.Once
	poolJobs chan *poolJob

	// Pool instrumentation: bumped on the dispatch path with plain
	// atomics (no registry lookups); exported through PoolStats and,
	// via BindPoolMetrics, as func gauges evaluated only at snapshot
	// time — the hot path never pays for an unread metric.
	poolWorkers  atomic.Int64 // workers started (0 until first pooled job)
	poolJobCount atomic.Int64 // Parallel calls dispatched to the pool
	poolInline   atomic.Int64 // Parallel calls run entirely inline
	poolChunks   atomic.Int64 // chunks executed across all jobs
	poolBusy     atomic.Int64 // workers currently executing chunks
)

// PoolStats is a point-in-time view of worker-pool utilization.
type PoolStats struct {
	Workers int64 // pool size (0 if the pool has not started)
	Jobs    int64 // Parallel calls dispatched to the pool
	Inline  int64 // Parallel calls that ran inline (n or GOMAXPROCS ≤ 1)
	Chunks  int64 // total chunks executed
	Busy    int64 // workers busy right now
}

// ReadPoolStats returns current pool utilization counters.
func ReadPoolStats() PoolStats {
	return PoolStats{
		Workers: poolWorkers.Load(),
		Jobs:    poolJobCount.Load(),
		Inline:  poolInline.Load(),
		Chunks:  poolChunks.Load(),
		Busy:    poolBusy.Load(),
	}
}

// ensurePool starts the persistent workers. The queue is buffered so
// callers never block handing out work: if the queue is full, every worker
// is already saturated and the caller just runs its chunks itself.
func ensurePool() {
	poolOnce.Do(func() {
		nw := runtime.GOMAXPROCS(0)
		if nw < 1 {
			nw = 1
		}
		poolJobs = make(chan *poolJob, 4*nw)
		poolWorkers.Store(int64(nw))
		for i := 0; i < nw; i++ {
			go func() {
				for j := range poolJobs {
					poolBusy.Add(1)
					j.run()
					poolBusy.Add(-1)
				}
			}()
		}
	})
}

// Parallel splits [0,n) into contiguous chunks, one per available worker,
// and runs fn on each chunk concurrently on the persistent pool. Chunk
// boundaries are a pure function of n and GOMAXPROCS, and each chunk is
// executed exactly once, so any computation whose chunks write disjoint
// state is deterministic. fn may call Parallel recursively.
func Parallel(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		poolInline.Add(1)
		fn(0, n)
		return
	}
	ensurePool()
	chunk := (n + workers - 1) / workers
	nchunks := (n + chunk - 1) / chunk
	poolJobCount.Add(1)
	poolChunks.Add(int64(nchunks))
	j := &poolJob{fn: fn, n: n, chunk: chunk}
	j.wg.Add(nchunks)
	// Wake at most nchunks-1 helpers; the caller handles the rest itself.
	for i := 0; i < nchunks-1; i++ {
		select {
		case poolJobs <- j:
		default:
			i = nchunks // queue full: all workers busy, run inline
		}
	}
	j.run()
	j.wg.Wait()
}
