package tensor

// Reference kernels: straightforward triple loops retained as the ground
// truth the optimized blocked kernels are verified against (see
// matmul_test.go). They accumulate each output element in ascending-k
// order, the same order the blocked kernels preserve, so equivalence
// tests can demand exact equality, not just tolerance.

// RefMatMul computes C = A·B with the naive reference kernel.
func RefMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

// RefMatMulTransB computes C = A·Bᵀ with the naive reference kernel.
func RefMatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(0)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[j*k+p]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

// RefVec* kernels: the scalar ground truths the vec.go elementwise
// kernels are verified against (vec_test.go). Each is the plain Go loop
// the AVX2 body reproduces lane-for-lane; equivalence tests demand exact
// bit equality, including NaN, signed-zero and denormal inputs.

// RefVecAxpy computes y += a*x.
func RefVecAxpy(y, x []float32, a float32) {
	for i, v := range x[:len(y)] {
		y[i] += a * v
	}
}

// RefVecScale computes x *= a.
func RefVecScale(x []float32, a float32) {
	for i := range x {
		x[i] *= a
	}
}

// RefVecAdd computes dst += src.
func RefVecAdd(dst, src []float32) {
	for i, v := range src[:len(dst)] {
		dst[i] += v
	}
}

// RefVecSub computes dst -= src.
func RefVecSub(dst, src []float32) {
	for i, v := range src[:len(dst)] {
		dst[i] -= v
	}
}

// RefVecBiasAdd computes dst += b.
func RefVecBiasAdd(dst []float32, b float32) {
	for i := range dst {
		dst[i] += b
	}
}

// RefVecCopyBias computes dst = src + b.
func RefVecCopyBias(dst, src []float32, b float32) {
	for i, v := range src[:len(dst)] {
		dst[i] = v + b
	}
}

// RefVecReLU computes out[i] = x[i] if x[i] > 0 else 0.
func RefVecReLU(out, x []float32) {
	for i, v := range x[:len(out)] {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// RefVecReLUBwd computes dx[i] = dout[i] if x[i] > 0 else 0.
func RefVecReLUBwd(dx, dout, x []float32) {
	for i, v := range dout[:len(dx)] {
		if x[i] > 0 {
			dx[i] = v
		} else {
			dx[i] = 0
		}
	}
}

// RefVecSGDStep computes w -= lr*(g + wd*w).
func RefVecSGDStep(w, g []float32, lr, wd float32) {
	for i, gv := range g[:len(w)] {
		w[i] -= lr * (gv + wd*w[i])
	}
}

// RefVecSGDMomStep computes gj = g + wd*w; v = mu*v + gj; w -= lr*v.
func RefVecSGDMomStep(w, v, g []float32, lr, wd, mu float32) {
	for i, gv := range g[:len(w)] {
		gj := gv + wd*w[i]
		v[i] = mu*v[i] + gj
		w[i] -= lr * v[i]
	}
}

// RefVecAddDiff computes dst += a - b.
func RefVecAddDiff(dst, a, b []float32) {
	for i := range dst {
		dst[i] += a[i] - b[i]
	}
}

// RefVecAxpyDiff computes dst += m*(a - b).
func RefVecAxpyDiff(dst, a, b []float32, m float32) {
	for i := range dst {
		dst[i] += m * (a[i] - b[i])
	}
}

// RefVecAccumScaled computes acc[i] += w*float64(v[i]).
func RefVecAccumScaled(acc []float64, v []float32, w float64) {
	for i, x := range v[:len(acc)] {
		acc[i] += w * float64(x)
	}
}

// RefVecF64ToF32 computes dst[i] = float32(src[i]).
func RefVecF64ToF32(dst []float32, src []float64) {
	for i, x := range src[:len(dst)] {
		dst[i] = float32(x)
	}
}

// RefVecBNTrain computes the training BatchNorm normalize+affine strip.
func RefVecBNTrain(out, xhat, x []float32, mean, inv, g, b float64) {
	for i, v := range x[:len(out)] {
		xh := (float64(v) - mean) * inv
		xhat[i] = float32(xh)
		out[i] = float32(g*xh + b)
	}
}

// RefVecBNEval computes the eval BatchNorm transform strip.
func RefVecBNEval(out, x []float32, mean, inv, g, b float64) {
	for i, v := range x[:len(out)] {
		out[i] = float32(g*(float64(v)-mean)*inv + b)
	}
}

// RefVecBNBwd computes the BatchNorm input-gradient strip.
func RefVecBNBwd(dx, dout, xhat []float32, scale, cnt, dbeta, dgamma float64) {
	for i, g := range dout[:len(dx)] {
		dx[i] = float32(scale * (cnt*float64(g) - dbeta - float64(xhat[i])*dgamma))
	}
}

// RefMatMulTransA computes C = Aᵀ·B with the naive reference kernel.
func RefMatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[p*m+i] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}
