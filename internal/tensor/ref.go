package tensor

// Reference kernels: straightforward triple loops retained as the ground
// truth the optimized blocked kernels are verified against (see
// matmul_test.go). They accumulate each output element in ascending-k
// order, the same order the blocked kernels preserve, so equivalence
// tests can demand exact equality, not just tolerance.

// RefMatMul computes C = A·B with the naive reference kernel.
func RefMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

// RefMatMulTransB computes C = A·Bᵀ with the naive reference kernel.
func RefMatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(0)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[i*k+p] * b.Data[j*k+p]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}

// RefMatMulTransA computes C = Aᵀ·B with the naive reference kernel.
func RefMatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.Data[p*m+i] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = s
		}
	}
	return c
}
