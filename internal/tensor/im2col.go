package tensor

import "fmt"

// ConvDims describes a 2D convolution geometry. H/W are input spatial
// dims; K is the (square) kernel size; Stride and Pad apply to both axes.
type ConvDims struct {
	InC, H, W   int
	OutC, K     int
	Stride, Pad int
	OutH, OutW  int
}

// NewConvDims computes output spatial dimensions and validates geometry.
func NewConvDims(inC, h, w, outC, k, stride, pad int) ConvDims {
	if stride <= 0 || k <= 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry k=%d stride=%d", k, stride))
	}
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: conv output collapses: in %dx%d k=%d stride=%d pad=%d", h, w, k, stride, pad))
	}
	return ConvDims{InC: inC, H: h, W: w, OutC: outC, K: k, Stride: stride, Pad: pad, OutH: outH, OutW: outW}
}

// Im2Col lowers one image (C,H,W) from x at batch offset into the column
// buffer col of shape (C*K*K, OutH*OutW). Padding cells contribute zeros.
func Im2Col(col []float32, x []float32, d ConvDims) {
	cols := d.OutH * d.OutW
	idx := 0
	for c := 0; c < d.InC; c++ {
		plane := x[c*d.H*d.W : (c+1)*d.H*d.W]
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := col[idx*cols : (idx+1)*cols]
				idx++
				o := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.Stride - d.Pad + ky
					if iy < 0 || iy >= d.H {
						for ox := 0; ox < d.OutW; ox++ {
							row[o] = 0
							o++
						}
						continue
					}
					base := iy * d.W
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.Stride - d.Pad + kx
						if ix < 0 || ix >= d.W {
							row[o] = 0
						} else {
							row[o] = plane[base+ix]
						}
						o++
					}
				}
			}
		}
	}
}

// Col2Im scatters the column-gradient buffer col (C*K*K, OutH*OutW) back
// into the image gradient dx (C,H,W), accumulating overlapping windows.
// dx must be zeroed by the caller if accumulation from scratch is desired.
func Col2Im(dx []float32, col []float32, d ConvDims) {
	cols := d.OutH * d.OutW
	idx := 0
	for c := 0; c < d.InC; c++ {
		plane := dx[c*d.H*d.W : (c+1)*d.H*d.W]
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := col[idx*cols : (idx+1)*cols]
				idx++
				o := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.Stride - d.Pad + ky
					if iy < 0 || iy >= d.H {
						o += d.OutW
						continue
					}
					base := iy * d.W
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.Stride - d.Pad + kx
						if ix >= 0 && ix < d.W {
							plane[base+ix] += row[o]
						}
						o++
					}
				}
			}
		}
	}
}
