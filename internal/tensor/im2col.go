package tensor

import "fmt"

// ConvDims describes a 2D convolution geometry. H/W are input spatial
// dims; K is the (square) kernel size; Stride and Pad apply to both axes.
type ConvDims struct {
	InC, H, W   int
	OutC, K     int
	Stride, Pad int
	OutH, OutW  int
}

// NewConvDims computes output spatial dimensions and validates geometry.
func NewConvDims(inC, h, w, outC, k, stride, pad int) ConvDims {
	if stride <= 0 || k <= 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry k=%d stride=%d", k, stride))
	}
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: conv output collapses: in %dx%d k=%d stride=%d pad=%d", h, w, k, stride, pad))
	}
	return ConvDims{InC: inC, H: h, W: w, OutC: outC, K: k, Stride: stride, Pad: pad, OutH: outH, OutW: outW}
}

// Im2Col lowers one image (C,H,W) from x at batch offset into the column
// buffer col of shape (C*K*K, OutH*OutW). Padding cells contribute zeros.
// Stride-1 geometries (every ResNet/VGG 3×3 in this repo) take a fast path
// that bulk-copies the valid span of each output row instead of testing
// bounds per element.
func Im2Col(col []float32, x []float32, d ConvDims) {
	Im2ColLD(col, x, d, d.OutH*d.OutW)
}

// Im2ColLD is Im2Col with an explicit leading dimension: lowered row idx
// starts at col[idx*ld]. A batch-fused caller lowers image i of a group
// into Im2ColLD(colB[i*cols:], x_i, d, G*cols), placing the images side by
// side in one wide (C*K*K, G·OutH·OutW) matrix without a copy.
func Im2ColLD(col []float32, x []float32, d ConvDims, ld int) {
	if d.Stride == 1 {
		im2colStride1(col, x, d, ld)
		return
	}
	cols := d.OutH * d.OutW
	idx := 0
	for c := 0; c < d.InC; c++ {
		plane := x[c*d.H*d.W : (c+1)*d.H*d.W]
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := col[idx*ld : idx*ld+cols]
				idx++
				o := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.Stride - d.Pad + ky
					if iy < 0 || iy >= d.H {
						for ox := 0; ox < d.OutW; ox++ {
							row[o] = 0
							o++
						}
						continue
					}
					base := iy * d.W
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.Stride - d.Pad + kx
						if ix < 0 || ix >= d.W {
							row[o] = 0
						} else {
							row[o] = plane[base+ix]
						}
						o++
					}
				}
			}
		}
	}
}

// im2colStride1 handles stride 1: for each (ky,kx) tap, the input column
// index is ox + kx - Pad, so the in-bounds ox range is a single contiguous
// span copied with copy(); only the padding fringes are written per cell.
func im2colStride1(col []float32, x []float32, d ConvDims, ld int) {
	cols := d.OutH * d.OutW
	idx := 0
	for c := 0; c < d.InC; c++ {
		plane := x[c*d.H*d.W : (c+1)*d.H*d.W]
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := col[idx*ld : idx*ld+cols]
				idx++
				// Valid ox satisfy 0 ≤ ox+kx-Pad < W.
				oxLo := d.Pad - kx
				if oxLo < 0 {
					oxLo = 0
				}
				oxHi := d.W + d.Pad - kx
				if oxHi > d.OutW {
					oxHi = d.OutW
				}
				if oxHi < oxLo {
					oxHi = oxLo
				}
				o := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy - d.Pad + ky
					if iy < 0 || iy >= d.H {
						zero := row[o : o+d.OutW]
						for i := range zero {
							zero[i] = 0
						}
						o += d.OutW
						continue
					}
					base := iy * d.W
					for ox := 0; ox < oxLo; ox++ {
						row[o+ox] = 0
					}
					if oxHi > oxLo {
						copy(row[o+oxLo:o+oxHi], plane[base+oxLo-d.Pad+kx:base+oxHi-d.Pad+kx])
					}
					for ox := oxHi; ox < d.OutW; ox++ {
						row[o+ox] = 0
					}
					o += d.OutW
				}
			}
		}
	}
}

// Im2ColPatch lowers one image (C,H,W) into the patch-major column buffer
// dst of shape (OutH*OutW, C*K*K): row j holds the receptive field of
// output pixel j, laid out in the same (c,ky,kx) order as a filter row of
// the weight matrix. This is the transposed layout of Im2Col, produced
// directly so the convolution forward pass can feed the register-tiled
// dot-product kernel (MatMulTransB) with both operands row-contiguous and
// no packing step.
func Im2ColPatch(dst, x []float32, d ConvDims) {
	if d.K == 3 {
		im2colPatch3(dst, x, d)
		return
	}
	colRows := d.InC * d.K * d.K
	kk := d.K * d.K
	for oy := 0; oy < d.OutH; oy++ {
		for ox := 0; ox < d.OutW; ox++ {
			patch := dst[(oy*d.OutW+ox)*colRows:][:colRows]
			ix0 := ox*d.Stride - d.Pad
			// Valid kx satisfy 0 ≤ ix0+kx < W.
			lo, hi := -ix0, d.W-ix0
			if lo < 0 {
				lo = 0
			}
			if hi > d.K {
				hi = d.K
			}
			if hi < lo {
				hi = lo
			}
			iy0 := oy*d.Stride - d.Pad
			interior := lo == 0 && hi == d.K && iy0 >= 0 && iy0+d.K <= d.H
			for c := 0; c < d.InC; c++ {
				plane := x[c*d.H*d.W:]
				pp := patch[c*kk:][:kk]
				if interior {
					// Fully in-bounds receptive field: no fringe handling.
					// K is tiny (3 or 5 here), so an inline element loop
					// beats a memmove call per row.
					src := plane[iy0*d.W+ix0:]
					for ky := 0; ky < d.K; ky++ {
						row := pp[ky*d.K:][:d.K]
						srow := src[ky*d.W:]
						for i := range row {
							row[i] = srow[i]
						}
					}
					continue
				}
				for ky := 0; ky < d.K; ky++ {
					iy := iy0 + ky
					row := pp[ky*d.K:][:d.K]
					if iy < 0 || iy >= d.H {
						for i := range row {
							row[i] = 0
						}
						continue
					}
					for i := 0; i < lo; i++ {
						row[i] = 0
					}
					if hi > lo {
						srow := plane[iy*d.W+ix0+lo:]
						for i := lo; i < hi; i++ {
							row[i] = srow[i-lo]
						}
					}
					for i := hi; i < d.K; i++ {
						row[i] = 0
					}
				}
			}
		}
	}
}

// im2colPatch3 is Im2ColPatch specialized for 3×3 kernels (every conv in
// the repo's ResNet/VGG models). Each output row's fully-interior ox span
// is computed once; over that span the copy runs channel-outer with the
// three source-row slices and the destination cursor hoisted out of the
// per-pixel loop, so the inner body is nine unrolled load/store pairs and
// two additions. Only the padding fringe takes the bounds-checked path.
func im2colPatch3(dst, x []float32, d ConvDims) {
	colRows := d.InC * 9
	hw := d.H * d.W
	w := d.W
	st := d.Stride
	// Interior ox satisfy 0 ≤ ox·st−Pad and ox·st−Pad+3 ≤ W.
	oxLo := 0
	if d.Pad > 0 {
		oxLo = (d.Pad + st - 1) / st
	}
	oxHi := 0
	if q := w + d.Pad - 3; q >= 0 {
		oxHi = q/st + 1
	}
	if oxHi > d.OutW {
		oxHi = d.OutW
	}
	if oxHi < oxLo {
		oxHi = oxLo
	}
	// Interior oy satisfy 0 ≤ oy·st−Pad and oy·st−Pad+3 ≤ H.
	oyLo := 0
	if d.Pad > 0 {
		oyLo = (d.Pad + st - 1) / st
	}
	oyHi := 0
	if q := d.H + d.Pad - 3; q >= 0 {
		oyHi = q/st + 1
	}
	if oyHi > d.OutH {
		oyHi = d.OutH
	}
	if oyHi < oyLo {
		oyHi = oyLo
	}
	for oy := 0; oy < d.OutH; oy++ {
		iy0 := oy*st - d.Pad
		base := oy * d.OutW * colRows
		if oy < oyLo || oy >= oyHi {
			// Vertically clipped row: corners take the fully bounds-checked
			// edge path, the x-interior span shares the run copier (which
			// zeroes whole out-of-bounds tap rows).
			for ox := 0; ox < oxLo; ox++ {
				im2colPatch3Edge(dst[base+ox*colRows:][:colRows], x, d, iy0, ox*st-d.Pad)
			}
			for ox := oxHi; ox < d.OutW; ox++ {
				im2colPatch3Edge(dst[base+ox*colRows:][:colRows], x, d, iy0, ox*st-d.Pad)
			}
		}
		if oxHi > oxLo {
			ix0 := oxLo*st - d.Pad
			n := oxHi - oxLo
			for c := 0; c < d.InC; c++ {
				im2colPatch3Run(dst[base+oxLo*colRows+c*9:], x[c*hw:], n, colRows, iy0, ix0, w, st, d.H)
			}
		}
	}
	// Left/right fringe columns over the vertically interior rows run as
	// per-channel vertical strips: the x-clip window is fixed down a
	// column, so the inner copy is straight-line with all three tap rows
	// guaranteed in bounds.
	if oyHi > oyLo {
		for ox := 0; ox < oxLo; ox++ {
			im2colPatch3Strip(dst, x, d, ox, oyLo, oyHi, colRows, hw)
		}
		for ox := oxHi; ox < d.OutW; ox++ {
			im2colPatch3Strip(dst, x, d, ox, oyLo, oyHi, colRows, hw)
		}
	}
}

// im2colPatch3Strip fills all channels of one x-clipped output column for
// the vertically interior rows [oyLo, oyHi).
func im2colPatch3Strip(dst, x []float32, d ConvDims, ox, oyLo, oyHi, colRows, hw int) {
	w, st := d.W, d.Stride
	ix0 := ox*st - d.Pad
	lo, hi := -ix0, w-ix0
	if lo < 0 {
		lo = 0
	}
	if hi > 3 {
		hi = 3
	}
	if hi < lo {
		hi = lo
	}
	// oy outer, channels inner: each output pixel's patch (colRows floats)
	// is written contiguously, and the three input rows a pixel reads stay
	// warm for the next pixel down the column.
	for oy := oyLo; oy < oyHi; oy++ {
		base := (oy*st - d.Pad) * w
		patch := dst[(oy*d.OutW+ox)*colRows:][:colRows]
		po := 0
		for c := 0; c < d.InC; c++ {
			// ix0 may be negative (left fringe); every read index ix0+kx
			// with kx ≥ lo is in bounds.
			src := x[c*hw+base:]
			pp := patch[po : po+9 : po+9]
			po += 9
			pp[0], pp[1], pp[2] = 0, 0, 0
			pp[3], pp[4], pp[5] = 0, 0, 0
			pp[6], pp[7], pp[8] = 0, 0, 0
			for kx := lo; kx < hi; kx++ {
				pp[kx] = src[ix0+kx]
				pp[3+kx] = src[w+ix0+kx]
				pp[6+kx] = src[2*w+ix0+kx]
			}
		}
	}
}

// im2colPatch3Run fills one channel's nine taps for a horizontal run of n
// x-interior output pixels starting at input column ix0, writing patches
// colRows apart starting at dst[0]. Tap rows outside [0,H) are zeroed; the
// all-interior case — almost every pixel — runs the straight-line copy.
func im2colPatch3Run(dst, plane []float32, n, colRows, iy0, ix0, w, st, h int) {
	var r0, r1, r2 []float32
	if iy0 >= 0 && iy0 < h {
		r0 = plane[iy0*w+ix0:]
	}
	if iy := iy0 + 1; iy >= 0 && iy < h {
		r1 = plane[iy*w+ix0:]
	}
	if iy := iy0 + 2; iy >= 0 && iy < h {
		r2 = plane[iy*w+ix0:]
	}
	po, j := 0, 0
	if r0 != nil && r1 != nil && r2 != nil {
		for i := 0; i < n; i++ {
			pp := dst[po : po+9 : po+9]
			pp[0], pp[1], pp[2] = r0[j], r0[j+1], r0[j+2]
			pp[3], pp[4], pp[5] = r1[j], r1[j+1], r1[j+2]
			pp[6], pp[7], pp[8] = r2[j], r2[j+1], r2[j+2]
			po += colRows
			j += st
		}
		return
	}
	// Clipped run: the three per-row branches resolve the same way every
	// iteration, so they predict perfectly.
	for i := 0; i < n; i++ {
		pp := dst[po : po+9 : po+9]
		if r0 != nil {
			pp[0], pp[1], pp[2] = r0[j], r0[j+1], r0[j+2]
		} else {
			pp[0], pp[1], pp[2] = 0, 0, 0
		}
		if r1 != nil {
			pp[3], pp[4], pp[5] = r1[j], r1[j+1], r1[j+2]
		} else {
			pp[3], pp[4], pp[5] = 0, 0, 0
		}
		if r2 != nil {
			pp[6], pp[7], pp[8] = r2[j], r2[j+1], r2[j+2]
		} else {
			pp[6], pp[7], pp[8] = 0, 0, 0
		}
		po += colRows
		j += st
	}
}

// im2colPatch3Edge fills one padding-fringe patch (all channels of one
// output pixel), zeroing out-of-bounds taps.
func im2colPatch3Edge(patch, x []float32, d ConvDims, iy0, ix0 int) {
	hw := d.H * d.W
	w := d.W
	lo, hi := -ix0, w-ix0
	if lo < 0 {
		lo = 0
	}
	if hi > 3 {
		hi = 3
	}
	if hi < lo {
		hi = lo
	}
	for c := 0; c < d.InC; c++ {
		plane := x[c*hw:]
		pp := patch[c*9 : c*9+9]
		for ky := 0; ky < 3; ky++ {
			iy := iy0 + ky
			row := pp[ky*3 : ky*3+3]
			if iy < 0 || iy >= d.H {
				row[0], row[1], row[2] = 0, 0, 0
				continue
			}
			for i := 0; i < lo; i++ {
				row[i] = 0
			}
			if hi > lo {
				srow := plane[iy*w+ix0+lo:]
				for i := lo; i < hi; i++ {
					row[i] = srow[i-lo]
				}
			}
			for i := hi; i < 3; i++ {
				row[i] = 0
			}
		}
	}
}

// Col2Im scatters the column-gradient buffer col (C*K*K, OutH*OutW) back
// into the image gradient dx (C,H,W), accumulating overlapping windows.
// dx must be zeroed by the caller if accumulation from scratch is desired.
func Col2Im(dx []float32, col []float32, d ConvDims) {
	Col2ImLD(dx, col, d, d.OutH*d.OutW)
}

// Col2ImLD is Col2Im with an explicit leading dimension: row idx of the
// column-gradient matrix starts at col[idx*ld]. This lets a batch-fused
// backward pass scatter one image's slice out of a wide (C*K*K, B·OutH·OutW)
// gradient matrix without copying it into a contiguous per-image buffer.
// The accumulation order over (c,ky,kx) then (oy,ox) is identical to
// Col2Im, so overlapping-window sums round identically.
func Col2ImLD(dx []float32, col []float32, d ConvDims, ld int) {
	if d.Stride == 1 {
		col2imStride1(dx, col, d, ld)
		return
	}
	cols := d.OutH * d.OutW
	idx := 0
	for c := 0; c < d.InC; c++ {
		plane := dx[c*d.H*d.W : (c+1)*d.H*d.W]
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := col[idx*ld : idx*ld+cols]
				idx++
				o := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.Stride - d.Pad + ky
					if iy < 0 || iy >= d.H {
						o += d.OutW
						continue
					}
					base := iy * d.W
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.Stride - d.Pad + kx
						if ix >= 0 && ix < d.W {
							plane[base+ix] += row[o]
						}
						o++
					}
				}
			}
		}
	}
}

// col2imStride1 is the stride-1 scatter: the in-bounds ox span is computed
// once per output row, so the accumulate loop runs branch-free.
func col2imStride1(dx []float32, col []float32, d ConvDims, ld int) {
	cols := d.OutH * d.OutW
	idx := 0
	for c := 0; c < d.InC; c++ {
		plane := dx[c*d.H*d.W : (c+1)*d.H*d.W]
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := col[idx*ld : idx*ld+cols]
				idx++
				oxLo := d.Pad - kx
				if oxLo < 0 {
					oxLo = 0
				}
				oxHi := d.W + d.Pad - kx
				if oxHi > d.OutW {
					oxHi = d.OutW
				}
				if oxHi < oxLo {
					oxHi = oxLo
				}
				shift := kx - d.Pad
				o := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy - d.Pad + ky
					if iy < 0 || iy >= d.H {
						o += d.OutW
						continue
					}
					dst := plane[iy*d.W+oxLo+shift : iy*d.W+oxHi+shift]
					src := row[o+oxLo : o+oxHi]
					if len(src) >= 16 {
						// Each dst element receives exactly one add per tap,
						// so vectorizing the span preserves every per-element
						// accumulation chain bit for bit.
						VecAdd(dst, src)
					} else {
						for i, v := range src {
							dst[i] += v
						}
					}
					o += d.OutW
				}
			}
		}
	}
}
