package tensor

import "fmt"

// ConvDims describes a 2D convolution geometry. H/W are input spatial
// dims; K is the (square) kernel size; Stride and Pad apply to both axes.
type ConvDims struct {
	InC, H, W   int
	OutC, K     int
	Stride, Pad int
	OutH, OutW  int
}

// NewConvDims computes output spatial dimensions and validates geometry.
func NewConvDims(inC, h, w, outC, k, stride, pad int) ConvDims {
	if stride <= 0 || k <= 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry k=%d stride=%d", k, stride))
	}
	outH := (h+2*pad-k)/stride + 1
	outW := (w+2*pad-k)/stride + 1
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("tensor: conv output collapses: in %dx%d k=%d stride=%d pad=%d", h, w, k, stride, pad))
	}
	return ConvDims{InC: inC, H: h, W: w, OutC: outC, K: k, Stride: stride, Pad: pad, OutH: outH, OutW: outW}
}

// Im2Col lowers one image (C,H,W) from x at batch offset into the column
// buffer col of shape (C*K*K, OutH*OutW). Padding cells contribute zeros.
// Stride-1 geometries (every ResNet/VGG 3×3 in this repo) take a fast path
// that bulk-copies the valid span of each output row instead of testing
// bounds per element.
func Im2Col(col []float32, x []float32, d ConvDims) {
	if d.Stride == 1 {
		im2colStride1(col, x, d)
		return
	}
	cols := d.OutH * d.OutW
	idx := 0
	for c := 0; c < d.InC; c++ {
		plane := x[c*d.H*d.W : (c+1)*d.H*d.W]
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := col[idx*cols : (idx+1)*cols]
				idx++
				o := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.Stride - d.Pad + ky
					if iy < 0 || iy >= d.H {
						for ox := 0; ox < d.OutW; ox++ {
							row[o] = 0
							o++
						}
						continue
					}
					base := iy * d.W
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.Stride - d.Pad + kx
						if ix < 0 || ix >= d.W {
							row[o] = 0
						} else {
							row[o] = plane[base+ix]
						}
						o++
					}
				}
			}
		}
	}
}

// im2colStride1 handles stride 1: for each (ky,kx) tap, the input column
// index is ox + kx - Pad, so the in-bounds ox range is a single contiguous
// span copied with copy(); only the padding fringes are written per cell.
func im2colStride1(col []float32, x []float32, d ConvDims) {
	cols := d.OutH * d.OutW
	idx := 0
	for c := 0; c < d.InC; c++ {
		plane := x[c*d.H*d.W : (c+1)*d.H*d.W]
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := col[idx*cols : (idx+1)*cols]
				idx++
				// Valid ox satisfy 0 ≤ ox+kx-Pad < W.
				oxLo := d.Pad - kx
				if oxLo < 0 {
					oxLo = 0
				}
				oxHi := d.W + d.Pad - kx
				if oxHi > d.OutW {
					oxHi = d.OutW
				}
				if oxHi < oxLo {
					oxHi = oxLo
				}
				o := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy - d.Pad + ky
					if iy < 0 || iy >= d.H {
						zero := row[o : o+d.OutW]
						for i := range zero {
							zero[i] = 0
						}
						o += d.OutW
						continue
					}
					base := iy * d.W
					for ox := 0; ox < oxLo; ox++ {
						row[o+ox] = 0
					}
					if oxHi > oxLo {
						copy(row[o+oxLo:o+oxHi], plane[base+oxLo-d.Pad+kx:base+oxHi-d.Pad+kx])
					}
					for ox := oxHi; ox < d.OutW; ox++ {
						row[o+ox] = 0
					}
					o += d.OutW
				}
			}
		}
	}
}

// Im2ColPatch lowers one image (C,H,W) into the patch-major column buffer
// dst of shape (OutH*OutW, C*K*K): row j holds the receptive field of
// output pixel j, laid out in the same (c,ky,kx) order as a filter row of
// the weight matrix. This is the transposed layout of Im2Col, produced
// directly so the convolution forward pass can feed the register-tiled
// dot-product kernel (MatMulTransB) with both operands row-contiguous and
// no packing step.
func Im2ColPatch(dst, x []float32, d ConvDims) {
	if d.K == 3 {
		im2colPatch3(dst, x, d)
		return
	}
	colRows := d.InC * d.K * d.K
	kk := d.K * d.K
	for oy := 0; oy < d.OutH; oy++ {
		for ox := 0; ox < d.OutW; ox++ {
			patch := dst[(oy*d.OutW+ox)*colRows:][:colRows]
			ix0 := ox*d.Stride - d.Pad
			// Valid kx satisfy 0 ≤ ix0+kx < W.
			lo, hi := -ix0, d.W-ix0
			if lo < 0 {
				lo = 0
			}
			if hi > d.K {
				hi = d.K
			}
			if hi < lo {
				hi = lo
			}
			iy0 := oy*d.Stride - d.Pad
			interior := lo == 0 && hi == d.K && iy0 >= 0 && iy0+d.K <= d.H
			for c := 0; c < d.InC; c++ {
				plane := x[c*d.H*d.W:]
				pp := patch[c*kk:][:kk]
				if interior {
					// Fully in-bounds receptive field: no fringe handling.
					// K is tiny (3 or 5 here), so an inline element loop
					// beats a memmove call per row.
					src := plane[iy0*d.W+ix0:]
					for ky := 0; ky < d.K; ky++ {
						row := pp[ky*d.K:][:d.K]
						srow := src[ky*d.W:]
						for i := range row {
							row[i] = srow[i]
						}
					}
					continue
				}
				for ky := 0; ky < d.K; ky++ {
					iy := iy0 + ky
					row := pp[ky*d.K:][:d.K]
					if iy < 0 || iy >= d.H {
						for i := range row {
							row[i] = 0
						}
						continue
					}
					for i := 0; i < lo; i++ {
						row[i] = 0
					}
					if hi > lo {
						srow := plane[iy*d.W+ix0+lo:]
						for i := lo; i < hi; i++ {
							row[i] = srow[i-lo]
						}
					}
					for i := hi; i < d.K; i++ {
						row[i] = 0
					}
				}
			}
		}
	}
}

// im2colPatch3 is Im2ColPatch specialized for 3×3 kernels (every conv in
// the repo's ResNet/VGG models): interior patches — the vast majority —
// copy their nine elements with straight-line unrolled loads, and only the
// padding fringe takes the bounds-checked path.
func im2colPatch3(dst, x []float32, d ConvDims) {
	colRows := d.InC * 9
	hw := d.H * d.W
	w := d.W
	for oy := 0; oy < d.OutH; oy++ {
		iy0 := oy*d.Stride - d.Pad
		for ox := 0; ox < d.OutW; ox++ {
			patch := dst[(oy*d.OutW+ox)*colRows:][:colRows]
			ix0 := ox*d.Stride - d.Pad
			if ix0 >= 0 && ix0+3 <= w && iy0 >= 0 && iy0+3 <= d.H {
				base := iy0*w + ix0
				for c := 0; c < d.InC; c++ {
					src := x[c*hw+base:]
					_ = src[2*w+2]
					pp := patch[c*9:][:9]
					pp[0], pp[1], pp[2] = src[0], src[1], src[2]
					pp[3], pp[4], pp[5] = src[w], src[w+1], src[w+2]
					pp[6], pp[7], pp[8] = src[2*w], src[2*w+1], src[2*w+2]
				}
				continue
			}
			lo, hi := -ix0, w-ix0
			if lo < 0 {
				lo = 0
			}
			if hi > 3 {
				hi = 3
			}
			if hi < lo {
				hi = lo
			}
			for c := 0; c < d.InC; c++ {
				plane := x[c*hw:]
				pp := patch[c*9:][:9]
				for ky := 0; ky < 3; ky++ {
					iy := iy0 + ky
					row := pp[ky*3 : ky*3+3]
					if iy < 0 || iy >= d.H {
						row[0], row[1], row[2] = 0, 0, 0
						continue
					}
					for i := 0; i < lo; i++ {
						row[i] = 0
					}
					if hi > lo {
						srow := plane[iy*w+ix0+lo:]
						for i := lo; i < hi; i++ {
							row[i] = srow[i-lo]
						}
					}
					for i := hi; i < 3; i++ {
						row[i] = 0
					}
				}
			}
		}
	}
}

// Col2Im scatters the column-gradient buffer col (C*K*K, OutH*OutW) back
// into the image gradient dx (C,H,W), accumulating overlapping windows.
// dx must be zeroed by the caller if accumulation from scratch is desired.
func Col2Im(dx []float32, col []float32, d ConvDims) {
	if d.Stride == 1 {
		col2imStride1(dx, col, d)
		return
	}
	cols := d.OutH * d.OutW
	idx := 0
	for c := 0; c < d.InC; c++ {
		plane := dx[c*d.H*d.W : (c+1)*d.H*d.W]
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := col[idx*cols : (idx+1)*cols]
				idx++
				o := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.Stride - d.Pad + ky
					if iy < 0 || iy >= d.H {
						o += d.OutW
						continue
					}
					base := iy * d.W
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.Stride - d.Pad + kx
						if ix >= 0 && ix < d.W {
							plane[base+ix] += row[o]
						}
						o++
					}
				}
			}
		}
	}
}

// col2imStride1 is the stride-1 scatter: the in-bounds ox span is computed
// once per output row, so the accumulate loop runs branch-free.
func col2imStride1(dx []float32, col []float32, d ConvDims) {
	cols := d.OutH * d.OutW
	idx := 0
	for c := 0; c < d.InC; c++ {
		plane := dx[c*d.H*d.W : (c+1)*d.H*d.W]
		for ky := 0; ky < d.K; ky++ {
			for kx := 0; kx < d.K; kx++ {
				row := col[idx*cols : (idx+1)*cols]
				idx++
				oxLo := d.Pad - kx
				if oxLo < 0 {
					oxLo = 0
				}
				oxHi := d.W + d.Pad - kx
				if oxHi > d.OutW {
					oxHi = d.OutW
				}
				if oxHi < oxLo {
					oxHi = oxLo
				}
				shift := kx - d.Pad
				o := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy - d.Pad + ky
					if iy < 0 || iy >= d.H {
						o += d.OutW
						continue
					}
					dst := plane[iy*d.W+oxLo+shift : iy*d.W+oxHi+shift]
					src := row[o+oxLo : o+oxHi]
					for i, v := range src {
						dst[i] += v
					}
					o += d.OutW
				}
			}
		}
	}
}
