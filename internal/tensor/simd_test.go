package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestAVX2PanelMatchesScalar drives the vector and scalar A·Bᵀ panel
// kernels over awkward shapes (remainder rows, remainder columns, tiny k)
// and demands bitwise-identical outputs in both overwrite and accumulate
// modes. On machines without AVX2 the vector path aliases the scalar one
// and the test degenerates to a self-check.
func TestAVX2PanelMatchesScalar(t *testing.T) {
	if !useAVX2 {
		t.Log("AVX2 unavailable; vector path aliases scalar path")
	}
	rng := rand.New(rand.NewSource(11))
	for _, m := range []int{1, 3, 4, 5, 9, 16} {
		for _, k := range []int{1, 4, 7, 17, 144} {
			for _, n := range []int{1, 8, 15, 16, 17, 31, 32, 47, 256} {
				a := make([]float32, m*k)
				b := make([]float32, n*k)
				for i := range a {
					a[i] = float32(rng.NormFloat64())
				}
				for i := range b {
					b[i] = float32(rng.NormFloat64())
				}
				for _, acc := range []bool{false, true} {
					want := make([]float32, m*n)
					got := make([]float32, m*n)
					if acc {
						for i := range want {
							v := float32(rng.NormFloat64())
							want[i], got[i] = v, v
						}
					}
					matmulTransBRowsScalar(want, a, b, 0, m, k, n, acc)
					matmulTransBRowsAVX2(got, a, b, 0, m, k, n, acc)
					for i := range want {
						if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
							t.Fatalf("m=%d k=%d n=%d acc=%v: C[%d] vector %x scalar %x",
								m, k, n, acc, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
						}
					}
				}
			}
		}
	}
}

// TestAVX2PanelPartialRows exercises lo/hi windows that do not start at
// row zero, as produced by Parallel sharding.
func TestAVX2PanelPartialRows(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const m, k, n = 13, 21, 40
	a := make([]float32, m*k)
	b := make([]float32, n*k)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range b {
		b[i] = float32(rng.NormFloat64())
	}
	for _, win := range [][2]int{{0, 13}, {2, 9}, {5, 6}, {3, 13}} {
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		matmulTransBRowsScalar(want, a, b, win[0], win[1], k, n, false)
		matmulTransBRowsAVX2(got, a, b, win[0], win[1], k, n, false)
		for i := range want {
			if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
				t.Fatalf("window %v: C[%d] vector %x scalar %x",
					win, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
}
