package tensor

import "fmt"

// Mask-static sparse GEMM: the zero-skipping kernels in matmul.go pay a
// branch per left-operand element to find the zeros, every call. Under a
// mask-static federation (algo.SSFL) the zero pattern of a weight matrix
// is decided once at mask agreement and then only its *values* change,
// so the pattern can be computed once per mask epoch and the kernels can
// walk precomputed index lists instead of probing.
//
// A MaskPat records the exact nonzero coordinates of an (M,K) matrix in
// both row-major and column-major order. The pattern kernels visit
// exactly the elements the probing kernels visit, in the same ascending
// order, through the same VecAxpy accumulation — so they are bitwise
// identical to matmulRowsSparse / matmulTransAColsSparse by
// construction (skipping must match exactly: accumulating a 0·b term
// the probe kernel skips could flip a -0 to +0).
//
// Invalidation is the caller's job: patterns are derived data, keyed on
// the weight tensor's mutation counter exactly like the packed-panel
// caches in internal/nn (see Param.Bump).

// MaskPat is the precomputed nonzero pattern of an (M,K) row-major
// matrix.
type MaskPat struct {
	M, K int
	// rowOff[i]..rowOff[i+1] index rowIdx: the ascending nonzero column
	// positions of row i.
	rowOff, rowIdx []int32
	// colOff[j]..colOff[j+1] index colIdx: the ascending nonzero row
	// positions of column j.
	colOff, colIdx []int32
}

// NNZ returns the number of nonzero entries recorded.
func (p *MaskPat) NNZ() int { return len(p.rowIdx) }

// Matches reports whether the pattern was built for an (m,k) matrix.
func (p *MaskPat) Matches(m, k int) bool { return p != nil && p.M == m && p.K == k }

// BuildMaskPat scans an (m,k) row-major matrix and records its exact
// nonzero pattern.
func BuildMaskPat(a []float32, m, k int) *MaskPat {
	return BuildMaskPatInto(nil, a, m, k)
}

// BuildMaskPatInto is BuildMaskPat reusing pat's backing slices when
// their capacities suffice. Returns pat (or a fresh pattern when pat is
// nil).
func BuildMaskPatInto(pat *MaskPat, a []float32, m, k int) *MaskPat {
	if len(a) < m*k {
		panic(fmt.Sprintf("tensor: BuildMaskPat operand %d short of %dx%d", len(a), m, k))
	}
	if pat == nil {
		pat = &MaskPat{}
	}
	pat.M, pat.K = m, k
	pat.rowOff = sizeI32(pat.rowOff, m+1)
	pat.colOff = sizeI32(pat.colOff, k+1)
	// First pass: count nonzeros per row and per column.
	colCount := pat.colOff // reuse as the counting buffer, shifted below
	for j := range colCount {
		colCount[j] = 0
	}
	nnz := 0
	for i := 0; i < m; i++ {
		pat.rowOff[i] = int32(nnz)
		row := a[i*k : i*k+k]
		for j, v := range row {
			if v != 0 {
				nnz++
				colCount[j+1]++
			}
		}
	}
	pat.rowOff[m] = int32(nnz)
	pat.rowIdx = sizeI32(pat.rowIdx, nnz)
	pat.colIdx = sizeI32(pat.colIdx, nnz)
	// Prefix-sum the column counts into offsets.
	for j := 1; j <= k; j++ {
		colCount[j] += colCount[j-1]
	}
	// Second pass: fill both index lists. Scanning rows in ascending
	// order fills each column's list in ascending row order.
	cursor := make([]int32, k)
	copy(cursor, colCount[:k])
	ri := 0
	for i := 0; i < m; i++ {
		row := a[i*k : i*k+k]
		for j, v := range row {
			if v != 0 {
				pat.rowIdx[ri] = int32(j)
				ri++
				pat.colIdx[cursor[j]] = int32(i)
				cursor[j]++
			}
		}
	}
	return pat
}

// sizeI32 returns dst resized to length n, reusing its backing array
// when the capacity suffices.
func sizeI32(dst []int32, n int) []int32 {
	if cap(dst) >= n {
		return dst[:n]
	}
	return make([]int32, n)
}

// MatMulMaskPatSlice computes C = W·B for the (M,K) matrix W whose
// nonzero pattern is pat, B (K,n), C (M,n) fully overwritten — the
// mask-static form of MatMulSparseSlice, bitwise identical to it when
// pat records W's exact zeros.
func MatMulMaskPatSlice(c, w, b []float32, pat *MaskPat, n int) {
	k := pat.K
	for i := 0; i < pat.M; i++ {
		ci := c[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
		wi := w[i*k : i*k+k]
		for _, p := range pat.rowIdx[pat.rowOff[i]:pat.rowOff[i+1]] {
			// Same VecAxpy, same ascending-p order as matmulRowsSparse.
			VecAxpy(ci, b[int(p)*n:int(p)*n+n], wi[p])
		}
	}
}

// MatMulTransAMaskPatSlice computes C = Wᵀ·B for the (M,K) matrix W
// whose nonzero pattern is pat, B (M,n), C (K,n) fully overwritten —
// the mask-static form of MatMulTransASparseSlice, bitwise identical to
// it when pat records W's exact zeros.
func MatMulTransAMaskPatSlice(c, w, b []float32, pat *MaskPat, n int) {
	k := pat.K
	for i := 0; i < k; i++ {
		ci := c[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
		for _, p := range pat.colIdx[pat.colOff[i]:pat.colOff[i+1]] {
			// Same VecAxpy, same ascending-p order as matmulTransAColsSparse.
			VecAxpy(ci, b[int(p)*n:int(p)*n+n], w[int(p)*k+i])
		}
	}
}

// MatMulTransBMaskPatSlice computes C = A·Wᵀ for A (m, K) and the (M,K)
// pattern-carrying matrix W, C (m, M) fully overwritten. Each output is
// a gather-dot over row i's nonzero positions in ascending order — the
// mask-static sparse form of the packed A·Bᵀ kernel used by linear
// layers. It sums exactly the nonzero terms of the dense dot product.
func MatMulTransBMaskPatSlice(c, a, w []float32, pat *MaskPat, m int) {
	k, outs := pat.K, pat.M
	for i := 0; i < m; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*outs : i*outs+outs]
		for j := 0; j < outs; j++ {
			wj := w[j*k : j*k+k]
			var s float32
			for _, p := range pat.rowIdx[pat.rowOff[j]:pat.rowOff[j+1]] {
				s += ai[p] * wj[p]
			}
			ci[j] = s
		}
	}
}

// MatMulMaskPatRightSlice computes C = A·W for A (m, M) and the (M,K)
// pattern-carrying matrix W, C (m, K) fully overwritten. Each output is
// a gather-dot over column j's nonzero rows in ascending order — the
// mask-static sparse form of the dx = dout·W backward GEMM.
func MatMulMaskPatRightSlice(c, a, w []float32, pat *MaskPat, m int) {
	k, ins := pat.K, pat.M
	for i := 0; i < m; i++ {
		ai := a[i*ins : i*ins+ins]
		ci := c[i*k : i*k+k]
		for j := 0; j < k; j++ {
			var s float32
			for _, p := range pat.colIdx[pat.colOff[j]:pat.colOff[j+1]] {
				s += ai[p] * w[int(p)*k+j]
			}
			ci[j] = s
		}
	}
}
