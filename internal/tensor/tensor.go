// Package tensor implements the dense float32 tensor math that underpins
// the neural-network substrate. It is deliberately small: row-major dense
// tensors, parallel blocked matrix multiply, im2col/col2im for convolution
// lowering, elementwise kernels and reductions. Everything is stdlib-only.
//
// Tensors are mutable value containers: the Data slice is shared on View
// and Reshape, copied on Clone. Shapes are immutable after construction
// except through Reshape, which validates the element count.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Data  []float32
	shape []int

	// version counts mutations observed through this header; caches of
	// derived forms (packed weight panels, transposes) key on it to know
	// when to refill. Mutating methods bump it automatically; code that
	// writes Data directly must call MarkMutated afterwards or derived
	// caches go stale. Views made with Reshape/FromSlice have their own
	// counter — mutate a cached tensor through its canonical header.
	version uint64
}

// Version returns the mutation counter consumed by derived-form caches.
func (t *Tensor) Version() uint64 { return t.version }

// MarkMutated records a direct write to Data so version-keyed caches of
// derived forms (packed panels, transposes) refill on next use.
func (t *Tensor) MarkMutated() { t.version++ }

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Data: make([]float32, n), shape: append([]int(nil), shape...)}
}

// Reuse returns t when it already has exactly the given shape — contents
// preserved, NOT zeroed — otherwise a fresh zero-filled tensor. Layers
// use it to recycle activation/gradient buffers across training steps;
// callers must fully overwrite (or explicitly zero) the returned data,
// and must not hand the buffer to code that outlives the next call.
func Reuse(t *Tensor, shape ...int) *Tensor {
	if t == nil || len(t.shape) != len(shape) {
		return New(shape...)
	}
	for i, d := range shape {
		if t.shape[i] != d {
			return New(shape...)
		}
	}
	return t
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{Data: data, shape: append([]int(nil), shape...)}
}

// Shape returns the tensor's dimensions. The returned slice must not be
// mutated by the caller.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
	t.version++
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of equal
// element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elements) to %v (%d elements)", t.shape, len(t.Data), shape, n))
	}
	return &Tensor{Data: t.Data, shape: append([]int(nil), shape...)}
}

// Zero sets all elements to 0 in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
	t.version++
}

// Fill sets all elements to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
	t.version++
}

// CopyFrom copies src's data into t. Shapes must have equal element count.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(t.Data) != len(src.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %d vs %d", len(t.Data), len(src.Data)))
	}
	copy(t.Data, src.Data)
	t.version++
}

// Randn fills t with N(0, std²) samples from rng.
func (t *Tensor) Randn(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
	t.version++
}

// Uniform fills t with U(lo, hi) samples from rng.
func (t *Tensor) Uniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	t.version++
}

// KaimingNormal fills t with He-normal initialization for a layer with the
// given fan-in (suitable for ReLU networks).
func (t *Tensor) KaimingNormal(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	t.Randn(rng, std)
}

// AddInPlace computes t += other elementwise.
func (t *Tensor) AddInPlace(other *Tensor) {
	checkSameLen(t, other, "AddInPlace")
	VecAdd(t.Data, other.Data)
	t.version++
}

// SubInPlace computes t -= other elementwise.
func (t *Tensor) SubInPlace(other *Tensor) {
	checkSameLen(t, other, "SubInPlace")
	VecSub(t.Data, other.Data)
	t.version++
}

// MulInPlace computes t *= other elementwise.
func (t *Tensor) MulInPlace(other *Tensor) {
	checkSameLen(t, other, "MulInPlace")
	for i, v := range other.Data {
		t.Data[i] *= v
	}
	t.version++
}

// Scale computes t *= s.
func (t *Tensor) Scale(s float32) {
	VecScale(t.Data, s)
	t.version++
}

// Axpy computes t += a*x (like BLAS axpy).
func (t *Tensor) Axpy(a float32, x *Tensor) {
	checkSameLen(t, x, "Axpy")
	VecAxpy(t.Data, x.Data, a)
	t.version++
}

// Add returns t + other as a new tensor.
func (t *Tensor) Add(other *Tensor) *Tensor {
	out := t.Clone()
	out.AddInPlace(other)
	return out
}

// Sub returns t - other as a new tensor.
func (t *Tensor) Sub(other *Tensor) *Tensor {
	out := t.Clone()
	out.SubInPlace(other)
	return out
}

// Dot returns the inner product of t and other viewed as flat vectors.
func (t *Tensor) Dot(other *Tensor) float64 {
	checkSameLen(t, other, "Dot")
	var s float64
	for i, v := range t.Data {
		s += float64(v) * float64(other.Data[i])
	}
	return s
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// AbsSum returns the L1 norm of the flattened tensor.
func (t *Tensor) AbsSum() float64 {
	var s float64
	for _, v := range t.Data {
		s += math.Abs(float64(v))
	}
	return s
}

// Norm2 returns the Euclidean norm of the flattened tensor.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// MaxIndex returns the index of the maximum element of the flat tensor.
func (t *Tensor) MaxIndex() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Equal reports whether two tensors have identical shape and data.
func (t *Tensor) Equal(other *Tensor) bool {
	if len(t.shape) != len(other.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != other.shape[i] {
			return false
		}
	}
	for i := range t.Data {
		if t.Data[i] != other.Data[i] {
			return false
		}
	}
	return true
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v", t.shape)
}

func checkSameLen(a, b *Tensor, op string) {
	if len(a.Data) != len(b.Data) {
		panic(fmt.Sprintf("tensor: %s length mismatch %d vs %d", op, len(a.Data), len(b.Data)))
	}
}
