package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape())
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 3)
	if got := x.At(2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if x.Data[2*4+3] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestFromSliceValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched data length")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 1)
	if x.At(0, 1) != 99 {
		t.Fatal("Reshape must share underlying data")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 42
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{10, 20, 30}, 3)
	s := a.Add(b)
	want := []float32{11, 22, 33}
	for i := range want {
		if s.Data[i] != want[i] {
			t.Fatalf("Add[%d] = %v, want %v", i, s.Data[i], want[i])
		}
	}
	d := b.Sub(a)
	for i, w := range []float32{9, 18, 27} {
		if d.Data[i] != w {
			t.Fatalf("Sub[%d] = %v, want %v", i, d.Data[i], w)
		}
	}
	a.Scale(2)
	if a.Data[2] != 6 {
		t.Fatal("Scale failed")
	}
	a.Axpy(0.5, b) // a = [2,4,6] + 0.5*[10,20,30] = [7,14,21]
	if a.Data[0] != 7 || a.Data[2] != 21 {
		t.Fatalf("Axpy got %v", a.Data)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{-1, 2, -3, 4}, 4)
	if x.Sum() != 2 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.AbsSum() != 10 {
		t.Fatalf("AbsSum = %v", x.AbsSum())
	}
	if got := x.Norm2(); math.Abs(got-math.Sqrt(30)) > 1e-6 {
		t.Fatalf("Norm2 = %v", got)
	}
	if x.MaxIndex() != 3 {
		t.Fatalf("MaxIndex = %d", x.MaxIndex())
	}
	y := FromSlice([]float32{1, 0, 2, 0}, 4)
	if got := x.Dot(y); got != -7 {
		t.Fatalf("Dot = %v", got)
	}
}

func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			c.Set(s, i, j)
		}
	}
	return c
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 7, 3}, {16, 16, 16}, {65, 40, 70}, {130, 33, 90}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := New(m, k), New(k, n)
		a.Randn(rng, 1)
		b.Randn(rng, 1)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		for i := range want.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
				t.Fatalf("MatMul(%dx%dx%d) mismatch at %d: %v vs %v", m, k, n, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulTransBMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b := New(9, 5), New(11, 5)
	a.Randn(rng, 1)
	b.Randn(rng, 1)
	got := MatMulTransB(a, b)
	// naive: bT is (5,11)
	bt := New(5, 11)
	for i := 0; i < 11; i++ {
		for j := 0; j < 5; j++ {
			bt.Set(b.At(i, j), j, i)
		}
	}
	want := naiveMatMul(a, bt)
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("MatMulTransB mismatch at %d", i)
		}
	}
}

func TestMatMulTransAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := New(6, 9), New(6, 7) // Aᵀ is (9,6)
	a.Randn(rng, 1)
	b.Randn(rng, 1)
	got := MatMulTransA(a, b)
	at := New(9, 6)
	for i := 0; i < 6; i++ {
		for j := 0; j < 9; j++ {
			at.Set(a.At(i, j), j, i)
		}
	}
	want := naiveMatMul(at, b)
	for i := range want.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-4 {
			t.Fatalf("MatMulTransA mismatch at %d", i)
		}
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// Property: (A·B)·x == A·(B·x) for random small matrices (associativity
// of the implementation, checked against itself via vector application).
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 2+rng.Intn(6), 2+rng.Intn(6), 2+rng.Intn(6)
		a, b, x := New(m, k), New(k, n), New(n, 1)
		a.Randn(rng, 1)
		b.Randn(rng, 1)
		x.Randn(rng, 1)
		left := MatMul(MatMul(a, b), x)
		right := MatMul(a, MatMul(b, x))
		for i := range left.Data {
			if math.Abs(float64(left.Data[i]-right.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: col must equal the input plane.
	d := NewConvDims(2, 3, 3, 1, 1, 1, 0)
	x := make([]float32, 2*3*3)
	for i := range x {
		x[i] = float32(i)
	}
	col := make([]float32, d.InC*d.K*d.K*d.OutH*d.OutW)
	Im2Col(col, x, d)
	for i := range x {
		if col[i] != x[i] {
			t.Fatalf("identity im2col mismatch at %d: %v vs %v", i, col[i], x[i])
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	d := NewConvDims(1, 2, 2, 1, 3, 1, 1)
	x := []float32{1, 2, 3, 4}
	col := make([]float32, d.InC*d.K*d.K*d.OutH*d.OutW)
	Im2Col(col, x, d)
	// Output is 2x2. First kernel cell (ky=0,kx=0) touches positions that
	// are padding for output (0,0): value must be 0; for output (1,1) it
	// reads input (0,0) = 1.
	cols := d.OutH * d.OutW
	if col[0] != 0 {
		t.Fatalf("pad cell should be 0, got %v", col[0])
	}
	if col[cols-1] != 1 {
		t.Fatalf("kernel (0,0) at output (1,1) should read x[0]=1, got %v", col[cols-1])
	}
}

// Property: Col2Im is the adjoint of Im2Col — <Im2Col(x), c> == <x, Col2Im(c)>.
// This is exactly the relationship conv backprop relies on.
func TestIm2ColCol2ImAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 3 + rng.Intn(4)
		w := 3 + rng.Intn(4)
		k := 1 + rng.Intn(3)
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(2)
		inC := 1 + rng.Intn(3)
		if h+2*pad < k || w+2*pad < k {
			return true
		}
		d := NewConvDims(inC, h, w, 1, k, stride, pad)
		n := inC * h * w
		cn := inC * k * k * d.OutH * d.OutW
		x := make([]float32, n)
		c := make([]float32, cn)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		for i := range c {
			c[i] = float32(rng.NormFloat64())
		}
		colX := make([]float32, cn)
		Im2Col(colX, x, d)
		imC := make([]float32, n)
		Col2Im(imC, c, d)
		var lhs, rhs float64
		for i := range colX {
			lhs += float64(colX[i]) * float64(c[i])
		}
		for i := range x {
			rhs += float64(x[i]) * float64(imC[i])
		}
		return math.Abs(lhs-rhs) <= 1e-3*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestNewConvDimsOutputShape(t *testing.T) {
	d := NewConvDims(3, 32, 32, 16, 3, 1, 1)
	if d.OutH != 32 || d.OutW != 32 {
		t.Fatalf("same-pad 3x3 should keep 32x32, got %dx%d", d.OutH, d.OutW)
	}
	d = NewConvDims(16, 32, 32, 32, 3, 2, 1)
	if d.OutH != 16 || d.OutW != 16 {
		t.Fatalf("stride-2 should halve, got %dx%d", d.OutH, d.OutW)
	}
}

func TestParallelCoversRangeOnce(t *testing.T) {
	n := 1000
	seen := make([]int32, n)
	Parallel(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, v := range seen {
		if v != 1 {
			t.Fatalf("index %d visited %d times", i, v)
		}
	}
}

func TestRandnDeterministic(t *testing.T) {
	a, b := New(100), New(100)
	a.Randn(rand.New(rand.NewSource(7)), 1)
	b.Randn(rand.New(rand.NewSource(7)), 1)
	if !a.Equal(b) {
		t.Fatal("same seed must give identical tensors")
	}
}

func TestKaimingNormalScale(t *testing.T) {
	x := New(100000)
	x.KaimingNormal(rand.New(rand.NewSource(9)), 50)
	var s float64
	for _, v := range x.Data {
		s += float64(v) * float64(v)
	}
	std := math.Sqrt(s / float64(x.Len()))
	want := math.Sqrt(2.0 / 50.0)
	if math.Abs(std-want) > 0.01 {
		t.Fatalf("empirical std %v, want ~%v", std, want)
	}
}

func TestMulInPlaceAndFill(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{2, 0.5, -1}, 3)
	a.MulInPlace(b)
	if a.Data[0] != 2 || a.Data[1] != 1 || a.Data[2] != -3 {
		t.Fatalf("MulInPlace gave %v", a.Data)
	}
	a.Fill(7)
	for _, v := range a.Data {
		if v != 7 {
			t.Fatal("Fill failed")
		}
	}
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
}

func TestCopyFromAndString(t *testing.T) {
	a := New(2, 2)
	b := FromSlice([]float32{1, 2, 3, 4}, 4)
	a.CopyFrom(b) // same element count, different shape is allowed
	if a.At(1, 1) != 4 {
		t.Fatal("CopyFrom failed")
	}
	if a.String() != "Tensor[2 2]" {
		t.Fatalf("String = %q", a.String())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size mismatch")
		}
	}()
	a.CopyFrom(New(3))
}

func TestReshapePanicsOnCountMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestNewPanicsOnNonPositiveDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 0)
}

func TestUniformRange(t *testing.T) {
	x := New(10000)
	x.Uniform(rand.New(rand.NewSource(5)), -2, 3)
	lo, hi := x.Data[0], x.Data[0]
	for _, v := range x.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo < -2 || hi > 3 {
		t.Fatalf("Uniform out of range [%v,%v]", lo, hi)
	}
	if hi-lo < 4 {
		t.Fatalf("Uniform did not cover the range: [%v,%v]", lo, hi)
	}
}

func TestEqualShapeSensitivity(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{1, 2, 3, 4}, 4)
	if a.Equal(b) {
		t.Fatal("different shapes must not be Equal")
	}
	c := FromSlice([]float32{1, 2, 3, 5}, 2, 2)
	if a.Equal(c) {
		t.Fatal("different data must not be Equal")
	}
}
