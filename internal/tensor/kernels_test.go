package tensor

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// fillRand fills t with reproducible values in [-2,2), avoiding exact zeros
// so the dense kernels are exercised (the sparse probe stays well below
// threshold).
func fillRand(t *Tensor, rng *rand.Rand) {
	for i := range t.Data {
		v := rng.Float32()*4 - 2
		if v == 0 {
			v = 0.5
		}
		t.Data[i] = v
	}
}

// oddShapes crosses every kernel boundary: m below/at/above packMinRows
// (axpy fallback vs packed dot kernel), n below/at/above the 4-column tile
// and the jcPanel width, odd k, and degenerate m=1 / n=1 / k=1 cases.
var oddShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{1, 64, 33},
	{2, 3, 5},
	{3, 17, 2},
	{5, 31, 7},
	{7, 16, 5},    // m = packMinRows-1: last axpy-fallback size
	{8, 16, 5},    // m = packMinRows: first packed size
	{9, 33, 17},   // odd everything above the pack threshold
	{13, 5, 1},    // packed with single-column tail
	{16, 144, 36}, // conv-like shape, n not a multiple of 4
	{17, 9, 31},   // n just under jcPanel
	{10, 8, 32},   // n exactly jcPanel
	{11, 8, 37},   // n crossing one panel boundary
	{33, 65, 67},  // multiple panels with tails in every dimension
}

func TestMatMulKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, s := range oddShapes {
		a := New(s.m, s.k)
		b := New(s.k, s.n)
		fillRand(a, rng)
		fillRand(b, rng)
		want := RefMatMul(a, b)

		got := MatMul(a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("MatMul(%dx%dx%d)[%d] = %v, ref %v", s.m, s.k, s.n, i, got.Data[i], want.Data[i])
			}
		}

		into := New(s.m, s.n)
		fillRand(into, rng) // must be fully overwritten
		MatMulInto(into, a, b)
		for i := range want.Data {
			if into.Data[i] != want.Data[i] {
				t.Fatalf("MatMulInto(%dx%dx%d)[%d] = %v, ref %v", s.m, s.k, s.n, i, into.Data[i], want.Data[i])
			}
		}

		cs := make([]float32, s.m*s.n)
		MatMulSlice(cs, a.Data, b.Data, s.m, s.k, s.n)
		for i := range want.Data {
			if cs[i] != want.Data[i] {
				t.Fatalf("MatMulSlice(%dx%dx%d)[%d] = %v, ref %v", s.m, s.k, s.n, i, cs[i], want.Data[i])
			}
		}
	}
}

func TestMatMulTransBKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range oddShapes {
		a := New(s.m, s.k)
		b := New(s.n, s.k)
		fillRand(a, rng)
		fillRand(b, rng)
		want := RefMatMulTransB(a, b)

		got := MatMulTransB(a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("MatMulTransB(%dx%dx%d)[%d] = %v, ref %v", s.m, s.k, s.n, i, got.Data[i], want.Data[i])
			}
		}

		into := New(s.m, s.n)
		fillRand(into, rng)
		MatMulTransBInto(into, a, b)
		for i := range want.Data {
			if into.Data[i] != want.Data[i] {
				t.Fatalf("MatMulTransBInto(%dx%dx%d)[%d] = %v, ref %v", s.m, s.k, s.n, i, into.Data[i], want.Data[i])
			}
		}
	}
}

func TestMatMulTransBAccBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, s := range oddShapes {
		a := New(s.m, s.k)
		b := New(s.n, s.k)
		fillRand(a, rng)
		fillRand(b, rng)
		init := New(s.m, s.n)
		fillRand(init, rng)

		// Reference: materialize the product, then add once per element —
		// the rounding the Acc kernel promises to reproduce bitwise.
		prod := RefMatMulTransB(a, b)
		want := make([]float32, s.m*s.n)
		for i := range want {
			want[i] = init.Data[i] + prod.Data[i]
		}

		got := make([]float32, s.m*s.n)
		copy(got, init.Data)
		MatMulTransBAccSlice(got, a.Data, b.Data, s.m, s.k, s.n)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("MatMulTransBAccSlice(%dx%dx%d)[%d] = %v, want %v", s.m, s.k, s.n, i, got[i], want[i])
			}
		}
	}
}

func TestMatMulTransAKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, s := range oddShapes {
		a := New(s.k, s.m)
		b := New(s.k, s.n)
		fillRand(a, rng)
		fillRand(b, rng)
		want := RefMatMulTransA(a, b)

		got := MatMulTransA(a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("MatMulTransA(%dx%dx%d)[%d] = %v, ref %v", s.m, s.k, s.n, i, got.Data[i], want.Data[i])
			}
		}

		into := New(s.m, s.n)
		fillRand(into, rng)
		MatMulTransAInto(into, a, b)
		for i := range want.Data {
			if into.Data[i] != want.Data[i] {
				t.Fatalf("MatMulTransAInto(%dx%dx%d)[%d] = %v, ref %v", s.m, s.k, s.n, i, into.Data[i], want.Data[i])
			}
		}

		cs := make([]float32, s.m*s.n)
		MatMulTransASlice(cs, a.Data, b.Data, s.m, s.k, s.n)
		for i := range want.Data {
			if cs[i] != want.Data[i] {
				t.Fatalf("MatMulTransASlice(%dx%dx%d)[%d] = %v, ref %v", s.m, s.k, s.n, i, cs[i], want.Data[i])
			}
		}
	}
}

// TestMatMulSparsePath drives the zero-skipping kernels with a left operand
// sparse enough (~80% zeros) to trip the probe, the shape SPATL's pruned
// filter matrices take.
func TestMatMulSparsePath(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, s := range []struct{ m, k, n int }{{9, 33, 17}, {16, 64, 40}, {3, 12, 5}} {
		a := New(s.m, s.k)
		b := New(s.k, s.n)
		fillRand(a, rng)
		fillRand(b, rng)
		for i := range a.Data {
			if rng.Float32() < 0.8 {
				a.Data[i] = 0
			}
		}
		if !IsSparse(a.Data) {
			t.Fatalf("test operand (%dx%d) not classified sparse", s.m, s.k)
		}

		want := RefMatMul(a, b)
		got := MatMul(a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("sparse MatMul(%dx%dx%d)[%d] = %v, ref %v", s.m, s.k, s.n, i, got.Data[i], want.Data[i])
			}
		}

		at := New(s.k, s.m)
		TransposeSlice(at.Data, a.Data, s.m, s.k)
		wantTA := RefMatMulTransA(at, b)
		gotTA := make([]float32, s.m*s.n)
		MatMulTransASlice(gotTA, at.Data, b.Data, s.m, s.k, s.n)
		for i := range wantTA.Data {
			if gotTA[i] != wantTA.Data[i] {
				t.Fatalf("sparse MatMulTransASlice(%dx%dx%d)[%d] = %v, ref %v", s.m, s.k, s.n, i, gotTA[i], wantTA.Data[i])
			}
		}
	}
}

// TestIm2ColPatchMatchesTranspose checks the patch-major lowering against
// the transposed row-major lowering across geometries covering both the
// K=3 specialization and the generic path, with and without padding fringes
// and strides.
func TestIm2ColPatchMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	geoms := []ConvDims{
		NewConvDims(3, 7, 5, 4, 3, 1, 1),
		NewConvDims(2, 8, 8, 4, 3, 2, 1),
		NewConvDims(1, 5, 5, 2, 5, 1, 2),
		NewConvDims(2, 6, 7, 3, 2, 1, 0),
		NewConvDims(4, 16, 16, 8, 3, 1, 1),
		NewConvDims(1, 4, 4, 1, 3, 1, 2), // pad wider than the image fringe
	}
	for _, d := range geoms {
		x := make([]float32, d.InC*d.H*d.W)
		for i := range x {
			x[i] = rng.Float32()*2 - 1
		}
		colRows := d.InC * d.K * d.K
		cols := d.OutH * d.OutW
		col := make([]float32, colRows*cols)
		Im2Col(col, x, d)
		want := make([]float32, cols*colRows)
		TransposeSlice(want, col, colRows, cols)

		got := make([]float32, cols*colRows)
		for i := range got {
			got[i] = -999 // every slot must be written
		}
		Im2ColPatch(got, x, d)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Im2ColPatch %+v: element %d = %v, want %v", d, i, got[i], want[i])
			}
		}
	}
}

// TestParallelPoolHammer runs many concurrent Parallel invocations (with
// nesting) under an elevated GOMAXPROCS and checks every invocation covers
// its index range exactly once. Run with -race this also proves the pool
// hands out disjoint chunks.
func TestParallelPoolHammer(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	const callers = 8
	const iters = 100
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				n := 1 + (g*131+it*17)%997
				marks := make([]int32, n)
				Parallel(n, func(lo, hi int) {
					// Nested region exercises deadlock freedom when all
					// workers are already busy.
					Parallel(4, func(_, _ int) {})
					for i := lo; i < hi; i++ {
						marks[i]++
					}
				})
				for i, m := range marks {
					if m != 1 {
						t.Errorf("caller %d iter %d: index %d visited %d times", g, it, i, m)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestParallelDeterministicChunks verifies the determinism contract: chunk
// boundaries are a pure function of (n, GOMAXPROCS).
func TestParallelDeterministicChunks(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	boundaries := func(n int) map[[2]int]bool {
		var mu sync.Mutex
		m := map[[2]int]bool{}
		Parallel(n, func(lo, hi int) {
			mu.Lock()
			m[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return m
	}
	for _, n := range []int{1, 3, 7, 64, 1000} {
		b1, b2 := boundaries(n), boundaries(n)
		if len(b1) != len(b2) {
			t.Fatalf("n=%d: chunk count varies between runs: %d vs %d", n, len(b1), len(b2))
		}
		for k := range b1 {
			if !b2[k] {
				t.Fatalf("n=%d: chunk %v present in one run only", n, k)
			}
		}
	}
}

// TestScratchPoolHammer checks concurrent Get/Put cycles return correctly
// sized, privately owned buffers. Under -race it proves buffers are never
// handed to two goroutines at once.
func TestScratchPoolHammer(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	var fail atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 500; it++ {
				n := 1 + (g*977+it*31)%5000
				s := GetScratch(n)
				if len(s) != n {
					fail.Add(1)
					return
				}
				tag := float32(g*1000000 + it)
				for i := range s {
					s[i] = tag
				}
				for i := range s {
					if s[i] != tag {
						fail.Add(1)
						return
					}
				}
				PutScratch(s)
			}
		}(g)
	}
	wg.Wait()
	if fail.Load() != 0 {
		t.Fatalf("%d goroutines observed a corrupted or mis-sized scratch buffer", fail.Load())
	}
}

func TestGetScratchEdgeSizes(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1 << scratchMinBits, (1 << 20) + 1} {
		s := GetScratch(n)
		if len(s) != n {
			t.Fatalf("GetScratch(%d) returned len %d", n, len(s))
		}
		PutScratch(s)
	}
	PutScratch(nil)                  // must not panic
	PutScratch(make([]float32, 3))   // below pooled minimum: dropped
	PutScratch(make([]float32, 100)) // non-power-of-two cap is fine
}
