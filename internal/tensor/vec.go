package tensor

// Vec kernels: the SIMD elementwise layer under the training hot path.
// Every kernel is elementwise — no cross-element reduction — so the AVX2
// paths apply the identical IEEE operation sequence per element as the
// scalar loops (multiply/add/subtract in source order, no FMA
// contraction, no reassociation) and the two paths are bitwise
// interchangeable. Reductions (sums, norms, means) deliberately stay
// scalar in their callers: vectorizing them would change summation
// order and break the repository-wide determinism contract.
//
// Dispatch mirrors the matmul tile: a startup CPUID probe (useAVX2)
// selects the assembly body for the 8-wide (float32) / 4-wide
// (float64-compute) head of each slice; remainders and short slices run
// the scalar loop. Scalar ground truths are retained in ref.go
// (RefVec*) and the equivalence tests demand exact equality, including
// NaN, signed-zero and denormal inputs.

// vecMinLen is the slice length below which the call overhead of the
// assembly kernel is not worth paying; short slices run scalar.
const vecMinLen = 16

// VecAxpy computes y += a*x elementwise (BLAS axpy).
func VecAxpy(y, x []float32, a float32) {
	x = x[:len(y)]
	if useAVX2 && len(y) >= vecMinLen {
		n := len(y) &^ 7
		vecAxpyAsm(&y[0], &x[0], n, a)
		y, x = y[n:], x[n:]
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// VecScale computes x *= a elementwise.
func VecScale(x []float32, a float32) {
	if useAVX2 && len(x) >= vecMinLen {
		n := len(x) &^ 7
		vecScaleAsm(&x[0], n, a)
		x = x[n:]
	}
	for i := range x {
		x[i] *= a
	}
}

// VecAdd computes dst += src elementwise.
func VecAdd(dst, src []float32) {
	src = src[:len(dst)]
	if useAVX2 && len(dst) >= vecMinLen {
		n := len(dst) &^ 7
		vecAddAsm(&dst[0], &src[0], n)
		dst, src = dst[n:], src[n:]
	}
	for i, v := range src {
		dst[i] += v
	}
}

// VecSub computes dst -= src elementwise.
func VecSub(dst, src []float32) {
	src = src[:len(dst)]
	if useAVX2 && len(dst) >= vecMinLen {
		n := len(dst) &^ 7
		vecSubAsm(&dst[0], &src[0], n)
		dst, src = dst[n:], src[n:]
	}
	for i, v := range src {
		dst[i] -= v
	}
}

// VecBiasAdd computes dst += b (scalar broadcast) elementwise — the bias
// row update of linear and convolution layers.
func VecBiasAdd(dst []float32, b float32) {
	if useAVX2 && len(dst) >= vecMinLen {
		n := len(dst) &^ 7
		vecBiasAddAsm(&dst[0], n, b)
		dst = dst[n:]
	}
	for i := range dst {
		dst[i] += b
	}
}

// VecCopyBias computes dst = src + b (scalar broadcast) elementwise —
// the fused copy-out of the batched convolution GEMM with the bias
// folded into the single store.
func VecCopyBias(dst, src []float32, b float32) {
	src = src[:len(dst)]
	if useAVX2 && len(dst) >= vecMinLen {
		n := len(dst) &^ 7
		vecCopyBiasAsm(&dst[0], &src[0], n, b)
		dst, src = dst[n:], src[n:]
	}
	for i, v := range src {
		dst[i] = v + b
	}
}

// VecReLU computes out[i] = x[i] if x[i] > 0 else 0. The vector body
// uses a quiet greater-than compare and a bitwise AND, reproducing the
// scalar branch exactly: positive lanes keep their bit pattern, all
// others (negatives, both zeros, NaN) become +0.
func VecReLU(out, x []float32) {
	x = x[:len(out)]
	if useAVX2 && len(out) >= vecMinLen {
		n := len(out) &^ 7
		vecReLUAsm(&out[0], &x[0], n)
		out, x = out[n:], x[n:]
	}
	for i, v := range x {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// VecReLUBwd computes dx[i] = dout[i] if x[i] > 0 else 0 — the ReLU
// gradient gate, masked by the forward input.
func VecReLUBwd(dx, dout, x []float32) {
	dout = dout[:len(dx)]
	x = x[:len(dx)]
	if useAVX2 && len(dx) >= vecMinLen {
		n := len(dx) &^ 7
		vecReLUBwdAsm(&dx[0], &dout[0], &x[0], n)
		dx, dout, x = dx[n:], dout[n:], x[n:]
	}
	for i, v := range dout {
		if x[i] > 0 {
			dx[i] = v
		} else {
			dx[i] = 0
		}
	}
}

// VecSGDStep applies one plain SGD update: w -= lr*(g + wd*w).
func VecSGDStep(w, g []float32, lr, wd float32) {
	g = g[:len(w)]
	if useAVX2 && len(w) >= vecMinLen {
		n := len(w) &^ 7
		vecSGDAsm(&w[0], &g[0], n, lr, wd)
		w, g = w[n:], g[n:]
	}
	for i, gv := range g {
		w[i] -= lr * (gv + wd*w[i])
	}
}

// VecSGDMomStep applies one classical-momentum SGD update:
//
//	gj = g + wd*w ; v = mu*v + gj ; w -= lr*v
//
// fusing the three elementwise passes of the scalar optimizer loop into
// one, with identical per-element operation order.
func VecSGDMomStep(w, v, g []float32, lr, wd, mu float32) {
	v = v[:len(w)]
	g = g[:len(w)]
	if useAVX2 && len(w) >= vecMinLen {
		n := len(w) &^ 7
		vecSGDMomAsm(&w[0], &v[0], &g[0], n, lr, wd, mu)
		w, v, g = w[n:], v[n:], g[n:]
	}
	for i, gv := range g {
		gj := gv + wd*w[i]
		v[i] = mu*v[i] + gj
		w[i] -= lr * v[i]
	}
}

// VecAddDiff computes dst += a - b elementwise — the SCAFFOLD/SPATL
// control-variate gradient correction g += c − cᵢ.
func VecAddDiff(dst, a, b []float32) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	if useAVX2 && len(dst) >= vecMinLen {
		n := len(dst) &^ 7
		vecAddDiffAsm(&dst[0], &a[0], &b[0], n)
		dst, a, b = dst[n:], a[n:], b[n:]
	}
	for i := range dst {
		dst[i] += a[i] - b[i]
	}
}

// VecAxpyDiff computes dst += m*(a - b) elementwise — FedProx's proximal
// gradient term μ(w − w_global).
func VecAxpyDiff(dst, a, b []float32, m float32) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	if useAVX2 && len(dst) >= vecMinLen {
		n := len(dst) &^ 7
		vecAxpyDiffAsm(&dst[0], &a[0], &b[0], n, m)
		dst, a, b = dst[n:], a[n:], b[n:]
	}
	for i := range dst {
		dst[i] += m * (a[i] - b[i])
	}
}

// VecAccumScaled computes acc[i] += w*float64(v[i]) — the inner loop of
// the float64 server reduction (WeightedAverage). The float32→float64
// widening is exact and the multiply/add are IEEE double ops, so the
// 4-wide body matches the scalar loop bit for bit; client-order
// determinism is preserved because the kernel touches one client at a
// time.
func VecAccumScaled(acc []float64, v []float32, w float64) {
	v = v[:len(acc)]
	if useAVX2 && len(acc) >= 8 {
		n := len(acc) &^ 3
		vecAccumScaledAsm(&acc[0], &v[0], n, w)
		acc, v = acc[n:], v[n:]
	}
	for i, x := range v {
		acc[i] += w * float64(x)
	}
}

// VecF64ToF32 narrows src into dst with round-to-nearest-even, the same
// conversion Go's float32(x) performs.
func VecF64ToF32(dst []float32, src []float64) {
	src = src[:len(dst)]
	if useAVX2 && len(dst) >= 8 {
		n := len(dst) &^ 3
		vecF64ToF32Asm(&dst[0], &src[0], n)
		dst, src = dst[n:], src[n:]
	}
	for i, x := range src {
		dst[i] = float32(x)
	}
}

// VecBNTrain applies the training-mode BatchNorm normalize+affine to one
// contiguous channel strip, in float64 exactly as the scalar loop:
//
//	xh = (float64(x) - mean) * inv ; xhat = float32(xh)
//	out = float32(g*xh + b)
func VecBNTrain(out, xhat, x []float32, mean, inv, g, b float64) {
	xhat = xhat[:len(out)]
	x = x[:len(out)]
	if useAVX2 && len(out) >= 8 {
		n := len(out) &^ 3
		vecBNTrainAsm(&out[0], &xhat[0], &x[0], n, mean, inv, g, b)
		out, xhat, x = out[n:], xhat[n:], x[n:]
	}
	for i, v := range x {
		xh := (float64(v) - mean) * inv
		xhat[i] = float32(xh)
		out[i] = float32(g*xh + b)
	}
}

// VecBNEval applies the eval-mode BatchNorm transform to one contiguous
// channel strip: out = float32(g*(float64(x)-mean)*inv + b), with the
// multiplications in the scalar expression's left-to-right order.
func VecBNEval(out, x []float32, mean, inv, g, b float64) {
	x = x[:len(out)]
	if useAVX2 && len(out) >= 8 {
		n := len(out) &^ 3
		vecBNEvalAsm(&out[0], &x[0], n, mean, inv, g, b)
		out, x = out[n:], x[n:]
	}
	for i, v := range x {
		out[i] = float32(g*(float64(v)-mean)*inv + b)
	}
}

// VecBNBwd applies the BatchNorm input-gradient formula to one
// contiguous channel strip:
//
//	dx = float32(scale * (cnt*float64(dout) - dbeta - float64(xhat)*dgamma))
func VecBNBwd(dx, dout, xhat []float32, scale, cnt, dbeta, dgamma float64) {
	dout = dout[:len(dx)]
	xhat = xhat[:len(dx)]
	if useAVX2 && len(dx) >= 8 {
		n := len(dx) &^ 3
		vecBNBwdAsm(&dx[0], &dout[0], &xhat[0], n, scale, cnt, dbeta, dgamma)
		dx, dout, xhat = dx[n:], dout[n:], xhat[n:]
	}
	for i, g := range dout {
		dx[i] = float32(scale * (cnt*float64(g) - dbeta - float64(xhat[i])*dgamma))
	}
}
