package tensor

import "fmt"

// parallelThreshold is the number of output elements above which MatMul
// shards rows across goroutines. Below it the sequential kernel wins.
const parallelThreshold = 64 * 64

// mrBlock is the register-blocking factor: the dense micro-kernels compute
// this many output rows at once so each streamed element of the other
// operand feeds mrBlock independent FMA chains.
const mrBlock = 4

// ncBlock is the cache-blocking width: for very wide outputs the j range is
// processed in panels of this size so the mrBlock accumulator rows stay
// resident in L1 across the whole k loop.
const ncBlock = 1024

// sparseThreshold is the zero fraction of the left operand above which the
// branchy zero-skipping kernel beats the dense blocked kernel. SPATL's
// salient-parameter masks zero out whole filters, so pruned weights cross
// this easily; dense activations and gradients stay well below it.
const sparseThreshold = 0.45

// sparseSample caps how many elements of the left operand the sparsity
// probe inspects, keeping the probe O(1) relative to the multiply itself.
const sparseSample = 1024

// MatMul computes C = A·B for A of shape (m,k) and B of shape (k,n),
// returning a new (m,n) tensor. Rows of C are computed in parallel when
// the problem is large enough; each row is owned by exactly one goroutine
// so the result is deterministic.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes C = A·B into an existing output tensor, avoiding an
// allocation. C must have shape (m,n).
func MatMulInto(c, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if b.Dim(0) != k || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch C%v = A%v x B%v", c.shape, a.shape, b.shape))
	}
	if isSparse(a.Data) {
		if m*n >= parallelThreshold && m > 1 {
			Parallel(m, func(lo, hi int) {
				matmulRowsSparse(c.Data, a.Data, b.Data, lo, hi, k, n)
			})
			return
		}
		matmulRowsSparse(c.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	if m < packMinRows {
		matmulRowsBlocked(c.Data, a.Data, b.Data, 0, m, k, n)
		return
	}
	// Pack Bᵀ once so the register-tiled dot kernel streams both operands
	// contiguously; the packing cost is O(k·n) against O(m·k·n) compute.
	bt := GetScratch(n * k)
	TransposeSlice(bt, b.Data, k, n)
	if m*n >= parallelThreshold && m > 1 {
		Parallel(m, func(lo, hi int) {
			matmulTransBRows(c.Data, a.Data, bt, lo, hi, k, n, false)
		})
	} else {
		matmulTransBRows(c.Data, a.Data, bt, 0, m, k, n, false)
	}
	PutScratch(bt)
}

// MatMulSlice computes C = A·B on raw row-major slices without shape
// checks or parallel dispatch: A is (m,k), B is (k,n), C is (m,n) and is
// fully overwritten. It picks the sparse-aware kernel automatically when
// the left operand is mostly zeros (pruned/masked weights). Intended for
// callers that manage their own parallelism (e.g. per-image convolution
// lowering inside a Parallel region).
func MatMulSlice(c, a, b []float32, m, k, n int) {
	if isSparse(a[:m*k]) {
		matmulRowsSparse(c, a, b, 0, m, k, n)
		return
	}
	if m < packMinRows {
		matmulRowsBlocked(c, a, b, 0, m, k, n)
		return
	}
	bt := GetScratch(n * k)
	TransposeSlice(bt, b, k, n)
	matmulTransBRows(c, a, bt, 0, m, k, n, false)
	PutScratch(bt)
}

// packMinRows is the output-row count below which packing Bᵀ for the dot
// kernel cannot amortize: tiny products fall back to the streaming axpy
// kernel, which needs no scratch.
const packMinRows = 8

// TransposeSlice writes src (rows,cols) into dst as its (cols,rows)
// transpose, tiling the traversal so both sides stay cache-resident. Within
// a tile, four source rows are read together so each destination row gets a
// contiguous 4-element write, halving the per-element overhead of the
// scattered side. It is the packing primitive behind the dense matmul paths.
func TransposeSlice(dst, src []float32, rows, cols int) {
	const tb = 32
	for jj := 0; jj < cols; jj += tb {
		je := jj + tb
		if je > cols {
			je = cols
		}
		for ii := 0; ii < rows; ii += tb {
			ie := ii + tb
			if ie > rows {
				ie = rows
			}
			i := ii
			for ; i+4 <= ie; i += 4 {
				s0 := src[(i+0)*cols : (i+0)*cols+cols]
				s1 := src[(i+1)*cols : (i+1)*cols+cols]
				s2 := src[(i+2)*cols : (i+2)*cols+cols]
				s3 := src[(i+3)*cols : (i+3)*cols+cols]
				for j := jj; j < je; j++ {
					d := dst[j*rows+i : j*rows+i+4]
					d[0], d[1], d[2], d[3] = s0[j], s1[j], s2[j], s3[j]
				}
			}
			for ; i < ie; i++ {
				row := src[i*cols : i*cols+cols]
				for j := jj; j < je; j++ {
					dst[j*rows+i] = row[j]
				}
			}
		}
	}
}

// matmulRowsBlocked computes rows [lo,hi) of C = A·B with a register-tiled
// ikj kernel: mrBlock rows of A are processed together so every element of
// a streamed B row feeds mrBlock independent accumulator chains, and wide
// outputs are cache-blocked into ncBlock-column panels. Accumulation order
// over k is ascending for every output element, matching the reference
// implementation bit for bit.
func matmulRowsBlocked(c, a, b []float32, lo, hi, k, n int) {
	for jb := 0; jb < n; jb += ncBlock {
		jw := n - jb
		if jw > ncBlock {
			jw = ncBlock
		}
		i := lo
		for ; i+mrBlock <= hi; i += mrBlock {
			a0 := a[(i+0)*k : (i+0)*k+k]
			a1 := a[(i+1)*k : (i+1)*k+k]
			a2 := a[(i+2)*k : (i+2)*k+k]
			a3 := a[(i+3)*k : (i+3)*k+k]
			c0 := c[(i+0)*n+jb:][:jw]
			c1 := c[(i+1)*n+jb:][:jw]
			c2 := c[(i+2)*n+jb:][:jw]
			c3 := c[(i+3)*n+jb:][:jw]
			for x := range c0 {
				c0[x] = 0
			}
			for x := range c1 {
				c1[x] = 0
			}
			for x := range c2 {
				c2[x] = 0
			}
			for x := range c3 {
				c3[x] = 0
			}
			for p := 0; p < k; p++ {
				bp := b[p*n+jb:][:jw]
				v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
				c0 := c0[:len(bp)]
				c1 := c1[:len(bp)]
				c2 := c2[:len(bp)]
				c3 := c3[:len(bp)]
				for j, bv := range bp {
					c0[j] += v0 * bv
					c1[j] += v1 * bv
					c2[j] += v2 * bv
					c3[j] += v3 * bv
				}
			}
		}
		for ; i < hi; i++ {
			ai := a[i*k : i*k+k]
			ci := c[i*n+jb:][:jw]
			for x := range ci {
				ci[x] = 0
			}
			for p, av := range ai {
				bp := b[p*n+jb:][:jw]
				ci := ci[:len(bp)]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	}
}

// MatMulSparseSlice computes C = A·B with the zero-skipping row kernel,
// unconditionally — for callers that have already probed the operand once
// (e.g. a conv layer deciding its lowering strategy per minibatch) and
// would otherwise pay the sparsity sample on every GEMM call.
func MatMulSparseSlice(c, a, b []float32, m, k, n int) {
	matmulRowsSparse(c, a, b, 0, m, k, n)
}

// MatMulTransASparseSlice computes C = Aᵀ·B (A is (k,m), B (k,n)) with the
// zero-skipping column kernel, unconditionally; see MatMulSparseSlice.
func MatMulTransASparseSlice(c, a, b []float32, m, k, n int) {
	matmulTransAColsSparse(c, a, b, 0, m, m, k, n)
}

// matmulRowsSparse is the zero-skipping row kernel retained for sparse
// left operands (SPATL salient-parameter masks zero whole filters): it
// pays a branch per A element to skip entire B-row passes.
func matmulRowsSparse(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : i*k+k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			// VecAxpy keeps the separate multiply-then-add of the scalar
			// loop; each output element still accumulates surviving B rows
			// in ascending-p order.
			VecAxpy(ci, b[p*n:p*n+n], av)
		}
	}
}

// IsSparse reports whether a strided sample of x is mostly zeros — the
// same probe the matmul entry points use to pick the zero-skipping kernel.
// Exposed so layers can choose a lowering strategy once per call instead
// of once per image.
func IsSparse(x []float32) bool { return isSparse(x) }

// isSparse reports whether a strided sample of x is mostly zeros.
func isSparse(x []float32) bool {
	if len(x) == 0 {
		return false
	}
	step := len(x) / sparseSample
	if step < 1 {
		step = 1
	}
	zeros, seen := 0, 0
	for i := 0; i < len(x); i += step {
		if x[i] == 0 {
			zeros++
		}
		seen++
	}
	return float32(zeros) >= sparseThreshold*float32(seen)
}

// MatMulTransB computes C = A·Bᵀ for A (m,k) and B (n,k) into a new (m,n)
// tensor. Used for backprop through linear layers without materializing
// transposes.
func MatMulTransB(a, b *Tensor) *Tensor {
	m := a.Dim(0)
	n := b.Dim(0)
	c := New(m, n)
	MatMulTransBInto(c, a, b)
	return c
}

// MatMulTransBInto computes C = A·Bᵀ into an existing (m,n) output tensor,
// avoiding an allocation.
func MatMulTransBInto(c, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto shape mismatch C%v = A%v x B%vᵀ", c.shape, a.shape, b.shape))
	}
	if m*n >= parallelThreshold && m > 1 {
		Parallel(m, func(lo, hi int) {
			matmulTransBRows(c.Data, a.Data, b.Data, lo, hi, k, n, false)
		})
		return
	}
	matmulTransBRows(c.Data, a.Data, b.Data, 0, m, k, n, false)
}

// MatMulTransBSlice computes C = A·Bᵀ on raw slices (A (m,k), B (n,k),
// C (m,n) overwritten), serial, without shape checks.
func MatMulTransBSlice(c, a, b []float32, m, k, n int) {
	matmulTransBRows(c, a, b, 0, m, k, n, false)
}

// MatMulTransBAccSlice computes C += A·Bᵀ on raw slices: each dot product
// is formed in a register in ascending-k order and then added once to the
// existing C element, so the result is bitwise identical to computing the
// product into a temporary and adding it. This is the gradient-accumulation
// kernel for dW += dOut·colᵀ in convolution backward.
func MatMulTransBAccSlice(c, a, b []float32, m, k, n int) {
	matmulTransBRows(c, a, b, 0, m, k, n, true)
}

// jcPanel is the column-panel width of the dot kernel: B rows are consumed
// in panels of this many output columns across all output rows, so a panel
// (jcPanel·k floats) stays L1-resident instead of the whole of B streaming
// from L2 once per row pair.
const jcPanel = 32

// matmulTransBRows computes rows [lo,hi) of C = A·Bᵀ (or C += A·Bᵀ when
// acc). On CPUs with AVX2 it dispatches to the vector tile kernel; both
// paths form each output as one ascending-k dot-product chain, so the
// choice never changes a single bit of the result. The scalar path uses a
// 2×4 register tile: two rows of A against four rows of B give eight
// independent dot-product accumulators per pass, amortizing every operand
// load across multiple FMAs.
func matmulTransBRows(c, a, b []float32, lo, hi, k, n int, acc bool) {
	if useAVX2 && n >= 16 && hi-lo >= 4 && k >= 4 {
		matmulTransBRowsAVX2(c, a, b, lo, hi, k, n, acc)
		return
	}
	matmulTransBRowsScalar(c, a, b, lo, hi, k, n, acc)
}

// matmulTransBRowsScalar is the portable panel loop behind matmulTransBRows.
func matmulTransBRowsScalar(c, a, b []float32, lo, hi, k, n int, acc bool) {
	for jj := 0; jj < n; jj += jcPanel {
		jhi := jj + jcPanel
		if jhi > n {
			jhi = n
		}
		matmulTransBRowsPanel(c, a, b, lo, hi, jj, jhi, k, n, acc)
	}
}

// matmulTransBRowsPanel is the register-tiled core of matmulTransBRows for
// output columns [jlo,jhi).
func matmulTransBRowsPanel(c, a, b []float32, lo, hi, jlo, jhi, k, n int, acc bool) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		a0 := a[(i+0)*k : (i+0)*k+k]
		a1 := a[(i+1)*k : (i+1)*k+k]
		c0 := c[(i+0)*n : (i+0)*n+n]
		c1 := c[(i+1)*n : (i+1)*n+n]
		j := jlo
		for ; j+4 <= jhi; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			var s00, s01, s02, s03, s10, s11, s12, s13 float32
			a1 := a1[:len(a0)]
			b0, b1, b2, b3 = b0[:len(a0)], b1[:len(a0)], b2[:len(a0)], b3[:len(a0)]
			for p, v0 := range a0 {
				v1 := a1[p]
				w0, w1, w2, w3 := b0[p], b1[p], b2[p], b3[p]
				s00 += v0 * w0
				s01 += v0 * w1
				s02 += v0 * w2
				s03 += v0 * w3
				s10 += v1 * w0
				s11 += v1 * w1
				s12 += v1 * w2
				s13 += v1 * w3
			}
			if acc {
				c0[j] += s00
				c0[j+1] += s01
				c0[j+2] += s02
				c0[j+3] += s03
				c1[j] += s10
				c1[j+1] += s11
				c1[j+2] += s12
				c1[j+3] += s13
			} else {
				c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
				c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
			}
		}
		for ; j < jhi; j++ {
			bj := b[j*k : j*k+k]
			var s0, s1 float32
			a0 := a0[:len(bj)]
			a1 := a1[:len(bj)]
			for p, bv := range bj {
				s0 += a0[p] * bv
				s1 += a1[p] * bv
			}
			if acc {
				c0[j] += s0
				c1[j] += s1
			} else {
				c0[j] = s0
				c1[j] = s1
			}
		}
	}
	for ; i < hi; i++ {
		ai := a[i*k : i*k+k]
		ci := c[i*n : i*n+n]
		for j := jlo; j < jhi; j++ {
			bj := b[j*k : j*k+k]
			var s float32
			ai := ai[:len(bj)]
			for p, bv := range bj {
				s += ai[p] * bv
			}
			if acc {
				ci[j] += s
			} else {
				ci[j] = s
			}
		}
	}
}

// MatMulTransA computes C = Aᵀ·B for A (k,m) and B (k,n) into a new (m,n)
// tensor.
func MatMulTransA(a, b *Tensor) *Tensor {
	m := a.Dim(1)
	n := b.Dim(1)
	c := New(m, n)
	MatMulTransAInto(c, a, b)
	return c
}

// MatMulTransAInto computes C = Aᵀ·B into an existing (m,n) output tensor,
// avoiding an allocation.
func MatMulTransAInto(c, a, b *Tensor) {
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulTransAInto shape mismatch C%v = A%vᵀ x B%v", c.shape, a.shape, b.shape))
	}
	if isSparse(a.Data) {
		if m*n >= parallelThreshold && m > 1 {
			Parallel(m, func(lo, hi int) {
				matmulTransAColsSparse(c.Data, a.Data, b.Data, lo, hi, m, k, n)
			})
			return
		}
		matmulTransAColsSparse(c.Data, a.Data, b.Data, 0, m, m, k, n)
		return
	}
	if m < packMinRows {
		matmulTransACols(c.Data, a.Data, b.Data, 0, m, m, k, n)
		return
	}
	// Pack both operands so the dot kernel streams contiguously: Aᵀ so
	// output rows read a contiguous k-vector, Bᵀ so output columns do.
	at := GetScratch(m * k)
	TransposeSlice(at, a.Data, k, m)
	bt := GetScratch(n * k)
	TransposeSlice(bt, b.Data, k, n)
	if m*n >= parallelThreshold && m > 1 {
		Parallel(m, func(lo, hi int) {
			matmulTransBRows(c.Data, at, bt, lo, hi, k, n, false)
		})
	} else {
		matmulTransBRows(c.Data, at, bt, 0, m, k, n, false)
	}
	PutScratch(bt)
	PutScratch(at)
}

// MatMulTransASlice computes C = Aᵀ·B on raw slices (A (k,m), B (k,n),
// C (m,n) overwritten), serial, without shape checks. Sparse left operands
// (pruned weights) are detected automatically.
func MatMulTransASlice(c, a, b []float32, m, k, n int) {
	if isSparse(a[:k*m]) {
		matmulTransAColsSparse(c, a, b, 0, m, m, k, n)
		return
	}
	if m < packMinRows {
		matmulTransACols(c, a, b, 0, m, m, k, n)
		return
	}
	at := GetScratch(m * k)
	TransposeSlice(at, a, k, m)
	bt := GetScratch(n * k)
	TransposeSlice(bt, b, k, n)
	matmulTransBRows(c, at, bt, 0, m, k, n, false)
	PutScratch(bt)
	PutScratch(at)
}

// matmulTransACols computes output rows [lo,hi) of C = Aᵀ·B. Output row i
// corresponds to column i of A, so four adjacent columns load as one
// contiguous 4-element read per k step while a B row streams through four
// accumulator rows — the same register tiling as the main kernel.
func matmulTransACols(c, a, b []float32, lo, hi, m, k, n int) {
	i := lo
	for ; i+mrBlock <= hi; i += mrBlock {
		c0 := c[(i+0)*n : (i+0)*n+n]
		c1 := c[(i+1)*n : (i+1)*n+n]
		c2 := c[(i+2)*n : (i+2)*n+n]
		c3 := c[(i+3)*n : (i+3)*n+n]
		for x := range c0 {
			c0[x] = 0
		}
		for x := range c1 {
			c1[x] = 0
		}
		for x := range c2 {
			c2[x] = 0
		}
		for x := range c3 {
			c3[x] = 0
		}
		for p := 0; p < k; p++ {
			ap := a[p*m+i : p*m+i+4]
			v0, v1, v2, v3 := ap[0], ap[1], ap[2], ap[3]
			bp := b[p*n : p*n+n]
			c0 := c0[:len(bp)]
			c1 := c1[:len(bp)]
			c2 := c2[:len(bp)]
			c3 := c3[:len(bp)]
			for j, bv := range bp {
				c0[j] += v0 * bv
				c1[j] += v1 * bv
				c2[j] += v2 * bv
				c3[j] += v3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		ci := c[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			bp := b[p*n : p*n+n]
			ci := ci[:len(bp)]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// matmulTransAColsSparse is the zero-skipping variant of matmulTransACols
// for sparse left operands.
func matmulTransAColsSparse(c, a, b []float32, lo, hi, m, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : i*n+n]
		for x := range ci {
			ci[x] = 0
		}
		for p := 0; p < k; p++ {
			av := a[p*m+i]
			if av == 0 {
				continue
			}
			// Same separate multiply-then-add chain as the scalar loop,
			// ascending-p accumulation per output element.
			VecAxpy(ci, b[p*n:p*n+n], av)
		}
	}
}
