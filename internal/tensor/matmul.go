package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of output elements above which MatMul
// shards rows across goroutines. Below it the sequential kernel wins.
const parallelThreshold = 64 * 64

// MatMul computes C = A·B for A of shape (m,k) and B of shape (k,n),
// returning a new (m,n) tensor. Rows of C are computed in parallel when
// the problem is large enough; each row is owned by exactly one goroutine
// so the result is deterministic.
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %v x %v", a.shape, b.shape))
	}
	c := New(m, n)
	MatMulInto(c, a, b)
	return c
}

// MatMulInto computes C = A·B into an existing output tensor, avoiding an
// allocation. C must have shape (m,n).
func MatMulInto(c, a, b *Tensor) {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	if b.Dim(0) != k || c.Dim(0) != m || c.Dim(1) != n {
		panic(fmt.Sprintf("tensor: MatMulInto shape mismatch C%v = A%v x B%v", c.shape, a.shape, b.shape))
	}
	if m*n >= parallelThreshold && m > 1 {
		parallelRows(m, func(lo, hi int) {
			matmulRows(c.Data, a.Data, b.Data, lo, hi, k, n)
		})
		return
	}
	matmulRows(c.Data, a.Data, b.Data, 0, m, k, n)
}

// matmulRows computes rows [lo,hi) of C = A·B with an ikj loop order that
// streams B rows sequentially (cache friendly, auto-vectorizable inner
// loop).
func matmulRows(c, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for x := range ci {
			ci[x] = 0
		}
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes C = A·Bᵀ for A (m,k) and B (n,k) into a new (m,n)
// tensor. Used for backprop through linear layers without materializing
// transposes.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n, k2 := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dimension mismatch %v x %vᵀ", a.shape, b.shape))
	}
	c := New(m, n)
	work := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ai := a.Data[i*k : (i+1)*k]
			ci := c.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := b.Data[j*k : (j+1)*k]
				var s float32
				for p, av := range ai {
					s += av * bj[p]
				}
				ci[j] = s
			}
		}
	}
	if m*n >= parallelThreshold && m > 1 {
		parallelRows(m, work)
	} else {
		work(0, m)
	}
	return c
}

// MatMulTransA computes C = Aᵀ·B for A (k,m) and B (k,n) into a new (m,n)
// tensor.
func MatMulTransA(a, b *Tensor) *Tensor {
	k, m := a.Dim(0), a.Dim(1)
	k2, n := b.Dim(0), b.Dim(1)
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dimension mismatch %vᵀ x %v", a.shape, b.shape))
	}
	c := New(m, n)
	work := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ci := c.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				bp := b.Data[p*n : (p+1)*n]
				for j, bv := range bp {
					ci[j] += av * bv
				}
			}
		}
	}
	if m*n >= parallelThreshold && m > 1 {
		parallelRows(m, work)
	} else {
		work(0, m)
	}
	return c
}

// parallelRows splits [0,m) into contiguous chunks, one per worker, and
// runs fn on each chunk concurrently. Each output row is written by
// exactly one worker, so no synchronization of the output is needed.
func parallelRows(m int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Parallel exposes the row-sharding helper for other packages that need a
// deterministic parallel loop over an index range.
func Parallel(n int, fn func(lo, hi int)) {
	parallelRows(n, fn)
}
