// AVX2 micro-kernel for the A·Bᵀ panel product. Each output element is a
// single dot-product accumulator advanced in ascending-k order with separate
// multiply and add (no FMA), so results are bitwise identical to the scalar
// kernel: vectorization is across independent output columns, never across k.

#include "textflag.h"

// func cpuidAsm(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL	eaxIn+0(FP), AX
	MOVL	ecxIn+4(FP), CX
	CPUID
	MOVL	AX, eax+8(FP)
	MOVL	BX, ebx+12(FP)
	MOVL	CX, ecx+16(FP)
	MOVL	DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL	CX, CX
	XGETBV
	MOVL	AX, eax+0(FP)
	MOVL	DX, edx+4(FP)
	RET

// func avx2DotPanel4x16(a *float32, lda int, bp *float32, k int, out *float32)
//
// Computes a 4-row × 16-column tile of dot products against a packed
// B-panel: out[r*16+j] = Σ_p a[r*lda+p] · bp[p*16+j] for r in [0,4),
// j in [0,16). bp interleaves 16 B rows element-by-element so each k step
// is two contiguous 8-float loads. Eight YMM accumulators (4 rows × 2
// halves) give eight independent add chains, hiding VADDPS latency.
TEXT ·avx2DotPanel4x16(SB), NOSPLIT, $0-40
	MOVQ	a+0(FP), SI
	MOVQ	lda+8(FP), AX
	MOVQ	bp+16(FP), BX
	MOVQ	k+24(FP), CX
	MOVQ	out+32(FP), DI

	SHLQ	$2, AX              // row stride in bytes
	LEAQ	(SI)(AX*1), R9      // a row 1
	LEAQ	(R9)(AX*1), R10     // a row 2
	LEAQ	(R10)(AX*1), R11    // a row 3

	VXORPS	Y0, Y0, Y0          // row 0, cols 0-7
	VXORPS	Y1, Y1, Y1          // row 0, cols 8-15
	VXORPS	Y2, Y2, Y2          // row 1, cols 0-7
	VXORPS	Y3, Y3, Y3          // row 1, cols 8-15
	VXORPS	Y4, Y4, Y4          // row 2, cols 0-7
	VXORPS	Y5, Y5, Y5          // row 2, cols 8-15
	VXORPS	Y6, Y6, Y6          // row 3, cols 0-7
	VXORPS	Y7, Y7, Y7          // row 3, cols 8-15

	XORQ	DX, DX              // p = 0
	TESTQ	CX, CX
	JLE	done

loop:
	VMOVUPS	(BX), Y8            // bp[p*16 .. p*16+7]
	VMOVUPS	32(BX), Y9          // bp[p*16+8 .. p*16+15]

	VBROADCASTSS	(SI)(DX*4), Y10
	VMULPS	Y8, Y10, Y11
	VADDPS	Y11, Y0, Y0
	VMULPS	Y9, Y10, Y12
	VADDPS	Y12, Y1, Y1

	VBROADCASTSS	(R9)(DX*4), Y10
	VMULPS	Y8, Y10, Y11
	VADDPS	Y11, Y2, Y2
	VMULPS	Y9, Y10, Y12
	VADDPS	Y12, Y3, Y3

	VBROADCASTSS	(R10)(DX*4), Y10
	VMULPS	Y8, Y10, Y11
	VADDPS	Y11, Y4, Y4
	VMULPS	Y9, Y10, Y12
	VADDPS	Y12, Y5, Y5

	VBROADCASTSS	(R11)(DX*4), Y10
	VMULPS	Y8, Y10, Y11
	VADDPS	Y11, Y6, Y6
	VMULPS	Y9, Y10, Y12
	VADDPS	Y12, Y7, Y7

	ADDQ	$64, BX
	INCQ	DX
	CMPQ	DX, CX
	JLT	loop

done:
	VMOVUPS	Y0, (DI)
	VMOVUPS	Y1, 32(DI)
	VMOVUPS	Y2, 64(DI)
	VMOVUPS	Y3, 96(DI)
	VMOVUPS	Y4, 128(DI)
	VMOVUPS	Y5, 160(DI)
	VMOVUPS	Y6, 192(DI)
	VMOVUPS	Y7, 224(DI)
	VZEROUPPER
	RET
