package algo

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
)

// The streaming contract under test: whatever order uploads arrive in —
// and whatever GOMAXPROCS the folds run at — the round's reduction is
// bitwise identical to the serial StreamFoldRef ground truth, because
// the cursor/staging engine replays arrivals in canonical ascending
// client order. Every aggregator family gets the same permutation
// driver; the fixtures only differ in payload encoding and reference.

// streamFixture is one aggregator wired with a round's worth of uploads
// and a bitwise check against the serial reference.
type streamFixture struct {
	agg      StreamingAggregator
	round    int
	ids      []uint32
	sizes    []int
	payloads [][]byte
	check    func(t *testing.T)
}

// bitEq fails the test at the first float32 that differs bitwise.
func bitEq(t *testing.T, label string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for j := range want {
		if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
			t.Fatalf("%s[%d] differs bitwise: %x vs %x", label, j,
				math.Float32bits(got[j]), math.Float32bits(want[j]))
		}
	}
}

var streamIDs = []uint32{3, 11, 12, 20, 41, 57}

func streamSizes(n int) []int {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 50 + 10*i
	}
	return sizes
}

func randStates(rng *rand.Rand, k, n int) [][]float32 {
	states := make([][]float32, k)
	for i := range states {
		st := make([]float32, n)
		for j := range st {
			st[j] = float32(rng.NormFloat64())
		}
		states[i] = st
	}
	return states
}

func fedavgFixture(seed int64) *streamFixture {
	spec := models.Spec{Arch: "cnn2", Classes: 2, InC: 1, H: 8, W: 8}
	global := models.Build(spec, 7)
	agg := NewFedAvgAggregator(global, Config{NumClients: 64})
	n := global.StateLen(models.ScopeAll)
	rng := rand.New(rand.NewSource(seed))
	k := len(streamIDs)
	states := randStates(rng, k, n)
	sizes := streamSizes(k)
	weights := make([]float64, k)
	payloads := make([][]byte, k)
	for i := range states {
		weights[i] = float64(sizes[i])
		payloads[i] = comm.EncodeDense(states[i])
	}
	want := StreamFoldRefFedAvg(states, weights)
	return &streamFixture{
		agg: agg, ids: streamIDs, sizes: sizes, payloads: payloads,
		check: func(t *testing.T) { bitEq(t, "state", global.State(models.ScopeAll), want) },
	}
}

func fednovaFixture(seed int64) *streamFixture {
	spec := models.Spec{Arch: "cnn2", Classes: 2, InC: 1, H: 8, W: 8}
	global := models.Build(spec, 7)
	agg := NewFedNovaAggregator(global, Config{NumClients: 64})
	n := global.StateLen(models.ScopeAll)
	nVel := nn.ParamCount(global.Params())
	rng := rand.New(rand.NewSource(seed))
	k := len(streamIDs)
	ds := randStates(rng, k, n)
	vs := randStates(rng, k, nVel)
	sizes := streamSizes(k)
	weights := make([]float64, k)
	taus := make([]float64, k)
	payloads := make([][]byte, k)
	for i := range ds {
		weights[i] = float64(sizes[i])
		steps := uint32(2 + i)
		taus[i] = float64(steps)
		var sb [4]byte
		binary.LittleEndian.PutUint32(sb[:], steps)
		payloads[i] = comm.JoinPayloads(comm.EncodeDense(ds[i]), comm.EncodeDense(vs[i]), sb[:])
	}
	wantState, wantVel := StreamFoldRefFedNova(global.State(models.ScopeAll), ds, vs, taus, weights)
	return &streamFixture{
		agg: agg, ids: streamIDs, sizes: sizes, payloads: payloads,
		check: func(t *testing.T) {
			bitEq(t, "state", global.State(models.ScopeAll), wantState)
			bitEq(t, "velocity", agg.velocity, wantVel)
		},
	}
}

func scaffoldFixture(seed int64) *streamFixture {
	spec := models.Spec{Arch: "cnn2", Classes: 2, InC: 1, H: 8, W: 8}
	global := models.Build(spec, 7)
	agg := NewSCAFFOLDAggregator(global, Config{NumClients: 64})
	n := global.StateLen(models.ScopeAll)
	nCtrl := nn.ParamCount(global.Params())
	rng := rand.New(rand.NewSource(seed))
	k := len(streamIDs)
	dWs := randStates(rng, k, n)
	dCs := randStates(rng, k, nCtrl)
	sizes := streamSizes(k)
	payloads := make([][]byte, k)
	for i := range dWs {
		payloads[i] = comm.JoinPayloads(comm.EncodeDense(dWs[i]), comm.EncodeDense(dCs[i]))
	}
	wantState, wantC := StreamFoldRefSCAFFOLD(global.State(models.ScopeAll), agg.c, dWs, dCs, 64)
	return &streamFixture{
		agg: agg, ids: streamIDs, sizes: sizes, payloads: payloads,
		check: func(t *testing.T) {
			bitEq(t, "state", global.State(models.ScopeAll), wantState)
			bitEq(t, "c", agg.c, wantC)
		},
	}
}

func spatlFixture(seed int64) *streamFixture {
	spec := models.Spec{Arch: "cnn2", Classes: 2, InC: 1, H: 8, W: 8}
	global := models.Build(spec, 7)
	const clients = 64
	agg := NewSPATLAggregator(global, SPATLOptions{}, Config{NumClients: clients})
	n := global.StateLen(models.ScopeEncoder)
	nCtrl := nn.ParamCount(global.EncoderParams())
	rng := rand.New(rand.NewSource(seed))
	k := len(streamIDs)
	sizes := streamSizes(k)
	dWs := make([]*comm.Sparse, k)
	dCs := make([]*comm.Sparse, k)
	payloads := make([][]byte, k)
	for i := range dWs {
		dWs[i] = synthSparse(rng, n)
		dCs[i] = synthSparse(rng, nCtrl)
		payloads[i] = comm.JoinPayloads(comm.EncodeSparse(dWs[i]), comm.EncodeSparse(dCs[i]))
	}
	wantState, wantC := StreamFoldRefSPATL(global.State(models.ScopeEncoder),
		append([]float32(nil), agg.c...), dWs, dCs, clients)
	return &streamFixture{
		agg: agg, ids: streamIDs, sizes: sizes, payloads: payloads,
		check: func(t *testing.T) {
			bitEq(t, "state", global.State(models.ScopeEncoder), wantState)
			bitEq(t, "c", agg.c, wantC)
		},
	}
}

// ssflScoresFixture permutes the mask-agreement round: the permuted
// instance's agreed state and salient ranges must match a reference
// instance fed in ascending order (whose score fold matches
// StreamFoldRefSSFLScores by construction of agreeMask).
func ssflScoresFixture(seed int64) *streamFixture {
	spec := models.Spec{Arch: "cnn2", Classes: 2, InC: 1, H: 8, W: 8}
	rng := rand.New(rand.NewSource(seed))
	k := len(streamIDs)
	sizes := streamSizes(k)
	build := func() (*models.SplitModel, *SSFLAggregator) {
		global := models.Build(spec, 7)
		return global, NewSSFLAggregator(global, SSFLOptions{}, Config{NumClients: 64})
	}
	refGlobal, refAgg := build()
	scoreLen := ssflScoreLen(refGlobal)
	scores := make([][]float32, k)
	payloads := make([][]byte, k)
	for i := range scores {
		sc := make([]float32, scoreLen)
		for j := range sc {
			sc[j] = float32(rng.Float64() + 0.01)
		}
		scores[i] = sc
		payloads[i] = comm.EncodeDense(sc)
	}
	refAgg.BeginRound(0, streamIDs)
	for i := range streamIDs {
		refAgg.Collect(0, streamIDs[i], sizes[i], payloads[i])
	}
	refAgg.FinishRound(0)
	wantState := refGlobal.State(models.ScopeEncoder)

	global, agg := build()
	return &streamFixture{
		agg: agg, ids: streamIDs, sizes: sizes, payloads: payloads,
		check: func(t *testing.T) {
			if len(agg.ranges) != len(refAgg.ranges) {
				t.Fatalf("agreed ranges: %d vs %d", len(agg.ranges), len(refAgg.ranges))
			}
			for i := range agg.ranges {
				if agg.ranges[i] != refAgg.ranges[i] {
					t.Fatalf("range %d: %+v vs %+v", i, agg.ranges[i], refAgg.ranges[i])
				}
			}
			bitEq(t, "state", global.State(models.ScopeEncoder), wantState)
		},
	}
}

// ssflPackedFixture permutes a mask-static values-only round, checked
// against the retained dense reference SSFLReduceReference.
func ssflPackedFixture(seed int64) *streamFixture {
	spec := models.Spec{Arch: "cnn2", Classes: 2, InC: 1, H: 8, W: 8}
	global := models.Build(spec, 7)
	agg := NewSSFLAggregator(global, SSFLOptions{}, Config{NumClients: 64})
	rng := rand.New(rand.NewSource(seed))
	k := len(streamIDs)
	sizes := streamSizes(k)

	// Agreement round first (in order): fixes the mask and keptN.
	scoreLen := ssflScoreLen(global)
	agg.BeginRound(0, streamIDs)
	for i := range streamIDs {
		sc := make([]float32, scoreLen)
		for j := range sc {
			sc[j] = float32(rng.Float64() + 0.01)
		}
		agg.Collect(0, streamIDs[i], sizes[i], comm.EncodeDense(sc))
	}
	agg.FinishRound(0)

	stateAfter := global.State(models.ScopeEncoder)
	packed := randStates(rng, k, agg.keptN)
	weights := make([]float64, k)
	payloads := make([][]byte, k)
	for i := range packed {
		weights[i] = float64(sizes[i])
		payloads[i] = comm.EncodeSparseValsInto(nil, packed[i])
	}
	want := SSFLReduceReference(stateAfter, packed, weights, agg.ranges)
	return &streamFixture{
		agg: agg, round: 1, ids: streamIDs, sizes: sizes, payloads: payloads,
		check: func(t *testing.T) { bitEq(t, "state", global.State(models.ScopeEncoder), want) },
	}
}

var streamCases = []struct {
	name string
	make func(seed int64) *streamFixture
}{
	{"fedavg", fedavgFixture},
	{"fednova", fednovaFixture},
	{"scaffold", scaffoldFixture},
	{"spatl", spatlFixture},
	{"ssfl-scores", ssflScoresFixture},
	{"ssfl-packed", ssflPackedFixture},
}

// streamPerms yields the arrival orders under test: identity, reverse,
// and seeded shuffles.
func streamPerms(n, extra int) [][]int {
	id := make([]int, n)
	rev := make([]int, n)
	for i := range id {
		id[i] = i
		rev[i] = n - 1 - i
	}
	perms := [][]int{id, rev}
	for s := 0; s < extra; s++ {
		rng := rand.New(rand.NewSource(int64(7919 + s)))
		perms = append(perms, rng.Perm(n))
	}
	return perms
}

// TestStreamPermutationMatchesSerialRef drives every aggregator family
// through every arrival permutation at GOMAXPROCS 1 and NumCPU and
// demands bitwise identity with the serial StreamFoldRef ground truth.
func TestStreamPermutationMatchesSerialRef(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, gmp := range []int{1, runtime.NumCPU()} {
		runtime.GOMAXPROCS(gmp)
		for _, tc := range streamCases {
			t.Run(fmt.Sprintf("%s/gomaxprocs=%d", tc.name, gmp), func(t *testing.T) {
				for pi, perm := range streamPerms(len(streamIDs), 6) {
					fx := tc.make(1234) // same data for every permutation
					fx.agg.BeginRound(fx.round, fx.ids)
					for _, p := range perm {
						fx.agg.Collect(fx.round, fx.ids[p], fx.sizes[p], fx.payloads[p])
					}
					fx.agg.FinishRound(fx.round)
					fx.check(t)
					if t.Failed() {
						t.Fatalf("permutation %d (%v) diverged from the serial reference", pi, perm)
					}
				}
			})
		}
	}
}

// TestStreamPermutationWithAbsentees drops two of six clients — one
// announced via MarkAbsent mid-round, one that silently never delivers —
// and permutes the survivors. The fold must equal the serial reference
// over the delivered subset, whichever way the absences were learned.
func TestStreamPermutationWithAbsentees(t *testing.T) {
	const absentMarked, absentSilent = 1, 4 // positions in streamIDs
	for pi, perm := range streamPerms(len(streamIDs), 6) {
		fx := fedavgFixtureSubset(1234, absentMarked, absentSilent)
		fx.agg.BeginRound(fx.round, fx.ids)
		delivered := 0
		for _, p := range perm {
			if p == absentSilent {
				continue
			}
			if p == absentMarked {
				fx.agg.MarkAbsent(fx.round, fx.ids[p])
				continue
			}
			fx.agg.Collect(fx.round, fx.ids[p], fx.sizes[p], fx.payloads[p])
			delivered++
		}
		fx.agg.FinishRound(fx.round)
		fx.check(t)
		if t.Failed() {
			t.Fatalf("permutation %d (%v) with absentees diverged", pi, perm)
		}
	}
}

// fedavgFixtureSubset is fedavgFixture with the reference computed over
// only the delivered clients (nil rows for the absent positions).
func fedavgFixtureSubset(seed int64, absent ...int) *streamFixture {
	fx := fedavgFixture(seed)
	k := len(fx.ids)
	states := make([][]float32, k)
	weights := make([]float64, k)
	for i := range fx.payloads {
		st, err := comm.DecodeDenseAnyInto(nil, fx.payloads[i])
		if err != nil {
			panic(err)
		}
		states[i] = st
		weights[i] = float64(fx.sizes[i])
	}
	for _, a := range absent {
		states[a] = nil
	}
	want := StreamFoldRefFedAvg(states, weights)
	agg := fx.agg.(*FedAvgAggregator)
	fx.check = func(t *testing.T) { bitEq(t, "state", agg.Global.State(models.ScopeAll), want) }
	return fx
}

// TestStreamDuplicateAndUnknownFoldAtArrival pins the extras semantics:
// a duplicate of an already-resolved position and an upload from a
// client outside the selection both fold at their arrival position —
// the buffered path's append semantics.
func TestStreamDuplicateAndUnknownFoldAtArrival(t *testing.T) {
	fx := fedavgFixture(99)
	agg := fx.agg.(*FedAvgAggregator)
	k := len(fx.ids)
	states := make([][]float32, 0, k+2)
	weights := make([]float64, 0, k+2)
	fx.agg.BeginRound(0, fx.ids)
	for i := range fx.ids {
		fx.agg.Collect(0, fx.ids[i], fx.sizes[i], fx.payloads[i])
		st, _ := comm.DecodeDenseAnyInto(nil, fx.payloads[i])
		states = append(states, st)
		weights = append(weights, float64(fx.sizes[i]))
	}
	// Duplicate of the first client, then a never-selected client: both
	// fold on arrival, i.e. appended to the canonical chain.
	for _, extra := range []struct {
		id   uint32
		pos  int
		size int
	}{{fx.ids[0], 0, 77}, {9999, 2, 33}} {
		fx.agg.Collect(0, extra.id, extra.size, fx.payloads[extra.pos])
		st, _ := comm.DecodeDenseAnyInto(nil, fx.payloads[extra.pos])
		states = append(states, st)
		weights = append(weights, float64(extra.size))
	}
	fx.agg.FinishRound(0)
	want := StreamFoldRefFedAvg(states, weights)
	bitEq(t, "state", agg.Global.State(models.ScopeAll), want)
}

// TestStreamLegacyArrivalOrder drives an aggregator without BeginRound:
// arrival order IS the fold order — the pre-streaming semantics every
// transport that does not announce a selection still gets.
func TestStreamLegacyArrivalOrder(t *testing.T) {
	fx := fedavgFixture(7)
	agg := fx.agg.(*FedAvgAggregator)
	states := make([][]float32, len(fx.ids))
	weights := make([]float64, len(fx.ids))
	for i := range fx.ids {
		fx.agg.Collect(0, fx.ids[i], fx.sizes[i], fx.payloads[i])
		states[i], _ = comm.DecodeDenseAnyInto(nil, fx.payloads[i])
		weights[i] = float64(fx.sizes[i])
	}
	fx.agg.FinishRound(0)
	bitEq(t, "state", agg.Global.State(models.ScopeAll), StreamFoldRefFedAvg(states, weights))
}

// TestStreamStagingBoundAtScale feeds 10k clients in exact reverse order
// — the worst case for the cursor — under a hard staging limit and
// checks the bound held: peak staged never exceeds the limit, overflow
// evictions were counted, and the round state fully resets.
func TestStreamStagingBoundAtScale(t *testing.T) {
	spec := models.Spec{Arch: "mlp", Classes: 2, InC: 1, H: 4, W: 4, Width: 0.25}
	global := models.Build(spec, 3)
	agg := NewFedAvgAggregator(global, Config{NumClients: 10000})
	const limit = 256
	agg.SetStagingLimit(limit)
	n := global.StateLen(models.ScopeAll)
	st := make([]float32, n)
	for j := range st {
		st[j] = float32(j%7) - 3
	}
	payload := comm.EncodeDense(st) // decode copies, so one payload serves all
	ids := make([]uint32, 10000)
	for i := range ids {
		ids[i] = uint32(i)
	}
	agg.BeginRound(0, ids)
	for i := len(ids) - 1; i >= 0; i-- {
		agg.Collect(0, ids[i], 100, payload)
	}
	agg.FinishRound(0)
	if peak := agg.StagingPeak(); peak > limit {
		t.Fatalf("staging peak %d exceeds limit %d", peak, limit)
	}
	if agg.StagingOverflow() == 0 {
		t.Fatal("reverse-order feed at 10k clients should have overflowed a 256-entry pool")
	}
	if len(agg.staged) != 0 || len(agg.order) != 0 {
		t.Fatalf("round state not reset: %d staged, %d order", len(agg.staged), len(agg.order))
	}
}

// TestStreamStagingLosslessDefault checks the default bound (selection
// size): a full reverse-order round stages everything, evicts nothing,
// and still reduces bitwise identically to the serial reference.
func TestStreamStagingLosslessDefault(t *testing.T) {
	spec := models.Spec{Arch: "mlp", Classes: 2, InC: 1, H: 4, W: 4, Width: 0.25}
	global := models.Build(spec, 3)
	const k = 512
	agg := NewFedAvgAggregator(global, Config{NumClients: k})
	n := global.StateLen(models.ScopeAll)
	rng := rand.New(rand.NewSource(5))
	states := randStates(rng, k, n)
	weights := make([]float64, k)
	ids := make([]uint32, k)
	for i := range ids {
		ids[i] = uint32(i)
		weights[i] = float64(10 + i%90)
	}
	agg.BeginRound(0, ids)
	for i := k - 1; i >= 0; i-- {
		agg.Collect(0, ids[i], int(weights[i]), comm.EncodeDense(states[i]))
	}
	agg.FinishRound(0)
	if ov := agg.StagingOverflow(); ov != 0 {
		t.Fatalf("default bound evicted %d uploads", ov)
	}
	if peak := agg.StagingPeak(); peak != k-1 {
		t.Fatalf("reverse feed should stage k-1 = %d uploads, peaked at %d", k-1, peak)
	}
	bitEq(t, "state", global.State(models.ScopeAll), StreamFoldRefFedAvg(states, weights))
}

// TestStreamRaceHammer randomizes everything the transports randomize —
// arrival order via racing producer goroutines, staging pressure via a
// per-round limit — across sequential rounds. Rounds with the lossless
// default bound must stay bitwise identical to the serial reference;
// bounded rounds must respect the bound. Run under -race by the hot
// battery (scripts/verify.sh --hot).
func TestStreamRaceHammer(t *testing.T) {
	spec := models.Spec{Arch: "mlp", Classes: 2, InC: 1, H: 4, W: 4, Width: 0.25}
	global := models.Build(spec, 11)
	const k = 96
	agg := NewFedAvgAggregator(global, Config{NumClients: k})
	n := global.StateLen(models.ScopeAll)
	ids := make([]uint32, k)
	for i := range ids {
		ids[i] = uint32(i * 3)
	}
	type msg struct {
		pos     int
		payload []byte
	}
	for round := 0; round < 6; round++ {
		rng := rand.New(rand.NewSource(int64(100 + round)))
		states := randStates(rng, k, n)
		weights := make([]float64, k)
		for i := range weights {
			weights[i] = float64(20 + i%60)
		}
		limit := 0 // lossless default on even rounds
		if round%2 == 1 {
			limit = 1 + rng.Intn(k/4) // random staging pressure
		}
		agg.SetStagingLimit(limit)
		agg.BeginRound(round, ids)

		// Racing producers: each encodes its strided share of the uploads
		// concurrently; the consumer ingests in whatever order they land.
		out := make(chan msg, k)
		const producers = 8
		for w := 0; w < producers; w++ {
			go func(w int) {
				for pos := w; pos < k; pos += producers {
					out <- msg{pos: pos, payload: comm.EncodeDense(states[pos])}
				}
			}(w)
		}
		for i := 0; i < k; i++ {
			m := <-out
			agg.Collect(round, ids[m.pos], int(weights[m.pos]), m.payload)
		}
		agg.FinishRound(round)
		if limit == 0 {
			bitEq(t, "state", global.State(models.ScopeAll), StreamFoldRefFedAvg(states, weights))
		} else if peak := agg.StagingPeak(); peak > int64(k) {
			t.Fatalf("round %d: staging peak %d exceeds selection size", round, peak)
		}
	}
}

// TestStreamBatchCollectMatchesSerialRef routes the same round through
// CollectBatch — the concurrent-decode fast path every shard transport
// uses — and demands the identical bitwise result.
func TestStreamBatchCollectMatchesSerialRef(t *testing.T) {
	fx := fedavgFixture(42)
	agg := fx.agg.(*FedAvgAggregator)
	states := make([][]float32, len(fx.ids))
	weights := make([]float64, len(fx.ids))
	ups := make([]Upload, len(fx.ids))
	for i := range fx.ids {
		states[i], _ = comm.DecodeDenseAnyInto(nil, fx.payloads[i])
		weights[i] = float64(fx.sizes[i])
		// Reverse the batch order: the cursor must reorder it.
		j := len(fx.ids) - 1 - i
		ups[i] = Upload{Client: fx.ids[j], TrainSize: fx.sizes[j], Payload: fx.payloads[j]}
	}
	fx.agg.BeginRound(0, fx.ids)
	agg.CollectBatch(0, ups)
	fx.agg.FinishRound(0)
	bitEq(t, "state", agg.Global.State(models.ScopeAll), StreamFoldRefFedAvg(states, weights))
}
