package algo

import (
	"encoding/binary"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
)

// TestShardRangePartition: the contiguous shard ranges cover [0, total)
// exactly once, in order, and ShardOf agrees with them — including the
// empty-shard cases when numShards exceeds total.
func TestShardRangePartition(t *testing.T) {
	for _, total := range []int{1, 2, 3, 7, 10, 100, 10000} {
		for _, S := range []int{1, 2, 3, 5, 16, total, total + 3} {
			next := 0
			for s := 0; s < S; s++ {
				lo, hi := ShardRange(s, total, S)
				if lo != next {
					t.Fatalf("total=%d S=%d shard %d starts at %d, want %d", total, S, s, lo, next)
				}
				if hi < lo {
					t.Fatalf("total=%d S=%d shard %d inverted range [%d,%d)", total, S, s, lo, hi)
				}
				for pos := lo; pos < hi; pos++ {
					if got := ShardOf(pos, total, S); got != s {
						t.Fatalf("total=%d S=%d ShardOf(%d) = %d, want %d", total, S, pos, got, s)
					}
				}
				next = hi
			}
			if next != total {
				t.Fatalf("total=%d S=%d shards cover [0,%d), want [0,%d)", total, S, next, total)
			}
		}
	}
}

// TestShardPayloadRoundTrip: the pooled shard payload decodes back to the
// exact entries added, in order, and malformed payloads error instead of
// panicking.
func TestShardPayloadRoundTrip(t *testing.T) {
	var sh ShardBuffer
	payloads := [][]byte{{1, 2, 3}, {}, {0xFF, 0x00, 0xAA, 0x42, 9}}
	for i, p := range payloads {
		sh.Add(uint32(10+i), 100+i, p)
	}
	if sh.Len() != len(payloads) {
		t.Fatalf("Len() = %d, want %d", sh.Len(), len(payloads))
	}
	ups, err := ShardEntries(nil, sh.Payload())
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != len(payloads) {
		t.Fatalf("decoded %d entries, want %d", len(ups), len(payloads))
	}
	for i, u := range ups {
		if u.Client != uint32(10+i) || u.TrainSize != 100+i {
			t.Fatalf("entry %d header = (%d, %d)", i, u.Client, u.TrainSize)
		}
		if string(u.Payload) != string(payloads[i]) {
			t.Fatalf("entry %d payload mismatch", i)
		}
	}
	sh.Reset()
	if sh.Len() != 0 || len(sh.Payload()) != 0 {
		t.Fatal("Reset did not clear the shard")
	}

	// Truncated header and over-long entry must both error.
	if _, err := ShardEntries(nil, []byte{1, 2, 3}); err == nil {
		t.Fatal("truncated header must error")
	}
	var bad [12]byte
	binary.LittleEndian.PutUint32(bad[8:12], 1<<30)
	if _, err := ShardEntries(nil, bad[:]); err == nil {
		t.Fatal("over-long entry must error")
	}
}

// shardCase is one algorithm under the shard-equivalence battery: a
// fresh-aggregator constructor (identical initial state every call) and a
// synthetic-upload generator in the aggregator's wire format.
type shardCase struct {
	name string
	// agg builds a fresh aggregator over a freshly built global model.
	agg func() Aggregator
	// upload builds client i's payload (deterministic in i).
	upload func(i int) []byte
	// extra returns auxiliary aggregator state that must also match
	// bitwise (control variates, server momentum); may return nil.
	extra func(agg Aggregator) []float32
}

// shardCases builds the five-algorithm battery over a small model.
func shardCases(t *testing.T) []shardCase {
	t.Helper()
	spec := models.Spec{Arch: "cnn2", Classes: 2, InC: 1, H: 8, W: 8}
	resnet := models.Spec{Arch: "resnet20", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.25}
	nState := models.Build(spec, 7).StateLen(models.ScopeAll)
	nParams := nn.ParamCount(models.Build(spec, 7).Params())
	enc := models.Build(resnet, 11)
	nEnc := enc.StateLen(models.ScopeEncoder)
	nEncP := nn.ParamCount(enc.EncoderParams())

	dense := func(seed int64, n int) []float32 {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float32, n)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		return v
	}

	return []shardCase{
		{
			name: "fedavg",
			agg:  func() Aggregator { return NewFedAvgAggregator(models.Build(spec, 7), Config{NumClients: 9}) },
			upload: func(i int) []byte {
				return comm.EncodeDense(dense(int64(100+i), nState))
			},
		},
		{
			name: "scaffold",
			agg:  func() Aggregator { return NewSCAFFOLDAggregator(models.Build(spec, 7), Config{NumClients: 9}) },
			upload: func(i int) []byte {
				return comm.JoinPayloads(
					comm.EncodeDense(dense(int64(200+i), nState)),
					comm.EncodeDense(dense(int64(300+i), nParams)))
			},
			extra: func(a Aggregator) []float32 { return a.(*SCAFFOLDAggregator).ControlVariate() },
		},
		{
			name: "fednova",
			agg:  func() Aggregator { return NewFedNovaAggregator(models.Build(spec, 7), Config{NumClients: 9}) },
			upload: func(i int) []byte {
				var steps [4]byte
				binary.LittleEndian.PutUint32(steps[:], uint32(3+i))
				return comm.JoinPayloads(
					comm.EncodeDense(dense(int64(400+i), nState)),
					comm.EncodeDense(dense(int64(500+i), nParams)),
					steps[:])
			},
			extra: func(a Aggregator) []float32 { return a.(*FedNovaAggregator).Velocity() },
		},
		{
			name: "spatl",
			agg: func() Aggregator {
				return NewSPATLAggregator(models.Build(resnet, 11), SPATLOptions{}, Config{NumClients: 9})
			},
			upload: func(i int) []byte {
				rng := rand.New(rand.NewSource(int64(600 + i)))
				dW := synthSparse(rng, nEnc)
				dC := synthSparse(rng, nEncP)
				return comm.JoinPayloads(comm.EncodeSparse(dW), comm.EncodeSparse(dC))
			},
			extra: func(a Aggregator) []float32 { return a.(*SPATLAggregator).ControlVariate() },
		},
		{
			name: "fedavg-f16", // FedProx shares FedAvg's aggregator; cover the f16 wire instead
			agg: func() Aggregator {
				return NewFedAvgAggregator(models.Build(spec, 7), Config{NumClients: 9, HalfPrecision: true})
			},
			upload: func(i int) []byte {
				return comm.EncodeDenseF16(dense(int64(700+i), nState))
			},
		},
	}
}

// globalOf reads the aggregator's global model state.
func globalOf(a Aggregator) []float32 {
	switch ag := a.(type) {
	case *FedAvgAggregator:
		return ag.Global.State(models.ScopeAll)
	case *SCAFFOLDAggregator:
		return ag.Global.State(models.ScopeAll)
	case *FedNovaAggregator:
		return ag.Global.State(models.ScopeAll)
	case *SPATLAggregator:
		return ag.Global.State(models.ScopeAll)
	}
	return nil
}

func bitsEqual(t *testing.T, label string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for j := range want {
		if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
			t.Fatalf("%s: [%d] differs bitwise: %x vs %x", label, j,
				math.Float32bits(got[j]), math.Float32bits(want[j]))
		}
	}
}

// TestShardedReduceMatchesFlat is the shard layer's contract: folding
// pooled shard payloads in shard-ID order is bitwise identical to the
// flat sequential collect, for every algorithm, at any shard count and
// any GOMAXPROCS — including when a malformed upload rides in the middle
// (drop parity) and when whole shards are empty.
func TestShardedReduceMatchesFlat(t *testing.T) {
	const clients = 9
	for _, tc := range shardCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ups := make([]Upload, clients)
			for i := range ups {
				ups[i] = Upload{Client: uint32(i), TrainSize: 50 + i*10, Payload: tc.upload(i)}
			}
			ups[4].Payload = []byte{0xde, 0xad} // drop parity: one corrupt upload mid-selection

			// Flat reference: sequential Collect in selection order.
			flat := tc.agg()
			for _, u := range ups {
				flat.Collect(0, u.Client, u.TrainSize, u.Payload)
			}
			flat.FinishRound(0)
			wantState := globalOf(flat)
			var wantExtra []float32
			if tc.extra != nil {
				wantExtra = append([]float32(nil), tc.extra(flat)...)
			}
			wantDrops := flat.(interface{ Dropped() int64 }).Dropped()

			for _, S := range []int{1, 2, 3, 5, clients, clients + 4} {
				for _, procs := range []int{1, runtime.NumCPU()} {
					prev := runtime.GOMAXPROCS(procs)
					sharded := tc.agg()
					shards := make([]*ShardBuffer, S)
					for s := range shards {
						shards[s] = &ShardBuffer{}
						lo, hi := ShardRange(s, clients, S)
						for pos := lo; pos < hi; pos++ {
							u := ups[pos]
							shards[s].Add(u.Client, u.TrainSize, u.Payload)
						}
					}
					folded, err := FoldShards(sharded, 0, shards)
					if err != nil {
						t.Fatalf("S=%d: fold error: %v", S, err)
					}
					if folded != clients {
						t.Fatalf("S=%d: folded %d uploads, want %d", S, folded, clients)
					}
					sharded.FinishRound(0)
					runtime.GOMAXPROCS(prev)

					label := tc.name + "/state"
					bitsEqual(t, label, globalOf(sharded), wantState)
					if tc.extra != nil {
						bitsEqual(t, tc.name+"/extra", tc.extra(sharded), wantExtra)
					}
					if d := sharded.(interface{ Dropped() int64 }).Dropped(); d != wantDrops {
						t.Fatalf("S=%d procs=%d: drops %d, want %d", S, procs, d, wantDrops)
					}
				}
			}
		})
	}
}

// TestCollectBatchMatchesSequential pins the BatchCollector fast path
// directly against sequential Collect calls on a second aggregator.
func TestCollectBatchMatchesSequential(t *testing.T) {
	const clients = 6
	for _, tc := range shardCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ups := make([]Upload, clients)
			for i := range ups {
				ups[i] = Upload{Client: uint32(i), TrainSize: 40 + i, Payload: tc.upload(i)}
			}
			seq := tc.agg()
			for _, u := range ups {
				seq.Collect(1, u.Client, u.TrainSize, u.Payload)
			}
			seq.FinishRound(1)

			batch := tc.agg()
			bc, ok := batch.(BatchCollector)
			if !ok {
				t.Fatalf("%T does not implement BatchCollector", batch)
			}
			bc.CollectBatch(1, ups)
			batch.FinishRound(1)

			bitsEqual(t, tc.name, globalOf(batch), globalOf(seq))
		})
	}
}
