package algo

import "spatl/internal/telemetry"

// Telemetry in the algorithm layer follows the package contract of
// internal/telemetry: cores observe, they never participate. Spans and
// size histograms are recorded around the numeric work, never inside
// it, and a nil set makes every hook a no-op branch — the cores run
// identically with telemetry on or off.
//
// Span vocabulary (trace ID = round+1):
//
//	agg.broadcast  encode the round broadcast        (server)
//	agg.collect    decode + buffer one upload        (server)
//	agg.fold       fold one upload into the running accumulators (server)
//	agg.reduce     finalize the round's accumulators  (server)
//	client.update  one full LocalUpdate               (client)
//	client.train   the LocalSGD inside it             (client)
//	client.select  SPATL salient selection            (client)
//
// Size vocabulary: "payload.down" bytes per broadcast, "payload.up"
// bytes per collected upload — both observed server-side so the sim's
// shared set counts each payload exactly once.
//
// Streaming vocabulary (see stream.go): gauges "agg.inflight" (selected
// uploads not yet resolved this round) and "agg.staged" (uploads parked
// ahead of the fold cursor); counters "agg.peak_staged" (high-water
// mark of the staged set) and "agg.staged_overflow" (uploads evicted at
// the staging bound).

// Telemetered is the embeddable telemetry hook shared by every
// aggregator and trainer. Its zero value is inert.
type Telemetered struct {
	tel *telemetry.Set
}

// SetTelemetry installs the set the core records into. Call before the
// first round; cores never synchronize access to the set pointer.
func (t *Telemetered) SetTelemetry(s *telemetry.Set) { t.tel = s }

// Telemetry returns the installed set (nil when telemetry is off).
func (t *Telemetered) Telemetry() *telemetry.Set { return t.tel }

// span starts a span under the round's trace ID (round+1, so round 0
// is distinguishable from "no trace").
func (t *Telemetered) span(round int, name string) *telemetry.Span {
	return t.tel.Span(uint64(round)+1, name)
}

// size observes a payload size histogram.
func (t *Telemetered) size(name string, n int) { t.tel.Size(name, int64(n)) }

// Wirer is any core that accepts a telemetry set — the aggregators and
// trainers here all qualify via the Telemetered embed.
type Wirer interface {
	SetTelemetry(*telemetry.Set)
}

// Wire installs tel on every core that accepts it and ignores the
// rest, so transports can wire heterogeneous core sets in one call.
func Wire(tel *telemetry.Set, cores ...any) {
	for _, c := range cores {
		if w, ok := c.(Wirer); ok {
			w.SetTelemetry(tel)
		}
	}
}
