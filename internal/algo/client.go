package algo

import (
	"math/rand"

	"spatl/internal/data"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/tensor"
)

// Client is one edge device: private train/validation splits and a
// persistent local model (SPATL keeps the predictor here across rounds;
// baselines overwrite the whole model each round).
type Client struct {
	ID    int
	Train *data.Dataset
	Val   *data.Dataset
	Model *models.SplitModel

	// Control is the SCAFFOLD-style client control variate c_i over the
	// algorithm's trainable-parameter scope; nil until the algorithm's
	// trainer initializes it.
	Control []float32
	// Velocity is the client's uploaded momentum state (FedNova).
	Velocity []float32
}

// LocalOpts configures one client's local update phase.
type LocalOpts struct {
	// Params is the parameter set to train (whole model for baselines,
	// encoder+predictor or predictor-only for SPATL variants).
	Params      []*nn.Param
	Epochs      int
	BatchSize   int
	LR          float64
	Momentum    float64
	WeightDecay float64
	GradClip    float64
	// Hook, when non-nil, runs after each backward pass and before the
	// optimizer step; FedProx adds its proximal term here and
	// SCAFFOLD/SPATL apply control-variate gradient correction.
	Hook func(params []*nn.Param)
	// InitVelocity warm-starts the momentum buffers (FedNova).
	InitVelocity []float32
	// FreezeEncoder runs the encoder in evaluation mode and trains only
	// the predictor — SPATL's cold-start transfer path (eq. 4). The
	// encoder's weights and BatchNorm statistics are untouched.
	FreezeEncoder bool
}

// LocalSGD runs minibatch SGD on the client's model and returns the
// number of optimizer steps taken and the final momentum buffers.
func LocalSGD(c *Client, opts LocalOpts, rng *rand.Rand) (steps int, velocity []float32) {
	opt := nn.NewSGD(opts.Params, opts.LR, opts.Momentum, opts.WeightDecay)
	if opts.InitVelocity != nil && opts.Momentum != 0 {
		opt.SetVelocity(opts.InitVelocity)
	}
	allParams := c.Model.Params()
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		for _, idx := range c.Train.Batches(rng, opts.BatchSize) {
			x, y := c.Train.Batch(idx)
			nn.ZeroGrad(allParams)
			var out *tensor.Tensor
			if opts.FreezeEncoder {
				h := c.Model.Encoder.Forward(x, false)
				out = c.Model.Predictor.Forward(h, true)
			} else {
				out = c.Model.Forward(x, true)
			}
			_, grad := nn.SoftmaxCrossEntropy(out, y)
			if opts.FreezeEncoder {
				c.Model.Predictor.Backward(grad)
			} else {
				c.Model.Backward(grad)
			}
			if opts.Hook != nil {
				opts.Hook(opts.Params)
			}
			if opts.GradClip > 0 {
				nn.ClipGradNorm(opts.Params, opts.GradClip)
			}
			opt.Step()
			steps++
		}
	}
	return steps, opt.Velocity()
}
