package algo

import (
	"sort"

	"spatl/internal/telemetry"
)

// Streaming aggregation: fold-on-arrival with deterministic bounded
// staging. Buffer-then-reduce kept every decoded upload alive until
// FinishRound — O(clients × model) peak memory, and the reduce could
// not start until the last upload landed. The stream engine instead
// keeps a cursor over the round's canonical fold order (the selection,
// ascending client ID — the order the serial references replay): an
// upload arriving at the cursor folds immediately into the aggregator's
// persistent float64 accumulators and its decoded buffers are released;
// an upload arriving early parks in a bounded staging pool and drains
// in order as the cursor advances. The summation order is therefore
// fixed by client ID, not by network arrival order, so the reduction is
// bitwise identical at any GOMAXPROCS and under any arrival
// permutation — while worst-case decoded-state memory is the staging
// bound, not the client count.
//
// Two-phase scaling keeps the fold streamable: each fold accumulates
// the unscaled term wᵢ·xᵢ (Σw is unknown mid-round), and FinishRound
// finalizes with a single ÷Σw per index. Both phases run per index in
// float64, so the chain acc += wᵢ·f64(xᵢ) … f32(acc/Σw) is one fixed
// sequence of float64 operations regardless of chunking — the property
// the StreamFoldRef* serial references pin down.

// StreamingAggregator is the streaming contract every aggregator in
// this package implements on top of Aggregator. Transports that know
// the round's selection call BeginRound so in-order uploads fold with
// zero staging; transports that cannot (or aggregators driven without
// BeginRound) degrade to folding in arrival order, the pre-streaming
// behavior.
type StreamingAggregator interface {
	Aggregator
	// BeginRound announces the round's selected client IDs — the
	// canonical fold order after ascending sort. Call after Broadcast
	// and before the first Collect of the round. Without it, Collect
	// folds uploads in arrival order.
	BeginRound(round int, selected []uint32)
	// CollectLate folds a straggler's upload carried over from an
	// earlier round, bypassing the cursor entirely: late uploads fold at
	// their delivery position (FedBuff semantics), even when the same
	// client is also selected — and separately tracked — this round.
	CollectLate(round int, client uint32, trainSize int, payload []byte)
	// MarkAbsent tells the reducer a selected client will not deliver
	// this round (dead connection, straggler deadline, injected drop),
	// so the cursor can advance past it instead of staging every later
	// upload until FinishRound.
	MarkAbsent(round int, client uint32)
	// SetStagingLimit bounds how many out-of-order uploads may park at
	// once. n <= 0 (the default) bounds by the round's selection size —
	// lossless, preserving every upload. With a hard limit, an overflow
	// evicts the staged upload farthest from the cursor (counted in
	// "agg.staged_overflow"): the work closest to folding survives.
	SetStagingLimit(n int)
}

// stagedEntry is one parked out-of-order upload.
type stagedEntry[U any] struct {
	pos int // position in the canonical fold order
	u   U
}

// stream is the generic fold-on-arrival engine embedded by every
// aggregator. The embedding aggregator wires foldFn/releaseFn in its
// constructor; fold order is the engine's contract, the arithmetic is
// the aggregator's.
type stream[U any] struct {
	foldFn    func(U) // fold one decoded upload into the accumulators
	releaseFn func(U) // return the upload's pooled buffers

	order   []uint32         // canonical fold order (ascending client ID)
	arrived []bool           // position resolved: folded, staged or absent
	cursor  int              // next position owed a fold
	staged  []stagedEntry[U] // parked out-of-order uploads (unordered)
	limit   int              // staging bound; <=0 means len(order)

	inflight telemetry.Gauge   // "agg.inflight": selected uploads not yet resolved
	stagedG  telemetry.Gauge   // "agg.staged": currently parked uploads
	peak     telemetry.Counter // "agg.peak_staged": high-water mark of staged
	overflow telemetry.Counter // "agg.staged_overflow": uploads evicted at the bound
}

// wireStream exposes the engine's gauges and counters through the
// registry; called from each aggregator's SetTelemetry.
func (s *stream[U]) wireStream(reg *telemetry.Registry) {
	reg.AttachGauge("agg.inflight", &s.inflight)
	reg.AttachGauge("agg.staged", &s.stagedG)
	reg.Attach("agg.peak_staged", &s.peak)
	reg.Attach("agg.staged_overflow", &s.overflow)
}

// BeginRound implements StreamingAggregator (promoted). The selection
// is copied and sorted ascending — the canonical fold order.
func (s *stream[U]) BeginRound(round int, selected []uint32) {
	s.order = append(s.order[:0], selected...)
	sorted := true
	for i := 1; i < len(s.order); i++ {
		if s.order[i] < s.order[i-1] {
			sorted = false
			break
		}
	}
	if !sorted {
		sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	}
	if cap(s.arrived) < len(s.order) {
		s.arrived = make([]bool, len(s.order))
	}
	s.arrived = s.arrived[:len(s.order)]
	for i := range s.arrived {
		s.arrived[i] = false
	}
	s.cursor = 0
	s.inflight.Set(int64(len(s.order)))
	s.stagedG.Set(0)
}

// SetStagingLimit implements StreamingAggregator (promoted).
func (s *stream[U]) SetStagingLimit(n int) { s.limit = n }

// StagingPeak reports the high-water mark of concurrently staged
// uploads — the same counter the registry exposes as "agg.peak_staged".
func (s *stream[U]) StagingPeak() int64 { return s.peak.Value() }

// StagingOverflow reports how many uploads the bounded pool evicted —
// the same counter the registry exposes as "agg.staged_overflow".
func (s *stream[U]) StagingOverflow() int64 { return s.overflow.Value() }

// MarkAbsent implements StreamingAggregator (promoted): resolve a
// selected client's position without a fold so the cursor can pass it.
func (s *stream[U]) MarkAbsent(round int, client uint32) {
	pos, ok := s.find(client)
	if !ok || s.arrived[pos] {
		return
	}
	s.arrived[pos] = true
	if pos == s.cursor {
		s.advance()
	}
	s.inflight.Set(int64(len(s.order) - s.cursor))
}

// find binary-searches the canonical order for a client ID.
func (s *stream[U]) find(client uint32) (int, bool) {
	pos := sort.Search(len(s.order), func(i int) bool { return s.order[i] >= client })
	return pos, pos < len(s.order) && s.order[pos] == client
}

// ingest routes one decoded upload: fold at the cursor, park early
// arrivals, fold unknown/duplicate contributors at their arrival
// position (the buffered path's append semantics for extras).
func (s *stream[U]) ingest(client uint32, u U) {
	if len(s.order) == 0 {
		// No canonical order announced: arrival order IS the fold order.
		s.foldRelease(u)
		return
	}
	pos, ok := s.find(client)
	if !ok || s.arrived[pos] {
		// Not selected this round, or a duplicate of a resolved
		// position: fold where it arrived — extras have no slot in the
		// canonical order.
		s.foldRelease(u)
		return
	}
	s.arrived[pos] = true
	if pos == s.cursor {
		s.foldRelease(u)
		s.cursor++
		s.advance()
		return
	}
	s.stage(pos, u)
	s.inflight.Set(int64(len(s.order) - s.cursor))
}

// foldNow folds an upload immediately, outside the cursor discipline —
// the CollectLate path.
func (s *stream[U]) foldNow(u U) { s.foldRelease(u) }

func (s *stream[U]) foldRelease(u U) {
	s.foldFn(u)
	s.releaseFn(u)
}

// stage parks an early upload, enforcing the bound by evicting the
// entry farthest from the cursor (it has the longest wait and the least
// chance of folding before FinishRound drains everything anyway).
func (s *stream[U]) stage(pos int, u U) {
	limit := s.limit
	if limit <= 0 || limit > len(s.order) {
		limit = len(s.order)
	}
	if len(s.staged) >= limit {
		far := 0
		for i := 1; i < len(s.staged); i++ {
			if s.staged[i].pos > s.staged[far].pos {
				far = i
			}
		}
		s.overflow.Inc()
		if s.staged[far].pos > pos {
			s.releaseFn(s.staged[far].u)
			s.staged[far] = stagedEntry[U]{pos: pos, u: u}
		} else {
			s.releaseFn(u)
		}
		s.stagedG.Set(int64(len(s.staged)))
		return
	}
	s.staged = append(s.staged, stagedEntry[U]{pos: pos, u: u})
	s.stagedG.Set(int64(len(s.staged)))
	if n := int64(len(s.staged)); n > s.peak.Value() {
		s.peak.Add(n - s.peak.Value())
	}
}

// advance folds staged uploads in position order for as long as every
// position at the cursor is resolved.
func (s *stream[U]) advance() {
	for s.cursor < len(s.order) && s.arrived[s.cursor] {
		found := false
		for i := range s.staged {
			if s.staged[i].pos == s.cursor {
				s.foldRelease(s.staged[i].u)
				last := len(s.staged) - 1
				s.staged[i] = s.staged[last]
				s.staged[last] = stagedEntry[U]{}
				s.staged = s.staged[:last]
				found = true
				break
			}
		}
		_ = found // absent positions have no staged entry: nothing to fold
		s.cursor++
	}
	s.inflight.Set(int64(len(s.order) - s.cursor))
	s.stagedG.Set(int64(len(s.staged)))
}

// finishStream drains whatever is still parked — uploads whose
// predecessors never arrived — in position order, then resets the round
// state. Called at the top of every FinishRound, before finalization.
func (s *stream[U]) finishStream() {
	if len(s.staged) > 0 {
		sort.Slice(s.staged, func(i, j int) bool { return s.staged[i].pos < s.staged[j].pos })
		for i := range s.staged {
			s.foldRelease(s.staged[i].u)
			s.staged[i] = stagedEntry[U]{}
		}
		s.staged = s.staged[:0]
	}
	s.order = s.order[:0]
	s.cursor = 0
	s.inflight.Set(0)
	s.stagedG.Set(0)
}

// Interface conformance: all six algorithm cores stream.
var (
	_ StreamingAggregator = (*FedAvgAggregator)(nil)
	_ StreamingAggregator = (*FedNovaAggregator)(nil)
	_ StreamingAggregator = (*SCAFFOLDAggregator)(nil)
	_ StreamingAggregator = (*SPATLAggregator)(nil)
	_ StreamingAggregator = (*SSFLAggregator)(nil)
)
