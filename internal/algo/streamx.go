package algo

import (
	"spatl/internal/comm"
	"spatl/internal/nn"
	"spatl/internal/telemetry"
)

// Stream exports the fold-on-arrival engine for aggregators built
// outside this package (internal/hetero). Embedding a Stream gives an
// aggregator the full StreamingAggregator surface minus CollectLate:
// BeginRound, MarkAbsent, SetStagingLimit, StagingPeak and
// StagingOverflow are promoted from the engine; the embedding
// aggregator wires its fold/release callbacks with Init and routes
// decoded uploads through Ingest (cursor discipline) or FoldNow (the
// CollectLate path). The determinism contract is identical to the
// in-package aggregators': fold order is the canonical ascending
// client-ID order whatever the arrival permutation, so a per-index
// float64 fold chain is bitwise reproducible at any GOMAXPROCS.
type Stream[U any] struct {
	stream[U]
}

// Init wires the engine's callbacks: fold merges one decoded upload
// into the embedding aggregator's accumulators, release returns the
// upload's pooled buffers. Call once, from the constructor, before the
// first Ingest.
func (s *Stream[U]) Init(fold, release func(U)) {
	s.foldFn = fold
	s.releaseFn = release
}

// Ingest routes one decoded upload through the streaming cursor: fold
// at the cursor, park early arrivals, fold extras at arrival position.
func (s *Stream[U]) Ingest(client uint32, u U) { s.ingest(client, u) }

// FoldNow folds an upload immediately, outside the cursor discipline —
// the CollectLate path.
func (s *Stream[U]) FoldNow(u U) { s.foldNow(u) }

// FinishStream drains whatever is still parked in position order and
// resets the round state. Call at the top of FinishRound, before
// finalization.
func (s *Stream[U]) FinishStream() { s.finishStream() }

// WireStream exposes the engine's gauges and counters through the
// registry; call from the aggregator's SetTelemetry.
func (s *Stream[U]) WireStream(reg *telemetry.Registry) { s.wireStream(reg) }

// RoundSpan starts a span under the round's trace ID (round+1) — the
// span helper the in-package cores use, promoted for cores built
// outside this package. Nil-safe when no telemetry is installed.
func (t *Telemetered) RoundSpan(round int, name string) *telemetry.Span {
	return t.span(round, name)
}

// ObserveSize observes a payload size histogram ("payload.up",
// "payload.down"). Nil-safe when no telemetry is installed.
func (t *Telemetered) ObserveSize(name string, n int) { t.size(name, n) }

// ZeroGradRangesHook returns a LocalOpts hook zeroing the gradient
// entries covered by ranges over the flattened ctrlP parameters — the
// mask-static mechanism (see SSFLTrainer) exported for slice-training
// cores outside this package: weights outside the trained slice take no
// optimizer step, so they hold whatever value the slice installer wrote
// (exact zero for SSFL's pruned channels, the broadcast value for a
// width-sliced hetero client).
func ZeroGradRangesHook(ranges []comm.Range, ctrlP []*nn.Param) func(params []*nn.Param) {
	return zeroGradRanges(ranges, ctrlP)
}
