package algo

import (
	"bytes"
	"testing"
)

// FuzzShardPayload hammers the pooled shard wire format: the decoder
// must never panic on hostile bytes, must reject anything a ShardBuffer
// would not have produced, and accepted payloads must re-encode to the
// identical bytes (the format has exactly one encoding per entry list).
func FuzzShardPayload(f *testing.F) {
	var sb ShardBuffer
	sb.Add(3, 50, []byte{1, 2, 3})
	sb.Add(4, 70, nil)
	sb.Add(9, 10, bytes.Repeat([]byte{0xAB}, 40))
	f.Add(append([]byte(nil), sb.Payload()...))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ShardEntries(nil, data)
		if err != nil {
			return
		}
		var re ShardBuffer
		for _, e := range entries {
			re.Add(e.Client, e.TrainSize, e.Payload)
		}
		if !bytes.Equal(re.Payload(), data) {
			t.Fatalf("accepted payload does not round-trip:\n in: %x\nout: %x", data, re.Payload())
		}
	})
}
