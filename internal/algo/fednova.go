package algo

import (
	"encoding/binary"
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// FedNovaAggregator is the server side of FedNova (Wang et al.):
// normalized updates dᵢ = (x_g − x_i)/τᵢ weighted by data size, with
// τ_eff = Σpᵢτᵢ rescaling, plus the momentum variant — clients ship
// their momentum buffers, the server averages and redistributes them
// (the ≈2× per-round uplink the SPATL paper reports for FedNova).
type FedNovaAggregator struct {
	Telemetered
	stream[fednovaUpload]
	Global *models.SplitModel

	cfg      Config
	velocity []float32 // server-averaged momentum over trainable params
	bcast    []byte
	accD     []float64 // unscaled Σ wᵢ·dᵢ, folded on arrival
	accV     []float64 // unscaled Σ wᵢ·vᵢ
	sumW     float64
	sumWTau  float64 // Σ wᵢ·τᵢ (τ_eff numerator)
	folded   int
	curRound int
	dropped  telemetry.Counter
}

// fednovaUpload is one client's decoded round contribution.
type fednovaUpload struct {
	d, v []float32
	tau  float64 // local step count τᵢ
	w    float64 // data-size weight
}

// NewFedNovaAggregator wires the aggregator around the global model.
func NewFedNovaAggregator(global *models.SplitModel, cfg Config) *FedNovaAggregator {
	a := &FedNovaAggregator{
		Global:   global,
		cfg:      cfg.WithDefaults(),
		velocity: make([]float32, nn.ParamCount(global.Params())),
	}
	a.foldFn = a.fold
	a.releaseFn = func(u fednovaUpload) {
		comm.PutF32(u.d)
		comm.PutF32(u.v)
	}
	return a
}

// Velocity exposes the server-averaged momentum (read-only use).
func (a *FedNovaAggregator) Velocity() []float32 { return a.velocity }

// Dropped reports how many malformed uploads have been discarded.
func (a *FedNovaAggregator) Dropped() int64 { return a.dropped.Value() }

// SetTelemetry implements Wirer, additionally exposing the drop counter
// through the registry — the same counter Dropped reads.
func (a *FedNovaAggregator) SetTelemetry(s *telemetry.Set) {
	a.Telemetered.SetTelemetry(s)
	if s != nil && s.Reg != nil {
		s.Reg.Attach("algo.uploads_dropped", &a.dropped)
		a.wireStream(s.Reg)
	}
}

// Broadcast implements Aggregator: joined dense payloads for the model
// state and the server momentum.
func (a *FedNovaAggregator) Broadcast(round int) []byte {
	defer a.span(round, "agg.broadcast").End()
	n := a.Global.StateLen(models.ScopeAll)
	state := a.Global.StateInto(models.ScopeAll, comm.GetF32(n))
	encS := a.cfg.encodeDenseInto(comm.GetBuf(a.cfg.denseLen(n)), state)
	encV := a.cfg.encodeDenseInto(comm.GetBuf(a.cfg.denseLen(len(a.velocity))), a.velocity)
	a.bcast = comm.JoinPayloadsInto(a.bcast, encS, encV)
	comm.PutBuf(encV)
	comm.PutBuf(encS)
	comm.PutF32(state)
	a.size("payload.down", len(a.bcast))
	return a.bcast
}

// decodeUpload decodes one three-part upload — normalized update d,
// momentum buffer, and the local step count τ as 4-byte little-endian —
// the shared front half of Collect, CollectLate and CollectBatch.
func (a *FedNovaAggregator) decodeUpload(trainSize int, payload []byte) (fednovaUpload, bool) {
	a.size("payload.up", len(payload))
	parts, err := comm.SplitPayloads(payload)
	if err != nil || len(parts) != 3 || len(parts[2]) != 4 {
		a.dropped.Add(1)
		return fednovaUpload{}, false
	}
	steps := binary.LittleEndian.Uint32(parts[2])
	nState := a.Global.StateLen(models.ScopeAll)
	d, err1 := comm.DecodeDenseAnyInto(comm.GetF32(nState), parts[0])
	v, err2 := comm.DecodeDenseAnyInto(comm.GetF32(len(a.velocity)), parts[1])
	if err1 != nil || err2 != nil || len(d) != nState || len(v) != len(a.velocity) || steps == 0 {
		a.dropped.Add(1)
		comm.PutF32(d)
		comm.PutF32(v)
		return fednovaUpload{}, false
	}
	return fednovaUpload{d: d, v: v, tau: float64(steps), w: float64(trainSize)}, true
}

// fold adds one upload's unscaled wᵢ·dᵢ and wᵢ·vᵢ terms into the
// float64 accumulators and tallies the τ_eff numerator.
func (a *FedNovaAggregator) fold(u fednovaUpload) {
	defer a.span(a.curRound, "agg.fold").End()
	if a.folded == 0 {
		if cap(a.accD) < len(u.d) {
			a.accD = make([]float64, len(u.d))
		}
		a.accD = a.accD[:len(u.d)]
		for j := range a.accD {
			a.accD[j] = 0
		}
		if cap(a.accV) < len(u.v) {
			a.accV = make([]float64, len(u.v))
		}
		a.accV = a.accV[:len(u.v)]
		for j := range a.accV {
			a.accV[j] = 0
		}
		a.sumW, a.sumWTau = 0, 0
	}
	a.folded++
	a.sumW += u.w
	a.sumWTau += u.w * u.tau
	tensor.Parallel(len(u.d), func(lo, hi int) {
		tensor.VecAccumScaled(a.accD[lo:hi], u.d[lo:hi], u.w)
	})
	tensor.Parallel(len(u.v), func(lo, hi int) {
		tensor.VecAccumScaled(a.accV[lo:hi], u.v[lo:hi], u.w)
	})
}

// Collect implements Aggregator: decode, then fold through the
// streaming cursor; buffers release right after the fold.
func (a *FedNovaAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(trainSize, payload); ok {
		a.ingest(client, u)
	}
}

// CollectLate implements StreamingAggregator: a carried-over straggler
// upload folds at its delivery position, outside the cursor.
func (a *FedNovaAggregator) CollectLate(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(trainSize, payload); ok {
		a.foldNow(u)
	}
}

// CollectBatch implements BatchCollector: the Collect decode run
// concurrently over a whole batch, then ingested in upload order.
func (a *FedNovaAggregator) CollectBatch(round int, ups []Upload) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	type entry struct {
		client uint32
		u      fednovaUpload
	}
	entries := decodeBatch(ups, func(up Upload) (entry, bool) {
		u, ok := a.decodeUpload(up.TrainSize, up.Payload)
		return entry{client: up.Client, u: u}, ok
	})
	for _, e := range entries {
		a.ingest(e.client, e.u)
	}
}

// FinishRound implements Aggregator: τ_eff = Σwᵢτᵢ/Σwᵢ ; x_g ← x_g −
// τ_eff·(Σwᵢdᵢ/Σwᵢ) ; velocity = Σwᵢvᵢ/Σwᵢ — the finalize half of the
// two-phase reduce, bitwise identical to StreamFoldRefFedNova at any
// GOMAXPROCS.
func (a *FedNovaAggregator) FinishRound(round int) {
	defer a.span(round, "agg.reduce").End()
	a.curRound = round
	a.finishStream()
	if a.folded == 0 || a.sumW == 0 {
		a.folded = 0
		return
	}
	tauEff := a.sumWTau / a.sumW
	nState := len(a.accD)
	globalState := a.Global.StateInto(models.ScopeAll, comm.GetF32(nState))
	newState := comm.GetF32(nState)
	tensor.Parallel(nState, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			newState[j] = float32(float64(globalState[j]) - tauEff*(a.accD[j]/a.sumW))
		}
	})
	a.Global.SetState(models.ScopeAll, newState)
	comm.PutF32(newState)
	comm.PutF32(globalState)
	tensor.Parallel(len(a.velocity), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			a.velocity[j] = float32(a.accV[j] / a.sumW)
		}
	})
	a.folded = 0
	a.sumW, a.sumWTau = 0, 0
}

// Final implements Aggregator.
func (a *FedNovaAggregator) Final() []byte {
	return comm.EncodeDense(a.Global.State(models.ScopeAll))
}

// FedNovaTrainer is the client side: warm-start momentum from the
// broadcast buffer, run local SGD, upload the τ-normalized update, the
// final momentum and the step count.
type FedNovaTrainer struct {
	Telemetered
	Client *Client

	cfg   Config
	upBuf []byte
}

// NewFedNovaTrainer wires a trainer around a client.
func NewFedNovaTrainer(c *Client, cfg Config) *FedNovaTrainer {
	return &FedNovaTrainer{Client: c, cfg: cfg.WithDefaults()}
}

// LocalUpdate implements Trainer.
func (t *FedNovaTrainer) LocalUpdate(round int, payload []byte) []byte {
	sp := t.span(round, "client.update")
	defer sp.End()
	m := t.Client.Model
	nState := m.StateLen(models.ScopeAll)
	nVel := nn.ParamCount(m.Params())
	parts, err := comm.SplitPayloads(payload)
	if err != nil || len(parts) != 2 {
		return nil
	}
	globalState, err1 := comm.DecodeDenseAnyInto(comm.GetF32(nState), parts[0])
	initVel, err2 := comm.DecodeDenseAnyInto(comm.GetF32(nVel), parts[1])
	if err1 != nil || err2 != nil || len(globalState) != nState || len(initVel) != nVel {
		comm.PutF32(globalState)
		comm.PutF32(initVel)
		return nil
	}
	m.SetState(models.ScopeAll, globalState)
	rng := rand.New(rand.NewSource(ClientSeed(t.cfg.Seed, round, t.Client.ID)))
	opts := t.cfg.localOpts(m.Params(), round)
	opts.InitVelocity = initVel // SetVelocity copies, pooled buffer is safe
	train := sp.Child("client.train")
	steps, vel := LocalSGD(t.Client, opts, rng)
	train.End()
	comm.PutF32(initVel)

	localState := m.StateInto(models.ScopeAll, comm.GetF32(nState))
	d := comm.GetF32(nState)
	inv := 1.0 / float64(steps)
	for j := range d {
		d[j] = float32(float64(globalState[j]-localState[j]) * inv)
	}
	comm.PutF32(localState)
	comm.PutF32(globalState)
	if vel == nil {
		vel = make([]float32, nVel)
	}
	t.Client.Velocity = vel
	encD := t.cfg.encodeDenseInto(comm.GetBuf(t.cfg.denseLen(len(d))), d)
	encV := t.cfg.encodeDenseInto(comm.GetBuf(t.cfg.denseLen(len(vel))), vel)
	var stepsBuf [4]byte
	binary.LittleEndian.PutUint32(stepsBuf[:], uint32(steps))
	t.upBuf = comm.JoinPayloadsInto(t.upBuf, encD, encV, stepsBuf[:])
	comm.PutBuf(encV)
	comm.PutBuf(encD)
	comm.PutF32(d)
	return t.upBuf
}

// Finish implements Trainer.
func (t *FedNovaTrainer) Finish(payload []byte) {
	if state, err := comm.DecodeDenseAnyInto(nil, payload); err == nil {
		t.Client.Model.SetState(models.ScopeAll, state)
	}
}
