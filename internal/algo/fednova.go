package algo

import (
	"encoding/binary"
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// FedNovaAggregator is the server side of FedNova (Wang et al.):
// normalized updates dᵢ = (x_g − x_i)/τᵢ weighted by data size, with
// τ_eff = Σpᵢτᵢ rescaling, plus the momentum variant — clients ship
// their momentum buffers, the server averages and redistributes them
// (the ≈2× per-round uplink the SPATL paper reports for FedNova).
type FedNovaAggregator struct {
	Telemetered
	Global *models.SplitModel

	cfg      Config
	velocity []float32 // server-averaged momentum over trainable params
	bcast    []byte
	pending  []fednovaUpload
	dropped  telemetry.Counter
}

// fednovaUpload is one client's decoded round contribution.
type fednovaUpload struct {
	d, v []float32
	tau  float64 // local step count τᵢ
	w    float64 // data-size weight
}

// NewFedNovaAggregator wires the aggregator around the global model.
func NewFedNovaAggregator(global *models.SplitModel, cfg Config) *FedNovaAggregator {
	return &FedNovaAggregator{
		Global:   global,
		cfg:      cfg.WithDefaults(),
		velocity: make([]float32, nn.ParamCount(global.Params())),
	}
}

// Velocity exposes the server-averaged momentum (read-only use).
func (a *FedNovaAggregator) Velocity() []float32 { return a.velocity }

// Dropped reports how many malformed uploads have been discarded.
func (a *FedNovaAggregator) Dropped() int64 { return a.dropped.Value() }

// SetTelemetry implements Wirer, additionally exposing the drop counter
// through the registry — the same counter Dropped reads.
func (a *FedNovaAggregator) SetTelemetry(s *telemetry.Set) {
	a.Telemetered.SetTelemetry(s)
	if s != nil && s.Reg != nil {
		s.Reg.Attach("algo.uploads_dropped", &a.dropped)
	}
}

// Broadcast implements Aggregator: joined dense payloads for the model
// state and the server momentum.
func (a *FedNovaAggregator) Broadcast(round int) []byte {
	defer a.span(round, "agg.broadcast").End()
	n := a.Global.StateLen(models.ScopeAll)
	state := a.Global.StateInto(models.ScopeAll, comm.GetF32(n))
	encS := a.cfg.encodeDenseInto(comm.GetBuf(a.cfg.denseLen(n)), state)
	encV := a.cfg.encodeDenseInto(comm.GetBuf(a.cfg.denseLen(len(a.velocity))), a.velocity)
	a.bcast = comm.JoinPayloadsInto(a.bcast, encS, encV)
	comm.PutBuf(encV)
	comm.PutBuf(encS)
	comm.PutF32(state)
	a.size("payload.down", len(a.bcast))
	return a.bcast
}

// Collect implements Aggregator: three joined parts — normalized update
// d, momentum buffer, and the local step count τ as 4-byte little-endian.
func (a *FedNovaAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.size("payload.up", len(payload))
	parts, err := comm.SplitPayloads(payload)
	if err != nil || len(parts) != 3 || len(parts[2]) != 4 {
		a.dropped.Add(1)
		return
	}
	steps := binary.LittleEndian.Uint32(parts[2])
	nState := a.Global.StateLen(models.ScopeAll)
	d, err1 := comm.DecodeDenseAnyInto(comm.GetF32(nState), parts[0])
	v, err2 := comm.DecodeDenseAnyInto(comm.GetF32(len(a.velocity)), parts[1])
	if err1 != nil || err2 != nil || len(d) != nState || len(v) != len(a.velocity) || steps == 0 {
		a.dropped.Add(1)
		comm.PutF32(d)
		comm.PutF32(v)
		return
	}
	a.pending = append(a.pending, fednovaUpload{d: d, v: v, tau: float64(steps), w: float64(trainSize)})
}

// CollectBatch implements BatchCollector: the Collect decode run
// concurrently over a whole batch, results buffered in upload order.
func (a *FedNovaAggregator) CollectBatch(round int, ups []Upload) {
	defer a.span(round, "agg.collect").End()
	nState := a.Global.StateLen(models.ScopeAll)
	a.pending = append(a.pending, decodeBatch(ups, func(u Upload) (fednovaUpload, bool) {
		a.size("payload.up", len(u.Payload))
		parts, err := comm.SplitPayloads(u.Payload)
		if err != nil || len(parts) != 3 || len(parts[2]) != 4 {
			a.dropped.Add(1)
			return fednovaUpload{}, false
		}
		steps := binary.LittleEndian.Uint32(parts[2])
		d, err1 := comm.DecodeDenseAnyInto(comm.GetF32(nState), parts[0])
		v, err2 := comm.DecodeDenseAnyInto(comm.GetF32(len(a.velocity)), parts[1])
		if err1 != nil || err2 != nil || len(d) != nState || len(v) != len(a.velocity) || steps == 0 {
			a.dropped.Add(1)
			comm.PutF32(d)
			comm.PutF32(v)
			return fednovaUpload{}, false
		}
		return fednovaUpload{d: d, v: v, tau: float64(steps), w: float64(u.TrainSize)}, true
	})...)
}

// FinishRound implements Aggregator: τ_eff = Σ pᵢ·τᵢ ; x_g ← x_g −
// τ_eff · Σ pᵢ·dᵢ ; velocity = Σ pᵢ·vᵢ. The reductions chunk the
// parameter dimension, clients in fixed order per index, bitwise
// identical to the serial loops at any GOMAXPROCS.
func (a *FedNovaAggregator) FinishRound(round int) {
	defer a.span(round, "agg.reduce").End()
	if len(a.pending) == 0 {
		return
	}
	total := 0.0
	for _, u := range a.pending {
		total += u.w
	}
	if total == 0 {
		a.release()
		return
	}
	var tauEff float64
	for _, u := range a.pending {
		tauEff += (u.w / total) * u.tau
	}
	nState := a.Global.StateLen(models.ScopeAll)
	globalState := a.Global.StateInto(models.ScopeAll, comm.GetF32(nState))
	newState := comm.GetF32(nState)
	tensor.Parallel(nState, func(lo, hi int) {
		copy(newState[lo:hi], globalState[lo:hi])
		for _, u := range a.pending {
			p := u.w / total
			for j := lo; j < hi; j++ {
				newState[j] -= float32(tauEff * p * float64(u.d[j]))
			}
		}
	})
	a.Global.SetState(models.ScopeAll, newState)
	comm.PutF32(newState)
	comm.PutF32(globalState)
	tensor.Parallel(len(a.velocity), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			a.velocity[j] = 0
		}
		for _, u := range a.pending {
			p := u.w / total
			for j := lo; j < hi; j++ {
				a.velocity[j] += float32(p * float64(u.v[j]))
			}
		}
	})
	a.release()
}

func (a *FedNovaAggregator) release() {
	for _, u := range a.pending {
		comm.PutF32(u.d)
		comm.PutF32(u.v)
	}
	a.pending = a.pending[:0]
}

// Final implements Aggregator.
func (a *FedNovaAggregator) Final() []byte {
	return comm.EncodeDense(a.Global.State(models.ScopeAll))
}

// FedNovaTrainer is the client side: warm-start momentum from the
// broadcast buffer, run local SGD, upload the τ-normalized update, the
// final momentum and the step count.
type FedNovaTrainer struct {
	Telemetered
	Client *Client

	cfg   Config
	upBuf []byte
}

// NewFedNovaTrainer wires a trainer around a client.
func NewFedNovaTrainer(c *Client, cfg Config) *FedNovaTrainer {
	return &FedNovaTrainer{Client: c, cfg: cfg.WithDefaults()}
}

// LocalUpdate implements Trainer.
func (t *FedNovaTrainer) LocalUpdate(round int, payload []byte) []byte {
	sp := t.span(round, "client.update")
	defer sp.End()
	m := t.Client.Model
	nState := m.StateLen(models.ScopeAll)
	nVel := nn.ParamCount(m.Params())
	parts, err := comm.SplitPayloads(payload)
	if err != nil || len(parts) != 2 {
		return nil
	}
	globalState, err1 := comm.DecodeDenseAnyInto(comm.GetF32(nState), parts[0])
	initVel, err2 := comm.DecodeDenseAnyInto(comm.GetF32(nVel), parts[1])
	if err1 != nil || err2 != nil || len(globalState) != nState || len(initVel) != nVel {
		comm.PutF32(globalState)
		comm.PutF32(initVel)
		return nil
	}
	m.SetState(models.ScopeAll, globalState)
	rng := rand.New(rand.NewSource(ClientSeed(t.cfg.Seed, round, t.Client.ID)))
	opts := t.cfg.localOpts(m.Params(), round)
	opts.InitVelocity = initVel // SetVelocity copies, pooled buffer is safe
	train := sp.Child("client.train")
	steps, vel := LocalSGD(t.Client, opts, rng)
	train.End()
	comm.PutF32(initVel)

	localState := m.StateInto(models.ScopeAll, comm.GetF32(nState))
	d := comm.GetF32(nState)
	inv := 1.0 / float64(steps)
	for j := range d {
		d[j] = float32(float64(globalState[j]-localState[j]) * inv)
	}
	comm.PutF32(localState)
	comm.PutF32(globalState)
	if vel == nil {
		vel = make([]float32, nVel)
	}
	t.Client.Velocity = vel
	encD := t.cfg.encodeDenseInto(comm.GetBuf(t.cfg.denseLen(len(d))), d)
	encV := t.cfg.encodeDenseInto(comm.GetBuf(t.cfg.denseLen(len(vel))), vel)
	var stepsBuf [4]byte
	binary.LittleEndian.PutUint32(stepsBuf[:], uint32(steps))
	t.upBuf = comm.JoinPayloadsInto(t.upBuf, encD, encV, stepsBuf[:])
	comm.PutBuf(encV)
	comm.PutBuf(encD)
	comm.PutF32(d)
	return t.upBuf
}

// Finish implements Trainer.
func (t *FedNovaTrainer) Finish(payload []byte) {
	if state, err := comm.DecodeDenseAnyInto(nil, payload); err == nil {
		t.Client.Model.SetState(models.ScopeAll, state)
	}
}
