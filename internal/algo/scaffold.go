package algo

import (
	"fmt"
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// SCAFFOLDAggregator is the server side of SCAFFOLD (Karimireddy et
// al.): it holds the server control variate c, broadcasts it alongside
// the model, and folds the uploaded (Δw, Δc) pairs with
// x += (1/|S|)·ΣΔw and c += (1/N)·ΣΔc.
type SCAFFOLDAggregator struct {
	Telemetered
	stream[scaffoldUpload]
	Global *models.SplitModel

	cfg      Config
	c        []float32 // server control variate over trainable params
	bcast    []byte
	accW     []float64 // unscaled ΣΔwᵢ, folded on arrival
	accC     []float64 // unscaled ΣΔcᵢ
	folded   int
	curRound int
	dropped  telemetry.Counter
}

// scaffoldUpload is one client's decoded round contribution.
type scaffoldUpload struct {
	dW, dC []float32
}

// NewSCAFFOLDAggregator wires the aggregator around the global model.
// cfg.NumClients must be the federation size N (the control update
// scales by 1/N).
func NewSCAFFOLDAggregator(global *models.SplitModel, cfg Config) *SCAFFOLDAggregator {
	cfg = cfg.WithDefaults()
	if cfg.NumClients <= 0 {
		panic(fmt.Sprintf("algo: SCAFFOLD needs Config.NumClients > 0, got %d", cfg.NumClients))
	}
	a := &SCAFFOLDAggregator{
		Global: global,
		cfg:    cfg,
		c:      make([]float32, nn.ParamCount(global.Params())),
	}
	a.foldFn = a.fold
	a.releaseFn = func(u scaffoldUpload) {
		comm.PutF32(u.dW)
		comm.PutF32(u.dC)
	}
	return a
}

// ControlVariate exposes the server control variate c (read-only use).
func (a *SCAFFOLDAggregator) ControlVariate() []float32 { return a.c }

// Dropped reports how many malformed uploads have been discarded.
func (a *SCAFFOLDAggregator) Dropped() int64 { return a.dropped.Value() }

// SetTelemetry implements Wirer, additionally exposing the drop counter
// through the registry — the same counter Dropped reads.
func (a *SCAFFOLDAggregator) SetTelemetry(s *telemetry.Set) {
	a.Telemetered.SetTelemetry(s)
	if s != nil && s.Reg != nil {
		s.Reg.Attach("algo.uploads_dropped", &a.dropped)
		a.wireStream(s.Reg)
	}
}

// Broadcast implements Aggregator: joined dense payloads for the model
// state and the server control variate.
func (a *SCAFFOLDAggregator) Broadcast(round int) []byte {
	defer a.span(round, "agg.broadcast").End()
	n := a.Global.StateLen(models.ScopeAll)
	state := a.Global.StateInto(models.ScopeAll, comm.GetF32(n))
	encS := a.cfg.encodeDenseInto(comm.GetBuf(a.cfg.denseLen(n)), state)
	encC := a.cfg.encodeDenseInto(comm.GetBuf(a.cfg.denseLen(len(a.c))), a.c)
	a.bcast = comm.JoinPayloadsInto(a.bcast, encS, encC)
	comm.PutBuf(encC)
	comm.PutBuf(encS)
	comm.PutF32(state)
	a.size("payload.down", len(a.bcast))
	return a.bcast
}

// decodeUpload decodes one joined (Δw, Δc) upload; the shared front
// half of Collect, CollectLate and CollectBatch.
func (a *SCAFFOLDAggregator) decodeUpload(payload []byte) (scaffoldUpload, bool) {
	a.size("payload.up", len(payload))
	parts, err := comm.SplitPayloads(payload)
	if err != nil || len(parts) != 2 {
		a.dropped.Add(1)
		return scaffoldUpload{}, false
	}
	nState := a.Global.StateLen(models.ScopeAll)
	dW, err1 := comm.DecodeDenseAnyInto(comm.GetF32(nState), parts[0])
	dC, err2 := comm.DecodeDenseAnyInto(comm.GetF32(len(a.c)), parts[1])
	if err1 != nil || err2 != nil || len(dW) != nState || len(dC) != len(a.c) {
		a.dropped.Add(1)
		comm.PutF32(dW)
		comm.PutF32(dC)
		return scaffoldUpload{}, false
	}
	return scaffoldUpload{dW: dW, dC: dC}, true
}

// fold adds one upload's unscaled ΣΔw / ΣΔc terms into the float64
// accumulators. SCAFFOLD weights every arrived upload equally, so the
// fold carries no weight — the 1/|S| scaling happens at finalize.
func (a *SCAFFOLDAggregator) fold(u scaffoldUpload) {
	defer a.span(a.curRound, "agg.fold").End()
	if a.folded == 0 {
		if cap(a.accW) < len(u.dW) {
			a.accW = make([]float64, len(u.dW))
		}
		a.accW = a.accW[:len(u.dW)]
		for j := range a.accW {
			a.accW[j] = 0
		}
		if cap(a.accC) < len(u.dC) {
			a.accC = make([]float64, len(u.dC))
		}
		a.accC = a.accC[:len(u.dC)]
		for j := range a.accC {
			a.accC[j] = 0
		}
	}
	a.folded++
	tensor.Parallel(len(u.dW), func(lo, hi int) {
		tensor.VecAccumScaled(a.accW[lo:hi], u.dW[lo:hi], 1)
	})
	tensor.Parallel(len(u.dC), func(lo, hi int) {
		tensor.VecAccumScaled(a.accC[lo:hi], u.dC[lo:hi], 1)
	})
}

// Collect implements Aggregator: decode, then fold through the
// streaming cursor; buffers release right after the fold.
func (a *SCAFFOLDAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(payload); ok {
		a.ingest(client, u)
	}
}

// CollectLate implements StreamingAggregator: a carried-over straggler
// upload folds at its delivery position, outside the cursor.
func (a *SCAFFOLDAggregator) CollectLate(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(payload); ok {
		a.foldNow(u)
	}
}

// CollectBatch implements BatchCollector: the Collect decode run
// concurrently over a whole batch, then ingested in upload order.
func (a *SCAFFOLDAggregator) CollectBatch(round int, ups []Upload) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	type entry struct {
		client uint32
		u      scaffoldUpload
	}
	entries := decodeBatch(ups, func(up Upload) (entry, bool) {
		u, ok := a.decodeUpload(up.Payload)
		return entry{client: up.Client, u: u}, ok
	})
	for _, e := range entries {
		a.ingest(e.client, e.u)
	}
}

// FinishRound implements Aggregator: x ← x_g + (ΣΔw)/|S| ; c ← c +
// (ΣΔc)/N, where S is the set of clients whose uploads actually
// arrived — the finalize half of the two-phase reduce, bitwise
// identical to StreamFoldRefSCAFFOLD at any GOMAXPROCS.
func (a *SCAFFOLDAggregator) FinishRound(round int) {
	defer a.span(round, "agg.reduce").End()
	a.curRound = round
	a.finishStream()
	if a.folded == 0 {
		return
	}
	nState := len(a.accW)
	globalState := a.Global.StateInto(models.ScopeAll, comm.GetF32(nState))
	newState := comm.GetF32(nState)
	invS := float64(a.folded)
	tensor.Parallel(nState, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			newState[j] = float32(float64(globalState[j]) + a.accW[j]/invS)
		}
	})
	a.Global.SetState(models.ScopeAll, newState)
	comm.PutF32(newState)
	comm.PutF32(globalState)
	invN := float64(a.cfg.NumClients)
	tensor.Parallel(len(a.c), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			a.c[j] = float32(float64(a.c[j]) + a.accC[j]/invN)
		}
	})
	a.folded = 0
}

// Final implements Aggregator.
func (a *SCAFFOLDAggregator) Final() []byte {
	return comm.EncodeDense(a.Global.State(models.ScopeAll))
}

// SCAFFOLDTrainer is the client side: control-variate-corrected local
// SGD, then an Option-II control update, uploading the joined (Δw, Δc)
// pair — the ≈2× FedAvg per-round payload the SPATL paper highlights.
type SCAFFOLDTrainer struct {
	Telemetered
	Client *Client

	cfg   Config
	upBuf []byte
}

// NewSCAFFOLDTrainer wires a trainer around a client, initializing its
// control variate to zero if unset.
func NewSCAFFOLDTrainer(c *Client, cfg Config) *SCAFFOLDTrainer {
	if c.Control == nil {
		c.Control = make([]float32, nn.ParamCount(c.Model.Params()))
	}
	return &SCAFFOLDTrainer{Client: c, cfg: cfg.WithDefaults()}
}

// LocalUpdate implements Trainer.
func (t *SCAFFOLDTrainer) LocalUpdate(round int, payload []byte) []byte {
	sp := t.span(round, "client.update")
	defer sp.End()
	m := t.Client.Model
	nState := m.StateLen(models.ScopeAll)
	nCtrl := len(t.Client.Control)
	parts, err := comm.SplitPayloads(payload)
	if err != nil || len(parts) != 2 {
		return nil
	}
	globalState, err1 := comm.DecodeDenseAnyInto(comm.GetF32(nState), parts[0])
	serverC, err2 := comm.DecodeDenseAnyInto(comm.GetF32(nCtrl), parts[1])
	if err1 != nil || err2 != nil || len(globalState) != nState || len(serverC) != nCtrl {
		comm.PutF32(globalState)
		comm.PutF32(serverC)
		return nil
	}
	m.SetState(models.ScopeAll, globalState)
	globalFlat := nn.FlattenParams(m.Params())

	rng := rand.New(rand.NewSource(ClientSeed(t.cfg.Seed, round, t.Client.ID)))
	opts := t.cfg.localOpts(m.Params(), round)
	opts.Hook = addControl(serverC, t.Client.Control, m.Params())
	train := sp.Child("client.train")
	steps, _ := LocalSGD(t.Client, opts, rng)
	train.End()

	localFlat := nn.FlattenParams(m.Params())
	localState := m.StateInto(models.ScopeAll, comm.GetF32(nState))
	// Option-II control update: cᵢ⁺ = cᵢ − c + (x_g − x_i)/(K·η_eff).
	// With classical momentum each unit of gradient moves the weights
	// by ≈ η/(1−µ) over time, so the effective step size is scaled
	// accordingly; without the correction the control variates
	// overestimate gradients by 1/(1−µ) and training explodes.
	inv := 1.0 / (float64(steps) * EffectiveLR(t.cfg.LRAt(round), t.cfg.Momentum))
	newCi := make([]float32, nCtrl)
	dC := comm.GetF32(nCtrl)
	for j := range localFlat {
		newCi[j] = t.Client.Control[j] - serverC[j] + float32(float64(globalFlat[j]-localFlat[j])*inv)
		dC[j] = newCi[j] - t.Client.Control[j]
	}
	t.Client.Control = newCi
	comm.PutF32(serverC)

	dW := comm.GetF32(nState)
	for j := range localState {
		dW[j] = localState[j] - globalState[j]
	}
	comm.PutF32(localState)
	comm.PutF32(globalState)
	encW := t.cfg.encodeDenseInto(comm.GetBuf(t.cfg.denseLen(nState)), dW)
	encC := t.cfg.encodeDenseInto(comm.GetBuf(t.cfg.denseLen(nCtrl)), dC)
	t.upBuf = comm.JoinPayloadsInto(t.upBuf, encW, encC)
	comm.PutBuf(encC)
	comm.PutBuf(encW)
	comm.PutF32(dW)
	comm.PutF32(dC)
	return t.upBuf
}

// Finish implements Trainer.
func (t *SCAFFOLDTrainer) Finish(payload []byte) {
	if state, err := comm.DecodeDenseAnyInto(nil, payload); err == nil {
		t.Client.Model.SetState(models.ScopeAll, state)
	}
}
