package algo

import (
	"fmt"
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// SCAFFOLDAggregator is the server side of SCAFFOLD (Karimireddy et
// al.): it holds the server control variate c, broadcasts it alongside
// the model, and folds the uploaded (Δw, Δc) pairs with
// x += (1/|S|)·ΣΔw and c += (1/N)·ΣΔc.
type SCAFFOLDAggregator struct {
	Telemetered
	Global *models.SplitModel

	cfg     Config
	c       []float32 // server control variate over trainable params
	bcast   []byte
	pending []scaffoldUpload // decoded uploads in collect order
	dropped telemetry.Counter
}

// scaffoldUpload is one client's decoded round contribution.
type scaffoldUpload struct {
	dW, dC []float32
}

// NewSCAFFOLDAggregator wires the aggregator around the global model.
// cfg.NumClients must be the federation size N (the control update
// scales by 1/N).
func NewSCAFFOLDAggregator(global *models.SplitModel, cfg Config) *SCAFFOLDAggregator {
	cfg = cfg.WithDefaults()
	if cfg.NumClients <= 0 {
		panic(fmt.Sprintf("algo: SCAFFOLD needs Config.NumClients > 0, got %d", cfg.NumClients))
	}
	return &SCAFFOLDAggregator{
		Global: global,
		cfg:    cfg,
		c:      make([]float32, nn.ParamCount(global.Params())),
	}
}

// ControlVariate exposes the server control variate c (read-only use).
func (a *SCAFFOLDAggregator) ControlVariate() []float32 { return a.c }

// Dropped reports how many malformed uploads have been discarded.
func (a *SCAFFOLDAggregator) Dropped() int64 { return a.dropped.Value() }

// SetTelemetry implements Wirer, additionally exposing the drop counter
// through the registry — the same counter Dropped reads.
func (a *SCAFFOLDAggregator) SetTelemetry(s *telemetry.Set) {
	a.Telemetered.SetTelemetry(s)
	if s != nil && s.Reg != nil {
		s.Reg.Attach("algo.uploads_dropped", &a.dropped)
	}
}

// Broadcast implements Aggregator: joined dense payloads for the model
// state and the server control variate.
func (a *SCAFFOLDAggregator) Broadcast(round int) []byte {
	defer a.span(round, "agg.broadcast").End()
	n := a.Global.StateLen(models.ScopeAll)
	state := a.Global.StateInto(models.ScopeAll, comm.GetF32(n))
	encS := a.cfg.encodeDenseInto(comm.GetBuf(a.cfg.denseLen(n)), state)
	encC := a.cfg.encodeDenseInto(comm.GetBuf(a.cfg.denseLen(len(a.c))), a.c)
	a.bcast = comm.JoinPayloadsInto(a.bcast, encS, encC)
	comm.PutBuf(encC)
	comm.PutBuf(encS)
	comm.PutF32(state)
	a.size("payload.down", len(a.bcast))
	return a.bcast
}

// Collect implements Aggregator.
func (a *SCAFFOLDAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.size("payload.up", len(payload))
	parts, err := comm.SplitPayloads(payload)
	if err != nil || len(parts) != 2 {
		a.dropped.Add(1)
		return
	}
	nState := a.Global.StateLen(models.ScopeAll)
	dW, err1 := comm.DecodeDenseAnyInto(comm.GetF32(nState), parts[0])
	dC, err2 := comm.DecodeDenseAnyInto(comm.GetF32(len(a.c)), parts[1])
	if err1 != nil || err2 != nil || len(dW) != nState || len(dC) != len(a.c) {
		a.dropped.Add(1)
		comm.PutF32(dW)
		comm.PutF32(dC)
		return
	}
	a.pending = append(a.pending, scaffoldUpload{dW: dW, dC: dC})
}

// CollectBatch implements BatchCollector: the Collect decode run
// concurrently over a whole batch, results buffered in upload order.
func (a *SCAFFOLDAggregator) CollectBatch(round int, ups []Upload) {
	defer a.span(round, "agg.collect").End()
	nState := a.Global.StateLen(models.ScopeAll)
	a.pending = append(a.pending, decodeBatch(ups, func(u Upload) (scaffoldUpload, bool) {
		a.size("payload.up", len(u.Payload))
		parts, err := comm.SplitPayloads(u.Payload)
		if err != nil || len(parts) != 2 {
			a.dropped.Add(1)
			return scaffoldUpload{}, false
		}
		dW, err1 := comm.DecodeDenseAnyInto(comm.GetF32(nState), parts[0])
		dC, err2 := comm.DecodeDenseAnyInto(comm.GetF32(len(a.c)), parts[1])
		if err1 != nil || err2 != nil || len(dW) != nState || len(dC) != len(a.c) {
			a.dropped.Add(1)
			comm.PutF32(dW)
			comm.PutF32(dC)
			return scaffoldUpload{}, false
		}
		return scaffoldUpload{dW: dW, dC: dC}, true
	})...)
}

// FinishRound implements Aggregator: x += (1/|S|)·ΣΔw ; c += (1/N)·ΣΔc,
// where S is the set of clients whose uploads actually arrived. Both
// reductions chunk the parameter dimension and sum clients in fixed
// order per index, bitwise identical to the serial loops at any
// GOMAXPROCS.
func (a *SCAFFOLDAggregator) FinishRound(round int) {
	defer a.span(round, "agg.reduce").End()
	if len(a.pending) == 0 {
		return
	}
	nState := a.Global.StateLen(models.ScopeAll)
	globalState := a.Global.StateInto(models.ScopeAll, comm.GetF32(nState))
	invS := 1.0 / float64(len(a.pending))
	newState := comm.GetF32(nState)
	tensor.Parallel(nState, func(lo, hi int) {
		copy(newState[lo:hi], globalState[lo:hi])
		for _, u := range a.pending {
			for j := lo; j < hi; j++ {
				newState[j] += float32(invS * float64(u.dW[j]))
			}
		}
	})
	a.Global.SetState(models.ScopeAll, newState)
	comm.PutF32(newState)
	invN := 1.0 / float64(a.cfg.NumClients)
	tensor.Parallel(len(a.c), func(lo, hi int) {
		for _, u := range a.pending {
			for j := lo; j < hi; j++ {
				a.c[j] += float32(invN * float64(u.dC[j]))
			}
		}
	})
	for _, u := range a.pending {
		comm.PutF32(u.dW)
		comm.PutF32(u.dC)
	}
	a.pending = a.pending[:0]
	comm.PutF32(globalState)
}

// Final implements Aggregator.
func (a *SCAFFOLDAggregator) Final() []byte {
	return comm.EncodeDense(a.Global.State(models.ScopeAll))
}

// SCAFFOLDTrainer is the client side: control-variate-corrected local
// SGD, then an Option-II control update, uploading the joined (Δw, Δc)
// pair — the ≈2× FedAvg per-round payload the SPATL paper highlights.
type SCAFFOLDTrainer struct {
	Telemetered
	Client *Client

	cfg   Config
	upBuf []byte
}

// NewSCAFFOLDTrainer wires a trainer around a client, initializing its
// control variate to zero if unset.
func NewSCAFFOLDTrainer(c *Client, cfg Config) *SCAFFOLDTrainer {
	if c.Control == nil {
		c.Control = make([]float32, nn.ParamCount(c.Model.Params()))
	}
	return &SCAFFOLDTrainer{Client: c, cfg: cfg.WithDefaults()}
}

// LocalUpdate implements Trainer.
func (t *SCAFFOLDTrainer) LocalUpdate(round int, payload []byte) []byte {
	sp := t.span(round, "client.update")
	defer sp.End()
	m := t.Client.Model
	nState := m.StateLen(models.ScopeAll)
	nCtrl := len(t.Client.Control)
	parts, err := comm.SplitPayloads(payload)
	if err != nil || len(parts) != 2 {
		return nil
	}
	globalState, err1 := comm.DecodeDenseAnyInto(comm.GetF32(nState), parts[0])
	serverC, err2 := comm.DecodeDenseAnyInto(comm.GetF32(nCtrl), parts[1])
	if err1 != nil || err2 != nil || len(globalState) != nState || len(serverC) != nCtrl {
		comm.PutF32(globalState)
		comm.PutF32(serverC)
		return nil
	}
	m.SetState(models.ScopeAll, globalState)
	globalFlat := nn.FlattenParams(m.Params())

	rng := rand.New(rand.NewSource(ClientSeed(t.cfg.Seed, round, t.Client.ID)))
	opts := t.cfg.localOpts(m.Params(), round)
	opts.Hook = addControl(serverC, t.Client.Control, m.Params())
	train := sp.Child("client.train")
	steps, _ := LocalSGD(t.Client, opts, rng)
	train.End()

	localFlat := nn.FlattenParams(m.Params())
	localState := m.StateInto(models.ScopeAll, comm.GetF32(nState))
	// Option-II control update: cᵢ⁺ = cᵢ − c + (x_g − x_i)/(K·η_eff).
	// With classical momentum each unit of gradient moves the weights
	// by ≈ η/(1−µ) over time, so the effective step size is scaled
	// accordingly; without the correction the control variates
	// overestimate gradients by 1/(1−µ) and training explodes.
	inv := 1.0 / (float64(steps) * EffectiveLR(t.cfg.LRAt(round), t.cfg.Momentum))
	newCi := make([]float32, nCtrl)
	dC := comm.GetF32(nCtrl)
	for j := range localFlat {
		newCi[j] = t.Client.Control[j] - serverC[j] + float32(float64(globalFlat[j]-localFlat[j])*inv)
		dC[j] = newCi[j] - t.Client.Control[j]
	}
	t.Client.Control = newCi
	comm.PutF32(serverC)

	dW := comm.GetF32(nState)
	for j := range localState {
		dW[j] = localState[j] - globalState[j]
	}
	comm.PutF32(localState)
	comm.PutF32(globalState)
	encW := t.cfg.encodeDenseInto(comm.GetBuf(t.cfg.denseLen(nState)), dW)
	encC := t.cfg.encodeDenseInto(comm.GetBuf(t.cfg.denseLen(nCtrl)), dC)
	t.upBuf = comm.JoinPayloadsInto(t.upBuf, encW, encC)
	comm.PutBuf(encC)
	comm.PutBuf(encW)
	comm.PutF32(dW)
	comm.PutF32(dC)
	return t.upBuf
}

// Finish implements Trainer.
func (t *SCAFFOLDTrainer) Finish(payload []byte) {
	if state, err := comm.DecodeDenseAnyInto(nil, payload); err == nil {
		t.Client.Model.SetState(models.ScopeAll, state)
	}
}
