package algo

import (
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/prune"
	"spatl/internal/rl"
	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// SPATLOptions configures SPATL. The zero value enables everything with
// the paper's defaults; the Disable* switches drive the ablation
// studies (§V-F).
type SPATLOptions struct {
	// DisableSelection uploads the full encoder instead of the salient
	// subset (Fig. 4 ablation).
	DisableSelection bool
	// DisableTransfer shares the predictor as well as the encoder — a
	// uniform model, as the baselines use (Fig. 5a ablation).
	DisableTransfer bool
	// DisableGradControl removes the control-variate correction
	// (Fig. 5b ablation).
	DisableGradControl bool

	// FLOPsBudget is the agent's sub-network FLOPs constraint as a
	// fraction of the full model (default 0.6).
	FLOPsBudget float64
	// AgentCfg configures the selection agent.
	AgentCfg rl.AgentConfig
	// Pretrained, when non-nil, initializes every client's agent from
	// pre-trained weights; fine-tuning then updates only the MLP heads,
	// as in §V-A.
	Pretrained []float32
	// FineTuneRounds is the number of initial communication rounds during
	// which selected clients fine-tune their agents (default 10).
	FineTuneRounds int
	// FineTuneEpisodes is the rollout batch per fine-tune update
	// (default 4).
	FineTuneEpisodes int
}

// WithDefaults fills zero fields with the paper's defaults.
func (o SPATLOptions) WithDefaults() SPATLOptions {
	if o.FLOPsBudget == 0 {
		o.FLOPsBudget = 0.6
	}
	if o.FineTuneRounds == 0 {
		o.FineTuneRounds = 10
	}
	if o.FineTuneEpisodes == 0 {
		o.FineTuneEpisodes = 4
	}
	return o
}

// Scope returns the communication scope: encoder-only normally, the full
// model when transfer learning is disabled.
func (o SPATLOptions) Scope() models.Scope {
	if o.DisableTransfer {
		return models.ScopeAll
	}
	return models.ScopeEncoder
}

// CtrlParams returns the parameters subject to gradient control — the
// generic (encoder) parameters (§IV-C), or all parameters when transfer
// is disabled.
func (o SPATLOptions) CtrlParams(m *models.SplitModel) []*nn.Param {
	if o.DisableTransfer {
		return m.Params()
	}
	return m.EncoderParams()
}

// SPATLAggregator is the server side of SPATL: per-index averaged
// aggregation of salient encoder deltas (eq. 12) and the 1/N-scaled
// control-variate update at the uploaded indices (eq. 11).
type SPATLAggregator struct {
	Telemetered
	stream[spatlUpload]
	Global *models.SplitModel
	Opts   SPATLOptions

	cfg      Config
	c        []float32 // server control variate over encoder trainable params
	bcast    []byte
	acc      []float64 // per-index Σ of salient deltas, folded on arrival
	accC     []float64 // per-index Σ of control deltas
	count    []int32   // per-index contributor count, reused across rounds
	folded   int
	curRound int
	dropped  telemetry.Counter
}

// spatlUpload is one client's decoded sparse contribution.
type spatlUpload struct {
	dW, dC *comm.Sparse
}

// NewSPATLAggregator wires the aggregator around the global model.
// cfg.NumClients must be the federation size N (eq. 11 scales by 1/N).
func NewSPATLAggregator(global *models.SplitModel, opts SPATLOptions, cfg Config) *SPATLAggregator {
	opts = opts.WithDefaults()
	a := &SPATLAggregator{
		Global: global,
		Opts:   opts,
		cfg:    cfg.WithDefaults(),
		c:      make([]float32, nn.ParamCount(opts.CtrlParams(global))),
	}
	a.foldFn = a.fold
	a.releaseFn = func(u spatlUpload) {
		comm.PutSparse(u.dW)
		if u.dC != nil {
			comm.PutSparse(u.dC)
		}
	}
	return a
}

// ControlVariate exposes the server control variate c (read-only use).
func (a *SPATLAggregator) ControlVariate() []float32 { return a.c }

// Dropped reports how many malformed uploads have been discarded.
func (a *SPATLAggregator) Dropped() int64 { return a.dropped.Value() }

// SetTelemetry implements Wirer, additionally exposing the drop counter
// through the registry — the same counter Dropped reads.
func (a *SPATLAggregator) SetTelemetry(s *telemetry.Set) {
	a.Telemetered.SetTelemetry(s)
	if s != nil && s.Reg != nil {
		s.Reg.Attach("algo.uploads_dropped", &a.dropped)
		a.wireStream(s.Reg)
	}
}

// Broadcast implements Aggregator: the shared-scope model state, joined
// with the server control variate unless gradient control is disabled.
func (a *SPATLAggregator) Broadcast(round int) []byte {
	defer a.span(round, "agg.broadcast").End()
	scope := a.Opts.Scope()
	n := a.Global.StateLen(scope)
	state := a.Global.StateInto(scope, comm.GetF32(n))
	encS := a.cfg.encodeDenseInto(comm.GetBuf(a.cfg.denseLen(n)), state)
	if a.Opts.DisableGradControl {
		a.bcast = comm.JoinPayloadsInto(a.bcast, encS)
	} else {
		encC := a.cfg.encodeDenseInto(comm.GetBuf(a.cfg.denseLen(len(a.c))), a.c)
		a.bcast = comm.JoinPayloadsInto(a.bcast, encS, encC)
		comm.PutBuf(encC)
	}
	comm.PutBuf(encS)
	comm.PutF32(state)
	a.size("payload.down", len(a.bcast))
	return a.bcast
}

// decodeUpload decodes one sparse delta, joined with a sparse control
// delta unless gradient control is disabled. A bad control part keeps
// the weight delta — the model update is still sound. The shared front
// half of Collect, CollectLate and CollectBatch.
func (a *SPATLAggregator) decodeUpload(payload []byte) (spatlUpload, bool) {
	a.size("payload.up", len(payload))
	wantParts := 2
	if a.Opts.DisableGradControl {
		wantParts = 1
	}
	parts, err := comm.SplitPayloads(payload)
	if err != nil || len(parts) != wantParts {
		a.dropped.Add(1)
		return spatlUpload{}, false
	}
	dW := &comm.Sparse{Values: comm.GetF32(len(parts[0]) / 4)[:0]}
	if err := comm.DecodeSparseAnyInto(dW, parts[0]); err != nil {
		a.dropped.Add(1)
		comm.PutSparse(dW)
		return spatlUpload{}, false
	}
	var dC *comm.Sparse
	if wantParts == 2 {
		dC = &comm.Sparse{Values: comm.GetF32(len(parts[1]) / 4)[:0]}
		if err := comm.DecodeSparseAnyInto(dC, parts[1]); err != nil {
			comm.PutSparse(dC)
			dC = nil // keep dW: the model update is still sound
		}
	}
	return spatlUpload{dW: dW, dC: dC}, true
}

// scatterAccumRange folds one sparse upload's values covering [lo,hi)
// into the float64 accumulator and the per-index contributor count —
// the streaming float64 counterpart of comm.ScatterAddRange.
func scatterAccumRange(acc []float64, count []int32, s *comm.Sparse, lo, hi int) {
	off := 0
	for _, r := range s.Ranges {
		rs := int(r.Start)
		re := rs + int(r.Len)
		if rs >= hi {
			return
		}
		if re > lo {
			cs, ce := rs, re
			if cs < lo {
				cs = lo
			}
			if ce > hi {
				ce = hi
			}
			vals := s.Values[off+(cs-rs) : off+(ce-rs)]
			for k, v := range vals {
				acc[cs+k] += float64(v)
				count[cs+k]++
			}
		}
		off += int(r.Len)
	}
}

// scatterAccumValsRange is scatterAccumRange without the contributor
// count — the control-variate fold (eq. 11 sums, it never averages).
func scatterAccumValsRange(acc []float64, s *comm.Sparse, lo, hi int) {
	off := 0
	for _, r := range s.Ranges {
		rs := int(r.Start)
		re := rs + int(r.Len)
		if rs >= hi {
			return
		}
		if re > lo {
			cs, ce := rs, re
			if cs < lo {
				cs = lo
			}
			if ce > hi {
				ce = hi
			}
			vals := s.Values[off+(cs-rs) : off+(ce-rs)]
			for k, v := range vals {
				acc[cs+k] += float64(v)
			}
		}
		off += int(r.Len)
	}
}

// fold scatters one upload's salient deltas into the float64
// accumulators and bumps the per-index contributor counts.
func (a *SPATLAggregator) fold(u spatlUpload) {
	defer a.span(a.curRound, "agg.fold").End()
	nState := a.Global.StateLen(a.Opts.Scope())
	if a.folded == 0 {
		if cap(a.acc) < nState {
			a.acc = make([]float64, nState)
		}
		a.acc = a.acc[:nState]
		if cap(a.count) < nState {
			a.count = make([]int32, nState)
		}
		a.count = a.count[:nState]
		for j := range a.acc {
			a.acc[j] = 0
			a.count[j] = 0
		}
		if cap(a.accC) < len(a.c) {
			a.accC = make([]float64, len(a.c))
		}
		a.accC = a.accC[:len(a.c)]
		for j := range a.accC {
			a.accC[j] = 0
		}
	}
	a.folded++
	tensor.Parallel(nState, func(lo, hi int) {
		scatterAccumRange(a.acc, a.count, u.dW, lo, hi)
	})
	if u.dC != nil && !a.Opts.DisableGradControl {
		tensor.Parallel(len(a.c), func(lo, hi int) {
			scatterAccumValsRange(a.accC, u.dC, lo, hi)
		})
	}
}

// Collect implements Aggregator: decode, then fold through the
// streaming cursor; the sparse buffers release right after the fold.
func (a *SPATLAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(payload); ok {
		a.ingest(client, u)
	}
}

// CollectLate implements StreamingAggregator: a carried-over straggler
// upload folds at its delivery position, outside the cursor.
func (a *SPATLAggregator) CollectLate(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(payload); ok {
		a.foldNow(u)
	}
}

// CollectBatch implements BatchCollector: the Collect decode run
// concurrently over a whole batch, then ingested in upload order.
func (a *SPATLAggregator) CollectBatch(round int, ups []Upload) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	type entry struct {
		client uint32
		u      spatlUpload
	}
	entries := decodeBatch(ups, func(up Upload) (entry, bool) {
		u, ok := a.decodeUpload(up.Payload)
		return entry{client: up.Client, u: u}, ok
	})
	for _, e := range entries {
		a.ingest(e.client, e.u)
	}
}

// FinishRound implements Aggregator: eq. 12 per-index averaging over
// the folded salient deltas, then eq. 11 on the control variate — the
// finalize half of the two-phase reduce, bitwise identical to
// StreamFoldRefSPATL at any GOMAXPROCS.
func (a *SPATLAggregator) FinishRound(round int) {
	defer a.span(round, "agg.reduce").End()
	a.curRound = round
	a.finishStream()
	if a.folded == 0 {
		return
	}
	scope := a.Opts.Scope()
	nState := a.Global.StateLen(scope)
	globalState := a.Global.StateInto(scope, comm.GetF32(nState))
	newState := comm.GetF32(nState)
	tensor.Parallel(nState, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			if a.count[j] > 0 {
				newState[j] = globalState[j] + float32(a.acc[j]/float64(a.count[j]))
			} else {
				newState[j] = globalState[j]
			}
		}
	})
	a.Global.SetState(scope, newState)
	comm.PutF32(newState)
	comm.PutF32(globalState)

	if !a.Opts.DisableGradControl {
		invN := float64(a.cfg.NumClients)
		tensor.Parallel(len(a.c), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				a.c[j] = float32(float64(a.c[j]) + a.accC[j]/invN)
			}
		})
	}
	a.folded = 0
}

// Final implements Aggregator: the shared-scope state, dense.
func (a *SPATLAggregator) Final() []byte {
	return comm.EncodeDense(a.Global.State(a.Opts.Scope()))
}

// SPATLTrainer is the client side of SPATL: install the shared encoder,
// run control-corrected local SGD through the private predictor, run the
// selection agent on the trained encoder, and upload only the salient
// parameter deltas and their index ranges.
type SPATLTrainer struct {
	Telemetered
	Client *Client
	Opts   SPATLOptions

	// LastSelection records the most recent salient selection, for the
	// inference-acceleration analysis (§V-D).
	LastSelection *prune.Selection

	cfg   Config
	agent *rl.Agent // lazily created fine-tuned selection agent
	upBuf []byte
}

// NewSPATLTrainer wires a trainer around a client, initializing its
// control variate over the gradient-control scope.
func NewSPATLTrainer(c *Client, opts SPATLOptions, cfg Config) *SPATLTrainer {
	opts = opts.WithDefaults()
	if c.Control == nil {
		c.Control = make([]float32, nn.ParamCount(opts.CtrlParams(c.Model)))
	}
	return &SPATLTrainer{Client: c, Opts: opts, cfg: cfg.WithDefaults()}
}

// LocalUpdate implements Trainer.
func (t *SPATLTrainer) LocalUpdate(round int, payload []byte) []byte {
	sp := t.span(round, "client.update")
	defer sp.End()
	c := t.Client
	m := c.Model
	scope := t.Opts.Scope()
	nState := m.StateLen(scope)
	gradControl := !t.Opts.DisableGradControl
	wantParts := 1
	if gradControl {
		wantParts = 2
	}
	parts, err := comm.SplitPayloads(payload)
	if err != nil || len(parts) != wantParts {
		return nil
	}
	// ➊ install the shared encoder (and control variate).
	globalState, err := comm.DecodeDenseAnyInto(comm.GetF32(nState), parts[0])
	if err != nil || len(globalState) != nState {
		comm.PutF32(globalState)
		return nil
	}
	m.SetState(scope, globalState)
	var serverC []float32
	if gradControl {
		serverC, err = comm.DecodeDenseAnyInto(comm.GetF32(len(c.Control)), parts[1])
		if err != nil || len(serverC) != len(c.Control) {
			comm.PutF32(globalState)
			comm.PutF32(serverC)
			return nil
		}
	}

	rng := rand.New(rand.NewSource(ClientSeed(t.cfg.Seed, round, c.ID)))

	// ➋ local update: transfer the encoder's knowledge through the local
	// predictor; gradient control corrects only the generic (encoder)
	// parameters.
	ctrlP := t.Opts.CtrlParams(m)
	nCtrl := nn.ParamCount(ctrlP)
	opts := t.cfg.localOpts(m.Params(), round)
	if gradControl {
		opts.Hook = addControl(serverC, c.Control, ctrlP)
	}
	gBefore := nn.FlattenParams(ctrlP)
	train := sp.Child("client.train")
	steps, _ := LocalSGD(c, opts, rng)
	train.End()

	// Control variate update (option II of SCAFFOLD, over the generic
	// parameters only).
	var dC []float32
	if gradControl {
		localCtrl := nn.FlattenParams(ctrlP)
		inv := 1.0 / (float64(steps) * EffectiveLR(t.cfg.LRAt(round), t.cfg.Momentum))
		newCi := make([]float32, nCtrl)
		dC = comm.GetF32(nCtrl)
		for j := 0; j < nCtrl; j++ {
			newCi[j] = c.Control[j] - serverC[j] + float32(float64(gBefore[j]-localCtrl[j])*inv)
			dC[j] = newCi[j] - c.Control[j]
		}
		c.Control = newCi
		comm.PutF32(serverC)
	}

	// ➌ salient parameter selection on the trained encoder, consuming the
	// same rng stream as local training so both transports replay the
	// identical sequence.
	selSpan := sp.Child("client.select")
	sel := t.selectSalient(round, rng)
	selSpan.End()
	t.LastSelection = sel

	// ➍ upload only the salient parameter deltas and their indices.
	localState := m.StateInto(scope, comm.GetF32(nState))
	dW := comm.GetF32(len(localState))
	for j := range localState {
		dW[j] = localState[j] - globalState[j]
	}
	comm.PutF32(localState)
	comm.PutF32(globalState)
	var sw comm.Sparse
	comm.GatherSparseInto(&sw, dW, sel.Ranges)
	bufW := t.cfg.encodeSparseInto(comm.GetBuf(t.cfg.sparseLen(&sw)), &sw)
	comm.PutF32(dW)
	if gradControl {
		ctrlRanges := ClipRanges(sel.Ranges, nCtrl)
		var sc comm.Sparse
		comm.GatherSparseInto(&sc, dC, ctrlRanges)
		bufC := t.cfg.encodeSparseInto(comm.GetBuf(t.cfg.sparseLen(&sc)), &sc)
		t.upBuf = comm.JoinPayloadsInto(t.upBuf, bufW, bufC)
		comm.PutBuf(bufC)
		comm.PutF32(sc.Values[:0])
		comm.PutF32(dC)
	} else {
		t.upBuf = comm.JoinPayloadsInto(t.upBuf, bufW)
	}
	comm.PutBuf(bufW)
	comm.PutF32(sw.Values[:0])
	return t.upBuf
}

// selectSalient runs the client's selection agent: fine-tune (head-only
// PPO) during the first FineTuneRounds rounds, then act greedily. With
// selection disabled, everything is salient.
func (t *SPATLTrainer) selectSalient(round int, rng *rand.Rand) *prune.Selection {
	m := t.Client.Model
	units := m.PrunableUnits()
	if t.Opts.DisableSelection || len(units) == 0 {
		ratios := make([]float64, len(units))
		for i := range ratios {
			ratios[i] = 1
		}
		return prune.Select(m, ratios)
	}
	if t.agent == nil {
		cfg := t.Opts.AgentCfg
		cfg.Seed += int64(t.Client.ID)
		t.agent = rl.NewAgent(cfg)
		if t.Opts.Pretrained != nil {
			t.agent.Load(t.Opts.Pretrained)
		}
	}
	penv := prune.NewEnv(m, t.Client.Val, t.Opts.FLOPsBudget)
	if round < t.Opts.FineTuneRounds {
		ppo := rl.NewPPO(t.agent, t.Opts.Pretrained != nil)
		rl.Train(ppo, penv, 1, t.Opts.FineTuneEpisodes, rng)
	}
	action := rl.BestAction(t.agent, penv)
	return prune.Select(m, action)
}

// Finish implements Trainer.
func (t *SPATLTrainer) Finish(payload []byte) {
	if state, err := comm.DecodeDenseAnyInto(nil, payload); err == nil {
		t.Client.Model.SetState(t.Opts.Scope(), state)
	}
}
