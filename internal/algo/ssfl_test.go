package algo

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"spatl/internal/comm"
	"spatl/internal/data"
	"spatl/internal/models"
)

var ssflSpec = models.Spec{Arch: "resnet20", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.25}

// agreeSyntheticMask drives an aggregator through a synthetic agreement
// round: every client uploads random positive scores.
func agreeSyntheticMask(t *testing.T, agg *SSFLAggregator, clients int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	scoreLen := ssflScoreLen(agg.Global)
	for i := 0; i < clients; i++ {
		scores := make([]float32, scoreLen)
		for j := range scores {
			scores[j] = float32(rng.Float64())
		}
		agg.Collect(0, uint32(i), 50+i*10, comm.EncodeDense(scores))
	}
	agg.FinishRound(0)
	if agg.Selection() == nil {
		t.Fatal("agreement round did not fix a selection")
	}
}

// TestSSFLPackedReduceMatchesReference: the packed FinishRound reduce
// must be bitwise identical to the retained dense reference at
// GOMAXPROCS 1 and N — the mask never participates in FP order.
func TestSSFLPackedReduceMatchesReference(t *testing.T) {
	for _, procs := range []int{1, runtime.NumCPU()} {
		prev := runtime.GOMAXPROCS(procs)
		global := models.Build(ssflSpec, 11)
		agg := NewSSFLAggregator(global, SSFLOptions{KeepRatio: 0.5}, Config{NumClients: 4})
		agreeSyntheticMask(t, agg, 4, 17)

		state0 := global.State(models.ScopeEncoder)
		rng := rand.New(rand.NewSource(29))
		packed := make([][]float32, 4)
		weights := make([]float64, 4)
		for i := range packed {
			vals := make([]float32, agg.keptN)
			for j := range vals {
				vals[j] = float32(rng.NormFloat64())
			}
			packed[i] = vals
			weights[i] = float64(40 + i*7)
			agg.Collect(1, uint32(i), int(weights[i]), comm.EncodeSparseVals(vals))
		}
		want := SSFLReduceReference(state0, packed, weights, agg.ranges)
		agg.FinishRound(1)
		if d := agg.Dropped(); d != 0 {
			t.Fatalf("well-formed uploads counted as dropped: %d", d)
		}
		got := global.State(models.ScopeEncoder)
		for j := range want {
			if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
				t.Fatalf("procs=%d: state[%d] differs bitwise: %x vs %x", procs, j,
					math.Float32bits(got[j]), math.Float32bits(want[j]))
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestSSFLAggregatorCountsDrops: malformed score and values-only uploads
// must be counted, never fatal, and never buffered.
func TestSSFLAggregatorCountsDrops(t *testing.T) {
	global := models.Build(ssflSpec, 3)
	agg := NewSSFLAggregator(global, SSFLOptions{}, Config{NumClients: 2})

	agg.Collect(0, 0, 10, []byte{0xFF, 0x01})                     // garbage frame
	agg.Collect(0, 1, 10, comm.EncodeDense([]float32{1, 2, 3}))   // wrong score length
	agg.Collect(0, 2, 10, comm.EncodeSparseVals([]float32{1, 2})) // wrong frame kind for phase
	if got := agg.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	if agg.folded != 0 {
		t.Fatalf("malformed uploads folded: %d", agg.folded)
	}
	// Zero survivors: agreement still happens from the global's own
	// saliency, so the federation enters the sparse epoch regardless.
	agg.FinishRound(0)
	if agg.Selection() == nil {
		t.Fatal("no-survivor agreement round must still fix a mask")
	}

	agg.Collect(1, 0, 10, comm.EncodeSparseVals([]float32{1, 2})) // wrong count
	agg.Collect(1, 1, 10, []byte{0x56, 4, 0, 0, 0, 7, 0})         // truncated values frame
	vals := make([]float32, agg.keptN)
	agg.Collect(1, 2, 10, comm.EncodeSparseVals(vals)) // well-formed
	if got := agg.Dropped(); got != 5 {
		t.Fatalf("Dropped() = %d, want 5", got)
	}
	if agg.folded != 1 {
		t.Fatalf("folded = %d, want 1 (the good upload survives)", agg.folded)
	}
	agg.FinishRound(1)
}

// TestSSFLCollectBatchMatchesSequential: batch decoding must fold the
// same vectors in the same order as sequential Collect calls — the two
// aggregates finish bitwise identical.
func TestSSFLCollectBatchMatchesSequential(t *testing.T) {
	build := func() *SSFLAggregator {
		agg := NewSSFLAggregator(models.Build(ssflSpec, 5), SSFLOptions{KeepRatio: 0.5}, Config{NumClients: 3})
		agreeSyntheticMask(t, agg, 3, 41)
		return agg
	}
	a1, a2 := build(), build()
	rng := rand.New(rand.NewSource(43))
	var ups []Upload
	for i := 0; i < 3; i++ {
		vals := make([]float32, a1.keptN)
		for j := range vals {
			vals[j] = float32(rng.NormFloat64())
		}
		payload := comm.EncodeSparseVals(vals)
		ups = append(ups, Upload{Client: uint32(i), TrainSize: 30 + i, Payload: payload})
		a1.Collect(1, uint32(i), 30+i, payload)
	}
	ups = append(ups, Upload{Client: 9, TrainSize: 5, Payload: []byte{1, 2, 3}}) // malformed
	a2.CollectBatch(1, ups)
	if a2.Dropped() != a1.Dropped()+1 {
		t.Fatalf("batch dropped = %d, sequential = %d", a2.Dropped(), a1.Dropped())
	}
	if a1.folded != a2.folded || a1.sumW != a2.sumW {
		t.Fatalf("fold state differs: %d/%v vs %d/%v", a1.folded, a1.sumW, a2.folded, a2.sumW)
	}
	a1.FinishRound(1)
	a2.FinishRound(1)
	s1 := a1.Global.State(models.ScopeEncoder)
	s2 := a2.Global.State(models.ScopeEncoder)
	for j := range s1 {
		if math.Float32bits(s1[j]) != math.Float32bits(s2[j]) {
			t.Fatalf("state[%d] differs between batch and sequential collect", j)
		}
	}
}

// ssflFixture is a transport-free two-client federation.
type ssflFixture struct {
	agg      *SSFLAggregator
	trainers []*SSFLTrainer
	sizes    []int
}

func newSSFLFixture(seed int64) *ssflFixture {
	cfg := Config{NumClients: 2, LocalEpochs: 1, BatchSize: 8, LR: 0.05, Momentum: 0.9, Seed: seed}
	opts := SSFLOptions{KeepRatio: 0.5}
	global := models.Build(ssflSpec, seed)
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 4, H: 8, W: 8, Noise: 0.25}, 64, seed+1, seed+2)
	f := &ssflFixture{agg: NewSSFLAggregator(global, opts, cfg)}
	for i := 0; i < cfg.NumClients; i++ {
		idx := make([]int, 24)
		for j := range idx {
			idx[j] = i*24 + j
		}
		sub := ds.Subset(idx)
		tr, va := sub.Split(0.8)
		c := &Client{ID: i, Train: tr, Val: va, Model: models.Build(ssflSpec, seed)}
		f.trainers = append(f.trainers, NewSSFLTrainer(c, opts, cfg))
		f.sizes = append(f.sizes, tr.Len())
	}
	return f
}

// round drives one full communication round and returns the broadcast
// and per-client upload payload sizes.
func (f *ssflFixture) round(t *testing.T, round int) (down int, ups []int) {
	t.Helper()
	payload := f.agg.Broadcast(round)
	down = len(payload)
	for i, tr := range f.trainers {
		up := tr.LocalUpdate(round, payload)
		if up == nil {
			t.Fatalf("round %d: client %d sat out", round, i)
		}
		ups = append(ups, len(up))
		f.agg.Collect(round, uint32(i), f.sizes[i], up)
	}
	f.agg.FinishRound(round)
	return down, ups
}

// TestSSFLProtocolPhases drives a real (tiny) federation end to end and
// checks every phase transition of the wire protocol: dense agreement,
// one index-bearing sparse frame, then values-only in both directions —
// and that the global complement stays exactly zero through training.
func TestSSFLProtocolPhases(t *testing.T) {
	f := newSSFLFixture(7)

	if kind := comm.KindOf(f.agg.Broadcast(0)); kind != comm.FrameDense {
		t.Fatalf("agreement broadcast kind = %v, want dense", kind)
	}
	down0, _ := f.round(t, 0)
	if f.agg.Selection() == nil {
		t.Fatal("no mask after agreement round")
	}

	// Round 1: the index ranges travel, exactly once.
	b1 := f.agg.Broadcast(1)
	if kind := comm.KindOf(b1); kind != comm.FrameSparse {
		t.Fatalf("round-1 broadcast kind = %v, want full sparse", kind)
	}
	_, ups1 := f.round(t, 1)

	// Round 2+: values-only both directions, strictly smaller than the
	// dense agreement broadcast and the index-bearing frame.
	b2 := f.agg.Broadcast(2)
	if kind := comm.KindOf(b2); kind != comm.FrameSparseVals {
		t.Fatalf("round-2 broadcast kind = %v, want values-only", kind)
	}
	down2, ups2 := f.round(t, 2)
	if down2 >= down0 {
		t.Fatalf("values-only downlink %d not smaller than dense %d", down2, down0)
	}
	if down2 >= len(b1) {
		t.Fatalf("values-only downlink %d not smaller than index-bearing frame %d", down2, len(b1))
	}
	for i := range ups2 {
		if ups2[i] != comm.SparseValsLen(f.agg.keptN) {
			t.Fatalf("uplink %d: %d bytes, want exact values-only frame %d",
				i, ups2[i], comm.SparseValsLen(f.agg.keptN))
		}
		if ups1[i] != ups2[i] {
			t.Fatalf("uplink after agreement must be values-only from the first sparse round")
		}
	}
	if d := f.agg.Dropped(); d != 0 {
		t.Fatalf("dropped %d uploads in a clean run", d)
	}

	// The complement of the agreed mask stays exactly zero in the global
	// state: the mask is data, not arithmetic.
	state := f.agg.Global.State(models.ScopeEncoder)
	comp := comm.ComplementRanges(f.agg.ranges, len(state))
	for _, r := range comp {
		for _, v := range state[r.Start : r.Start+r.Len] {
			if v != 0 {
				t.Fatal("pruned entry drifted from zero after sparse rounds")
			}
		}
	}

	// Finish: clients reconstruct the exact global encoder from the full
	// sparse final frame.
	final := f.agg.Final()
	if kind := comm.KindOf(final); kind != comm.FrameSparse {
		t.Fatalf("final payload kind = %v, want sparse", kind)
	}
	f.trainers[0].Finish(final)
	cState := f.trainers[0].Client.Model.State(models.ScopeEncoder)
	for j := range state {
		if math.Float32bits(cState[j]) != math.Float32bits(state[j]) {
			t.Fatalf("final install differs at %d", j)
		}
	}
}

// TestSSFLValuesOnlyBeforeRangesSitsOut: a client that never saw the
// index-bearing frame cannot use a values-only broadcast and must sit
// the round out instead of guessing.
func TestSSFLValuesOnlyBeforeRangesSitsOut(t *testing.T) {
	f := newSSFLFixture(9)
	tr := f.trainers[0]
	if up := tr.LocalUpdate(2, comm.EncodeSparseVals(make([]float32, 10))); up != nil {
		t.Fatal("values-only frame without ranges must be unusable")
	}
}

// TestSSFLDeterministicAcrossGOMAXPROCS: two full federations from the
// same seed must produce bitwise-identical global models at GOMAXPROCS 1
// and N — mask agreement, packed reduce, and mask-static local training
// included.
func TestSSFLDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) []float32 {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		f := newSSFLFixture(31)
		for r := 0; r < 3; r++ {
			f.round(t, r)
		}
		return f.agg.Global.State(models.ScopeEncoder)
	}
	s1 := run(1)
	sN := run(runtime.NumCPU())
	for j := range s1 {
		if math.Float32bits(s1[j]) != math.Float32bits(sN[j]) {
			t.Fatalf("state[%d] differs across GOMAXPROCS: %x vs %x", j,
				math.Float32bits(s1[j]), math.Float32bits(sN[j]))
		}
	}
}
