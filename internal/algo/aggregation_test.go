package algo

import (
	"math"
	"math/rand"
	"testing"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
)

// synthSparse builds a sorted-run sparse payload over [0, n) with odd
// run lengths, exercising chunk-straddling runs in the parallel reduce.
func synthSparse(rng *rand.Rand, n int) *comm.Sparse {
	s := &comm.Sparse{}
	start := rng.Intn(3)
	for start < n {
		l := 1 + rng.Intn(9)
		if start+l > n {
			l = n - start
		}
		s.Ranges = append(s.Ranges, comm.Range{Start: uint32(start), Len: uint32(l)})
		for k := 0; k < l; k++ {
			s.Values = append(s.Values, float32(rng.NormFloat64()))
		}
		start += l + 1 + rng.Intn(64)
	}
	return s
}

// TestSPATLFinishRoundMatchesSerial replays the round's uploads through
// the serial StreamFoldRefSPATL ground truth and demands the streaming
// fold-on-arrival aggregator produce bitwise identical state and
// control variates.
func TestSPATLFinishRoundMatchesSerial(t *testing.T) {
	spec := models.Spec{Arch: "resnet20", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.25}
	global := models.Build(spec, 11)
	const clients = 5
	agg := NewSPATLAggregator(global, SPATLOptions{}, Config{NumClients: clients})
	n := global.StateLen(models.ScopeEncoder)
	nCtrl := nn.ParamCount(global.EncoderParams())

	state0 := global.State(models.ScopeEncoder)
	c0 := append([]float32(nil), agg.c...)

	rng := rand.New(rand.NewSource(13))
	dWs := make([]*comm.Sparse, clients)
	dCs := make([]*comm.Sparse, clients)
	for i := range dWs {
		dWs[i] = synthSparse(rng, n)
		dCs[i] = synthSparse(rng, nCtrl)
		agg.Collect(0, uint32(i), 100, comm.JoinPayloads(
			comm.EncodeSparse(dWs[i]), comm.EncodeSparse(dCs[i])))
	}
	agg.FinishRound(0)
	if d := agg.Dropped(); d != 0 {
		t.Fatalf("well-formed uploads counted as dropped: %d", d)
	}

	wantState, wantC := StreamFoldRefSPATL(state0, c0, dWs, dCs, clients)
	gotState := global.State(models.ScopeEncoder)
	for j := range wantState {
		if math.Float32bits(gotState[j]) != math.Float32bits(wantState[j]) {
			t.Fatalf("state[%d] differs bitwise: %x vs %x", j,
				math.Float32bits(gotState[j]), math.Float32bits(wantState[j]))
		}
	}
	for j := range wantC {
		if math.Float32bits(agg.c[j]) != math.Float32bits(wantC[j]) {
			t.Fatalf("c[%d] differs bitwise: %x vs %x", j,
				math.Float32bits(agg.c[j]), math.Float32bits(wantC[j]))
		}
	}
}

// TestSPATLAggregatorCountsDrops verifies malformed uploads are counted
// instead of silently vanishing. A bad control part alone is not a drop:
// the weight delta still folds (the model update stays sound) and only
// the control contribution is discarded.
func TestSPATLAggregatorCountsDrops(t *testing.T) {
	spec := models.Spec{Arch: "cnn2", Classes: 2, InC: 1, H: 8, W: 8}
	global := models.Build(spec, 3)
	agg := NewSPATLAggregator(global, SPATLOptions{}, Config{NumClients: 2})
	state0 := global.State(models.ScopeEncoder)
	c0 := append([]float32(nil), agg.c...)
	agg.Collect(0, 0, 10, []byte{1, 2})                              // truncated framing
	agg.Collect(0, 1, 10, comm.JoinPayloads([]byte{9, 9}, []byte{})) // bad dW
	rng := rand.New(rand.NewSource(1))
	dW := synthSparse(rng, agg.Global.StateLen(models.ScopeEncoder))
	agg.Collect(0, 2, 10, comm.JoinPayloads(comm.EncodeSparse(dW), []byte{7})) // good dW, bad dC
	if got := agg.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	agg.FinishRound(0)
	// The surviving dW folded: the model moved at its covered indices.
	wantState, _ := StreamFoldRefSPATL(state0, c0, []*comm.Sparse{dW}, []*comm.Sparse{nil}, 2)
	gotState := global.State(models.ScopeEncoder)
	for j := range wantState {
		if math.Float32bits(gotState[j]) != math.Float32bits(wantState[j]) {
			t.Fatalf("state[%d]: good dW did not fold as expected", j)
		}
	}
	// The bad control part was discarded: c is bitwise unchanged.
	for j := range c0 {
		if math.Float32bits(agg.c[j]) != math.Float32bits(c0[j]) {
			t.Fatalf("c[%d] moved despite the control part being discarded", j)
		}
	}
}

// TestFedAvgAggregatorMatchesSerial checks the streaming FedAvg fold
// against the serial StreamFoldRef ground truth, plus drop counting.
func TestFedAvgAggregatorMatchesSerial(t *testing.T) {
	spec := models.Spec{Arch: "cnn2", Classes: 2, InC: 1, H: 8, W: 8}
	global := models.Build(spec, 7)
	agg := NewFedAvgAggregator(global, Config{NumClients: 3})
	n := global.StateLen(models.ScopeAll)

	rng := rand.New(rand.NewSource(17))
	states := make([][]float32, 3)
	weights := make([]float64, 3)
	for i := range states {
		st := make([]float32, n)
		for j := range st {
			st[j] = float32(rng.NormFloat64())
		}
		states[i] = st
		weights[i] = float64(50 + i*10)
		agg.Collect(0, uint32(i), int(weights[i]), comm.EncodeDense(st))
	}
	agg.Collect(0, 9, 10, []byte{0xFF, 0xFF}) // corrupt upload
	if got := agg.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d, want 1", got)
	}
	agg.FinishRound(0)

	want := StreamFoldRefFedAvg(states, weights)
	got := global.State(models.ScopeAll)
	for j := range got {
		if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
			t.Fatalf("state[%d] differs bitwise: %x vs %x", j,
				math.Float32bits(got[j]), math.Float32bits(want[j]))
		}
	}
}

// TestWeightedAverageMatchesSerial pits the parallel reduction against
// the serial reference on awkward sizes, including nil (lost) states.
func TestWeightedAverageMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{1, 7, 1023, 4096, 10001} {
		states := make([][]float32, 6)
		weights := make([]float64, 6)
		for i := range states {
			if i == 3 {
				continue // a lost client
			}
			st := make([]float32, n)
			for j := range st {
				st[j] = float32(rng.NormFloat64())
			}
			states[i] = st
			weights[i] = float64(10 + i)
		}
		want := WeightedAverageSerial(states, weights)
		got := WeightedAverage(states, weights)
		for j := range want {
			if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
				t.Fatalf("n=%d: [%d] differs bitwise", n, j)
			}
		}
	}
	if WeightedAverage(make([][]float32, 4), make([]float64, 4)) != nil {
		t.Fatal("all-nil states must reduce to nil")
	}
}

func TestClipRanges(t *testing.T) {
	in := []comm.Range{{Start: 0, Len: 4}, {Start: 10, Len: 6}, {Start: 20, Len: 3}}
	got := ClipRanges(in, 12)
	if len(got) != 2 {
		t.Fatalf("ranges = %d, want 2", len(got))
	}
	if got[0] != (comm.Range{Start: 0, Len: 4}) {
		t.Fatalf("range 0 = %+v", got[0])
	}
	if got[1] != (comm.Range{Start: 10, Len: 2}) {
		t.Fatalf("straddling range not truncated: %+v", got[1])
	}
	if n := len(ClipRanges(in, 0)); n != 0 {
		t.Fatalf("clip to 0 kept %d ranges", n)
	}
}
