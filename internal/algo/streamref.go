package algo

import "spatl/internal/comm"

// StreamFoldRef* are the serial ground-truth kernels for the streaming
// two-phase reduce, kept beside the Ref*/WeightedAverageSerial family.
// Each replays exactly what the streaming aggregators compute: fold
// clients one at a time IN THE GIVEN ORDER into float64 accumulators of
// the unscaled terms, then finalize with one division per index. The
// permutation suite feeds the streaming engine arbitrary arrival orders
// and asserts bitwise identity against these kernels called in
// canonical (ascending client ID) order — per index, both sides run the
// identical float64 chain acc += wᵢ·f64(xᵢ) … f32(acc/Σw).
//
// Nil rows model dropped uploads and are skipped without consuming a
// weight, matching a fold that never happened.

// StreamFoldRefFedAvg is the streaming ground truth for the FedAvg /
// FedProx dense reduce: Σwᵢxᵢ / Σwᵢ. Returns nil when nothing folded
// (the aggregator leaves the global model untouched).
func StreamFoldRefFedAvg(states [][]float32, weights []float64) []float32 {
	if len(states) == 0 {
		return nil
	}
	var acc []float64
	sumW := 0.0
	for si, st := range states {
		if st == nil {
			continue
		}
		if acc == nil {
			acc = make([]float64, len(st))
		}
		w := weights[si]
		sumW += w
		for j, v := range st {
			acc[j] += w * float64(v)
		}
	}
	if acc == nil || sumW == 0 {
		return nil
	}
	out := make([]float32, len(acc))
	for j := range acc {
		out[j] = float32(acc[j] / sumW)
	}
	return out
}

// StreamFoldRefFedNova is the streaming ground truth for the FedNova
// reduce: τ_eff = Σwᵢτᵢ/Σwᵢ ; x ← x_g − τ_eff·(Σwᵢdᵢ/Σwᵢ) ;
// v = Σwᵢvᵢ/Σwᵢ. Returns (nil, nil) when nothing folded.
func StreamFoldRefFedNova(global []float32, ds, vs [][]float32, taus, ws []float64) (state, velocity []float32) {
	accD := make([]float64, len(global))
	var accV []float64
	sumW, sumWTau := 0.0, 0.0
	folded := false
	for i, d := range ds {
		if d == nil {
			continue
		}
		folded = true
		if accV == nil {
			accV = make([]float64, len(vs[i]))
		}
		w := ws[i]
		sumW += w
		sumWTau += w * taus[i]
		for j, v := range d {
			accD[j] += w * float64(v)
		}
		for j, v := range vs[i] {
			accV[j] += w * float64(v)
		}
	}
	if !folded || sumW == 0 {
		return nil, nil
	}
	tauEff := sumWTau / sumW
	state = make([]float32, len(global))
	for j := range global {
		state[j] = float32(float64(global[j]) - tauEff*(accD[j]/sumW))
	}
	velocity = make([]float32, len(accV))
	for j := range accV {
		velocity[j] = float32(accV[j] / sumW)
	}
	return state, velocity
}

// StreamFoldRefSCAFFOLD is the streaming ground truth for the SCAFFOLD
// reduce: x ← x_g + (ΣΔwᵢ)/|S| ; c ← c + (ΣΔcᵢ)/N, with the sums folded
// client by client in float64. Returns (nil, nil) when nothing folded.
func StreamFoldRefSCAFFOLD(global, c []float32, dWs, dCs [][]float32, numClients int) (state, newC []float32) {
	accW := make([]float64, len(global))
	accC := make([]float64, len(c))
	folded := 0
	for i, dW := range dWs {
		if dW == nil {
			continue
		}
		folded++
		for j, v := range dW {
			accW[j] += float64(v)
		}
		for j, v := range dCs[i] {
			accC[j] += float64(v)
		}
	}
	if folded == 0 {
		return nil, nil
	}
	invS := float64(folded)
	state = make([]float32, len(global))
	for j := range global {
		state[j] = float32(float64(global[j]) + accW[j]/invS)
	}
	newC = make([]float32, len(c))
	invN := float64(numClients)
	for j := range c {
		newC[j] = float32(float64(c[j]) + accC[j]/invN)
	}
	return state, newC
}

// refScatterAccum densifies one sparse upload into the float64
// accumulator: acc[j] += f64(value), count[j]++ at every covered index.
func refScatterAccum(acc []float64, count []int32, s *comm.Sparse) {
	off := 0
	for _, r := range s.Ranges {
		start, n := int(r.Start), int(r.Len)
		for k := 0; k < n; k++ {
			acc[start+k] += float64(s.Values[off+k])
			count[start+k]++
		}
		off += n
	}
}

// StreamFoldRefSPATL is the streaming ground truth for the SPATL
// salient-index reduce (eq. 12): per index, the mean of the
// contributing deltas folded in float64, added onto the global state;
// and eq. 11's 1/N-scaled control update at the uploaded control
// indices. dCs entries may be nil (a bad control part keeps the weight
// delta). Returns (nil, nil) when nothing folded.
func StreamFoldRefSPATL(global, c []float32, dWs, dCs []*comm.Sparse, numClients int) (state, newC []float32) {
	acc := make([]float64, len(global))
	count := make([]int32, len(global))
	accC := make([]float64, len(c))
	folded := false
	for i, dW := range dWs {
		if dW == nil {
			continue
		}
		folded = true
		refScatterAccum(acc, count, dW)
		if i < len(dCs) && dCs[i] != nil {
			off := 0
			for _, r := range dCs[i].Ranges {
				start, n := int(r.Start), int(r.Len)
				for k := 0; k < n; k++ {
					accC[start+k] += float64(dCs[i].Values[off+k])
				}
				off += n
			}
		}
	}
	if !folded {
		return nil, nil
	}
	state = make([]float32, len(global))
	copy(state, global)
	for j := range state {
		if count[j] > 0 {
			state[j] += float32(acc[j] / float64(count[j]))
		}
	}
	newC = make([]float32, len(c))
	invN := float64(numClients)
	for j := range c {
		newC[j] = float32(float64(c[j]) + accC[j]/invN)
	}
	return state, newC
}

// StreamFoldRefSSFLScores is the streaming ground truth for the SSFL
// mask-agreement score reduce: the weighted mean of the per-channel
// saliency vectors, folded in float64 and left in float64 (the mask
// derivation consumes it directly). Returns nil when nothing folded.
func StreamFoldRefSSFLScores(scores [][]float32, weights []float64) []float64 {
	var acc []float64
	sumW := 0.0
	for si, s := range scores {
		if s == nil {
			continue
		}
		if acc == nil {
			acc = make([]float64, len(s))
		}
		w := weights[si]
		sumW += w
		for j, v := range s {
			acc[j] += w * float64(v)
		}
	}
	if acc == nil || sumW == 0 {
		return nil
	}
	for j := range acc {
		acc[j] /= sumW
	}
	return acc
}

// StreamFoldRefSSFLPacked is the streaming ground truth for the SSFL
// mask-static packed reduce: the dense FedAvg fold applied to the
// packed value vectors — the mask is data, it never enters the
// floating-point order.
func StreamFoldRefSSFLPacked(packed [][]float32, weights []float64) []float32 {
	return StreamFoldRefFedAvg(packed, weights)
}
