package algo

import (
	"encoding/binary"
	"fmt"

	"spatl/internal/tensor"
)

// Sharded aggregation: at 10k+ sampled clients per round, a single
// sequential collect pass is the serial bottleneck of a federation — every
// upload must be decoded and validated before the (already parallel)
// reduction runs. The shard layer partitions the selection into contiguous
// shards, lets each shard buffer its uploads independently (edge
// aggregators over TCP, concurrent collectors in-process), and folds the
// pooled shard payloads back into the flat aggregator in fixed shard-ID
// order.
//
// Determinism contract: shards partition the selection *contiguously in
// selection order*, and the fold replays uploads in (shard ID, within-shard
// arrival) order — which is exactly the flat selection order. Every
// aggregator buffers uploads in Collect and reduces in FinishRound, so the
// pending order (and therefore the floating-point reduction) is identical
// to the flat path: the sharded fold is bitwise identical to the flat
// collect at any shard count. The batch decode path (BatchCollector)
// parallelizes only the per-upload decode — order-independent work — and
// appends results in upload order, preserving the same guarantee at any
// GOMAXPROCS.

// Upload is one client's round contribution as a transport delivered it:
// the identity and data weight from the hello handshake plus the opaque
// algorithm payload.
type Upload struct {
	Client    uint32
	TrainSize int
	Payload   []byte
}

// ShardRange returns the half-open range [lo, hi) of selection positions
// owned by shard s when total positions are split into numShards
// contiguous, balanced shards. Every position belongs to exactly one
// shard and shard order preserves selection order.
func ShardRange(s, total, numShards int) (lo, hi int) {
	return s * total / numShards, (s + 1) * total / numShards
}

// ShardOf returns the shard owning selection position pos (0 ≤ pos <
// total) under the ShardRange partition. When numShards > total some
// shards are empty; ShardOf always lands on the non-empty owner.
func ShardOf(pos, total, numShards int) int {
	s := pos * numShards / total // floor-error off by at most a step
	for {
		lo, hi := ShardRange(s, total, numShards)
		switch {
		case pos < lo:
			s--
		case pos >= hi:
			s++
		default:
			return s
		}
	}
}

// shardEntryHeader is the per-entry wire overhead inside a pooled shard
// payload: client ID, train size and payload length, little-endian.
const shardEntryHeader = 4 + 4 + 4

// ShardBuffer accumulates one shard's validated uploads in arrival order,
// building the pooled wire payload incrementally — the same bytes an edge
// aggregator forwards upstream. One goroutine owns a buffer at a time;
// distinct shards may be filled concurrently.
type ShardBuffer struct {
	buf []byte
	n   int
}

// Add appends one client's upload to the shard (the payload is copied, so
// transport buffers may be recycled immediately).
func (s *ShardBuffer) Add(client uint32, trainSize int, payload []byte) {
	var h [shardEntryHeader]byte
	binary.LittleEndian.PutUint32(h[0:4], client)
	binary.LittleEndian.PutUint32(h[4:8], uint32(trainSize))
	binary.LittleEndian.PutUint32(h[8:12], uint32(len(payload)))
	s.buf = append(s.buf, h[:]...)
	s.buf = append(s.buf, payload...)
	s.n++
}

// Len reports how many uploads the shard holds.
func (s *ShardBuffer) Len() int { return s.n }

// Payload returns the pooled shard payload — the concatenated entries in
// arrival order, ready to forward upstream. The slice aliases the
// buffer; it is valid until the next Add or Reset.
func (s *ShardBuffer) Payload() []byte { return s.buf }

// Reset clears the shard for the next round, keeping the backing buffer.
func (s *ShardBuffer) Reset() {
	s.buf = s.buf[:0]
	s.n = 0
}

// DecodeShardPayload walks a pooled shard payload, calling fn for each
// entry in order. Payload slices alias buf and are only valid during the
// call. A malformed payload stops the walk with an error; entries already
// delivered stand.
func DecodeShardPayload(buf []byte, fn func(u Upload)) error {
	for len(buf) > 0 {
		if len(buf) < shardEntryHeader {
			return fmt.Errorf("algo: truncated shard entry header (%d bytes)", len(buf))
		}
		client := binary.LittleEndian.Uint32(buf[0:4])
		trainSize := binary.LittleEndian.Uint32(buf[4:8])
		n := binary.LittleEndian.Uint32(buf[8:12])
		buf = buf[shardEntryHeader:]
		if int(n) > len(buf) {
			return fmt.Errorf("algo: shard entry length %d exceeds remaining %d", n, len(buf))
		}
		fn(Upload{Client: client, TrainSize: int(trainSize), Payload: buf[:n]})
		buf = buf[n:]
	}
	return nil
}

// ShardEntries decodes a pooled shard payload into an Upload slice
// (payloads alias buf), appending to dst.
func ShardEntries(dst []Upload, buf []byte) ([]Upload, error) {
	err := DecodeShardPayload(buf, func(u Upload) { dst = append(dst, u) })
	return dst, err
}

// BatchCollector is the optional fast path of an Aggregator: deliver a
// whole batch of uploads at once so the per-upload decode — the serial
// bottleneck of a flat collect pass at 10k+ clients — parallelizes
// across the worker pool. Implementations must buffer results in upload
// order, making CollectBatch equivalent to calling Collect sequentially.
type BatchCollector interface {
	CollectBatch(round int, ups []Upload)
}

// CollectAll feeds uploads to agg in order, through the parallel batch
// decode when the aggregator supports it and the sequential Collect
// contract otherwise.
func CollectAll(agg Aggregator, round int, ups []Upload) {
	if len(ups) == 0 {
		return
	}
	if bc, ok := agg.(BatchCollector); ok {
		bc.CollectBatch(round, ups)
		return
	}
	for _, u := range ups {
		agg.Collect(round, u.Client, u.TrainSize, u.Payload)
	}
}

// FoldShards replays every shard's pooled uploads into agg in shard-ID
// order — the canonical fold. Because shards partition the selection
// contiguously, (shard ID, arrival order) is the flat selection order,
// so the fold is bitwise identical to a flat sequential collect. Returns
// the number of uploads folded and the first decode error (a malformed
// shard payload contributes its valid prefix and is otherwise skipped —
// consistent with the per-upload drop semantics of the aggregators).
func FoldShards(agg Aggregator, round int, shards []*ShardBuffer) (int, error) {
	var all []Upload
	var firstErr error
	for _, sh := range shards {
		var err error
		all, err = ShardEntries(all, sh.Payload())
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	CollectAll(agg, round, all)
	return len(all), firstErr
}

// decodeBatch decodes every upload concurrently on the worker pool,
// preserving upload order in the result and dropping entries decode
// rejects. decode runs concurrently: it must only touch the upload it
// was handed, pooled scratch, and atomic counters.
func decodeBatch[T any](ups []Upload, decode func(Upload) (T, bool)) []T {
	res := make([]T, len(ups))
	keep := make([]bool, len(ups))
	tensor.Parallel(len(ups), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			res[i], keep[i] = decode(ups[i])
		}
	})
	out := res[:0]
	for i := range res {
		if keep[i] {
			out = append(out, res[i])
		}
	}
	return out
}
