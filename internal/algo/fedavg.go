package algo

import (
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// FedAvgAggregator is the server side of FedAvg (McMahan et al.):
// data-size-weighted model averaging over dense checkpoint payloads,
// folded on arrival through the streaming engine — each upload adds its
// unscaled wᵢ·xᵢ term into the float64 accumulator and releases its
// buffers; FinishRound finalizes with ÷Σw. FedProx shares it — the
// proximal term is purely client-side.
type FedAvgAggregator struct {
	Telemetered
	stream[fedavgUpload]
	Global *models.SplitModel

	cfg      Config
	acc      []float64 // unscaled Σ wᵢ·xᵢ, folded on arrival
	sumW     float64
	folded   int
	curRound int
	bcast    []byte    // reusable broadcast body
	avgBuf   []float32 // reusable aggregate, recycled across rounds
	dropped  telemetry.Counter
}

// fedavgUpload is one client's decoded round contribution.
type fedavgUpload struct {
	state []float32
	w     float64
}

// NewFedAvgAggregator wires the aggregator around the global model.
func NewFedAvgAggregator(global *models.SplitModel, cfg Config) *FedAvgAggregator {
	a := &FedAvgAggregator{Global: global, cfg: cfg.WithDefaults()}
	a.foldFn = a.fold
	a.releaseFn = func(u fedavgUpload) { comm.PutF32(u.state) }
	return a
}

// Dropped reports how many malformed uploads have been discarded since
// construction; surfaced so operators can tell a skewed aggregate from a
// healthy one.
func (a *FedAvgAggregator) Dropped() int64 { return a.dropped.Value() }

// SetTelemetry implements Wirer, additionally exposing the drop counter
// through the registry — the same counter Dropped reads.
func (a *FedAvgAggregator) SetTelemetry(s *telemetry.Set) {
	a.Telemetered.SetTelemetry(s)
	if s != nil && s.Reg != nil {
		s.Reg.Attach("algo.uploads_dropped", &a.dropped)
		a.wireStream(s.Reg)
	}
}

// Broadcast implements Aggregator.
func (a *FedAvgAggregator) Broadcast(round int) []byte {
	defer a.span(round, "agg.broadcast").End()
	n := a.Global.StateLen(models.ScopeAll)
	state := a.Global.StateInto(models.ScopeAll, comm.GetF32(n))
	a.bcast = a.cfg.encodeDenseInto(a.bcast, state)
	comm.PutF32(state)
	a.size("payload.down", len(a.bcast))
	return a.bcast
}

// decodeUpload decodes one dense upload into a pooled vector; the
// shared front half of Collect, CollectLate and CollectBatch.
func (a *FedAvgAggregator) decodeUpload(trainSize int, payload []byte) (fedavgUpload, bool) {
	a.size("payload.up", len(payload))
	n := a.Global.StateLen(models.ScopeAll)
	state, err := comm.DecodeDenseAnyInto(comm.GetF32(n), payload)
	if err != nil || len(state) != n {
		a.dropped.Add(1)
		comm.PutF32(state)
		return fedavgUpload{}, false
	}
	return fedavgUpload{state: state, w: float64(trainSize)}, true
}

// fold adds one upload's unscaled wᵢ·xᵢ term into the float64
// accumulator. Folds run only on the collect goroutine, in the order
// the streaming cursor dictates; per index the chunked accumulation is
// independent, so the chain is bitwise identical at any GOMAXPROCS.
func (a *FedAvgAggregator) fold(u fedavgUpload) {
	defer a.span(a.curRound, "agg.fold").End()
	n := len(u.state)
	if a.folded == 0 {
		if cap(a.acc) < n {
			a.acc = make([]float64, n)
		}
		a.acc = a.acc[:n]
		for j := range a.acc {
			a.acc[j] = 0
		}
		a.sumW = 0
	}
	a.folded++
	a.sumW += u.w
	tensor.Parallel(n, func(lo, hi int) {
		tensor.VecAccumScaled(a.acc[lo:hi], u.state[lo:hi], u.w)
	})
}

// Collect implements Aggregator: decode into a pooled vector and hand
// it to the streaming engine — folded immediately at the cursor, staged
// briefly when it arrives early. The buffer is released right after the
// fold, not at FinishRound.
func (a *FedAvgAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(trainSize, payload); ok {
		a.ingest(client, u)
	}
}

// CollectLate implements StreamingAggregator: a carried-over straggler
// upload folds at its delivery position, outside the cursor.
func (a *FedAvgAggregator) CollectLate(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(trainSize, payload); ok {
		a.foldNow(u)
	}
}

// CollectBatch implements BatchCollector: decode a whole batch of
// uploads concurrently, then ingest in upload order — equivalent to
// sequential Collect calls, with the per-upload decode parallelized.
func (a *FedAvgAggregator) CollectBatch(round int, ups []Upload) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	type entry struct {
		client uint32
		u      fedavgUpload
	}
	entries := decodeBatch(ups, func(up Upload) (entry, bool) {
		u, ok := a.decodeUpload(up.TrainSize, up.Payload)
		return entry{client: up.Client, u: u}, ok
	})
	for _, e := range entries {
		a.ingest(e.client, e.u)
	}
}

// FinishRound implements Aggregator: drain anything still staged, then
// finalize the accumulated Σwᵢxᵢ with a single ÷Σw per index — bitwise
// identical to StreamFoldRefFedAvg at any GOMAXPROCS.
func (a *FedAvgAggregator) FinishRound(round int) {
	defer a.span(round, "agg.reduce").End()
	a.curRound = round
	a.finishStream()
	if a.folded == 0 || a.sumW == 0 {
		a.folded = 0
		return
	}
	n := len(a.acc)
	if cap(a.avgBuf) < n {
		a.avgBuf = make([]float32, n)
	}
	avg := a.avgBuf[:n]
	tensor.Parallel(n, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			avg[j] = float32(a.acc[j] / a.sumW)
		}
	})
	a.avgBuf = avg
	a.Global.SetState(models.ScopeAll, avg)
	a.folded = 0
	a.sumW = 0
}

// Final implements Aggregator.
func (a *FedAvgAggregator) Final() []byte {
	return comm.EncodeDense(a.Global.State(models.ScopeAll))
}

// FedAvgTrainer is the client side of FedAvg and (with prox set)
// FedProx: install the broadcast model, run local SGD on the private
// shard, upload the trained weights. The upload is a single dense
// payload, so FedProx's per-round traffic equals FedAvg's exactly.
type FedAvgTrainer struct {
	Telemetered
	Client *Client

	// FinalModel is populated by Finish.
	FinalModel []float32

	cfg   Config
	prox  bool
	upBuf []byte // reusable upload body
}

// NewFedAvgTrainer wires a trainer around a client.
func NewFedAvgTrainer(c *Client, cfg Config) *FedAvgTrainer {
	return &FedAvgTrainer{Client: c, cfg: cfg.WithDefaults()}
}

// NewFedProxTrainer is NewFedAvgTrainer plus the proximal term μ(w −
// w_global) on every local gradient (Li et al.).
func NewFedProxTrainer(c *Client, cfg Config) *FedAvgTrainer {
	t := NewFedAvgTrainer(c, cfg)
	t.prox = true
	if t.cfg.ProxMu == 0 {
		t.cfg.ProxMu = 0.01
	}
	return t
}

// LocalUpdate implements Trainer.
func (t *FedAvgTrainer) LocalUpdate(round int, payload []byte) []byte {
	sp := t.span(round, "client.update")
	defer sp.End()
	m := t.Client.Model
	n := m.StateLen(models.ScopeAll)
	state, err := comm.DecodeDenseAnyInto(comm.GetF32(n), payload)
	if err != nil || len(state) != n {
		comm.PutF32(state)
		return nil
	}
	m.SetState(models.ScopeAll, state)
	comm.PutF32(state)
	opts := t.cfg.localOpts(m.Params(), round)
	if t.prox {
		opts.Hook = addProx(t.cfg.ProxMu, nn.FlattenParams(m.Params()))
	}
	rng := rand.New(rand.NewSource(ClientSeed(t.cfg.Seed, round, t.Client.ID)))
	train := sp.Child("client.train")
	LocalSGD(t.Client, opts, rng)
	train.End()
	local := m.StateInto(models.ScopeAll, comm.GetF32(n))
	t.upBuf = t.cfg.encodeDenseInto(t.upBuf, local)
	comm.PutF32(local)
	return t.upBuf
}

// Finish implements Trainer.
func (t *FedAvgTrainer) Finish(payload []byte) {
	if state, err := comm.DecodeDenseAnyInto(nil, payload); err == nil {
		t.Client.Model.SetState(models.ScopeAll, state)
		t.FinalModel = state
	}
}
