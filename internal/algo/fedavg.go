package algo

import (
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/telemetry"
)

// FedAvgAggregator is the server side of FedAvg (McMahan et al.):
// data-size-weighted model averaging over dense checkpoint payloads.
// FedProx shares it — the proximal term is purely client-side.
type FedAvgAggregator struct {
	Telemetered
	Global *models.SplitModel

	cfg     Config
	states  [][]float32 // decoded uploads, buffered in collect order
	weights []float64
	bcast   []byte    // reusable broadcast body
	avgBuf  []float32 // reusable aggregate, recycled across rounds
	dropped telemetry.Counter
}

// NewFedAvgAggregator wires the aggregator around the global model.
func NewFedAvgAggregator(global *models.SplitModel, cfg Config) *FedAvgAggregator {
	return &FedAvgAggregator{Global: global, cfg: cfg.WithDefaults()}
}

// Dropped reports how many malformed uploads have been discarded since
// construction; surfaced so operators can tell a skewed aggregate from a
// healthy one.
func (a *FedAvgAggregator) Dropped() int64 { return a.dropped.Value() }

// SetTelemetry implements Wirer, additionally exposing the drop counter
// through the registry — the same counter Dropped reads.
func (a *FedAvgAggregator) SetTelemetry(s *telemetry.Set) {
	a.Telemetered.SetTelemetry(s)
	if s != nil && s.Reg != nil {
		s.Reg.Attach("algo.uploads_dropped", &a.dropped)
	}
}

// Broadcast implements Aggregator.
func (a *FedAvgAggregator) Broadcast(round int) []byte {
	defer a.span(round, "agg.broadcast").End()
	n := a.Global.StateLen(models.ScopeAll)
	state := a.Global.StateInto(models.ScopeAll, comm.GetF32(n))
	a.bcast = a.cfg.encodeDenseInto(a.bcast, state)
	comm.PutF32(state)
	a.size("payload.down", len(a.bcast))
	return a.bcast
}

// Collect implements Aggregator: decode into a pooled vector and buffer
// it; the reduction happens in FinishRound so it can replay collect
// order deterministically.
func (a *FedAvgAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.size("payload.up", len(payload))
	n := a.Global.StateLen(models.ScopeAll)
	state, err := comm.DecodeDenseAnyInto(comm.GetF32(n), payload)
	if err != nil || len(state) != n {
		a.dropped.Add(1)
		comm.PutF32(state)
		return
	}
	a.states = append(a.states, state)
	a.weights = append(a.weights, float64(trainSize))
}

// CollectBatch implements BatchCollector: decode a whole batch of
// uploads concurrently, buffering results in upload order — equivalent
// to sequential Collect calls, with the per-upload decode parallelized.
func (a *FedAvgAggregator) CollectBatch(round int, ups []Upload) {
	defer a.span(round, "agg.collect").End()
	n := a.Global.StateLen(models.ScopeAll)
	type entry struct {
		state []float32
		w     float64
	}
	entries := decodeBatch(ups, func(u Upload) (entry, bool) {
		a.size("payload.up", len(u.Payload))
		state, err := comm.DecodeDenseAnyInto(comm.GetF32(n), u.Payload)
		if err != nil || len(state) != n {
			a.dropped.Add(1)
			comm.PutF32(state)
			return entry{}, false
		}
		return entry{state: state, w: float64(u.TrainSize)}, true
	})
	for _, e := range entries {
		a.states = append(a.states, e.state)
		a.weights = append(a.weights, e.w)
	}
}

// FinishRound implements Aggregator: the deterministic parallel weighted
// average, bitwise identical to the serial reference at any GOMAXPROCS.
func (a *FedAvgAggregator) FinishRound(round int) {
	defer a.span(round, "agg.reduce").End()
	if avg := WeightedAverageInto(a.avgBuf, a.states, a.weights); avg != nil {
		a.avgBuf = avg
		a.Global.SetState(models.ScopeAll, avg)
	}
	for _, st := range a.states {
		comm.PutF32(st)
	}
	a.states = a.states[:0]
	a.weights = a.weights[:0]
}

// Final implements Aggregator.
func (a *FedAvgAggregator) Final() []byte {
	return comm.EncodeDense(a.Global.State(models.ScopeAll))
}

// FedAvgTrainer is the client side of FedAvg and (with prox set)
// FedProx: install the broadcast model, run local SGD on the private
// shard, upload the trained weights. The upload is a single dense
// payload, so FedProx's per-round traffic equals FedAvg's exactly.
type FedAvgTrainer struct {
	Telemetered
	Client *Client

	// FinalModel is populated by Finish.
	FinalModel []float32

	cfg   Config
	prox  bool
	upBuf []byte // reusable upload body
}

// NewFedAvgTrainer wires a trainer around a client.
func NewFedAvgTrainer(c *Client, cfg Config) *FedAvgTrainer {
	return &FedAvgTrainer{Client: c, cfg: cfg.WithDefaults()}
}

// NewFedProxTrainer is NewFedAvgTrainer plus the proximal term μ(w −
// w_global) on every local gradient (Li et al.).
func NewFedProxTrainer(c *Client, cfg Config) *FedAvgTrainer {
	t := NewFedAvgTrainer(c, cfg)
	t.prox = true
	if t.cfg.ProxMu == 0 {
		t.cfg.ProxMu = 0.01
	}
	return t
}

// LocalUpdate implements Trainer.
func (t *FedAvgTrainer) LocalUpdate(round int, payload []byte) []byte {
	sp := t.span(round, "client.update")
	defer sp.End()
	m := t.Client.Model
	n := m.StateLen(models.ScopeAll)
	state, err := comm.DecodeDenseAnyInto(comm.GetF32(n), payload)
	if err != nil || len(state) != n {
		comm.PutF32(state)
		return nil
	}
	m.SetState(models.ScopeAll, state)
	comm.PutF32(state)
	opts := t.cfg.localOpts(m.Params(), round)
	if t.prox {
		opts.Hook = addProx(t.cfg.ProxMu, nn.FlattenParams(m.Params()))
	}
	rng := rand.New(rand.NewSource(ClientSeed(t.cfg.Seed, round, t.Client.ID)))
	train := sp.Child("client.train")
	LocalSGD(t.Client, opts, rng)
	train.End()
	local := m.StateInto(models.ScopeAll, comm.GetF32(n))
	t.upBuf = t.cfg.encodeDenseInto(t.upBuf, local)
	comm.PutF32(local)
	return t.upBuf
}

// Finish implements Trainer.
func (t *FedAvgTrainer) Finish(payload []byte) {
	if state, err := comm.DecodeDenseAnyInto(nil, payload); err == nil {
		t.Client.Model.SetState(models.ScopeAll, state)
		t.FinalModel = state
	}
}
