// Package algo is the transport-agnostic federated-learning algorithm
// layer. Every algorithm — FedAvg, FedProx, FedNova, SCAFFOLD and SPATL
// — is implemented exactly once here, as a byte-payload Aggregator
// (server side) and Trainer (client side) pair. Transports only move
// bytes between the two:
//
//   - internal/fl drives the pair in-process with parallel clients,
//     comm.Meter byte accounting and deterministic failure injection —
//     the simulation harness for experiments;
//   - internal/flnet drives the identical pair over TCP with framing,
//     deadlines and straggler tolerance — the deployment path.
//
// Because both transports execute the same cores with the same
// per-(round, client) seeds, a federation produces bitwise-identical
// global models whichever transport carries it (see the cross-transport
// equivalence test in internal/flnet).
//
// Payload ownership: the slice returned by Broadcast/LocalUpdate is
// owned by the aggregator/trainer and reused on the next call; the
// payload passed to Collect/LocalUpdate/Finish is only valid for the
// duration of the call. Implementations decode into pooled buffers
// (internal/comm) and never retain transport memory.
package algo

import (
	"spatl/internal/comm"
	"spatl/internal/nn"
)

// Aggregator is the server side of one algorithm. Implementations own
// the payload encoding; transports only move bytes.
type Aggregator interface {
	// Broadcast produces the payload sent to every sampled client at the
	// start of round. The returned slice is owned by the aggregator and
	// reused on the next Broadcast/Final call.
	Broadcast(round int) []byte
	// Collect consumes one sampled client's upload; payload is only
	// valid during the call. All repo aggregators also implement
	// StreamingAggregator: after BeginRound, Collect accepts uploads in
	// ARBITRARY arrival order and the fold-on-arrival cursor restores
	// the canonical ascending-client-ID fold order (bitwise identical
	// to a sequential selection-order Collect pass). Without BeginRound
	// the legacy contract holds: call sequentially in selection order.
	// Malformed uploads are counted (see the aggregators' Dropped
	// methods), never fatal.
	Collect(round int, client uint32, trainSize int, payload []byte)
	// FinishRound folds the collected uploads into the global model.
	// Called once per round, after the transport has delivered every
	// upload that arrived (which may be none).
	FinishRound(round int)
	// Final produces the payload broadcast at the end of the federation.
	Final() []byte
}

// Trainer is the client side of one algorithm.
type Trainer interface {
	// LocalUpdate consumes a round broadcast, runs local training, and
	// returns the upload. The returned slice is owned by the trainer and
	// reused on the next call; a nil return means the broadcast was
	// unusable and nothing is uploaded.
	LocalUpdate(round int, payload []byte) []byte
	// Finish consumes the final model payload.
	Finish(payload []byte)
}

// Config carries the hyperparameters an algorithm core needs on either
// side of the wire. It mirrors the simulation config (fl.Config) minus
// the transport-owned knobs (sampling ratio, drop injection).
type Config struct {
	// NumClients is the federation size N — required by the control
	// variate updates (SCAFFOLD, SPATL) that scale by 1/N.
	NumClients  int
	LocalEpochs int
	BatchSize   int
	LR          float64
	// LRSchedule, when set, overrides LR per communication round.
	LRSchedule  nn.Schedule
	Momentum    float64
	WeightDecay float64
	ProxMu      float64 // FedProx proximal coefficient (default 0.01)
	GradClip    float64 // global-norm gradient clip; 0 disables
	// HalfPrecision ships payloads as IEEE 754 binary16.
	HalfPrecision bool
	// Seed drives the deterministic per-(round, client) training RNGs,
	// and must match across the server and every client for reproducible
	// federations.
	Seed int64
}

// WithDefaults fills zero training fields with the standard settings
// (NumClients is left alone — it has no sensible default).
func (c Config) WithDefaults() Config {
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 10
	}
	if c.BatchSize == 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Momentum == 0 {
		c.Momentum = 0.9
	}
	return c
}

// LRAt returns the learning rate for a communication round, honouring
// the schedule when one is configured.
func (c Config) LRAt(round int) float64 {
	if c.LRSchedule != nil {
		return c.LRSchedule.LRAt(round)
	}
	return c.LR
}

// ClientSeed derives the deterministic per-(round, client) seed for
// local training. Server and clients derive identical seeds from the
// shared Config.Seed, which is what makes the two transports
// bitwise-equivalent.
func ClientSeed(seed int64, round, clientID int) int64 {
	return seed*1_000_003 + int64(round)*10_007 + int64(clientID)*101 + 17
}

// localOpts builds the LocalOpts for one round of client training.
func (c Config) localOpts(params []*nn.Param, round int) LocalOpts {
	return LocalOpts{
		Params: params, Epochs: c.LocalEpochs, BatchSize: c.BatchSize,
		LR: c.LRAt(round), Momentum: c.Momentum, WeightDecay: c.WeightDecay,
		GradClip: c.GradClip,
	}
}

// encodeDenseInto serializes v into dst at the configured precision.
func (c Config) encodeDenseInto(dst []byte, v []float32) []byte {
	if c.HalfPrecision {
		return comm.EncodeDenseF16Into(dst, v)
	}
	return comm.EncodeDenseInto(dst, v)
}

// denseLen returns the encoded size of an n-element dense payload at the
// configured precision — for pre-sizing pooled buffers.
func (c Config) denseLen(n int) int {
	if c.HalfPrecision {
		return comm.DenseF16Len(n)
	}
	return comm.DenseLen(n)
}

// encodeSparseInto serializes s into dst at the configured precision.
func (c Config) encodeSparseInto(dst []byte, s *comm.Sparse) []byte {
	if c.HalfPrecision {
		return comm.EncodeSparseF16Into(dst, s)
	}
	return comm.EncodeSparseInto(dst, s)
}

// sparseLen returns the encoded size of s at the configured precision.
func (c Config) sparseLen(s *comm.Sparse) int {
	if c.HalfPrecision {
		return s.EncodedLenF16()
	}
	return s.EncodedLen()
}
