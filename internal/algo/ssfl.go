package algo

import (
	"math/rand"

	"spatl/internal/comm"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/prune"
	"spatl/internal/telemetry"
	"spatl/internal/tensor"
)

// SSFL (sparse-native salient-subnetwork federated learning) decides the
// sparse sub-network ONCE and then never densifies it on the wire:
//
//   - Round 0 is the mask-agreement round. The server broadcasts the
//     dense encoder; every client runs a short local warm-up and uploads
//     its per-channel saliency scores (L1 filter norms). The server
//     reduces the score vectors deterministically in float64, derives a
//     single global channel mask per prunable unit (prune.MaskFromScores)
//     and zeroes the pruned channels of the global model.
//   - Every later round is mask-static. The round after agreement
//     carries the index ranges exactly once (a full sparse frame); from
//     then on both directions move values-only frames — just the packed
//     masked values, no indices, no dense vector anywhere on the path.
//     The server reduce runs directly on the packed value vectors
//     (WeightedAverageInto over packed uploads) and only the final apply
//     writes the kept entries back into the model.
//
// The mask is decided once, then it is data: it never participates in
// floating-point order, so the packed reduce is bitwise identical to the
// retained dense reference (SSFLReduceReference) at any GOMAXPROCS.
// Client-side, the zeroed channels make the conv/linear weights sparse,
// which routes local training through the mask-static pattern kernels
// (internal/nn sparseCache) for the whole sparse epoch.

// SSFLOptions configures SSFL.
type SSFLOptions struct {
	// KeepRatio is the fraction of channels kept per prunable unit when
	// the global mask is derived from the aggregated saliency scores
	// (default 0.5). 1.0 keeps every channel — the mask is full, but the
	// wire path still moves values-only frames.
	KeepRatio float64
}

// WithDefaults fills zero fields.
func (o SSFLOptions) WithDefaults() SSFLOptions {
	if o.KeepRatio == 0 {
		o.KeepRatio = 0.5
	}
	return o
}

// ssflScoreLen is the length of the concatenated per-unit saliency score
// vector a client uploads at the agreement round.
func ssflScoreLen(m *models.SplitModel) int {
	n := 0
	for _, u := range m.PrunableUnits() {
		n += u.Conv.OutC
	}
	return n
}

// ssflScoresInto concatenates each prunable unit's channel saliency
// scores into dst (L1 filter norms, the criterion the mask is agreed on).
func ssflScoresInto(dst []float32, m *models.SplitModel) []float32 {
	dst = dst[:0]
	for _, u := range m.PrunableUnits() {
		for _, s := range prune.ChannelScores(u.Conv) {
			dst = append(dst, float32(s))
		}
	}
	return dst
}

// SSFLAggregator is the server side of SSFL.
type SSFLAggregator struct {
	Telemetered
	stream[ssflUpload]
	Global *models.SplitModel
	Opts   SSFLOptions

	cfg    Config
	bcast  []byte
	avgBuf []float32

	// Mask state, fixed at the end of the agreement round.
	sel       *prune.Selection
	ranges    []comm.Range
	keptN     int
	maskRound int // round whose FinishRound agreed the mask

	// Streaming accumulator: unscaled Σ wᵢ·xᵢ over the round's upload
	// vectors — score vectors during the agreement round, packed masked
	// value vectors afterwards. The phase flips only in FinishRound,
	// after the stream drained, so one accumulator serves both.
	acc    []float64
	sumW   float64
	folded int

	curRound   int
	dropped    telemetry.Counter
	sparseUp   telemetry.Counter // values-only uplink bytes accepted
	sparseDown telemetry.Counter // sparse downlink bytes broadcast
}

// ssflUpload is one client's decoded round contribution: a score or
// packed value vector and its data-size weight.
type ssflUpload struct {
	vec []float32
	w   float64
}

// NewSSFLAggregator wires the aggregator around the global model.
func NewSSFLAggregator(global *models.SplitModel, opts SSFLOptions, cfg Config) *SSFLAggregator {
	a := &SSFLAggregator{
		Global:    global,
		Opts:      opts.WithDefaults(),
		cfg:       cfg.WithDefaults(),
		maskRound: -1,
	}
	a.foldFn = a.fold
	a.releaseFn = func(u ssflUpload) { comm.PutF32(u.vec) }
	return a
}

// Dropped reports how many malformed uploads have been discarded.
func (a *SSFLAggregator) Dropped() int64 { return a.dropped.Value() }

// Selection exposes the agreed global selection (nil before agreement).
func (a *SSFLAggregator) Selection() *prune.Selection { return a.sel }

// SetTelemetry implements Wirer, additionally exposing the drop counter
// and the sparse wire-byte counters through the registry.
func (a *SSFLAggregator) SetTelemetry(s *telemetry.Set) {
	a.Telemetered.SetTelemetry(s)
	if s != nil && s.Reg != nil {
		s.Reg.Attach("algo.uploads_dropped", &a.dropped)
		s.Reg.Attach("comm.sparse_up_bytes", &a.sparseUp)
		s.Reg.Attach("comm.sparse_down_bytes", &a.sparseDown)
		a.wireStream(s.Reg)
	}
}

// Broadcast implements Aggregator: the dense encoder before agreement; a
// full sparse frame (indices travel exactly once) the round right after
// agreement; values-only frames every round thereafter.
func (a *SSFLAggregator) Broadcast(round int) []byte {
	defer a.span(round, "agg.broadcast").End()
	n := a.Global.StateLen(models.ScopeEncoder)
	state := a.Global.StateInto(models.ScopeEncoder, comm.GetF32(n))
	if a.sel == nil {
		a.bcast = a.cfg.encodeDenseInto(a.bcast, state)
	} else {
		var sw comm.Sparse
		comm.GatherSparseInto(&sw, state, a.ranges)
		if round == a.maskRound+1 {
			a.bcast = a.cfg.encodeSparseInto(a.bcast, &sw)
		} else if a.cfg.HalfPrecision {
			a.bcast = comm.EncodeSparseValsF16Into(a.bcast, sw.Values)
		} else {
			a.bcast = comm.EncodeSparseValsInto(a.bcast, sw.Values)
		}
		a.sparseDown.Add(int64(len(a.bcast)))
	}
	comm.PutF32(state)
	a.size("payload.down", len(a.bcast))
	return a.bcast
}

// collectScores decodes one agreement-round score upload.
func (a *SSFLAggregator) collectScores(payload []byte) ([]float32, bool) {
	want := ssflScoreLen(a.Global)
	scores, err := comm.DecodeDenseAnyInto(comm.GetF32(want), payload)
	if err != nil || len(scores) != want {
		a.dropped.Add(1)
		comm.PutF32(scores)
		return nil, false
	}
	return scores, true
}

// collectPacked decodes one values-only sparse-round upload.
func (a *SSFLAggregator) collectPacked(payload []byte) ([]float32, bool) {
	vals, err := comm.DecodeSparseValsAnyInto(comm.GetF32(a.keptN), payload)
	if err != nil || len(vals) != a.keptN {
		a.dropped.Add(1)
		comm.PutF32(vals)
		return nil, false
	}
	a.sparseUp.Add(int64(len(payload)))
	return vals, true
}

// decodeUpload decodes one upload for the current phase; the shared
// front half of Collect, CollectLate and CollectBatch.
func (a *SSFLAggregator) decodeUpload(trainSize int, payload []byte) (ssflUpload, bool) {
	a.size("payload.up", len(payload))
	var vec []float32
	var ok bool
	if a.sel == nil {
		vec, ok = a.collectScores(payload)
	} else {
		vec, ok = a.collectPacked(payload)
	}
	if !ok {
		return ssflUpload{}, false
	}
	return ssflUpload{vec: vec, w: float64(trainSize)}, true
}

// fold adds one upload's unscaled wᵢ·xᵢ term into the float64
// accumulator — the same fold for both phases, since the vector length
// (score vs packed) is fixed within a round and the phase only flips in
// FinishRound after the stream drained.
func (a *SSFLAggregator) fold(u ssflUpload) {
	defer a.span(a.curRound, "agg.fold").End()
	n := len(u.vec)
	if a.folded == 0 {
		if cap(a.acc) < n {
			a.acc = make([]float64, n)
		}
		a.acc = a.acc[:n]
		for j := range a.acc {
			a.acc[j] = 0
		}
		a.sumW = 0
	}
	a.folded++
	a.sumW += u.w
	tensor.Parallel(n, func(lo, hi int) {
		tensor.VecAccumScaled(a.acc[lo:hi], u.vec[lo:hi], u.w)
	})
}

// Collect implements Aggregator: decode, then fold through the
// streaming cursor; buffers release right after the fold.
func (a *SSFLAggregator) Collect(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(trainSize, payload); ok {
		a.ingest(client, u)
	}
}

// CollectLate implements StreamingAggregator: a carried-over straggler
// upload folds at its delivery position, outside the cursor. A stale
// score upload arriving after the mask was agreed fails the packed
// decode and counts as dropped, same as the buffered path.
func (a *SSFLAggregator) CollectLate(round int, client uint32, trainSize int, payload []byte) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	if u, ok := a.decodeUpload(trainSize, payload); ok {
		a.foldNow(u)
	}
}

// CollectBatch implements BatchCollector: the Collect decode run
// concurrently over a whole batch, then ingested in upload order.
func (a *SSFLAggregator) CollectBatch(round int, ups []Upload) {
	defer a.span(round, "agg.collect").End()
	a.curRound = round
	type entry struct {
		client uint32
		u      ssflUpload
	}
	entries := decodeBatch(ups, func(up Upload) (entry, bool) {
		u, ok := a.decodeUpload(up.TrainSize, up.Payload)
		return entry{client: up.Client, u: u}, ok
	})
	for _, e := range entries {
		a.ingest(e.client, e.u)
	}
}

// FinishRound implements Aggregator.
func (a *SSFLAggregator) FinishRound(round int) {
	defer a.span(round, "agg.reduce").End()
	a.curRound = round
	a.finishStream()
	if a.sel == nil {
		a.agreeMask(round)
		return
	}
	if a.folded == 0 || a.sumW == 0 {
		a.folded = 0
		return
	}
	// The fold ran entirely on packed vectors; only this apply touches a
	// dense view, and only at the kept indices — the complement stays
	// the zeros ZeroPruned wrote at agreement.
	if cap(a.avgBuf) < a.keptN {
		a.avgBuf = make([]float32, a.keptN)
	}
	avg := a.avgBuf[:a.keptN]
	tensor.Parallel(a.keptN, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			avg[j] = float32(a.acc[j] / a.sumW)
		}
	})
	a.avgBuf = avg
	n := a.Global.StateLen(models.ScopeEncoder)
	state := a.Global.StateInto(models.ScopeEncoder, comm.GetF32(n))
	comm.ScatterCopy(state, avg, a.ranges)
	a.Global.SetState(models.ScopeEncoder, state)
	comm.PutF32(state)
	a.folded = 0
	a.sumW = 0
}

// agreeMask finalizes the streamed saliency-score fold into the single
// global mask, fixes the salient index ranges for the rest of the
// federation, and zeroes the pruned channels of the global model. The
// scores already folded on arrival; this divides by Σw and derives the
// mask — matching StreamFoldRefSSFLScores bitwise.
func (a *SSFLAggregator) agreeMask(round int) {
	scoreLen := ssflScoreLen(a.Global)
	avg := make([]float64, scoreLen)
	if a.folded > 0 && a.sumW != 0 {
		for j := range avg {
			avg[j] = a.acc[j] / a.sumW
		}
	} else {
		// No survivor this round: agree on the global model's own
		// saliency so the federation still enters the sparse epoch.
		off := 0
		for _, u := range a.Global.PrunableUnits() {
			for _, s := range prune.ChannelScores(u.Conv) {
				avg[off] = s
				off++
			}
		}
	}

	units := a.Global.PrunableUnits()
	masks := make([]prune.Mask, len(units))
	off := 0
	for i, u := range units {
		masks[i] = prune.MaskFromScores(avg[off:off+u.Conv.OutC], a.Opts.KeepRatio)
		off += u.Conv.OutC
	}
	a.sel = prune.SelectWithMasks(a.Global, masks)
	a.ranges = a.sel.Ranges
	a.keptN = 0
	for _, r := range a.ranges {
		a.keptN += int(r.Len)
	}
	a.maskRound = round

	// Zero the pruned sub-network: ZeroPruned handles the channel-level
	// structures (rows, bias, BN affine), then the state-level pass
	// forces the entire non-salient complement — including consumer-conv
	// input columns — to exactly zero, the invariant every later round
	// preserves by never writing outside the kept ranges.
	prune.ZeroPruned(a.Global, a.sel)
	n := a.Global.StateLen(models.ScopeEncoder)
	state := a.Global.StateInto(models.ScopeEncoder, comm.GetF32(n))
	comm.ZeroRanges(state, comm.ComplementRanges(a.ranges, n))
	a.Global.SetState(models.ScopeEncoder, state)
	comm.PutF32(state)

	frame := comm.SparseValsLen(a.keptN)
	if a.cfg.HalfPrecision {
		frame = comm.SparseValsF16Len(a.keptN)
	}
	if tel := a.Telemetry(); tel != nil {
		tel.Emit(telemetry.MaskAgreement(round, a.keptN, int64(frame)))
	}

	a.folded = 0
	a.sumW = 0
}

// Final implements Aggregator: a full sparse frame once the mask exists
// (the complement is zero by construction), dense before agreement.
func (a *SSFLAggregator) Final() []byte {
	if a.sel == nil {
		return comm.EncodeDense(a.Global.State(models.ScopeEncoder))
	}
	state := a.Global.State(models.ScopeEncoder)
	return comm.EncodeSparse(comm.GatherSparse(state, a.ranges))
}

// SSFLReduceReference is the retained dense reference for the packed
// sparse reduce: densify every upload onto the global state, run the
// serial dense streaming fold, return the new state (nil when nothing
// survived). FinishRound's packed reduction must match it bitwise at any
// GOMAXPROCS — the complement contributes exact zeros to every term, and
// at the kept indices both reductions fold clients in ascending order in
// float64.
func SSFLReduceReference(global []float32, packed [][]float32, weights []float64, ranges []comm.Range) []float32 {
	states := make([][]float32, len(packed))
	for i, p := range packed {
		if p == nil {
			continue
		}
		st := append([]float32(nil), global...)
		if !comm.ScatterCopy(st, p, ranges) {
			continue
		}
		states[i] = st
	}
	return StreamFoldRefFedAvg(states, weights)
}

// SSFLTrainer is the client side of SSFL.
type SSFLTrainer struct {
	Telemetered
	Client *Client
	Opts   SSFLOptions

	cfg   Config
	upBuf []byte

	// Mask state, copied out of the one full sparse frame received after
	// agreement (broadcast payloads are shared across clients and only
	// valid during the call — the ranges must be owned here).
	ranges     []comm.Range
	complement []comm.Range
	keptN      int
}

// NewSSFLTrainer wires a trainer around a client.
func NewSSFLTrainer(c *Client, opts SSFLOptions, cfg Config) *SSFLTrainer {
	return &SSFLTrainer{Client: c, Opts: opts.WithDefaults(), cfg: cfg.WithDefaults()}
}

// LocalUpdate implements Trainer. The frame magic selects the phase: a
// dense broadcast is the agreement round (warm up, upload saliency
// scores); a full sparse frame installs the mask and its index ranges; a
// values-only frame is a steady-state sparse round. A values-only frame
// arriving before this client has seen the ranges (it was never sampled
// for the index-bearing round) is unusable — the client sits the round
// out rather than guessing.
func (t *SSFLTrainer) LocalUpdate(round int, payload []byte) []byte {
	sp := t.span(round, "client.update")
	defer sp.End()
	if len(payload) == 0 {
		return nil
	}
	m := t.Client.Model
	nState := m.StateLen(models.ScopeEncoder)
	switch comm.KindOf(payload) {
	case comm.FrameDense:
		return t.agreementUpdate(sp, round, payload, nState)
	case comm.FrameSparse:
		sw := &comm.Sparse{Values: comm.GetF32(len(payload) / 4)[:0]}
		if err := comm.DecodeSparseAnyInto(sw, payload); err != nil {
			comm.PutSparse(sw)
			return nil
		}
		t.ranges = append(t.ranges[:0], sw.Ranges...)
		t.complement = comm.ComplementRanges(t.ranges, nState)
		t.keptN = len(sw.Values)
		up := t.sparseUpdate(sp, round, sw.Values, nState)
		comm.PutSparse(sw)
		return up
	case comm.FrameSparseVals:
		if t.ranges == nil {
			return nil
		}
		vals, err := comm.DecodeSparseValsAnyInto(comm.GetF32(t.keptN), payload)
		if err != nil || len(vals) != t.keptN {
			comm.PutF32(vals)
			return nil
		}
		up := t.sparseUpdate(sp, round, vals, nState)
		comm.PutF32(vals)
		return up
	default:
		return nil
	}
}

// agreementUpdate handles the mask-agreement round: install the dense
// encoder, run the standard local update as warm-up, upload the
// per-channel saliency scores of the warmed-up encoder.
func (t *SSFLTrainer) agreementUpdate(sp *telemetry.Span, round int, payload []byte, nState int) []byte {
	m := t.Client.Model
	state, err := comm.DecodeDenseAnyInto(comm.GetF32(nState), payload)
	if err != nil || len(state) != nState {
		comm.PutF32(state)
		return nil
	}
	m.SetState(models.ScopeEncoder, state)
	comm.PutF32(state)

	rng := rand.New(rand.NewSource(ClientSeed(t.cfg.Seed, round, t.Client.ID)))
	train := sp.Child("client.train")
	LocalSGD(t.Client, t.cfg.localOpts(m.Params(), round), rng)
	train.End()

	scores := ssflScoresInto(comm.GetF32(ssflScoreLen(m)), m)
	t.upBuf = t.cfg.encodeDenseInto(t.upBuf, scores)
	comm.PutF32(scores)
	return t.upBuf
}

// sparseUpdate handles a mask-static round: overwrite the salient
// entries with the received packed values, keep the complement at zero,
// train with the pruned gradients zeroed so the mask survives the
// optimizer, and upload the packed salient local state — values-only.
func (t *SSFLTrainer) sparseUpdate(sp *telemetry.Span, round int, vals []float32, nState int) []byte {
	m := t.Client.Model
	state := m.StateInto(models.ScopeEncoder, comm.GetF32(nState))
	comm.ZeroRanges(state, t.complement)
	if !comm.ScatterCopy(state, vals, t.ranges) {
		comm.PutF32(state)
		return nil
	}
	m.SetState(models.ScopeEncoder, state)
	comm.PutF32(state)

	ctrlP := m.EncoderParams()
	opts := t.cfg.localOpts(m.Params(), round)
	// The complement ranges index the encoder state vector, whose prefix
	// is exactly the flattened trainable encoder parameters (the tail is
	// BN running statistics, which take no gradient).
	opts.Hook = zeroGradRanges(ClipRanges(t.complement, nn.ParamCount(ctrlP)), ctrlP)
	rng := rand.New(rand.NewSource(ClientSeed(t.cfg.Seed, round, t.Client.ID)))
	train := sp.Child("client.train")
	LocalSGD(t.Client, opts, rng)
	train.End()

	local := m.StateInto(models.ScopeEncoder, comm.GetF32(nState))
	var sw comm.Sparse
	comm.GatherSparseInto(&sw, local, t.ranges)
	if t.cfg.HalfPrecision {
		t.upBuf = comm.EncodeSparseValsF16Into(t.upBuf, sw.Values)
	} else {
		t.upBuf = comm.EncodeSparseValsInto(t.upBuf, sw.Values)
	}
	comm.PutF32(sw.Values[:0])
	comm.PutF32(local)
	return t.upBuf
}

// zeroGradRanges returns a LocalOpts hook zeroing the gradient entries
// covered by ranges over the flattened ctrlP parameters — the mechanism
// that keeps pruned weights at exactly zero through every optimizer
// step, so the agreed mask is static for the whole sparse epoch.
func zeroGradRanges(ranges []comm.Range, ctrlP []*nn.Param) func(params []*nn.Param) {
	return func(_ []*nn.Param) {
		off := 0
		ri := 0
		for _, p := range ctrlP {
			n := p.W.Len()
			for ri < len(ranges) {
				r := ranges[ri]
				if int(r.Start) >= off+n {
					break
				}
				s, e := int(r.Start), int(r.Start)+int(r.Len)
				if s < off {
					s = off
				}
				if e > off+n {
					e = off + n
				}
				run := p.G.Data[s-off : e-off]
				for i := range run {
					run[i] = 0
				}
				if int(r.Start)+int(r.Len) <= off+n {
					ri++
				} else {
					break // range continues into the next parameter
				}
			}
			off += n
		}
	}
}

// Finish implements Trainer: install the final model from either frame
// kind. For a sparse frame the complement is zero by protocol, so the
// state reconstructs exactly from the packed values.
func (t *SSFLTrainer) Finish(payload []byte) {
	if len(payload) == 0 {
		return
	}
	m := t.Client.Model
	switch comm.KindOf(payload) {
	case comm.FrameSparse:
		var sw comm.Sparse
		if err := comm.DecodeSparseAnyInto(&sw, payload); err != nil {
			return
		}
		state := make([]float32, m.StateLen(models.ScopeEncoder))
		if comm.ScatterCopy(state, sw.Values, sw.Ranges) {
			m.SetState(models.ScopeEncoder, state)
		}
	default:
		if state, err := comm.DecodeDenseAnyInto(nil, payload); err == nil {
			m.SetState(models.ScopeEncoder, state)
		}
	}
}
