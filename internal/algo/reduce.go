package algo

import (
	"spatl/internal/comm"
	"spatl/internal/nn"
	"spatl/internal/tensor"
)

// EffectiveLR is the asymptotic per-gradient step size of momentum SGD:
// η/(1−µ). Control-variate updates (SCAFFOLD, SPATL) divide cumulative
// weight movement by it to recover average gradients.
func EffectiveLR(lr, momentum float64) float64 {
	if momentum > 0 && momentum < 1 {
		return lr / (1 - momentum)
	}
	return lr
}

// WeightedAverageSerial is the retained reference reduction: Σ wᵢ·stateᵢ
// / Σ wᵢ in float64, clients outer, parameters inner. WeightedAverage
// must match it bitwise; determinism tests compare the two.
func WeightedAverageSerial(states [][]float32, weights []float64) []float32 {
	total := 0.0
	var first []float32
	for si, st := range states {
		if st == nil {
			continue
		}
		if first == nil {
			first = st
		}
		total += weights[si]
	}
	if first == nil || total == 0 {
		return nil
	}
	acc := make([]float64, len(first))
	for si, st := range states {
		if st == nil {
			continue
		}
		w := weights[si] / total
		for i, v := range st {
			acc[i] += w * float64(v)
		}
	}
	out := make([]float32, len(acc))
	for i, v := range acc {
		out[i] = float32(v)
	}
	return out
}

// WeightedAverage returns Σ wᵢ·stateᵢ / Σ wᵢ computed in float64,
// skipping nil states (clients whose upload was lost). Returns nil when
// no state survives.
//
// The reduction is parallelized by chunking the parameter dimension;
// within a chunk every index still sums clients in ascending order, so
// the result is bitwise identical to WeightedAverageSerial at any
// GOMAXPROCS.
func WeightedAverage(states [][]float32, weights []float64) []float32 {
	return WeightedAverageInto(nil, states, weights)
}

// WeightedAverageInto is WeightedAverage writing into dst when it has
// sufficient capacity (allocating only when it does not), so a caller
// that keeps the returned slice across rounds aggregates without any
// steady-state allocation. The float64 accumulators come from the pooled
// scratch either way.
func WeightedAverageInto(dst []float32, states [][]float32, weights []float64) []float32 {
	total := 0.0
	var first []float32
	for si, st := range states {
		if st == nil {
			continue
		}
		if first == nil {
			first = st
		}
		total += weights[si]
	}
	if first == nil || total == 0 {
		return nil
	}
	if cap(dst) < len(first) {
		dst = make([]float32, len(first))
	}
	out := dst[:len(first)]
	tensor.Parallel(len(first), func(lo, hi int) {
		// Pooled accumulator: explicitly zeroed because pool buffers hold
		// stale values and every index's chain must start from 0.0 to
		// match the serial reference.
		acc := tensor.GetScratchF64(hi - lo)
		for i := range acc {
			acc[i] = 0
		}
		for si, st := range states {
			if st == nil {
				continue
			}
			tensor.VecAccumScaled(acc, st[lo:hi], weights[si]/total)
		}
		tensor.VecF64ToF32(out[lo:hi], acc)
		tensor.PutScratchF64(acc)
	})
	return out
}

// ClipRanges restricts index ranges to [0, n): ranges entirely above n
// are dropped; a straddling range is truncated. Used to map state-vector
// index ranges onto the (prefix) trainable-parameter vector that control
// variates cover.
func ClipRanges(ranges []comm.Range, n int) []comm.Range {
	out := make([]comm.Range, 0, len(ranges))
	for _, r := range ranges {
		if int(r.Start) >= n {
			break
		}
		if int(r.Start+r.Len) > n {
			r.Len = uint32(n) - r.Start
		}
		if r.Len > 0 {
			out = append(out, r)
		}
	}
	return out
}

// addProx returns a LocalOpts hook adding FedProx's proximal gradient
// term μ(w − w_global) against the flattened global trainable weights.
func addProx(mu float64, globalFlat []float32) func(params []*nn.Param) {
	return func(params []*nn.Param) {
		off := 0
		m := float32(mu)
		for _, p := range params {
			n := p.W.Len()
			tensor.VecAxpyDiff(p.G.Data, p.W.Data, globalFlat[off:off+n], m)
			off += n
		}
	}
}

// addControl returns a hook applying SCAFFOLD-style gradient correction
// g += c − cᵢ over the flattened parameters in ctrlP (which may be a
// subset of the trained parameters — SPATL corrects only the encoder).
func addControl(c, ci []float32, ctrlP []*nn.Param) func(params []*nn.Param) {
	return func(params []*nn.Param) {
		off := 0
		for _, p := range ctrlP {
			n := p.W.Len()
			tensor.VecAddDiff(p.G.Data, c[off:off+n], ci[off:off+n])
			off += n
		}
	}
}
