// Package core implements SPATL — Salient Parameter Aggregation and
// Transfer Learning for heterogeneous federated learning (SC 2022).
//
// SPATL differs from the uniform-model baselines in three ways, each
// independently switchable for the paper's ablations (§V-F):
//
//  1. Heterogeneous knowledge transfer (§IV-A): only the encoder is
//     shared with the aggregation server; every client keeps a private
//     predictor head that adapts the shared representation to its
//     non-IID data.
//  2. Salient parameter selection (§IV-B): a pre-trained GNN+PPO agent,
//     fine-tuned per client (MLP head only), selects the encoder's
//     salient filters; only the selected parameters and their index
//     ranges are uploaded, and the server aggregates per index (eq. 12).
//  3. Generic-parameter gradient control (§IV-C): SCAFFOLD-style control
//     variates correct gradient drift, but only on the encoder (the
//     generic parameters); the predictor's gradients stay heterogeneous.
//
// The package provides the fl.Algorithm implementation, the cold-start
// transfer path for never-selected clients (eq. 4), and the agent
// pre-training entry point used by the experiment harness.
package core

import (
	"math/rand"
	"sync"

	"spatl/internal/comm"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/prune"
	"spatl/internal/rl"
	"spatl/internal/tensor"
)

// Options configures SPATL. The zero value enables everything with the
// paper's defaults; the Disable* switches drive the ablation studies.
type Options struct {
	// DisableSelection uploads the full encoder instead of the salient
	// subset (Fig. 4 ablation).
	DisableSelection bool
	// DisableTransfer shares the predictor as well as the encoder — a
	// uniform model, as the baselines use (Fig. 5a ablation).
	DisableTransfer bool
	// DisableGradControl removes the control-variate correction
	// (Fig. 5b ablation).
	DisableGradControl bool

	// FLOPsBudget is the agent's sub-network FLOPs constraint as a
	// fraction of the full model (default 0.6).
	FLOPsBudget float64
	// AgentCfg configures the selection agent.
	AgentCfg rl.AgentConfig
	// Pretrained, when non-nil, initializes every client's agent from
	// pre-trained weights (see PretrainAgent); fine-tuning then updates
	// only the MLP heads, as in §V-A.
	Pretrained []float32
	// FineTuneRounds is the number of initial communication rounds during
	// which selected clients fine-tune their agents (default 10).
	FineTuneRounds int
	// FineTuneEpisodes is the rollout batch per fine-tune update
	// (default 4).
	FineTuneEpisodes int
}

func (o Options) withDefaults() Options {
	if o.FLOPsBudget == 0 {
		o.FLOPsBudget = 0.6
	}
	if o.FineTuneRounds == 0 {
		o.FineTuneRounds = 10
	}
	if o.FineTuneEpisodes == 0 {
		o.FineTuneEpisodes = 4
	}
	return o
}

// SPATL implements fl.Algorithm.
type SPATL struct {
	Opts Options

	c []float32 // server control variate over encoder trainable params

	mu     sync.Mutex
	agents map[int]*rl.Agent // per-client fine-tuned selection agents

	// LastSelections records each client's most recent selection, for
	// the inference-acceleration analysis (§V-D).
	LastSelections map[int]*prune.Selection
}

// New constructs a SPATL instance.
func New(opts Options) *SPATL {
	return &SPATL{
		Opts:           opts.withDefaults(),
		agents:         map[int]*rl.Agent{},
		LastSelections: map[int]*prune.Selection{},
	}
}

// Name implements fl.Algorithm.
func (s *SPATL) Name() string { return "spatl" }

// scope returns the communication scope: encoder-only normally, the full
// model when transfer learning is disabled.
func (s *SPATL) scope() models.Scope {
	if s.Opts.DisableTransfer {
		return models.ScopeAll
	}
	return models.ScopeEncoder
}

// ctrlParams returns the parameters subject to gradient control — the
// generic (encoder) parameters (§IV-C), or all parameters when transfer
// is disabled.
func (s *SPATL) ctrlParams(m *models.SplitModel) []*nn.Param {
	if s.Opts.DisableTransfer {
		return m.Params()
	}
	return m.EncoderParams()
}

// Setup implements fl.Algorithm.
func (s *SPATL) Setup(env *fl.Env) {
	n := nn.ParamCount(s.ctrlParams(env.Global))
	s.c = make([]float32, n)
	for _, c := range env.Clients {
		c.Control = make([]float32, n)
	}
}

// agentFor returns the client's selection agent, creating it from the
// pre-trained weights (or fresh) on first use.
func (s *SPATL) agentFor(clientID int) *rl.Agent {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a, ok := s.agents[clientID]; ok {
		return a
	}
	cfg := s.Opts.AgentCfg
	cfg.Seed += int64(clientID)
	a := rl.NewAgent(cfg)
	if s.Opts.Pretrained != nil {
		a.Load(s.Opts.Pretrained)
	}
	s.agents[clientID] = a
	return a
}

// EvalModel implements fl.Algorithm: the client's deployed model is the
// current global encoder composed with its private predictor. The global
// encoder state is installed into the client's model (what a client does
// before deployment, §IV-A). Inference acceleration (§V-D) additionally
// prunes this model to the client's salient sub-network; see
// prune.ZeroPruned / prune.Extract and the inference experiment.
func (s *SPATL) EvalModel(env *fl.Env, c *Client) *models.SplitModel {
	st := env.Global.StateInto(s.scope(), comm.GetF32(env.Global.StateLen(s.scope())))
	c.Model.SetState(s.scope(), st)
	comm.PutF32(st)
	return c.Model
}

// Client aliases fl.Client for readability of the public API.
type Client = fl.Client

// Round implements fl.Algorithm: one SPATL communication round.
func (s *SPATL) Round(env *fl.Env, round int, selected []int) {
	scope := s.scope()
	nState := env.Global.StateLen(scope)
	globalState := env.Global.StateInto(scope, comm.GetF32(nState))
	statePayload := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(nState)), globalState)
	ctrlPayload := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(len(s.c))), s.c)

	type upload struct {
		dW *comm.Sparse
		dC *comm.Sparse
	}
	uploads := make([]upload, len(selected))

	fl.ParallelClients(selected, func(pos int) {
		ci := selected[pos]
		c := env.Clients[ci]
		// ➊ download the shared encoder (and control variate).
		env.Meter.AddDown(len(statePayload))
		if env.ClientFailed(round, ci) {
			return // crashed after download: nothing uploads
		}
		dl := mustDenseInto(comm.GetF32(nState), statePayload)
		c.Model.SetState(scope, dl)
		comm.PutF32(dl)
		var serverC []float32
		if !s.Opts.DisableGradControl {
			env.Meter.AddDown(len(ctrlPayload))
			serverC = mustDenseInto(comm.GetF32(len(s.c)), ctrlPayload)
		}

		rng := rand.New(rand.NewSource(env.ClientSeed(round, ci)))

		// ➋ local update: transfer the encoder's knowledge through the
		// local predictor; gradient control corrects only the generic
		// (encoder) parameters.
		ctrlP := s.ctrlParams(c.Model)
		nCtrl := nn.ParamCount(ctrlP)
		var hook func([]*nn.Param)
		if !s.Opts.DisableGradControl {
			ctrl := serverC
			ci2 := c.Control
			hook = func(params []*nn.Param) {
				off := 0
				for _, p := range ctrlP {
					for j := range p.G.Data {
						p.G.Data[j] += ctrl[off+j] - ci2[off+j]
					}
					off += p.W.Len()
				}
				_ = params
			}
		}
		gBefore := nn.FlattenParams(ctrlP)
		steps, _ := fl.LocalSGD(c, fl.LocalOpts{
			Params: c.Model.Params(), Epochs: env.Cfg.LocalEpochs, BatchSize: env.Cfg.BatchSize,
			LR: env.LRAt(round), Momentum: env.Cfg.Momentum, WeightDecay: env.Cfg.WeightDecay,
			GradClip: env.Cfg.GradClip,
			Hook:     hook,
		}, rng)

		// Control variate update (option II of SCAFFOLD, over the
		// generic parameters only).
		var dC []float32
		if !s.Opts.DisableGradControl {
			localCtrl := nn.FlattenParams(ctrlP)
			inv := 1.0 / (float64(steps) * fl.EffectiveLR(env.LRAt(round), env.Cfg.Momentum))
			newCi := make([]float32, nCtrl)
			dC = comm.GetF32(nCtrl)
			for j := 0; j < nCtrl; j++ {
				newCi[j] = c.Control[j] - serverC[j] + float32(float64(gBefore[j]-localCtrl[j])*inv)
				dC[j] = newCi[j] - c.Control[j]
			}
			c.Control = newCi
			comm.PutF32(serverC)
		}

		// ➌ salient parameter selection on the trained encoder.
		sel := s.selectSalient(env, c, round, rng)
		s.mu.Lock()
		s.LastSelections[ci] = sel
		s.mu.Unlock()

		// ➍ upload only the salient parameter deltas and their indices.
		localState := c.Model.StateInto(scope, comm.GetF32(nState))
		dW := comm.GetF32(len(localState))
		for j := range localState {
			dW[j] = localState[j] - globalState[j]
		}
		comm.PutF32(localState)
		var sw comm.Sparse
		comm.GatherSparseInto(&sw, dW, sel.Ranges)
		bufW := env.EncodeSparseInto(comm.GetBuf(env.SparsePayloadLen(&sw)), &sw)
		env.Meter.AddUp(len(bufW))
		uploads[pos].dW = mustSparseInto(&comm.Sparse{Values: sw.Values[:0]}, bufW)
		comm.PutBuf(bufW)
		comm.PutF32(dW)

		if !s.Opts.DisableGradControl {
			ctrlRanges := clipRanges(sel.Ranges, nCtrl)
			var sc comm.Sparse
			comm.GatherSparseInto(&sc, dC, ctrlRanges)
			bufC := env.EncodeSparseInto(comm.GetBuf(env.SparsePayloadLen(&sc)), &sc)
			env.Meter.AddUp(len(bufC))
			uploads[pos].dC = mustSparseInto(&comm.Sparse{Values: sc.Values[:0]}, bufC)
			comm.PutBuf(bufC)
			comm.PutF32(dC)
		}
	})

	// Server: per-index averaged aggregation of salient deltas (eq. 12),
	// chunked over the parameter dimension. Within a chunk every index
	// accumulates clients in upload order, so the result is bitwise
	// identical to the serial ScatterAdd loop at any GOMAXPROCS.
	sum := comm.GetF32(nState)
	count := make([]int32, nState)
	newState := comm.GetF32(nState)
	tensor.Parallel(nState, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			sum[j] = 0
		}
		for _, u := range uploads {
			if u.dW == nil {
				continue
			}
			comm.ScatterAddRange(sum, count, u.dW, lo, hi)
		}
		copy(newState[lo:hi], globalState[lo:hi])
		for j := lo; j < hi; j++ {
			if count[j] > 0 {
				newState[j] += sum[j] / float32(count[j])
			}
		}
	})
	env.Global.SetState(scope, newState)
	comm.PutF32(newState)
	comm.PutF32(sum)

	// Control variate: c += (1/N)·ΣΔcᵢ at the uploaded indices (eq. 11),
	// sharded over the parameter dimension with the same fixed client
	// order per index.
	if !s.Opts.DisableGradControl {
		invN := float32(1.0 / float64(env.Cfg.NumClients))
		tensor.Parallel(len(s.c), func(lo, hi int) {
			for _, u := range uploads {
				if u.dC == nil {
					continue
				}
				comm.ScatterAddScaledRange(s.c, u.dC, invN, lo, hi)
			}
		})
	}
	for _, u := range uploads {
		if u.dW != nil {
			comm.PutSparse(u.dW)
		}
		if u.dC != nil {
			comm.PutSparse(u.dC)
		}
	}
	comm.PutBuf(statePayload)
	comm.PutBuf(ctrlPayload)
	comm.PutF32(globalState)
}

// selectSalient runs the client's selection agent: fine-tune (head-only
// PPO) during the first FineTuneRounds rounds, then act greedily. With
// selection disabled, everything is salient.
func (s *SPATL) selectSalient(env *fl.Env, c *Client, round int, rng *rand.Rand) *prune.Selection {
	units := c.Model.PrunableUnits()
	if s.Opts.DisableSelection || len(units) == 0 {
		ratios := make([]float64, len(units))
		for i := range ratios {
			ratios[i] = 1
		}
		return prune.Select(c.Model, ratios)
	}
	agent := s.agentFor(c.ID)
	penv := prune.NewEnv(c.Model, c.Val, s.Opts.FLOPsBudget)
	if round < s.Opts.FineTuneRounds {
		ppo := rl.NewPPO(agent, s.Opts.Pretrained != nil)
		rl.Train(ppo, penv, 1, s.Opts.FineTuneEpisodes, rng)
	}
	action := rl.BestAction(agent, penv)
	return prune.Select(c.Model, action)
}

// ColdStart adapts a client that never participated in training (eq. 4):
// it downloads the current global encoder and fits only its local
// predictor, leaving the shared representation untouched.
func (s *SPATL) ColdStart(env *fl.Env, c *Client, epochs int, rng *rand.Rand) {
	scope := s.scope()
	n := env.Global.StateLen(scope)
	st := env.Global.StateInto(scope, comm.GetF32(n))
	payload := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(n)), st)
	comm.PutF32(st)
	env.Meter.AddDown(len(payload))
	dl := mustDenseInto(comm.GetF32(n), payload)
	c.Model.SetState(scope, dl)
	comm.PutF32(dl)
	comm.PutBuf(payload)
	fl.LocalSGD(c, fl.LocalOpts{
		Params: c.Model.PredictorParams(), Epochs: epochs, BatchSize: env.Cfg.BatchSize,
		LR: env.Cfg.LR, Momentum: env.Cfg.Momentum, WeightDecay: env.Cfg.WeightDecay,
		FreezeEncoder: true,
	}, rng)
}

func mustDense(buf []byte) []float32 {
	return mustDenseInto(nil, buf)
}

// mustDenseInto decodes into dst (typically from comm.GetF32), panicking
// on corruption — the simulation transports bytes in-process.
func mustDenseInto(dst []float32, buf []byte) []float32 {
	v, err := comm.DecodeDenseAnyInto(dst, buf)
	if err != nil {
		panic(err)
	}
	return v
}

// mustSparseInto decodes into s, reusing its Ranges/Values capacity, and
// returns s.
func mustSparseInto(s *comm.Sparse, buf []byte) *comm.Sparse {
	if err := comm.DecodeSparseAnyInto(s, buf); err != nil {
		panic(err)
	}
	return s
}

// clipRanges restricts ranges to [0, n): ranges entirely above n are
// dropped; a straddling range is truncated. Used to map encoder-state
// index ranges onto the (prefix) trainable-parameter vector that control
// variates cover.
func clipRanges(ranges []comm.Range, n int) []comm.Range {
	out := make([]comm.Range, 0, len(ranges))
	for _, r := range ranges {
		if int(r.Start) >= n {
			break
		}
		if int(r.Start+r.Len) > n {
			r.Len = uint32(n) - r.Start
		}
		if r.Len > 0 {
			out = append(out, r)
		}
	}
	return out
}
