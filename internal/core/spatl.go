// Package core implements SPATL — Salient Parameter Aggregation and
// Transfer Learning for heterogeneous federated learning (SC 2022).
//
// SPATL differs from the uniform-model baselines in three ways, each
// independently switchable for the paper's ablations (§V-F):
//
//  1. Heterogeneous knowledge transfer (§IV-A): only the encoder is
//     shared with the aggregation server; every client keeps a private
//     predictor head that adapts the shared representation to its
//     non-IID data.
//  2. Salient parameter selection (§IV-B): a pre-trained GNN+PPO agent,
//     fine-tuned per client (MLP head only), selects the encoder's
//     salient filters; only the selected parameters and their index
//     ranges are uploaded, and the server aggregates per index (eq. 12).
//  3. Generic-parameter gradient control (§IV-C): SCAFFOLD-style control
//     variates correct gradient drift, but only on the encoder (the
//     generic parameters); the predictor's gradients stay heterogeneous.
//
// The algorithm itself — aggregator and trainer — lives in the
// transport-agnostic internal/algo package, shared with the TCP
// transport (internal/flnet); this package adapts it to the simulation's
// fl.Algorithm interface and adds the cold-start transfer path for
// never-selected clients (eq. 4) plus the agent pre-training entry
// point used by the experiment harness.
package core

import (
	"math/rand"

	"spatl/internal/algo"
	"spatl/internal/comm"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/prune"
)

// Options configures SPATL; it aliases the transport-agnostic
// algo.SPATLOptions. The zero value enables everything with the paper's
// defaults; the Disable* switches drive the ablation studies.
type Options = algo.SPATLOptions

// Client aliases fl.Client for readability of the public API.
type Client = fl.Client

// SPATL implements fl.Algorithm by wiring the shared algo.SPATL core
// into the in-process transport.
type SPATL struct {
	Opts Options

	drv      fl.Driver
	agg      *algo.SPATLAggregator
	trainers []*algo.SPATLTrainer

	// LastSelections records each client's most recent selection, for
	// the inference-acceleration analysis (§V-D).
	LastSelections map[int]*prune.Selection
}

// New constructs a SPATL instance.
func New(opts Options) *SPATL {
	return &SPATL{
		Opts:           opts.WithDefaults(),
		LastSelections: map[int]*prune.Selection{},
	}
}

// Name implements fl.Algorithm.
func (s *SPATL) Name() string { return "spatl" }

// ControlVariate exposes the server control variate over the encoder's
// trainable parameters (read-only use).
func (s *SPATL) ControlVariate() []float32 { return s.agg.ControlVariate() }

// Setup implements fl.Algorithm.
func (s *SPATL) Setup(env *fl.Env) {
	cfg := env.AlgoConfig()
	s.agg = algo.NewSPATLAggregator(env.Global, s.Opts, cfg)
	s.trainers = make([]*algo.SPATLTrainer, len(env.Clients))
	trainers := make([]algo.Trainer, len(env.Clients))
	for i, c := range env.Clients {
		s.trainers[i] = algo.NewSPATLTrainer(c, s.Opts, cfg)
		trainers[i] = s.trainers[i]
	}
	s.drv = fl.NewDriver(env, s.agg, trainers)
}

// Round implements fl.Algorithm: one SPATL communication round.
func (s *SPATL) Round(env *fl.Env, round int, selected []int) {
	s.drv.Round(round, selected)
	for _, ci := range selected {
		if sel := s.trainers[ci].LastSelection; sel != nil {
			s.LastSelections[ci] = sel
		}
	}
}

// EvalModel implements fl.Algorithm: the client's deployed model is the
// current global encoder composed with its private predictor. The global
// encoder state is installed into the client's model (what a client does
// before deployment, §IV-A). Inference acceleration (§V-D) additionally
// prunes this model to the client's salient sub-network; see
// prune.ZeroPruned / prune.Extract and the inference experiment.
func (s *SPATL) EvalModel(env *fl.Env, c *Client) *models.SplitModel {
	scope := s.Opts.Scope()
	st := env.Global.StateInto(scope, comm.GetF32(env.Global.StateLen(scope)))
	c.Model.SetState(scope, st)
	comm.PutF32(st)
	return c.Model
}

// ColdStart adapts a client that never participated in training (eq. 4):
// it downloads the current global encoder and fits only its local
// predictor, leaving the shared representation untouched.
func (s *SPATL) ColdStart(env *fl.Env, c *Client, epochs int, rng *rand.Rand) {
	scope := s.Opts.Scope()
	n := env.Global.StateLen(scope)
	st := env.Global.StateInto(scope, comm.GetF32(n))
	payload := env.EncodeDenseInto(comm.GetBuf(env.DensePayloadLen(n)), st)
	comm.PutF32(st)
	env.Meter.AddDown(len(payload))
	dl := mustDenseInto(comm.GetF32(n), payload)
	c.Model.SetState(scope, dl)
	comm.PutF32(dl)
	comm.PutBuf(payload)
	fl.LocalSGD(c, fl.LocalOpts{
		Params: c.Model.PredictorParams(), Epochs: epochs, BatchSize: env.Cfg.BatchSize,
		LR: env.Cfg.LR, Momentum: env.Cfg.Momentum, WeightDecay: env.Cfg.WeightDecay,
		FreezeEncoder: true,
	}, rng)
}

// mustDenseInto decodes into dst (typically from comm.GetF32), panicking
// on corruption — the simulation transports bytes in-process.
func mustDenseInto(dst []float32, buf []byte) []float32 {
	v, err := comm.DecodeDenseAnyInto(dst, buf)
	if err != nil {
		panic(err)
	}
	return v
}
