package core

import (
	"math/rand"

	"spatl/internal/data"
	"spatl/internal/models"
	"spatl/internal/prune"
	"spatl/internal/rl"
)

// PretrainAgent trains a selection agent from scratch on a network
// pruning task — the paper pre-trains on ResNet-56 pruning (§V-A) — and
// returns the agent together with its per-update average-reward
// trajectory (the curves of Fig. 6).
func PretrainAgent(cfg rl.AgentConfig, m *models.SplitModel, val *data.Dataset, budget float64, rounds, batch int, seed int64) (*rl.Agent, []rl.TrainResult) {
	agent := rl.NewAgent(cfg)
	ppo := rl.NewPPO(agent, false)
	env := prune.NewEnv(m, val, budget)
	results := rl.Train(ppo, env, rounds, batch, rand.New(rand.NewSource(seed)))
	return agent, results
}

// FineTuneAgent transfers a pre-trained agent to a different model by
// updating only its MLP heads through online PPO (§IV-B) and returns the
// reward trajectory.
func FineTuneAgent(agent *rl.Agent, m *models.SplitModel, val *data.Dataset, budget float64, rounds, batch int, seed int64) []rl.TrainResult {
	ppo := rl.NewPPO(agent, true)
	env := prune.NewEnv(m, val, budget)
	return rl.Train(ppo, env, rounds, batch, rand.New(rand.NewSource(seed)))
}
