package core_test

import (
	"bytes"
	"math/rand"
	"testing"

	"spatl/internal/algo"
	"spatl/internal/comm"
	"spatl/internal/core"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/rl"
	"spatl/internal/telemetry"
)

// bytesFixture builds identical federation inputs for the wire-cost
// comparisons below.
func bytesFixture(clients, classes int, arch string, width float64) (models.Spec, []fl.ClientData) {
	spec := models.Spec{Arch: arch, Classes: classes, InC: 3, H: 8, W: 8, Width: width}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: classes, H: 8, W: 8, Noise: 0.25}, clients*40, 1, 2)
	parts := data.DirichletPartition(ds.Y, classes, clients, 0.5, 10, rand.New(rand.NewSource(3)))
	cd := make([]fl.ClientData, clients)
	for i := range cd {
		cd[i].Train, cd[i].Val = ds.Subset(parts[i]).Split(0.8)
	}
	return spec, cd
}

// runMetered runs an algorithm for the given rounds with full
// participation and returns per-round (uplink, downlink) meter deltas
// plus the telemetry set for counter/journal assertions.
func runMetered(t *testing.T, alg fl.Algorithm, spec models.Spec, cd []fl.ClientData,
	rounds int, seed int64, journal *bytes.Buffer) (up, down []int64, tel *telemetry.Set) {
	t.Helper()
	clients := len(cd)
	env := fl.NewEnv(spec, fl.Config{
		NumClients: clients, SampleRatio: 1, LocalEpochs: 1,
		BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: seed,
	}, cd)
	tel = telemetry.New(journal)
	tel.Journal.SetZeroTime(true)
	env.EnableTelemetry(tel)
	all := make([]int, clients)
	for i := range all {
		all[i] = i
	}
	alg.Setup(env)
	up = make([]int64, rounds)
	down = make([]int64, rounds)
	var prevUp, prevDown int64
	for r := 0; r < rounds; r++ {
		alg.Round(env, r, all)
		up[r] = env.Meter.Up() - prevUp
		down[r] = env.Meter.Down() - prevDown
		prevUp, prevDown = env.Meter.Up(), env.Meter.Down()
	}
	if err := tel.Journal.Flush(); err != nil {
		t.Fatal(err)
	}
	return up, down, tel
}

// TestSSFLBeatsSPATLBytesAtSameSparsity pins the wire-cost claim in a
// controlled apples-to-apples setting: on an MLP (no prunable units)
// both protocols keep 100% of the encoder — identical sparsity — yet
// every SSFL round after mask agreement moves strictly fewer bytes in
// both directions, because values-only frames carry no index ranges
// and no multi-part join framing. SPATL runs its leanest ablation
// (selection and gradient control disabled) so the margin is entirely
// the wire format, not SPATL's control traffic.
func TestSSFLBeatsSPATLBytesAtSameSparsity(t *testing.T) {
	const (
		clients = 3
		rounds  = 3
		seed    = 29
	)
	spec, cd := bytesFixture(clients, 4, "mlp", 0.5)

	var ssflJ bytes.Buffer
	ssflUp, ssflDown, tel := runMetered(t, &fl.SSFL{}, spec, cd, rounds, seed, &ssflJ)
	var spatlJ bytes.Buffer
	spatlUp, spatlDown, _ := runMetered(t,
		core.New(core.Options{DisableSelection: true, DisableGradControl: true}),
		spec, cd, rounds, seed, &spatlJ)

	// Rounds after agreement (and after the one index-bearing round) are
	// values-only: strictly cheaper than SPATL at identical density.
	for r := 2; r < rounds; r++ {
		if ssflUp[r] >= spatlUp[r] {
			t.Errorf("round %d uplink: ssfl %d >= spatl %d", r, ssflUp[r], spatlUp[r])
		}
		if ssflDown[r] >= spatlDown[r] {
			t.Errorf("round %d downlink: ssfl %d >= spatl %d", r, ssflDown[r], spatlDown[r])
		}
	}

	// The sparse wire path is accounted in telemetry: the counters cover
	// exactly the post-agreement traffic the meter saw (the downlink
	// counter meters the broadcast frame once per round; the sim meter
	// charges it once per recipient), and the journal carries the
	// agreement event.
	snap := tel.Reg.Snapshot()
	var wantUp, wantDown int64
	for r := 1; r < rounds; r++ {
		wantUp += ssflUp[r]
		wantDown += ssflDown[r]
	}
	if got := snap.Counters["comm.sparse_up_bytes"]; got != wantUp {
		t.Errorf("comm.sparse_up_bytes = %d, want %d (post-agreement uplink)", got, wantUp)
	}
	if got := snap.Counters["comm.sparse_down_bytes"]; got*int64(clients) != wantDown {
		t.Errorf("comm.sparse_down_bytes = %d, want %d (post-agreement broadcast frames)", got, wantDown/int64(clients))
	}
	if !bytes.Contains(ssflJ.Bytes(), []byte(`"ev":"mask_agreement"`)) {
		t.Fatalf("SSFL journal lacks mask_agreement:\n%s", ssflJ.Bytes())
	}
}

// TestSSFLBeatsSPATLBytesEndToEnd compares the full pipelines on a
// prunable ResNet: SSFL at KeepRatio 0.5 against SPATL with its
// RL-driven selection (FLOPs budget 0.6, so SPATL keeps MORE weight
// per round than it ships indices for) and gradient control. This is
// the experiment-suite configuration; steady-state SSFL rounds must
// move strictly fewer bytes each way.
func TestSSFLBeatsSPATLBytesEndToEnd(t *testing.T) {
	const (
		clients = 3
		rounds  = 3
		seed    = 29
	)
	spec, cd := bytesFixture(clients, 4, "resnet20", 0.25)

	var ssflJ bytes.Buffer
	ssflUp, ssflDown, _ := runMetered(t,
		&fl.SSFL{Opts: algo.SSFLOptions{KeepRatio: 0.5}}, spec, cd, rounds, seed, &ssflJ)
	var spatlJ bytes.Buffer
	spatlUp, spatlDown, _ := runMetered(t,
		core.New(core.Options{AgentCfg: rl.AgentConfig{Dim: 8, HeadHidden: 8, Seed: 6}}),
		spec, cd, rounds, seed, &spatlJ)

	for r := 2; r < rounds; r++ {
		if ssflUp[r] >= spatlUp[r] {
			t.Errorf("round %d uplink: ssfl %d >= spatl %d", r, ssflUp[r], spatlUp[r])
		}
		if ssflDown[r] >= spatlDown[r] {
			t.Errorf("round %d downlink: ssfl %d >= spatl %d", r, ssflDown[r], spatlDown[r])
		}
	}

	// The values-only uplink is exactly the packed frame size — nothing
	// else rides the wire after agreement.
	if ssflUp[rounds-1]%int64(clients) != 0 {
		t.Fatalf("steady-state uplink %d not divisible by %d clients", ssflUp[rounds-1], clients)
	}
	perClient := int(ssflUp[rounds-1] / int64(clients))
	n := (perClient - 5) / 4
	if comm.SparseValsLen(n) != perClient {
		t.Fatalf("steady-state uplink per client %d is not a values-only frame", perClient)
	}
}
