package core_test

import (
	"fmt"
	"math/rand"

	"spatl/internal/core"
	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/rl"
)

// Example runs SPATL end to end on a miniature federation and checks the
// paper's two headline properties: the federation learns, and the uplink
// stays below what a SCAFFOLD-style dense state+control exchange would
// cost.
func Example() {
	const clients = 3
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 4, H: 8, W: 8}, clients*60, 1, 2)
	parts := data.DirichletPartition(ds.Y, 4, clients, 0.5, 10, rand.New(rand.NewSource(3)))
	var cd []fl.ClientData
	for _, p := range parts {
		tr, va := ds.Subset(p).Split(0.8)
		cd = append(cd, fl.ClientData{Train: tr, Val: va})
	}
	spec := models.Spec{Arch: "resnet20", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.25}
	env := fl.NewEnv(spec, fl.Config{
		NumClients: clients, LocalEpochs: 1, BatchSize: 16, LR: 0.02, Momentum: 0.9, Seed: 1,
	}, cd)

	algo := core.New(core.Options{
		FineTuneRounds:   1,
		FineTuneEpisodes: 2,
		AgentCfg:         rl.AgentConfig{Dim: 8, HeadHidden: 8, Seed: 3},
	})
	res := fl.Run(env, algo, fl.RunOpts{Rounds: 4})

	denseTwoX := int64(4 * clients * 2 * 4 * env.Global.StateLen(models.ScopeEncoder))
	fmt.Println("learned above chance:", res.BestAcc() > 0.3)
	fmt.Println("uplink below dense 2x:", res.Records[len(res.Records)-1].CumUp < denseTwoX)
	fmt.Println("per-client selections recorded:", len(algo.LastSelections) == clients)
	// Output:
	// learned above chance: true
	// uplink below dense 2x: true
	// per-client selections recorded: true
}
