package core

import (
	"math"
	"math/rand"
	"testing"

	"spatl/internal/data"
	"spatl/internal/fl"
	"spatl/internal/models"
	"spatl/internal/nn"
	"spatl/internal/rl"
)

// spatlEnv builds a compact but real SPATL environment: a ResNet-20 at
// tiny width on the synthetic CIFAR task, Dirichlet non-IID split.
func spatlEnv(t testing.TB, numClients int, seed int64) *fl.Env {
	t.Helper()
	cfg := fl.Config{
		NumClients: numClients, SampleRatio: 1, LocalEpochs: 1, BatchSize: 16,
		LR: 0.02, Momentum: 0.9, Seed: seed,
	}
	spec := models.Spec{Arch: "resnet20", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.25}
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 4, H: 8, W: 8, Noise: 0.25}, numClients*60, 31, 32)
	parts := data.DirichletPartition(ds.Y, 4, numClients, 0.5, 10, rand.New(rand.NewSource(seed+5)))
	var cd []fl.ClientData
	for _, p := range parts {
		sub := ds.Subset(p)
		tr, va := sub.Split(0.8)
		cd = append(cd, fl.ClientData{Train: tr, Val: va})
	}
	return fl.NewEnv(spec, cfg, cd)
}

func fastOpts() Options {
	return Options{
		FineTuneRounds:   1,
		FineTuneEpisodes: 2,
		AgentCfg:         rl.AgentConfig{Dim: 8, HeadHidden: 8, Seed: 3},
	}
}

func TestSPATLLearnsAboveChance(t *testing.T) {
	env := spatlEnv(t, 3, 1)
	res := fl.Run(env, New(fastOpts()), fl.RunOpts{Rounds: 5})
	if res.BestAcc() < 0.35 {
		t.Fatalf("SPATL best accuracy %.3f, want above chance 0.25", res.BestAcc())
	}
}

func TestSPATLPerRoundUplinkComparableToFedAvg(t *testing.T) {
	// Table I relationship: although SPATL carries gradient-control
	// deltas (which alone would double the payload, as in SCAFFOLD),
	// salient selection keeps its per-round uplink in FedAvg's ballpark
	// (the paper's own ratios span 1.0×–1.46× across models) and well
	// below SCAFFOLD's 2×.
	upOf := func(algo fl.Algorithm) int64 {
		env := spatlEnv(t, 3, 2)
		res := fl.Run(env, algo, fl.RunOpts{Rounds: 2})
		return res.Records[len(res.Records)-1].CumUp
	}
	upS := upOf(New(fastOpts()))
	upF := upOf(&fl.FedAvg{})
	upSc := upOf(&fl.SCAFFOLD{})
	if ratio := float64(upS) / float64(upF); ratio > 1.6 {
		t.Fatalf("SPATL/FedAvg uplink ratio %.2f, want ≤ 1.6", ratio)
	}
	if float64(upS) >= 0.85*float64(upSc) {
		t.Fatalf("SPATL uplink %d should be well below SCAFFOLD's %d", upS, upSc)
	}
}

func TestSPATLKeepsPredictorsHeterogeneous(t *testing.T) {
	env := spatlEnv(t, 3, 3)
	fl.Run(env, New(fastOpts()), fl.RunOpts{Rounds: 3})
	// After training on different non-IID shards, predictors must differ.
	f0 := nn.FlattenParams(env.Clients[0].Model.PredictorParams())
	f1 := nn.FlattenParams(env.Clients[1].Model.PredictorParams())
	same := true
	for i := range f0 {
		if f0[i] != f1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("client predictors must be heterogeneous after SPATL training")
	}
}

func TestDisableTransferSharesWholeModel(t *testing.T) {
	env := spatlEnv(t, 3, 4)
	opts := fastOpts()
	opts.DisableTransfer = true
	opts.DisableSelection = true
	fl.Run(env, New(opts), fl.RunOpts{Rounds: 2})
	// With transfer disabled, evaluation installs the full global state
	// into the client models, so predictors agree.
	s := New(opts)
	_ = s
	g := env.Global.State(models.ScopeAll)
	env.Clients[0].Model.SetState(models.ScopeAll, g)
	env.Clients[1].Model.SetState(models.ScopeAll, g)
	f0 := nn.FlattenParams(env.Clients[0].Model.PredictorParams())
	f1 := nn.FlattenParams(env.Clients[1].Model.PredictorParams())
	for i := range f0 {
		if f0[i] != f1[i] {
			t.Fatal("uniform-model mode must produce identical predictors")
		}
	}
}

func TestDisableSelectionUploadsFullEncoder(t *testing.T) {
	run := func(disable bool) int64 {
		env := spatlEnv(t, 3, 5)
		opts := fastOpts()
		opts.DisableSelection = disable
		res := fl.Run(env, New(opts), fl.RunOpts{Rounds: 2})
		return res.Records[len(res.Records)-1].CumUp
	}
	withSel := run(false)
	withoutSel := run(true)
	if withSel >= withoutSel {
		t.Fatalf("selection should reduce uplink: with %d, without %d", withSel, withoutSel)
	}
}

func TestDisableGradControlDropsControlPayload(t *testing.T) {
	run := func(disable bool) int64 {
		env := spatlEnv(t, 3, 6)
		opts := fastOpts()
		opts.DisableSelection = true // isolate the control payload effect
		opts.DisableGradControl = disable
		res := fl.Run(env, New(opts), fl.RunOpts{Rounds: 1})
		return res.Records[len(res.Records)-1].CumUp
	}
	with := run(false)
	without := run(true)
	if without >= with {
		t.Fatalf("disabling gradient control must shrink the payload: with %d, without %d", with, without)
	}
	// With full selection, the control delta is roughly encoder-sized:
	// expect close to a 2× relationship.
	ratio := float64(with) / float64(without)
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("control payload ratio %.2f, want ≈2", ratio)
	}
}

func TestSelectionsRecordedPerClient(t *testing.T) {
	env := spatlEnv(t, 3, 7)
	s := New(fastOpts())
	fl.Run(env, s, fl.RunOpts{Rounds: 2})
	if len(s.LastSelections) != 3 {
		t.Fatalf("selections recorded for %d clients, want 3", len(s.LastSelections))
	}
	for ci, sel := range s.LastSelections {
		if sel.KeepFrac() <= 0 || sel.KeepFrac() > 1 {
			t.Fatalf("client %d keep fraction %v", ci, sel.KeepFrac())
		}
	}
}

func TestServerControlVariateMoves(t *testing.T) {
	env := spatlEnv(t, 3, 8)
	s := New(fastOpts())
	fl.Run(env, s, fl.RunOpts{Rounds: 2})
	var nonzero int
	for _, v := range s.ControlVariate() {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("server control variate never updated")
	}
}

func TestColdStartTrainsOnlyPredictor(t *testing.T) {
	env := spatlEnv(t, 3, 9)
	s := New(fastOpts())
	fl.Run(env, s, fl.RunOpts{Rounds: 2})
	c := env.Clients[2]
	// Reset this client as if it never trained.
	encBefore := env.Global.State(models.ScopeEncoder)
	s.ColdStart(env, c, 2, rand.New(rand.NewSource(10)))
	encAfter := c.Model.State(models.ScopeEncoder)
	for i := range encBefore {
		if encBefore[i] != encAfter[i] {
			t.Fatal("cold start must leave the downloaded encoder unchanged")
		}
	}
	acc := fl.EvalAccuracy(c.Model, c.Val, 32)
	if acc < 0.25 {
		t.Fatalf("cold-started client accuracy %.3f below chance", acc)
	}
}

func TestPretrainAndFineTuneAgent(t *testing.T) {
	spec := models.Spec{Arch: "resnet20", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.25}
	m := models.Build(spec, 11)
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 4, H: 8, W: 8}, 80, 41, 42)
	agent, hist := PretrainAgent(rl.AgentConfig{Dim: 8, HeadHidden: 8, Seed: 12}, m, ds, 0.6, 3, 2, 13)
	if len(hist) != 3 {
		t.Fatalf("pretrain history length %d", len(hist))
	}
	// Transfer to a different architecture.
	m18 := models.Build(models.Spec{Arch: "resnet18", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.25}, 14)
	hist2 := FineTuneAgent(agent, m18, ds, 0.6, 2, 2, 15)
	if len(hist2) != 2 {
		t.Fatalf("finetune history length %d", len(hist2))
	}
	for _, h := range append(hist, hist2...) {
		if math.IsNaN(h.AvgReward) || math.IsNaN(h.Loss) {
			t.Fatal("agent training produced NaN")
		}
	}
}

func TestSPATLWithPretrainedAgent(t *testing.T) {
	spec := models.Spec{Arch: "resnet20", Classes: 4, InC: 3, H: 8, W: 8, Width: 0.25}
	m := models.Build(spec, 16)
	ds := data.SynthCIFAR(data.SynthCIFARConfig{Classes: 4, H: 8, W: 8}, 60, 51, 52)
	agent, _ := PretrainAgent(rl.AgentConfig{Dim: 8, HeadHidden: 8, Seed: 17}, m, ds, 0.6, 2, 2, 18)

	env := spatlEnv(t, 3, 19)
	opts := fastOpts()
	opts.Pretrained = agent.Save()
	res := fl.Run(env, New(opts), fl.RunOpts{Rounds: 2})
	if len(res.Records) != 2 {
		t.Fatal("run did not complete")
	}
}

func TestSPATLDeterministic(t *testing.T) {
	r1 := fl.Run(spatlEnv(t, 3, 20), New(fastOpts()), fl.RunOpts{Rounds: 2})
	r2 := fl.Run(spatlEnv(t, 3, 20), New(fastOpts()), fl.RunOpts{Rounds: 2})
	for i := range r1.Records {
		if r1.Records[i].CumUp != r2.Records[i].CumUp {
			t.Fatal("SPATL byte accounting must be deterministic")
		}
		if math.Abs(r1.Records[i].AvgAcc-r2.Records[i].AvgAcc) > 1e-9 {
			t.Fatal("SPATL accuracy must be deterministic")
		}
	}
}

func TestSPATLSurvivesClientFailures(t *testing.T) {
	env := spatlEnv(t, 3, 21)
	env.Cfg.DropRate = 0.4
	res := fl.Run(env, New(fastOpts()), fl.RunOpts{Rounds: 4})
	if len(res.Records) != 4 {
		t.Fatal("run did not complete under failures")
	}
	for _, rec := range res.Records {
		if math.IsNaN(rec.AvgAcc) {
			t.Fatal("NaN accuracy under failure injection")
		}
	}
	if res.BestAcc() < 0.30 {
		t.Fatalf("SPATL best acc %.3f under 40%% drops", res.BestAcc())
	}
}

func TestSPATLHalfPrecision(t *testing.T) {
	full := spatlEnv(t, 3, 22)
	resFull := fl.Run(full, New(fastOpts()), fl.RunOpts{Rounds: 2})
	half := spatlEnv(t, 3, 22)
	half.Cfg.HalfPrecision = true
	resHalf := fl.Run(half, New(fastOpts()), fl.RunOpts{Rounds: 2})
	// Values halve; index ranges stay 32-bit, so the ratio is between
	// 0.5 and 1.
	ratio := float64(resHalf.Records[1].CumUp) / float64(resFull.Records[1].CumUp)
	if ratio >= 0.9 || ratio <= 0.4 {
		t.Fatalf("SPATL half-precision uplink ratio %.3f", ratio)
	}
	if resHalf.BestAcc() < 0.30 {
		t.Fatalf("half-precision SPATL best acc %.3f", resHalf.BestAcc())
	}
}
